#!/bin/sh
# cluster-smoke.sh boots a 3-node sdfd cluster on fixed local ports and runs
# the cluster acceptance smoke (make cluster / the CI cluster job):
#
#   1. wait for every node's SDFD_READY line and for the membership to
#      converge (each node's /metrics reports both peers alive),
#   2. sdffuzz -daemon p1,p2,p3: differential replay round-robined over the
#      peers, asserting every artifact is byte-identical to the in-process
#      pipeline and cross-fetchable from a different peer,
#   3. sdfload -addrs p1,p2,p3 -short -selfcheck: a multi-target saturation
#      smoke with per-peer accounting cross-checked by the report selfcheck,
#   4. SIGINT one node and assert it drains and exits cleanly.
#
# Requires bin/sdfd, bin/sdffuzz, bin/sdfload (make cluster builds them).
set -eu

BIN=${BIN:-bin}
A1=127.0.0.1:18431
A2=127.0.0.1:18432
A3=127.0.0.1:18433

workdir=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do
        kill -INT "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

start_node() {
    # $1 self address, $2 peer list, $3 log file
    "$BIN/sdfd" -addr "$1" -peers "$2" -probe-interval 250ms -drain 20s \
        >"$3.out" 2>"$3.err" &
    pids="$pids $!"
    eval "pid_$(echo "$1" | tr .: __)=$!"
}

wait_ready() {
    i=0
    while ! grep -q '^SDFD_READY' "$1.out" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster-smoke: node $1 never printed SDFD_READY" >&2
            cat "$1.err" >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}

wait_alive() {
    # Converged when the node's monitor sees both peers alive.
    i=0
    while :; do
        n=$(curl -sf "http://$1/metrics" | awk '/^sdfd_cluster_peers_alive /{print $2}') || n=""
        [ "$n" = "2" ] && return 0
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster-smoke: node $1 never saw both peers alive (got '$n')" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "cluster-smoke: starting 3 nodes ($A1 $A2 $A3)"
start_node "$A1" "$A2,$A3" "$workdir/n1"
start_node "$A2" "$A1,$A3" "$workdir/n2"
start_node "$A3" "$A1,$A2" "$workdir/n3"
wait_ready "$workdir/n1"
wait_ready "$workdir/n2"
wait_ready "$workdir/n3"
wait_alive "$A1"
wait_alive "$A2"
wait_alive "$A3"
echo "cluster-smoke: membership converged"

echo "cluster-smoke: differential replay across the cluster"
"$BIN/sdffuzz" -daemon "$A1,$A2,$A3" -n 12 -seed 1

echo "cluster-smoke: multi-target load smoke"
"$BIN/sdfload" -addrs "$A1,$A2,$A3" -short -selfcheck -label cluster \
    -out "$workdir/LOAD_cluster.json"

echo "cluster-smoke: draining one node"
kill -INT "$pid_127_0_0_1_18431"
if ! wait "$pid_127_0_0_1_18431"; then
    echo "cluster-smoke: drained node exited non-zero" >&2
    cat "$workdir/n1.err" >&2 || true
    exit 1
fi
pids="$pid_127_0_0_1_18432 $pid_127_0_0_1_18433"

# The survivors keep serving after the drain (rehash onto the remaining ring).
curl -sf "http://$A2/healthz" >/dev/null
curl -sf "http://$A3/healthz" >/dev/null
echo "cluster-smoke: ok"
