// Package randsdf generates random consistent acyclic SDF graphs for the
// Sec. 10.3 experiments. Consistency is obtained by construction: a target
// repetitions vector is drawn first and every edge's rates are derived from
// it, so the balance equations hold by definition.
package randsdf

import (
	"fmt"
	"math/rand"

	"repro/internal/num"
	"repro/internal/sdf"
)

// Config controls graph generation.
type Config struct {
	// Actors is the number of actors (>= 1).
	Actors int
	// EdgeProb is the probability of an edge between each forward-ordered
	// actor pair within the window; defaults to enough for (on average) ~1.5
	// edges per actor when zero.
	EdgeProb float64
	// Window limits how far apart (in the generation order) connected actors
	// may be; small windows yield chain-like graphs. 0 means Actors.
	Window int
	// Reps is the pool of repetition counts actors draw from; defaults to
	// {1,2,3,4,6,8,12}.
	Reps []int64
	// DelayProb is the probability that an edge carries initial tokens; a
	// delayed edge gets one or two periods' worth of its production rate.
	// Zero (the default) keeps graphs delayless and leaves the random stream
	// of existing configurations untouched.
	DelayProb float64
}

// Graph draws a random consistent acyclic SDF graph. Every generated graph
// is weakly connected (a spanning chain of edges is forced), delayless
// unless DelayProb is set, and has rates bounded by max(Reps).
func Graph(rng *rand.Rand, cfg Config) *sdf.Graph {
	if cfg.Actors < 1 {
		panic("randsdf: need at least one actor")
	}
	reps := cfg.Reps
	if len(reps) == 0 {
		reps = []int64{1, 2, 3, 4, 6, 8, 12}
	}
	window := cfg.Window
	if window <= 0 {
		window = cfg.Actors
	}
	prob := cfg.EdgeProb
	if prob <= 0 {
		prob = min(1.0, 1.5/float64(window))
	}
	g := sdf.New(fmt.Sprintf("rand%d", cfg.Actors))
	q := make([]int64, cfg.Actors)
	for i := 0; i < cfg.Actors; i++ {
		g.AddActor(fmt.Sprintf("a%d", i))
		q[i] = reps[rng.Intn(len(reps))]
	}
	addEdge := func(i, j int) {
		gg := num.GCD(q[i], q[j])
		// prod*q_i = cons*q_j  <=>  prod = q_j/g, cons = q_i/g.
		prod, cons := q[j]/gg, q[i]/gg
		var delay int64
		if cfg.DelayProb > 0 && rng.Float64() < cfg.DelayProb {
			delay = prod * int64(1+rng.Intn(2))
		}
		g.AddEdge(sdf.ActorID(i), sdf.ActorID(j), prod, cons, delay)
	}
	// Random-parent tree for weak connectivity: unlike a spanning chain it
	// leaves genuine topological-order freedom, which the ordering-strategy
	// experiments (Sec. 10.1, Fig. 27 e/f) depend on.
	for i := 1; i < cfg.Actors; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		addEdge(lo+rng.Intn(i-lo), i)
	}
	for i := 0; i < cfg.Actors; i++ {
		for j := i + 1; j < cfg.Actors && j <= i+window; j++ {
			if rng.Float64() < prob {
				addEdge(i, j)
			}
		}
	}
	return g
}
