package randsdf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sdf"
)

func TestGraphConsistentByConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		g := Graph(rng, Config{Actors: 2 + rng.Intn(30)})
		q, err := g.Repetitions()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, err := g.TopologicalSort(q); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestGraphSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 5, 20, 100} {
		g := Graph(rng, Config{Actors: n})
		if g.NumActors() != n {
			t.Errorf("asked %d actors, got %d", n, g.NumActors())
		}
		if n > 1 && g.NumEdges() < n-1 {
			t.Errorf("graph with %d actors has only %d edges (not connected)", n, g.NumEdges())
		}
	}
}

func TestGraphDeterministicPerSeed(t *testing.T) {
	a := Graph(rand.New(rand.NewSource(7)), Config{Actors: 12})
	b := Graph(rand.New(rand.NewSource(7)), Config{Actors: 12})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := 0; i < a.NumEdges(); i++ {
		ea, eb := a.Edge(sdf.EdgeID(i)), b.Edge(sdf.EdgeID(i))
		if ea != eb {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestGraphWindowLimitsSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Graph(rng, Config{Actors: 30, Window: 3, EdgeProb: 1})
	for _, e := range g.Edges() {
		if int(e.Dst)-int(e.Src) > 3 {
			t.Errorf("edge %d spans %d..%d beyond window", e.ID, e.Src, e.Dst)
		}
	}
}

func TestGraphQuickProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		actors := 1 + int(n%40)
		g := Graph(rand.New(rand.NewSource(seed)), Config{Actors: actors})
		q, err := g.Repetitions()
		if err != nil {
			return false
		}
		// Balance must hold on every edge.
		for _, e := range g.Edges() {
			if e.Prod*q[e.Src] != e.Cons*q[e.Dst] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGraphPanicsOnZeroActors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero actors")
		}
	}()
	Graph(rand.New(rand.NewSource(1)), Config{})
}
