// Package lifetime implements periodic buffer-lifetime intervals and the
// analyses the paper builds on them: the mixed-radix liveness test (Fig. 18),
// next-occurrence stepping, pairwise intersection of periodic intervals, the
// weighted intersection graph (Fig. 19), and the optimistic and pessimistic
// maximum-clique-weight estimates of Sec. 9.1.
package lifetime

import (
	"fmt"
	"sort"
)

// Period is one periodicity component of a buffer lifetime: the enclosing
// loop repeats Count times with a shift of A schedule steps per iteration
// (A = dur(left(v)) + dur(right(v)) for tree node v, Count = loop(v)).
type Period struct {
	A     int64
	Count int64
}

// Interval is the lifetime of one buffer. The buffer of Size memory cells is
// live during the occurrences
//
//	[Start + sum_i p_i*A_i , Start + sum_i p_i*A_i + Dur)
//
// for every combination p_i in {0, ..., Count_i-1}. Periods must satisfy the
// nesting property A_i*(Count_i-1) < A_{i+1} when sorted ascending, which
// holds by construction for schedule trees and makes the greedy liveness
// test exact.
type Interval struct {
	Name  string // diagnostic label, usually "src->dst"
	Size  int64  // memory cells occupied while live
	Start int64  // earliest start time (schedule steps)
	Dur   int64  // length of each occurrence; > 0
	// Periods sorted by ascending A. Empty for a non-periodic interval.
	Periods []Period
}

// Validate checks structural invariants; analyses assume they hold.
func (iv *Interval) Validate() error {
	if iv.Size <= 0 {
		return fmt.Errorf("lifetime: interval %s has size %d", iv.Name, iv.Size)
	}
	if iv.Dur <= 0 {
		return fmt.Errorf("lifetime: interval %s has duration %d", iv.Name, iv.Dur)
	}
	if iv.Start < 0 {
		return fmt.Errorf("lifetime: interval %s starts at %d", iv.Name, iv.Start)
	}
	prevSpan := iv.Dur
	for i, p := range iv.Periods {
		if p.A <= 0 || p.Count < 2 {
			return fmt.Errorf("lifetime: interval %s period %d invalid (A=%d Count=%d)",
				iv.Name, i, p.A, p.Count)
		}
		if p.A < prevSpan {
			return fmt.Errorf("lifetime: interval %s period %d overlaps inner span (A=%d span=%d)",
				iv.Name, i, p.A, prevSpan)
		}
		// A block of Count occurrences at this level spans at most A*Count
		// steps, which must nest inside one shift of the next level.
		prevSpan = p.A * p.Count
	}
	return nil
}

// Occurrences returns the number of live occurrences (product of counts).
func (iv *Interval) Occurrences() int64 {
	n := int64(1)
	for _, p := range iv.Periods {
		n *= p.Count
	}
	return n
}

// LastStart returns the start of the final occurrence.
func (iv *Interval) LastStart() int64 {
	s := iv.Start
	for _, p := range iv.Periods {
		s += p.A * (p.Count - 1)
	}
	return s
}

// End returns the exclusive end of the final occurrence; the envelope of the
// interval is [Start, End).
func (iv *Interval) End() int64 { return iv.LastStart() + iv.Dur }

// LiveAt reports whether the buffer is live at time T (Fig. 18): it greedily
// decomposes T-Start in the mixed radix defined by the periods, largest
// first, and checks the remainder against Dur.
func (iv *Interval) LiveAt(T int64) bool {
	t := T - iv.Start
	if t < 0 {
		return false
	}
	for i := len(iv.Periods) - 1; i >= 0; i-- {
		p := iv.Periods[i]
		k := t / p.A
		if k > p.Count-1 {
			k = p.Count - 1
		}
		t -= k * p.A
	}
	return t < iv.Dur
}

// prevStart returns the start time of the occurrence with the largest start
// <= T, and false if T precedes the first occurrence.
func (iv *Interval) prevStart(T int64) (int64, bool) {
	t := T - iv.Start
	if t < 0 {
		return 0, false
	}
	s := iv.Start
	for i := len(iv.Periods) - 1; i >= 0; i-- {
		p := iv.Periods[i]
		k := t / p.A
		if k > p.Count-1 {
			k = p.Count - 1
		}
		t -= k * p.A
		s += k * p.A
	}
	return s, true
}

// NextStart returns the start time of the first occurrence with start > T,
// and false if none exists. It implements the mixed-radix increment of
// Sec. 8.4.
func (iv *Interval) NextStart(T int64) (int64, bool) {
	if T < iv.Start {
		return iv.Start, true
	}
	// Decompose to digits k_i (outermost last), then increment.
	t := T - iv.Start
	n := len(iv.Periods)
	k := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		p := iv.Periods[i]
		k[i] = t / p.A
		if k[i] > p.Count-1 {
			k[i] = p.Count - 1
		}
		t -= k[i] * p.A
	}
	// Increment the mixed-radix number (index 0 is least significant).
	for i := 0; i < n; i++ {
		if k[i] < iv.Periods[i].Count-1 {
			k[i]++
			for j := 0; j < i; j++ {
				k[j] = 0
			}
			s := iv.Start
			for x, p := range iv.Periods {
				s += k[x] * p.A
			}
			if s > T {
				return s, true
			}
			// s <= T can happen when the decomposition clamped digits; retry
			// from the incremented position.
			return iv.NextStart(s)
		}
	}
	return 0, false
}

// overlapsWindow reports whether any occurrence of iv intersects the
// half-open window [s, s+d).
func (iv *Interval) overlapsWindow(s, d int64) bool {
	if s+d <= iv.Start || s >= iv.End() {
		return false
	}
	if prev, ok := iv.prevStart(s); ok && prev+iv.Dur > s {
		return true
	}
	next, ok := iv.NextStart(s)
	return ok && next < s+d
}

// maxEnumeration caps how many occurrences Intersects will enumerate before
// falling back to a conservative (envelope-based) answer.
const maxEnumeration = 1 << 16

// Intersects reports whether two periodic intervals are ever live at the
// same instant. It enumerates occurrences of the interval with fewer
// occurrences and window-tests each against the other; if both intervals
// have more than maxEnumeration occurrences it conservatively returns true
// whenever the envelopes overlap.
func Intersects(a, b *Interval) bool {
	if a.Start >= b.End() || b.Start >= a.End() {
		return false
	}
	if len(a.Periods) == 0 && len(b.Periods) == 0 {
		return true // envelopes overlap and both are solid
	}
	if a.Occurrences() > b.Occurrences() {
		a, b = b, a
	}
	if a.Occurrences() > maxEnumeration {
		return true // conservative
	}
	hit := false
	a.forEachOccurrence(func(s int64) bool {
		if b.overlapsWindow(s, a.Dur) {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// forEachOccurrence calls fn with each occurrence start in increasing order;
// fn returning false stops the walk.
func (iv *Interval) forEachOccurrence(fn func(start int64) bool) {
	n := len(iv.Periods)
	k := make([]int64, n)
	for {
		s := iv.Start
		for i, p := range iv.Periods {
			s += k[i] * p.A
		}
		if !fn(s) {
			return
		}
		i := 0
		for ; i < n; i++ {
			k[i]++
			if k[i] < iv.Periods[i].Count {
				break
			}
			k[i] = 0
		}
		if i == n {
			return
		}
	}
}

// String renders the interval compactly for diagnostics.
func (iv *Interval) String() string {
	return fmt.Sprintf("%s[size=%d start=%d dur=%d periods=%v]",
		iv.Name, iv.Size, iv.Start, iv.Dur, iv.Periods)
}

// SortByStart sorts intervals by ascending start time (ties: longer duration
// first). The sort is stable, so remaining ties keep the caller's slice
// order — every caller enumerates intervals in edge-ID order, which makes
// the result deterministic without consulting interval names. Keeping names
// out of the comparison is deliberate: it makes allocation invariant under
// actor renames, which the persistent pass-node store relies on (renaming
// an actor must not invalidate stored allocations).
func SortByStart(ivs []*Interval) {
	sort.SliceStable(ivs, func(i, j int) bool {
		a, b := ivs[i], ivs[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Dur > b.Dur
	})
}

// SortByDuration sorts intervals by descending total live span (envelope
// length), the "ffdur" ordering; ties broken by ascending start, then by
// the caller's slice order (stable sort; see SortByStart on why names are
// excluded from the comparison).
func SortByDuration(ivs []*Interval) {
	sort.SliceStable(ivs, func(i, j int) bool {
		a, b := ivs[i], ivs[j]
		da, db := a.End()-a.Start, b.End()-b.Start
		if da != db {
			return da > db
		}
		return a.Start < b.Start
	})
}
