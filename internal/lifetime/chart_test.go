package lifetime

import (
	"strings"
	"testing"
)

func TestChartRendersLiveness(t *testing.T) {
	iv := &Interval{Name: "AB", Size: 2, Start: 1, Dur: 2}
	out := Chart([]*Interval{iv}, 6, 80)
	// Expect ".##..." on the AB row (live at steps 1 and 2 of 6).
	if !strings.Contains(out, ".##...") {
		t.Errorf("chart missing expected liveness row:\n%s", out)
	}
	if !strings.Contains(out, "[2 cells]") {
		t.Errorf("chart missing size annotation:\n%s", out)
	}
}

func TestChartPeriodic(t *testing.T) {
	iv := paperInterval() // live [0,2) [4,6) [9,11) [13,15)
	out := Chart([]*Interval{iv}, 18, 80)
	if !strings.Contains(out, "##..##...##..##...") {
		t.Errorf("periodic chart wrong:\n%s", out)
	}
}

func TestChartCompression(t *testing.T) {
	iv := &Interval{Name: "x", Size: 1, Start: 0, Dur: 100}
	out := Chart([]*Interval{iv}, 1000, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("unexpected chart shape:\n%s", out)
	}
	// 1000 steps at 10 columns: 100 steps/col; first column live, rest dead.
	if !strings.Contains(lines[1], "#.........") {
		t.Errorf("compressed chart wrong:\n%s", out)
	}
}

func TestMemoryMap(t *testing.T) {
	out := MemoryMap([]struct {
		Name   string
		Offset int64
		Size   int64
	}{{"AB", 0, 4}, {"CD", 4, 2}}, 6)
	if !strings.Contains(out, "shared memory: 6 cells") ||
		!strings.Contains(out, "[     0,     4)  AB") {
		t.Errorf("memory map wrong:\n%s", out)
	}
}
