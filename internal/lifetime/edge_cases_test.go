package lifetime

import "testing"

// TestIntersectsConservativeCap: when both intervals have more occurrences
// than the enumeration cap, Intersects must fall back to a conservative true
// on envelope overlap (never a false negative).
func TestIntersectsConservativeCap(t *testing.T) {
	big := func(start int64) *Interval {
		iv := &Interval{Name: "big", Size: 1, Start: start, Dur: 1}
		// 2^17 occurrences via 17 binary period levels.
		a := int64(1)
		for i := 0; i < 17; i++ {
			a *= 2
			iv.Periods = append(iv.Periods, Period{A: a, Count: 2})
		}
		if err := iv.Validate(); err != nil {
			t.Fatal(err)
		}
		return iv
	}
	x, y := big(0), big(1)
	if x.Occurrences() <= maxEnumeration {
		t.Fatalf("test interval too small: %d occurrences", x.Occurrences())
	}
	if !Intersects(x, y) {
		t.Error("conservative path returned false for overlapping envelopes")
	}
	// Disjoint envelopes stay exact even beyond the cap.
	z := big(10_000_000)
	if Intersects(x, z) {
		t.Error("envelope-disjoint giants reported intersecting")
	}
}

// TestNextStartClampedDigits exercises the recursive retry in NextStart when
// the greedy decomposition clamps a digit.
func TestNextStartClampedDigits(t *testing.T) {
	iv := &Interval{Name: "c", Size: 1, Start: 0, Dur: 1,
		Periods: []Period{{A: 3, Count: 2}, {A: 10, Count: 3}}}
	if err := iv.Validate(); err != nil {
		t.Fatal(err)
	}
	// Occurrences: 0,3,10,13,20,23. Query times between blocks (e.g. 7)
	// clamp the inner digit.
	starts := []int64{0, 3, 10, 13, 20, 23}
	for T := int64(-1); T < 26; T++ {
		want := int64(-1)
		for _, s := range starts {
			if s > T {
				want = s
				break
			}
		}
		got, ok := iv.NextStart(T)
		if want < 0 {
			if ok {
				t.Errorf("NextStart(%d) = %d, want none", T, got)
			}
			continue
		}
		if !ok || got != want {
			t.Errorf("NextStart(%d) = %d/%v, want %d", T, got, ok, want)
		}
	}
}

// TestOverlapsWindowBoundaries pins the half-open interval convention.
func TestOverlapsWindowBoundaries(t *testing.T) {
	iv := &Interval{Name: "w", Size: 1, Start: 10, Dur: 5} // [10,15)
	cases := []struct {
		s, d int64
		want bool
	}{
		{0, 10, false},  // [0,10) touches at 10: disjoint
		{15, 3, false},  // [15,18): disjoint
		{14, 1, true},   // [14,15): overlaps
		{9, 2, true},    // [9,11): overlaps
		{10, 5, true},   // exact
		{12, 100, true}, // spans
	}
	for _, tc := range cases {
		if got := iv.overlapsWindow(tc.s, tc.d); got != tc.want {
			t.Errorf("overlapsWindow(%d,%d) = %v, want %v", tc.s, tc.d, got, tc.want)
		}
	}
}

// TestMCWSingleInterval trivial bounds.
func TestMCWSingleInterval(t *testing.T) {
	iv := &Interval{Name: "s", Size: 7, Start: 3, Dur: 4}
	if MCWOptimistic([]*Interval{iv}) != 7 || MCWPessimistic([]*Interval{iv}) != 7 {
		t.Error("single-interval clique weight should be its size")
	}
	if MCWOptimistic(nil) != 0 || MCWPessimistic(nil) != 0 {
		t.Error("empty instance should have zero clique weight")
	}
}

// TestChartEmpty renders an empty instance without panicking.
func TestChartEmpty(t *testing.T) {
	if out := Chart(nil, 10, 20); out == "" {
		t.Error("empty chart should still have a header")
	}
}
