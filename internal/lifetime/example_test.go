package lifetime_test

import (
	"fmt"
	"strings"

	"repro/internal/lifetime"
)

// ExampleInterval_LiveAt demonstrates the Fig. 17 periodic lifetime: a
// buffer live over [0,2), [4,6), [9,11) and [13,15).
func ExampleInterval_LiveAt() {
	iv := &lifetime.Interval{
		Name: "AB", Size: 1, Start: 0, Dur: 2,
		Periods: []lifetime.Period{{A: 4, Count: 2}, {A: 9, Count: 2}},
	}
	for _, t := range []int64{0, 2, 4, 9, 12, 13} {
		fmt.Printf("t=%d live=%v\n", t, iv.LiveAt(t))
	}
	// Output:
	// t=0 live=true
	// t=2 live=false
	// t=4 live=true
	// t=9 live=true
	// t=12 live=false
	// t=13 live=true
}

// ExampleChart renders the textual Gantt view of two interleaved buffers.
func ExampleChart() {
	ab := &lifetime.Interval{Name: "AB", Size: 1, Start: 0, Dur: 2,
		Periods: []lifetime.Period{{A: 4, Count: 2}}}
	cd := &lifetime.Interval{Name: "CD", Size: 1, Start: 2, Dur: 2,
		Periods: []lifetime.Period{{A: 4, Count: 2}}}
	chart := lifetime.Chart([]*lifetime.Interval{ab, cd}, 8, 80)
	for _, line := range strings.Split(strings.TrimRight(chart, "\n"), "\n") {
		fmt.Println(strings.TrimSpace(line))
	}
	// Output:
	// time 0..8 (1 steps/col)
	// AB  ##..##..  [1 cells]
	// CD  ..##..##  [1 cells]
}
