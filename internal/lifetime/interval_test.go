package lifetime

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperInterval is the Fig. 17 buffer AB: start 0, dur 2, shifts (4, 9),
// counts (2, 2); live over [0,2], [4,6], [9,11], [13,15].
func paperInterval() *Interval {
	return &Interval{
		Name: "AB", Size: 1, Start: 0, Dur: 2,
		Periods: []Period{{A: 4, Count: 2}, {A: 9, Count: 2}},
	}
}

func TestLiveAtPaperExample(t *testing.T) {
	iv := paperInterval()
	if err := iv.Validate(); err != nil {
		t.Fatal(err)
	}
	want := map[int64]bool{0: true, 1: true, 4: true, 5: true, 9: true, 10: true, 13: true, 14: true}
	for tm := int64(-2); tm < 20; tm++ {
		if got := iv.LiveAt(tm); got != want[tm] {
			t.Errorf("LiveAt(%d) = %v, want %v", tm, got, want[tm])
		}
	}
}

func TestOccurrenceEnumeration(t *testing.T) {
	iv := paperInterval()
	var starts []int64
	iv.forEachOccurrence(func(s int64) bool { starts = append(starts, s); return true })
	want := []int64{0, 4, 9, 13}
	if len(starts) != len(want) {
		t.Fatalf("starts = %v, want %v", starts, want)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Errorf("starts[%d] = %d, want %d", i, starts[i], want[i])
		}
	}
	if iv.Occurrences() != 4 {
		t.Errorf("Occurrences = %d", iv.Occurrences())
	}
	if iv.LastStart() != 13 || iv.End() != 15 {
		t.Errorf("LastStart/End = %d/%d, want 13/15", iv.LastStart(), iv.End())
	}
}

func TestNextStartPaperIncrement(t *testing.T) {
	// Sec. 8.4 example: loops (2,2,2), a = (28,13,4) listed outermost first;
	// ascending order (4,13,28). With digits (0,1,1) -> 17, the next start
	// is 28 (digits (1,0,0) in the outer-first notation).
	iv := &Interval{
		Name: "x", Size: 1, Start: 0, Dur: 2,
		Periods: []Period{{A: 4, Count: 2}, {A: 13, Count: 2}, {A: 28, Count: 2}},
	}
	if err := iv.Validate(); err != nil {
		t.Fatal(err)
	}
	next, ok := iv.NextStart(17)
	if !ok || next != 28 {
		t.Errorf("NextStart(17) = %d,%v, want 28,true", next, ok)
	}
	next, ok = iv.NextStart(-5)
	if !ok || next != 0 {
		t.Errorf("NextStart(-5) = %d,%v, want 0,true", next, ok)
	}
	if _, ok := iv.NextStart(45); ok {
		t.Error("NextStart past last occurrence should report none")
	}
}

func TestNextStartAgainstEnumeration(t *testing.T) {
	iv := paperInterval()
	starts := []int64{0, 4, 9, 13}
	for T := int64(-1); T < 16; T++ {
		var want int64 = -1
		for _, s := range starts {
			if s > T {
				want = s
				break
			}
		}
		got, ok := iv.NextStart(T)
		if want == -1 {
			if ok {
				t.Errorf("NextStart(%d) = %d, want none", T, got)
			}
			continue
		}
		if !ok || got != want {
			t.Errorf("NextStart(%d) = %d,%v, want %d", T, got, ok, want)
		}
	}
}

func TestIntersectsDisjointPeriodic(t *testing.T) {
	// Fig. 17: buffers (A,B) and (C,D) interleave without overlapping.
	ab := paperInterval()
	cd := &Interval{
		Name: "CD", Size: 1, Start: 2, Dur: 2,
		Periods: []Period{{A: 4, Count: 2}, {A: 9, Count: 2}},
	}
	if err := cd.Validate(); err != nil {
		t.Fatal(err)
	}
	if Intersects(ab, cd) {
		t.Error("AB and CD should be disjoint (interleaved periodic lifetimes)")
	}
	// Shifting CD by one step makes them overlap at times 1, 5, 10, 14.
	cd.Start = 1
	if !Intersects(ab, cd) {
		t.Error("shifted CD should intersect AB")
	}
}

func TestIntersectsSolid(t *testing.T) {
	a := &Interval{Name: "a", Size: 1, Start: 0, Dur: 5}
	b := &Interval{Name: "b", Size: 1, Start: 5, Dur: 3}
	c := &Interval{Name: "c", Size: 1, Start: 4, Dur: 1}
	if Intersects(a, b) {
		t.Error("[0,5) and [5,8) must not intersect (half-open)")
	}
	if !Intersects(a, c) {
		t.Error("[0,5) and [4,5) must intersect")
	}
}

// TestIntersectsMatchesBruteForce cross-checks Intersects against direct
// enumeration of live time steps for random small periodic intervals.
func TestIntersectsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randomInterval := func() *Interval {
		iv := &Interval{Name: "r", Size: 1, Start: int64(rng.Intn(6)), Dur: 1 + int64(rng.Intn(4))}
		span := iv.Dur
		for lev := 0; lev < rng.Intn(3); lev++ {
			a := span + int64(rng.Intn(5))
			count := int64(2 + rng.Intn(3))
			iv.Periods = append(iv.Periods, Period{A: a, Count: count})
			span = a * count
		}
		return iv
	}
	liveSet := func(iv *Interval) map[int64]bool {
		m := map[int64]bool{}
		iv.forEachOccurrence(func(s int64) bool {
			for d := int64(0); d < iv.Dur; d++ {
				m[s+d] = true
			}
			return true
		})
		return m
	}
	for trial := 0; trial < 500; trial++ {
		a, b := randomInterval(), randomInterval()
		if err := a.Validate(); err != nil {
			t.Fatalf("bad generator: %v", err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("bad generator: %v", err)
		}
		la, lb := liveSet(a), liveSet(b)
		brute := false
		for k := range la {
			if lb[k] {
				brute = true
				break
			}
		}
		if got := Intersects(a, b); got != brute {
			t.Fatalf("trial %d: Intersects = %v, brute force = %v\na=%v\nb=%v",
				trial, got, brute, a, b)
		}
	}
}

// TestLiveAtMatchesEnumerationQuick is a property-based check that LiveAt
// agrees with occurrence enumeration on arbitrary (valid) intervals.
func TestLiveAtMatchesEnumerationQuick(t *testing.T) {
	f := func(start uint8, dur uint8, gaps [2]uint8, counts [2]uint8, probe int16) bool {
		iv := &Interval{Name: "q", Size: 1, Start: int64(start % 16), Dur: 1 + int64(dur%5)}
		span := iv.Dur
		for i := 0; i < 2; i++ {
			if counts[i]%3 == 0 {
				continue
			}
			a := span + int64(gaps[i]%6)
			c := int64(2 + counts[i]%3)
			iv.Periods = append(iv.Periods, Period{A: a, Count: c})
			span = a * c
		}
		if iv.Validate() != nil {
			return true // generator produced an invalid config; skip
		}
		T := int64(probe % 200)
		want := false
		iv.forEachOccurrence(func(s int64) bool {
			if s <= T && T < s+iv.Dur {
				want = true
				return false
			}
			return true
		})
		return iv.LiveAt(T) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadIntervals(t *testing.T) {
	cases := []*Interval{
		{Name: "zero-size", Size: 0, Start: 0, Dur: 1},
		{Name: "zero-dur", Size: 1, Start: 0, Dur: 0},
		{Name: "neg-start", Size: 1, Start: -1, Dur: 1},
		{Name: "bad-count", Size: 1, Start: 0, Dur: 1, Periods: []Period{{A: 2, Count: 1}}},
		{Name: "overlap", Size: 1, Start: 0, Dur: 5, Periods: []Period{{A: 2, Count: 2}}},
	}
	for _, iv := range cases {
		if err := iv.Validate(); err == nil {
			t.Errorf("Validate(%s) accepted invalid interval", iv.Name)
		}
	}
}

func TestSortOrders(t *testing.T) {
	a := &Interval{Name: "a", Size: 1, Start: 5, Dur: 2}
	b := &Interval{Name: "b", Size: 1, Start: 0, Dur: 10}
	c := &Interval{Name: "c", Size: 1, Start: 0, Dur: 3}
	ivs := []*Interval{a, b, c}
	SortByStart(ivs)
	if ivs[0] != b || ivs[1] != c || ivs[2] != a {
		t.Errorf("SortByStart order: %v %v %v", ivs[0].Name, ivs[1].Name, ivs[2].Name)
	}
	ivs = []*Interval{a, c, b}
	SortByDuration(ivs)
	if ivs[0] != b || ivs[1] != c || ivs[2] != a {
		t.Errorf("SortByDuration order: %v %v %v", ivs[0].Name, ivs[1].Name, ivs[2].Name)
	}
}

func TestMCWEstimates(t *testing.T) {
	// Two solid intervals overlapping at [2,4): weights 3+5 = 8.
	a := &Interval{Name: "a", Size: 3, Start: 0, Dur: 4}
	b := &Interval{Name: "b", Size: 5, Start: 2, Dur: 4}
	ivs := []*Interval{a, b}
	if got := MCWOptimistic(ivs); got != 8 {
		t.Errorf("mco = %d, want 8", got)
	}
	if got := MCWPessimistic(ivs); got != 8 {
		t.Errorf("mcp = %d, want 8", got)
	}
	// A periodic interval that interleaves with a solid one: optimistic sees
	// no overlap at the starts, pessimistic sees full envelope overlap.
	p := &Interval{Name: "p", Size: 2, Start: 0, Dur: 1, Periods: []Period{{A: 4, Count: 3}}}
	s := &Interval{Name: "s", Size: 7, Start: 2, Dur: 1}
	ivs = []*Interval{p, s}
	if got := MCWOptimistic(ivs); got != 7 {
		t.Errorf("mco = %d, want 7 (no simultaneous liveness at starts)", got)
	}
	if got := MCWPessimistic(ivs); got != 9 {
		t.Errorf("mcp = %d, want 9 (envelopes overlap)", got)
	}
}

func TestBuildWIG(t *testing.T) {
	a := &Interval{Name: "a", Size: 1, Start: 0, Dur: 4}
	b := &Interval{Name: "b", Size: 1, Start: 2, Dur: 4}
	c := &Interval{Name: "c", Size: 1, Start: 10, Dur: 1}
	w := BuildWIG([]*Interval{a, b, c})
	if len(w.Adj[0]) != 1 || w.Adj[0][0] != 1 {
		t.Errorf("Adj[a] = %v, want [1]", w.Adj[0])
	}
	if len(w.Adj[2]) != 0 {
		t.Errorf("Adj[c] = %v, want empty", w.Adj[2])
	}
}

func TestMCWExampleFromFig20(t *testing.T) {
	// Fig. 20's point: the MCW can occur at a periodic occurrence that is
	// not the earliest start of any interval. Construct: solid interval s
	// over [3,6), periodic p live at [0,1) and [4,5). At time 4 both are
	// live (weight 2) but at earliest starts 0 and 3 the weight is 1 and 1+1.
	p := &Interval{Name: "p", Size: 1, Start: 0, Dur: 1, Periods: []Period{{A: 4, Count: 2}}}
	s := &Interval{Name: "s", Size: 1, Start: 3, Dur: 3}
	// Optimistic: at p.Start=0 weight 1; at s.Start=3 weight 1 (p dead). The
	// true MCW is 2 at t=4; optimistic underestimates as the paper warns.
	if got := MCWOptimistic([]*Interval{p, s}); got != 1 {
		t.Errorf("mco = %d, want 1 (documented underestimate)", got)
	}
	if got := MCWPessimistic([]*Interval{p, s}); got != 2 {
		t.Errorf("mcp = %d, want 2", got)
	}
}
