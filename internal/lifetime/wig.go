package lifetime

// WIG is the weighted intersection graph of an enumerated instance of buffer
// lifetimes (Sec. 9.1): node i is intervals[i], weighted by its size, with an
// edge between two nodes iff their lifetimes overlap in time.
type WIG struct {
	Intervals []*Interval
	// Adj[i] lists the indices of intervals whose lifetimes intersect
	// intervals[i], in ascending order.
	Adj [][]int
}

// BuildWIG constructs the weighted intersection graph for the given
// enumerated instance (order is preserved; the caller chooses the
// enumeration). Pairwise tests are pruned by envelope disjointness.
func BuildWIG(intervals []*Interval) *WIG {
	n := len(intervals)
	w := &WIG{Intervals: intervals, Adj: make([][]int, n)}
	// Sweep candidates by envelope; O(n^2) worst case but cheap tests first.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Intersects(intervals[i], intervals[j]) {
				w.Adj[i] = append(w.Adj[i], j)
				w.Adj[j] = append(w.Adj[j], i)
			}
		}
	}
	return w
}

// MCWOptimistic returns the optimistic maximum-clique-weight estimate (mco):
// the clique weight is evaluated only at the earliest start time of each
// interval, using the exact periodic liveness test. The true MCW may occur at
// a later periodic occurrence, so this can under-estimate.
func MCWOptimistic(intervals []*Interval) int64 {
	var best int64
	for _, iv := range intervals {
		t := iv.Start
		var w int64
		for _, other := range intervals {
			if other.LiveAt(t) {
				w += other.Size
			}
		}
		if w > best {
			best = w
		}
	}
	return best
}

// MCWPessimistic returns the pessimistic estimate (mcp): periodicity is
// ignored and every interval is treated as live over its whole envelope
// [Start, End). The maximum overlap of solid intervals occurs at some
// interval's start time, so evaluating the start times is exact for the
// relaxed instance.
func MCWPessimistic(intervals []*Interval) int64 {
	var best int64
	for _, iv := range intervals {
		t := iv.Start
		var w int64
		for _, other := range intervals {
			if other.Start <= t && t < other.End() {
				w += other.Size
			}
		}
		if w > best {
			best = w
		}
	}
	return best
}
