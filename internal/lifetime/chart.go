package lifetime

import (
	"fmt"
	"strings"
)

// Chart renders the lifetime profile of a set of intervals as an ASCII Gantt
// chart over [0, total) schedule steps — the textual analogue of the paper's
// Figs. 3, 5 and 17. Each row is one buffer; '#' marks live steps. Charts
// wider than maxCols compress several steps per column (a column is live if
// any step in it is).
func Chart(intervals []*Interval, total int64, maxCols int) string {
	if maxCols <= 0 {
		maxCols = 64
	}
	step := int64(1)
	for total/step > int64(maxCols) {
		step++
	}
	cols := int((total + step - 1) / step)
	nameW := 4
	for _, iv := range intervals {
		if len(iv.Name) > nameW {
			nameW = len(iv.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s  time 0..%d (%d steps/col)\n", nameW, "", total, step)
	for _, iv := range intervals {
		fmt.Fprintf(&b, "%*s  ", nameW, iv.Name)
		for c := 0; c < cols; c++ {
			live := false
			for t := int64(c) * step; t < int64(c+1)*step && t < total; t++ {
				if iv.LiveAt(t) {
					live = true
					break
				}
			}
			if live {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		fmt.Fprintf(&b, "  [%d cells]\n", iv.Size)
	}
	return b.String()
}

// MemoryMap renders an allocation as rows of address ranges, one per
// interval, sorted as given.
func MemoryMap(placed []struct {
	Name   string
	Offset int64
	Size   int64
}, total int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "shared memory: %d cells\n", total)
	for _, p := range placed {
		fmt.Fprintf(&b, "  [%6d,%6d)  %s\n", p.Offset, p.Offset+p.Size, p.Name)
	}
	return b.String()
}
