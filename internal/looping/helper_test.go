package looping

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/sched"
	"repro/internal/schedtree"
	"repro/internal/sdf"
)

// allocSchedule runs lifetimes + best first-fit on a schedule, returning the
// total shared memory.
func allocSchedule(t *testing.T, g *sdf.Graph, q sdf.Repetitions, s *sched.Schedule) int64 {
	t.Helper()
	tr, err := schedtree.FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := tr.Lifetimes(q)
	if err != nil {
		t.Fatal(err)
	}
	best := int64(-1)
	for _, strat := range []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart} {
		a := alloc.Allocate(ivs, strat)
		if err := a.Verify(); err != nil {
			t.Fatal(err)
		}
		if best < 0 || a.Total < best {
			best = a.Total
		}
	}
	return best
}
