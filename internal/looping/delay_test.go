package looping

import (
	"testing"

	"repro/internal/sdf"
)

// TestChainSDPPOWithDelays: the precise DP accepts delay-carrying chain
// edges and charges them on the crossing cost.
func TestChainSDPPOWithDelays(t *testing.T) {
	g := sdf.New("dchain")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 2, 1, 1)
	g.AddEdge(b, c, 1, 3, 0)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ChainSDPPO(g, q, []sdf.ActorID{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(q); err != nil {
		t.Fatalf("schedule %s invalid: %v", res.Schedule, err)
	}
	if res.Cost <= 0 {
		t.Errorf("cost = %d", res.Cost)
	}
}

// TestDPPOSingleEdge: the smallest nontrivial chain.
func TestDPPOSingleEdge(t *testing.T) {
	g := sdf.New("pair")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 3, 2, 0)
	q, _ := g.Repetitions() // (2, 3)
	res := mustDPPO(t, g, q, []sdf.ActorID{a, b})
	// One window, one split: cost = TNSE/gcd(2,3) = 6.
	if res.Cost != 6 {
		t.Errorf("cost = %d, want 6", res.Cost)
	}
	bm, _ := res.Schedule.BufMem()
	if bm != 6 {
		t.Errorf("bufmem = %d, want 6", bm)
	}
}

// TestDPPOFactorsCommonDivisor: the fully-factored schedule divides crossing
// buffers by the subchain gcd.
func TestDPPOFactorsCommonDivisor(t *testing.T) {
	g := sdf.New("fact")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 0)
	q := sdf.Repetitions{6, 6}
	res := mustDPPO(t, g, q, []sdf.ActorID{a, b})
	// gcd 6: schedule (6AB), buffer 1.
	if res.Cost != 1 {
		t.Errorf("cost = %d, want 1", res.Cost)
	}
	if got := res.Schedule.String(); got != "(6AB)" {
		t.Errorf("schedule = %q, want (6AB)", got)
	}
}

// TestParallelEdgesBothCharged: two edges between the same actors both
// contribute to the split cost.
func TestParallelEdgesBothCharged(t *testing.T) {
	g := sdf.New("par")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 2, 2, 0)
	g.AddEdge(a, b, 3, 3, 0)
	q := sdf.Repetitions{1, 1}
	res := mustDPPO(t, g, q, []sdf.ActorID{a, b})
	if res.Cost != 5 {
		t.Errorf("cost = %d, want 5 (2 + 3)", res.Cost)
	}
	bm, _ := res.Schedule.BufMem()
	if bm != 5 {
		t.Errorf("bufmem = %d, want 5", bm)
	}
}

// TestSDPPOOverlayBeatsSum: with three independent pipelines feeding one
// sink-side chain position, SDPPO's max-based accounting must be at most
// DPPO's sum-based one.
func TestSDPPOOverlayBeatsSum(t *testing.T) {
	g := sdf.New("cmp")
	var ids []sdf.ActorID
	for _, n := range []string{"A", "B", "C", "D"} {
		ids = append(ids, g.AddActor(n))
	}
	g.AddEdge(ids[0], ids[1], 4, 1, 0)
	g.AddEdge(ids[1], ids[2], 1, 2, 0)
	g.AddEdge(ids[2], ids[3], 1, 2, 0)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	sd := mustSDPPO(t, g, q, ids)
	dp := mustDPPO(t, g, q, ids)
	if sd.Cost > dp.Cost {
		t.Errorf("sdppo estimate %d above dppo %d — overlay model should never charge more", sd.Cost, dp.Cost)
	}
}
