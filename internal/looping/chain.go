// Package looping implements the loop-hierarchy post-optimizations of the
// paper: GDPPO, the dynamic programming post optimization for the non-shared
// buffer model (EQ 2/3); SDPPO, the shared-model heuristic DP (EQ 5) with the
// Sec. 5.1 factoring heuristic; and the precise chain-structured DP with
// (left, cost, right) triples of Sec. 6.
//
// All three take an SDF graph, its repetitions vector and a lexical ordering
// (a topological sort of the precedence graph) and return both a cost
// estimate and a nested single appearance schedule realizing the chosen
// parenthesization.
package looping

import (
	"fmt"

	"repro/internal/num"
	"repro/internal/sched"
	"repro/internal/sdf"
)

// chain precomputes everything the DPs need about a lexical ordering.
type chain struct {
	g     *sdf.Graph
	q     sdf.Repetitions
	order []sdf.ActorID
	pos   []int // pos[actor] = index in order
	// gcd[i][j] = gcd of q over order[i..j].
	gcd [][]int64
	// outAt[i] lists edges whose lexically-earlier endpoint is at position i;
	// edges are stored with their position span (lo < hi).
	spans []edgeSpan
	byLo  [][]int // indices into spans by lo position
	byHi  [][]int // indices into spans by hi position
}

type edgeSpan struct {
	lo, hi int
	tnse   int64
	delay  int64
}

func newChain(g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID) (*chain, error) {
	n := len(order)
	c := &chain{g: g, q: q, order: order, pos: make([]int, g.NumActors())}
	for i, a := range order {
		c.pos[a] = i
	}
	c.gcd = make([][]int64, n)
	for i := 0; i < n; i++ {
		c.gcd[i] = make([]int64, n)
		g := int64(0)
		for j := i; j < n; j++ {
			g = num.GCD(g, q[order[j]])
			c.gcd[i][j] = g
		}
	}
	c.byLo = make([][]int, n)
	c.byHi = make([][]int, n)
	for _, e := range g.Edges() {
		lo, hi := c.pos[e.Src], c.pos[e.Dst]
		if lo == hi {
			continue // self loop: no split ever separates it
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		tnse, err := sdf.TNSE(g, q, e.ID)
		if err != nil {
			return nil, err
		}
		idx := len(c.spans)
		c.spans = append(c.spans, edgeSpan{
			lo: lo, hi: hi,
			tnse:  tnse,
			delay: e.Delay,
		})
		c.byLo[lo] = append(c.byLo[lo], idx)
		c.byHi[hi] = append(c.byHi[hi], idx)
	}
	return c, nil
}

// crossing returns the summed TNSE and delay of edges crossing the split
// between positions k and k+1 within the window [i..j], plus the number of
// such edges. O(E); used only during schedule reconstruction.
func (c *chain) crossing(i, j, k int) (tnse, delay int64, count int) {
	for _, sp := range c.spans {
		if sp.lo >= i && sp.hi <= j && sp.lo <= k && sp.hi > k {
			tnse += sp.tnse
			delay += sp.delay
			count++
		}
	}
	return
}

// forEachSplit visits every split position k in [i, j) of the window [i..j]
// in ascending order, passing the split cost (EQ 3 extended with delays: sum
// over crossing edges of TNSE(e)/gcd(i..j) + del(e)) and the number of
// crossing edges. TNSE is always divisible by the gcd because the gcd
// divides the producer's repetition count. The sweep is incremental, so a
// full DP over all windows costs O(n^3 + n^2 * E/n) rather than O(n^3 * E).
func (c *chain) forEachSplit(i, j int, fn func(k int, cost int64, count int)) {
	g := c.gcd[i][j]
	var tnse, delay int64
	count := 0
	for k := i; k < j; k++ {
		for _, idx := range c.byLo[k] {
			if sp := c.spans[idx]; sp.hi <= j {
				tnse += sp.tnse
				delay += sp.delay
				count++
			}
		}
		for _, idx := range c.byHi[k] {
			if sp := c.spans[idx]; sp.lo >= i {
				tnse -= sp.tnse
				delay -= sp.delay
				count--
			}
		}
		fn(k, tnse/g+delay, count)
	}
}

// buildSchedule reconstructs the nested SAS from a split table. split[i][j]
// holds the chosen k for the window [i..j]. factorOf decides the loop factor
// assigned to window [i..j] given the factor already applied outside it.
func (c *chain) buildSchedule(split [][]int, factorOf func(i, j int, outer int64) int64) *sched.Schedule {
	var build func(i, j int, outer int64) *sched.Node
	build = func(i, j int, outer int64) *sched.Node {
		if i == j {
			return sched.Leaf(c.q[c.order[i]]/outer, c.order[i])
		}
		f := factorOf(i, j, outer)
		k := split[i][j]
		left := build(i, k, outer*f)
		right := build(k+1, j, outer*f)
		return sched.Loop(f, left, right)
	}
	root := build(0, len(c.order)-1, 1)
	return &sched.Schedule{Graph: c.g, Body: []*sched.Node{root}}
}

// alwaysFactor gives window [i..j] its full gcd loop factor (Fact 1 says this
// never hurts under the non-shared model).
func (c *chain) alwaysFactor(i, j int, outer int64) int64 {
	return c.gcd[i][j] / outer
}

// factorIfInternalEdges is the Sec. 5.1 heuristic: factor only when at least
// one edge crosses the chosen split of the window — otherwise looping the two
// halves together merely destroys lifetime disjointness.
func (c *chain) factorIfInternalEdges(split [][]int) func(i, j int, outer int64) int64 {
	return func(i, j int, outer int64) int64 {
		if _, _, count := c.crossing(i, j, split[i][j]); count == 0 {
			return 1
		}
		return c.gcd[i][j] / outer
	}
}

// Result is the outcome of a loop-hierarchy optimization.
type Result struct {
	// Cost is the DP's objective value: total buffer memory (EQ 1) for the
	// non-shared model, or the shared-overlay estimate (EQ 5 / Sec. 6) for
	// the shared models.
	Cost int64
	// Schedule is the nested single appearance schedule realizing the
	// optimal parenthesization for the given lexical order.
	Schedule *sched.Schedule
}

// DPPO computes an order-optimal nested SAS under the non-shared buffer
// model (EQ 2/3). The returned cost is the buffer memory requirement
// bufmem(S) of the schedule for delayless graphs; with delays it is an upper
// bound (delay tokens are charged on every crossing edge). A typed overflow
// error (wrapping num.ErrOverflow) is returned when an edge's TNSE exceeds
// int64.
func DPPO(g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID) (*Result, error) {
	c, err := newChain(g, q, order)
	if err != nil {
		return nil, err
	}
	n := len(order)
	if n == 0 {
		return &Result{Schedule: &sched.Schedule{Graph: g}}, nil
	}
	b := make([][]int64, n)
	split := make([][]int, n)
	for i := range b {
		b[i] = make([]int64, n)
		split[i] = make([]int, n)
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			best := int64(-1)
			bestK := i
			c.forEachSplit(i, j, func(k int, cost int64, _ int) {
				v := b[i][k] + b[k+1][j] + cost
				if best < 0 || v < best {
					best, bestK = v, k
				}
			})
			b[i][j] = best
			split[i][j] = bestK
		}
	}
	if n == 1 {
		return &Result{Cost: 0, Schedule: sched.FlatSAS(g, q, order)}, nil
	}
	return &Result{Cost: b[0][n-1], Schedule: c.buildSchedule(split, c.alwaysFactor)}, nil
}

// SDPPO computes a nested SAS under the shared (coarse-grained) buffer model
// using the heuristic DP of EQ 5: the two halves of a split are assumed to
// overlay perfectly (max instead of sum) and the crossing buffers are charged
// in full. Loop factors follow the Sec. 5.1 internal-edge heuristic. A typed
// overflow error (wrapping num.ErrOverflow) is returned when an edge's TNSE
// exceeds int64.
func SDPPO(g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID) (*Result, error) {
	c, err := newChain(g, q, order)
	if err != nil {
		return nil, err
	}
	n := len(order)
	if n == 0 {
		return &Result{Schedule: &sched.Schedule{Graph: g}}, nil
	}
	if n == 1 {
		return &Result{Cost: 0, Schedule: sched.FlatSAS(g, q, order)}, nil
	}
	b := make([][]int64, n)
	split := make([][]int, n)
	for i := range b {
		b[i] = make([]int64, n)
		split[i] = make([]int, n)
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			best := int64(-1)
			bestK := i
			c.forEachSplit(i, j, func(k int, cost int64, _ int) {
				m := b[i][k]
				if r := b[k+1][j]; r > m {
					m = r
				}
				v := m + cost
				if best < 0 || v < best {
					best, bestK = v, k
				}
			})
			b[i][j] = best
			split[i][j] = bestK
		}
	}
	return &Result{Cost: b[0][n-1], Schedule: c.buildSchedule(split, c.factorIfInternalEdges(split))}, nil
}

// ErrNotChain reports that the precise DP was applied to a lexical ordering
// under which the graph is not chain-structured.
var ErrNotChain = fmt.Errorf("looping: graph is not chain-structured under this order")
