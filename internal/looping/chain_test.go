package looping

import (
	"math/rand"
	"testing"

	"repro/internal/sched"
	"repro/internal/sdf"
)

func mustDPPO(t testing.TB, g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID) *Result {
	t.Helper()
	r, err := DPPO(g, q, order)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustSDPPO(t testing.TB, g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID) *Result {
	t.Helper()
	r, err := SDPPO(g, q, order)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// buildChainGraph makes a chain x0 -> x1 -> ... with the given (prod, cons)
// rate pairs per edge.
func buildChainGraph(t testing.TB, name string, rates [][2]int64) (*sdf.Graph, sdf.Repetitions, []sdf.ActorID) {
	t.Helper()
	g := sdf.New(name)
	n := len(rates) + 1
	ids := make([]sdf.ActorID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddActor(string(rune('A' + i)))
	}
	for i, r := range rates {
		g.AddEdge(ids[i], ids[i+1], r[0], r[1], 0)
	}
	q, err := g.Repetitions()
	if err != nil {
		t.Fatalf("Repetitions: %v", err)
	}
	return g, q, ids
}

func TestDPPOKnownChain(t *testing.T) {
	// A -(2,1)-> B -(1,3)-> C, q = (3,6,2). Order-optimal nesting is
	// (3A(2B))(2C) with bufmem 2+6 = 8 (delayless variant of the paper's
	// Sec. 4 example).
	g, q, ids := buildChainGraph(t, "fig1", [][2]int64{{2, 1}, {1, 3}})
	res := mustDPPO(t, g, q, ids)
	if res.Cost != 8 {
		t.Errorf("DPPO cost = %d, want 8", res.Cost)
	}
	if err := res.Schedule.Validate(q); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	bm, err := res.Schedule.BufMem()
	if err != nil {
		t.Fatal(err)
	}
	if bm != res.Cost {
		t.Errorf("simulated bufmem %d != DP cost %d (schedule %s)", bm, res.Cost, res.Schedule)
	}
	if !res.Schedule.IsSingleAppearance() {
		t.Error("DPPO schedule is not single appearance")
	}
}

// enumerateFactored returns the simulated bufmem of every fully-factored
// binary parenthesization of the order — the brute-force reference for
// order-optimality.
func enumerateFactored(t *testing.T, g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID) []int64 {
	t.Helper()
	c, err := newChain(g, q, order)
	if err != nil {
		t.Fatal(err)
	}
	var build func(i, j int, outer int64) []*sched.Node
	build = func(i, j int, outer int64) []*sched.Node {
		if i == j {
			return []*sched.Node{sched.Leaf(q[order[i]]/outer, order[i])}
		}
		var out []*sched.Node
		f := c.gcd[i][j] / outer
		for k := i; k < j; k++ {
			ls := build(i, k, outer*f)
			rs := build(k+1, j, outer*f)
			for _, l := range ls {
				for _, r := range rs {
					out = append(out, sched.Loop(f, l.Clone(), r.Clone()))
				}
			}
		}
		return out
	}
	var costs []int64
	for _, root := range build(0, len(order)-1, 1) {
		s := &sched.Schedule{Graph: g, Body: []*sched.Node{root}}
		if err := s.Validate(q); err != nil {
			t.Fatalf("enumerated schedule %s invalid: %v", s, err)
		}
		bm, err := s.BufMem()
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, bm)
	}
	return costs
}

func TestDPPOOrderOptimalBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(3) // 3..5 actors
		rates := make([][2]int64, n-1)
		for i := range rates {
			rates[i] = [2]int64{1 + int64(rng.Intn(4)), 1 + int64(rng.Intn(4))}
		}
		g, q, ids := buildChainGraph(t, "rand", rates)
		res := mustDPPO(t, g, q, ids)
		costs := enumerateFactored(t, g, q, ids)
		best := costs[0]
		for _, c := range costs {
			if c < best {
				best = c
			}
		}
		if res.Cost != best {
			t.Errorf("trial %d rates %v: DPPO cost %d, brute force %d", trial, rates, res.Cost, best)
		}
		bm, _ := res.Schedule.BufMem()
		if bm != res.Cost {
			t.Errorf("trial %d: schedule bufmem %d != cost %d", trial, bm, res.Cost)
		}
	}
}

func TestDPPOSingleActor(t *testing.T) {
	g := sdf.New("one")
	a := g.AddActor("A")
	q, _ := g.Repetitions()
	res := mustDPPO(t, g, q, []sdf.ActorID{a})
	if res.Cost != 0 {
		t.Errorf("cost = %d", res.Cost)
	}
	if res.Schedule.String() != "A" {
		t.Errorf("schedule = %q", res.Schedule)
	}
}

func TestSDPPOFactoringHeuristic(t *testing.T) {
	// Two unconnected actors with equal repetition counts: factoring 2(AB)
	// would merge their lifetimes; the heuristic must keep (2A)(2B).
	g := sdf.New("nofactor")
	a := g.AddActor("A")
	b := g.AddActor("B")
	x := g.AddActor("X")
	y := g.AddActor("Y")
	g.AddEdge(x, a, 1, 1, 0) // feeders so A and B have buffers at all
	g.AddEdge(y, b, 1, 1, 0)
	q := sdf.Repetitions{2, 2, 2, 2}
	order := []sdf.ActorID{x, a, y, b}
	res := mustSDPPO(t, g, q, order)
	if err := res.Schedule.Validate(q); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// The split between (X A) and (Y B) has no crossing edges, so the top
	// level must not be factored: expect "...)(..." with both halves looped
	// internally, i.e. the string contains "(2X(2A" style nesting... the
	// robust check: top-level loop factor is 1.
	root := res.Schedule.Body[0]
	if root.Count != 1 {
		t.Errorf("top loop factored to %d despite no crossing edges: %s", root.Count, res.Schedule)
	}
	// DPPO (non-shared) by contrast factors fully.
	res2 := mustDPPO(t, g, q, order)
	if res2.Schedule.Body[0].Count != 2 {
		t.Errorf("DPPO should factor the top loop: %s", res2.Schedule)
	}
}

func TestSDPPOChainEstimate(t *testing.T) {
	// Chain A-(1,2)->B-(1,2)->C: q=(4,2,1). All buffers share via overlay.
	g, q, ids := buildChainGraph(t, "sh", [][2]int64{{1, 2}, {1, 2}})
	res := mustSDPPO(t, g, q, ids)
	if err := res.Schedule.Validate(q); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Estimate: window [0,2], g=1. Splits: k=0: max(0, b[1][2]) + TNSE(AB)
	// = max(0, 2) + 4 = 6; k=1: max(b[0][1],0) + TNSE(BC)/1 = 4/? window
	// [0,1] g=2: 4/2=2 -> max(2,0)+2 = 4. So cost 4.
	if res.Cost != 4 {
		t.Errorf("SDPPO cost = %d, want 4 (schedule %s)", res.Cost, res.Schedule)
	}
}

func TestChainSDPPONotChain(t *testing.T) {
	g := sdf.New("tri")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(a, c, 1, 1, 0)
	g.AddEdge(b, c, 1, 1, 0)
	q, _ := g.Repetitions()
	if _, err := ChainSDPPO(g, q, []sdf.ActorID{a, b, c}); err != ErrNotChain {
		t.Errorf("err = %v, want ErrNotChain", err)
	}
}

func TestChainSDPPOValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(4)
		rates := make([][2]int64, n-1)
		for i := range rates {
			rates[i] = [2]int64{1 + int64(rng.Intn(5)), 1 + int64(rng.Intn(5))}
		}
		g, q, ids := buildChainGraph(t, "pc", rates)
		precise, err := ChainSDPPO(g, q, ids)
		if err != nil {
			t.Fatal(err)
		}
		if err := precise.Schedule.Validate(q); err != nil {
			t.Fatalf("trial %d: invalid schedule %s: %v", trial, precise.Schedule, err)
		}
		heur := mustSDPPO(t, g, q, ids)
		// The triple accounting never charges more than the EQ 5 worst-case
		// assumption, so the precise optimum is at most the heuristic's.
		if precise.Cost > heur.Cost {
			t.Errorf("trial %d rates %v: precise cost %d > heuristic %d",
				trial, rates, precise.Cost, heur.Cost)
		}
	}
}

func TestCombineTriplesCaseI(t *testing.T) {
	l := Triple{Left: 3, Cost: 10, Right: 7}
	r := Triple{Left: 4, Cost: 9, Right: 2}
	got := combineTriples(l, r, 5, 1, 1)
	// t1 = l1 = 3; t2 = max(10, 7+5, 4+5, 9) = 12; t3 = r3 = 2.
	want := Triple{Left: 3, Cost: 12, Right: 2}
	if got != want {
		t.Errorf("case I: got %+v, want %+v", got, want)
	}
}

func TestCombineTriplesCaseII(t *testing.T) {
	l := Triple{Left: 3, Cost: 10, Right: 7}
	r := Triple{Left: 4, Cost: 9, Right: 2}
	got := combineTriples(l, r, 5, 2, 1)
	// t1 = max(3+5, 10) = 10; t2 = max(10+5, 4+5, 9) = 15; t3 = 2.
	want := Triple{Left: 10, Cost: 15, Right: 2}
	if got != want {
		t.Errorf("case II: got %+v, want %+v", got, want)
	}
}

func TestCombineTriplesCaseIII(t *testing.T) {
	l := Triple{Left: 3, Cost: 10, Right: 7}
	r := Triple{Left: 4, Cost: 9, Right: 2}
	got := combineTriples(l, r, 5, 3, 1)
	// t1 = 10+5 = 15; t2 = max(15, 9, 9) = 15; t3 = 2.
	want := Triple{Left: 15, Cost: 15, Right: 2}
	if got != want {
		t.Errorf("case III: got %+v, want %+v", got, want)
	}
}

func TestCombineTriplesMirrored(t *testing.T) {
	l := Triple{Left: 3, Cost: 10, Right: 7}
	r := Triple{Left: 4, Cost: 9, Right: 2}
	// Right side iterated twice: t3 = max(r3+c, r2) = max(7, 9) = 9;
	// mids = {l2, l3+c, r2+c} = {10, 12, 14} -> t2 = 14; t1 = l1 = 3.
	got := combineTriples(l, r, 5, 1, 2)
	want := Triple{Left: 3, Cost: 14, Right: 9}
	if got != want {
		t.Errorf("mirror case: got %+v, want %+v", got, want)
	}
}

func TestCombineTriplesInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		mk := func() Triple {
			c := int64(rng.Intn(20))
			l := int64(rng.Intn(int(c) + 1))
			r := int64(rng.Intn(int(c) + 1))
			return Triple{Left: l, Cost: c, Right: r}
		}
		ratios := []int64{1, 2, 3, 5}
		got := combineTriples(mk(), mk(), int64(rng.Intn(10)),
			ratios[rng.Intn(len(ratios))], ratios[rng.Intn(len(ratios))])
		if got.Left > got.Cost || got.Right > got.Cost {
			t.Fatalf("invariant broken: %+v", got)
		}
	}
}

func TestInsertPareto(t *testing.T) {
	var cell []entry
	cell = insertPareto(cell, entry{t: Triple{5, 10, 5}})
	cell = insertPareto(cell, entry{t: Triple{5, 10, 5}}) // duplicate dominated
	if len(cell) != 1 {
		t.Fatalf("duplicate kept: %d entries", len(cell))
	}
	cell = insertPareto(cell, entry{t: Triple{1, 12, 1}}) // incomparable
	if len(cell) != 2 {
		t.Fatalf("incomparable dropped: %d entries", len(cell))
	}
	cell = insertPareto(cell, entry{t: Triple{1, 9, 1}}) // dominates both
	if len(cell) != 1 || cell[0].t.Cost != 9 {
		t.Fatalf("domination not applied: %+v", cell)
	}
}

func TestInsertParetoBound(t *testing.T) {
	var cell []entry
	for i := 0; i < 3*maxTriples; i++ {
		// All incomparable: increasing cost, decreasing left+right.
		cell = insertPareto(cell, entry{t: Triple{
			Left:  int64(3*maxTriples - i),
			Cost:  int64(100 + i),
			Right: int64(3*maxTriples - i),
		}})
	}
	if len(cell) > maxTriples {
		t.Errorf("frontier grew to %d > %d", len(cell), maxTriples)
	}
}

func TestDPPOWithDelays(t *testing.T) {
	g := sdf.New("delay")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 2, 1, 1)
	q, _ := g.Repetitions()
	res := mustDPPO(t, g, q, []sdf.ActorID{a, b})
	if err := res.Schedule.Validate(q); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	bm, _ := res.Schedule.BufMem()
	// Cost charges TNSE/g + delay = 2/... g = gcd(1,2) = 1, TNSE = 2, +1 = 3.
	if res.Cost != 3 || bm != 3 {
		t.Errorf("cost %d bufmem %d, want 3/3", res.Cost, bm)
	}
}

// TestCombineTriplesAllNineCases exercises every gcd-ratio combination with
// hand-computed expectations (l = (3,10,7), r = (4,9,2), c = 5).
func TestCombineTriplesAllNineCases(t *testing.T) {
	l := Triple{Left: 3, Cost: 10, Right: 7}
	r := Triple{Left: 4, Cost: 9, Right: 2}
	const c = 5
	cases := []struct {
		rL, rR int64
		want   Triple
	}{
		// (1,1): t1=l1; mids={l2, l3+c, r2, r1+c}; t3=r3.
		{1, 1, Triple{3, 12, 2}},
		// (2,1): t1=max(l1+c,l2)=10; mids={l2+c, r2, r1+c}={15,9,9}; t3=2.
		{2, 1, Triple{10, 15, 2}},
		// (>2,1): t1=l2+c=15; mids={15,9,9}; t3=2.
		{3, 1, Triple{15, 15, 2}},
		// (1,2): t1=3; t3=max(r3+c,r2)=9; mids={l2,l3+c,r2+c}={10,12,14}.
		{1, 2, Triple{3, 14, 9}},
		// (1,>2): t1=3; t3=r2+c=14; mids={10,12,14}.
		{1, 3, Triple{3, 14, 14}},
		// (2,2): t1=10; t3=9; mids={l2+c, r2+c}={15,14}.
		{2, 2, Triple{10, 15, 9}},
		// (2,>2): t1=10; t3=14; mids={15,14}.
		{2, 3, Triple{10, 15, 14}},
		// (>2,2): t1=15; t3=9; mids={15,14}.
		{3, 2, Triple{15, 15, 9}},
		// (>2,>2): t1=15; t3=14; mids={15,14}.
		{3, 3, Triple{15, 15, 14}},
	}
	for _, tc := range cases {
		got := combineTriples(l, r, c, tc.rL, tc.rR)
		if got != tc.want {
			t.Errorf("rL=%d rR=%d: got %+v, want %+v", tc.rL, tc.rR, got, tc.want)
		}
	}
}

// TestChainSDPPOAllocationQuality: on random chains, allocating the precise
// DP's schedule should never be much worse than allocating the heuristic's
// (they optimize the same objective; the precise DP models it better).
func TestChainSDPPOAllocationQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	worse := 0
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(4)
		rates := make([][2]int64, n-1)
		for i := range rates {
			rates[i] = [2]int64{1 + int64(rng.Intn(4)), 1 + int64(rng.Intn(4))}
		}
		g, q, ids := buildChainGraph(t, "cq", rates)
		precise, err := ChainSDPPO(g, q, ids)
		if err != nil {
			t.Fatal(err)
		}
		heur := mustSDPPO(t, g, q, ids)
		pa := allocSchedule(t, g, q, precise.Schedule)
		ha := allocSchedule(t, g, q, heur.Schedule)
		if pa > ha {
			worse++
		}
	}
	if worse > 8 {
		t.Errorf("precise DP allocated worse than the heuristic on %d/25 chains", worse)
	}
}
