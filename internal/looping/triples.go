package looping

import (
	"sort"

	"repro/internal/sched"
	"repro/internal/sdf"
)

// Triple is the (left, cost, right) cost of Sec. 6: Cost is the total shared
// buffer memory of the subchain implemented in isolation; Left is the part of
// that memory that can be simultaneously live with the buffer on the input
// edge of the subchain's first actor; Right likewise for the output edge of
// the last actor. Invariant: Left <= Cost and Right <= Cost.
type Triple struct {
	Left, Cost, Right int64
}

// dominates reports component-wise <=.
func (t Triple) dominates(o Triple) bool {
	return t.Left <= o.Left && t.Cost <= o.Cost && t.Right <= o.Right
}

// maxTriples bounds the Pareto frontier kept per DP cell, keeping the space
// and running time polynomial as suggested at the end of Sec. 6.1.
const maxTriples = 8

// entry is one kept alternative in a DP cell, with reconstruction links.
type entry struct {
	t          Triple
	k          int // split position (meaningless for single-actor cells)
	left, rght int // entry indices in the child cells
}

// combineTriples implements the nine gcd-ratio cases of Sec. 6.1. l and r
// are the child triples, cost is the split-crossing buffer size and rL, rR
// are the iteration ratios g(i,k)/g(i,j) and g(k+1,j)/g(i,j).
func combineTriples(l, r Triple, cost, rL, rR int64) Triple {
	var t Triple
	mids := make([]int64, 0, 4)
	switch {
	case rL == 1:
		// S_L runs once per iteration: the crossing buffer overlaps only the
		// right-exposed part of S_L (Case I).
		t.Left = l.Left
		mids = append(mids, l.Cost, l.Right+cost)
	case rL == 2:
		// Two invocations of S_L: the crossing buffer is live across the
		// second one, and the subchain's own input buffer sees either the
		// first invocation alone or the second one plus the crossing buffer
		// (Case II).
		t.Left = max(l.Left+cost, l.Cost)
		mids = append(mids, l.Cost+cost)
	default: // rL > 2
		// Middle invocations of S_L are fully overlapped by the crossing
		// buffer (Case III).
		t.Left = l.Cost + cost
		mids = append(mids, l.Cost+cost)
	}
	switch {
	case rR == 1:
		t.Right = r.Right
		mids = append(mids, r.Cost, r.Left+cost)
	case rR == 2:
		t.Right = max(r.Right+cost, r.Cost)
		mids = append(mids, r.Cost+cost)
	default: // rR > 2
		t.Right = r.Cost + cost
		mids = append(mids, r.Cost+cost)
	}
	for _, m := range mids {
		if m > t.Cost {
			t.Cost = m
		}
	}
	// Keep the invariant Left, Right <= Cost (the exposed parts are subsets
	// of the whole).
	if t.Left > t.Cost {
		t.Cost = t.Left
	}
	if t.Right > t.Cost {
		t.Cost = t.Right
	}
	return t
}

// insertPareto adds a candidate entry to a cell, dropping dominated entries
// and enforcing the frontier bound.
func insertPareto(cell []entry, e entry) []entry {
	for _, ex := range cell {
		if ex.t.dominates(e.t) {
			return cell
		}
	}
	kept := cell[:0]
	for _, ex := range cell {
		if !e.t.dominates(ex.t) {
			kept = append(kept, ex)
		}
	}
	kept = append(kept, e)
	if len(kept) > maxTriples {
		sort.Slice(kept, func(a, b int) bool {
			if kept[a].t.Cost != kept[b].t.Cost {
				return kept[a].t.Cost < kept[b].t.Cost
			}
			return kept[a].t.Left+kept[a].t.Right < kept[b].t.Left+kept[b].t.Right
		})
		kept = kept[:maxTriples]
	}
	return kept
}

// ChainSDPPO runs the precise shared-model DP for chain-structured graphs
// (Sec. 6), carrying Pareto-incomparable cost triples. It returns ErrNotChain
// if some edge connects non-adjacent positions of the order.
func ChainSDPPO(g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID) (*Result, error) {
	if !g.IsChain(order) {
		return nil, ErrNotChain
	}
	c, err := newChain(g, q, order)
	if err != nil {
		return nil, err
	}
	n := len(order)
	if n == 0 {
		return &Result{Schedule: &sched.Schedule{Graph: g}}, nil
	}
	if n == 1 {
		return &Result{Cost: 0, Schedule: sched.FlatSAS(g, q, order)}, nil
	}
	// cells[i][j] holds the Pareto frontier for the window [i..j].
	cells := make([][][]entry, n)
	for i := range cells {
		cells[i] = make([][]entry, n)
		cells[i][i] = []entry{{t: Triple{0, 0, 0}}}
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			var cell []entry
			c.forEachSplit(i, j, func(k int, cost int64, _ int) {
				rL := c.gcd[i][k] / c.gcd[i][j]
				rR := c.gcd[k+1][j] / c.gcd[i][j]
				for li, le := range cells[i][k] {
					for ri, re := range cells[k+1][j] {
						t := combineTriples(le.t, re.t, cost, rL, rR)
						cell = insertPareto(cell, entry{t: t, k: k, left: li, rght: ri})
					}
				}
			})
			cells[i][j] = cell
		}
	}
	// Choose the minimum total cost in the full window.
	full := cells[0][n-1]
	bestIdx := 0
	for i, e := range full {
		if e.t.Cost < full[bestIdx].t.Cost {
			bestIdx = i
		}
	}
	// Reconstruct the split table implied by the chosen entry chain.
	split := make([][]int, n)
	for i := range split {
		split[i] = make([]int, n)
	}
	var mark func(i, j, idx int)
	mark = func(i, j, idx int) {
		if i == j {
			return
		}
		e := cells[i][j][idx]
		split[i][j] = e.k
		mark(i, e.k, e.left)
		mark(e.k+1, j, e.rght)
	}
	mark(0, n-1, bestIdx)
	return &Result{
		Cost:     full[bestIdx].t.Cost,
		Schedule: c.buildSchedule(split, c.alwaysFactor),
	}, nil
}
