package pass

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/sdf"
	"repro/internal/systems"
)

// fullGrid is the 2 strategies × 4 loopings × 3 single-allocator grid used
// throughout the planner tests: 24 points over 8 distinct schedules.
func fullGrid() []Options {
	var pts []Options
	for _, strat := range []OrderStrategy{APGAN, RPMC} {
		for _, la := range []LoopAlg{SDPPOLoops, DPPOLoops, ChainPreciseLoops, FlatLoops} {
			for _, a := range []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart, alloc.BestFitDuration} {
				pts = append(pts, Options{
					Strategy:   strat,
					Looping:    la,
					Allocators: []alloc.Strategy{a},
					Verify:     true,
				})
			}
		}
	}
	return pts
}

func planGraphs() []*sdf.Graph {
	return []*sdf.Graph{
		systems.CDDAT(),
		systems.SatelliteReceiver(),
		systems.OneSidedFilterbank(3, systems.Ratio23),
		systems.Homogeneous(3, 3),
	}
}

func TestPlanMatchesDirectCompile(t *testing.T) {
	for _, g := range planGraphs() {
		pts := fullGrid()
		outs, err := RunGridOutcomes(context.Background(), g, pts, PlanConfig{})
		if err != nil {
			t.Fatalf("%s: plan: %v", g.Name, err)
		}
		if len(outs) != len(pts) {
			t.Fatalf("%s: %d outcomes for %d points", g.Name, len(outs), len(pts))
		}
		for i, o := range outs {
			direct, derr := CompileContext(context.Background(), g, pts[i])
			if derr != nil || o.Err != nil {
				t.Fatalf("%s pt %d: direct err %v, planned err %v", g.Name, i, derr, o.Err)
			}
			if !reflect.DeepEqual(direct, o.Result) {
				t.Errorf("%s pt %d (%v/%v): planned result differs from direct compile",
					g.Name, i, pts[i].Strategy, pts[i].Looping)
			}
		}
	}
}

func TestPlanStatsDedup(t *testing.T) {
	g := systems.SatelliteReceiver()
	p, err := NewPlan(g, fullGrid(), PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[Kind][2]int{ // kind -> {nodes, naive}
		KindRepetitions: {1, 24},
		KindOrder:       {2, 24},
		KindSchedule:    {8, 24},
		KindLifetimes:   {8, 24},
		KindAlloc:       {24, 24},
		KindPartition:   {0, 0}, // fullGrid requests no partitioning
		KindSegalloc:    {0, 0},
		KindAssemble:    {24, 24},
	}
	for _, kc := range p.Stats() {
		w, ok := want[kc.Kind]
		if !ok {
			t.Fatalf("unexpected kind %v in stats", kc.Kind)
		}
		if kc.Nodes != w[0] || kc.Naive != w[1] {
			t.Errorf("%v: nodes/naive = %d/%d, want %d/%d", kc.Kind, kc.Nodes, kc.Naive, w[0], w[1])
		}
		delete(want, kc.Kind)
	}
	if len(want) != 0 {
		t.Errorf("stats missing kinds: %v", want)
	}
	nodes, naive := p.NodeCount()
	if nodes != 1+2+8+8+24+24 || naive != 6*24 {
		t.Errorf("NodeCount = %d/%d", nodes, naive)
	}
}

func TestPlanSharedAllocatorLeaves(t *testing.T) {
	// Two points differing only in Verify share every non-assemble node,
	// including the default ffdur+ffstart allocator pair.
	g := systems.CDDAT()
	p, err := NewPlan(g, []Options{{}, {Verify: true}}, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kc := range p.Stats() {
		switch kc.Kind {
		case KindRepetitions, KindOrder, KindSchedule, KindLifetimes:
			if kc.Nodes != 1 {
				t.Errorf("%v: %d nodes, want 1", kc.Kind, kc.Nodes)
			}
		case KindAlloc:
			if kc.Nodes != 2 || kc.Naive != 4 {
				t.Errorf("alloc nodes/naive = %d/%d, want 2/4", kc.Nodes, kc.Naive)
			}
		case KindPartition, KindSegalloc:
			if kc.Nodes != 0 {
				t.Errorf("%v: %d nodes, want 0 (no partitioned points)", kc.Kind, kc.Nodes)
			}
		case KindAssemble:
			if kc.Nodes != 2 {
				t.Errorf("assemble nodes = %d, want 2", kc.Nodes)
			}
		default:
			t.Fatalf("unexpected kind %v", kc.Kind)
		}
	}
	outs := must2(p.Run(context.Background()), t)
	if !reflect.DeepEqual(outs[0].Allocations, outs[1].Allocations) {
		t.Error("shared allocator leaves produced different allocations")
	}
}

func must2(outs []Outcome, t *testing.T) []*Result {
	t.Helper()
	res := make([]*Result, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("point %d: %v", i, o.Err)
		}
		res[i] = o.Result
	}
	return res
}

func TestPlanCustomOrderSharing(t *testing.T) {
	g := systems.CDDAT()
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopologicalSort(q)
	if err != nil {
		t.Fatal(err)
	}
	pts := []Options{
		{Strategy: CustomOrder, Order: order, Looping: SDPPOLoops},
		{Strategy: CustomOrder, Order: order, Looping: DPPOLoops},
		{Strategy: APGAN, Looping: SDPPOLoops},
	}
	p, err := NewPlan(g, pts, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kc := range p.Stats() {
		if kc.Kind == KindOrder && kc.Nodes != 2 {
			t.Errorf("order nodes = %d, want 2 (shared custom + apgan)", kc.Nodes)
		}
		if kc.Kind == KindSchedule && kc.Nodes != 3 {
			t.Errorf("schedule nodes = %d, want 3", kc.Nodes)
		}
	}
	res := must2(p.Run(context.Background()), t)
	for i, r := range res[:2] {
		if !reflect.DeepEqual(r.Order, order) {
			t.Errorf("point %d lost the custom order", i)
		}
	}
}

func TestPlanCyclicFallback(t *testing.T) {
	// Multirate feedback with delay below one period's consumption: the back
	// edge still constrains precedence, keeping {A, B} strongly connected.
	g := sdf.New("mrc")
	src := g.AddActor("src")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(src, a, 2, 1, 0)
	g.AddEdge(a, b, 3, 2, 0)
	g.AddEdge(b, a, 2, 3, 4)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	if g.IsAcyclic(q) {
		t.Fatal("test graph should be cyclic")
	}
	pts := []Options{
		{Strategy: APGAN, Verify: true},
		{Strategy: RPMC, Verify: true},
	}
	p, err := NewPlan(g, pts, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if len(st) != 1 || st[0].Kind != KindAssemble || st[0].Nodes != 2 || st[0].Naive != 2 {
		t.Fatalf("cyclic stats = %+v, want single assemble 2/2", st)
	}
	outs := p.Run(context.Background())
	for i, o := range outs {
		direct, derr := CompileGeneralContext(context.Background(), g, pts[i])
		if derr != nil || o.Err != nil {
			t.Fatalf("pt %d: direct err %v, planned err %v", i, derr, o.Err)
		}
		if !reflect.DeepEqual(direct, o.Result) {
			t.Errorf("pt %d: cyclic fallback differs from direct CompileGeneral", i)
		}
	}
}

func TestPlanErrorPropagation(t *testing.T) {
	g := systems.CDDAT()
	bad := Options{Strategy: CustomOrder, Order: []sdf.ActorID{0}} // wrong length
	pts := []Options{bad, {Strategy: APGAN}, bad}
	outs, err := RunGridOutcomes(context.Background(), g, pts, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, wantErr := Compile(g, bad)
	if wantErr == nil {
		t.Fatal("expected direct compile of the bad point to fail")
	}
	for _, i := range []int{0, 2} {
		if outs[i].Err == nil || outs[i].Err.Error() != wantErr.Error() {
			t.Errorf("point %d err = %v, want %v", i, outs[i].Err, wantErr)
		}
	}
	if outs[1].Err != nil || outs[1].Result == nil {
		t.Errorf("healthy point poisoned by sibling failure: %v", outs[1].Err)
	}

	// Fail-fast wrapper mirrors the sequential loop: lowest failing index.
	if _, err := RunGrid(context.Background(), g, pts, PlanConfig{}); err == nil ||
		err.Error() != wantErr.Error() {
		t.Errorf("RunGrid err = %v, want %v", err, wantErr)
	}
}

func TestPlanInconsistentGraphFailsAtPlanTime(t *testing.T) {
	g := sdf.New("inconsistent")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 2, 3, 0)
	g.AddEdge(a, b, 1, 1, 0)
	if _, err := NewPlan(g, []Options{{}}, PlanConfig{}); err == nil {
		t.Fatal("expected plan over an inconsistent graph to fail")
	}
}

func TestPlanCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs, err := RunGridOutcomes(ctx, systems.CDDAT(), fullGrid(), PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Err == nil || !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("point %d: err = %v, want context.Canceled", i, o.Err)
		}
		if !strings.Contains(o.Err.Error(), "core: aborted before") {
			t.Errorf("point %d: err %q lost the stage-abort spelling", i, o.Err)
		}
	}
}

func TestPlanEvents(t *testing.T) {
	var (
		mu     sync.Mutex
		enters = map[Key]int{}
		leaves = map[Key]int{}
		kinds  = map[Kind]int{}
	)
	cfg := PlanConfig{GraphKey: "satrec", OnEvent: func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		if e.Enter {
			enters[e.Key]++
			kinds[e.Kind]++
		} else {
			leaves[e.Key]++
		}
	}}
	p, err := NewPlan(systems.SatelliteReceiver(), fullGrid(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	must2(p.Run(context.Background()), t)
	for k, n := range enters {
		if n != 1 {
			t.Errorf("node %s entered %d times, want exactly 1", k, n)
		}
		if leaves[k] != 1 {
			t.Errorf("node %s: %d leave events, want 1", k, leaves[k])
		}
	}
	for _, kc := range p.Stats() {
		if kinds[kc.Kind] != kc.Nodes {
			t.Errorf("%v: %d enter events, stats say %d nodes", kc.Kind, kinds[kc.Kind], kc.Nodes)
		}
	}
	for k := range enters {
		if !strings.Contains(string(k), "satrec") && !strings.Contains(string(k), "|g:satrec") {
			// Only repetitions/order keys embed the graph key directly; the
			// rest inherit it through their parent prefix.
			t.Errorf("node key %q does not carry the configured graph key", k)
		}
	}
}

func TestKindStringsAndKinds(t *testing.T) {
	want := map[Kind]string{
		KindRepetitions: "repetitions",
		KindOrder:       "order",
		KindSchedule:    "schedule",
		KindLifetimes:   "lifetimes",
		KindAlloc:       "alloc",
		KindPartition:   "partition",
		KindSegalloc:    "segalloc",
		KindAssemble:    "assemble",
	}
	ks := Kinds()
	if len(ks) != len(want) {
		t.Fatalf("Kinds() has %d entries, want %d", len(ks), len(want))
	}
	for _, k := range ks {
		if k.String() != want[k] {
			t.Errorf("Kind %d String = %q, want %q", int(k), k.String(), want[k])
		}
	}
}

func TestBetterAllocNameTieBreak(t *testing.T) {
	mk := func(total int64) *alloc.Allocation { return &alloc.Allocation{Total: total} }
	if !betterAlloc(Allocation{Strategy: alloc.FirstFitStart, Alloc: mk(5)}, nil, 0) {
		t.Error("first candidate must always win")
	}
	if !betterAlloc(Allocation{Strategy: alloc.FirstFitStart, Alloc: mk(4)}, mk(5), alloc.FirstFitDuration) {
		t.Error("smaller total must win")
	}
	// Equal totals: "ffdur" < "ffstart" regardless of which came first.
	if !betterAlloc(Allocation{Strategy: alloc.FirstFitDuration, Alloc: mk(5)}, mk(5), alloc.FirstFitStart) {
		t.Error("ffdur should displace ffstart on equal totals")
	}
	if betterAlloc(Allocation{Strategy: alloc.FirstFitStart, Alloc: mk(5)}, mk(5), alloc.FirstFitDuration) {
		t.Error("ffstart must not displace ffdur on equal totals")
	}
}

// TestPlanOnOutcome: the streaming hook fires exactly once per point — on
// success, on propagated upstream failure, and on the cyclic fallback — and
// streams the same outcomes Run returns.
func TestPlanOnOutcome(t *testing.T) {
	collect := func(n int) (func(int, Outcome), []*Outcome, *sync.Mutex) {
		var mu sync.Mutex
		got := make([]*Outcome, n)
		return func(i int, o Outcome) {
			mu.Lock()
			defer mu.Unlock()
			if got[i] != nil {
				t.Errorf("point %d: OnOutcome fired twice", i)
			}
			got[i] = &o
		}, got, &mu
	}
	check := func(got []*Outcome, outs []Outcome) {
		t.Helper()
		for i, o := range outs {
			if got[i] == nil {
				t.Fatalf("point %d: OnOutcome never fired", i)
			}
			if got[i].Result != o.Result || !errors.Is(got[i].Err, o.Err) {
				t.Errorf("point %d: streamed outcome differs from returned", i)
			}
		}
	}

	// Mixed success/failure grid: the bad custom order fails points 0 and 2
	// through a shared node; point 1 succeeds.
	g := systems.CDDAT()
	bad := Options{Strategy: CustomOrder, Order: []sdf.ActorID{0}}
	pts := []Options{bad, {Strategy: APGAN}, bad}
	hook, got, _ := collect(len(pts))
	outs, err := RunGridOutcomes(context.Background(), g, pts, PlanConfig{OnOutcome: hook})
	if err != nil {
		t.Fatal(err)
	}
	check(got, outs)
	if got[0].Err == nil || got[1].Err != nil {
		t.Errorf("streamed errors wrong: %v / %v", got[0].Err, got[1].Err)
	}

	// Cyclic fallback path.
	cg := sdf.New("mrc")
	src := cg.AddActor("src")
	a := cg.AddActor("A")
	b := cg.AddActor("B")
	cg.AddEdge(src, a, 2, 1, 0)
	cg.AddEdge(a, b, 3, 2, 0)
	cg.AddEdge(b, a, 2, 3, 4)
	cpts := []Options{{Strategy: APGAN}, {Strategy: RPMC}}
	hook2, got2, _ := collect(len(cpts))
	outs2, err := RunGridOutcomes(context.Background(), cg, cpts, PlanConfig{OnOutcome: hook2})
	if err != nil {
		t.Fatal(err)
	}
	check(got2, outs2)
}
