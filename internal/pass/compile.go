package pass

import (
	"context"

	"repro/internal/sdf"
)

// Compile runs the full flow on a consistent acyclic SDF graph: the thin
// sequential assembly of the pass graph.
func Compile(g *sdf.Graph, opts Options) (*Result, error) {
	return CompileContext(context.Background(), g, opts)
}

// CompileContext is Compile with cooperative cancellation: the deadline or
// cancellation of ctx is observed at every stage boundary, and the OnStage
// hook (if any) sees each stage begin. A cancelled compilation returns an
// error wrapping ctx.Err() and no Result.
func CompileContext(ctx context.Context, g *sdf.Graph, opts Options) (*Result, error) {
	if err := stageStart(ctx, opts, StageSchedule); err != nil {
		return nil, err
	}
	rep, err := RunRepetitions(g)
	if err != nil {
		return nil, err
	}
	ord, err := RunOrder(g, rep, opts.Strategy, opts.Order)
	if err != nil {
		return nil, err
	}
	if err := stageStart(ctx, opts, StageLoopDP); err != nil {
		return nil, err
	}
	ls, err := RunSchedule(g, rep, ord, opts.Looping)
	if err != nil {
		return nil, err
	}
	if err := stageStart(ctx, opts, StageLifetime); err != nil {
		return nil, err
	}
	lf, err := RunLifetimes(rep, ls)
	if err != nil {
		return nil, err
	}
	if err := stageStart(ctx, opts, StageAlloc); err != nil {
		return nil, err
	}
	allocators := defaultAllocators(opts.Allocators)
	allocs := make([]Allocation, 0, len(allocators))
	for _, strat := range allocators {
		a, err := RunAlloc(lf, strat)
		if err != nil {
			return nil, err
		}
		allocs = append(allocs, a)
	}
	var part Partition
	var seg SegmentedAllocation
	if opts.Partitions >= 2 {
		if err := stageStart(ctx, opts, StagePartition); err != nil {
			return nil, err
		}
		if part, err = RunPartition(g, rep, ord, opts.Partitions); err != nil {
			return nil, err
		}
		if err := stageStart(ctx, opts, StageSegments); err != nil {
			return nil, err
		}
		if seg, err = RunSegAlloc(g, rep, part); err != nil {
			return nil, err
		}
	}
	return finishResult(ctx, g, opts, rep, ord.Actors, ls, lf, allocs, part, seg)
}
