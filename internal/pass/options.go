package pass

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/alloc"
	"repro/internal/merge"
	"repro/internal/sdf"
)

// OrderStrategy selects how the lexical ordering (topological sort) is
// generated.
type OrderStrategy int

const (
	// APGAN clusters adjacent actors bottom-up by maximum repetition gcd.
	APGAN OrderStrategy = iota
	// RPMC partitions the graph top-down by minimum legal cuts.
	RPMC
	// CustomOrder uses Options.Order verbatim.
	CustomOrder
)

// String names the strategy as in the paper's tables ("(A)" / "(R)").
func (s OrderStrategy) String() string {
	switch s {
	case APGAN:
		return "APGAN"
	case RPMC:
		return "RPMC"
	case CustomOrder:
		return "custom"
	default:
		return fmt.Sprintf("OrderStrategy(%d)", int(s))
	}
}

// LoopAlg selects the loop-hierarchy post-optimization.
type LoopAlg int

const (
	// SDPPOLoops is the shared-model heuristic DP (EQ 5) — the paper's
	// default for shared-memory synthesis.
	SDPPOLoops LoopAlg = iota
	// DPPOLoops is the non-shared-model DP (EQ 2/3).
	DPPOLoops
	// ChainPreciseLoops uses the exact triple-cost DP of Sec. 6 when the
	// graph is chain-structured under the chosen order, falling back to
	// SDPPO otherwise.
	ChainPreciseLoops
	// FlatLoops skips post-optimization and keeps the flat SAS.
	FlatLoops
)

// String names the looping algorithm.
func (l LoopAlg) String() string {
	switch l {
	case SDPPOLoops:
		return "sdppo"
	case DPPOLoops:
		return "dppo"
	case ChainPreciseLoops:
		return "chain-sdppo"
	case FlatLoops:
		return "flat"
	default:
		return fmt.Sprintf("LoopAlg(%d)", int(l))
	}
}

// Options configures a compilation (one grid point). The zero value is the
// paper's recommended configuration: RPMC ordering, SDPPO looping,
// first-fit-by-duration and first-fit-by-start allocation with the better
// result selected.
type Options struct {
	Strategy OrderStrategy
	Order    []sdf.ActorID // used only with CustomOrder
	Looping  LoopAlg
	// Allocators to try; the smallest feasible result is selected, ties
	// broken by allocator name. Default: ffdur and ffstart.
	Allocators []alloc.Strategy
	// Verify runs the token-level shared-memory simulator for VerifyPeriods
	// periods (default 2) and fails compilation on any safety violation.
	Verify        bool
	VerifyPeriods int
	// Merging enables the Sec. 12 buffer-merging extension: input/output
	// buffer pairs across consume-before-produce actors are folded into one
	// array when that provably shrinks the packed total. Merged buffers use
	// a combined memory image that the token-level simulator cannot check,
	// so Verify covers the unmerged allocation and merging is applied after.
	Merging bool
	// MergePolicy optionally marks actors whose outputs overlap their
	// inputs (merge.Overlap); nil treats every actor as consume-before-
	// produce.
	MergePolicy func(sdf.ActorID) merge.Policy
	// Partitions, when >= 2, additionally compiles a P-way phased parallel
	// schedule (internal/partition) with a per-segment storage allocation:
	// one private segment per worker plus a shared segment for cross-worker
	// edges, barriers between phases. Values <= 1 select the sequential
	// single-address-space path unchanged — a P=1 "partitioning" is the
	// sequential schedule, so it is never materialized and the artifact
	// bytes stay byte-identical to a compilation without the field.
	Partitions int
	// OnStage, when non-nil, is invoked at the start of every pipeline
	// stage (the Stage* constants, in order) and once with StageDone when
	// compilation succeeds. The hook lets callers attribute wall time to
	// stages without putting clock reads inside the deterministic core:
	// sdfd times the interval between consecutive calls. The hook must not
	// influence compilation — it sees stage names only.
	//
	// The Plan executor ignores OnStage (shared prefix nodes belong to many
	// grid points at once, so per-point stage sequencing is undefined
	// there); plan observers use PlanConfig.OnEvent instead.
	OnStage func(stage string)
}

// Pipeline stage names reported through Options.OnStage and used in
// deadline-exceeded errors. They follow the Fig. 21 flow: the schedule stage
// covers the repetitions vector and the topological sort, loopdp is the
// loop-hierarchy DP, then lifetime extraction and storage allocation;
// verify and merge fire only when the corresponding option is set.
const (
	StageSchedule  = "schedule"
	StageLoopDP    = "loopdp"
	StageLifetime  = "lifetime"
	StageAlloc     = "alloc"
	StagePartition = "partition"
	StageSegments  = "segments"
	StageVerify    = "verify"
	StageMerge     = "merge"
	StageDone      = "done"
)

// optionsKeyMap keeps pass content keys complete: sdflint's keycomplete
// analyzer checks it mirrors Options field for field (same names, same
// types) and that each field is annotated with the pass node whose key
// carries it — or with the reason it needs no key. Adding a pipeline knob
// to Options therefore forces a decision about which key the knob belongs
// to; forgetting would otherwise let two different configurations silently
// alias one deduplicated node, and the lint diagnostic names the exact
// field that still needs a decision.
//
//lint:keymap Options
type optionsKeyMap struct {
	Strategy      OrderStrategy                  // KindOrder key
	Order         []sdf.ActorID                  // KindOrder key (custom orders)
	Looping       LoopAlg                        // KindSchedule key
	Allocators    []alloc.Strategy               // KindAlloc leaf keys, one node per allocator
	Verify        bool                           // KindAssemble: per-point leaf, never shared
	VerifyPeriods int                            // KindAssemble: per-point leaf, never shared
	Merging       bool                           // KindAssemble: per-point leaf, never shared
	MergePolicy   func(sdf.ActorID) merge.Policy // KindAssemble: per-point leaf, never shared
	OnStage       func(stage string)             // observability hook, not a compilation input
	Partitions    int                            // KindPartition key (KindSegalloc inherits it via its parent)
}

// repetitionsKey is the content key of the q pass: the graph alone decides
// it.
func repetitionsKey(graphKey string) Key {
	return Key("repetitions|g:" + graphKey)
}

// orderKey covers the graph plus the ordering fields (Strategy, and the
// explicit actor list for custom orders).
func orderKey(graphKey string, strategy OrderStrategy, custom []sdf.ActorID) Key {
	var b strings.Builder
	b.WriteString("order|g:")
	b.WriteString(graphKey)
	b.WriteString("|strat:")
	b.WriteString(strategy.String())
	if strategy == CustomOrder {
		b.WriteString("|order:")
		for i, a := range custom {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(int(a)))
		}
	}
	return Key(b.String())
}

// scheduleKey extends the order key with the loop-hierarchy algorithm.
func scheduleKey(parent Key, looping LoopAlg) Key {
	return Key("schedule|" + string(parent) + "|loop:" + looping.String())
}

// lifetimesKey is the schedule key verbatim: lifetime extraction reads no
// option fields of its own.
func lifetimesKey(parent Key) Key {
	return Key("lifetimes|" + string(parent))
}

// allocKey extends the lifetimes key with one allocator strategy.
func allocKey(parent Key, strat alloc.Strategy) Key {
	return Key("alloc|" + string(parent) + "|" + strat.String())
}

// partitionKey extends the order key with the worker count: the phased
// schedule reads only the precedence structure (graph + q + order) and P.
func partitionKey(parent Key, partitions int) Key {
	return Key("partition|" + string(parent) + "|p:" + strconv.Itoa(partitions))
}

// segallocKey is the partition key verbatim: the segmented allocation reads
// no option fields beyond those already in its parent's key.
func segallocKey(parent Key) Key {
	return Key("segalloc|" + string(parent))
}

// defaultAllocators resolves the allocator list, applying the paper's
// default pair when the caller left it empty.
func defaultAllocators(in []alloc.Strategy) []alloc.Strategy {
	if len(in) > 0 {
		return in
	}
	return []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart}
}
