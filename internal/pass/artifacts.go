package pass

import (
	"sync"

	"repro/internal/alloc"
	"repro/internal/lifetime"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/schedtree"
	"repro/internal/sdf"
)

// Repetitions is the artifact of the q pass: the balanced minimal
// repetitions vector of the graph.
type Repetitions struct {
	Q sdf.Repetitions
}

// Order is the artifact of the topological-sort pass: the lexical actor
// ordering the schedule is built over.
type Order struct {
	Actors []sdf.ActorID
}

// LoopedSchedule is the artifact of the loop-hierarchy pass: the
// post-optimized nested single appearance schedule plus the DP's objective
// value (bufmem for DPPO, the shared overlay estimate for SDPPO / chain DP).
type LoopedSchedule struct {
	Schedule *sched.Schedule
	DPCost   int64
}

// Lifetimes is the artifact of the lifetime-extraction pass: the schedule
// tree and one buffer lifetime interval per edge (indexed by edge ID). The
// intervals are shared read-only by every downstream allocator node.
type Lifetimes struct {
	Tree      *schedtree.Tree
	Intervals []*lifetime.Interval
	// packs lazily caches the enumerated instance (sorted order + weighted
	// intersection graph) per enumeration, so allocator leaves sharing this
	// artifact build each WIG once instead of once per strategy.
	packs *packCache
}

// packCache holds one lazily-built enumerated instance per enumeration order.
// The alloc package defines two: decreasing duration (ffdur, bfdur) and
// increasing start time (ffstart).
type packCache struct {
	dur, start packOnce
}

type packOnce struct {
	once  sync.Once
	order []*lifetime.Interval
	wig   *lifetime.WIG
}

// enumerated returns the cached (order, WIG) pair for strat, building it on
// first use. ok is false when the artifact carries no cache or the strategy's
// enumeration is unknown; callers then fall back to alloc.Allocate.
func (lf Lifetimes) enumerated(strat alloc.Strategy) (order []*lifetime.Interval, w *lifetime.WIG, ok bool) {
	if lf.packs == nil {
		return nil, nil, false
	}
	var p *packOnce
	switch strat {
	case alloc.FirstFitDuration, alloc.BestFitDuration:
		p = &lf.packs.dur
	case alloc.FirstFitStart:
		p = &lf.packs.start
	default:
		return nil, nil, false
	}
	p.once.Do(func() {
		// The packs cache is the one sanctioned artifact-interior write: a
		// sync.Once-guarded, deterministic, idempotent lazy initialization
		// whose value is a pure function of the (immutable) intervals.
		//lint:ignore artifactmut packOnce lazy init is Once-guarded and deterministic
		p.order = alloc.Enumerate(lf.Intervals, strat)
		//lint:ignore artifactmut packOnce lazy init is Once-guarded and deterministic
		p.wig = lifetime.BuildWIG(p.order)
	})
	return p.order, p.wig, true
}

// Allocation is the artifact of one allocator leaf: the packed shared
// memory image produced by one alloc.Strategy.
type Allocation struct {
	Strategy alloc.Strategy
	Alloc    *alloc.Allocation
}

// Partition is the artifact of the partition pass: the deterministic P-way
// phased schedule (levels over the precedence graph, load-balanced list
// assignment, barrier-delimited phases).
type Partition struct {
	Part *partition.Partitioned
}

// SegmentedAllocation is the artifact of the segmented-allocation pass: the
// parallel memory image with one first-fit-packed private segment per
// worker and a shared segment for cross-worker edges.
type SegmentedAllocation struct {
	Seg *partition.SegAlloc
}

// Result is the outcome of a compilation (one grid point, fully assembled).
type Result struct {
	Graph       *sdf.Graph
	Repetitions sdf.Repetitions
	Order       []sdf.ActorID
	// Schedule is the post-optimized nested single appearance schedule.
	Schedule *sched.Schedule
	Tree     *schedtree.Tree
	// Intervals holds one buffer lifetime per edge (indexed by edge ID).
	Intervals []*lifetime.Interval
	// Allocations per strategy, and the best (smallest) one; equal totals
	// are broken deterministically by allocator name.
	Allocations map[alloc.Strategy]*alloc.Allocation
	Best        *alloc.Allocation
	BestBy      alloc.Strategy
	// Partition and Segmented carry the P-way phased schedule and its
	// per-segment storage allocation; both are nil unless the compilation
	// requested Options.Partitions >= 2 (the sequential path is unchanged).
	Partition *partition.Partitioned
	Segmented *partition.SegAlloc
	Metrics   Metrics
}

// Metrics gathers every number the paper's tables report for one run.
type Metrics struct {
	// DPCost is the looping DP's objective value (bufmem for DPPO, the
	// shared overlay estimate for SDPPO / chain DP).
	DPCost int64
	// NonSharedBufMem is the simulated bufmem (EQ 1) of the final schedule:
	// what a non-shared implementation of this same schedule would need.
	NonSharedBufMem int64
	// MCO and MCP are the optimistic and pessimistic maximum-clique-weight
	// estimates over the extracted lifetimes.
	MCO, MCP int64
	// AllocTotals maps allocator name to achieved total memory.
	AllocTotals map[string]int64
	// SharedTotal is the best allocation total.
	SharedTotal int64
	// MergedTotal is the best allocation total after buffer merging; equal
	// to SharedTotal unless Options.Merging found profitable merges.
	MergedTotal int64
	// Merges is the number of buffer pairs folded by Options.Merging.
	Merges int
	// BMLB is the non-shared buffer memory lower bound over all SASs.
	BMLB int64
	// ParallelTotal is the segmented parallel image's total extent (sum of
	// all worker segments plus the shared segment); 0 when the compilation
	// did not request partitioning. Compare against SharedTotal — the P=1
	// single-address-space baseline — for the memory-vs-P tradeoff.
	ParallelTotal int64
}
