package pass

import (
	"context"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/apgan"
	"repro/internal/lifetime"
	"repro/internal/looping"
	"repro/internal/merge"
	"repro/internal/partition"
	"repro/internal/rpmc"
	"repro/internal/sched"
	"repro/internal/schedtree"
	"repro/internal/sdf"
	"repro/internal/sim"
)

// Error messages keep the historical "core:" prefix: these passes are the
// body of the public core.Compile API, and downstream consumers (the fuzzer's
// crash buckets, service error envelopes, tests) key on that spelling.

// RunRepetitions computes the repetitions vector artifact.
func RunRepetitions(g *sdf.Graph) (Repetitions, error) {
	q, err := g.Repetitions()
	if err != nil {
		return Repetitions{}, err
	}
	return Repetitions{Q: q}, nil
}

// RunOrder generates the lexical ordering artifact under the given strategy
// (custom is the caller-supplied actor list).
func RunOrder(g *sdf.Graph, rep Repetitions, strategy OrderStrategy, custom []sdf.ActorID) (Order, error) {
	switch strategy {
	case APGAN:
		res, err := apgan.Run(g, rep.Q)
		if err != nil {
			return Order{}, err
		}
		return Order{Actors: res.Order}, nil
	case RPMC:
		order, err := rpmc.Order(g, rep.Q)
		if err != nil {
			return Order{}, err
		}
		return Order{Actors: order}, nil
	case CustomOrder:
		if len(custom) != g.NumActors() {
			return Order{}, fmt.Errorf("core: custom order has %d actors, graph has %d",
				len(custom), g.NumActors())
		}
		return Order{Actors: custom}, nil
	default:
		return Order{}, fmt.Errorf("core: unknown order strategy %v", strategy)
	}
}

// RunSchedule builds and validates the looped single appearance schedule
// artifact for one loop-hierarchy algorithm.
func RunSchedule(g *sdf.Graph, rep Repetitions, ord Order, la LoopAlg) (LoopedSchedule, error) {
	s, cost, err := makeLoops(g, rep.Q, ord.Actors, la)
	if err != nil {
		return LoopedSchedule{}, err
	}
	if err := s.Validate(rep.Q); err != nil {
		return LoopedSchedule{}, fmt.Errorf("core: generated schedule %s is invalid: %w", s, err)
	}
	return LoopedSchedule{Schedule: s, DPCost: cost}, nil
}

func makeLoops(g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID, la LoopAlg) (*sched.Schedule, int64, error) {
	switch la {
	case SDPPOLoops:
		r, err := looping.SDPPO(g, q, order)
		if err != nil {
			return nil, 0, err
		}
		return r.Schedule, r.Cost, nil
	case DPPOLoops:
		r, err := looping.DPPO(g, q, order)
		if err != nil {
			return nil, 0, err
		}
		return r.Schedule, r.Cost, nil
	case ChainPreciseLoops:
		if g.IsChain(order) {
			r, err := looping.ChainSDPPO(g, q, order)
			if err != nil {
				return nil, 0, err
			}
			return r.Schedule, r.Cost, nil
		}
		r, err := looping.SDPPO(g, q, order)
		if err != nil {
			return nil, 0, err
		}
		return r.Schedule, r.Cost, nil
	case FlatLoops:
		s := sched.FlatSAS(g, q, order)
		bm, err := s.BufMem()
		if err != nil {
			return nil, 0, err
		}
		return s, bm, nil
	default:
		return nil, 0, fmt.Errorf("core: unknown looping algorithm %v", la)
	}
}

// RunLifetimes extracts the schedule tree and the per-edge buffer lifetime
// intervals.
func RunLifetimes(rep Repetitions, ls LoopedSchedule) (Lifetimes, error) {
	tree, err := schedtree.FromSchedule(ls.Schedule)
	if err != nil {
		return Lifetimes{}, err
	}
	intervals, err := tree.Lifetimes(rep.Q)
	if err != nil {
		return Lifetimes{}, err
	}
	return Lifetimes{Tree: tree, Intervals: intervals, packs: &packCache{}}, nil
}

// RunAlloc packs one allocator's shared memory image over the extracted
// lifetimes. The artifact is read, never written — the interval slice and the
// cached enumerated instances — so many allocator nodes may share one
// Lifetimes artifact concurrently.
func RunAlloc(lf Lifetimes, strat alloc.Strategy) (Allocation, error) {
	var a *alloc.Allocation
	if order, w, ok := lf.enumerated(strat); ok {
		a = alloc.AllocateEnumerated(order, w, strat)
	} else {
		a = alloc.Allocate(lf.Intervals, strat)
	}
	if err := a.Verify(); err != nil {
		return Allocation{}, fmt.Errorf("core: %v allocation infeasible: %w", strat, err)
	}
	return Allocation{Strategy: strat, Alloc: a}, nil
}

// RunPartition builds the P-way phased schedule artifact over the
// precedence levels of the ordered graph. partitions must be >= 2: the
// sequential path never materializes a partition artifact (P=1 is the
// sequential schedule by definition), which is what keeps Partitions <= 1
// compilations byte-identical to the pre-partitioning pipeline.
func RunPartition(g *sdf.Graph, rep Repetitions, ord Order, partitions int) (Partition, error) {
	if partitions < 2 {
		return Partition{}, fmt.Errorf("core: partition pass needs Partitions >= 2, got %d", partitions)
	}
	p, err := partition.Run(g, rep.Q, ord.Actors, partitions)
	if err != nil {
		return Partition{}, err
	}
	return Partition{Part: p}, nil
}

// RunSegAlloc packs the per-segment parallel memory image for a phased
// schedule: phase-axis lifetimes, one first-fit segment per worker plus the
// shared cross-worker segment.
func RunSegAlloc(g *sdf.Graph, rep Repetitions, part Partition) (SegmentedAllocation, error) {
	seg, err := partition.Allocate(g, rep.Q, part.Part)
	if err != nil {
		return SegmentedAllocation{}, err
	}
	return SegmentedAllocation{Seg: seg}, nil
}

// betterAlloc reports whether candidate beats the current best allocation:
// strictly smaller total, or — the deterministic tie-break — equal total
// with a lexicographically smaller allocator name. Tie-breaking by name
// rather than by the caller's Allocators slice order keeps artifact bytes
// stable across equivalent option spellings.
func betterAlloc(cand Allocation, best *alloc.Allocation, bestBy alloc.Strategy) bool {
	if best == nil || cand.Alloc.Total < best.Total {
		return true
	}
	return cand.Alloc.Total == best.Total && cand.Strategy.String() < bestBy.String()
}

// stageStart is the per-stage checkpoint of the context-aware entry points:
// it aborts promptly once ctx is cancelled or past its deadline (wrapping
// the context error so callers can errors.Is on it) and notifies the
// OnStage hook. Cancellation is checked between stages, not inside them —
// the individual passes stay pure functions with no context plumbing.
func stageStart(ctx context.Context, opts Options, stage string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: aborted before %s stage: %w", stage, err)
	}
	if opts.OnStage != nil {
		opts.OnStage(stage)
	}
	return nil
}

// finishResult assembles one grid point's Result from its pass artifacts:
// allocation bookkeeping with the name tie-break, the metrics block, and
// the optional verify and merge stages. It is the single assembly shared by
// the sequential CompileContext and the Plan executor, which is what keeps
// the two paths byte-identical.
func finishResult(ctx context.Context, g *sdf.Graph, opts Options, rep Repetitions,
	order []sdf.ActorID, ls LoopedSchedule, lf Lifetimes, allocs []Allocation,
	part Partition, seg SegmentedAllocation) (*Result, error) {
	res := &Result{
		Graph:       g,
		Repetitions: rep.Q,
		Order:       order,
		Schedule:    ls.Schedule,
		Tree:        lf.Tree,
		Intervals:   lf.Intervals,
		Allocations: make(map[alloc.Strategy]*alloc.Allocation, len(allocs)),
		Partition:   part.Part,
		Segmented:   seg.Seg,
	}
	res.Metrics.DPCost = ls.DPCost
	res.Metrics.AllocTotals = make(map[string]int64, len(allocs))
	for _, a := range allocs {
		res.Allocations[a.Strategy] = a.Alloc
		res.Metrics.AllocTotals[a.Strategy.String()] = a.Alloc.Total
		if betterAlloc(a, res.Best, res.BestBy) {
			res.Best = a.Alloc
			res.BestBy = a.Strategy
		}
	}
	res.Metrics.SharedTotal = res.Best.Total
	res.Metrics.MCO = lifetime.MCWOptimistic(lf.Intervals)
	res.Metrics.MCP = lifetime.MCWPessimistic(lf.Intervals)
	bmlb, err := g.BMLB()
	if err != nil {
		return nil, err
	}
	res.Metrics.BMLB = bmlb
	bm, err := ls.Schedule.BufMem()
	if err != nil {
		return nil, err
	}
	res.Metrics.NonSharedBufMem = bm
	if res.Segmented != nil {
		res.Metrics.ParallelTotal = res.Segmented.Total
	}

	if opts.Verify {
		if err := stageStart(ctx, opts, StageVerify); err != nil {
			return nil, err
		}
		periods := opts.VerifyPeriods
		if periods <= 0 {
			periods = 2
		}
		if err := sim.Run(ls.Schedule, rep.Q, lf.Intervals, res.Best, periods); err != nil {
			return nil, fmt.Errorf("core: verification failed: %w", err)
		}
		if res.Partition != nil {
			if err := sim.RunPhased(g, rep.Q, res.Partition, res.Segmented, periods); err != nil {
				return nil, fmt.Errorf("core: phased verification failed: %w", err)
			}
		}
	}

	res.Metrics.MergedTotal = res.Metrics.SharedTotal
	if opts.Merging {
		if err := stageStart(ctx, opts, StageMerge); err != nil {
			return nil, err
		}
		total, merges, err := applyMerging(res, opts, defaultAllocators(opts.Allocators))
		if err != nil {
			return nil, err
		}
		res.Metrics.MergedTotal = total
		res.Metrics.Merges = merges
	}
	if err := stageStart(ctx, opts, StageDone); err != nil {
		return nil, err
	}
	return res, nil
}

// applyMerging grows an allocation-aware merge plan (Sec. 12): candidates
// with non-periodic lifetimes are folded one by one, keeping each merge only
// if the packed total shrinks. Merge trials operate on fresh interval
// enumerations (merge.Apply copies), never on the shared Lifetimes artifact.
func applyMerging(res *Result, opts Options, allocators []alloc.Strategy) (int64, int, error) {
	cands := merge.Candidates(res.Schedule, opts.MergePolicy)
	var solid []merge.Candidate
	for _, c := range cands {
		if len(res.Intervals[c.In].Periods) == 0 && len(res.Intervals[c.Out].Periods) == 0 {
			solid = append(solid, c)
		}
	}
	allocBest := func(ivs []*lifetime.Interval) (int64, error) {
		best := int64(-1)
		for _, s := range allocators {
			a := alloc.Allocate(ivs, s)
			if err := a.Verify(); err != nil {
				return 0, fmt.Errorf("core: merged allocation infeasible: %w", err)
			}
			if best < 0 || a.Total < best {
				best = a.Total
			}
		}
		return best, nil
	}
	best := res.Metrics.SharedTotal
	used := map[sdf.EdgeID]bool{}
	var plan []merge.Candidate
	for _, c := range solid {
		if c.Gain <= 0 || used[c.In] || used[c.Out] {
			continue
		}
		trial, err := allocBest(merge.Apply(res.Intervals, append(plan, c)))
		if err != nil {
			return 0, 0, err
		}
		if trial < best {
			plan = append(plan, c)
			used[c.In], used[c.Out] = true, true
			best = trial
		}
	}
	return best, len(plan), nil
}
