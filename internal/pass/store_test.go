package pass

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/sdf"
	"repro/internal/systems"
)

// mapStore is an in-memory Store for tests: the same contract as
// internal/nodestore without the disk.
type mapStore struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int
	hits int
	puts int
}

func newMapStore() *mapStore { return &mapStore{m: map[string][]byte{}} }

func (s *mapStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	data, ok := s.m[key]
	if ok {
		s.hits++
	}
	return data, ok
}

func (s *mapStore) Put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; ok {
		return
	}
	s.puts++
	s.m[key] = append([]byte(nil), data...)
}

// garbageStore answers every Get with bytes that cannot decode, modeling a
// store whose payloads survived the checksum but not the schema: the plan
// must fall back to executing, never fail, never misdecode.
type garbageStore struct{}

func (garbageStore) Get(key string) ([]byte, bool) { return []byte{0xff, 0x01, 0x7f}, true }
func (garbageStore) Put(key string, data []byte)   {}

// renamed returns a structural copy of g with every actor renamed.
func renamed(g *sdf.Graph) *sdf.Graph {
	out := sdf.New(g.Name + "-renamed")
	for _, a := range g.Actors() {
		out.AddActor("x_" + a.Name)
	}
	for _, e := range g.Edges() {
		id := out.AddEdge(e.Src, e.Dst, e.Prod, e.Cons, e.Delay)
		out.SetWords(id, e.Words)
	}
	return out
}

func TestStoreKeysNameInvariant(t *testing.T) {
	g := systems.SatelliteReceiver()
	a, b := newStoreKeys(g), newStoreKeys(renamed(g))
	if a.repKey() != b.repKey() {
		t.Error("repetitions store key depends on actor names")
	}
	if a.orderKey(RPMC, nil) != b.orderKey(RPMC, nil) {
		t.Error("order store key depends on actor names")
	}
	oh := []byte("orderhash")
	if a.schedKey(oh, SDPPOLoops) != b.schedKey(oh, SDPPOLoops) {
		t.Error("schedule store key depends on actor names")
	}
	if a.lifeKey(oh) != b.lifeKey(oh) {
		t.Error("lifetimes store key depends on actor names")
	}
}

func TestStoreKeysProjections(t *testing.T) {
	base := systems.SatelliteReceiver()

	delayed := base.Clone()
	// Clone copies edges; perturb a delay via rebuild (sdf has no edge
	// mutator for delay), so build a copy with one delay changed.
	delayed = sdf.New(base.Name)
	for _, a := range base.Actors() {
		delayed.AddActor(a.Name)
	}
	for _, e := range base.Edges() {
		d := e.Delay
		if e.ID == 0 {
			d += 3
		}
		id := delayed.AddEdge(e.Src, e.Dst, e.Prod, e.Cons, d)
		delayed.SetWords(id, e.Words)
	}

	worded := base.Clone()
	worded.SetWords(0, 7)

	b, dl, w := newStoreKeys(base), newStoreKeys(delayed), newStoreKeys(worded)
	oh := []byte("orderhash")

	// Delay edits: q is delay-blind, everything from ordering down reads it.
	if b.repKey() != dl.repKey() {
		t.Error("repetitions key changed on a delay edit")
	}
	if b.orderKey(RPMC, nil) == dl.orderKey(RPMC, nil) {
		t.Error("order key survived a delay edit (RPMC reads delays)")
	}
	if b.schedKey(oh, SDPPOLoops) == dl.schedKey(oh, SDPPOLoops) {
		t.Error("schedule key survived a delay edit (loop DPs read delays)")
	}

	// Words edits: only FlatLoops' DP cost and the lifetimes sizes read
	// Words; q, ordering, and the non-flat loop DPs are words-blind.
	if b.repKey() != w.repKey() || b.orderKey(RPMC, nil) != w.orderKey(RPMC, nil) {
		t.Error("repetitions/order keys changed on a words edit")
	}
	if b.schedKey(oh, SDPPOLoops) != w.schedKey(oh, SDPPOLoops) {
		t.Error("SDPPO schedule key changed on a words edit (SDPPO is words-blind)")
	}
	if b.schedKey(oh, FlatLoops) == w.schedKey(oh, FlatLoops) {
		t.Error("flat schedule key survived a words edit (flat DP cost is BufMem)")
	}
	if b.lifeKey(oh) == w.lifeKey(oh) {
		t.Error("lifetimes key survived a words edit")
	}

	// Chaining: a different upstream hash yields a different key.
	if b.schedKey([]byte("other"), SDPPOLoops) == b.schedKey(oh, SDPPOLoops) {
		t.Error("schedule key ignores the order hash")
	}
	if allocStoreKey([]byte("a"), alloc.FirstFitDuration) == allocStoreKey([]byte("b"), alloc.FirstFitDuration) {
		t.Error("alloc key ignores the lifetimes hash")
	}
	if allocStoreKey(oh, alloc.FirstFitDuration) == allocStoreKey(oh, alloc.FirstFitStart) {
		t.Error("alloc key ignores the strategy")
	}
}

func TestStoreKeyCustomOrder(t *testing.T) {
	g := systems.CDDAT()
	sk := newStoreKeys(g)
	ord := make([]sdf.ActorID, g.NumActors())
	for i := range ord {
		ord[i] = sdf.ActorID(i)
	}
	rev := make([]sdf.ActorID, len(ord))
	for i := range rev {
		rev[i] = ord[len(ord)-1-i]
	}
	if sk.orderKey(CustomOrder, ord) == sk.orderKey(CustomOrder, rev) {
		t.Error("custom order key ignores the actor list")
	}
	if sk.orderKey(RPMC, nil) == sk.orderKey(APGAN, nil) {
		t.Error("order key ignores the strategy")
	}
}

func TestKindTagPanicsOnAssemble(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("kindTag(KindAssemble) should panic: assembled results are never stored")
		}
	}()
	kindTag(KindAssemble)
}

// TestCodecRoundTrip runs the real passes on a real system and round-trips
// every artifact through its store encoding, checking semantic identity —
// including the pointer identity decodeAlloc must maintain into the
// lifetimes artifact.
func TestCodecRoundTrip(t *testing.T) {
	for _, g := range planGraphs() {
		rep, err := RunRepetitions(g)
		if err != nil {
			t.Fatal(err)
		}
		gotRep, err := decodeRep(g, encodeRep(rep))
		if err != nil || !reflect.DeepEqual(gotRep, rep) {
			t.Fatalf("%s: repetitions round trip: %v (%v vs %v)", g.Name, err, gotRep, rep)
		}

		for _, strat := range []OrderStrategy{APGAN, RPMC} {
			ord, err := RunOrder(g, rep, strat, nil)
			if err != nil {
				t.Fatal(err)
			}
			gotOrd, err := decodeOrder(g, encodeOrder(ord))
			if err != nil || !reflect.DeepEqual(gotOrd, ord) {
				t.Fatalf("%s/%v: order round trip: %v", g.Name, strat, err)
			}

			for _, la := range []LoopAlg{SDPPOLoops, DPPOLoops, ChainPreciseLoops, FlatLoops} {
				ls, err := RunSchedule(g, rep, ord, la)
				if err != nil {
					t.Fatal(err)
				}
				gotLs, err := decodeSched(g, encodeSched(ls))
				if err != nil {
					t.Fatalf("%s/%v/%v: schedule decode: %v", g.Name, strat, la, err)
				}
				if gotLs.DPCost != ls.DPCost || gotLs.Schedule.String() != ls.Schedule.String() {
					t.Fatalf("%s/%v/%v: schedule round trip mismatch: %q vs %q",
						g.Name, strat, la, gotLs.Schedule.String(), ls.Schedule.String())
				}
				if !reflect.DeepEqual(gotLs.Schedule.Body, ls.Schedule.Body) {
					t.Fatalf("%s/%v/%v: schedule term tree differs structurally", g.Name, strat, la)
				}

				lf, err := RunLifetimes(rep, ls)
				if err != nil {
					t.Fatal(err)
				}
				gotLf, err := decodeLife(g, gotLs, encodeLife(lf))
				if err != nil {
					t.Fatalf("%s/%v/%v: lifetimes decode: %v", g.Name, strat, la, err)
				}
				if !reflect.DeepEqual(gotLf.Intervals, lf.Intervals) {
					t.Fatalf("%s/%v/%v: lifetime intervals differ after round trip", g.Name, strat, la)
				}

				al, err := RunAlloc(lf, alloc.FirstFitDuration)
				if err != nil {
					t.Fatal(err)
				}
				data, err := encodeAlloc(lf, al)
				if err != nil {
					t.Fatal(err)
				}
				gotAl, err := decodeAlloc(gotLf, alloc.FirstFitDuration, data)
				if err != nil {
					t.Fatalf("%s/%v/%v: alloc decode: %v", g.Name, strat, la, err)
				}
				if gotAl.Alloc.Total != al.Alloc.Total || len(gotAl.Alloc.Placements) != len(al.Alloc.Placements) {
					t.Fatalf("%s/%v/%v: alloc round trip totals differ", g.Name, strat, la)
				}
				for i, p := range gotAl.Alloc.Placements {
					want := al.Alloc.Placements[i]
					if p.Offset != want.Offset || !reflect.DeepEqual(*p.Interval, *want.Interval) {
						t.Fatalf("%s/%v/%v: placement %d differs after round trip", g.Name, strat, la, i)
					}
					// The decoded placement must reference the decoded
					// lifetimes artifact's interval object itself.
					found := false
					for _, iv := range gotLf.Intervals {
						if iv == p.Interval {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%s/%v/%v: placement %d does not alias the lifetimes artifact", g.Name, strat, la, i)
					}
				}
			}
		}
	}
}

func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	g := systems.CDDAT()
	rep, _ := RunRepetitions(g)
	ord, _ := RunOrder(g, rep, RPMC, nil)
	ls, _ := RunSchedule(g, rep, ord, SDPPOLoops)
	lf, _ := RunLifetimes(rep, ls)

	if _, err := decodeRep(g, nil); err == nil {
		t.Error("decodeRep accepted an empty payload")
	}
	if _, err := decodeRep(g, append(encodeRep(rep), 0)); err == nil {
		t.Error("decodeRep accepted trailing bytes")
	}
	if _, err := decodeOrder(g, encodeRep(rep)); err == nil {
		t.Error("decodeOrder accepted a repetitions payload")
	}
	short := encodeSched(ls)
	if _, err := decodeSched(g, short[:len(short)-1]); err == nil {
		t.Error("decodeSched accepted a truncated payload")
	}
	if _, err := decodeLife(g, ls, encodeLife(lf)[:3]); err == nil {
		t.Error("decodeLife accepted a truncated payload")
	}
	al, _ := RunAlloc(lf, alloc.FirstFitStart)
	data, err := encodeAlloc(lf, al)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeAlloc(lf, alloc.FirstFitStart, data[:len(data)-1]); err == nil {
		t.Error("decodeAlloc accepted a truncated payload")
	}
}

// TestPlanSecondRunLoadsEverything compiles the same grid twice against one
// store: the second run must execute only assemble nodes, load everything
// else, emit no events for loaded nodes, and return results identical to
// the first run's.
func TestPlanSecondRunLoadsEverything(t *testing.T) {
	g := systems.SatelliteReceiver()
	st := newMapStore()
	pts := fullGrid()

	outs1, err := RunGridOutcomes(context.Background(), g, pts, PlanConfig{Store: st})
	if err != nil {
		t.Fatal(err)
	}

	var events []string
	var mu sync.Mutex
	p, err := NewPlan(g, pts, PlanConfig{Store: st, OnEvent: func(e Event) {
		if e.Enter {
			mu.Lock()
			events = append(events, e.Kind.String())
			mu.Unlock()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	outs2 := p.Run(context.Background())

	for _, kc := range p.Stats() {
		switch kc.Kind {
		case KindAssemble:
			if kc.Executed != kc.Nodes || kc.Loaded != 0 {
				t.Errorf("assemble: executed/loaded = %d/%d, want %d/0", kc.Executed, kc.Loaded, kc.Nodes)
			}
		case KindRepetitions, KindOrder, KindSchedule, KindLifetimes, KindAlloc,
			KindPartition, KindSegalloc:
			if kc.Loaded != kc.Nodes || kc.Executed != 0 {
				t.Errorf("%v: executed/loaded = %d/%d, want 0/%d", kc.Kind, kc.Executed, kc.Loaded, kc.Nodes)
			}
		default:
			panic("unknown kind in stats")
		}
	}
	for _, ev := range events {
		if ev != "assemble" {
			t.Errorf("second run emitted an event for a loaded %s node", ev)
		}
	}
	for i := range outs2 {
		if outs2[i].Err != nil || outs1[i].Err != nil {
			t.Fatalf("pt %d: errs %v / %v", i, outs1[i].Err, outs2[i].Err)
		}
		a, b := outs1[i].Result, outs2[i].Result
		if a.Schedule.String() != b.Schedule.String() ||
			!reflect.DeepEqual(a.Metrics, b.Metrics) ||
			!reflect.DeepEqual(a.Order, b.Order) ||
			a.Best.Total != b.Best.Total {
			t.Errorf("pt %d: store-assisted result differs from cold result", i)
		}
	}
}

// TestPlanGarbageStoreFallsBack pins the decode-failure path: a store
// serving undecodable bytes must be treated as a miss on every node, with
// results identical to a storeless run.
func TestPlanGarbageStoreFallsBack(t *testing.T) {
	g := systems.CDDAT()
	pts := fullGrid()[:6]
	cold, err := RunGridOutcomes(context.Background(), g, pts, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	assisted, err := RunGridOutcomes(context.Background(), g, pts, PlanConfig{Store: garbageStore{}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if assisted[i].Err != nil {
			t.Fatalf("pt %d: garbage store broke compilation: %v", i, assisted[i].Err)
		}
		if cold[i].Result.Schedule.String() != assisted[i].Result.Schedule.String() ||
			cold[i].Result.Best.Total != assisted[i].Result.Best.Total {
			t.Errorf("pt %d: garbage store changed the result", i)
		}
	}
}

// TestStoreRenameEditReusesWholePipeline is the headline incremental
// scenario: compile, rename one actor, recompile. Names appear in no store
// key and no artifact payload, so the second compile must load every stage
// and execute only the per-point assembly — on this single-point run, 1
// executed node versus the cold run's 7.
func TestStoreRenameEditReusesWholePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := buildRand(t, rng, 60)
	st := newMapStore()
	pts := []Options{{}} // paper defaults: RPMC, SDPPO, ffdur+ffstart

	p1, err := NewPlan(g, pts, PlanConfig{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	outs1 := p1.Run(context.Background())
	if outs1[0].Err != nil {
		t.Fatal(outs1[0].Err)
	}
	coldExec := 0
	for _, kc := range p1.Stats() {
		coldExec += kc.Executed
	}

	g2 := renamed(g)
	p2, err := NewPlan(g2, pts, PlanConfig{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	outs2 := p2.Run(context.Background())
	if outs2[0].Err != nil {
		t.Fatal(outs2[0].Err)
	}
	warmExec, warmLoaded := 0, 0
	for _, kc := range p2.Stats() {
		warmExec += kc.Executed
		warmLoaded += kc.Loaded
	}
	if warmExec != 1 {
		t.Errorf("warm recompile executed %d nodes, want 1 (assemble only)", warmExec)
	}
	if warmLoaded != coldExec-1 {
		t.Errorf("warm recompile loaded %d nodes, want %d", warmLoaded, coldExec-1)
	}
	if coldExec < 5*warmExec {
		t.Errorf("rename edit reused too little: cold executed %d, warm %d (< 5x reduction)", coldExec, warmExec)
	}
	// Semantics unchanged up to names: identical schedule shape and totals.
	if outs1[0].Result.Best.Total != outs2[0].Result.Best.Total ||
		outs1[0].Result.Metrics.DPCost != outs2[0].Result.Metrics.DPCost {
		t.Error("rename edit changed allocation totals")
	}
}

// buildRand draws a consistent random graph without importing randsdf (this
// file is in package pass; randsdf has no dependency back, but keeping the
// internal test dependency-light mirrors plan_test).
func buildRand(t *testing.T, rng *rand.Rand, actors int) *sdf.Graph {
	t.Helper()
	reps := []int64{1, 2, 3, 4, 6}
	g := sdf.New("randstore")
	q := make([]int64, actors)
	for i := 0; i < actors; i++ {
		g.AddActor(strings.Repeat("a", 1) + string(rune('A'+i%26)) + string(rune('0'+i/26)))
		q[i] = reps[rng.Intn(len(reps))]
	}
	gcd := func(a, b int64) int64 {
		for b != 0 {
			a, b = b, a%b
		}
		return a
	}
	for i := 1; i < actors; i++ {
		j := rng.Intn(i)
		gg := gcd(q[j], q[i])
		g.AddEdge(sdf.ActorID(j), sdf.ActorID(i), q[i]/gg, q[j]/gg, 0)
	}
	return g
}
