package pass

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/lifetime"
	"repro/internal/merge"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/schedtree"
	"repro/internal/sdf"
)

// Store is the persistent artifact store consulted by the Plan executor: a
// content-addressed byte store (internal/nodestore on disk, any map in
// tests). Get returns the payload published under key; Put publishes one.
// Both must be safe for concurrent use — plan levels run their nodes in
// parallel. Put may be dropped silently (the store is a cache); Get must
// never return bytes other than those Put under the same key.
type Store interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte)
}

// StoreVersion is the version preamble mixed into every store key. Bump it
// whenever an artifact encoding or a key projection changes incompatibly:
// old entries then live under unreachable keys and age out, instead of
// aliasing the new schema. The storeKeyMap mirror below ties this constant
// to the Options shape the keys cover.
const StoreVersion = "pass-node/v1"

// storeKeyMap is the completeness mirror for the persistent store keys, the
// cross-process sibling of optionsKeyMap (options.go): sdflint's keycomplete
// analyzer checks it mirrors Options field for field, and each field is
// annotated with the store key that carries it, or with the reason it needs
// none. Adding an Options knob therefore forces TWO decisions: which in-plan
// node key carries it (optionsKeyMap) and which persistent key carries it
// (here). Forgetting the latter would let two configurations silently alias
// one store entry across daemon restarts — much worse than an in-memory
// aliasing bug, which at least dies with the process. Changing how an
// existing field is keyed requires bumping StoreVersion.
//
//lint:keymap Options
type storeKeyMap struct {
	Strategy      OrderStrategy                  // orderStoreKey (and every chained downstream key)
	Order         []sdf.ActorID                  // orderStoreKey, custom strategies only
	Looping       LoopAlg                        // schedStoreKey; FlatLoops additionally pulls the words projection in (its DP cost reads Words)
	Allocators    []alloc.Strategy               // allocStoreKey, one key per allocator
	Verify        bool                           // assemble-only: assembled Results are never stored
	VerifyPeriods int                            // assemble-only: assembled Results are never stored
	Merging       bool                           // assemble-only: assembled Results are never stored
	MergePolicy   func(sdf.ActorID) merge.Policy // assemble-only: assembled Results are never stored
	OnStage       func(stage string)             // observability hook, not a compilation input
	Partitions    int                            // partitionStoreKey (segallocStoreKey inherits it through the chained partition hash)
}

// kindTag names each pass kind inside store keys. The switch deliberately
// has no default clause: sdflint's exhaustive analyzer then fails the build
// the moment a new Kind is declared without deciding its store treatment
// (either a tag here or an explicit "never stored" case).
func kindTag(k Kind) string {
	switch k {
	case KindRepetitions:
		return "rep"
	case KindOrder:
		return "order"
	case KindSchedule:
		return "sched"
	case KindLifetimes:
		return "life"
	case KindAlloc:
		return "alloc"
	case KindPartition:
		return "part"
	case KindSegalloc:
		return "seg"
	case KindAssemble:
		panic("pass: assemble artifacts are per-point (verify/merge options differ) and are never stored")
	}
	panic(fmt.Sprintf("pass: kind %d has no store tag", int(k)))
}

// Store key design — projection digests with hash chaining.
//
// The in-plan node keys (options.go) embed an opaque GraphKey, so ANY edit
// to the graph text changes EVERY key: sound, but useless for incremental
// recompilation. Store keys instead cover, per stage, exactly the graph
// fields that stage's pass reads:
//
//	repetitions  topology + rates                 (sdf.Repetitions: balance equations only)
//	order        topology + rates + delays        (RPMC cut costs read tnse + delay; APGAN clusters read rates)
//	schedule     order artifact + topology + rates + delays [+ words iff FlatLoops]
//	             (the loop DPs cost edges by tnse + delay; FlatLoops' cost is BufMem, which scales by Words)
//	lifetimes    schedule artifact + topology + rates + delays + words
//	alloc        lifetimes artifact + allocator   (packing reads nothing but the intervals)
//
// Two consequences. First, actor NAMES appear in no projection and no
// artifact encoding (interval names are reconstructed from the live graph at
// decode), so renaming an actor invalidates nothing below assemble — the
// whole pipeline is loaded and only the per-point assembly re-runs. Second,
// downstream keys chain through the upstream artifact's payload hash rather
// than its inputs: if a delay edit happens to produce the identical lexical
// order, every (schedule, lifetimes, allocation) computed under that order
// for OTHER delay values stays invalid (delay is in their projections), but
// the chain means an edit that does not change an upstream artifact's bytes
// cannot spuriously invalidate a downstream entry through key churn alone.
type storeKeys struct {
	rates  []byte // actor count + per-edge (src, dst, prod, cons)
	delays []byte // per-edge delay
	words  []byte // per-edge words
}

// newStoreKeys precomputes the graph projections once per plan run.
func newStoreKeys(g *sdf.Graph) *storeKeys {
	sk := &storeKeys{}
	sk.rates = binary.AppendVarint(sk.rates, int64(g.NumActors()))
	sk.rates = binary.AppendVarint(sk.rates, int64(g.NumEdges()))
	for _, e := range g.Edges() {
		sk.rates = binary.AppendVarint(sk.rates, int64(e.Src))
		sk.rates = binary.AppendVarint(sk.rates, int64(e.Dst))
		sk.rates = binary.AppendVarint(sk.rates, e.Prod)
		sk.rates = binary.AppendVarint(sk.rates, e.Cons)
		sk.delays = binary.AppendVarint(sk.delays, e.Delay)
		sk.words = binary.AppendVarint(sk.words, e.Words)
	}
	return sk
}

// storeDigest is the single key constructor: hex SHA-256 over the version
// preamble, the kind tag, and length-prefixed parts (length prefixes keep
// adjacent variable-length parts from aliasing).
func storeDigest(kind Kind, parts ...[]byte) string {
	h := sha256.New()
	h.Write([]byte(StoreVersion))
	h.Write([]byte{'\n'})
	h.Write([]byte(kindTag(kind)))
	var lenbuf [binary.MaxVarintLen64]byte
	for _, p := range parts {
		n := binary.PutVarint(lenbuf[:], int64(len(p)))
		h.Write(lenbuf[:n])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (sk *storeKeys) repKey() string {
	return storeDigest(KindRepetitions, sk.rates)
}

func (sk *storeKeys) orderKey(strategy OrderStrategy, custom []sdf.ActorID) string {
	var extra []byte
	extra = binary.AppendVarint(extra, int64(strategy))
	if strategy == CustomOrder {
		for _, a := range custom {
			extra = binary.AppendVarint(extra, int64(a))
		}
	}
	return storeDigest(KindOrder, sk.rates, sk.delays, extra)
}

func (sk *storeKeys) schedKey(orderHash []byte, looping LoopAlg) string {
	var extra []byte
	extra = binary.AppendVarint(extra, int64(looping))
	parts := [][]byte{orderHash, sk.rates, sk.delays, extra}
	if looping == FlatLoops {
		parts = append(parts, sk.words)
	}
	return storeDigest(KindSchedule, parts...)
}

func (sk *storeKeys) lifeKey(schedHash []byte) string {
	return storeDigest(KindLifetimes, schedHash, sk.rates, sk.delays, sk.words)
}

// allocStoreKey needs no graph projection at all: allocation reads nothing
// but the lifetime intervals, whose bytes the chained hash pins, and the
// interval enumeration is name-free (lifetime.SortByStart/SortByDuration
// tie-break by stable input order, never by name).
func allocStoreKey(lifeHash []byte, strat alloc.Strategy) string {
	var extra []byte
	extra = binary.AppendVarint(extra, int64(strat))
	return storeDigest(KindAlloc, lifeHash, extra)
}

// partitionStoreKey covers the phased schedule's inputs: the lexical order
// (chained hash), the precedence structure (rates + delays — precedence and
// levels read delay against consumed-per-period, the cost model reads
// rates), and the worker count.
func partitionStoreKey(sk *storeKeys, orderHash []byte, partitions int) string {
	var extra []byte
	extra = binary.AppendVarint(extra, int64(partitions))
	return storeDigest(KindPartition, orderHash, sk.rates, sk.delays, extra)
}

// segallocStoreKey covers the segmented allocation's inputs: the partition
// artifact (chained hash) plus rates, delays and words — buffer sizes are
// (delay + TNSE) * words.
func segallocStoreKey(sk *storeKeys, partHash []byte) string {
	return storeDigest(KindSegalloc, partHash, sk.rates, sk.delays, sk.words)
}

// payloadHash is the chaining hash of one stored artifact's bytes.
func payloadHash(data []byte) []byte {
	sum := sha256.Sum256(data)
	return sum[:]
}

// Artifact encodings. All varint-based, all name-free, all deterministic
// (the determinism lint covers this package): encode(decode(b)) == b and
// decode(encode(a)) is semantically identical to a. Decoders validate
// shape against the live graph and reject trailing bytes, so a payload from
// a mismatched key version fails loudly into the recompute path instead of
// misdecoding.

type decoder struct {
	data []byte
	err  error
}

func (d *decoder) int64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.err = fmt.Errorf("pass: truncated store payload")
		return 0
	}
	d.data = d.data[n:]
	return v
}

// count reads a non-negative length bounded by max (guarding allocations
// against corrupted payloads).
func (d *decoder) count(max int) int {
	v := d.int64()
	if d.err == nil && (v < 0 || v > int64(max)) {
		d.err = fmt.Errorf("pass: store payload count %d out of range [0,%d]", v, max)
	}
	if d.err != nil {
		return 0
	}
	return int(v)
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.data) != 0 {
		return fmt.Errorf("pass: %d trailing bytes in store payload", len(d.data))
	}
	return nil
}

func encodeRep(rep Repetitions) []byte {
	out := binary.AppendVarint(nil, int64(len(rep.Q)))
	for _, q := range rep.Q {
		out = binary.AppendVarint(out, q)
	}
	return out
}

func decodeRep(g *sdf.Graph, data []byte) (Repetitions, error) {
	d := &decoder{data: data}
	n := d.count(g.NumActors())
	if d.err == nil && n != g.NumActors() {
		return Repetitions{}, fmt.Errorf("pass: stored q has %d actors, graph has %d", n, g.NumActors())
	}
	q := make(sdf.Repetitions, n)
	for i := range q {
		q[i] = d.int64()
	}
	if err := d.finish(); err != nil {
		return Repetitions{}, err
	}
	return Repetitions{Q: q}, nil
}

func encodeOrder(ord Order) []byte {
	out := binary.AppendVarint(nil, int64(len(ord.Actors)))
	for _, a := range ord.Actors {
		out = binary.AppendVarint(out, int64(a))
	}
	return out
}

func decodeOrder(g *sdf.Graph, data []byte) (Order, error) {
	d := &decoder{data: data}
	n := d.count(g.NumActors())
	if d.err == nil && n != g.NumActors() {
		return Order{}, fmt.Errorf("pass: stored order has %d actors, graph has %d", n, g.NumActors())
	}
	actors := make([]sdf.ActorID, n)
	seen := make([]bool, n)
	for i := range actors {
		a := d.int64()
		if d.err != nil {
			break
		}
		if a < 0 || a >= int64(n) || seen[a] {
			return Order{}, fmt.Errorf("pass: stored order is not a permutation")
		}
		seen[a] = true
		actors[i] = sdf.ActorID(a)
	}
	if err := d.finish(); err != nil {
		return Order{}, err
	}
	return Order{Actors: actors}, nil
}

// Schedule terms are encoded structurally (preorder, tagged), not through
// the textual round-trip: the text form is canonical for humans, but the
// store must reproduce the exact term tree the DP built.
const (
	schedLeafTag = 0
	schedLoopTag = 1
)

func encodeSched(ls LoopedSchedule) []byte {
	out := binary.AppendVarint(nil, ls.DPCost)
	out = binary.AppendVarint(out, int64(len(ls.Schedule.Body)))
	for _, n := range ls.Schedule.Body {
		out = appendSchedNode(out, n)
	}
	return out
}

func appendSchedNode(out []byte, n *sched.Node) []byte {
	if n.IsLeaf() {
		out = binary.AppendVarint(out, schedLeafTag)
		out = binary.AppendVarint(out, n.Count)
		out = binary.AppendVarint(out, int64(n.Actor))
		return out
	}
	out = binary.AppendVarint(out, schedLoopTag)
	out = binary.AppendVarint(out, n.Count)
	out = binary.AppendVarint(out, int64(len(n.Children)))
	for _, c := range n.Children {
		out = appendSchedNode(out, c)
	}
	return out
}

func decodeSched(g *sdf.Graph, data []byte) (LoopedSchedule, error) {
	d := &decoder{data: data}
	cost := d.int64()
	// A single appearance schedule has at most one leaf per actor and, after
	// any sane looping pass, fewer internal nodes than leaves; 2n+1 bounds a
	// binarized tree, 4n leaves headroom for degenerate (but valid) nests.
	maxNodes := 4*g.NumActors() + 4
	nTop := d.count(maxNodes)
	body := make([]*sched.Node, 0, nTop)
	for i := 0; i < nTop; i++ {
		body = append(body, decodeSchedNode(g, d, maxNodes, 0))
	}
	if err := d.finish(); err != nil {
		return LoopedSchedule{}, err
	}
	return LoopedSchedule{Schedule: &sched.Schedule{Graph: g, Body: body}, DPCost: cost}, nil
}

func decodeSchedNode(g *sdf.Graph, d *decoder, maxNodes, depth int) *sched.Node {
	if d.err != nil {
		return &sched.Node{Count: 1}
	}
	if depth > maxNodes {
		d.err = fmt.Errorf("pass: stored schedule nests deeper than %d", maxNodes)
		return &sched.Node{Count: 1}
	}
	tag := d.int64()
	count := d.int64()
	if d.err == nil && count < 1 {
		d.err = fmt.Errorf("pass: stored schedule has loop count %d", count)
	}
	switch tag {
	case schedLeafTag:
		a := d.int64()
		if d.err == nil && (a < 0 || a >= int64(g.NumActors())) {
			d.err = fmt.Errorf("pass: stored schedule fires unknown actor %d", a)
		}
		return &sched.Node{Count: count, Actor: sdf.ActorID(a)}
	case schedLoopTag:
		nc := d.count(maxNodes)
		if d.err == nil && nc == 0 {
			d.err = fmt.Errorf("pass: stored schedule has an empty loop body")
		}
		children := make([]*sched.Node, 0, nc)
		for i := 0; i < nc; i++ {
			children = append(children, decodeSchedNode(g, d, maxNodes, depth+1))
		}
		return &sched.Node{Count: count, Children: children}
	default:
		if d.err == nil {
			d.err = fmt.Errorf("pass: unknown schedule node tag %d", tag)
		}
		return &sched.Node{Count: 1}
	}
}

func encodeLife(lf Lifetimes) []byte {
	out := binary.AppendVarint(nil, int64(len(lf.Intervals)))
	for _, iv := range lf.Intervals {
		out = binary.AppendVarint(out, iv.Size)
		out = binary.AppendVarint(out, iv.Start)
		out = binary.AppendVarint(out, iv.Dur)
		out = binary.AppendVarint(out, int64(len(iv.Periods)))
		for _, p := range iv.Periods {
			out = binary.AppendVarint(out, p.A)
			out = binary.AppendVarint(out, int64(p.Count))
		}
	}
	return out
}

// decodeLife rebuilds the Lifetimes artifact: intervals from the payload
// (names reconstructed from the live graph — names are deliberately not
// stored), the schedule tree recomputed from the schedule artifact
// (FromSchedule is deterministic and linear; the expensive part of the
// lifetimes pass is the per-edge peak simulation, which the payload spares),
// and a fresh enumeration cache.
func decodeLife(g *sdf.Graph, ls LoopedSchedule, data []byte) (Lifetimes, error) {
	d := &decoder{data: data}
	n := d.count(g.NumEdges())
	if d.err == nil && n != g.NumEdges() {
		return Lifetimes{}, fmt.Errorf("pass: stored lifetimes cover %d edges, graph has %d", n, g.NumEdges())
	}
	intervals := make([]*lifetime.Interval, n)
	for i := range intervals {
		e := g.Edge(sdf.EdgeID(i))
		iv := &lifetime.Interval{
			Name:  g.Actor(e.Src).Name + "->" + g.Actor(e.Dst).Name,
			Size:  d.int64(),
			Start: d.int64(),
			Dur:   d.int64(),
		}
		np := d.count(maxPeriods)
		if np > 0 {
			iv.Periods = make([]lifetime.Period, np)
			for j := range iv.Periods {
				iv.Periods[j] = lifetime.Period{A: d.int64(), Count: d.int64()}
			}
		}
		intervals[i] = iv
	}
	if err := d.finish(); err != nil {
		return Lifetimes{}, err
	}
	tree, err := schedtree.FromSchedule(ls.Schedule)
	if err != nil {
		return Lifetimes{}, err
	}
	return Lifetimes{Tree: tree, Intervals: intervals, packs: &packCache{}}, nil
}

// maxPeriods bounds the nested-period count of one decoded interval; real
// intervals carry one period per enclosing loop, far below this.
const maxPeriods = 1 << 16

// encodeAlloc stores placements as (edge index, offset) pairs in placement
// order: edge indices rather than interval copies, because downstream
// consumers (the simulator's OffsetOf, assembly) compare interval POINTERS
// against the Lifetimes artifact — the decode must hand back placements
// referencing the very intervals of the plan's in-memory Lifetimes artifact.
func encodeAlloc(lf Lifetimes, al Allocation) ([]byte, error) {
	idxOf := make(map[*lifetime.Interval]int, len(lf.Intervals))
	for i, iv := range lf.Intervals {
		idxOf[iv] = i
	}
	out := binary.AppendVarint(nil, al.Alloc.Total)
	out = binary.AppendVarint(out, int64(len(al.Alloc.Placements)))
	for _, p := range al.Alloc.Placements {
		i, ok := idxOf[p.Interval]
		if !ok {
			return nil, fmt.Errorf("pass: allocation places an interval missing from its lifetimes artifact")
		}
		out = binary.AppendVarint(out, int64(i))
		out = binary.AppendVarint(out, p.Offset)
	}
	return out, nil
}

// encodePartition stores the canonical (P, assign, phaseOf) encoding; the
// executable phase lists and worker loads are derived deterministically at
// decode (partition.Rebuild), which also re-validates the structural
// invariants against the live graph.
func encodePartition(part Partition) []byte {
	p := part.Part
	out := binary.AppendVarint(nil, int64(p.P))
	out = binary.AppendVarint(out, int64(len(p.Assign)))
	for _, w := range p.Assign {
		out = binary.AppendVarint(out, int64(w))
	}
	for _, ph := range p.PhaseOf {
		out = binary.AppendVarint(out, int64(ph))
	}
	return out
}

// maxPartitions bounds the decoded worker count; the service caps requests
// far below this.
const maxPartitions = 1 << 16

func decodePartition(g *sdf.Graph, rep Repetitions, ord Order, data []byte) (Partition, error) {
	d := &decoder{data: data}
	pw := d.count(maxPartitions)
	n := d.count(g.NumActors())
	if d.err == nil && n != g.NumActors() {
		return Partition{}, fmt.Errorf("pass: stored partition covers %d actors, graph has %d", n, g.NumActors())
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = int(d.int64())
	}
	phaseOf := make([]int, n)
	for i := range phaseOf {
		phaseOf[i] = int(d.int64())
	}
	if err := d.finish(); err != nil {
		return Partition{}, err
	}
	p, err := partition.Rebuild(g, rep.Q, ord.Actors, pw, assign, phaseOf)
	if err != nil {
		return Partition{}, err
	}
	return Partition{Part: p}, nil
}

// encodeSegalloc stores the segment layout and the per-edge routing +
// absolute offsets; the phase-axis intervals and buffer sizes are pure
// arithmetic over (graph, q, partition) and are re-derived at decode
// (partition.RebuildSeg) rather than persisted — no first-fit re-run either
// way, the stored offsets are authoritative.
func encodeSegalloc(seg SegmentedAllocation) []byte {
	s := seg.Seg
	out := binary.AppendVarint(nil, s.Total)
	out = binary.AppendVarint(out, int64(len(s.Segments)))
	for _, sg := range s.Segments {
		out = binary.AppendVarint(out, int64(sg.Worker))
		out = binary.AppendVarint(out, sg.Base)
		out = binary.AppendVarint(out, sg.Cells)
	}
	out = binary.AppendVarint(out, int64(len(s.EdgeSeg)))
	for i, si := range s.EdgeSeg {
		out = binary.AppendVarint(out, int64(si))
		out = binary.AppendVarint(out, s.Offsets[i])
	}
	return out
}

func decodeSegalloc(g *sdf.Graph, rep Repetitions, part Partition, data []byte) (SegmentedAllocation, error) {
	d := &decoder{data: data}
	total := d.int64()
	ns := d.count(maxPartitions + 1)
	if d.err == nil && ns != part.Part.P+1 {
		return SegmentedAllocation{}, fmt.Errorf("pass: stored segalloc has %d segments for %d workers", ns, part.Part.P)
	}
	segments := make([]partition.Segment, ns)
	for i := range segments {
		segments[i] = partition.Segment{
			Worker: int(d.int64()),
			Base:   d.int64(),
			Cells:  d.int64(),
		}
	}
	ne := d.count(g.NumEdges())
	if d.err == nil && ne != g.NumEdges() {
		return SegmentedAllocation{}, fmt.Errorf("pass: stored segalloc covers %d edges, graph has %d", ne, g.NumEdges())
	}
	edgeSeg := make([]int, ne)
	offsets := make([]int64, ne)
	for i := range edgeSeg {
		edgeSeg[i] = int(d.int64())
		offsets[i] = d.int64()
	}
	if err := d.finish(); err != nil {
		return SegmentedAllocation{}, err
	}
	s, err := partition.RebuildSeg(g, rep.Q, part.Part, edgeSeg, offsets, segments, total)
	if err != nil {
		return SegmentedAllocation{}, err
	}
	return SegmentedAllocation{Seg: s}, nil
}

// decodeAlloc reconstructs one allocator leaf against the in-memory
// Lifetimes artifact. The result skips alloc.Verify: the allocation was
// verified when computed, the frame checksum pins its integrity, and the
// chained key pins that these intervals are the ones it was computed for.
func decodeAlloc(lf Lifetimes, strat alloc.Strategy, data []byte) (Allocation, error) {
	d := &decoder{data: data}
	total := d.int64()
	n := d.count(len(lf.Intervals))
	if d.err == nil && n != len(lf.Intervals) {
		return Allocation{}, fmt.Errorf("pass: stored allocation places %d intervals, lifetimes has %d", n, len(lf.Intervals))
	}
	placements := make([]alloc.Placement, n)
	seen := make([]bool, len(lf.Intervals))
	for i := range placements {
		idx := d.count(len(lf.Intervals) - 1)
		off := d.int64()
		if d.err != nil {
			break
		}
		if seen[idx] {
			return Allocation{}, fmt.Errorf("pass: stored allocation places edge %d twice", idx)
		}
		seen[idx] = true
		placements[i] = alloc.Placement{Interval: lf.Intervals[idx], Offset: off}
	}
	if err := d.finish(); err != nil {
		return Allocation{}, err
	}
	return Allocation{Strategy: strat, Alloc: &alloc.Allocation{Placements: placements, Total: total}}, nil
}
