package pass

import (
	"context"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/dynsched"
	"repro/internal/lifetime"
	"repro/internal/sched"
	"repro/internal/sdf"
	"repro/internal/sim"
)

// CompileGeneral compiles an arbitrary consistent SDF graph, including
// graphs whose precedence relation is cyclic. Acyclic graphs take the normal
// Compile path. Cyclic graphs are handled with the classic clustering
// decomposition of general SDF scheduling:
//
//  1. The strongly connected components of the precedence graph are
//     condensed into composite actors (rates aggregated over one local
//     period of each component), giving an acyclic graph.
//  2. The condensation is compiled with the full shared-memory flow; every
//     edge between components keeps its lifetime-based sharing.
//  3. Each nontrivial component is scheduled internally by the demand-driven
//     scheduler; its initial tokens must break the cycle or compilation
//     fails with the deadlock diagnosis.
//  4. The composite firings are expanded back into a complete executable
//     looped schedule, component-internal edges get dedicated (whole-period)
//     buffers sized by simulation, and the combined allocation is verified
//     token by token.
//
// The resulting Result is expressed over the original graph. Schedules for
// cyclic graphs are generally not single appearance (the paper's SAS theory
// applies to the acyclic condensation).
func CompileGeneral(g *sdf.Graph, opts Options) (*Result, error) {
	return CompileGeneralContext(context.Background(), g, opts)
}

// CompileGeneralContext is CompileGeneral with cooperative cancellation, on
// the same contract as CompileContext: ctx is checked at stage boundaries
// (and between per-component demand-driven scheduling runs on the cyclic
// path), and the OnStage hook sees the coarse stage sequence. On the cyclic
// path the condensation's internal sub-compilation reports no stages of its
// own; the outer call attributes its work to the schedule stage.
func CompileGeneralContext(ctx context.Context, g *sdf.Graph, opts Options) (*Result, error) {
	q, err := g.Repetitions()
	if err != nil {
		return nil, err
	}
	if g.IsAcyclic(q) {
		return CompileContext(ctx, g, opts)
	}
	if err := stageStart(ctx, opts, StageSchedule); err != nil {
		return nil, err
	}
	if opts.Strategy == CustomOrder {
		return nil, fmt.Errorf("core: custom lexical orders are defined over actors, not over the SCC condensation; use APGAN or RPMC for cyclic graphs")
	}
	sccs := g.SCCs(q)

	// Component bookkeeping.
	compOf := make([]int, g.NumActors())
	for ci, comp := range sccs {
		for _, a := range comp {
			compOf[a] = ci
		}
	}
	// Local repetition factor: within one firing of composite X, actor a
	// fires q(a)/gcd_X times.
	gX := make([]int64, len(sccs))
	for ci, comp := range sccs {
		gX[ci] = q.GCD(comp)
	}
	qLocal := make([]int64, g.NumActors())
	for a := range qLocal {
		qLocal[a] = q[a] / gX[compOf[a]]
	}

	// Build the condensation: one composite actor per SCC, one condensed
	// edge per original inter-component edge (identity-preserving order).
	cond := sdf.New(g.Name + "_cond")
	compID := make([]sdf.ActorID, len(sccs))
	for ci, comp := range sccs {
		name := g.Actor(comp[0]).Name
		if len(comp) > 1 {
			name = fmt.Sprintf("scc%d", ci)
		}
		compID[ci] = cond.AddActor(name)
	}
	condEdgeOf := make([]sdf.EdgeID, g.NumEdges()) // -1 for intra edges
	for i := range condEdgeOf {
		condEdgeOf[i] = -1
	}
	for _, e := range g.Edges() {
		cs, cd := compOf[e.Src], compOf[e.Dst]
		if cs == cd {
			continue
		}
		ce := cond.AddEdge(compID[cs], compID[cd],
			e.Prod*qLocal[e.Src], e.Cons*qLocal[e.Dst], e.Delay)
		if e.Words > 1 {
			cond.SetWords(ce, e.Words)
		}
		condEdgeOf[e.ID] = ce
	}

	// Compile the acyclic condensation; verification happens below on the
	// expanded schedule instead. The sub-compilation shares ctx but keeps
	// its stage reporting quiet — this outer call owns the stage sequence.
	sub := opts
	sub.Verify = false
	sub.OnStage = nil
	// Partitioned schedules are defined over the acyclic precedence levels of
	// the original actors, not over the SCC condensation; cyclic graphs always
	// compile sequentially.
	sub.Partitions = 0
	condRes, err := CompileContext(ctx, cond, sub)
	if err != nil {
		return nil, fmt.Errorf("core: condensation: %w", err)
	}

	// Internal schedules for nontrivial components.
	if err := stageStart(ctx, opts, StageLoopDP); err != nil {
		return nil, err
	}
	bodies := make([][]*sched.Node, len(sccs))
	for ci, comp := range sccs {
		if len(comp) == 1 {
			bodies[ci] = []*sched.Node{sched.Leaf(1, comp[0])}
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: aborted scheduling component %d: %w", ci, err)
		}
		subG, back := g.Subgraph(comp)
		ql := make(sdf.Repetitions, subG.NumActors())
		for sa := 0; sa < subG.NumActors(); sa++ {
			ql[sa] = qLocal[back[sdf.ActorID(sa)]]
		}
		dyn, err := dynsched.Schedule(subG, ql)
		if err != nil {
			return nil, fmt.Errorf("core: component %d is deadlocked (insufficient delays): %w", ci, err)
		}
		local := dyn.AsSchedule(subG)
		for _, n := range local.Body {
			bodies[ci] = append(bodies[ci], remapSchedule(n, back))
		}
	}

	// Expand composite leaves into their internal bodies.
	condToComp := make(map[sdf.ActorID]int, len(sccs))
	for ci, id := range compID {
		condToComp[id] = ci
	}
	full := &sched.Schedule{Graph: g}
	for _, n := range condRes.Schedule.Body {
		full.Body = append(full.Body, expand(n, condToComp, bodies))
	}
	if err := full.Validate(q); err != nil {
		return nil, fmt.Errorf("core: expanded cyclic schedule invalid: %w", err)
	}
	simres, err := full.Simulate()
	if err != nil {
		return nil, err
	}

	// Intervals per original edge: inter-component edges inherit the
	// condensed lifetimes; intra-component edges become dedicated
	// whole-period buffers sized at their simulated peak.
	if err := stageStart(ctx, opts, StageLifetime); err != nil {
		return nil, err
	}
	intervals := make([]*lifetime.Interval, g.NumEdges())
	totalDur := condRes.Tree.TotalDur
	for _, e := range g.Edges() {
		if ce := condEdgeOf[e.ID]; ce >= 0 {
			iv := *condRes.Intervals[ce]
			iv.Name = g.Actor(e.Src).Name + "->" + g.Actor(e.Dst).Name
			intervals[e.ID] = &iv
			continue
		}
		size := simres.MaxTokens[e.ID] * e.Words
		if size < 1 {
			size = e.Words
		}
		intervals[e.ID] = &lifetime.Interval{
			Name: g.Actor(e.Src).Name + "->" + g.Actor(e.Dst).Name + " (cyclic)",
			Size: size, Start: 0, Dur: totalDur,
		}
	}

	if err := stageStart(ctx, opts, StageAlloc); err != nil {
		return nil, err
	}
	allocators := defaultAllocators(opts.Allocators)
	res := &Result{
		Graph:       g,
		Repetitions: q,
		Order:       nil,
		Schedule:    full,
		Tree:        condRes.Tree,
		Intervals:   intervals,
		Allocations: make(map[alloc.Strategy]*alloc.Allocation, len(allocators)),
	}
	for _, strat := range allocators {
		a := alloc.Allocate(intervals, strat)
		if err := a.Verify(); err != nil {
			return nil, fmt.Errorf("core: %v allocation infeasible: %w", strat, err)
		}
		res.Allocations[strat] = a
		if betterAlloc(Allocation{Strategy: strat, Alloc: a}, res.Best, res.BestBy) {
			res.Best = a
			res.BestBy = strat
		}
	}
	res.Metrics.DPCost = condRes.Metrics.DPCost
	res.Metrics.SharedTotal = res.Best.Total
	res.Metrics.MCO = lifetime.MCWOptimistic(intervals)
	res.Metrics.MCP = lifetime.MCWPessimistic(intervals)
	bmlb, err := g.BMLB()
	if err != nil {
		return nil, err
	}
	res.Metrics.BMLB = bmlb
	res.Metrics.AllocTotals = make(map[string]int64, len(allocators))
	for s, a := range res.Allocations {
		res.Metrics.AllocTotals[s.String()] = a.Total
	}
	var bm int64
	for _, m := range simres.MaxTokens {
		bm += m
	}
	res.Metrics.NonSharedBufMem = bm

	if opts.Verify {
		if err := stageStart(ctx, opts, StageVerify); err != nil {
			return nil, err
		}
		periods := opts.VerifyPeriods
		if periods <= 0 {
			periods = 2
		}
		if err := sim.Run(full, q, intervals, res.Best, periods); err != nil {
			return nil, fmt.Errorf("core: cyclic verification failed: %w", err)
		}
	}
	if err := stageStart(ctx, opts, StageDone); err != nil {
		return nil, err
	}
	return res, nil
}

// remapSchedule rewrites a schedule term from subgraph actor IDs to parent
// graph IDs.
func remapSchedule(n *sched.Node, back map[sdf.ActorID]sdf.ActorID) *sched.Node {
	if n.IsLeaf() {
		return sched.Leaf(n.Count, back[n.Actor])
	}
	body := make([]*sched.Node, len(n.Children))
	for i, ch := range n.Children {
		body[i] = remapSchedule(ch, back)
	}
	return sched.Loop(n.Count, body...)
}

// expand replaces composite leaves of the condensed schedule with their
// internal bodies.
func expand(n *sched.Node, condToComp map[sdf.ActorID]int, bodies [][]*sched.Node) *sched.Node {
	if n.IsLeaf() {
		ci := condToComp[n.Actor]
		body := bodies[ci]
		if len(body) == 1 && body[0].IsLeaf() && body[0].Count == 1 {
			return sched.Leaf(n.Count, body[0].Actor)
		}
		cloned := make([]*sched.Node, len(body))
		for i, b := range body {
			cloned[i] = b.Clone()
		}
		return sched.Loop(n.Count, cloned...)
	}
	body := make([]*sched.Node, len(n.Children))
	for i, ch := range n.Children {
		body[i] = expand(ch, condToComp, bodies)
	}
	return sched.Loop(n.Count, body...)
}
