// Edit-sequence differential property test for the persistent pass-node
// store: a warm store must be invisible in the output. Every artifact a
// store-assisted compile produces is compared byte-for-byte against a cold
// direct compile of the same graph, across a long sequence of single-point
// edits (renames, rate words, delays, new actors, reverts) that exercises
// every invalidation boundary in the key projection table.
//
// This lives in an external test package so it can render results through
// internal/service's canonical artifact encoding (the byte surface clients
// actually see) without an import cycle.
package pass_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/check"
	"repro/internal/nodestore"
	"repro/internal/pass"
	"repro/internal/randsdf"
	"repro/internal/sdf"
	"repro/internal/service"
)

// graphSpec is a mutable description of an SDF graph; each edit rewrites
// the spec and rebuilds the graph from scratch, the way an editor session
// re-elaborates a model after a source change.
type graphSpec struct {
	actors []string
	edges  []edgeSpec
}

type edgeSpec struct {
	src, dst                 int
	prod, cons, delay, words int64
}

func specOf(g *sdf.Graph) *graphSpec {
	s := &graphSpec{}
	for _, a := range g.Actors() {
		s.actors = append(s.actors, a.Name)
	}
	for _, e := range g.Edges() {
		s.edges = append(s.edges, edgeSpec{
			src: int(e.Src), dst: int(e.Dst),
			prod: e.Prod, cons: e.Cons, delay: e.Delay, words: e.Words,
		})
	}
	return s
}

func (s *graphSpec) clone() *graphSpec {
	return &graphSpec{
		actors: append([]string(nil), s.actors...),
		edges:  append([]edgeSpec(nil), s.edges...),
	}
}

func (s *graphSpec) build() *sdf.Graph {
	g := sdf.New("editseq")
	for _, name := range s.actors {
		g.AddActor(name)
	}
	for _, e := range s.edges {
		id := g.AddEdge(sdf.ActorID(e.src), sdf.ActorID(e.dst), e.prod, e.cons, e.delay)
		if e.words > 0 {
			g.SetWords(id, e.words)
		}
	}
	return g
}

// mutate applies one random edit. Each branch crosses a different store
// invalidation boundary: renames invalidate nothing, words invalidate
// lifetimes (and flat schedules), delays invalidate ordering and below,
// new actors invalidate everything, reverts restore full reuse.
func (s *graphSpec) mutate(rng *rand.Rand, step int, base *graphSpec) *graphSpec {
	switch rng.Intn(5) {
	case 0: // rename an actor
		i := rng.Intn(len(s.actors))
		s.actors[i] = fmt.Sprintf("ren%d_%d", i, step)
	case 1: // resize an edge's sample words
		e := &s.edges[rng.Intn(len(s.edges))]
		e.words = 1 + int64(rng.Intn(8))
	case 2: // toggle initial tokens on an edge
		e := &s.edges[rng.Intn(len(s.edges))]
		if e.delay == 0 {
			e.delay = e.prod * int64(1+rng.Intn(2))
		} else {
			e.delay = 0
		}
	case 3: // grow the graph by a rate-1 sink actor
		src := rng.Intn(len(s.actors))
		s.actors = append(s.actors, fmt.Sprintf("n%d", step))
		s.edges = append(s.edges, edgeSpec{src: src, dst: len(s.actors) - 1, prod: 1, cons: 1, words: 1})
	case 4: // revert to the base model
		return base.clone()
	}
	return s
}

const editSequenceLen = 200

// TestStoreEditSequenceDifferential is the correctness pin for incremental
// recompilation: over a 200-edit sequence, store-assisted artifacts are
// byte-identical to cold direct compilation and check.Pipeline verdicts are
// unchanged. Run under -race (the CI incremental job does) to cover the
// plan's concurrent store probes.
func TestStoreEditSequenceDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := specOf(randsdf.Graph(rng, randsdf.Config{Actors: 24, DelayProb: 0.2}))

	st, err := nodestore.Open(t.TempDir(), 64<<20)
	if err != nil {
		t.Fatal(err)
	}

	// Two grid points per edit: the defaults, and the opposite corner of
	// the options space (different ordering, the words-sensitive flat
	// looping, the best-fit allocator).
	points := []struct {
		popt pass.Options
		wopt service.CompileOptions
	}{
		{pass.Options{}, service.CompileOptions{}},
		{
			pass.Options{Strategy: pass.APGAN, Looping: pass.FlatLoops, Allocators: []alloc.Strategy{alloc.BestFitDuration}},
			service.CompileOptions{Strategy: "apgan", Looping: "flat", Allocators: []string{"bfdur"}},
		},
	}
	popts := make([]pass.Options, len(points))
	for i, pt := range points {
		popts[i] = pt.popt
	}

	ctx := context.Background()
	spec := base.clone()
	totalLoaded, totalExecuted := 0, 0
	for step := 0; step < editSequenceLen; step++ {
		spec = spec.mutate(rng, step, base)
		g := spec.build()

		p, err := pass.NewPlan(g, popts, pass.PlanConfig{Store: st})
		if err != nil {
			t.Fatalf("edit %d: %v", step, err)
		}
		outs := p.Run(ctx)
		for _, kc := range p.Stats() {
			totalLoaded += kc.Loaded
			totalExecuted += kc.Executed
		}

		for i, pt := range points {
			direct, directErr := pass.CompileContext(ctx, g, pt.popt)
			if (directErr == nil) != (outs[i].Err == nil) {
				t.Fatalf("edit %d pt %d: direct err %v, store-assisted err %v", step, i, directErr, outs[i].Err)
			}
			if directErr != nil {
				if directErr.Error() != outs[i].Err.Error() {
					t.Fatalf("edit %d pt %d: error text diverged: %v vs %v", step, i, directErr, outs[i].Err)
				}
				continue
			}
			want, err := service.ArtifactBytes(direct, pt.wopt)
			if err != nil {
				t.Fatalf("edit %d pt %d: render direct: %v", step, i, err)
			}
			got, err := service.ArtifactBytes(outs[i].Result, pt.wopt)
			if err != nil {
				t.Fatalf("edit %d pt %d: render store-assisted: %v", step, i, err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("edit %d pt %d: store-assisted artifact differs from cold compile\ncold:  %s\nwarm:  %s", step, i, want, got)
			}

			directVerdict := check.Pipeline(direct, check.Options{})
			assistedVerdict := check.Pipeline(outs[i].Result, check.Options{})
			if (directVerdict == nil) != (assistedVerdict == nil) {
				t.Fatalf("edit %d pt %d: check.Pipeline verdicts diverged: %v vs %v", step, i, directVerdict, assistedVerdict)
			}
			if directVerdict != nil && directVerdict.Error() != assistedVerdict.Error() {
				t.Fatalf("edit %d pt %d: check.Pipeline verdict text diverged: %v vs %v", step, i, directVerdict, assistedVerdict)
			}
		}
	}

	if totalLoaded == 0 {
		t.Fatal("store was never hit across the edit sequence; incremental reuse is broken")
	}
	if stats := st.Stats(); stats.Hits == 0 || stats.Puts == 0 {
		t.Fatalf("store stats show no traffic: %+v", stats)
	}
	t.Logf("edit sequence: %d nodes loaded, %d executed, store %+v", totalLoaded, totalExecuted, st.Stats())
}
