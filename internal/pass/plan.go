package pass

import (
	"context"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/par"
	"repro/internal/sdf"
)

// PlanConfig parameterizes plan construction and observation.
type PlanConfig struct {
	// GraphKey is the content identity of the graph embedded in node keys
	// (the service passes its canonical digest). It is observability only —
	// deduplication happens within one plan over one graph, so any stable
	// string works; empty defaults to the graph name.
	GraphKey string
	// OnEvent, when non-nil, receives an Enter and a Leave event for every
	// pass node the executor actually runs. Nodes at one level run in
	// parallel, so the handler must be safe for concurrent use. Nodes whose
	// artifact is loaded from Store are not run and emit no events; Stats
	// reports them as Loaded.
	OnEvent func(Event)
	// OnOutcome, when non-nil, is called exactly once per grid point as that
	// point reaches its terminal state — its assembly finishes or an upstream
	// failure propagates to it — with the point's input index and the same
	// Outcome Run will return for it. Points at one level finish in parallel,
	// so the handler must be safe for concurrent use. The service's async job
	// runner uses this to stream per-entry results while the grid is still
	// executing.
	OnOutcome func(point int, o Outcome)
	// Store, when non-nil, is the persistent pass-node store: before
	// executing a node the executor probes it under the node's projected
	// content key (store.go) and decodes the artifact on a hit; after a
	// successful execution it publishes the encoded artifact. Keys cover
	// exactly the graph fields each pass reads, chained through upstream
	// artifact hashes, so an edit invalidates only the DAG suffix that can
	// observe it. Assemble nodes and the cyclic fallback never touch the
	// store. The store must be safe for concurrent use.
	Store Store
}

// Outcome is one grid point's terminal state: exactly one of Result and Err
// is non-nil. Err for a point is the same error a direct CompileContext of
// that point would return (shared prefix nodes propagate their failure to
// every point that depends on them).
type Outcome struct {
	Result *Result
	Err    error
}

// KindCount reports the deduplication achieved for one pass kind: Nodes is
// how many nodes of that kind the plan holds, Naive is how many executions
// the point-at-a-time pipeline would have performed for the same grid.
// After Run, Executed counts the nodes whose pass actually ran and Loaded
// the nodes satisfied from the persistent store instead (nodes that only
// propagated an upstream failure count for neither).
type KindCount struct {
	Kind     Kind
	Nodes    int
	Naive    int
	Executed int
	Loaded   int
}

// Plan is a memoized pass graph over one SDF graph and a grid of option
// points. Construction dedups grid points into a prefix-sharing DAG — the
// repetitions vector once per graph, each lexical order once per strategy,
// each looped schedule once per (order, looping), lifetimes once per
// schedule, and each allocator leaf once per (lifetimes, strategy) — so a
// full strategy × looping × allocator sweep executes O(distinct nodes)
// passes instead of O(points × pipeline length). A Plan is single-use:
// build with NewPlan, execute with Run once.
//
// Graphs whose precedence relation is cyclic take a fallback: every point
// runs CompileGeneralContext independently (the SCC condensation path has no
// shareable prefix structure), still in parallel, with one Assemble node per
// point.
type Plan struct {
	g      *sdf.Graph
	cfg    PlanConfig
	points []Options
	cyclic bool

	rep        repNode
	orders     []*orderNode
	scheds     []*schedNode
	lifes      []*lifeNode
	allocs     []*allocNode
	parts      []*partNode
	segs       []*segNode
	assemblies []*assembleNode
}

// nodeState tracks how one pass node was satisfied: ran is set around the
// actual pass execution, loaded when the artifact came from the persistent
// store. At most one of the two is set; neither on upstream failure.
type nodeState struct {
	ran    bool
	loaded bool
}

func (ns nodeState) counts() (executed, loaded int) {
	if ns.ran {
		return 1, 0
	}
	if ns.loaded {
		return 0, 1
	}
	return 0, 0
}

type repNode struct {
	key Key
	out Repetitions
	err error
	nodeState
}

type orderNode struct {
	key      Key
	strategy OrderStrategy
	custom   []sdf.ActorID
	out      Order
	err      error
	hash     []byte // payload hash chaining into the schedule store key
	nodeState
}

type schedNode struct {
	key     Key
	order   *orderNode
	looping LoopAlg
	out     LoopedSchedule
	err     error
	hash    []byte // payload hash chaining into the lifetimes store key
	nodeState
}

type lifeNode struct {
	key   Key
	sched *schedNode
	out   Lifetimes
	err   error
	hash  []byte // payload hash chaining into the allocator store keys
	nodeState
}

type allocNode struct {
	key   Key
	life  *lifeNode
	strat alloc.Strategy
	out   Allocation
	err   error
	nodeState
}

// partNode is the P-way phased schedule node: it depends only on the lexical
// order (and the repetitions vector), so points sharing an order and a worker
// count share the partition regardless of looping/allocator choices.
type partNode struct {
	key        Key
	order      *orderNode
	partitions int
	out        Partition
	err        error
	hash       []byte // payload hash chaining into the segalloc store key
	nodeState
}

// segNode packs the segmented parallel memory image; 1:1 with its partition.
type segNode struct {
	key  Key
	part *partNode
	out  SegmentedAllocation
	err  error
	nodeState
}

// assembleNode is one grid point's leaf: verify/merge/metrics assembly over
// the shared artifacts. Never shared — Verify, VerifyPeriods, Merging and
// MergePolicy are per-point.
type assembleNode struct {
	key    Key
	opts   Options
	life   *lifeNode // nil on the cyclic fallback
	allocs []*allocNode
	part   *partNode // nil unless the point requested Partitions >= 2
	seg    *segNode  // 1:1 with part
	out    *Result
	err    error
	nodeState
}

// NewPlan builds the deduplicated pass graph for compiling g at every point
// of the grid. Points may repeat (identical points share every node and
// yield independent identical outcomes).
func NewPlan(g *sdf.Graph, points []Options, cfg PlanConfig) (*Plan, error) {
	if g == nil {
		return nil, fmt.Errorf("pass: plan needs a graph")
	}
	if cfg.GraphKey == "" {
		cfg.GraphKey = g.Name
	}
	p := &Plan{g: g, cfg: cfg, points: make([]Options, len(points))}
	copy(p.points, points)
	// The Plan executor owns sequencing; per-point stage hooks are
	// meaningless on shared nodes (see Options.OnStage).
	for i := range p.points {
		p.points[i].OnStage = nil
	}

	q, err := g.Repetitions()
	if err != nil {
		// The direct pipeline reports inconsistency identically at every
		// point; surface it once at plan time.
		return nil, err
	}
	if !g.IsAcyclic(q) {
		p.cyclic = true
		for i, pt := range p.points {
			p.assemblies = append(p.assemblies, &assembleNode{
				key:  Key(fmt.Sprintf("assemble|g:%s|cyclic|pt:%d", cfg.GraphKey, i)),
				opts: pt,
			})
		}
		return p, nil
	}

	p.rep = repNode{key: repetitionsKey(cfg.GraphKey)}
	orderIdx := map[Key]*orderNode{}
	schedIdx := map[Key]*schedNode{}
	lifeOf := map[*schedNode]*lifeNode{}
	allocIdx := map[Key]*allocNode{}
	partIdx := map[Key]*partNode{}
	segOf := map[*partNode]*segNode{}
	for i, pt := range p.points {
		ok := orderKey(cfg.GraphKey, pt.Strategy, pt.Order)
		on := orderIdx[ok]
		if on == nil {
			on = &orderNode{key: ok, strategy: pt.Strategy, custom: pt.Order}
			orderIdx[ok] = on
			p.orders = append(p.orders, on)
		}
		sk := scheduleKey(ok, pt.Looping)
		sn := schedIdx[sk]
		if sn == nil {
			sn = &schedNode{key: sk, order: on, looping: pt.Looping}
			schedIdx[sk] = sn
			p.scheds = append(p.scheds, sn)
			ln := &lifeNode{key: lifetimesKey(sk), sched: sn}
			lifeOf[sn] = ln
			p.lifes = append(p.lifes, ln)
		}
		ln := lifeOf[sn]
		as := &assembleNode{
			key:  Key(fmt.Sprintf("assemble|%s|pt:%d", ln.key, i)),
			opts: pt,
			life: ln,
		}
		for _, strat := range defaultAllocators(pt.Allocators) {
			ak := allocKey(ln.key, strat)
			an := allocIdx[ak]
			if an == nil {
				an = &allocNode{key: ak, life: ln, strat: strat}
				allocIdx[ak] = an
				p.allocs = append(p.allocs, an)
			}
			as.allocs = append(as.allocs, an)
		}
		if pt.Partitions >= 2 {
			pk := partitionKey(ok, pt.Partitions)
			pn := partIdx[pk]
			if pn == nil {
				pn = &partNode{key: pk, order: on, partitions: pt.Partitions}
				partIdx[pk] = pn
				p.parts = append(p.parts, pn)
				gn := &segNode{key: segallocKey(pk), part: pn}
				segOf[pn] = gn
				p.segs = append(p.segs, gn)
			}
			as.part = pn
			as.seg = segOf[pn]
		}
		p.assemblies = append(p.assemblies, as)
	}
	return p, nil
}

// Stats reports, per pass kind, how many nodes the plan executes versus how
// many the naive point-at-a-time pipeline would have, plus — once Run has
// happened — how many nodes actually ran (Executed) versus were satisfied
// from the persistent store (Loaded). On the cyclic fallback there is no
// sharing: only Assemble nodes exist and Nodes == Naive.
func (p *Plan) Stats() []KindCount {
	n := len(p.points)
	asmState := func() (executed, loaded int) {
		for _, as := range p.assemblies {
			e, l := as.counts()
			executed, loaded = executed+e, loaded+l
		}
		return
	}
	if p.cyclic {
		e, l := asmState()
		return []KindCount{{Kind: KindAssemble, Nodes: n, Naive: n, Executed: e, Loaded: l}}
	}
	naiveAllocs, naiveParts := 0, 0
	for _, pt := range p.points {
		naiveAllocs += len(defaultAllocators(pt.Allocators))
		if pt.Partitions >= 2 {
			naiveParts++
		}
	}
	out := []KindCount{
		{Kind: KindRepetitions, Nodes: 1, Naive: n},
		{Kind: KindOrder, Nodes: len(p.orders), Naive: n},
		{Kind: KindSchedule, Nodes: len(p.scheds), Naive: n},
		{Kind: KindLifetimes, Nodes: len(p.lifes), Naive: n},
		{Kind: KindAlloc, Nodes: len(p.allocs), Naive: naiveAllocs},
		{Kind: KindPartition, Nodes: len(p.parts), Naive: naiveParts},
		{Kind: KindSegalloc, Nodes: len(p.segs), Naive: naiveParts},
		{Kind: KindAssemble, Nodes: n, Naive: n},
	}
	tally := func(kc *KindCount, ns nodeState) {
		e, l := ns.counts()
		kc.Executed += e
		kc.Loaded += l
	}
	tally(&out[0], p.rep.nodeState)
	for _, nd := range p.orders {
		tally(&out[1], nd.nodeState)
	}
	for _, nd := range p.scheds {
		tally(&out[2], nd.nodeState)
	}
	for _, nd := range p.lifes {
		tally(&out[3], nd.nodeState)
	}
	for _, nd := range p.allocs {
		tally(&out[4], nd.nodeState)
	}
	for _, nd := range p.parts {
		tally(&out[5], nd.nodeState)
	}
	for _, nd := range p.segs {
		tally(&out[6], nd.nodeState)
	}
	out[7].Executed, out[7].Loaded = asmState()
	return out
}

// NodeCount returns total executed nodes and the naive execution count,
// summed over kinds.
func (p *Plan) NodeCount() (nodes, naive int) {
	for _, kc := range p.Stats() {
		nodes += kc.Nodes
		naive += kc.Naive
	}
	return nodes, naive
}

func (p *Plan) emit(k Kind, key Key, enter bool) {
	if p.cfg.OnEvent != nil {
		p.cfg.OnEvent(Event{Kind: k, Key: key, Enter: enter})
	}
}

// abortErr mirrors the stage-boundary cancellation message of the direct
// pipeline for a node of kind k.
func abortErr(ctx context.Context, k Kind) error {
	stage := ""
	switch k {
	case KindRepetitions, KindOrder:
		stage = StageSchedule
	case KindSchedule:
		stage = StageLoopDP
	case KindLifetimes:
		stage = StageLifetime
	case KindAlloc, KindAssemble:
		stage = StageAlloc
	case KindPartition:
		stage = StagePartition
	case KindSegalloc:
		stage = StageSegments
	default:
		panic(fmt.Sprintf("pass: abortErr: unknown kind %d", int(k)))
	}
	return fmt.Errorf("core: aborted before %s stage: %w", stage, ctx.Err())
}

// Run executes the plan: level by level down the DAG, independent nodes of a
// level in parallel on the deterministic par pool, each node exactly once.
// The returned slice has one Outcome per input point, in input order. A
// failing shared node fails every dependent point with the same error; the
// remaining branches still execute. Run never returns an overall error —
// cancellation of ctx surfaces as per-point abort errors.
func (p *Plan) Run(ctx context.Context) []Outcome {
	if p.cyclic {
		// The SCC condensation path has no shareable prefix structure, so the
		// store is not consulted: every point compiles directly.
		_ = par.ForEach(len(p.assemblies), func(i int) error {
			as := p.assemblies[i]
			defer p.emitOutcome(i, as)
			p.emit(KindAssemble, as.key, true)
			as.ran = true
			as.out, as.err = CompileGeneralContext(ctx, p.g, as.opts)
			p.emit(KindAssemble, as.key, false)
			return nil
		})
		return p.outcomes()
	}

	// The store keys project exactly the graph fields each pass reads
	// (store.go); the projections are computed once per run.
	var sk *storeKeys
	if p.cfg.Store != nil {
		sk = newStoreKeys(p.g)
	}

	// Level 0: repetitions (single node).
	if err := ctx.Err(); err != nil {
		p.rep.err = abortErr(ctx, KindRepetitions)
	} else {
		if sk != nil {
			if data, ok := p.cfg.Store.Get(sk.repKey()); ok {
				if out, err := decodeRep(p.g, data); err == nil {
					p.rep.out, p.rep.loaded = out, true
				}
			}
		}
		if !p.rep.loaded {
			p.emit(KindRepetitions, p.rep.key, true)
			p.rep.ran = true
			p.rep.out, p.rep.err = RunRepetitions(p.g)
			p.emit(KindRepetitions, p.rep.key, false)
			if sk != nil && p.rep.err == nil {
				p.cfg.Store.Put(sk.repKey(), encodeRep(p.rep.out))
			}
		}
	}

	// Level 1: lexical orders.
	_ = par.ForEach(len(p.orders), func(i int) error {
		n := p.orders[i]
		if p.rep.err != nil {
			n.err = p.rep.err
			return nil
		}
		if ctx.Err() != nil {
			n.err = abortErr(ctx, KindOrder)
			return nil
		}
		if sk != nil {
			key := sk.orderKey(n.strategy, n.custom)
			if data, ok := p.cfg.Store.Get(key); ok {
				if out, err := decodeOrder(p.g, data); err == nil {
					n.out, n.loaded = out, true
					n.hash = payloadHash(data)
					return nil
				}
			}
		}
		p.emit(KindOrder, n.key, true)
		n.ran = true
		n.out, n.err = RunOrder(p.g, p.rep.out, n.strategy, n.custom)
		p.emit(KindOrder, n.key, false)
		if sk != nil && n.err == nil {
			data := encodeOrder(n.out)
			n.hash = payloadHash(data)
			p.cfg.Store.Put(sk.orderKey(n.strategy, n.custom), data)
		}
		return nil
	})

	// Level 2: looped schedules.
	_ = par.ForEach(len(p.scheds), func(i int) error {
		n := p.scheds[i]
		if n.order.err != nil {
			n.err = n.order.err
			return nil
		}
		if ctx.Err() != nil {
			n.err = abortErr(ctx, KindSchedule)
			return nil
		}
		if sk != nil {
			key := sk.schedKey(n.order.hash, n.looping)
			if data, ok := p.cfg.Store.Get(key); ok {
				if out, err := decodeSched(p.g, data); err == nil {
					n.out, n.loaded = out, true
					n.hash = payloadHash(data)
					return nil
				}
			}
		}
		p.emit(KindSchedule, n.key, true)
		n.ran = true
		n.out, n.err = RunSchedule(p.g, p.rep.out, n.order.out, n.looping)
		p.emit(KindSchedule, n.key, false)
		if sk != nil && n.err == nil {
			data := encodeSched(n.out)
			n.hash = payloadHash(data)
			p.cfg.Store.Put(sk.schedKey(n.order.hash, n.looping), data)
		}
		return nil
	})

	// Level 3: lifetimes (1:1 with schedules).
	_ = par.ForEach(len(p.lifes), func(i int) error {
		n := p.lifes[i]
		if n.sched.err != nil {
			n.err = n.sched.err
			return nil
		}
		if ctx.Err() != nil {
			n.err = abortErr(ctx, KindLifetimes)
			return nil
		}
		if sk != nil {
			key := sk.lifeKey(n.sched.hash)
			if data, ok := p.cfg.Store.Get(key); ok {
				if out, err := decodeLife(p.g, n.sched.out, data); err == nil {
					n.out, n.loaded = out, true
					n.hash = payloadHash(data)
					return nil
				}
			}
		}
		p.emit(KindLifetimes, n.key, true)
		n.ran = true
		n.out, n.err = RunLifetimes(p.rep.out, n.sched.out)
		p.emit(KindLifetimes, n.key, false)
		if sk != nil && n.err == nil {
			data := encodeLife(n.out)
			n.hash = payloadHash(data)
			p.cfg.Store.Put(sk.lifeKey(n.sched.hash), data)
		}
		return nil
	})

	// Level 4: allocator leaves. Many leaves read one Lifetimes artifact
	// concurrently; RunAlloc never writes it.
	_ = par.ForEach(len(p.allocs), func(i int) error {
		n := p.allocs[i]
		if n.life.err != nil {
			n.err = n.life.err
			return nil
		}
		if ctx.Err() != nil {
			n.err = abortErr(ctx, KindAlloc)
			return nil
		}
		if sk != nil {
			key := allocStoreKey(n.life.hash, n.strat)
			if data, ok := p.cfg.Store.Get(key); ok {
				if out, err := decodeAlloc(n.life.out, n.strat, data); err == nil {
					n.out, n.loaded = out, true
					return nil
				}
			}
		}
		p.emit(KindAlloc, n.key, true)
		n.ran = true
		n.out, n.err = RunAlloc(n.life.out, n.strat)
		p.emit(KindAlloc, n.key, false)
		if sk != nil && n.err == nil {
			if data, err := encodeAlloc(n.life.out, n.out); err == nil {
				p.cfg.Store.Put(allocStoreKey(n.life.hash, n.strat), data)
			}
		}
		return nil
	})

	// Level 4a: P-way partitions. Like schedules they depend only on the
	// lexical order; they run after the allocator leaves to keep the
	// sequential pipeline's first-error order (alloc failures win).
	_ = par.ForEach(len(p.parts), func(i int) error {
		n := p.parts[i]
		if n.order.err != nil {
			n.err = n.order.err
			return nil
		}
		if ctx.Err() != nil {
			n.err = abortErr(ctx, KindPartition)
			return nil
		}
		if sk != nil {
			key := partitionStoreKey(sk, n.order.hash, n.partitions)
			if data, ok := p.cfg.Store.Get(key); ok {
				if out, err := decodePartition(p.g, p.rep.out, n.order.out, data); err == nil {
					n.out, n.loaded = out, true
					n.hash = payloadHash(data)
					return nil
				}
			}
		}
		p.emit(KindPartition, n.key, true)
		n.ran = true
		n.out, n.err = RunPartition(p.g, p.rep.out, n.order.out, n.partitions)
		p.emit(KindPartition, n.key, false)
		if sk != nil && n.err == nil {
			data := encodePartition(n.out)
			n.hash = payloadHash(data)
			p.cfg.Store.Put(partitionStoreKey(sk, n.order.hash, n.partitions), data)
		}
		return nil
	})

	// Level 4b: segmented allocations (1:1 with partitions).
	_ = par.ForEach(len(p.segs), func(i int) error {
		n := p.segs[i]
		if n.part.err != nil {
			n.err = n.part.err
			return nil
		}
		if ctx.Err() != nil {
			n.err = abortErr(ctx, KindSegalloc)
			return nil
		}
		if sk != nil {
			key := segallocStoreKey(sk, n.part.hash)
			if data, ok := p.cfg.Store.Get(key); ok {
				if out, err := decodeSegalloc(p.g, p.rep.out, n.part.out, data); err == nil {
					n.out, n.loaded = out, true
					return nil
				}
			}
		}
		p.emit(KindSegalloc, n.key, true)
		n.ran = true
		n.out, n.err = RunSegAlloc(p.g, p.rep.out, n.part.out)
		p.emit(KindSegalloc, n.key, false)
		if sk != nil && n.err == nil {
			p.cfg.Store.Put(segallocStoreKey(sk, n.part.hash), encodeSegalloc(n.out))
		}
		return nil
	})

	// Level 5: per-point assembly (verify, merge, metrics). Allocator errors
	// are reported in the point's allocator order, matching the first-error
	// behavior of the sequential pipeline. Assembly is never stored: its
	// inputs include per-point options (verify, merging) and its output
	// includes the graph pointer itself.
	_ = par.ForEach(len(p.assemblies), func(i int) error {
		as := p.assemblies[i]
		// Every point reaches this body — upstream failures propagate into
		// as.err here — so the deferred hook fires exactly once per point.
		defer p.emitOutcome(i, as)
		if as.life.err != nil {
			as.err = as.life.err
			return nil
		}
		allocs := make([]Allocation, 0, len(as.allocs))
		for _, an := range as.allocs {
			if an.err != nil {
				as.err = an.err
				return nil
			}
			allocs = append(allocs, an.out)
		}
		var part Partition
		var seg SegmentedAllocation
		if as.part != nil {
			if as.part.err != nil {
				as.err = as.part.err
				return nil
			}
			if as.seg.err != nil {
				as.err = as.seg.err
				return nil
			}
			part, seg = as.part.out, as.seg.out
		}
		p.emit(KindAssemble, as.key, true)
		as.ran = true
		as.out, as.err = finishResult(ctx, p.g, as.opts, p.rep.out,
			as.life.sched.order.out.Actors, as.life.sched.out, as.life.out, allocs, part, seg)
		p.emit(KindAssemble, as.key, false)
		return nil
	})
	return p.outcomes()
}

func (p *Plan) emitOutcome(i int, as *assembleNode) {
	if p.cfg.OnOutcome != nil {
		p.cfg.OnOutcome(i, Outcome{Result: as.out, Err: as.err})
	}
}

func (p *Plan) outcomes() []Outcome {
	out := make([]Outcome, len(p.assemblies))
	for i, as := range p.assemblies {
		out[i] = Outcome{Result: as.out, Err: as.err}
	}
	return out
}

// RunGridOutcomes plans and executes g across the option grid, returning one
// Outcome per point in input order.
func RunGridOutcomes(ctx context.Context, g *sdf.Graph, points []Options, cfg PlanConfig) ([]Outcome, error) {
	p, err := NewPlan(g, points, cfg)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx), nil
}

// RunGrid is RunGridOutcomes with fail-fast semantics: the error of the
// lowest-indexed failing point (or the plan-time error) aborts the whole
// grid, mirroring a sequential loop of CompileContext calls.
func RunGrid(ctx context.Context, g *sdf.Graph, points []Options, cfg PlanConfig) ([]*Result, error) {
	outs, err := RunGridOutcomes(ctx, g, points, cfg)
	if err != nil {
		return nil, err
	}
	res := make([]*Result, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, o.Err
		}
		res[i] = o.Result
	}
	return res, nil
}
