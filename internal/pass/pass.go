// Package pass decomposes the Fig. 21 compilation flow of Murthy &
// Bhattacharyya's shared-memory SDF synthesis into a typed pass graph:
//
//	SDF graph -> repetitions vector -> topological sort (APGAN or RPMC) ->
//	flat SAS -> loop-hierarchy post-optimization (DPPO / SDPPO / precise
//	chain DP) -> schedule tree -> buffer lifetime extraction -> dynamic
//	storage allocation (first-fit) -> verified shared memory image.
//
// Each stage is a pure pass with an explicit input/output artifact struct
// (Repetitions, Order, LoopedSchedule, Lifetimes, Allocation) and a
// deterministic content key derived from the graph digest plus the option
// fields that pass actually reads. internal/core re-exports the public
// compiler API (Options, Result, Compile, ...) as thin assemblies over
// these passes.
//
// The point of the decomposition is the Plan executor: grid consumers —
// the experiment drivers, the sdffuzz configuration sweep, and the sdfd
// /v1/grid endpoint — compile one graph under many option sets, and the
// planner deduplicates the shared pipeline prefix across grid points (q
// once per graph, one topological sort per ordering strategy, one schedule
// per strategy x loop DP, lifetimes once per schedule, allocators fanned
// out as leaves), executing independent branches in parallel on
// internal/par. See docs/PIPELINE.md for the stage mapping table.
//
// Everything in this package is deterministic and linted as such
// (internal/lint's bannedcall set): compiling the same graph twice — on
// one goroutine or many, through Compile or through a Plan — yields
// identical results.
package pass

import "fmt"

// Kind identifies one pass of the pipeline graph. The constants are ordered
// as the pipeline runs; Kinds returns them in that order.
type Kind int

const (
	// KindRepetitions computes the repetitions vector q (Sec. 2).
	KindRepetitions Kind = iota
	// KindOrder generates the lexical actor ordering (APGAN / RPMC /
	// caller-supplied).
	KindOrder
	// KindSchedule builds the looped single appearance schedule via the
	// selected loop-hierarchy DP.
	KindSchedule
	// KindLifetimes extracts per-edge buffer lifetime intervals from the
	// schedule tree.
	KindLifetimes
	// KindAlloc packs one allocator's shared-memory image.
	KindAlloc
	// KindPartition builds the P-way phased schedule (Options.Partitions
	// workers, barrier-delimited phases) over the precedence levels.
	KindPartition
	// KindSegalloc packs the per-segment parallel memory image: one private
	// segment per worker plus the shared cross-worker segment.
	KindSegalloc
	// KindAssemble is the per-grid-point leaf: best-allocator selection,
	// metrics, optional verification and buffer merging.
	KindAssemble
)

// String names the pass kind as used in keys, metrics labels, and events.
func (k Kind) String() string {
	switch k {
	case KindRepetitions:
		return "repetitions"
	case KindOrder:
		return "order"
	case KindSchedule:
		return "schedule"
	case KindLifetimes:
		return "lifetimes"
	case KindAlloc:
		return "alloc"
	case KindPartition:
		return "partition"
	case KindSegalloc:
		return "segalloc"
	case KindAssemble:
		return "assemble"
	default:
		panic(fmt.Sprintf("pass: unknown kind %d", int(k)))
	}
}

// Kinds enumerates every pass kind in pipeline order.
func Kinds() []Kind {
	return []Kind{KindRepetitions, KindOrder, KindSchedule, KindLifetimes, KindAlloc, KindPartition, KindSegalloc, KindAssemble}
}

// Key is the deterministic content key of one pass node: the graph key plus
// exactly the option fields the pass reads (see the optionsKeyMap guard in
// options.go). Two nodes with equal keys compute identical artifacts, which
// is what makes plan-level deduplication and external caching sound.
type Key string

// Event reports one pass node starting (Enter true) or completing (Enter
// false) during plan execution. Events for independent branches are emitted
// concurrently; handlers must be safe for concurrent use and must not
// influence compilation.
type Event struct {
	Kind  Kind
	Key   Key
	Enter bool
}
