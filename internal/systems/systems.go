// Package systems constructs the practical SDF benchmark graphs evaluated in
// the paper (Table 1 and Secs. 10–11): one- and two-sided multirate
// filterbanks of parametric depth and rate-change ratios, the satellite
// receiver of Ritz et al., several Ptolemy demonstration systems
// (reconstructed from their published descriptions — see DESIGN.md for the
// substitution notes), the CD-to-DAT sample-rate converter and the
// homogeneous sharing example of Fig. 26.
package systems

import (
	"fmt"

	"repro/internal/sdf"
)

// Ratio describes a two-band rate change c1/den, c2/den with c1 + c2 = den
// (perfect reconstruction). The paper's filterbanks use 1/2+1/2, 1/3+2/3 and
// 2/5+3/5. Tag is the paper's name fragment ("12", "23", "235").
type Ratio struct {
	C1, C2, Den int64
	Tag         string
}

// Standard filterbank ratios from the paper.
var (
	Ratio12  = Ratio{C1: 1, C2: 1, Den: 2, Tag: "12"}  // 1/2, 1/2
	Ratio23  = Ratio{C1: 1, C2: 2, Den: 3, Tag: "23"}  // 1/3, 2/3
	Ratio235 = Ratio{C1: 2, C2: 3, Den: 5, Tag: "235"} // 2/5, 3/5
)

func (r Ratio) check() {
	if r.C1 <= 0 || r.C2 <= 0 || r.Den != r.C1+r.C2 || r.Tag == "" {
		panic(fmt.Sprintf("systems: invalid ratio %+v", r))
	}
}

// TwoSidedFilterbank builds a depth-d two-sided (both bands recursed)
// multirate filterbank: per tree stage an input filter, an analysis actor
// producing the two decimated bands, two synthesis upsamplers and a
// combiner; one processing actor per leaf band; one source. The actor count
// is 6*2^d - 4, matching the paper's 20 / 44 / 188 nodes at depths 2 / 3 / 5.
func TwoSidedFilterbank(depth int, r Ratio) *sdf.Graph {
	r.check()
	if depth < 1 {
		panic("systems: filterbank depth must be >= 1")
	}
	g := sdf.New(fmt.Sprintf("qmf%s_%dd", r.Tag, depth))
	src := g.AddActor("src")
	buildStage(g, src, 1, depth, r, "t", true)
	return g
}

// OneSidedFilterbank builds a depth-d one-sided filterbank (Fig. 22): only
// the low band recurses; the high band gets a leaf processing actor at every
// level. 6 actors per level plus source and the deepest low-band leaf.
func OneSidedFilterbank(depth int, r Ratio) *sdf.Graph {
	r.check()
	if depth < 1 {
		panic("systems: filterbank depth must be >= 1")
	}
	g := sdf.New(fmt.Sprintf("nqmf%s_%dd", r.Tag, depth))
	src := g.AddActor("src")
	buildStage(g, src, 1, depth, r, "t", false)
	return g
}

// buildStage adds one filterbank stage whose input is fed by feeder, which
// produces feedProd tokens per firing. It returns the stage's output actor
// (the combiner), which produces r.Den tokens per firing. twoSided selects
// whether the high band recurses.
func buildStage(g *sdf.Graph, feeder sdf.ActorID, feedProd int64, depth int, r Ratio, tag string, twoSided bool) sdf.ActorID {
	in := g.AddActor(tag + "_in")
	anal := g.AddActor(tag + "_anal")
	g.AddEdge(feeder, in, feedProd, 1, 0)
	g.AddEdge(in, anal, 1, r.Den, 0)

	// Low band.
	var lowOut sdf.ActorID
	var lowProd int64
	if depth == 1 {
		lowLeaf := g.AddActor(tag + "_lo")
		g.AddEdge(anal, lowLeaf, r.C1, 1, 0)
		lowOut, lowProd = lowLeaf, 1
	} else {
		lowOut = buildStage(g, anal, r.C1, depth-1, r, tag+"l", twoSided)
		lowProd = r.Den
	}
	// High band.
	var highOut sdf.ActorID
	var highProd int64
	if depth == 1 || !twoSided {
		highLeaf := g.AddActor(tag + "_hi")
		g.AddEdge(anal, highLeaf, r.C2, 1, 0)
		highOut, highProd = highLeaf, 1
	} else {
		highOut = buildStage(g, anal, r.C2, depth-1, r, tag+"h", twoSided)
		highProd = r.Den
	}

	uL := g.AddActor(tag + "_upL")
	uH := g.AddActor(tag + "_upH")
	add := g.AddActor(tag + "_add")
	g.AddEdge(lowOut, uL, lowProd, r.C1, 0)
	g.AddEdge(highOut, uH, highProd, r.C2, 0)
	g.AddEdge(uL, add, r.Den, r.Den, 0)
	g.AddEdge(uH, add, r.Den, r.Den, 0)
	return add
}

// SatelliteReceiver reconstructs the Ritz et al. satellite receiver
// abstraction (Fig. 24): two parallel down-conversion front ends (A,B,C,G,H,I
// and D,E,F,K,L,M) merging through matched filtering (N,S,J,T,U,P) into a
// frame-level back end (Q,R,V,W). The repetition vector matches the one
// implied by the APGAN schedule quoted in Sec. 11.1.3: q(A)=q(D)=1056,
// q(B)=q(E)=264, q(C..M)=24, q(N..P,W)=240, q(Q,R,V)=1.
func SatelliteReceiver() *sdf.Graph {
	g := sdf.New("satrec")
	id := make(map[string]sdf.ActorID)
	for _, n := range []string{"A", "B", "C", "G", "H", "I",
		"D", "E", "F", "K", "L", "M",
		"N", "S", "J", "T", "U", "P", "Q", "R", "V", "W"} {
		id[n] = g.AddActor(n)
	}
	e := func(a, b string, p, c int64) { g.AddEdge(id[a], id[b], p, c, 0) }
	// Front end 1.
	e("A", "B", 1, 4)
	e("B", "C", 1, 11)
	e("C", "G", 1, 1)
	e("G", "H", 1, 1)
	e("H", "I", 1, 1)
	// Front end 2.
	e("D", "E", 1, 4)
	e("E", "F", 1, 11)
	e("F", "K", 1, 1)
	e("K", "L", 1, 1)
	e("L", "M", 1, 1)
	// Matched filter chains.
	e("I", "N", 10, 1)
	e("M", "S", 10, 1)
	e("N", "J", 1, 1)
	e("S", "J", 1, 1)
	e("J", "T", 1, 1)
	e("T", "U", 1, 1)
	e("U", "P", 1, 1)
	// Frame back end.
	e("P", "Q", 1, 240)
	e("Q", "R", 1, 1)
	e("R", "V", 1, 1)
	e("V", "W", 240, 1)
	return g
}

// CDDAT builds the classic CD-to-DAT sample rate conversion chain
// (44.1 kHz -> 48 kHz = 147:160) discussed in Sec. 11.1.3: a six-actor chain
// with rate changes 2:3, 8:7 and 10:7, q = (147,147,98,112,160,160).
func CDDAT() *sdf.Graph {
	g := sdf.New("cddat")
	names := []string{"cd", "up23", "up87", "up107", "fir", "dat"}
	ids := make([]sdf.ActorID, len(names))
	for i, n := range names {
		ids[i] = g.AddActor(n)
	}
	rates := [][2]int64{{1, 1}, {2, 3}, {8, 7}, {10, 7}, {1, 1}}
	for i, r := range rates {
		g.AddEdge(ids[i], ids[i+1], r[0], r[1], 0)
	}
	return g
}

// Homogeneous builds the Fig. 26 class of homogeneous graphs: a source
// feeding M parallel chains of N actors each, joined by a sink. Every rate
// is 1. A shared implementation needs only M+1 cells; a non-shared one needs
// M(N-1) + 2M.
func Homogeneous(m, n int) *sdf.Graph {
	if m < 1 || n < 1 {
		panic("systems: Homogeneous needs m, n >= 1")
	}
	g := sdf.New(fmt.Sprintf("homog_%dx%d", m, n))
	src := g.AddActor("src")
	snk := g.AddActor("snk")
	for i := 0; i < m; i++ {
		prev := src
		for j := 0; j < n; j++ {
			a := g.AddActor(fmt.Sprintf("c%d_%d", i, j))
			g.AddEdge(prev, a, 1, 1, 0)
			prev = a
		}
		g.AddEdge(prev, snk, 1, 1, 0)
	}
	return g
}

// Modem16QAM reconstructs a 16-QAM modem loop: bit source, scrambler, 4:1
// symbol mapper, 1:4 pulse-shaping interpolator, channel, 4:1 receive
// decimator/matched filter, equalizer, symbol slicer, 1:4 demapper,
// descrambler and sink.
func Modem16QAM() *sdf.Graph {
	g := sdf.New("16qamModem")
	chainWithRates(g, []string{
		"bits", "scramble", "map", "shape", "dac", "channel",
		"agc", "matched", "eq", "slice", "demap", "descramble", "sink",
	}, [][2]int64{
		{1, 1}, // bits -> scramble
		{4, 1}, // scramble -> map: 4 bits per symbol
		{1, 4}, // map -> shape: 4 samples per symbol
		{1, 1}, // shape -> dac
		{1, 1}, // dac -> channel
		{1, 1}, // channel -> agc
		{4, 1}, // agc -> matched: decimate by 4
		{1, 1}, // matched -> eq
		{1, 1}, // eq -> slice
		{1, 4}, // slice -> demap: 4 bits out per symbol
		{1, 1}, // demap -> descramble
		{1, 1}, // descramble -> sink
	})
	return g
}

// PAM4TransmitRecv reconstructs a 4-PAM transmitter/receiver pair: 2 bits
// per symbol, 8x pulse-shaping interpolation, channel, 8x timing-recovery
// decimation, detector and bit sink.
func PAM4TransmitRecv() *sdf.Graph {
	g := sdf.New("4pamxmitrec")
	chainWithRates(g, []string{
		"bits", "map", "pulse", "upsamp", "channel", "timing", "decim", "detect", "unmap", "sink",
	}, [][2]int64{
		{2, 1}, // bits -> map: 2 bits per symbol
		{1, 2}, // map -> pulse: 2x
		{1, 4}, // pulse -> upsamp: 4x more (8x total)
		{1, 1}, // upsamp -> channel
		{1, 1}, // channel -> timing
		{4, 1}, // timing -> decim
		{2, 1}, // decim -> detect
		{1, 2}, // detect -> unmap: 2 bits per symbol
		{1, 1}, // unmap -> sink
	})
	return g
}

// BlockVox reconstructs a block vocoder at the ~25-node scale the paper
// quotes for this benchmark: a sample-rate front end (100 samples per
// frame), three parallel frame-level analysis paths (LPC, pitch, gain), an
// excitation generator with a voiced/unvoiced mix, and a sample-rate
// synthesis back end.
func BlockVox() *sdf.Graph {
	g := sdf.New("blockVox")
	id := map[string]sdf.ActorID{}
	for _, n := range []string{
		// Sample-rate front end.
		"src", "dc", "preemph", "frame",
		// LPC analysis path (frame rate).
		"window", "autocorr", "levinson", "qcoef",
		// Pitch path.
		"lpf", "decim", "acorr2", "peak", "qpitch",
		// Gain path + voicing decision.
		"energy", "qgain", "vuv",
		// Excitation.
		"pulse", "noise", "mix", "scale",
		// Synthesis back end (sample rate).
		"synth", "deemph", "agc", "hpf", "out",
	} {
		id[n] = g.AddActor(n)
	}
	e := func(a, b string, p, c int64) { g.AddEdge(id[a], id[b], p, c, 0) }
	// Front end: samples in, one frame token per 100 samples.
	e("src", "dc", 1, 1)
	e("dc", "preemph", 1, 1)
	e("preemph", "frame", 1, 100)
	// LPC path.
	e("frame", "window", 1, 1)
	e("window", "autocorr", 1, 1)
	e("autocorr", "levinson", 1, 1)
	e("levinson", "qcoef", 1, 1)
	e("qcoef", "synth", 1, 1)
	// Pitch path.
	e("frame", "lpf", 1, 1)
	e("lpf", "decim", 1, 1)
	e("decim", "acorr2", 1, 1)
	e("acorr2", "peak", 1, 1)
	e("peak", "qpitch", 1, 1)
	e("qpitch", "pulse", 1, 1)
	// Gain path and voicing decision.
	e("frame", "energy", 1, 1)
	e("energy", "qgain", 1, 1)
	e("energy", "vuv", 1, 1)
	e("qgain", "scale", 1, 1)
	// Excitation: pulse train vs noise, selected by the voicing decision.
	e("pulse", "mix", 1, 1)
	e("noise", "mix", 1, 1)
	e("vuv", "mix", 1, 1)
	e("mix", "scale", 1, 1)
	e("scale", "synth", 1, 1)
	// Synthesis: one frame token expands back to 100 samples.
	e("synth", "deemph", 100, 1)
	e("deemph", "agc", 1, 1)
	e("agc", "hpf", 1, 1)
	e("hpf", "out", 1, 1)
	return g
}

// OverAddFFT reconstructs an overlap-add FFT filter: 128-sample hops
// assembled into 256-sample blocks, transformed, multiplied by a frequency
// response, inverse transformed, and overlap-added back to 128-sample hops.
func OverAddFFT() *sdf.Graph {
	g := sdf.New("overAddFFT")
	src := g.AddActor("src")
	ovl := g.AddActor("overlap")
	fft := g.AddActor("fft")
	coef := g.AddActor("coef")
	mult := g.AddActor("mult")
	ifft := g.AddActor("ifft")
	oadd := g.AddActor("overlapAdd")
	snk := g.AddActor("sink")
	g.AddEdge(src, ovl, 1, 128, 0)     // gather a hop
	g.AddEdge(ovl, fft, 256, 256, 0)   // blocks of 256 (with overlap)
	g.AddEdge(coef, mult, 256, 256, 0) // frequency response per block
	g.AddEdge(fft, mult, 256, 256, 0)  // spectrum
	g.AddEdge(mult, ifft, 256, 256, 0) // filtered spectrum
	g.AddEdge(ifft, oadd, 256, 256, 0) // time block
	g.AddEdge(oadd, snk, 128, 1, 0)    // emit a hop
	return g
}

// PhasedArray reconstructs a 4-channel phased-array detector: per-channel
// front ends feeding a beamformer, followed by a block FFT detector.
func PhasedArray() *sdf.Graph {
	g := sdf.New("phasedArray")
	beam := g.AddActor("beam")
	for i := 0; i < 4; i++ {
		sensor := g.AddActor(fmt.Sprintf("sensor%d", i))
		bpf := g.AddActor(fmt.Sprintf("bpf%d", i))
		shift := g.AddActor(fmt.Sprintf("shift%d", i))
		g.AddEdge(sensor, bpf, 1, 1, 0)
		g.AddEdge(bpf, shift, 1, 1, 0)
		g.AddEdge(shift, beam, 1, 1, 0)
	}
	blocker := g.AddActor("block")
	fft := g.AddActor("fft")
	mag := g.AddActor("mag")
	detect := g.AddActor("detect")
	g.AddEdge(beam, blocker, 1, 64, 0) // 64-sample detection blocks
	g.AddEdge(blocker, fft, 64, 64, 0)
	g.AddEdge(fft, mag, 64, 64, 0)
	g.AddEdge(mag, detect, 64, 64, 0)
	return g
}

// chainWithRates adds a linear chain of actors with the given per-edge
// (prod, cons) rates.
func chainWithRates(g *sdf.Graph, names []string, rates [][2]int64) {
	if len(rates) != len(names)-1 {
		panic("systems: rates/names mismatch")
	}
	prev := g.AddActor(names[0])
	for i, r := range rates {
		next := g.AddActor(names[i+1])
		g.AddEdge(prev, next, r[0], r[1], 0)
		prev = next
	}
}

// Table1Systems returns all practical benchmark graphs of Table 1 in the
// paper's row order (filterbanks of the three ratio families at depths 2, 3
// and 5, the one-sided depth-4 filterbank, the satellite receiver and the
// five Ptolemy demos).
func Table1Systems() []*sdf.Graph {
	return []*sdf.Graph{
		OneSidedFilterbank(4, Ratio23),
		TwoSidedFilterbank(2, Ratio23),
		TwoSidedFilterbank(3, Ratio23),
		TwoSidedFilterbank(5, Ratio23),
		TwoSidedFilterbank(2, Ratio12),
		TwoSidedFilterbank(3, Ratio12),
		TwoSidedFilterbank(5, Ratio12),
		TwoSidedFilterbank(2, Ratio235),
		TwoSidedFilterbank(3, Ratio235),
		TwoSidedFilterbank(5, Ratio235),
		SatelliteReceiver(),
		Modem16QAM(),
		PAM4TransmitRecv(),
		BlockVox(),
		OverAddFFT(),
		PhasedArray(),
	}
}

// EchoCanceller reconstructs an adaptive echo canceller with a genuine
// feedback cycle: the adaptive filter's coefficient update depends on the
// error signal, which depends on the filter output — a strongly connected
// component broken by one frame of initial coefficients. It exercises the
// general-graph (cyclic) compilation path.
func EchoCanceller() *sdf.Graph {
	g := sdf.New("echoCanc")
	id := map[string]sdf.ActorID{}
	for _, n := range []string{
		"far", "near", "fir", "sub", "update", "gate", "out",
	} {
		id[n] = g.AddActor(n)
	}
	e := func(a, b string, p, c, d int64) { g.AddEdge(id[a], id[b], p, c, d) }
	// Far-end reference feeds the adaptive filter and the update (which
	// consumes half-blocks of 4 samples).
	e("far", "fir", 1, 1, 0)
	e("far", "update", 1, 4, 0)
	// Near-end signal minus echo estimate gives the error.
	e("near", "sub", 1, 1, 0)
	e("fir", "sub", 1, 1, 0)
	// The error drives the (block-packetizing) output and the update...
	e("sub", "out", 1, 8, 0)
	e("sub", "update", 1, 4, 0)
	// ...and the updated coefficients feed back into the filter: the update
	// consumes half-blocks of 4 samples and releases 4 per-sample
	// coefficient tokens, with half a block of initial coefficients. The
	// delay (4) is below one period's consumption (8), so the
	// fir/sub/update/gate loop is a genuine strongly connected component
	// that only its initial tokens make schedulable.
	e("update", "gate", 1, 1, 0)
	e("gate", "fir", 4, 1, 4)
	return g
}
