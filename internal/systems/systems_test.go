package systems

import (
	"testing"
)

func TestFilterbankNodeCounts(t *testing.T) {
	// Paper: depth 5, 3, 2 two-sided filterbanks have 188, 44, 20 nodes.
	cases := []struct {
		depth int
		want  int
	}{{2, 20}, {3, 44}, {5, 188}}
	for _, tc := range cases {
		for _, r := range []Ratio{Ratio12, Ratio23, Ratio235} {
			g := TwoSidedFilterbank(tc.depth, r)
			if got := g.NumActors(); got != tc.want {
				t.Errorf("TwoSidedFilterbank(%d, %v): %d actors, want %d",
					tc.depth, r, got, tc.want)
			}
		}
	}
}

func TestAllSystemsConsistentAndAcyclic(t *testing.T) {
	graphs := Table1Systems()
	graphs = append(graphs, CDDAT(), Homogeneous(3, 4))
	for _, g := range graphs {
		q, err := g.Repetitions()
		if err != nil {
			t.Errorf("%s: %v", g.Name, err)
			continue
		}
		if _, err := g.TopologicalSort(q); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestSatelliteReceiverRepetitions(t *testing.T) {
	g := SatelliteReceiver()
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"A": 1056, "D": 1056, "B": 264, "E": 264,
		"C": 24, "G": 24, "H": 24, "I": 24, "F": 24, "K": 24, "L": 24, "M": 24,
		"N": 240, "S": 240, "J": 240, "T": 240, "U": 240, "P": 240, "W": 240,
		"Q": 1, "R": 1, "V": 1,
	}
	for name, w := range want {
		a, ok := g.ActorByName(name)
		if !ok {
			t.Fatalf("missing actor %s", name)
		}
		if q[a.ID] != w {
			t.Errorf("q(%s) = %d, want %d", name, q[a.ID], w)
		}
	}
	if g.NumActors() != 22 {
		t.Errorf("satrec has %d actors, want 22", g.NumActors())
	}
}

func TestCDDATRepetitions(t *testing.T) {
	g := CDDAT()
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{147, 147, 98, 112, 160, 160}
	for i, w := range want {
		if q[i] != w {
			t.Errorf("q[%d] = %d, want %d", i, q[i], w)
		}
	}
}

func TestHomogeneousShape(t *testing.T) {
	m, n := 4, 3
	g := Homogeneous(m, n)
	if got, want := g.NumActors(), m*n+2; got != want {
		t.Errorf("actors = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), m*(n+1); got != want {
		t.Errorf("edges = %d, want %d", got, want)
	}
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range q {
		if v != 1 {
			t.Errorf("q[%d] = %d, want 1 (homogeneous)", i, v)
		}
	}
	// Non-shared cost from the paper: M(N-1) + 2M.
	got, err := g.BMLB()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(m*(n-1) + 2*m); got != want {
		t.Errorf("BMLB = %d, want %d", got, want)
	}
}

func TestOneSidedFilterbankSize(t *testing.T) {
	g := OneSidedFilterbank(4, Ratio23)
	if got := g.NumActors(); got != 26 {
		t.Errorf("nqmf23_4d has %d actors, want 26", got)
	}
	if _, err := g.Repetitions(); err != nil {
		t.Fatal(err)
	}
}

func TestFilterbankMultirateGrowth(t *testing.T) {
	g := TwoSidedFilterbank(3, Ratio12)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	src, _ := g.ActorByName("src")
	// The source must fire den^depth = 8 times per deepest-band firing.
	if q[src.ID]%8 != 0 {
		t.Errorf("q(src) = %d, want a multiple of 8", q[src.ID])
	}
}

func TestRatioValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid ratio did not panic")
		}
	}()
	TwoSidedFilterbank(2, Ratio{C1: 1, C2: 1, Den: 3})
}

func TestTable1SystemNames(t *testing.T) {
	want := []string{
		"nqmf23_4d", "qmf23_2d", "qmf23_3d", "qmf23_5d",
		"qmf12_2d", "qmf12_3d", "qmf12_5d",
		"qmf235_2d", "qmf235_3d", "qmf235_5d",
		"satrec", "16qamModem", "4pamxmitrec", "blockVox", "overAddFFT", "phasedArray",
	}
	got := Table1Systems()
	if len(got) != len(want) {
		t.Fatalf("%d systems, want %d", len(got), len(want))
	}
	for i, g := range got {
		if g.Name != want[i] {
			t.Errorf("system %d = %s, want %s", i, g.Name, want[i])
		}
	}
}

func TestEchoCancellerIsCyclic(t *testing.T) {
	g := EchoCanceller()
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	if g.IsAcyclic(q) {
		t.Fatal("echo canceller should have a strongly connected component")
	}
	comps := g.SCCs(q)
	var big int
	for _, c := range comps {
		if len(c) > big {
			big = len(c)
		}
	}
	if big < 3 {
		t.Errorf("largest SCC has %d actors, want the fir/sub/update/gate loop", big)
	}
}
