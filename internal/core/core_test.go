package core

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/randsdf"
	"repro/internal/sdf"
	"repro/internal/systems"
)

func compileOK(t *testing.T, g *sdf.Graph, opts Options) *Result {
	t.Helper()
	opts.Verify = true
	res, err := Compile(g, opts)
	if err != nil {
		t.Fatalf("Compile(%s, %v/%v): %v", g.Name, opts.Strategy, opts.Looping, err)
	}
	return res
}

func TestCompileChainDefaults(t *testing.T) {
	g := sdf.New("chain")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 2, 1, 0)
	g.AddEdge(b, c, 1, 3, 0)
	res := compileOK(t, g, Options{})
	if res.Best == nil || res.Best.Total <= 0 {
		t.Fatal("no allocation produced")
	}
	// Shared can never beat the optimistic clique bound and never exceed the
	// non-shared cost of the same schedule.
	if res.Best.Total < res.Metrics.MCO {
		t.Errorf("shared %d below mco %d", res.Best.Total, res.Metrics.MCO)
	}
	if res.Best.Total > res.Metrics.NonSharedBufMem {
		t.Errorf("shared %d exceeds non-shared %d", res.Best.Total, res.Metrics.NonSharedBufMem)
	}
	if res.Metrics.MCO > res.Metrics.MCP {
		t.Errorf("mco %d > mcp %d", res.Metrics.MCO, res.Metrics.MCP)
	}
}

func TestCompileAllStrategyLoopingCombos(t *testing.T) {
	graphs := []*sdf.Graph{
		systems.CDDAT(),
		systems.SatelliteReceiver(),
		systems.TwoSidedFilterbank(2, systems.Ratio23),
		systems.OneSidedFilterbank(2, systems.Ratio12),
		systems.Homogeneous(3, 3),
		systems.Modem16QAM(),
	}
	for _, g := range graphs {
		for _, strat := range []OrderStrategy{APGAN, RPMC} {
			for _, la := range []LoopAlg{SDPPOLoops, DPPOLoops, ChainPreciseLoops, FlatLoops} {
				res := compileOK(t, g, Options{Strategy: strat, Looping: la})
				if !res.Schedule.IsSingleAppearance() {
					t.Errorf("%s/%v/%v: not a SAS: %s", g.Name, strat, la, res.Schedule)
				}
				if res.Best.Total < res.Metrics.MCO {
					t.Errorf("%s/%v/%v: alloc %d < mco %d",
						g.Name, strat, la, res.Best.Total, res.Metrics.MCO)
				}
			}
		}
	}
}

func TestCompileCustomOrder(t *testing.T) {
	g := systems.CDDAT()
	q, _ := g.Repetitions()
	order, _ := g.TopologicalSort(q)
	res := compileOK(t, g, Options{Strategy: CustomOrder, Order: order})
	if len(res.Order) != g.NumActors() {
		t.Error("order lost actors")
	}
	// Wrong-length custom order errors.
	if _, err := Compile(g, Options{Strategy: CustomOrder, Order: order[:2]}); err == nil {
		t.Error("short custom order accepted")
	}
}

func TestCompileInconsistentGraph(t *testing.T) {
	g := sdf.New("bad")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(a, c, 1, 1, 0)
	g.AddEdge(b, c, 2, 1, 0)
	if _, err := Compile(g, Options{}); err == nil {
		t.Error("inconsistent graph compiled")
	}
}

func TestHomogeneousSharingHeadline(t *testing.T) {
	// Fig. 26 claim: shared allocation is M+1 for any M, N while non-shared
	// needs M(N-1)+2M.
	for _, mn := range [][2]int{{2, 3}, {4, 4}, {3, 6}} {
		m, n := mn[0], mn[1]
		g := systems.Homogeneous(m, n)
		best := int64(-1)
		for _, strat := range []OrderStrategy{APGAN, RPMC} {
			res := compileOK(t, g, Options{Strategy: strat})
			if best < 0 || res.Best.Total < best {
				best = res.Best.Total
			}
		}
		if want := int64(m + 1); best > want {
			t.Errorf("Homogeneous(%d,%d): best shared = %d, want <= %d", m, n, best, want)
		}
		nonShared := int64(m*(n-1) + 2*m)
		if best >= nonShared {
			t.Errorf("Homogeneous(%d,%d): shared %d not better than non-shared %d",
				m, n, best, nonShared)
		}
	}
}

func TestSatrecHeadline(t *testing.T) {
	// The paper reports non-shared 1542 and shared 991 for satrec. Our
	// reconstruction differs in absolute terms, but the shared allocation
	// must be well below the non-shared bufmem (paper: ~36% less).
	g := systems.SatelliteReceiver()
	bestShared, bestNonShared := int64(-1), int64(-1)
	for _, strat := range []OrderStrategy{APGAN, RPMC} {
		shared := compileOK(t, g, Options{Strategy: strat, Looping: SDPPOLoops})
		nonshared := compileOK(t, g, Options{Strategy: strat, Looping: DPPOLoops})
		if bestShared < 0 || shared.Best.Total < bestShared {
			bestShared = shared.Best.Total
		}
		if bestNonShared < 0 || nonshared.Metrics.NonSharedBufMem < bestNonShared {
			bestNonShared = nonshared.Metrics.NonSharedBufMem
		}
	}
	if bestShared >= bestNonShared {
		t.Errorf("satrec: shared %d >= non-shared %d", bestShared, bestNonShared)
	}
	t.Logf("satrec: shared %d vs non-shared %d (paper: 991 vs 1542)", bestShared, bestNonShared)
}

func TestCompileRandomGraphsVerified(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		g := randsdf.Graph(rng, randsdf.Config{Actors: 5 + rng.Intn(15)})
		for _, strat := range []OrderStrategy{APGAN, RPMC} {
			res := compileOK(t, g, Options{Strategy: strat, VerifyPeriods: 3})
			for s, a := range res.Allocations {
				if err := a.Verify(); err != nil {
					t.Errorf("trial %d %v/%v: %v", trial, strat, s, err)
				}
			}
		}
	}
}

func TestCompileWithAllAllocators(t *testing.T) {
	g := systems.CDDAT()
	res := compileOK(t, g, Options{
		Allocators: []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart, alloc.BestFitDuration},
	})
	if len(res.Allocations) != 3 {
		t.Errorf("got %d allocations", len(res.Allocations))
	}
	for name, total := range res.Metrics.AllocTotals {
		if total < res.Metrics.SharedTotal {
			t.Errorf("allocator %s total %d below best %d", name, total, res.Metrics.SharedTotal)
		}
	}
}

func TestStringers(t *testing.T) {
	if APGAN.String() != "APGAN" || RPMC.String() != "RPMC" || CustomOrder.String() != "custom" {
		t.Error("OrderStrategy names")
	}
	if SDPPOLoops.String() != "sdppo" || DPPOLoops.String() != "dppo" ||
		ChainPreciseLoops.String() != "chain-sdppo" || FlatLoops.String() != "flat" {
		t.Error("LoopAlg names")
	}
}

func TestCompileWithMerging(t *testing.T) {
	g := systems.OverAddFFT()
	res, err := Compile(g, Options{Merging: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MergedTotal > res.Metrics.SharedTotal {
		t.Errorf("merging regressed: %d > %d", res.Metrics.MergedTotal, res.Metrics.SharedTotal)
	}
	if res.Metrics.Merges == 0 || res.Metrics.MergedTotal >= res.Metrics.SharedTotal {
		t.Errorf("expected a profitable merge on the overlap-add FFT: merged %d, base %d, merges %d",
			res.Metrics.MergedTotal, res.Metrics.SharedTotal, res.Metrics.Merges)
	}
	// Without the option, MergedTotal mirrors SharedTotal.
	plain, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics.MergedTotal != plain.Metrics.SharedTotal || plain.Metrics.Merges != 0 {
		t.Error("merging metrics set without the option")
	}
}
