package core

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/sdf"
)

// TestBestAllocatorNameTieBreak: when two allocators achieve the same total,
// the best must be chosen by allocator name, not by the caller's slice order.
// A single-edge graph forces the tie — every allocator packs the one buffer
// identically.
func TestBestAllocatorNameTieBreak(t *testing.T) {
	g := sdf.New("tie")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 2, 3, 0)

	orders := [][]alloc.Strategy{
		{alloc.FirstFitDuration, alloc.FirstFitStart},
		{alloc.FirstFitStart, alloc.FirstFitDuration},
	}
	var totals [2]int64
	for i, allocators := range orders {
		res, err := Compile(g, Options{Allocators: allocators})
		if err != nil {
			t.Fatal(err)
		}
		tot := [2]int64{
			res.Allocations[alloc.FirstFitDuration].Total,
			res.Allocations[alloc.FirstFitStart].Total,
		}
		if tot[0] != tot[1] {
			t.Fatalf("expected a tie, got ffdur %d vs ffstart %d", tot[0], tot[1])
		}
		if res.BestBy != alloc.FirstFitDuration {
			t.Errorf("allocators %v: BestBy = %v, want ffdur (name tie-break)",
				allocators, res.BestBy)
		}
		totals[i] = res.Best.Total
	}
	if totals[0] != totals[1] {
		t.Errorf("best total depends on allocator slice order: %d vs %d", totals[0], totals[1])
	}
}

// The cyclic path shares the same tie-break.
func TestBestAllocatorNameTieBreakCyclic(t *testing.T) {
	g := sdf.New("tiecycle")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 3, 2, 0)
	g.AddEdge(b, a, 2, 3, 4) // constrains precedence: {A, B} stay strongly connected
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	if g.IsAcyclic(q) {
		t.Fatal("test graph should be cyclic")
	}
	for _, allocators := range [][]alloc.Strategy{
		{alloc.FirstFitDuration, alloc.FirstFitStart},
		{alloc.FirstFitStart, alloc.FirstFitDuration},
	} {
		res, err := CompileGeneral(g, Options{Allocators: allocators})
		if err != nil {
			t.Fatal(err)
		}
		d := res.Allocations[alloc.FirstFitDuration].Total
		s := res.Allocations[alloc.FirstFitStart].Total
		if d == s && res.BestBy != alloc.FirstFitDuration {
			t.Errorf("allocators %v: BestBy = %v on tied totals, want ffdur",
				allocators, res.BestBy)
		}
	}
}
