package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/sdf"
)

func chainGraph() *sdf.Graph {
	g := sdf.New("ctxchain")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 3, 2, 0)
	g.AddEdge(b, c, 5, 7, 0)
	return g
}

func TestCompileContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompileContext(ctx, chainGraph(), Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled compile returned %v, want context.Canceled", err)
	}
}

func TestCompileContextMidPipelineCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{OnStage: func(stage string) {
		if stage == StageAlloc {
			cancel()
		}
	}}
	// The hook fires at the start of the alloc stage, so the very next
	// stage boundary must observe the cancellation.
	opts.Verify = true
	if _, err := CompileContext(ctx, chainGraph(), opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-pipeline cancel returned %v, want context.Canceled", err)
	}
}

func TestCompileContextStageSequence(t *testing.T) {
	var stages []string
	opts := Options{
		Verify:  true,
		Merging: true,
		OnStage: func(stage string) { stages = append(stages, stage) },
	}
	if _, err := CompileContext(context.Background(), chainGraph(), opts); err != nil {
		t.Fatal(err)
	}
	want := []string{StageSchedule, StageLoopDP, StageLifetime, StageAlloc, StageVerify, StageMerge, StageDone}
	if len(stages) != len(want) {
		t.Fatalf("stage sequence %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stage sequence %v, want %v", stages, want)
		}
	}
}

func TestCompileGeneralContextCyclicStages(t *testing.T) {
	// A two-actor feedback pair with enough delay to be schedulable.
	g := sdf.New("ctxcycle")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, a, 1, 1, 1)
	var stages []string
	opts := Options{Verify: true, OnStage: func(stage string) { stages = append(stages, stage) }}
	if _, err := CompileGeneralContext(context.Background(), g, opts); err != nil {
		t.Fatal(err)
	}
	want := []string{StageSchedule, StageLoopDP, StageLifetime, StageAlloc, StageVerify, StageDone}
	if len(stages) != len(want) {
		t.Fatalf("cyclic stage sequence %v, want %v", stages, want)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompileGeneralContext(ctx, g, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled cyclic compile returned %v, want context.Canceled", err)
	}
}
