package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sdf"
)

// ExampleCompile shows the whole flow on the paper's running example: a
// three-actor multirate chain with repetitions vector (3, 6, 2).
func ExampleCompile() {
	g := sdf.New("example")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 2, 1, 0)
	g.AddEdge(b, c, 1, 3, 0)

	res, err := core.Compile(g, core.Options{
		Strategy: core.RPMC,
		Looping:  core.SDPPOLoops,
		Verify:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule:", res.Schedule)
	fmt.Println("shared  :", res.Metrics.SharedTotal, "cells")
	fmt.Println("separate:", res.Metrics.NonSharedBufMem, "cells")
	// Output:
	// schedule: ((3A(2B))(2C))
	// shared  : 8 cells
	// separate: 8 cells
}

// ExampleCompileGeneral compiles a graph with a genuine feedback cycle: the
// strongly connected component is broken by its initial tokens and scheduled
// internally by the demand-driven scheduler.
func ExampleCompileGeneral() {
	g := sdf.New("loop")
	src := g.AddActor("src")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(src, a, 2, 1, 0)
	g.AddEdge(a, b, 3, 2, 0)
	g.AddEdge(b, a, 2, 3, 4) // partial delay: {A,B} is an SCC
	res, err := core.CompileGeneral(g, core.Options{Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("single appearance:", res.Schedule.IsSingleAppearance())
	fmt.Println("verified shared memory:", res.Metrics.SharedTotal > 0)
	// Output:
	// single appearance: false
	// verified shared memory: true
}
