package core

import (
	"testing"

	"repro/internal/sdf"
	"repro/internal/systems"
)

// TestVectorTokensScaleSharing exercises the paper's remark that sharing
// savings grow when vectors or matrices are exchanged instead of scalars:
// scaling every edge of the homogeneous Fig. 26 graph to W-word tokens must
// give exactly (M+1)*W shared cells versus (M(N-1)+2M)*W separate cells, and
// the token-level simulator must still verify the packed image.
func TestVectorTokensScaleSharing(t *testing.T) {
	const m, n, w = 3, 4, 16
	g := systems.Homogeneous(m, n)
	for _, e := range g.Edges() {
		g.SetWords(e.ID, w)
	}
	best := int64(-1)
	for _, strat := range []OrderStrategy{RPMC, APGAN} {
		res, err := Compile(g, Options{Strategy: strat, Verify: true, VerifyPeriods: 3})
		if err != nil {
			t.Fatal(err)
		}
		if best < 0 || res.Metrics.SharedTotal < best {
			best = res.Metrics.SharedTotal
		}
		if res.Metrics.NonSharedBufMem != int64((m*(n-1)+2*m)*w) {
			t.Errorf("non-shared = %d, want %d", res.Metrics.NonSharedBufMem, (m*(n-1)+2*m)*w)
		}
	}
	if want := int64((m + 1) * w); best > want {
		t.Errorf("vector shared = %d, want <= (M+1)*W = %d", best, want)
	}
}

// TestVectorTokensChain: a multirate chain with a vector mid-edge; sizes and
// bounds must scale by the per-edge word counts, verified end to end.
func TestVectorTokensChain(t *testing.T) {
	g := sdf.New("vec")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	e0 := g.AddEdge(a, b, 2, 1, 0)
	e1 := g.AddEdge(b, c, 1, 3, 0)
	g.SetWords(e0, 8) // A emits 8-word frames
	res, err := Compile(g, Options{Verify: true, VerifyPeriods: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals[e0].Size%8 != 0 {
		t.Errorf("vector edge interval size %d not a multiple of 8", res.Intervals[e0].Size)
	}
	if res.Intervals[e1].Size >= 8 && res.Intervals[e1].Size%8 == 0 && res.Intervals[e1].Size > 6 {
		t.Errorf("scalar edge unexpectedly scaled: %d", res.Intervals[e1].Size)
	}
	// BMLB scales: edge0 eta = 2 tokens * 8 words = 16, edge1 = 3.
	got, err := g.BMLB()
	if err != nil {
		t.Fatal(err)
	}
	if got != 16+3 {
		t.Errorf("BMLB = %d, want 19", got)
	}
}

// TestCloneAndSubgraphPreserveWords guards the metadata plumbing.
func TestCloneAndSubgraphPreserveWords(t *testing.T) {
	g := sdf.New("wv")
	a := g.AddActor("A")
	b := g.AddActor("B")
	e := g.AddEdge(a, b, 1, 1, 0)
	g.SetWords(e, 4)
	if g.Clone().Edge(e).Words != 4 {
		t.Error("Clone dropped Words")
	}
	sub, _ := g.Subgraph([]sdf.ActorID{a, b})
	if sub.Edge(0).Words != 4 {
		t.Error("Subgraph dropped Words")
	}
}
