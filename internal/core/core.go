// Package core ties the whole framework together: it implements the Fig. 21
// compilation flow of Murthy & Bhattacharyya's shared-memory SDF synthesis —
//
//	SDF graph -> repetitions vector -> topological sort (APGAN or RPMC) ->
//	flat SAS -> loop-hierarchy post-optimization (DPPO / SDPPO / precise
//	chain DP) -> schedule tree -> buffer lifetime extraction -> dynamic
//	storage allocation (first-fit) -> verified shared memory image.
//
// Compile is the single entry point a downstream user needs; the individual
// phases remain available in their own packages.
//
// Since the pass-graph refactor the pipeline body lives in internal/pass:
// each Fig. 21 stage is a typed pass with an explicit artifact struct and a
// content key, and pass.Plan executes whole configuration grids with
// memoized prefix sharing. This package re-exports the option/result types
// as aliases and keeps Compile as the thin sequential assembly, so existing
// callers are untouched. See docs/PIPELINE.md.
package core

import (
	"context"

	"repro/internal/pass"
	"repro/internal/sdf"
)

// OrderStrategy selects how the lexical ordering (topological sort) is
// generated.
type OrderStrategy = pass.OrderStrategy

const (
	// APGAN clusters adjacent actors bottom-up by maximum repetition gcd.
	APGAN = pass.APGAN
	// RPMC partitions the graph top-down by minimum legal cuts.
	RPMC = pass.RPMC
	// CustomOrder uses Options.Order verbatim.
	CustomOrder = pass.CustomOrder
)

// LoopAlg selects the loop-hierarchy post-optimization.
type LoopAlg = pass.LoopAlg

const (
	// SDPPOLoops is the shared-model heuristic DP (EQ 5) — the paper's
	// default for shared-memory synthesis.
	SDPPOLoops = pass.SDPPOLoops
	// DPPOLoops is the non-shared-model DP (EQ 2/3).
	DPPOLoops = pass.DPPOLoops
	// ChainPreciseLoops uses the exact triple-cost DP of Sec. 6 when the
	// graph is chain-structured under the chosen order, falling back to
	// SDPPO otherwise.
	ChainPreciseLoops = pass.ChainPreciseLoops
	// FlatLoops skips post-optimization and keeps the flat SAS.
	FlatLoops = pass.FlatLoops
)

// Options configures Compile. The zero value is the paper's recommended
// configuration: RPMC ordering, SDPPO looping, first-fit-by-duration and
// first-fit-by-start allocation with the better result selected.
type Options = pass.Options

// Result is the outcome of a compilation.
type Result = pass.Result

// Metrics gathers every number the paper's tables report for one run.
type Metrics = pass.Metrics

// Pipeline stage names reported through Options.OnStage and used in
// deadline-exceeded errors. They follow the Fig. 21 flow: the schedule stage
// covers the repetitions vector and the topological sort, loopdp is the
// loop-hierarchy DP, then lifetime extraction and storage allocation;
// verify and merge fire only when the corresponding option is set.
const (
	StageSchedule  = pass.StageSchedule
	StageLoopDP    = pass.StageLoopDP
	StageLifetime  = pass.StageLifetime
	StageAlloc     = pass.StageAlloc
	StagePartition = pass.StagePartition
	StageSegments  = pass.StageSegments
	StageVerify    = pass.StageVerify
	StageMerge     = pass.StageMerge
	StageDone      = pass.StageDone
)

// Compile runs the full flow on a consistent SDF graph.
func Compile(g *sdf.Graph, opts Options) (*Result, error) {
	return pass.Compile(g, opts)
}

// CompileContext is Compile with cooperative cancellation: the deadline or
// cancellation of ctx is observed at every stage boundary, and the OnStage
// hook (if any) sees each stage begin. A cancelled compilation returns an
// error wrapping ctx.Err() and no Result.
func CompileContext(ctx context.Context, g *sdf.Graph, opts Options) (*Result, error) {
	return pass.CompileContext(ctx, g, opts)
}
