// Package core ties the whole framework together: it implements the Fig. 21
// compilation flow of Murthy & Bhattacharyya's shared-memory SDF synthesis —
//
//	SDF graph -> repetitions vector -> topological sort (APGAN or RPMC) ->
//	flat SAS -> loop-hierarchy post-optimization (DPPO / SDPPO / precise
//	chain DP) -> schedule tree -> buffer lifetime extraction -> dynamic
//	storage allocation (first-fit) -> verified shared memory image.
//
// Compile is the single entry point a downstream user needs; the individual
// phases remain available in their own packages.
package core

import (
	"context"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/apgan"
	"repro/internal/lifetime"
	"repro/internal/looping"
	"repro/internal/merge"
	"repro/internal/rpmc"
	"repro/internal/sched"
	"repro/internal/schedtree"
	"repro/internal/sdf"
	"repro/internal/sim"
)

// OrderStrategy selects how the lexical ordering (topological sort) is
// generated.
type OrderStrategy int

const (
	// APGAN clusters adjacent actors bottom-up by maximum repetition gcd.
	APGAN OrderStrategy = iota
	// RPMC partitions the graph top-down by minimum legal cuts.
	RPMC
	// CustomOrder uses Options.Order verbatim.
	CustomOrder
)

// String names the strategy as in the paper's tables ("(A)" / "(R)").
func (s OrderStrategy) String() string {
	switch s {
	case APGAN:
		return "APGAN"
	case RPMC:
		return "RPMC"
	case CustomOrder:
		return "custom"
	default:
		return fmt.Sprintf("OrderStrategy(%d)", int(s))
	}
}

// LoopAlg selects the loop-hierarchy post-optimization.
type LoopAlg int

const (
	// SDPPOLoops is the shared-model heuristic DP (EQ 5) — the paper's
	// default for shared-memory synthesis.
	SDPPOLoops LoopAlg = iota
	// DPPOLoops is the non-shared-model DP (EQ 2/3).
	DPPOLoops
	// ChainPreciseLoops uses the exact triple-cost DP of Sec. 6 when the
	// graph is chain-structured under the chosen order, falling back to
	// SDPPO otherwise.
	ChainPreciseLoops
	// FlatLoops skips post-optimization and keeps the flat SAS.
	FlatLoops
)

// String names the looping algorithm.
func (l LoopAlg) String() string {
	switch l {
	case SDPPOLoops:
		return "sdppo"
	case DPPOLoops:
		return "dppo"
	case ChainPreciseLoops:
		return "chain-sdppo"
	case FlatLoops:
		return "flat"
	default:
		return fmt.Sprintf("LoopAlg(%d)", int(l))
	}
}

// Options configures Compile. The zero value is the paper's recommended
// configuration: RPMC ordering, SDPPO looping, first-fit-by-duration and
// first-fit-by-start allocation with the better result selected.
type Options struct {
	Strategy OrderStrategy
	Order    []sdf.ActorID // used only with CustomOrder
	Looping  LoopAlg
	// Allocators to try; the smallest feasible result is selected. Default:
	// ffdur and ffstart.
	Allocators []alloc.Strategy
	// Verify runs the token-level shared-memory simulator for VerifyPeriods
	// periods (default 2) and fails compilation on any safety violation.
	Verify        bool
	VerifyPeriods int
	// Merging enables the Sec. 12 buffer-merging extension: input/output
	// buffer pairs across consume-before-produce actors are folded into one
	// array when that provably shrinks the packed total. Merged buffers use
	// a combined memory image that the token-level simulator cannot check,
	// so Verify covers the unmerged allocation and merging is applied after.
	Merging bool
	// MergePolicy optionally marks actors whose outputs overlap their
	// inputs (merge.Overlap); nil treats every actor as consume-before-
	// produce.
	MergePolicy func(sdf.ActorID) merge.Policy
	// OnStage, when non-nil, is invoked at the start of every pipeline
	// stage (the Stage* constants, in order) and once with StageDone when
	// compilation succeeds. The hook lets callers attribute wall time to
	// stages without putting clock reads inside the deterministic core:
	// sdfd times the interval between consecutive calls. The hook must not
	// influence compilation — it sees stage names only.
	OnStage func(stage string)
}

// Result is the outcome of a compilation.
type Result struct {
	Graph       *sdf.Graph
	Repetitions sdf.Repetitions
	Order       []sdf.ActorID
	// Schedule is the post-optimized nested single appearance schedule.
	Schedule *sched.Schedule
	Tree     *schedtree.Tree
	// Intervals holds one buffer lifetime per edge (indexed by edge ID).
	Intervals []*lifetime.Interval
	// Allocations per strategy, and the best (smallest) one.
	Allocations map[alloc.Strategy]*alloc.Allocation
	Best        *alloc.Allocation
	BestBy      alloc.Strategy
	Metrics     Metrics
}

// Metrics gathers every number the paper's tables report for one run.
type Metrics struct {
	// DPCost is the looping DP's objective value (bufmem for DPPO, the
	// shared overlay estimate for SDPPO / chain DP).
	DPCost int64
	// NonSharedBufMem is the simulated bufmem (EQ 1) of the final schedule:
	// what a non-shared implementation of this same schedule would need.
	NonSharedBufMem int64
	// MCO and MCP are the optimistic and pessimistic maximum-clique-weight
	// estimates over the extracted lifetimes.
	MCO, MCP int64
	// AllocTotals maps allocator name to achieved total memory.
	AllocTotals map[string]int64
	// SharedTotal is the best allocation total.
	SharedTotal int64
	// MergedTotal is the best allocation total after buffer merging; equal
	// to SharedTotal unless Options.Merging found profitable merges.
	MergedTotal int64
	// Merges is the number of buffer pairs folded by Options.Merging.
	Merges int
	// BMLB is the non-shared buffer memory lower bound over all SASs.
	BMLB int64
}

// Pipeline stage names reported through Options.OnStage and used in
// deadline-exceeded errors. They follow the Fig. 21 flow: the schedule stage
// covers the repetitions vector and the topological sort, loopdp is the
// loop-hierarchy DP, then lifetime extraction and storage allocation;
// verify and merge fire only when the corresponding option is set.
const (
	StageSchedule = "schedule"
	StageLoopDP   = "loopdp"
	StageLifetime = "lifetime"
	StageAlloc    = "alloc"
	StageVerify   = "verify"
	StageMerge    = "merge"
	StageDone     = "done"
)

// Compile runs the full flow on a consistent SDF graph.
func Compile(g *sdf.Graph, opts Options) (*Result, error) {
	return CompileContext(context.Background(), g, opts)
}

// stageStart is the per-stage checkpoint of the context-aware entry points:
// it aborts promptly once ctx is cancelled or past its deadline (wrapping
// the context error so callers can errors.Is on it) and notifies the
// OnStage hook. Cancellation is checked between stages, not inside them —
// the individual algorithms stay pure functions with no context plumbing.
func stageStart(ctx context.Context, opts Options, stage string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: aborted before %s stage: %w", stage, err)
	}
	if opts.OnStage != nil {
		opts.OnStage(stage)
	}
	return nil
}

// CompileContext is Compile with cooperative cancellation: the deadline or
// cancellation of ctx is observed at every stage boundary, and the OnStage
// hook (if any) sees each stage begin. A cancelled compilation returns an
// error wrapping ctx.Err() and no Result.
func CompileContext(ctx context.Context, g *sdf.Graph, opts Options) (*Result, error) {
	if err := stageStart(ctx, opts, StageSchedule); err != nil {
		return nil, err
	}
	q, err := g.Repetitions()
	if err != nil {
		return nil, err
	}
	order, err := makeOrder(g, q, opts)
	if err != nil {
		return nil, err
	}
	if err := stageStart(ctx, opts, StageLoopDP); err != nil {
		return nil, err
	}
	s, dpCost, err := makeLoops(g, q, order, opts.Looping)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(q); err != nil {
		return nil, fmt.Errorf("core: generated schedule %s is invalid: %w", s, err)
	}
	if err := stageStart(ctx, opts, StageLifetime); err != nil {
		return nil, err
	}
	tree, err := schedtree.FromSchedule(s)
	if err != nil {
		return nil, err
	}
	intervals, err := tree.Lifetimes(q)
	if err != nil {
		return nil, err
	}
	if err := stageStart(ctx, opts, StageAlloc); err != nil {
		return nil, err
	}
	allocators := opts.Allocators
	if len(allocators) == 0 {
		allocators = []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart}
	}
	res := &Result{
		Graph:       g,
		Repetitions: q,
		Order:       order,
		Schedule:    s,
		Tree:        tree,
		Intervals:   intervals,
		Allocations: make(map[alloc.Strategy]*alloc.Allocation, len(allocators)),
	}
	res.Metrics.DPCost = dpCost
	res.Metrics.AllocTotals = make(map[string]int64, len(allocators))
	for _, strat := range allocators {
		a := alloc.Allocate(intervals, strat)
		if err := a.Verify(); err != nil {
			return nil, fmt.Errorf("core: %v allocation infeasible: %w", strat, err)
		}
		res.Allocations[strat] = a
		res.Metrics.AllocTotals[strat.String()] = a.Total
		if res.Best == nil || a.Total < res.Best.Total {
			res.Best = a
			res.BestBy = strat
		}
	}
	res.Metrics.SharedTotal = res.Best.Total
	res.Metrics.MCO = lifetime.MCWOptimistic(intervals)
	res.Metrics.MCP = lifetime.MCWPessimistic(intervals)
	bmlb, err := g.BMLB()
	if err != nil {
		return nil, err
	}
	res.Metrics.BMLB = bmlb
	bm, err := s.BufMem()
	if err != nil {
		return nil, err
	}
	res.Metrics.NonSharedBufMem = bm

	if opts.Verify {
		if err := stageStart(ctx, opts, StageVerify); err != nil {
			return nil, err
		}
		periods := opts.VerifyPeriods
		if periods <= 0 {
			periods = 2
		}
		if err := sim.Run(s, q, intervals, res.Best, periods); err != nil {
			return nil, fmt.Errorf("core: verification failed: %w", err)
		}
	}

	res.Metrics.MergedTotal = res.Metrics.SharedTotal
	if opts.Merging {
		if err := stageStart(ctx, opts, StageMerge); err != nil {
			return nil, err
		}
		total, merges, err := applyMerging(res, opts, allocators)
		if err != nil {
			return nil, err
		}
		res.Metrics.MergedTotal = total
		res.Metrics.Merges = merges
	}
	if err := stageStart(ctx, opts, StageDone); err != nil {
		return nil, err
	}
	return res, nil
}

// applyMerging grows an allocation-aware merge plan (Sec. 12): candidates
// with non-periodic lifetimes are folded one by one, keeping each merge only
// if the packed total shrinks.
func applyMerging(res *Result, opts Options, allocators []alloc.Strategy) (int64, int, error) {
	cands := merge.Candidates(res.Schedule, opts.MergePolicy)
	var solid []merge.Candidate
	for _, c := range cands {
		if len(res.Intervals[c.In].Periods) == 0 && len(res.Intervals[c.Out].Periods) == 0 {
			solid = append(solid, c)
		}
	}
	allocBest := func(ivs []*lifetime.Interval) (int64, error) {
		best := int64(-1)
		for _, s := range allocators {
			a := alloc.Allocate(ivs, s)
			if err := a.Verify(); err != nil {
				return 0, fmt.Errorf("core: merged allocation infeasible: %w", err)
			}
			if best < 0 || a.Total < best {
				best = a.Total
			}
		}
		return best, nil
	}
	best := res.Metrics.SharedTotal
	used := map[sdf.EdgeID]bool{}
	var plan []merge.Candidate
	for _, c := range solid {
		if c.Gain <= 0 || used[c.In] || used[c.Out] {
			continue
		}
		trial, err := allocBest(merge.Apply(res.Intervals, append(plan, c)))
		if err != nil {
			return 0, 0, err
		}
		if trial < best {
			plan = append(plan, c)
			used[c.In], used[c.Out] = true, true
			best = trial
		}
	}
	return best, len(plan), nil
}

func makeOrder(g *sdf.Graph, q sdf.Repetitions, opts Options) ([]sdf.ActorID, error) {
	switch opts.Strategy {
	case APGAN:
		res, err := apgan.Run(g, q)
		if err != nil {
			return nil, err
		}
		return res.Order, nil
	case RPMC:
		return rpmc.Order(g, q)
	case CustomOrder:
		if len(opts.Order) != g.NumActors() {
			return nil, fmt.Errorf("core: custom order has %d actors, graph has %d",
				len(opts.Order), g.NumActors())
		}
		return opts.Order, nil
	default:
		return nil, fmt.Errorf("core: unknown order strategy %v", opts.Strategy)
	}
}

func makeLoops(g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID, la LoopAlg) (*sched.Schedule, int64, error) {
	switch la {
	case SDPPOLoops:
		r, err := looping.SDPPO(g, q, order)
		if err != nil {
			return nil, 0, err
		}
		return r.Schedule, r.Cost, nil
	case DPPOLoops:
		r, err := looping.DPPO(g, q, order)
		if err != nil {
			return nil, 0, err
		}
		return r.Schedule, r.Cost, nil
	case ChainPreciseLoops:
		if g.IsChain(order) {
			r, err := looping.ChainSDPPO(g, q, order)
			if err != nil {
				return nil, 0, err
			}
			return r.Schedule, r.Cost, nil
		}
		r, err := looping.SDPPO(g, q, order)
		if err != nil {
			return nil, 0, err
		}
		return r.Schedule, r.Cost, nil
	case FlatLoops:
		s := sched.FlatSAS(g, q, order)
		bm, err := s.BufMem()
		if err != nil {
			return nil, 0, err
		}
		return s, bm, nil
	default:
		return nil, 0, fmt.Errorf("core: unknown looping algorithm %v", la)
	}
}
