package core

import (
	"context"

	"repro/internal/pass"
	"repro/internal/sdf"
)

// CompileGeneral compiles an arbitrary consistent SDF graph, including
// graphs whose precedence relation is cyclic. Acyclic graphs take the normal
// Compile path; cyclic graphs go through the SCC-condensation decomposition
// implemented by pass.CompileGeneral (see that function for the algorithm).
func CompileGeneral(g *sdf.Graph, opts Options) (*Result, error) {
	return pass.CompileGeneral(g, opts)
}

// CompileGeneralContext is CompileGeneral with cooperative cancellation, on
// the same contract as CompileContext: ctx is checked at stage boundaries
// (and between per-component demand-driven scheduling runs on the cyclic
// path), and the OnStage hook sees the coarse stage sequence.
func CompileGeneralContext(ctx context.Context, g *sdf.Graph, opts Options) (*Result, error) {
	return pass.CompileGeneralContext(ctx, g, opts)
}
