package core

import (
	"math/rand"
	"testing"

	"repro/internal/randsdf"
	"repro/internal/sdf"
	"repro/internal/systems"
)

// feedbackLoop builds a two-actor feedback system: A -> B forward, B -> A
// backward with enough initial tokens for k firings of A.
func feedbackLoop(t *testing.T, delay int64) *sdf.Graph {
	t.Helper()
	g := sdf.New("feedback")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, a, 1, 1, delay)
	return g
}

func TestCompileGeneralAcyclicDelegates(t *testing.T) {
	g := sdf.New("chain")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 2, 1, 0)
	res, err := CompileGeneral(g, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.IsSingleAppearance() {
		t.Error("acyclic path should produce a SAS")
	}
}

func TestCompileGeneralFeedback(t *testing.T) {
	// A unit-rate loop with one delay token: the back edge carries a full
	// period of tokens, so precedence-wise the graph is acyclic and the
	// normal SAS path applies (del >= TNSE rule of [3]).
	g := feedbackLoop(t, 1)
	res, err := CompileGeneral(g, Options{Verify: true, VerifyPeriods: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SharedTotal <= 0 {
		t.Error("no memory allocated")
	}
	if !res.Schedule.IsSingleAppearance() {
		t.Error("delay-broken loop should take the SAS path")
	}
	if err := res.Schedule.Validate(res.Repetitions); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestCompileGeneralDeadlock(t *testing.T) {
	g := feedbackLoop(t, 0) // no initial tokens: deadlocked cycle
	if _, err := CompileGeneral(g, Options{}); err == nil {
		t.Fatal("deadlocked graph compiled")
	}
}

// TestCompileGeneralMultirateCycle: a multirate loop where the SCC needs
// several firings per composite period.
func TestCompileGeneralMultirateCycle(t *testing.T) {
	g := sdf.New("mrc")
	src := g.AddActor("src")
	a := g.AddActor("A")
	b := g.AddActor("B")
	snk := g.AddActor("snk")
	g.AddEdge(src, a, 2, 1, 0)
	g.AddEdge(a, b, 3, 2, 0)
	g.AddEdge(b, a, 2, 3, 4) // feedback: enough delay to break the cycle,
	// but below one period's consumption, so the edge still constrains
	// precedence and keeps {A, B} strongly connected
	g.AddEdge(b, snk, 1, 1, 0)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	if g.IsAcyclic(q) {
		t.Fatal("test graph should be cyclic")
	}
	res, err := CompileGeneral(g, Options{Verify: true, VerifyPeriods: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The feedback edge must get a dedicated buffer covering its peak.
	sim, err := res.Schedule.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if res.Intervals[e.ID].Size < sim.MaxTokens[e.ID] {
			t.Errorf("edge %d: interval %d below peak %d",
				e.ID, res.Intervals[e.ID].Size, sim.MaxTokens[e.ID])
		}
	}
}

// TestCompileGeneralTwoSCCs: two feedback pairs in series must condense to a
// two-composite chain whose buffers still share.
func TestCompileGeneralTwoSCCs(t *testing.T) {
	g := sdf.New("twoscc")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	d := g.AddActor("D")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, a, 1, 1, 1)
	g.AddEdge(b, c, 1, 1, 0)
	g.AddEdge(c, d, 1, 1, 0)
	g.AddEdge(d, c, 1, 1, 1)
	res, err := CompileGeneral(g, Options{Verify: true, VerifyPeriods: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SharedTotal > res.Metrics.NonSharedBufMem {
		t.Errorf("shared %d above non-shared %d",
			res.Metrics.SharedTotal, res.Metrics.NonSharedBufMem)
	}
}

// TestCompileGeneralRandomWithBackEdges: random DAGs with random delay-
// carrying back edges added must all compile and verify.
func TestCompileGeneralRandomWithBackEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		g := randsdf.Graph(rng, randsdf.Config{Actors: 4 + rng.Intn(8)})
		q, err := g.Repetitions()
		if err != nil {
			t.Fatal(err)
		}
		// Add a back edge with a full period of delay (keeps consistency:
		// rates derived from q, delay = TNSE of the new edge).
		src := sdf.ActorID(rng.Intn(g.NumActors()))
		dst := sdf.ActorID(rng.Intn(g.NumActors()))
		if src == dst {
			continue
		}
		gg := gcd64t(q[src], q[dst])
		prod, cons := q[dst]/gg, q[src]/gg
		g.AddEdge(src, dst, prod, cons, prod*q[src])
		res, err := CompileGeneral(g, Options{Strategy: APGAN, Verify: true, VerifyPeriods: 2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Schedule.Validate(res.Repetitions); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func gcd64t(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func TestCompileGeneralEchoCanceller(t *testing.T) {
	g := systems.EchoCanceller()
	res, err := CompileGeneral(g, Options{Verify: true, VerifyPeriods: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.IsSingleAppearance() {
		t.Log("note: cyclic path produced a single appearance schedule")
	}
	if err := res.Schedule.Validate(res.Repetitions); err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SharedTotal <= 0 || res.Metrics.SharedTotal > res.Metrics.NonSharedBufMem {
		t.Errorf("shared %d vs non-shared %d", res.Metrics.SharedTotal, res.Metrics.NonSharedBufMem)
	}
}

func TestCompileGeneralRejectsCustomOrderOnCyclic(t *testing.T) {
	g := systems.EchoCanceller()
	q, _ := g.Repetitions()
	order := make([]sdf.ActorID, g.NumActors())
	for i := range order {
		order[i] = sdf.ActorID(i)
	}
	_ = q
	if _, err := CompileGeneral(g, Options{Strategy: CustomOrder, Order: order}); err == nil {
		t.Error("custom order accepted on a cyclic graph")
	}
}

func TestCompileGeneralMergingUnsupportedPath(t *testing.T) {
	// Merging flows through the acyclic path only; on the cyclic path the
	// option is currently ignored (documented behaviour) — the result must
	// still be valid and MergedTotal must mirror SharedTotal.
	g := systems.EchoCanceller()
	res, err := CompileGeneral(g, Options{Merging: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MergedTotal != 0 && res.Metrics.MergedTotal != res.Metrics.SharedTotal {
		t.Errorf("cyclic path merged total %d diverges from shared %d",
			res.Metrics.MergedTotal, res.Metrics.SharedTotal)
	}
}
