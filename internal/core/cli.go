package core

import (
	"errors"
	"flag"
)

// ParseCLI parses command-line arguments with the conventions every binary
// in this repository follows: -h/-help print usage and exit 0, unknown flags
// or malformed values print usage and exit 2, and valid arguments let the
// program continue.
//
// It returns the exit code the process should terminate with, or -1 when
// parsing succeeded and execution should proceed:
//
//	fs := flag.NewFlagSet("sdffuzz", flag.ContinueOnError)
//	n := fs.Int("n", 200, "number of graphs")
//	if code := core.ParseCLI(fs, os.Args[1:]); code >= 0 {
//		os.Exit(code)
//	}
//
// The flag set's error handling is forced to ContinueOnError so the decision
// stays with the caller (and with tests).
func ParseCLI(fs *flag.FlagSet, args []string) int {
	fs.Init(fs.Name(), flag.ContinueOnError)
	switch err := fs.Parse(args); {
	case err == nil:
		return -1
	case errors.Is(err, flag.ErrHelp):
		return 0
	default:
		return 2
	}
}
