package core

import (
	"flag"
	"io"
	"testing"
)

func newTestFlagSet() (*flag.FlagSet, *int) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	n := fs.Int("n", 7, "a number")
	return fs, n
}

func TestParseCLI(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		n    int
	}{
		{"no args", nil, -1, 7},
		{"valid flag", []string{"-n", "3"}, -1, 3},
		{"help short", []string{"-h"}, 0, 7},
		{"help long", []string{"-help"}, 0, 7},
		{"unknown flag", []string{"-bogus"}, 2, 7},
		// The stdlib flag package stores the failed strconv result (0) before
		// reporting the error, so the value is clobbered — callers exit anyway.
		{"bad value", []string{"-n", "x"}, 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, n := newTestFlagSet()
			if got := ParseCLI(fs, tc.args); got != tc.code {
				t.Fatalf("ParseCLI(%v) = %d, want %d", tc.args, got, tc.code)
			}
			if *n != tc.n {
				t.Fatalf("after ParseCLI(%v), n = %d, want %d", tc.args, *n, tc.n)
			}
		})
	}
}

func TestParseCLIKeepsOutputSuppressed(t *testing.T) {
	// ParseCLI must not reset the caller's configured output writer: Init
	// only renames the set and pins ContinueOnError.
	fs, _ := newTestFlagSet()
	if code := ParseCLI(fs, []string{"-bogus"}); code != 2 {
		t.Fatalf("code = %d, want 2", code)
	}
	if fs.Output() == nil {
		t.Fatal("output writer lost")
	}
}
