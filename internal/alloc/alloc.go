// Package alloc implements dynamic storage allocation (DSA) of buffer
// lifetimes into a single shared memory space (Sec. 9): the first-fit
// heuristic of Fig. 19 over an enumerated instance, with the two enumeration
// orders evaluated in the paper (by decreasing duration, "ffdur", and by
// start time, "ffstart"), plus a best-fit variant used for ablation.
package alloc

import (
	"fmt"

	"repro/internal/lifetime"
)

// Strategy selects the placement policy and enumeration order.
type Strategy int

const (
	// FirstFitDuration enumerates intervals by decreasing lifetime span and
	// places each at the lowest feasible address. The paper's best performer.
	FirstFitDuration Strategy = iota
	// FirstFitStart enumerates intervals by increasing start time.
	FirstFitStart
	// BestFitDuration places each interval (duration order) into the
	// feasible gap wasting the least space; ablation only.
	BestFitDuration
)

// String returns the paper's abbreviation for the strategy.
func (s Strategy) String() string {
	switch s {
	case FirstFitDuration:
		return "ffdur"
	case FirstFitStart:
		return "ffstart"
	case BestFitDuration:
		return "bfdur"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Placement is the allocation of one interval.
type Placement struct {
	Interval *lifetime.Interval
	Offset   int64
}

// Allocation is the result of storage allocation: a placement per interval
// and the total memory required.
type Allocation struct {
	Placements []Placement
	Total      int64
	// wig is the intersection graph of the enumerated instance, indexed like
	// Placements; Verify walks its adjacency instead of re-deriving the
	// pairwise intersection tests.
	wig *lifetime.WIG
}

// OffsetOf returns the assigned offset of the given interval.
func (a *Allocation) OffsetOf(iv *lifetime.Interval) (int64, bool) {
	for _, p := range a.Placements {
		if p.Interval == iv {
			return p.Offset, true
		}
	}
	return 0, false
}

// memRange is a half-open occupied address range [Lo, Hi).
type memRange struct{ lo, hi int64 }

// Allocate packs the intervals into shared memory with the given strategy.
// The input slice is not modified.
func Allocate(intervals []*lifetime.Interval, strat Strategy) *Allocation {
	order := Enumerate(intervals, strat)
	return AllocateEnumerated(order, lifetime.BuildWIG(order), strat)
}

// Enumerate returns a copy of intervals in strat's enumeration order
// (decreasing duration for ffdur/bfdur, increasing start time for ffstart).
func Enumerate(intervals []*lifetime.Interval, strat Strategy) []*lifetime.Interval {
	order := append([]*lifetime.Interval(nil), intervals...)
	switch strat {
	case FirstFitStart:
		lifetime.SortByStart(order)
	case FirstFitDuration, BestFitDuration:
		lifetime.SortByDuration(order)
	}
	return order
}

// AllocateEnumerated packs an already-enumerated instance over its
// intersection graph. Both order and w are only read, so callers compiling a
// grid may share one (order, WIG) pair across every strategy with the same
// enumeration — ffdur and bfdur both enumerate by decreasing duration.
func AllocateEnumerated(order []*lifetime.Interval, w *lifetime.WIG, strat Strategy) *Allocation {
	offsets := make([]int64, len(order))
	placed := make([]bool, len(order))
	var total int64
	// One scratch list reused across intervals; each placed neighbor is
	// inserted at its sorted position, so no per-interval allocation or
	// comparison-sort pass is needed.
	busy := make([]memRange, 0, len(order))
	for i, iv := range order {
		busy = busy[:0]
		for _, j := range w.Adj[i] {
			if !placed[j] {
				continue
			}
			r := memRange{offsets[j], offsets[j] + order[j].Size}
			lo, hi := 0, len(busy)
			for lo < hi {
				mid := (lo + hi) / 2
				if busy[mid].lo <= r.lo {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			busy = append(busy, memRange{})
			copy(busy[lo+1:], busy[lo:])
			busy[lo] = r
		}
		var off int64
		if strat == BestFitDuration {
			off = bestFit(busy, iv.Size)
		} else {
			off = firstFit(busy, iv.Size)
		}
		offsets[i] = off
		placed[i] = true
		if off+iv.Size > total {
			total = off + iv.Size
		}
	}
	res := &Allocation{Total: total, Placements: make([]Placement, len(order)), wig: w}
	for i, iv := range order {
		res.Placements[i] = Placement{Interval: iv, Offset: offsets[i]}
	}
	return res
}

// firstFit returns the lowest address where size cells fit between the
// sorted busy ranges.
func firstFit(busy []memRange, size int64) int64 {
	var off int64
	for _, r := range busy {
		if off+size <= r.lo {
			break
		}
		if r.hi > off {
			off = r.hi
		}
	}
	return off
}

// bestFit returns the offset of the smallest gap between busy ranges that
// fits size, falling back to the end of the occupied space.
func bestFit(busy []memRange, size int64) int64 {
	var merged []memRange
	for _, r := range busy {
		if n := len(merged); n > 0 && r.lo <= merged[n-1].hi {
			if r.hi > merged[n-1].hi {
				merged[n-1].hi = r.hi
			}
			continue
		}
		merged = append(merged, r)
	}
	bestOff := int64(-1)
	var bestWaste int64
	var cur int64
	for _, r := range merged {
		if gap := r.lo - cur; gap >= size {
			if waste := gap - size; bestOff < 0 || waste < bestWaste {
				bestOff, bestWaste = cur, waste
			}
		}
		if r.hi > cur {
			cur = r.hi
		}
	}
	if bestOff >= 0 {
		return bestOff
	}
	return cur
}

// Verify checks that no two time-intersecting intervals overlap in memory.
// It returns nil for a feasible allocation. When the allocation carries its
// intersection graph the intersecting pairs are read off the adjacency lists
// (same pairs, same scan order); re-deriving them is the fallback for
// allocations assembled without one.
func (a *Allocation) Verify() error {
	if a.wig != nil && len(a.wig.Intervals) == len(a.Placements) {
		for i := range a.Placements {
			for _, j := range a.wig.Adj[i] {
				if j <= i {
					continue
				}
				if err := a.checkPair(i, j); err != nil {
					return err
				}
			}
		}
		return a.checkBounds()
	}
	for i := 0; i < len(a.Placements); i++ {
		for j := i + 1; j < len(a.Placements); j++ {
			if !lifetime.Intersects(a.Placements[i].Interval, a.Placements[j].Interval) {
				continue
			}
			if err := a.checkPair(i, j); err != nil {
				return err
			}
		}
	}
	return a.checkBounds()
}

// checkPair reports the memory-overlap error of the time-intersecting pair
// (i, j), or nil when their address ranges are disjoint.
func (a *Allocation) checkPair(i, j int) error {
	pi, pj := a.Placements[i], a.Placements[j]
	if pi.Offset < pj.Offset+pj.Interval.Size && pj.Offset < pi.Offset+pi.Interval.Size {
		return fmt.Errorf("alloc: %s @%d and %s @%d overlap in time and memory",
			pi.Interval.Name, pi.Offset, pj.Interval.Name, pj.Offset)
	}
	return nil
}

func (a *Allocation) checkBounds() error {
	for _, p := range a.Placements {
		if p.Offset < 0 || p.Offset+p.Interval.Size > a.Total {
			return fmt.Errorf("alloc: %s @%d exceeds total %d", p.Interval.Name, p.Offset, a.Total)
		}
	}
	return nil
}
