package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lifetime"
)

func solid(name string, size, start, dur int64) *lifetime.Interval {
	return &lifetime.Interval{Name: name, Size: size, Start: start, Dur: dur}
}

func TestDisjointShareMemory(t *testing.T) {
	a := solid("a", 10, 0, 5)
	b := solid("b", 10, 5, 5) // disjoint from a
	for _, strat := range []Strategy{FirstFitDuration, FirstFitStart, BestFitDuration} {
		res := Allocate([]*lifetime.Interval{a, b}, strat)
		if res.Total != 10 {
			t.Errorf("%v: total = %d, want 10 (full sharing)", strat, res.Total)
		}
		if err := res.Verify(); err != nil {
			t.Errorf("%v: %v", strat, err)
		}
	}
}

func TestOverlappingStack(t *testing.T) {
	a := solid("a", 10, 0, 10)
	b := solid("b", 7, 5, 10)
	res := Allocate([]*lifetime.Interval{a, b}, FirstFitStart)
	if res.Total != 17 {
		t.Errorf("total = %d, want 17", res.Total)
	}
	if err := res.Verify(); err != nil {
		t.Error(err)
	}
}

func TestFirstFitFillsGap(t *testing.T) {
	// a [0,10) size 4, b [0,10) size 4 at offset 4, c overlaps only b's
	// time? Construct: a dies at 5; c starts at 5 and overlaps b in time but
	// not a, so first-fit should reuse a's cells for c.
	a := solid("a", 4, 0, 5)
	b := solid("b", 4, 0, 10)
	c := solid("c", 4, 5, 5)
	res := Allocate([]*lifetime.Interval{a, b, c}, FirstFitStart)
	if res.Total != 8 {
		t.Errorf("total = %d, want 8 (c reuses a's space)", res.Total)
	}
	if err := res.Verify(); err != nil {
		t.Error(err)
	}
}

func TestPeriodicInterleavingShares(t *testing.T) {
	// The Fig. 17 pair: disjoint periodic lifetimes share one location.
	ab := &lifetime.Interval{Name: "AB", Size: 6, Start: 0, Dur: 2,
		Periods: []lifetime.Period{{A: 4, Count: 2}, {A: 9, Count: 2}}}
	cd := &lifetime.Interval{Name: "CD", Size: 6, Start: 2, Dur: 2,
		Periods: []lifetime.Period{{A: 4, Count: 2}, {A: 9, Count: 2}}}
	res := Allocate([]*lifetime.Interval{ab, cd}, FirstFitDuration)
	if res.Total != 6 {
		t.Errorf("total = %d, want 6 (periodic sharing)", res.Total)
	}
	if err := res.Verify(); err != nil {
		t.Error(err)
	}
}

func TestBestFitPrefersTightGap(t *testing.T) {
	// Busy ranges [0,3) and [5,6): placing size 2 best-fit should go at 3
	// (gap of exactly 2) rather than 6.
	if got := bestFit([]memRange{{0, 3}, {5, 6}}, 2); got != 3 {
		t.Errorf("bestFit = %d, want 3", got)
	}
	// No gap fits: append at end.
	if got := bestFit([]memRange{{0, 3}, {4, 6}}, 2); got != 6 {
		t.Errorf("bestFit = %d, want 6", got)
	}
	if got := firstFit([]memRange{{2, 4}}, 2); got != 0 {
		t.Errorf("firstFit = %d, want 0", got)
	}
}

func TestStrategyString(t *testing.T) {
	if FirstFitDuration.String() != "ffdur" || FirstFitStart.String() != "ffstart" ||
		BestFitDuration.String() != "bfdur" {
		t.Error("strategy names changed")
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy should still render")
	}
}

func TestAllocationNeverBelowMCW(t *testing.T) {
	// The allocation can never use less memory than the pessimistic clique
	// bound restricted to simultaneously-live solid intervals.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var ivs []*lifetime.Interval
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			ivs = append(ivs, solid(string(rune('a'+i)), 1+int64(rng.Intn(9)),
				int64(rng.Intn(20)), 1+int64(rng.Intn(10))))
		}
		mcw := lifetime.MCWOptimistic(ivs)
		for _, strat := range []Strategy{FirstFitDuration, FirstFitStart, BestFitDuration} {
			res := Allocate(ivs, strat)
			if err := res.Verify(); err != nil {
				t.Fatalf("trial %d %v: %v", trial, strat, err)
			}
			if res.Total < mcw {
				t.Fatalf("trial %d %v: total %d below clique weight %d", trial, strat, res.Total, mcw)
			}
		}
	}
}

// TestAllocateFeasibleQuick property: any random set of periodic intervals
// yields a Verify-clean allocation no larger than the sum of sizes.
func TestAllocateFeasibleQuick(t *testing.T) {
	f := func(seeds [6]uint16) bool {
		var ivs []*lifetime.Interval
		var sum int64
		for i, s := range seeds {
			size := 1 + int64(s%7)
			start := int64((s >> 3) % 16)
			dur := 1 + int64((s>>7)%5)
			iv := &lifetime.Interval{Name: string(rune('a' + i)), Size: size, Start: start, Dur: dur}
			if s%3 == 0 {
				iv.Periods = []lifetime.Period{{A: dur + int64(s%4), Count: 2 + int64(s%2)}}
			}
			if iv.Validate() != nil {
				continue
			}
			ivs = append(ivs, iv)
			sum += size
		}
		if len(ivs) == 0 {
			return true
		}
		for _, strat := range []Strategy{FirstFitDuration, FirstFitStart, BestFitDuration} {
			res := Allocate(ivs, strat)
			if res.Verify() != nil || res.Total > sum || res.Total <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestOffsetOf(t *testing.T) {
	a := solid("a", 3, 0, 5)
	res := Allocate([]*lifetime.Interval{a}, FirstFitStart)
	off, ok := res.OffsetOf(a)
	if !ok || off != 0 {
		t.Errorf("OffsetOf = %d,%v", off, ok)
	}
	if _, ok := res.OffsetOf(solid("x", 1, 0, 1)); ok {
		t.Error("OffsetOf found an interval that was never allocated")
	}
}
