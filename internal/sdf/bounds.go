package sdf

import "repro/internal/num"

// BMLBEdge returns the buffer memory lower bound for a single edge over all
// valid single appearance schedules under the non-shared buffer model [3]:
//
//	eta = prd*cns/gcd(prd,cns)
//	BMLB(e) = eta + d   if d < eta
//	          d         otherwise
//
// where d = del(e).
func BMLBEdge(e Edge) int64 {
	eta := e.Prod / num.GCD(e.Prod, e.Cons) * e.Cons
	bound := e.Delay
	if e.Delay < eta {
		bound = eta + e.Delay
	}
	return bound * wordsOf(e)
}

// wordsOf returns the per-token footprint, treating unset (zero) as one
// word so that hand-built Edge literals behave like AddEdge's default.
func wordsOf(e Edge) int64 {
	if e.Words < 1 {
		return 1
	}
	return e.Words
}

// BMLB returns the buffer memory lower bound of the whole graph: the sum of
// BMLBEdge over all edges. It is the "bmlb" column of Table 1.
func (g *Graph) BMLB() int64 {
	var total int64
	for _, e := range g.edges {
		total += BMLBEdge(e)
	}
	return total
}

// MinBufferEdge returns the minimum buffer size required on edge e over all
// valid schedules (not just single appearance schedules), per the closed form
// quoted in Sec. 11.1.3:
//
//	a + b - c + d mod c   if d < a + b - c
//	d                     otherwise
//
// with a = prd(e), b = cns(e), c = gcd(a, b), d = del(e).
func MinBufferEdge(e Edge) int64 {
	a, b, d := e.Prod, e.Cons, e.Delay
	c := num.GCD(a, b)
	bound := d
	if d < a+b-c {
		bound = a + b - c + d%c
	}
	return bound * wordsOf(e)
}

// MinBufferAllSchedules sums MinBufferEdge over all edges: a lower bound on
// non-shared buffering over every valid schedule, used in the dynamic
// scheduling comparison of Sec. 11.1.3.
func (g *Graph) MinBufferAllSchedules() int64 {
	var total int64
	for _, e := range g.edges {
		total += MinBufferEdge(e)
	}
	return total
}
