package sdf

import (
	"fmt"

	"repro/internal/num"
)

// overflowEdge wraps num.ErrOverflow with the edge whose bound overflowed.
func overflowEdge(what string, e Edge) error {
	return fmt.Errorf("sdf: %s of edge %d overflows: %w", what, e.ID, num.ErrOverflow)
}

// BMLBEdge returns the buffer memory lower bound for a single edge over all
// valid single appearance schedules under the non-shared buffer model [3]:
//
//	eta = prd*cns/gcd(prd,cns)
//	BMLB(e) = eta + d   if d < eta
//	          d         otherwise
//
// where d = del(e). The typed overflow error (wrapping num.ErrOverflow) is
// returned when the bound itself exceeds int64.
func BMLBEdge(e Edge) (int64, error) {
	eta, err := num.CheckedMul(e.Prod/num.GCD(e.Prod, e.Cons), e.Cons)
	if err != nil {
		return 0, overflowEdge("BMLB", e)
	}
	bound := e.Delay
	if e.Delay < eta {
		if bound, err = num.CheckedAdd(eta, e.Delay); err != nil {
			return 0, overflowEdge("BMLB", e)
		}
	}
	words, err := num.CheckedMul(bound, wordsOf(e))
	if err != nil {
		return 0, overflowEdge("BMLB", e)
	}
	return words, nil
}

// wordsOf returns the per-token footprint, treating unset (zero) as one
// word so that hand-built Edge literals behave like AddEdge's default.
func wordsOf(e Edge) int64 {
	if e.Words < 1 {
		return 1
	}
	return e.Words
}

// BMLB returns the buffer memory lower bound of the whole graph: the sum of
// BMLBEdge over all edges. It is the "bmlb" column of Table 1.
func (g *Graph) BMLB() (int64, error) {
	var total int64
	for _, e := range g.edges {
		b, err := BMLBEdge(e)
		if err != nil {
			return 0, err
		}
		if total, err = num.CheckedAdd(total, b); err != nil {
			return 0, fmt.Errorf("sdf: graph BMLB overflows: %w", num.ErrOverflow)
		}
	}
	return total, nil
}

// MinBufferEdge returns the minimum buffer size required on edge e over all
// valid schedules (not just single appearance schedules), per the closed form
// quoted in Sec. 11.1.3:
//
//	a + b - c + d mod c   if d < a + b - c
//	d                     otherwise
//
// with a = prd(e), b = cns(e), c = gcd(a, b), d = del(e).
func MinBufferEdge(e Edge) (int64, error) {
	a, b, d := e.Prod, e.Cons, e.Delay
	c := num.GCD(a, b)
	abc, err := num.CheckedAdd(a, b)
	if err != nil {
		return 0, overflowEdge("min buffer bound", e)
	}
	abc -= c // c <= min(a, b), so this cannot underflow
	bound := d
	if d < abc {
		if bound, err = num.CheckedAdd(abc, d%c); err != nil {
			return 0, overflowEdge("min buffer bound", e)
		}
	}
	words, err := num.CheckedMul(bound, wordsOf(e))
	if err != nil {
		return 0, overflowEdge("min buffer bound", e)
	}
	return words, nil
}

// MinBufferAllSchedules sums MinBufferEdge over all edges: a lower bound on
// non-shared buffering over every valid schedule, used in the dynamic
// scheduling comparison of Sec. 11.1.3.
func (g *Graph) MinBufferAllSchedules() (int64, error) {
	var total int64
	for _, e := range g.edges {
		b, err := MinBufferEdge(e)
		if err != nil {
			return 0, err
		}
		if total, err = num.CheckedAdd(total, b); err != nil {
			return 0, fmt.Errorf("sdf: min-buffer bound overflows: %w", num.ErrOverflow)
		}
	}
	return total, nil
}
