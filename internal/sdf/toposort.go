package sdf

import (
	"errors"
	"math/rand"

	"repro/internal/num"
)

// ErrCyclic reports that an operation requiring an acyclic graph was applied
// to a graph with a (delay-insufficient) cycle.
var ErrCyclic = errors.New("sdf: graph has a cycle")

// PrecedenceEdge reports whether e constrains firing order for single
// appearance scheduling: an edge whose initial tokens already cover one full
// period's consumption (del(e) >= TNSE(e)) imposes no precedence between the
// lexical positions of its endpoints (see Bhattacharyya et al. [3]).
func PrecedenceEdge(g *Graph, q Repetitions, e EdgeID) bool {
	ed := g.Edge(e)
	consumed, err := num.CheckedMul(ed.Cons, q[ed.Dst])
	if err != nil {
		// The true product exceeds MaxInt64 and therefore any delay, so the
		// delay cannot cover a full period's consumption.
		return true
	}
	return ed.Delay < consumed
}

// IsAcyclic reports whether the precedence graph (edges filtered by
// PrecedenceEdge) is acyclic.
func (g *Graph) IsAcyclic(q Repetitions) bool {
	_, err := g.TopologicalSort(q)
	return err == nil
}

// TopologicalSort returns a deterministic topological order of the actors
// with respect to precedence edges (Kahn's algorithm with smallest-ID tie
// breaking). It returns ErrCyclic if no such order exists.
func (g *Graph) TopologicalSort(q Repetitions) ([]ActorID, error) {
	return g.topoSort(q, nil)
}

// RandomTopologicalSort returns a random topological order drawn by Kahn's
// algorithm with uniformly random tie-breaking among ready actors. The
// distribution is not exactly uniform over all topological sorts but samples
// the space broadly, which is what the Sec. 10.1 random-search experiment
// requires.
func (g *Graph) RandomTopologicalSort(q Repetitions, rng *rand.Rand) ([]ActorID, error) {
	return g.topoSort(q, rng)
}

func (g *Graph) topoSort(q Repetitions, rng *rand.Rand) ([]ActorID, error) {
	n := len(g.actors)
	indeg := make([]int, n)
	for _, e := range g.edges {
		if PrecedenceEdge(g, q, e.ID) {
			indeg[e.Dst]++
		}
	}
	ready := make([]ActorID, 0, n)
	for a := 0; a < n; a++ {
		if indeg[a] == 0 {
			ready = append(ready, ActorID(a))
		}
	}
	order := make([]ActorID, 0, n)
	for len(ready) > 0 {
		var i int
		if rng != nil {
			i = rng.Intn(len(ready))
		} else {
			i = minIndex(ready)
		}
		a := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, a)
		for _, eid := range g.out[a] {
			e := g.edges[eid]
			if !PrecedenceEdge(g, q, eid) {
				continue
			}
			indeg[e.Dst]--
			if indeg[e.Dst] == 0 {
				ready = append(ready, e.Dst)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCyclic
	}
	return order, nil
}

func minIndex(ids []ActorID) int {
	mi := 0
	for i, v := range ids {
		if v < ids[mi] {
			mi = i
		}
	}
	return mi
}

// AllTopologicalSorts enumerates every topological sort of the precedence
// graph, up to the given limit (0 means no limit). It is exponential and
// intended only for exhaustive verification on tiny graphs.
func (g *Graph) AllTopologicalSorts(q Repetitions, limit int) [][]ActorID {
	n := len(g.actors)
	indeg := make([]int, n)
	for _, e := range g.edges {
		if PrecedenceEdge(g, q, e.ID) {
			indeg[e.Dst]++
		}
	}
	used := make([]bool, n)
	cur := make([]ActorID, 0, n)
	var all [][]ActorID
	var rec func()
	rec = func() {
		if limit > 0 && len(all) >= limit {
			return
		}
		if len(cur) == n {
			all = append(all, append([]ActorID(nil), cur...))
			return
		}
		for a := 0; a < n; a++ {
			if used[a] || indeg[a] != 0 {
				continue
			}
			used[a] = true
			cur = append(cur, ActorID(a))
			for _, eid := range g.out[a] {
				if PrecedenceEdge(g, q, eid) {
					indeg[g.edges[eid].Dst]--
				}
			}
			rec()
			for _, eid := range g.out[a] {
				if PrecedenceEdge(g, q, eid) {
					indeg[g.edges[eid].Dst]++
				}
			}
			cur = cur[:len(cur)-1]
			used[a] = false
		}
	}
	rec()
	return all
}

// IsChain reports whether the graph is chain-structured under the given
// topological order: every edge connects lexically adjacent actors. Chain
// graphs admit the precise shared-buffer DP of Sec. 6.
func (g *Graph) IsChain(order []ActorID) bool {
	pos := make([]int, len(g.actors))
	for i, a := range order {
		pos[a] = i
	}
	for _, e := range g.edges {
		if pos[e.Dst]-pos[e.Src] != 1 {
			return false
		}
	}
	return true
}
