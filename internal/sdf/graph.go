// Package sdf implements the synchronous dataflow (SDF) graph substrate used
// by the rest of the compiler framework: actors, edges with production and
// consumption rates and initial tokens (delays), repetitions-vector
// computation via the balance equations, consistency and deadlock checks, and
// assorted graph utilities (topological sorts, TNSE, buffer lower bounds).
//
// The model follows Lee & Messerschmitt's SDF semantics as used by Murthy &
// Bhattacharyya: each actor fires atomically, consuming cns(e) tokens from
// every input edge e and producing prd(e) tokens on every output edge, with
// all rates known at compile time.
package sdf

import (
	"fmt"
	"sort"
)

// ActorID identifies an actor within one Graph. IDs are dense indices
// assigned in insertion order, so they can be used directly as slice indices.
type ActorID int

// EdgeID identifies an edge within one Graph, dense in insertion order.
type EdgeID int

// Actor is a node of an SDF graph. The zero value is not useful; actors are
// created through Graph.AddActor.
type Actor struct {
	ID   ActorID
	Name string
}

// Edge is a directed SDF edge: a conceptual FIFO from Src to Dst. Prod tokens
// are appended per firing of Src, Cons tokens removed per firing of Dst, and
// Delay initial tokens are present before the first firing.
//
// Words is the memory footprint of one token in machine words (default 1):
// vector or matrix tokens occupy Words cells each, which scales every buffer
// sizing downstream — the paper notes sharing savings become "even more
// dramatic" for such edges.
type Edge struct {
	ID    EdgeID
	Src   ActorID
	Dst   ActorID
	Prod  int64 // tokens produced per firing of Src; > 0
	Cons  int64 // tokens consumed per firing of Dst; > 0
	Delay int64 // initial tokens; >= 0
	Words int64 // memory words per token; >= 1
}

// Graph is a mutable SDF graph. Build it with AddActor/AddEdge; most analyses
// require a consistent graph (see Repetitions).
type Graph struct {
	Name   string
	actors []Actor
	edges  []Edge
	out    [][]EdgeID // outgoing edge IDs per actor
	in     [][]EdgeID // incoming edge IDs per actor
	byName map[string]ActorID
}

// New returns an empty SDF graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name, byName: make(map[string]ActorID)}
}

// AddActor inserts a new actor and returns its ID. Names must be unique and
// non-empty; AddActor panics otherwise, since graph construction errors are
// programming errors in every caller in this repository.
func (g *Graph) AddActor(name string) ActorID {
	if name == "" {
		panic("sdf: empty actor name")
	}
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("sdf: duplicate actor name %q", name))
	}
	id := ActorID(len(g.actors))
	g.actors = append(g.actors, Actor{ID: id, Name: name})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byName[name] = id
	return id
}

// AddEdge inserts a directed edge and returns its ID. It panics on invalid
// rates or actor IDs, mirroring AddActor.
func (g *Graph) AddEdge(src, dst ActorID, prod, cons, delay int64) EdgeID {
	if int(src) >= len(g.actors) || int(dst) >= len(g.actors) || src < 0 || dst < 0 {
		panic("sdf: AddEdge with unknown actor")
	}
	if prod <= 0 || cons <= 0 || delay < 0 {
		panic(fmt.Sprintf("sdf: invalid edge parameters prod=%d cons=%d delay=%d", prod, cons, delay))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, Src: src, Dst: dst, Prod: prod, Cons: cons, Delay: delay, Words: 1})
	g.out[src] = append(g.out[src], id)
	g.in[dst] = append(g.in[dst], id)
	return id
}

// SetWords sets the per-token memory footprint of an edge (vector tokens).
// It panics on words < 1, mirroring AddEdge's contract.
func (g *Graph) SetWords(e EdgeID, words int64) {
	if words < 1 {
		panic(fmt.Sprintf("sdf: invalid token size %d words", words))
	}
	g.edges[e].Words = words
}

// NumActors reports the number of actors.
func (g *Graph) NumActors() int { return len(g.actors) }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Actor returns the actor with the given ID.
func (g *Graph) Actor(id ActorID) Actor { return g.actors[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Actors returns all actors in insertion order. The slice is shared; callers
// must not modify it.
func (g *Graph) Actors() []Actor { return g.actors }

// Edges returns all edges in insertion order. The slice is shared; callers
// must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the IDs of edges leaving a. The slice is shared.
func (g *Graph) Out(a ActorID) []EdgeID { return g.out[a] }

// In returns the IDs of edges entering a. The slice is shared.
func (g *Graph) In(a ActorID) []EdgeID { return g.in[a] }

// ActorByName returns the actor with the given name.
func (g *Graph) ActorByName(name string) (Actor, bool) {
	id, ok := g.byName[name]
	if !ok {
		return Actor{}, false
	}
	return g.actors[id], true
}

// MustActor returns the ID of the named actor, panicking if absent. It is a
// convenience for tests and benchmark-system constructors.
func (g *Graph) MustActor(name string) ActorID {
	id, ok := g.byName[name]
	if !ok {
		panic(fmt.Sprintf("sdf: no actor named %q", name))
	}
	return id
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	for _, a := range g.actors {
		c.AddActor(a.Name)
	}
	for _, e := range g.edges {
		id := c.AddEdge(e.Src, e.Dst, e.Prod, e.Cons, e.Delay)
		if e.Words > 1 {
			c.SetWords(id, e.Words)
		}
	}
	return c
}

// EdgesBetween returns the IDs of all edges from src to dst (there may be
// several parallel edges).
func (g *Graph) EdgesBetween(src, dst ActorID) []EdgeID {
	var ids []EdgeID
	for _, id := range g.out[src] {
		if g.edges[id].Dst == dst {
			ids = append(ids, id)
		}
	}
	return ids
}

// Successors returns the distinct successor actors of a, in ascending order.
func (g *Graph) Successors(a ActorID) []ActorID {
	return g.neighbors(g.out[a], func(e Edge) ActorID { return e.Dst })
}

// Predecessors returns the distinct predecessor actors of a, ascending.
func (g *Graph) Predecessors(a ActorID) []ActorID {
	return g.neighbors(g.in[a], func(e Edge) ActorID { return e.Src })
}

func (g *Graph) neighbors(ids []EdgeID, pick func(Edge) ActorID) []ActorID {
	seen := make(map[ActorID]bool, len(ids))
	var out []ActorID
	for _, id := range ids {
		n := pick(g.edges[id])
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders a compact description, useful in test failures.
func (g *Graph) String() string {
	s := fmt.Sprintf("graph %s: %d actors, %d edges", g.Name, len(g.actors), len(g.edges))
	return s
}
