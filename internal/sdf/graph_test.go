package sdf

import (
	"math/rand"
	"testing"

	"repro/internal/num"
)

// fig1 builds the Fig. 1 example: A --2,3,1D--> B --1,2--> C wait; the paper's
// figure 1 is A -2-> B (D) -1-> ... we use the schedule facts quoted in Sec. 4:
// q = (3A, 6B, 2C) with edges A-(2,1)->B and B-(1,3)->C.
func fig1(t *testing.T) (*Graph, Repetitions) {
	t.Helper()
	g := New("fig1")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 2, 1, 0)
	g.AddEdge(b, c, 1, 3, 0)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatalf("Repetitions: %v", err)
	}
	return g, q
}

func TestRepetitionsChain(t *testing.T) {
	g, q := fig1(t)
	want := []int64{3, 6, 2}
	for i, w := range want {
		if q[i] != w {
			t.Errorf("q(%s) = %d, want %d", g.Actor(ActorID(i)).Name, q[i], w)
		}
	}
}

func TestRepetitionsMultirate(t *testing.T) {
	// CD-DAT style chain with known repetitions (see DESIGN.md):
	// edges (1,1),(2,3),(8,7),(10,7) => q = 147,147,98,112,160.
	g := New("cddat")
	ids := make([]ActorID, 5)
	for i, n := range []string{"A", "B", "C", "D", "E"} {
		ids[i] = g.AddActor(n)
	}
	g.AddEdge(ids[0], ids[1], 1, 1, 0)
	g.AddEdge(ids[1], ids[2], 2, 3, 0)
	g.AddEdge(ids[2], ids[3], 8, 7, 0)
	g.AddEdge(ids[3], ids[4], 10, 7, 0)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatalf("Repetitions: %v", err)
	}
	want := []int64{147, 147, 98, 112, 160}
	for i, w := range want {
		if q[i] != w {
			t.Errorf("q[%d] = %d, want %d", i, q[i], w)
		}
	}
}

func TestRepetitionsInconsistent(t *testing.T) {
	// Diamond with mismatched rates: A->B->D and A->C->D where the two paths
	// force incompatible firing ratios for D.
	g := New("bad")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	d := g.AddActor("D")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(a, c, 1, 1, 0)
	g.AddEdge(b, d, 2, 1, 0)
	g.AddEdge(c, d, 3, 1, 0)
	if _, err := g.Repetitions(); err == nil {
		t.Fatal("expected inconsistency error, got nil")
	}
	if g.Consistent() {
		t.Error("Consistent() = true for inconsistent graph")
	}
}

func TestRepetitionsDisconnected(t *testing.T) {
	g := New("two")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C") // isolated
	g.AddEdge(a, b, 3, 5, 0)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatalf("Repetitions: %v", err)
	}
	if q[a] != 5 || q[b] != 3 || q[c] != 1 {
		t.Errorf("q = %v, want [5 3 1]", q)
	}
}

func TestRepetitionsNormalized(t *testing.T) {
	// Rates with a common factor must still give the minimal vector.
	g := New("norm")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 4, 6, 0)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatalf("Repetitions: %v", err)
	}
	if q[a] != 3 || q[b] != 2 {
		t.Errorf("q = %v, want [3 2]", q)
	}
}

func TestTNSE(t *testing.T) {
	g, q := fig1(t)
	tnse := func(e EdgeID) int64 {
		t.Helper()
		v, err := TNSE(g, q, e)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := tnse(0); got != 6 {
		t.Errorf("TNSE(AB) = %d, want 6", got)
	}
	if got := tnse(1); got != 6 {
		t.Errorf("TNSE(BC) = %d, want 6", got)
	}
}

func TestBalanceHoldsOnTNSE(t *testing.T) {
	g, q := fig1(t)
	for _, e := range g.Edges() {
		if e.Prod*q[e.Src] != e.Cons*q[e.Dst] {
			t.Errorf("balance violated on edge %d", e.ID)
		}
	}
}

func TestTopologicalSort(t *testing.T) {
	g, q := fig1(t)
	order, err := g.TopologicalSort(q)
	if err != nil {
		t.Fatalf("TopologicalSort: %v", err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v, want [0 1 2]", order)
	}
}

func TestTopologicalSortCycle(t *testing.T) {
	g := New("cyc")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, a, 1, 1, 0)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatalf("Repetitions: %v", err)
	}
	if _, err := g.TopologicalSort(q); err == nil {
		t.Fatal("expected ErrCyclic")
	}
	if g.IsAcyclic(q) {
		t.Error("IsAcyclic = true on cycle")
	}
}

func TestDelayBreaksPrecedence(t *testing.T) {
	// A cycle where the back edge carries a full period of delay is
	// schedulable: the back edge is not a precedence edge.
	g := New("feedback")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, a, 1, 1, 1)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatalf("Repetitions: %v", err)
	}
	order, err := g.TopologicalSort(q)
	if err != nil {
		t.Fatalf("TopologicalSort: %v", err)
	}
	if order[0] != a || order[1] != b {
		t.Errorf("order = %v, want [A B]", order)
	}
}

func TestRandomTopologicalSortValid(t *testing.T) {
	g := New("diamond")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	d := g.AddActor("D")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(a, c, 1, 1, 0)
	g.AddEdge(b, d, 1, 1, 0)
	g.AddEdge(c, d, 1, 1, 0)
	q, _ := g.Repetitions()
	rng := rand.New(rand.NewSource(7))
	seenBC, seenCB := false, false
	for i := 0; i < 50; i++ {
		order, err := g.RandomTopologicalSort(q, rng)
		if err != nil {
			t.Fatalf("RandomTopologicalSort: %v", err)
		}
		pos := make(map[ActorID]int)
		for i, x := range order {
			pos[x] = i
		}
		if pos[a] != 0 || pos[d] != 3 {
			t.Fatalf("invalid topological order %v", order)
		}
		if pos[b] < pos[c] {
			seenBC = true
		} else {
			seenCB = true
		}
	}
	if !seenBC || !seenCB {
		t.Error("random topsort never varied tie-break order in 50 draws")
	}
}

func TestAllTopologicalSorts(t *testing.T) {
	g := New("par")
	g.AddActor("A")
	g.AddActor("B")
	g.AddActor("C")
	q := Repetitions{1, 1, 1}
	all := g.AllTopologicalSorts(q, 0)
	if len(all) != 6 {
		t.Errorf("got %d topological sorts of 3 unconnected actors, want 6", len(all))
	}
	limited := g.AllTopologicalSorts(q, 4)
	if len(limited) != 4 {
		t.Errorf("limit ignored: got %d, want 4", len(limited))
	}
}

func TestIsChain(t *testing.T) {
	g, q := fig1(t)
	order, _ := g.TopologicalSort(q)
	if !g.IsChain(order) {
		t.Error("fig1 should be a chain")
	}
	g2 := New("tri")
	a := g2.AddActor("A")
	b := g2.AddActor("B")
	c := g2.AddActor("C")
	g2.AddEdge(a, b, 1, 1, 0)
	g2.AddEdge(a, c, 1, 1, 0)
	g2.AddEdge(b, c, 1, 1, 0)
	q2, _ := g2.Repetitions()
	o2, _ := g2.TopologicalSort(q2)
	if g2.IsChain(o2) {
		t.Error("triangle is not a chain")
	}
}

// mustBound returns a closure that unwraps (int64, error) bound results,
// failing the test on error; call as must(BMLBEdge(e)).
func mustBound(t *testing.T) func(int64, error) int64 {
	return func(v int64, err error) int64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
}

func TestBMLB(t *testing.T) {
	must := mustBound(t)
	// Edge (2,3), no delay: eta = 6, BMLB = 6.
	e := Edge{Prod: 2, Cons: 3}
	if got := must(BMLBEdge(e)); got != 6 {
		t.Errorf("BMLBEdge(2,3,0) = %d, want 6", got)
	}
	// With delay 2 < eta: 6+2 = 8.
	e.Delay = 2
	if got := must(BMLBEdge(e)); got != 8 {
		t.Errorf("BMLBEdge(2,3,2) = %d, want 8", got)
	}
	// Delay >= eta dominates.
	e.Delay = 9
	if got := must(BMLBEdge(e)); got != 9 {
		t.Errorf("BMLBEdge(2,3,9) = %d, want 9", got)
	}
}

func TestMinBufferEdge(t *testing.T) {
	must := mustBound(t)
	// a=2, b=3, c=1, d=0: min over all schedules = a+b-c = 4 (< BMLB 6).
	e := Edge{Prod: 2, Cons: 3}
	if got := must(MinBufferEdge(e)); got != 4 {
		t.Errorf("MinBufferEdge(2,3,0) = %d, want 4", got)
	}
	// Large delay dominates.
	e.Delay = 10
	if got := must(MinBufferEdge(e)); got != 10 {
		t.Errorf("MinBufferEdge(2,3,10) = %d, want 10", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	g, _ := fig1(t)
	c := g.Clone()
	c.AddActor("Z")
	if g.NumActors() != 3 {
		t.Error("Clone shares actor storage with original")
	}
	if c.NumActors() != 4 || c.NumEdges() != 2 {
		t.Errorf("clone has %d actors %d edges", c.NumActors(), c.NumEdges())
	}
}

func TestNeighbors(t *testing.T) {
	g, _ := fig1(t)
	b := g.MustActor("B")
	succ := g.Successors(b)
	pred := g.Predecessors(b)
	if len(succ) != 1 || g.Actor(succ[0]).Name != "C" {
		t.Errorf("Successors(B) = %v", succ)
	}
	if len(pred) != 1 || g.Actor(pred[0]).Name != "A" {
		t.Errorf("Predecessors(B) = %v", pred)
	}
}

func TestEdgesBetween(t *testing.T) {
	g := New("multi")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(a, b, 2, 2, 0)
	if got := g.EdgesBetween(a, b); len(got) != 2 {
		t.Errorf("EdgesBetween = %v, want 2 edges", got)
	}
	if got := g.EdgesBetween(b, a); len(got) != 0 {
		t.Errorf("EdgesBetween(b,a) = %v, want none", got)
	}
}

func TestAddActorPanics(t *testing.T) {
	g := New("p")
	g.AddActor("A")
	for _, bad := range []string{"", "A"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddActor(%q) did not panic", bad)
				}
			}()
			g.AddActor(bad)
		}()
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New("p")
	a := g.AddActor("A")
	b := g.AddActor("B")
	cases := []struct{ p, c, d int64 }{{0, 1, 0}, {1, 0, 0}, {1, 1, -1}}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%v) did not panic", tc)
				}
			}()
			g.AddEdge(a, b, tc.p, tc.c, tc.d)
		}()
	}
}

func TestGCDHelpers(t *testing.T) {
	if num.GCD(12, 18) != 6 || num.GCD(0, 5) != 5 || num.GCD(7, 0) != 7 {
		t.Error("gcd64 broken")
	}
	l, err := lcm64(4, 6)
	if err != nil || l != 12 {
		t.Errorf("lcm64(4,6) = %d, %v", l, err)
	}
	if _, err := mulCheck(1<<40, 1<<40); err == nil {
		t.Error("mulCheck missed overflow")
	}
}

func TestRepetitionsGCDOverActors(t *testing.T) {
	q := Repetitions{6, 9, 15}
	if got := q.GCD([]ActorID{0, 1, 2}); got != 3 {
		t.Errorf("GCD = %d, want 3", got)
	}
	if got := q.GCD(nil); got != 0 {
		t.Errorf("GCD(nil) = %d, want 0", got)
	}
	if q.TotalFirings() != 30 {
		t.Errorf("TotalFirings = %d", q.TotalFirings())
	}
}
