package sdf

// SCCs returns the strongly connected components of the precedence graph
// (edges whose delays do not already cover a full period's consumption), in
// reverse topological order of the condensation (Tarjan's algorithm). Each
// component lists its actors in ascending ID order after sorting.
//
// Actors joined only by delay-saturated edges land in separate components,
// matching the classic decomposition used to schedule general SDF graphs:
// the condensation is acyclic and each nontrivial component must be broken
// internally by its initial tokens.
func (g *Graph) SCCs(q Repetitions) [][]ActorID {
	n := len(g.actors)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []ActorID
	var out [][]ActorID
	next := 0

	// Iterative Tarjan to survive deep graphs without blowing the stack.
	type frame struct {
		v    ActorID
		ei   int // next out-edge index to visit
		kids []ActorID
	}
	succ := make([][]ActorID, n)
	for _, e := range g.edges {
		if e.Src != e.Dst && PrecedenceEdge(g, q, e.ID) {
			succ[e.Src] = append(succ[e.Src], e.Dst)
		}
	}
	var dfs func(root ActorID)
	dfs = func(root ActorID) {
		frames := []frame{{v: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(succ[f.v]) {
				w := succ[f.v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Finished v.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []ActorID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sortActorIDs(comp)
				out = append(out, comp)
			}
		}
	}
	for a := 0; a < n; a++ {
		if index[a] == -1 {
			dfs(ActorID(a))
		}
	}
	return out
}

func sortActorIDs(ids []ActorID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Subgraph extracts the induced subgraph on the given actors (all edges with
// both endpoints in the set, including self loops and delay edges). The
// returned mapping translates the subgraph's ActorIDs back to g's.
func (g *Graph) Subgraph(actors []ActorID) (*Graph, map[ActorID]ActorID) {
	sub := New(g.Name + "_sub")
	toSub := make(map[ActorID]ActorID, len(actors))
	back := make(map[ActorID]ActorID, len(actors))
	for _, a := range actors {
		id := sub.AddActor(g.Actor(a).Name)
		toSub[a] = id
		back[id] = a
	}
	for _, e := range g.edges {
		s, okS := toSub[e.Src]
		d, okD := toSub[e.Dst]
		if okS && okD {
			id := sub.AddEdge(s, d, e.Prod, e.Cons, e.Delay)
			if e.Words > 1 {
				sub.SetWords(id, e.Words)
			}
		}
	}
	return sub, back
}
