package sdf

import (
	"math/rand"
	"testing"
)

func TestSCCsChainIsAllSingletons(t *testing.T) {
	g := New("chain")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, c, 1, 1, 0)
	q, _ := g.Repetitions()
	comps := g.SCCs(q)
	if len(comps) != 3 {
		t.Fatalf("%d components, want 3", len(comps))
	}
	for _, comp := range comps {
		if len(comp) != 1 {
			t.Errorf("component %v not a singleton", comp)
		}
	}
}

func TestSCCsCycleDetected(t *testing.T) {
	// A -> B -> C -> A with partial delay on C->A so it stays a precedence
	// edge (q all 1 needs del < 1, i.e. 0: fully cyclic and deadlocked, but
	// SCC analysis does not care about liveness).
	g := New("cyc")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	d := g.AddActor("D")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, c, 1, 1, 0)
	g.AddEdge(c, a, 1, 1, 0)
	g.AddEdge(c, d, 1, 1, 0)
	q, _ := g.Repetitions()
	comps := g.SCCs(q)
	if len(comps) != 2 {
		t.Fatalf("components = %v, want {A,B,C} and {D}", comps)
	}
	var big []ActorID
	for _, comp := range comps {
		if len(comp) == 3 {
			big = comp
		}
	}
	if len(big) != 3 || big[0] != a || big[1] != b || big[2] != c {
		t.Errorf("big component = %v, want [A B C]", big)
	}
}

func TestSCCsDelaySaturatedEdgeSplits(t *testing.T) {
	// The back edge carries a full period of delay: precedence-wise acyclic,
	// so A and B are separate components.
	g := New("sat")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, a, 1, 1, 1)
	q, _ := g.Repetitions()
	if comps := g.SCCs(q); len(comps) != 2 {
		t.Errorf("components = %v, want two singletons", comps)
	}
	// With the delay below one period's consumption the loop is one SCC.
	g2 := New("sat2")
	a2 := g2.AddActor("A")
	b2 := g2.AddActor("B")
	g2.AddEdge(a2, b2, 2, 1, 0)
	g2.AddEdge(b2, a2, 1, 2, 1) // cons*q(dst) = 2*1 = 2 > 1
	q2, _ := g2.Repetitions()
	if comps := g2.SCCs(q2); len(comps) != 1 {
		t.Errorf("components = %v, want one {A,B}", comps)
	}
}

// TestSCCsReverseTopologicalOrder: Tarjan emits components in reverse
// topological order of the condensation.
func TestSCCsReverseTopologicalOrder(t *testing.T) {
	g := New("rt")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, c, 1, 1, 0)
	g.AddEdge(c, b, 1, 1, 0) // {B,C} cycle downstream of A
	q, _ := g.Repetitions()
	comps := g.SCCs(q)
	if len(comps) != 2 {
		t.Fatalf("comps = %v", comps)
	}
	if len(comps[0]) != 2 {
		t.Errorf("downstream SCC should be emitted first: %v", comps)
	}
	if comps[1][0] != a {
		t.Errorf("source emitted last: %v", comps)
	}
}

// TestSCCsPartitionProperty: components partition the actor set, and
// contracting them yields an acyclic condensation.
func TestSCCsPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(10)
		g := New("r")
		for i := 0; i < n; i++ {
			g.AddActor(string(rune('A' + i)))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.2 {
					g.AddEdge(ActorID(i), ActorID(j), 1, 1, 0)
				}
			}
		}
		q := make(Repetitions, n)
		for i := range q {
			q[i] = 1
		}
		comps := g.SCCs(q)
		seen := make(map[ActorID]int)
		for ci, comp := range comps {
			for _, a := range comp {
				if _, dup := seen[a]; dup {
					t.Fatalf("trial %d: actor %d in two components", trial, a)
				}
				seen[a] = ci
			}
		}
		if len(seen) != n {
			t.Fatalf("trial %d: components cover %d of %d actors", trial, len(seen), n)
		}
		// Condensation acyclic: every precedence edge goes from a LATER
		// component index to an EARLIER one (reverse topological emission)
		// or stays inside one component.
		for _, e := range g.Edges() {
			if !PrecedenceEdge(g, q, e.ID) {
				continue
			}
			if seen[e.Src] < seen[e.Dst] {
				t.Fatalf("trial %d: condensation edge %d->%d violates reverse topological order",
					trial, seen[e.Src], seen[e.Dst])
			}
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := New("sub")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 2, 3, 1)
	g.AddEdge(b, c, 1, 1, 0)
	g.AddEdge(a, a, 1, 1, 1)
	sub, back := g.Subgraph([]ActorID{a, b})
	if sub.NumActors() != 2 || sub.NumEdges() != 2 {
		t.Fatalf("subgraph %d actors %d edges, want 2/2", sub.NumActors(), sub.NumEdges())
	}
	e := sub.Edge(0)
	if e.Prod != 2 || e.Cons != 3 || e.Delay != 1 {
		t.Errorf("edge attributes lost: %+v", e)
	}
	if back[e.Src] != a || back[e.Dst] != b {
		t.Errorf("back mapping wrong")
	}
}

func TestGraphStringAndAccessors(t *testing.T) {
	g := New("acc")
	a := g.AddActor("A")
	b := g.AddActor("B")
	e := g.AddEdge(a, b, 1, 2, 3)
	if s := g.String(); s != "graph acc: 2 actors, 1 edges" {
		t.Errorf("String = %q", s)
	}
	if len(g.Actors()) != 2 || len(g.Edges()) != 1 {
		t.Error("accessor slices wrong")
	}
	if len(g.Out(a)) != 1 || len(g.In(b)) != 1 {
		t.Error("adjacency wrong")
	}
	if _, ok := g.ActorByName("Z"); ok {
		t.Error("phantom actor")
	}
	q := Repetitions{2, 1}
	if q.Q(a) != 2 {
		t.Error("Q accessor")
	}
	_ = e
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustActor on unknown name did not panic")
			}
		}()
		g.MustActor("Z")
	}()
}
