package sdf

import (
	"errors"
	"fmt"

	"repro/internal/num"
)

// ErrInconsistent reports that a graph has no valid repetitions vector, i.e.
// the balance equations admit only the zero solution (sample-rate
// inconsistency).
var ErrInconsistent = errors.New("sdf: graph is sample-rate inconsistent")

// ErrOverflow reports that an exact integer computation exceeded int64 range.
// It wraps num.ErrOverflow, so errors.Is(err, num.ErrOverflow) classifies
// every overflow in the pipeline regardless of which package detected it.
var ErrOverflow = fmt.Errorf("sdf: arithmetic overflow computing repetitions: %w", num.ErrOverflow)

// Repetitions is a repetitions vector q: the minimum positive number of
// firings of each actor in one schedule period, indexed by ActorID.
type Repetitions []int64

// Q returns q(a).
func (q Repetitions) Q(a ActorID) int64 { return q[a] }

// TotalFirings returns the total number of actor firings in one period.
func (q Repetitions) TotalFirings() int64 {
	var n int64
	for _, v := range q {
		n += v
	}
	return n
}

// GCD returns the greatest common divisor of q(a) over the given actors. It
// returns 0 if actors is empty.
func (q Repetitions) GCD(actors []ActorID) int64 {
	var g int64
	for _, a := range actors {
		g = num.GCD(g, q[a])
	}
	return g
}

func lcm64(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	g := num.GCD(a, b)
	return mulCheck(a/g, b)
}

// mulCheck multiplies exactly, mapping num's overflow sentinel onto the
// package-level ErrOverflow the callers of Repetitions test for.
func mulCheck(a, b int64) (int64, error) {
	r, err := num.CheckedMul(a, b)
	if err != nil {
		return 0, ErrOverflow
	}
	return r, nil
}

// Repetitions computes the repetitions vector of g by solving the balance
// equations prd(e)*q(src(e)) = cns(e)*q(snk(e)) exactly. Every connected
// component is normalized independently and the whole vector is reduced so
// that the component-wise gcd is 1 per component. An error is returned if the
// graph is inconsistent or the exact arithmetic overflows int64.
//
// Actors with no edges get q = 1.
func (g *Graph) Repetitions() (Repetitions, error) {
	n := len(g.actors)
	// Represent q(a) as qn[a]/qd[a] relative to the component root, then
	// scale by the lcm of denominators.
	qn := make([]int64, n)
	qd := make([]int64, n)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}

	// Undirected adjacency for component traversal.
	type arc struct {
		to   ActorID
		prod int64 // tokens per firing of 'from'
		cons int64 // tokens per firing of 'to'
	}
	adj := make([][]arc, n)
	for _, e := range g.edges {
		adj[e.Src] = append(adj[e.Src], arc{to: e.Dst, prod: e.Prod, cons: e.Cons})
		adj[e.Dst] = append(adj[e.Dst], arc{to: e.Src, prod: e.Cons, cons: e.Prod})
	}

	nc := 0
	for root := 0; root < n; root++ {
		if comp[root] >= 0 {
			continue
		}
		cid := nc
		nc++
		comp[root] = cid
		qn[root], qd[root] = 1, 1
		stack := []ActorID{ActorID(root)}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, a := range adj[u] {
				// Balance: q(u)*prod = q(to)*cons => q(to) = q(u)*prod/cons.
				tn, err := mulCheck(qn[u], a.prod)
				if err != nil {
					return nil, err
				}
				td, err := mulCheck(qd[u], a.cons)
				if err != nil {
					return nil, err
				}
				gg := num.GCD(tn, td)
				tn, td = tn/gg, td/gg
				if comp[a.to] < 0 {
					comp[a.to] = cid
					qn[a.to], qd[a.to] = tn, td
					stack = append(stack, a.to)
				} else if qn[a.to] != tn || qd[a.to] != td {
					return nil, fmt.Errorf("%w: actors %s and %s", ErrInconsistent,
						g.actors[u].Name, g.actors[a.to].Name)
				}
			}
		}
	}

	// Scale each component by lcm of denominators, then divide by gcd of
	// numerators.
	q := make(Repetitions, n)
	for cid := 0; cid < nc; cid++ {
		var l int64 = 1
		for a := 0; a < n; a++ {
			if comp[a] != cid {
				continue
			}
			var err error
			l, err = lcm64(l, qd[a])
			if err != nil {
				return nil, err
			}
		}
		var cg int64
		for a := 0; a < n; a++ {
			if comp[a] != cid {
				continue
			}
			v, err := mulCheck(qn[a], l/qd[a])
			if err != nil {
				return nil, err
			}
			q[a] = v
			cg = num.GCD(cg, v)
		}
		if cg > 1 {
			for a := 0; a < n; a++ {
				if comp[a] == cid {
					q[a] /= cg
				}
			}
		}
	}
	return q, nil
}

// TNSE returns the total number of samples exchanged on edge e in one
// schedule period: prd(e) * q(src(e)). On large multirate graphs the product
// can exceed int64 even though the repetitions vector itself fits; the typed
// overflow error (wrapping num.ErrOverflow) surfaces that instead of
// silently wrapping.
func TNSE(g *Graph, q Repetitions, e EdgeID) (int64, error) {
	ed := g.Edge(e)
	t, err := num.CheckedMul(ed.Prod, q[ed.Src])
	if err != nil {
		return 0, fmt.Errorf("sdf: TNSE of edge %d (%s->%s) overflows: %w",
			e, g.actors[ed.Src].Name, g.actors[ed.Dst].Name, num.ErrOverflow)
	}
	return t, nil
}

// Consistent reports whether the graph has a valid repetitions vector.
func (g *Graph) Consistent() bool {
	_, err := g.Repetitions()
	return err == nil
}
