package regularity_test

import (
	"fmt"

	"repro/internal/regularity"
)

// ExampleOptimalLooping compresses the paper's Sec. 12 MAC sequence.
func ExampleOptimalLooping() {
	seq := []string{"G", "G", "A", "G", "A", "G", "A"}
	term := regularity.OptimalLooping(seq, 1)
	fmt.Println(term, "size", term.Size(1))
	// Output: G(3GA) size 4
}

// ExampleFIR expands the Fig. 29 higher-order Chain specification.
func ExampleFIR() {
	g := regularity.FIR(4)
	fmt.Println(g.Name, g.NumActors(), "actors")
	// Output: fir4 9 actors
}

// ExampleClassLabel strips instance numbering.
func ExampleClassLabel() {
	fmt.Println(regularity.ClassLabel("G12"), regularity.ClassLabel("add_3"))
	// Output: G add
}
