// Package regularity implements the Sec. 12 future-work machinery of the
// paper: detecting regularity in fine-grained graphical specifications and
// exploiting it for compact looped code.
//
// Two pieces:
//
//   - OptimalLooping — the dynamic programming algorithm (the paper's
//     reference [2]) that organizes loops optimally over a given sequence of
//     actor appearances: representing different instantiations of the same
//     basic actor by one class label, it finds the minimum-code-size looped
//     representation, e.g. G G A G A G A -> G (3 (G A)).
//
//   - Chain — the higher-order function of Fig. 29: it instantiates a
//     parameterized block n times and connects the instances in series,
//     which is how scalable fine-grained structures such as the Fig. 28 FIR
//     filter are specified compactly.
package regularity

import (
	"fmt"
	"strings"

	"repro/internal/sdf"
)

// Term is a node of a looped label sequence: either a single label
// (Body == nil) or a loop of Count over Body. Count >= 1.
type Term struct {
	Count int
	Label string
	Body  []*Term
}

// Size is the code-size metric: one unit per label appearance plus
// loopOverhead units for every loop with Count > 1 (matching the inline
// code-generation model where a loop costs its control instructions once).
func (t *Term) Size(loopOverhead int) int {
	s := 0
	if t.Body == nil {
		s = 1
	} else {
		for _, b := range t.Body {
			s += b.Size(loopOverhead)
		}
	}
	if t.Count > 1 {
		s += loopOverhead
	}
	return s
}

// Expand returns the flat label sequence the term denotes.
func (t *Term) Expand() []string {
	var out []string
	var one []string
	if t.Body == nil {
		one = []string{t.Label}
	} else {
		for _, b := range t.Body {
			one = append(one, b.Expand()...)
		}
	}
	for i := 0; i < t.Count; i++ {
		out = append(out, one...)
	}
	return out
}

// String renders the term in the paper's schedule notation.
func (t *Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t *Term) write(b *strings.Builder) {
	if t.Body == nil {
		if t.Count > 1 {
			fmt.Fprintf(b, "(%d%s)", t.Count, t.Label)
			return
		}
		b.WriteString(t.Label)
		return
	}
	if t.Count > 1 {
		fmt.Fprintf(b, "(%d", t.Count)
	}
	for _, x := range t.Body {
		x.write(b)
	}
	if t.Count > 1 {
		b.WriteString(")")
	}
}

// seqTerm wraps a body list as a count-1 term, flattening nested singletons.
func seqTerm(body []*Term) *Term {
	if len(body) == 1 {
		return body[0]
	}
	return &Term{Count: 1, Body: body}
}

// OptimalLooping finds a minimum-code-size looped representation of the
// label sequence using O(n^3) dynamic programming: a window is either split
// into two optimal halves or, when it is k >= 2 exact repetitions of its
// leading period, wrapped in a loop around the optimal representation of
// that period.
func OptimalLooping(seq []string, loopOverhead int) *Term {
	n := len(seq)
	if n == 0 {
		return &Term{Count: 1, Body: []*Term{}}
	}
	type cell struct {
		size int
		term *Term
	}
	dp := make([][]cell, n)
	for i := range dp {
		dp[i] = make([]cell, n)
		dp[i][i] = cell{size: 1, term: &Term{Count: 1, Label: seq[i]}}
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span-1 < n; i++ {
			j := i + span - 1
			best := cell{size: -1}
			// Binary splits.
			for k := i; k < j; k++ {
				s := dp[i][k].size + dp[k+1][j].size
				if best.size < 0 || s < best.size {
					left, right := dp[i][k].term, dp[k+1][j].term
					var body []*Term
					body = append(body, flatten(left)...)
					body = append(body, flatten(right)...)
					best = cell{size: s, term: seqTerm(body)}
				}
			}
			// Periodic wrap: seq[i..j] = count repetitions of period p.
			for p := 1; p <= span/2; p++ {
				if span%p != 0 {
					continue
				}
				if !isPeriodic(seq, i, j, p) {
					continue
				}
				inner := dp[i][i+p-1]
				s := inner.size + loopOverhead
				if s < best.size {
					t := &Term{Count: span / p, Body: flatten(inner.term)}
					if len(t.Body) == 1 && t.Body[0].Body == nil && t.Body[0].Count == 1 {
						t = &Term{Count: span / p, Label: t.Body[0].Label}
					}
					best = cell{size: s, term: t}
				}
			}
			dp[i][j] = best
		}
	}
	return dp[0][n-1].term
}

// flatten splices a count-1 sequence term into its parent's body.
func flatten(t *Term) []*Term {
	if t.Count == 1 && t.Body != nil {
		return t.Body
	}
	return []*Term{t}
}

// isPeriodic reports whether seq[i..j] repeats with period p.
func isPeriodic(seq []string, i, j, p int) bool {
	for k := i + p; k <= j; k++ {
		if seq[k] != seq[k-p] {
			return false
		}
	}
	return true
}

// ClassLabel maps an instance name such as "G12" or "add_3" to its actor
// class by stripping a trailing run of digits (and a separating underscore).
func ClassLabel(name string) string {
	end := len(name)
	for end > 0 && name[end-1] >= '0' && name[end-1] <= '9' {
		end--
	}
	if end > 1 && name[end-1] == '_' {
		end--
	}
	if end == 0 {
		return name
	}
	return name[:end]
}

// CollapseLabels maps a sequence of instance names to class labels.
func CollapseLabels(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = ClassLabel(n)
	}
	return out
}

// BlockBuilder instantiates one block of a higher-order Chain: it adds the
// block's actors to the graph and returns the block's chain-input and
// chain-output actors.
type BlockBuilder func(g *sdf.Graph, index int) (in, out sdf.ActorID)

// Chain is the higher-order function of Fig. 29: it instantiates n blocks
// and connects out(i) -> in(i+1) with unit rates, returning the chain's
// overall input and output actors.
func Chain(g *sdf.Graph, n int, build BlockBuilder) (in, out sdf.ActorID) {
	if n < 1 {
		panic("regularity: Chain needs n >= 1")
	}
	first, prev := sdf.ActorID(-1), sdf.ActorID(-1)
	for i := 0; i < n; i++ {
		bi, bo := build(g, i)
		if i == 0 {
			first = bi
		} else {
			g.AddEdge(prev, bi, 1, 1, 0)
		}
		prev = bo
	}
	return first, prev
}

// FIR builds the Fig. 28 fine-grained FIR filter of the given length using
// Chain over MAC blocks (a gain feeding an adder), plus a broadcast source
// for the tapped input signal and a sink: x -> [G_i -> A_i] chain -> y.
func FIR(taps int) *sdf.Graph {
	g := sdf.New(fmt.Sprintf("fir%d", taps))
	x := g.AddActor("x")
	_, out := Chain(g, taps, func(g *sdf.Graph, i int) (sdf.ActorID, sdf.ActorID) {
		gain := g.AddActor(fmt.Sprintf("G%d", i))
		g.AddEdge(x, gain, 1, 1, 0)
		if i == 0 {
			// First block has no partial sum input; the gain is both ends.
			return gain, gain
		}
		add := g.AddActor(fmt.Sprintf("A%d", i-1))
		g.AddEdge(gain, add, 1, 1, 0)
		return add, add
	})
	y := g.AddActor("y")
	g.AddEdge(out, y, 1, 1, 0)
	return g
}
