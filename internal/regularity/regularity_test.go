package regularity

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sdf"
)

func TestOptimalLoopingPaperExample(t *testing.T) {
	// Sec. 12: schedule G0 G1 A0 G2 A1 ... Gn An-1 collapses to G n(G A).
	seq := []string{"G", "G", "A", "G", "A", "G", "A"}
	term := OptimalLooping(seq, 1)
	got := term.String()
	if got != "G(3GA)" {
		t.Errorf("looped form = %q, want G(3GA)", got)
	}
	if term.Size(1) != 4 { // G + loop overhead + G + A
		t.Errorf("size = %d, want 4", term.Size(1))
	}
}

func TestOptimalLoopingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alphabet := []string{"a", "b", "c"}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(14)
		seq := make([]string, n)
		for i := range seq {
			seq[i] = alphabet[rng.Intn(len(alphabet))]
		}
		term := OptimalLooping(seq, 1)
		back := term.Expand()
		if len(back) != len(seq) {
			t.Fatalf("trial %d: expanded %d labels, want %d (%v -> %s)",
				trial, len(back), len(seq), seq, term)
		}
		for i := range seq {
			if back[i] != seq[i] {
				t.Fatalf("trial %d: expansion mismatch at %d: %v -> %s", trial, i, seq, term)
			}
		}
		// Optimality sanity: never larger than the flat sequence.
		if term.Size(1) > n {
			t.Fatalf("trial %d: size %d exceeds flat %d", trial, term.Size(1), n)
		}
	}
}

func TestOptimalLoopingPureRepetition(t *testing.T) {
	seq := []string{"a", "a", "a", "a", "a", "a"}
	term := OptimalLooping(seq, 1)
	if term.String() != "(6a)" {
		t.Errorf("got %q, want (6a)", term)
	}
	if term.Size(1) != 2 {
		t.Errorf("size = %d, want 2", term.Size(1))
	}
}

func TestOptimalLoopingNestedRepetition(t *testing.T) {
	// (ab ab ab) x3? Sequence abababab c abababab c -> (2((4(ab))c)).
	base := []string{"a", "b", "a", "b", "a", "b", "a", "b", "c"}
	var seq []string
	seq = append(seq, base...)
	seq = append(seq, base...)
	term := OptimalLooping(seq, 1)
	want := len(seq)
	if got := len(term.Expand()); got != want {
		t.Fatalf("expansion length %d, want %d", got, want)
	}
	// Optimal size: loop2 { loop4 {a b} c } = 2 + (2 + 2) + 1... a,b,c = 3
	// labels + 2 loops * overhead 1 = 5.
	if term.Size(1) != 5 {
		t.Errorf("size = %d (%s), want 5", term.Size(1), term)
	}
}

func TestOptimalLoopingHighOverheadPrefersFlat(t *testing.T) {
	// With a huge loop overhead, looping aa is not worth it.
	seq := []string{"a", "a"}
	term := OptimalLooping(seq, 10)
	if term.String() != "aa" {
		t.Errorf("got %q, want flat aa", term)
	}
}

func TestOptimalLoopingEmpty(t *testing.T) {
	term := OptimalLooping(nil, 1)
	if len(term.Expand()) != 0 {
		t.Error("empty sequence should expand to nothing")
	}
}

func TestClassLabel(t *testing.T) {
	cases := map[string]string{
		"G12":   "G",
		"A0":    "A",
		"add_3": "add",
		"x":     "x",
		"42":    "42", // pure digits keep their name
		"t_in":  "t_in",
	}
	for in, want := range cases {
		if got := ClassLabel(in); got != want {
			t.Errorf("ClassLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFIRStructure(t *testing.T) {
	g := FIR(4)
	// Actors: x, G0..G3, A0..A2, y = 1 + 4 + 3 + 1 = 9.
	if got := g.NumActors(); got != 9 {
		t.Errorf("FIR(4) has %d actors, want 9", got)
	}
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range q {
		if v != 1 {
			t.Errorf("q[%d] = %d, want 1 (homogeneous FIR)", i, v)
		}
	}
	if _, err := g.TopologicalSort(q); err != nil {
		t.Fatal(err)
	}
}

func TestFIRScheduleCompactsToMACLoop(t *testing.T) {
	// Schedule the fine-grained FIR in its natural order, collapse instance
	// labels, and verify that optimal looping recovers the compact
	// x G (n-1)(G A) y structure of Sec. 12.
	g := FIR(6)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopologicalSort(q)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.FlatSAS(g, q, order)
	var names []string
	s.ForEachFiring(func(a sdf.ActorID) bool {
		names = append(names, g.Actor(a).Name)
		return true
	})
	labels := CollapseLabels(names)
	term := OptimalLooping(labels, 1)
	if !strings.Contains(term.String(), "(5GA)") && !strings.Contains(term.String(), "(5AG)") {
		t.Errorf("looped FIR schedule %q does not contain the MAC loop", term)
	}
	// Code size must be far below the flat 14-appearance schedule.
	if term.Size(1) >= len(labels) {
		t.Errorf("no compression: size %d vs flat %d", term.Size(1), len(labels))
	}
}

func TestChainPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Chain(0) did not panic")
		}
	}()
	FIR(0)
}

func TestCompiledFIRMemory(t *testing.T) {
	// The homogeneous FIR also benefits from shared allocation.
	g := FIR(8)
	res, err := core.Compile(g, core.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SharedTotal >= res.Metrics.NonSharedBufMem {
		t.Errorf("FIR: shared %d >= non-shared %d",
			res.Metrics.SharedTotal, res.Metrics.NonSharedBufMem)
	}
}
