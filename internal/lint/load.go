package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks every package of one Go module without
// shelling out to the go command: module-internal import paths map directly
// onto directories under the module root, and everything else resolves
// through the standard library's source importer. The result is a
// deterministic, hermetic load — exactly what a lint pass that polices
// determinism should be built on.
type Loader struct {
	Fset *token.FileSet

	root    string
	modpath string
	std     types.ImporterFrom
	pkgs    map[string]*Package // memoized by import path
	loading map[string]bool     // import cycle detection
}

// NewLoader prepares a loader for the module rooted at root (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	modpath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:    fset,
		root:    root,
		modpath: modpath,
		std:     std,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// ModulePath returns the module's import path prefix.
func (l *Loader) ModulePath() string { return l.modpath }

// IsLocal reports whether p belongs to the loaded module.
func (l *Loader) IsLocal(p *types.Package) bool {
	return p != nil && (p.Path() == l.modpath || strings.HasPrefix(p.Path(), l.modpath+"/"))
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll walks the module and loads every package that contains non-test Go
// files, in deterministic (sorted path) order. Test files are not linted:
// the invariants the analyzers protect are production-code contracts.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if fs, err := sourceFiles(path); err == nil && len(fs) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		path := l.modpath
		if rel != "." {
			path = l.modpath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// sourceFiles lists the non-test .go files of a directory, sorted.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// load parses and type-checks one module-internal package by import path.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modpath), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter resolves imports during type checking: module paths load
// recursively from source, everything else goes to the stdlib source
// importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// RunAll applies every in-scope analyzer to every package and returns the
// combined diagnostics: per-package analyzers in package-then-position order,
// followed by module-scoped analyzers in registration order. Malformed ignore
// directives are reported once per package. The module (callgraph included)
// is built at most once, and only when a module-scoped analyzer is present.
func RunAll(analyzers []*Analyzer, l *Loader, pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, CheckIgnoreDirectives(l.Fset, pkg.Files)...)
		for _, a := range analyzers {
			if a.Run == nil || !a.AppliesTo(pkg.Path) {
				continue
			}
			out = append(out, Run(a, l.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Path, l.IsLocal)...)
		}
	}
	out = append(out, RunModuleAnalyzers(analyzers, l, pkgs)...)
	return out
}

// RunModuleAnalyzers runs only the module-scoped analyzers of the list over
// the given packages (no per-package directive checks — callers pair it with
// RunAll when they split per-package and module scopes). The module and its
// callgraph are built once, lazily.
func RunModuleAnalyzers(analyzers []*Analyzer, l *Loader, pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	var mod *Module
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if mod == nil {
			mod = NewModule(l.Fset, pkgs, l.IsLocal)
		}
		out = append(out, RunModule(a, mod)...)
	}
	return out
}
