package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive checks that every switch over a module-defined enum type — a
// named integer or string type with package-level constants, such as
// core.OrderStrategy, core.LoopAlg, or alloc.Strategy — either covers every
// declared constant or carries a default clause that panics. The fuzzer's
// configuration grid and the compiler's strategy dispatch rely on these
// switches: a silently ignored new enum constant would make a whole slice of
// the (ordering x looping x allocator) grid fall through to arbitrary
// behavior instead of failing loudly.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over strategy enums must cover every constant or panic by default",
	Run:  runExhaustive,
}

func runExhaustive(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tagType := pass.TypeOf(sw.Tag)
	named, ok := tagType.(*types.Named)
	if !ok {
		return
	}
	if pass.IsLocal != nil && !pass.IsLocal(named.Obj().Pkg()) {
		return
	}
	switch b := named.Underlying().(type) {
	case *types.Basic:
		if b.Info()&(types.IsInteger|types.IsString) == 0 {
			return
		}
	default:
		return
	}
	consts := enumConstants(named)
	if len(consts) < 2 {
		return // not an enum, just a named type
	}

	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, c := range consts {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	if defaultClause != nil && panics(defaultClause.Body) {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(), "switch over %s is not exhaustive: missing %s (cover every constant or panic in default)",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// enumConstants returns the package-level constants declared with exactly
// the named type, in declaration-scope order (sorted by name for
// determinism).
func enumConstants(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	var out []*types.Const
	for _, name := range scope.Names() { // Names() is sorted
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	return out
}

// panics reports whether the statement list contains a call to the panic
// builtin (directly or nested in its statements, excluding function
// literals).
func panics(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					found = true
				}
			}
			return !found
		})
	}
	return found
}
