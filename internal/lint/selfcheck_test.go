package lint

import (
	"path/filepath"
	"testing"
)

// TestRepositoryIsLintClean runs every analyzer over the whole module and
// requires zero findings: the invariants sdflint enforces must hold for the
// tree that ships it. A failure here means either a regression slipped in or
// an analyzer got stricter without the accompanying sweep.
func TestRepositoryIsLintClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages from the module root")
	}
	for _, d := range RunAll(Analyzers(), loader, pkgs) {
		t.Errorf("%s", d.String())
	}
}
