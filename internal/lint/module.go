package lint

// Module-wide analysis: a conservative static callgraph over every package of
// the loaded module, plus the reachability and call-path machinery the
// interprocedural analyzers (artifactmut, lockcheck) are built on.
//
// The callgraph is deliberately simple — and simple in the conservative
// direction. An edge F -> G is recorded whenever the body of F *mentions* G:
// a direct call, a method call resolved through types.Selections, or a bare
// reference that passes G around as a value (par.ForEach(n, G) assumes G is
// called). Function literals have no identity of their own; everything inside
// a literal is attributed to the enclosing declared function, so a goroutine
// or closure spawned by F contributes F's edges. The graph therefore
// over-approximates "may call" for everything except dynamic dispatch through
// interfaces, which no stdlib-only analysis can resolve; analyzers that need
// soundness there pin the concrete implementations by name.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Module is every package of one load, indexed for interprocedural analysis.
type Module struct {
	Fset     *token.FileSet
	Packages []*Package
	IsLocal  func(p *types.Package) bool

	// decls maps every module-level declared function (and method) to its
	// body and owning package.
	decls map[*types.Func]*FuncDecl
	// calls is the conservative callgraph: every module function mentioned
	// by the body of the key, with the position of the first mention.
	calls map[*types.Func][]CallEdge
}

// FuncDecl ties a declared function to its syntax and package.
type FuncDecl struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// CallEdge is one callgraph edge: Callee is mentioned at Pos inside the
// calling function's body.
type CallEdge struct {
	Callee *types.Func
	Pos    token.Pos
}

// NewModule indexes the loaded packages and builds the callgraph.
func NewModule(fset *token.FileSet, pkgs []*Package, isLocal func(p *types.Package) bool) *Module {
	m := &Module{
		Fset:     fset,
		Packages: pkgs,
		IsLocal:  isLocal,
		decls:    make(map[*types.Func]*FuncDecl),
		calls:    make(map[*types.Func][]CallEdge),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				m.decls[fn] = &FuncDecl{Decl: fd, Pkg: pkg}
			}
		}
	}
	for fn, fd := range m.decls {
		m.calls[fn] = m.collectEdges(fd)
	}
	return m
}

// collectEdges walks one function body (nested literals included) and records
// every mention of a module-local declared function.
func (m *Module) collectEdges(fd *FuncDecl) []CallEdge {
	seen := make(map[*types.Func]bool)
	var edges []CallEdge
	add := func(fn *types.Func, pos token.Pos) {
		if fn == nil || seen[fn] {
			return
		}
		if _, ok := m.decls[fn]; !ok {
			return // stdlib or interface method without a module body
		}
		seen[fn] = true
		edges = append(edges, CallEdge{Callee: fn, Pos: pos})
	}
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if fn, ok := fd.Pkg.Info.Uses[n].(*types.Func); ok {
				add(fn, n.Pos())
			}
		case *ast.SelectorExpr:
			if sel, ok := fd.Pkg.Info.Selections[n]; ok {
				if fn, ok := sel.Obj().(*types.Func); ok {
					add(fn, n.Sel.Pos())
				}
			}
		}
		return true
	})
	sort.Slice(edges, func(i, j int) bool { return edges[i].Pos < edges[j].Pos })
	return edges
}

// Decl returns the syntax of a module-declared function, or nil.
func (m *Module) Decl(fn *types.Func) *FuncDecl { return m.decls[fn] }

// Functions returns every module-declared function in deterministic order
// (by source position).
func (m *Module) Functions() []*types.Func {
	out := make([]*types.Func, 0, len(m.decls))
	for fn := range m.decls {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// Edges returns the callgraph edges of fn in source order.
func (m *Module) Edges(fn *types.Func) []CallEdge { return m.calls[fn] }

// LookupFunc finds a declared function by package-path suffix, receiver type
// name ("" for plain functions), and name. It is how analyzers pin their
// roots without depending on the module's import-path prefix.
func (m *Module) LookupFunc(pkgSuffix, recv, name string) *types.Func {
	for fn := range m.decls {
		if fn.Name() != name || !pathHasSuffix(fn.Pkg().Path(), pkgSuffix) {
			continue
		}
		if recvTypeName(fn) == recv {
			return fn
		}
	}
	return nil
}

// recvTypeName returns the name of the receiver's base type, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// pathHasSuffix reports whether an import path ends with the given
// slash-delimited suffix (or equals it).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// Reachability is the result of a BFS over the callgraph from a root set:
// for each reachable function, the edge through which it was first reached.
type Reachability struct {
	module *Module
	from   map[*types.Func]*types.Func // callee -> caller on first reach path
	roots  map[*types.Func]bool
}

// Reachable runs a breadth-first search from roots and returns the set of
// functions the roots may (transitively) call. Root order determines which
// path is reported when several reach the same function.
func (m *Module) Reachable(roots []*types.Func) *Reachability {
	r := &Reachability{
		module: m,
		from:   make(map[*types.Func]*types.Func),
		roots:  make(map[*types.Func]bool),
	}
	var queue []*types.Func
	for _, root := range roots {
		if root == nil || r.roots[root] {
			continue
		}
		r.roots[root] = true
		r.from[root] = nil
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range m.calls[fn] {
			if _, seen := r.from[e.Callee]; seen {
				continue
			}
			r.from[e.Callee] = fn
			queue = append(queue, e.Callee)
		}
	}
	return r
}

// Contains reports whether fn is reachable from the root set.
func (r *Reachability) Contains(fn *types.Func) bool {
	_, ok := r.from[fn]
	return ok
}

// Path renders the call chain from the root that first reached fn, e.g.
// "(*Plan).Run -> runNode -> decodeLife". Returns "" if fn is unreachable.
func (r *Reachability) Path(fn *types.Func) string {
	if !r.Contains(fn) {
		return ""
	}
	var names []string
	for f := fn; f != nil; f = r.from[f] {
		names = append(names, FuncDisplayName(f))
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// FuncDisplayName renders a function the way diagnostics name it:
// pkg.Func for plain functions, pkg.(*Recv).Method for methods.
func FuncDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			if n, ok := p.Elem().(*types.Named); ok {
				return fmt.Sprintf("%s(*%s).%s", pkg, n.Obj().Name(), fn.Name())
			}
		}
		if n, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s%s.%s", pkg, n.Obj().Name(), fn.Name())
		}
	}
	return pkg + fn.Name()
}

// ModulePass carries the whole module through one module-scoped analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Module.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ScopePackages returns the packages the analyzer's Packages list selects
// (every package when the list is empty), in load order.
func (p *ModulePass) ScopePackages() []*Package {
	var out []*Package
	for _, pkg := range p.Module.Packages {
		if p.Analyzer.AppliesTo(pkg.Path) {
			out = append(out, pkg)
		}
	}
	return out
}

// RunModule applies one module-scoped analyzer and returns its surviving
// diagnostics, with //lint:ignore directives from every module file honored,
// sorted and deduplicated exactly like per-package Run.
func RunModule(a *Analyzer, m *Module) []Diagnostic {
	var diags []Diagnostic
	pass := &ModulePass{Analyzer: a, Module: m, diags: &diags}
	a.RunModule(pass)
	var files []*ast.File
	for _, pkg := range m.Packages {
		files = append(files, pkg.Files...)
	}
	diags = applyIgnores(a.Name, m.Fset, files, diags)
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i].Pos, diags[j].Pos
		if di.Filename != dj.Filename {
			return di.Filename < dj.Filename
		}
		if di.Line != dj.Line {
			return di.Line < dj.Line
		}
		return di.Column < dj.Column
	})
	return dedupe(diags)
}
