// Package lint is a small, dependency-free static-analysis framework that
// enforces this repository's determinism and safety invariants at the source
// level. It is deliberately stdlib-only — go/parser, go/ast, and go/types
// with a source importer; no golang.org/x/tools — so the lint gate needs
// nothing beyond the toolchain the build already requires.
//
// The framework mirrors the shape of x/tools/go/analysis at a fraction of
// the surface: an Analyzer owns a name, a doc string, an optional package
// scope, and a Run function that inspects one type-checked package and
// reports position-tagged diagnostics. cmd/sdflint drives every registered
// analyzer over every package of the module; the fixture harness in
// harness_test.go drives single analyzers over annotated testdata packages.
//
// Diagnostics are suppressed with a staticcheck-style comment on the flagged
// line or the line directly above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; an ignore comment without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore comments.
	Name string
	// Doc is a one-line description of the invariant the analyzer protects.
	Doc string
	// Packages optionally restricts the analyzer to import paths with one of
	// these suffixes (e.g. "internal/sdf"). Empty means every package. The
	// fixture harness bypasses the restriction. For module-scoped analyzers
	// the list selects which packages' syntax is inspected; the callgraph
	// always spans the whole module.
	Packages []string
	// Run inspects one package and reports findings via pass.Reportf.
	// Exactly one of Run and RunModule is set.
	Run func(pass *Pass)
	// RunModule inspects the whole module at once, with the callgraph and
	// interprocedural summaries of ModulePass at its disposal.
	RunModule func(pass *ModulePass)
}

// AppliesTo reports whether the analyzer is in scope for the import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) {
			return true
		}
	}
	return false
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	PkgPath  string
	// IsLocal reports whether a types.Package is part of the code under
	// analysis (the module, or the fixture package itself) as opposed to a
	// stdlib dependency. Analyzers use it to avoid imposing repository
	// conventions on standard-library types.
	IsLocal func(p *types.Package) bool

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic the way sdflint prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	line     int    // line the comment ends on
	analyzer string // analyzer name, or "*"
	reason   string // everything after the analyzer name
	valid    bool   // has both an analyzer and a reason
	pos      token.Pos
}

// parseIgnores extracts every //lint:ignore directive, keyed by filename.
func parseIgnores(fset *token.FileSet, files []*ast.File) map[string][]ignoreDirective {
	byFile := make(map[string][]ignoreDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				end := fset.Position(c.End())
				d := ignoreDirective{line: end.Line, pos: c.Pos()}
				if len(fields) >= 1 {
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				d.valid = d.analyzer != "" && len(fields) >= 2
				byFile[end.Filename] = append(byFile[end.Filename], d)
			}
		}
	}
	return byFile
}

// CheckIgnoreDirectives reports malformed //lint:ignore comments (missing
// analyzer name or reason). It runs once per package, independent of which
// analyzers are in scope.
func CheckIgnoreDirectives(fset *token.FileSet, files []*ast.File) []Diagnostic {
	byFile := parseIgnores(fset, files)
	names := make([]string, 0, len(byFile))
	for name := range byFile {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Diagnostic
	for _, name := range names {
		for _, d := range byFile[name] {
			if !d.valid {
				out = append(out, Diagnostic{
					Pos:      fset.Position(d.pos),
					Analyzer: "lint",
					Message:  "malformed ignore directive: want //lint:ignore <analyzer> <reason>",
				})
			}
		}
	}
	return out
}

// IgnoreInfo is one //lint:ignore directive, resolved for the suppression
// audit (sdflint -ignores).
type IgnoreInfo struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	// Known reports whether the directive targets a registered analyzer
	// (or the "*" / "lint" wildcards). A stale suppression — one naming an
	// analyzer that no longer exists — fails the audit.
	Known bool
}

// ListIgnores collects every //lint:ignore directive across the packages, in
// file-then-line order, marking directives that target unknown analyzers.
func ListIgnores(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []IgnoreInfo {
	known := map[string]bool{"*": true, "lint": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []IgnoreInfo
	for _, pkg := range pkgs {
		byFile := parseIgnores(fset, pkg.Files)
		for _, name := range sortedFileNames(byFile) {
			for _, d := range byFile[name] {
				out = append(out, IgnoreInfo{
					Pos:      fset.Position(d.pos),
					Analyzer: d.analyzer,
					Reason:   d.reason,
					Known:    known[d.analyzer],
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

func sortedFileNames(m map[string][]ignoreDirective) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Run applies the analyzer to one package and returns its surviving
// diagnostics sorted by position. Ignore directives are honored here so
// every caller (driver, self-check, harness) sees identical behavior.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, pkgPath string, isLocal func(*types.Package) bool) []Diagnostic {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		PkgPath:  pkgPath,
		IsLocal:  isLocal,
		diags:    &diags,
	}
	a.Run(pass)
	diags = applyIgnores(a.Name, fset, files, diags)
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i].Pos, diags[j].Pos
		if di.Filename != dj.Filename {
			return di.Filename < dj.Filename
		}
		if di.Line != dj.Line {
			return di.Line < dj.Line
		}
		return di.Column < dj.Column
	})
	return dedupe(diags)
}

// dedupe collapses identical diagnostics; nested map ranges, for example,
// attribute one effect to several enclosing loops.
func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// applyIgnores drops diagnostics covered by a valid //lint:ignore directive
// on the same line or the line directly above.
func applyIgnores(analyzer string, fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	byFile := parseIgnores(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, ig := range byFile[d.Pos.Filename] {
			if !ig.valid || (ig.analyzer != d.Analyzer && ig.analyzer != "*") {
				continue
			}
			if ig.line == d.Pos.Line || ig.line == d.Pos.Line-1 {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// Analyzers returns every analyzer sdflint runs, in reporting order. The
// first five are per-package; the last four are module-scoped (they need the
// callgraph) and are skipped by sdflint -fast.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		BannedCall,
		CheckedMul,
		ErrAttrib,
		Exhaustive,
		ArtifactMut,
		LockCheck,
		CtxLeak,
		KeyComplete,
	}
}

// PackageAnalyzers returns only the per-package analyzers (the -fast set).
func PackageAnalyzers() []*Analyzer { return PackageAnalyzersOf(Analyzers()) }

// PackageAnalyzersOf filters a list down to its per-package analyzers.
func PackageAnalyzersOf(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	for _, a := range analyzers {
		if a.Run != nil {
			out = append(out, a)
		}
	}
	return out
}

// ModuleAnalyzersOf filters a list down to its module-scoped analyzers.
func ModuleAnalyzersOf(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			out = append(out, a)
		}
	}
	return out
}
