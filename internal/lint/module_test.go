package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixtureModule loads one testdata mini-module and builds its callgraph.
func loadFixtureModule(t *testing.T, name string) *Module {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	return NewModule(loader.Fset, pkgs, loader.IsLocal)
}

// TestModuleCallgraph checks the conservative callgraph and reachability
// machinery against the artifactmut fixture: methods resolve as roots, edges
// follow both plain calls and calls inside the same function's literals, and
// the parent-pointer paths render caller-first.
func TestModuleCallgraph(t *testing.T) {
	mod := loadFixtureModule(t, "artifactmut")

	run := mod.LookupFunc("internal/pass", "Plan", "Run")
	if run == nil {
		t.Fatal("LookupFunc did not find pass.(*Plan).Run")
	}
	decode := mod.LookupFunc("internal/pass", "", "decodeRep")
	if decode == nil {
		t.Fatal("LookupFunc did not find pass.decodeRep")
	}
	if mod.LookupFunc("internal/pass", "", "noSuchFunction") != nil {
		t.Error("LookupFunc invented a function")
	}

	bump := mod.LookupFunc("internal/pass", "", "bump")
	outer := mod.LookupFunc("internal/pass", "", "outer")
	scratch := mod.LookupFunc("internal/pass", "", "scratchMutate")
	if bump == nil || outer == nil || scratch == nil {
		t.Fatal("fixture functions missing from the module index")
	}

	foundBump := false
	for _, e := range mod.Edges(outer) {
		if e.Callee == bump {
			foundBump = true
		}
	}
	if !foundBump {
		t.Error("callgraph misses the outer -> bump edge")
	}
}

// TestModuleReachability checks BFS reachability and path rendering.
func TestModuleReachability(t *testing.T) {
	mod := loadFixtureModule(t, "artifactmut")
	run := mod.LookupFunc("internal/pass", "Plan", "Run")
	bump := mod.LookupFunc("internal/pass", "", "bump")
	scratch := mod.LookupFunc("internal/pass", "", "scratchMutate")
	if run == nil || bump == nil || scratch == nil {
		t.Fatal("fixture functions missing")
	}
	reach := mod.Reachable([]*types.Func{run})
	if !reach.Contains(bump) {
		t.Error("bump should be reachable from Run")
	}
	if reach.Contains(scratch) {
		t.Error("scratchMutate should not be reachable from Run")
	}
	want := "pass.(*Plan).Run -> pass.outer -> pass.bump"
	if got := reach.Path(bump); got != want {
		t.Errorf("Path(bump) = %q, want %q", got, want)
	}
	if got := reach.Path(run); got != "pass.(*Plan).Run" {
		t.Errorf("Path(run) = %q, want the root alone", got)
	}
}

// TestListIgnores checks the suppression inventory: reasons are captured and
// unknown analyzer names are flagged.
func TestListIgnores(t *testing.T) {
	src := `package p

//lint:ignore maporder iteration order provably irrelevant
var a int

//lint:ignore nosuchanalyzer stale suppression
var b int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkgs := []*Package{{Path: "p", Files: []*ast.File{f}}}
	infos := ListIgnores(fset, pkgs, Analyzers())
	if len(infos) != 2 {
		t.Fatalf("got %d ignores, want 2: %+v", len(infos), infos)
	}
	if infos[0].Analyzer != "maporder" || !infos[0].Known {
		t.Errorf("first ignore = %+v, want known maporder", infos[0])
	}
	if !strings.Contains(infos[0].Reason, "provably irrelevant") {
		t.Errorf("reason not captured: %+v", infos[0])
	}
	if infos[1].Analyzer != "nosuchanalyzer" || infos[1].Known {
		t.Errorf("second ignore = %+v, want unknown", infos[1])
	}
}

// TestAnalyzerRegistration pins the split between per-package and module
// analyzers: exactly one of Run/RunModule must be set on every analyzer, and
// the four interprocedural analyzers all run module-wide.
func TestAnalyzerRegistration(t *testing.T) {
	wantModule := map[string]bool{
		"artifactmut": true, "lockcheck": true, "ctxleak": true, "keycomplete": true,
	}
	seen := make(map[string]bool)
	for _, a := range Analyzers() {
		seen[a.Name] = true
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %s must set exactly one of Run / RunModule", a.Name)
		}
		if wantModule[a.Name] && a.RunModule == nil {
			t.Errorf("analyzer %s should be module-scoped", a.Name)
		}
	}
	for name := range wantModule {
		if !seen[name] {
			t.Errorf("analyzer %s is not registered", name)
		}
	}
}
