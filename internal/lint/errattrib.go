package lint

import (
	"go/ast"
	"strings"
)

// ErrAttrib enforces stage attribution on every error the invariant oracle
// constructs: inside internal/check an error must be a *Violation (which
// carries a Stage and a Rule for the fuzzer's crash bucketing) or must wrap
// one with %w so errors.As still finds the attribution. Bare errors.New or
// fmt.Errorf without %w would surface in a fuzzer report as an
// unattributable failure that cannot be bucketed or triaged.
var ErrAttrib = &Analyzer{
	Name:     "errattrib",
	Doc:      "errors in internal/check must be Violations or wrap one with %w",
	Packages: []string{"internal/check"},
	Run:      runErrAttrib,
}

func runErrAttrib(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pkgFunc(pass, sel)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "errors" && fn.Name() == "New":
				pass.Reportf(call.Pos(), "errors.New loses stage attribution; construct a *Violation (or wrap one with %%w)")
			case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
				if !errorfWraps(pass, call) {
					pass.Reportf(call.Pos(), "fmt.Errorf without %%w loses stage attribution; wrap a *Violation with %%w")
				}
			}
			return true
		})
	}
}

// errorfWraps reports whether the fmt.Errorf call's format string provably
// contains a %w verb. A non-constant format cannot be proven and counts as
// unattributed.
func errorfWraps(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return false
	}
	return strings.Contains(tv.Value.ExactString(), "%w")
}
