package lint

// KeyComplete enforces content-key completeness: every option that can change
// a pass output must be folded into its content key, or two different
// compilations silently alias one cache entry.
//
// A key-mirror struct declares what it mirrors with a directive comment:
//
//	//lint:keymap Options
//	type optionsKeyMap struct {
//		Strategy OrderStrategy // order key
//		...
//	}
//
// The analyzer then checks, field for field:
//
//   - every field of the target struct appears in the mirror with the same
//     name and identical type — a new Options knob without a mirror entry is
//     reported BY NAME, so the diagnostic tells the author exactly which
//     field needs a key decision;
//   - every mirror field has a counterpart in the target (no stale mirrors);
//   - every mirror field carries a comment documenting which content key
//     carries it (or why it is deliberately key-exempt).
//
// This replaces the old `var _ = optionsKeyMap(Options{})` struct-conversion
// guards: the conversion only failed on type-shape drift and could not name
// the missing field, and it forced the mirror to stay conversion-compatible
// (same field order) even when a clearer grouping existed.

import (
	"go/ast"
	"go/types"
	"strings"
)

var KeyComplete = &Analyzer{
	Name:      "keycomplete",
	Doc:       "key-mirror structs (//lint:keymap T) cover every field of their target, with documented fields",
	RunModule: runKeyComplete,
}

func runKeyComplete(pass *ModulePass) {
	for _, pkg := range pass.ScopePackages() {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					target, pos, ok := keymapDirective(gd, ts)
					if !ok {
						continue
					}
					checkKeymap(pass, pkg, ts, target, pos)
				}
			}
		}
	}
}

// keymapDirective extracts "//lint:keymap <Target>" from the type's doc
// comment (on the spec or its enclosing declaration).
func keymapDirective(gd *ast.GenDecl, ts *ast.TypeSpec) (string, ast.Node, bool) {
	for _, cg := range []*ast.CommentGroup{ts.Doc, gd.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//lint:keymap")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) != 1 {
				return "", c, true // malformed: caught by empty target below
			}
			return fields[0], c, true
		}
	}
	return "", nil, false
}

func checkKeymap(pass *ModulePass, pkg *Package, ts *ast.TypeSpec, target string, pos ast.Node) {
	mirrorName := ts.Name.Name
	if target == "" {
		pass.Reportf(pos.Pos(), "malformed keymap directive on %s: want //lint:keymap <TargetType>", mirrorName)
		return
	}
	mirrorStruct, ok := ts.Type.(*ast.StructType)
	if !ok {
		pass.Reportf(ts.Pos(), "keymap directive on %s, which is not a struct type", mirrorName)
		return
	}
	tObj := pkg.Types.Scope().Lookup(target)
	if tObj == nil {
		pass.Reportf(pos.Pos(), "keymap target %s is not declared in package %s", target, pkg.Types.Name())
		return
	}
	targetStruct, ok := tObj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(pos.Pos(), "keymap target %s is not a struct type", target)
		return
	}

	mirrorFields := make(map[string]*types.Var)
	mObj := pkg.Types.Scope().Lookup(mirrorName)
	if mObj == nil {
		return
	}
	mStruct, ok := mObj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < mStruct.NumFields(); i++ {
		f := mStruct.Field(i)
		mirrorFields[f.Name()] = f
	}

	// Target -> mirror: completeness, the whole point.
	targetFields := make(map[string]*types.Var)
	for i := 0; i < targetStruct.NumFields(); i++ {
		f := targetStruct.Field(i)
		targetFields[f.Name()] = f
		mf, ok := mirrorFields[f.Name()]
		if !ok {
			pass.Reportf(ts.Pos(),
				"%s field %s (%s) is not mirrored by %s: decide which content key carries it and add a documented mirror field",
				target, f.Name(), f.Type(), mirrorName)
			continue
		}
		if !types.Identical(f.Type(), mf.Type()) {
			pass.Reportf(ts.Pos(),
				"%s field %s has type %s but %s mirrors it as %s; the mirror must track the real type",
				target, f.Name(), f.Type(), mirrorName, mf.Type())
		}
	}

	// Mirror -> target: no stale mirror fields, and every field documented.
	for _, field := range mirrorStruct.Fields.List {
		documented := field.Doc != nil || field.Comment != nil
		for _, name := range field.Names {
			if _, ok := targetFields[name.Name]; !ok {
				pass.Reportf(name.Pos(),
					"%s field %s has no counterpart in %s; remove the stale mirror entry",
					mirrorName, name.Name, target)
			}
			if !documented {
				// Reported at the struct head: the comment requirement is the
				// mirror's contract, and the message names the field.
				pass.Reportf(ts.Pos(),
					"%s field %s needs a comment naming the content key that carries it",
					mirrorName, name.Name)
			}
		}
	}
}
