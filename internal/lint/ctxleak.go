package lint

// CtxLeak polices goroutine and context hygiene in the concurrent layers
// (service, load, par): a daemon that serves millions of requests cannot
// afford goroutines that outlive their work or handlers that detach from the
// request's cancellation.
//
// Every `go` statement must satisfy one of:
//
//   - it is joined: a sync.WaitGroup Add call precedes it in the same
//     function, or the spawned body calls Done/Wait on a WaitGroup;
//   - it is cancellable: the spawned body contains a select statement or
//     receives from a Done() channel (context.Context or any shutdown
//     channel exposed as Done());
//   - it is bounded: the spawned body ranges over a channel, terminating
//     when the producer closes it.
//
// For `go f()` and `go x.m()` of a module-declared function the callee's
// body is inspected the same way as a literal.
//
// Separately, an HTTP handler (any function with a *http.Request parameter)
// must thread r.Context() into the pipeline: calls to context.Background or
// context.TODO inside a handler are reported.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc:  "goroutines must be WaitGroup-joined or cancellable; handlers must use r.Context()",
	Packages: []string{
		"internal/service", "internal/service/metrics", "internal/load", "internal/par",
		"internal/cluster",
		// The phased engine and simulator spawn one goroutine per worker
		// every period; each must be joined at the phase barrier or the
		// period's WaitGroup.
		"internal/partition", "internal/runtime", "internal/sim",
	},
	RunModule: runCtxLeak,
}

func runCtxLeak(pass *ModulePass) {
	for _, pkg := range pass.ScopePackages() {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkGoStmts(pass, pkg, fd)
				if isHTTPHandler(pkg, fd) {
					checkHandlerContext(pass, pkg, fd)
				}
			}
		}
	}
}

// checkGoStmts validates every go statement in the function body.
func checkGoStmts(pass *ModulePass, pkg *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		// Joined from outside: a WaitGroup Add before the spawn.
		if addPrecedes(pkg, fd.Body, g.Pos()) {
			return true
		}
		// The spawned body itself joins, selects, or drains a channel.
		if body := spawnedBody(pass, pkg, g.Call); body != nil && bodyTerminates(pkg, body) {
			return true
		}
		pass.Reportf(g.Pos(),
			"goroutine is neither joined (WaitGroup/errgroup) nor cancellable (select on ctx.Done()/shutdown channel); it can outlive its work")
		return true
	})
}

// addPrecedes reports whether a sync.WaitGroup Add call appears before pos in
// the enclosing function body.
func addPrecedes(pkg *Package, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= pos {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if isWaitGroup(pkg.Info.TypeOf(sel.X)) {
			found = true
		}
		return !found
	})
	return found
}

// spawnedBody resolves the body the go statement runs: a function literal's
// own body, or the declared body of a statically resolved module function.
func spawnedBody(pass *ModulePass, pkg *Package, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if fd := pass.Module.Decl(fn); fd != nil {
				return fd.Decl.Body
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if fd := pass.Module.Decl(fn); fd != nil {
					return fd.Decl.Body
				}
			}
		} else if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if fd := pass.Module.Decl(fn); fd != nil {
				return fd.Decl.Body
			}
		}
	}
	return nil
}

// bodyTerminates reports whether the spawned body contains a terminating or
// joining construct: WaitGroup Done/Wait, a select statement, a receive from
// a Done() channel, or a range over a channel.
func bodyTerminates(pkg *Package, body *ast.BlockStmt) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			ok = true
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					ok = true
				}
			}
		case *ast.CallExpr:
			if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel {
				switch sel.Sel.Name {
				case "Done", "Wait":
					if isWaitGroup(pkg.Info.TypeOf(sel.X)) {
						ok = true
					}
				}
			}
		case *ast.UnaryExpr:
			// <-x.Done() — a context or shutdown channel.
			if n.Op == token.ARROW {
				if call, isCall := ast.Unparen(n.X).(*ast.CallExpr); isCall {
					if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Done" {
						ok = true
					}
				}
			}
		}
		return !ok
	})
	return ok
}

// isWaitGroup matches sync.WaitGroup, by value or pointer.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isHTTPHandler reports whether the function takes a *net/http.Request.
func isHTTPHandler(pkg *Package, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		t := pkg.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			continue
		}
		n, ok := p.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request" {
			return true
		}
	}
	return false
}

// checkHandlerContext reports context.Background/TODO inside a handler.
func checkHandlerContext(pass *ModulePass, pkg *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if name := fn.Name(); name == "Background" || name == "TODO" {
			pass.Reportf(sel.Pos(),
				"HTTP handler detaches from the request: thread r.Context() into pipeline calls instead of context.%s", name)
		}
		return true
	})
}
