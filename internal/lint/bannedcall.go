package lint

import "go/ast"

// BannedCall forbids ambient-state calls inside the deterministic core
// packages of the pipeline. Ordering, looping DP, lifetime extraction,
// allocation, code generation, and the invariant oracle must be pure
// functions of their inputs — the golden outputs, the differential fuzzer's
// reproducers, and the paper's tables all assume that compiling the same
// graph twice yields identical bytes. Wall-clock reads, environment lookups,
// and the globally seeded math/rand source all break that contract.
//
// Allowed even here: rand.New/NewSource (an explicitly seeded *rand.Rand is
// deterministic) and everything in test files (not linted).
var BannedCall = &Analyzer{
	Name: "bannedcall",
	Doc:  "no ambient time/env/global-rand calls in deterministic pipeline packages",
	Packages: []string{
		"internal/sdf", "internal/sched", "internal/looping", "internal/lifetime",
		"internal/alloc", "internal/codegen", "internal/check", "internal/core",
		"internal/pass",
		// Partitioning must be deterministic like the rest of the pipeline:
		// the P-way assignment and the segmented layout are part of the
		// artifact bytes, so the same graph + worker count must partition
		// identically on every run.
		"internal/partition",
		// The load harness and its histogram must also be clock-free: all
		// timing flows through the injected load.Clock, so a load report is
		// a pure function of (config, server behavior, clock) and the hdr
		// quantile math is testable against exact oracles.
		"internal/hdr", "internal/load",
		// Cluster routing must be deterministic too: the rendezvous ring is
		// pure hashing, backoff jitter comes from explicitly seeded
		// generators, and probe cadence flows through the injected
		// cluster.Clock — so two nodes with the same member list always
		// agree on ownership and retry schedules are reproducible in tests.
		"internal/cluster",
		// The command binaries are where ambient state is *allowed* to enter —
		// but only at explicitly marked injection points (the realClock
		// adapter, report timestamps), each carrying a //lint:ignore with its
		// reason. Linting them keeps new ambient reads from sneaking into CLI
		// glue and flowing unlabeled into the deterministic layers below.
		"cmd/sdfd", "cmd/sdfc", "cmd/sdfload",
	},
	Run: runBannedCall,
}

// bannedFuncs maps package path -> function name -> remediation hint.
// An empty name key bans every function in the package except those listed
// with an "allow" hint.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "inject the timestamp from the caller",
		"Since": "inject the timestamp from the caller",
		"Until": "inject the timestamp from the caller",
	},
	"os": {
		"Getenv":    "thread configuration through explicit options",
		"LookupEnv": "thread configuration through explicit options",
		"Environ":   "thread configuration through explicit options",
	},
}

// randAllowed lists math/rand functions that are fine because they build an
// explicitly seeded generator rather than using the global source.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func runBannedCall(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pkgFunc(pass, sel)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path, name := fn.Pkg().Path(), fn.Name()
			if hint, ok := bannedFuncs[path][name]; ok {
				pass.Reportf(call.Pos(), "call to %s.%s is banned in deterministic pipeline packages; %s", path, name, hint)
				return true
			}
			if (path == "math/rand" || path == "math/rand/v2") && !randAllowed[name] {
				pass.Reportf(call.Pos(), "call to %s.%s uses the global rand source; construct a fixed-seed *rand.Rand with rand.New(rand.NewSource(seed)) instead", path, name)
			}
			return true
		})
	}
}
