package lint

// LockCheck enforces declared mutex discipline in the concurrent layers.
// A struct field annotated
//
//	mu    sync.Mutex
//	index map[string]int // guarded by mu
//
// may only be read or written while the named mutex — which must be a
// sync.Mutex or sync.RWMutex field of the same struct — is held.
//
// The per-function check is a linear lock-set scan: x.mu.Lock() (and RLock)
// adds the lock for the rendered base path "x", Unlock removes it, and a
// deferred Unlock holds it to the end of the function. Accesses to a guarded
// field f through base "x" require "x"'s lock at that point.
//
// Discipline is interprocedural through receiver summaries: an unexported
// method whose guarded accesses are unheld is summarized as "requires mu"
// (the evictLocked/dropLocked helper convention) instead of reported, and
// every call site must then hold the receiver's lock; requirements propagate
// through unexported callers until a lock, an exported boundary, or a root
// call site is found. An exported method must never require a caller-held
// lock — its unheld accesses are reported directly.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "fields annotated 'guarded by <mu>' are only accessed with the named mutex held",
	Packages: []string{
		"internal/service", "internal/service/metrics", "internal/load", "internal/nodestore",
	},
	RunModule: runLockCheck,
}

// guardedField identifies one annotated field and the mutex field guarding it.
type guardedField struct {
	guard string // name of the mutex field in the same struct
}

// lcEvent is one lock-relevant point inside a function, in source order.
type lcEvent struct {
	pos token.Pos
	// kind: lock (+key), unlock (-key), deferred unlock (hold to end),
	// access (needs key), or a call carrying receiver requirements.
	kind lcEventKind
	key  string // "base.mu" for lock/unlock; required lock for access
	// access / call details
	field  string
	callee *types.Func
	recv   string // rendered receiver base of the call, for requirement keys
}

type lcEventKind int

const (
	lcLock lcEventKind = iota
	lcUnlock
	lcDeferUnlock
	lcAccess
	lcCall
)

type lcFunc struct {
	fn     *types.Func
	pkg    *Package
	events []lcEvent
	// requires maps guard-field name -> first unheld access/call position,
	// for the receiver-summary fixpoint.
	requires map[string]token.Pos
	recvName string // receiver identifier name, "" for non-methods
}

type lcAnalysis struct {
	pass *ModulePass
	// guards: struct type -> field name -> guard info.
	guards map[*types.Named]map[string]guardedField
	funcs  map[*types.Func]*lcFunc
}

func runLockCheck(pass *ModulePass) {
	a := &lcAnalysis{
		pass:   pass,
		guards: make(map[*types.Named]map[string]guardedField),
		funcs:  make(map[*types.Func]*lcFunc),
	}
	scope := pass.ScopePackages()
	for _, pkg := range scope {
		a.collectGuards(pkg)
	}
	if len(a.guards) == 0 {
		return
	}
	inScope := make(map[*Package]bool, len(scope))
	for _, pkg := range scope {
		inScope[pkg] = true
	}
	for _, fn := range pass.Module.Functions() {
		fd := pass.Module.Decl(fn)
		if !inScope[fd.Pkg] {
			continue
		}
		a.funcs[fn] = a.analyzeFunc(fn, fd)
	}
	a.resolve()
}

// collectGuards parses "guarded by <mu>" annotations from struct field
// comments (doc comment or trailing line comment) and validates the guard.
func (a *lcAnalysis) collectGuards(pkg *Package) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			named, ok := pkg.Info.Defs[ts.Name].Type().(*types.Named)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard, pos, ok := guardAnnotation(field)
				if !ok {
					continue
				}
				if !a.structHasMutex(named, guard) {
					a.pass.Reportf(pos,
						"guarded-by annotation names %q, which is not a sync.Mutex or sync.RWMutex field of %s",
						guard, ts.Name.Name)
					continue
				}
				m := a.guards[named]
				if m == nil {
					m = make(map[string]guardedField)
					a.guards[named] = m
				}
				for _, name := range field.Names {
					m[name.Name] = guardedField{guard: guard}
				}
			}
			return true
		})
	}
}

// guardAnnotation extracts "guarded by <name>" from a field's comments.
func guardAnnotation(field *ast.Field) (guard string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "/*")
			i := strings.Index(text, "guarded by ")
			if i < 0 {
				continue
			}
			rest := strings.Fields(text[i+len("guarded by "):])
			if len(rest) == 0 {
				continue
			}
			return strings.TrimRight(rest[0], ".,;:"), c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// structHasMutex reports whether the named struct has a field with the given
// name of type sync.Mutex or sync.RWMutex.
func (a *lcAnalysis) structHasMutex(named *types.Named, name string) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != name {
			continue
		}
		return isMutexType(f.Type())
	}
	return false
}

func isMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// analyzeFunc collects the function's lock events in source order.
func (a *lcAnalysis) analyzeFunc(fn *types.Func, fd *FuncDecl) *lcFunc {
	lf := &lcFunc{fn: fn, pkg: fd.Pkg, requires: make(map[string]token.Pos)}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if fd.Decl.Recv != nil && len(fd.Decl.Recv.List) > 0 && len(fd.Decl.Recv.List[0].Names) > 0 {
			lf.recvName = fd.Decl.Recv.List[0].Names[0].Name
		}
	}
	pkg := fd.Pkg
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if kind, key, ok := a.lockOp(pkg, n.Call); ok {
				if kind == lcUnlock {
					lf.events = append(lf.events, lcEvent{pos: n.Pos(), kind: lcDeferUnlock, key: key})
				}
				// Skip the call's own subtree: visiting it again would record
				// a plain unlock event that releases the lock immediately.
				return false
			}
			return true
		case *ast.CallExpr:
			if kind, key, ok := a.lockOp(pkg, n); ok {
				lf.events = append(lf.events, lcEvent{pos: n.Pos(), kind: kind, key: key})
				return true
			}
			if callee, recv, ok := a.methodCall(pkg, n); ok {
				lf.events = append(lf.events, lcEvent{pos: n.Pos(), kind: lcCall, callee: callee, recv: recv})
			}
			return true
		case *ast.SelectorExpr:
			if key, field, ok := a.guardedAccess(pkg, n); ok {
				lf.events = append(lf.events, lcEvent{pos: n.Pos(), kind: lcAccess, key: key, field: field})
			}
			return true
		}
		return true
	})
	sort.SliceStable(lf.events, func(i, j int) bool { return lf.events[i].pos < lf.events[j].pos })
	return lf
}

// lockOp recognizes x.mu.Lock / RLock / Unlock / RUnlock and returns the
// lock-set key "x.mu".
func (a *lcAnalysis) lockOp(pkg *Package, call *ast.CallExpr) (lcEventKind, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, "", false
	}
	var kind lcEventKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lcLock
	case "Unlock", "RUnlock":
		kind = lcUnlock
	default:
		return 0, "", false
	}
	if !isMutexType(pkg.Info.TypeOf(sel.X)) {
		return 0, "", false
	}
	return kind, types.ExprString(sel.X), true
}

// methodCall resolves a same-module method call x.m(...) to its callee and
// the rendered receiver base "x".
func (a *lcAnalysis) methodCall(pkg *Package, call *ast.CallExpr) (*types.Func, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, "", false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || a.pass.Module.Decl(fn) == nil {
		return nil, "", false
	}
	return fn, types.ExprString(sel.X), true
}

// guardedAccess recognizes x.f where f is a guarded field of x's struct type
// and returns the required lock key "x.<guard>" and the field name.
func (a *lcAnalysis) guardedAccess(pkg *Package, sel *ast.SelectorExpr) (string, string, bool) {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", "", false
	}
	t := pkg.Info.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", "", false
	}
	g, ok := a.guards[named][sel.Sel.Name]
	if !ok {
		return "", "", false
	}
	return types.ExprString(sel.X) + "." + g.guard, sel.Sel.Name, true
}

// resolve runs the receiver-requirement fixpoint and reports violations.
//
// First pass: simulate each function's lock set over its events. Unheld
// guarded accesses on the method's own receiver become requirements for
// unexported methods; everything else unheld is a violation candidate.
// Requirements then propagate through call sites until stable, and whatever
// ends up required by an exported function — or unheld at a root call site —
// is reported.
func (a *lcAnalysis) resolve() {
	fns := make([]*types.Func, 0, len(a.funcs))
	for fn := range a.funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	// Fixpoint over receiver requirements: calling an unexported method that
	// requires a guard, without holding it, makes the caller require it too —
	// but only unexported methods may carry requirements outward; exported
	// ones must be self-locking, so their violations stay their own.
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			lf := a.funcs[fn]
			if fn.Exported() || lf.recvName == "" {
				continue
			}
			for guard, pos := range a.simulate(lf, nil) {
				if _, ok := lf.requires[guard]; !ok {
					lf.requires[guard] = pos
					changed = true
				}
			}
		}
	}
	for _, fn := range fns {
		lf := a.funcs[fn]
		var diags []lcViolation
		a.simulate(lf, &diags)
		canRequire := !fn.Exported() && lf.recvName != ""
		for _, v := range diags {
			if canRequire && v.recvGuard != "" {
				// Summarized as a requirement; call sites enforce it.
				continue
			}
			a.pass.Reportf(v.pos, "%s", v.msg)
		}
	}
}

// lcViolation is one unheld access or call found during simulation.
type lcViolation struct {
	pos token.Pos
	msg string
	// recvGuard is the guard field name when the violation is on the
	// method's own receiver (and thus summarizable), else "".
	recvGuard string
}

// simulate runs the linear lock-set over lf's events. When diags is nil it
// returns the receiver requirements discovered (for the fixpoint); when
// non-nil it appends every violation.
func (a *lcAnalysis) simulate(lf *lcFunc, diags *[]lcViolation) map[string]token.Pos {
	held := make(map[string]bool)
	reqs := make(map[string]token.Pos)
	recvPrefix := lf.recvName + "."
	recvGuardOf := func(key string) string {
		// key is "base.guard"; a requirement is only summarizable when the
		// base is exactly the receiver identifier.
		if lf.recvName == "" || !strings.HasPrefix(key, recvPrefix) {
			return ""
		}
		g := key[len(recvPrefix):]
		if strings.Contains(g, ".") {
			return ""
		}
		return g
	}
	record := func(pos token.Pos, key, msg string) {
		if g := recvGuardOf(key); g != "" {
			if _, ok := reqs[g]; !ok {
				reqs[g] = pos
			}
			if diags != nil {
				*diags = append(*diags, lcViolation{pos: pos, msg: msg, recvGuard: g})
			}
			return
		}
		if diags != nil {
			*diags = append(*diags, lcViolation{pos: pos, msg: msg})
		}
	}
	for _, ev := range lf.events {
		switch ev.kind {
		case lcLock, lcDeferUnlock:
			held[ev.key] = true
		case lcUnlock:
			delete(held, ev.key)
		case lcAccess:
			if !held[ev.key] {
				record(ev.pos, ev.key,
					"access to guarded field "+ev.field+" without holding "+ev.key)
			}
		case lcCall:
			callee := a.funcs[ev.callee]
			if callee == nil {
				continue
			}
			for _, guard := range sortedKeys(callee.requires) {
				key := ev.recv + "." + guard
				if held[key] {
					continue
				}
				record(ev.pos, key,
					"call to "+FuncDisplayName(ev.callee)+" requires "+key+" to be held (it accesses guarded fields)")
			}
		}
	}
	return reqs
}

func sortedKeys(m map[string]token.Pos) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
