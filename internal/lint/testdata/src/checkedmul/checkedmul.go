package checkedmul

// Self-contained doubles of the sdf types the analyzer recognizes by shape:
// the real tree's sdf.Repetitions and sdf.Edge match identically.

type Repetitions []int64

type Edge struct {
	Prod, Cons, Delay, Words int64
}

func TNSE(e Edge, q Repetitions, src int) int64 {
	//lint:ignore checkedmul reference implementation, factors pre-validated
	return e.Prod * q[src]
}

func rawProduct(e Edge, q Repetitions, src int) int64 {
	return e.Prod * q[src] // want "use num.CheckedMul"
}

func rawSum(e Edge, x int64) int64 {
	return x + e.Delay // want "use num.CheckedAdd"
}

func tnsePlus(e Edge, q Repetitions) int64 {
	return TNSE(e, q, 0) + 1 // want "unchecked \"+\""
}

func compound(e Edge, total int64) int64 {
	total += e.Words // want "unchecked \"+\""
	return total
}

func scaled(q Repetitions, i int) int64 {
	return 2 * q[i] // want "unchecked \"*\""
}

func viaLocal(e Edge, n int64) int64 {
	prod := e.Prod
	return n * prod
}

func rangeSum(q Repetitions) int64 {
	var n int64
	for _, v := range q {
		n += v
	}
	return n
}

func subtraction(e Edge) int64 {
	return e.Prod - e.Cons
}

func division(e Edge) int64 {
	return e.Prod / e.Cons
}
