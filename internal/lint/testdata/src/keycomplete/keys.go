// Package fixture exercises the keycomplete analyzer: a keymap mirror must
// cover every target field with the identical type, carry no stale entries,
// and document each field's key decision.
package fixture

// Options is the target struct: every field must be mirrored.
type Options struct {
	Strategy  string
	Depth     int
	Verify    bool
	NoComment bool
}

// goodKeyMap is complete, type-identical, and documented: no diagnostics.
//
//lint:keymap Options
type goodKeyMap struct {
	Strategy  string // order key
	Depth     int    // schedule key
	Verify    bool   // per-point leaf, never shared
	NoComment bool   // key-exempt: not a compilation input
}

// badKeyMap drops Verify, mistypes Depth, and leaves NoComment undocumented.
//
//lint:keymap Options
type badKeyMap struct { // want "Options field Verify (bool) is not mirrored by badKeyMap" "Options field Depth has type int but badKeyMap mirrors it as int64" "badKeyMap field NoComment needs a comment naming the content key"
	Strategy  string // order key
	Depth     int64  // schedule key
	NoComment bool
	Stale     string // want "badKeyMap field Stale has no counterpart in Options; remove the stale mirror entry"
}
