// Package service exercises the lockcheck analyzer: guarded-by annotations,
// the linear lock-set scan, deferred unlocks, and the receiver-requirement
// summaries of unexported xxxLocked helpers.
package service

import "sync"

type counter struct {
	mu  sync.Mutex
	n   int // guarded by mu
	hot int // guarded by lock // want "guarded-by annotation names \"lock\", which is not a sync.Mutex or sync.RWMutex field of counter"
}

// Inc holds the lock across the access.
func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Value holds the lock via a deferred unlock.
func (c *counter) Value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Broken is exported, so its unheld access is reported directly rather than
// summarized as a caller requirement.
func (c *counter) Broken() int {
	return c.n // want "access to guarded field n without holding c.mu"
}

// bumpLocked follows the xxxLocked convention: unexported, accesses the
// guarded field unheld, and is therefore summarized as requiring c.mu
// instead of being reported here.
func (c *counter) bumpLocked() {
	c.n++
}

// doubleBumpLocked propagates the requirement one level further.
func (c *counter) doubleBumpLocked() {
	c.bumpLocked()
}

// AddTwo satisfies the summarized requirement at the call sites.
func (c *counter) AddTwo() {
	c.mu.Lock()
	c.bumpLocked()
	c.bumpLocked()
	c.mu.Unlock()
}

// AddUnsafe calls a lock-requiring helper without the lock.
func (c *counter) AddUnsafe() {
	c.bumpLocked() // want "call to service.(*counter).bumpLocked requires c.mu to be held"
}

// Spin shows the requirement surviving an unexported hop.
func (c *counter) Spin() {
	c.doubleBumpLocked() // want "call to service.(*counter).doubleBumpLocked requires c.mu to be held"
}
