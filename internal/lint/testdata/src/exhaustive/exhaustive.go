package exhaustive

type Strategy int

const (
	APGAN Strategy = iota
	RPMC
	Custom
)

type Policy string

const (
	Keep Policy = "keep"
	Drop Policy = "drop"
)

func missingOne(s Strategy) string {
	switch s { // want "missing Custom"
	case APGAN:
		return "a"
	case RPMC:
		return "r"
	}
	return ""
}

func covered(s Strategy) string {
	switch s {
	case APGAN:
		return "a"
	case RPMC:
		return "r"
	case Custom:
		return "c"
	default:
		return "?"
	}
}

func panickingDefault(s Strategy) string {
	switch s {
	case APGAN:
		return "a"
	default:
		panic("unhandled strategy")
	}
}

func softDefault(s Strategy) string {
	switch s { // want "missing Custom, RPMC"
	case APGAN:
		return "a"
	default:
		return "?"
	}
}

func stringEnum(p Policy) bool {
	switch p { // want "missing Drop"
	case Keep:
		return true
	}
	return false
}

type plain int

func notAnEnum(n plain) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}

func untagged(s Strategy) string {
	switch {
	case s == APGAN:
		return "a"
	}
	return ""
}

func suppressed(s Strategy) string {
	//lint:ignore exhaustive only APGAN reaches this path by construction
	switch s {
	case APGAN:
		return "a"
	}
	return ""
}

// Kind mirrors the pass-kind enum of internal/pass: a named int whose
// constants name the pipeline's pass graph nodes. Switches over it dispatch
// plan execution and stage attribution, so they must stay exhaustive.
type Kind int

const (
	KindRepetitions Kind = iota
	KindOrder
	KindSchedule
	KindLifetimes
	KindAlloc
	KindPartition
	KindSegalloc
	KindAssemble
)

func kindMissing(k Kind) string {
	switch k { // want "missing KindAssemble"
	case KindRepetitions:
		return "repetitions"
	case KindOrder:
		return "order"
	case KindSchedule:
		return "schedule"
	case KindLifetimes:
		return "lifetimes"
	case KindAlloc:
		return "alloc"
	case KindPartition:
		return "partition"
	case KindSegalloc:
		return "segalloc"
	}
	return ""
}

func kindCovered(k Kind) string {
	switch k {
	case KindRepetitions:
		return "repetitions"
	case KindOrder:
		return "order"
	case KindSchedule:
		return "schedule"
	case KindLifetimes:
		return "lifetimes"
	case KindAlloc:
		return "alloc"
	case KindPartition:
		return "partition"
	case KindSegalloc:
		return "segalloc"
	case KindAssemble:
		return "assemble"
	default:
		panic("unknown pass kind")
	}
}

// kindTagStyle mirrors the persistent store's kindTag switch in
// internal/pass: every Kind is listed, one case panics because that kind is
// never stored, and there is deliberately NO default clause — so when a new
// Kind constant appears, it is this analyzer (at build time, via make lint)
// rather than a runtime panic that forces the author to decide the new
// kind's store-key tag. The analyzer must accept the default-free form.
func kindTagStyle(k Kind) string {
	switch k {
	case KindRepetitions:
		return "rep"
	case KindOrder:
		return "order"
	case KindSchedule:
		return "sched"
	case KindLifetimes:
		return "life"
	case KindAlloc:
		return "allocpt"
	case KindPartition:
		return "part"
	case KindSegalloc:
		return "seg"
	case KindAssemble:
		panic("assembled results are never stored")
	}
	panic("unreachable: exhaustive switch above")
}

// kindTagMissing is the failure mode the guard exists for: a new kind (or a
// forgotten one) with no tag case and no default.
func kindTagMissing(k Kind) string {
	switch k { // want "missing KindAssemble, KindLifetimes"
	case KindRepetitions:
		return "rep"
	case KindOrder:
		return "order"
	case KindSchedule:
		return "sched"
	case KindAlloc:
		return "allocpt"
	case KindPartition:
		return "part"
	case KindSegalloc:
		return "seg"
	}
	panic("unreachable")
}
