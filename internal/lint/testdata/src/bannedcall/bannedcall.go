package bannedcall

import (
	"math/rand"
	"os"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now is banned"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since is banned"
}

func fromEnv() string {
	return os.Getenv("SDF_DEBUG") // want "os.Getenv is banned"
}

func globalRand() int {
	return rand.Intn(10) // want "global rand source"
}

func seeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

func useSeeded(r *rand.Rand) int {
	return r.Intn(10)
}

func constTime(d time.Duration) string {
	return d.String()
}

func suppressed() string {
	//lint:ignore bannedcall diagnostic file path is operator-facing, not part of pipeline output
	return os.Getenv("TMPDIR")
}
