package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "appends to \"keys\" without a sort"
		keys = append(keys, k)
	}
	return keys
}

func keysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func keysSortedSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func printAll(w io.Writer, m map[string]int) {
	for k, v := range m { // want "writes output in nondeterministic order"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func buildString(m map[string]bool) string {
	var b strings.Builder
	for k := range m { // want "writes output in nondeterministic order"
		b.WriteString(k)
	}
	return b.String()
}

func sums(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

type holder struct{ items []string }

func fieldAppend(h *holder, m map[string]bool) {
	for k := range m {
		h.items = append(h.items, k) // want "order-dependent output"
	}
}

func ignored(m map[string]int) []string {
	var keys []string
	//lint:ignore maporder keys feed a set; order is irrelevant here
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
