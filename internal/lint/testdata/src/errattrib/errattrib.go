package errattrib

import (
	"errors"
	"fmt"
)

type Violation struct {
	Stage, Rule, Msg string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("check: %s/%s: %s", v.Stage, v.Rule, v.Msg)
}

func bare() error {
	return errors.New("boom") // want "errors.New loses stage attribution"
}

func formatted(x int) error {
	return fmt.Errorf("x = %d", x) // want "fmt.Errorf without %w"
}

func dynamicFormat(format string, x int) error {
	return fmt.Errorf(format, x) // want "fmt.Errorf without %w"
}

func attributed() error {
	return &Violation{Stage: "order", Rule: "precedence", Msg: "out of order"}
}

func wrapped(err error) error {
	return fmt.Errorf("while validating schedule: %w", err)
}

func sprintfIsFine(x int) string {
	return fmt.Sprintf("x = %d", x)
}
