// Package pass mirrors the artifact layer of the real internal/pass package:
// the analyzer resolves artifact types and publishing roots by package-path
// suffix, so this fixture exercises exactly the production matching.
package pass

// Repetitions is an artifact type (matched by name).
type Repetitions struct {
	Q map[string]int
}

// Order is an artifact type (matched by name).
type Order struct {
	Actors []string
}

// Plan carries a published artifact; its Run method is a publishing root.
type Plan struct {
	rep *Repetitions
}

// bump mutates its parameter. The diagnostic lands here — at the mutation
// site — with the full call path that reaches it from the root.
func bump(r *Repetitions) {
	r.Q["x"]++ // want "pass.bump writes through published artifact pass.Repetitions via r.Q[\"x\"] (reached by pass.(*Plan).Run -> pass.outer -> pass.bump)"
}

// outer only forwards: the writes-through-parameter summary propagates
// through it, so the reported path is Run -> outer -> bump.
func outer(r *Repetitions) {
	bump(r)
}

// relabel mutates a by-value copy: the write never crosses a pointer, slice,
// or map, so it stays inside the callee's copy and is allowed.
func relabel(o Order) Order {
	o.Actors = nil
	return o
}

// Run is the plan-execution root.
func (p *Plan) Run() *Order {
	p.rep.Q["direct"] = 1 // want "writes through published artifact pass.Repetitions via p.rep.Q"
	outer(p.rep)

	// Allowed: ord roots at a composite literal in this function, so nobody
	// shares it yet — construction is exempt by design.
	ord := &Order{Actors: []string{"seed"}}
	ord.Actors = append(ord.Actors, "fresh")

	// Allowed: a value copy of an artifact may be reshaped freely.
	cp := Order{Actors: ord.Actors}
	cp = relabel(cp)
	_ = cp
	return ord
}

// decodeRep is a store-decode root: it builds a fresh artifact and may
// populate it freely before returning it.
func decodeRep(data []byte) (*Repetitions, error) {
	r := &Repetitions{Q: make(map[string]int)}
	r.Q["n"] = len(data)
	return r, nil
}

// scratchMutate writes through an artifact parameter but is unreachable from
// every root, so reachability gating keeps it silent.
func scratchMutate(r *Repetitions) {
	r.Q["scratch"] = 0
}
