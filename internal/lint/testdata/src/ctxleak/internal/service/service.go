// Package service exercises the ctxleak analyzer: every go statement must be
// joined or cancellable, and HTTP handlers must stay on the request context.
package service

import (
	"context"
	"net/http"
	"sync"
)

// leaky spawns a goroutine nothing can stop.
func leaky() {
	go func() { // want "goroutine is neither joined"
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// joined is fine: a WaitGroup Add precedes the spawn.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// cancellable is fine: the body selects on ctx.Done().
func cancellable(ctx context.Context, work chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case <-work:
		}
	}()
}

// drains is fine: the body ranges over a channel, terminating when the
// producer closes it.
func drains(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

// worker blocks on the context's Done channel.
func worker(ctx context.Context) {
	<-ctx.Done()
}

// spawnsNamed is fine: the declared body of the spawned function is
// inspected the same way as a literal.
func spawnsNamed(ctx context.Context) {
	go worker(ctx)
}

// badHandler detaches from the request's cancellation.
func badHandler(w http.ResponseWriter, r *http.Request) {
	compile(context.Background(), r.URL.Path) // want "HTTP handler detaches from the request"
	w.WriteHeader(http.StatusOK)
}

// goodHandler threads the request context through.
func goodHandler(w http.ResponseWriter, r *http.Request) {
	compile(r.Context(), r.URL.Path)
	w.WriteHeader(http.StatusOK)
}

func compile(ctx context.Context, name string) {
	_ = ctx
	_ = name
}
