package lint

// analysistest-style fixture harness: each analyzer gets a package under
// testdata/src/<name>/ whose files carry `// want "substring"` comments on
// the lines where a diagnostic must be reported. The harness type-checks the
// fixture (stdlib imports only, resolved from source), runs the analyzer,
// and asserts an exact file:line match between diagnostics and expectations
// — unexpected findings, missing findings, and wrong positions all fail.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// expectation is one `// want "..."` annotation.
type expectation struct {
	file    string
	line    int
	pattern string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// runFixture type-checks testdata/src/<name> and asserts the analyzer's
// diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	var wants []*expectation
	for _, fn := range names {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", fn, err)
		}
		files = append(files, f)
		wants = append(wants, parseWants(t, fset, f)...)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", name, err)
	}
	isLocal := func(p *types.Package) bool { return p == tpkg }

	diags := Run(a, fset, files, tpkg, info, name, isLocal)
	for _, d := range diags {
		if w := matchWant(wants, d); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.pattern)
		}
	}
}

// runModuleFixture loads testdata/src/<name> as a complete mini-module (the
// fixture directory carries its own go.mod and subpackages, so path-suffix
// matching of roots and artifact types works exactly as it does against the
// real repository) and asserts a module-scoped analyzer's diagnostics against
// the want comments of every fixture file.
func runModuleFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("loading fixture module %s: %v", name, err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading fixture module %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture module %s has no packages", name)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, parseWants(t, loader.Fset, f)...)
		}
	}
	mod := NewModule(loader.Fset, pkgs, loader.IsLocal)
	diags := RunModule(a, mod)
	for _, d := range diags {
		if w := matchWant(wants, d); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.pattern)
		}
	}
}

// parseWants extracts want annotations with their positions.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, pat := range splitQuoted(t, m[1], pos) {
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: pat})
			}
		}
	}
	return out
}

// splitQuoted parses one or more Go-quoted strings: `"a" "b"`.
func splitQuoted(t *testing.T, s string, pos token.Position) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: malformed want annotation %q", pos, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, s[:end+1], err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// matchWant finds the first unmatched expectation on the diagnostic's line
// whose pattern is a substring of the message.
func matchWant(wants []*expectation, d Diagnostic) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.pattern) {
			return w
		}
	}
	return nil
}
