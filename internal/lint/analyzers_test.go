package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestMapOrderFixture(t *testing.T)   { runFixture(t, MapOrder, "maporder") }
func TestBannedCallFixture(t *testing.T) { runFixture(t, BannedCall, "bannedcall") }
func TestCheckedMulFixture(t *testing.T) { runFixture(t, CheckedMul, "checkedmul") }
func TestErrAttribFixture(t *testing.T)  { runFixture(t, ErrAttrib, "errattrib") }
func TestExhaustiveFixture(t *testing.T) { runFixture(t, Exhaustive, "exhaustive") }

func TestArtifactMutFixture(t *testing.T) { runModuleFixture(t, ArtifactMut, "artifactmut") }
func TestLockCheckFixture(t *testing.T)   { runModuleFixture(t, LockCheck, "lockcheck") }
func TestCtxLeakFixture(t *testing.T)     { runModuleFixture(t, CtxLeak, "ctxleak") }
func TestKeyCompleteFixture(t *testing.T) { runModuleFixture(t, KeyComplete, "keycomplete") }

func TestAppliesTo(t *testing.T) {
	a := &Analyzer{Name: "x", Packages: []string{"internal/sdf", "internal/num"}}
	for path, want := range map[string]bool{
		"repro/internal/sdf":  true,
		"repro/internal/num":  true,
		"internal/sdf":        true,
		"repro/internal/sdfx": false,
		"repro/internal/core": false,
	} {
		if got := a.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	all := &Analyzer{Name: "y"}
	if !all.AppliesTo("anything/at/all") {
		t.Error("empty Packages should apply everywhere")
	}
}

// TestBannedCallCoversDeterministicSet pins the package list of the
// determinism analyzer: every package the pass graph's purity argument rests
// on must be in the set, internal/pass itself included, plus the command
// binaries where ambient state may enter only at marked injection points.
func TestBannedCallCoversDeterministicSet(t *testing.T) {
	for _, path := range []string{
		"repro/internal/core", "repro/internal/pass", "repro/internal/alloc",
		"repro/internal/lifetime", "repro/internal/check",
		"repro/cmd/sdfd", "repro/cmd/sdfc", "repro/cmd/sdfload",
	} {
		if !BannedCall.AppliesTo(path) {
			t.Errorf("BannedCall does not apply to %s", path)
		}
	}
}

func TestMalformedIgnoreDirective(t *testing.T) {
	src := `package p

//lint:ignore maporder
var a int

//lint:ignore
var b int

//lint:ignore maporder has a reason
var c int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags := CheckIgnoreDirectives(fset, []*ast.File{f})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "lint" {
			t.Errorf("diagnostic attributed to %q, want lint", d.Analyzer)
		}
	}
}
