package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` statements over maps whose bodies have
// order-dependent effects: appending to a slice, or writing to an io.Writer
// / fmt print stream. Go randomizes map iteration order per range, so any
// output assembled inside such a loop differs run to run — the exact
// nondeterminism class that breaks the pipeline's byte-identical golden
// outputs and the deterministic merge in internal/par.
//
// An append is accepted when the destination slice is passed to a sort.* or
// slices.Sort* call later in the same function (the collect-keys-then-sort
// idiom); writes to an output stream inside the loop are always flagged
// because no after-the-fact sort can reorder bytes already written.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map must not produce order-dependent output",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, body := enclosingFuncBody(n)
			if body == nil {
				return true
			}
			checkMapRanges(pass, fn, body)
			return true
		})
	}
}

// enclosingFuncBody unwraps function declarations and literals.
func enclosingFuncBody(n ast.Node) (ast.Node, *ast.BlockStmt) {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn, fn.Body
	case *ast.FuncLit:
		return fn, fn.Body
	}
	return nil, nil
}

// checkMapRanges finds every range-over-map inside fn's body (excluding
// nested function literals, which get their own visit) and validates it.
func checkMapRanges(pass *Pass, fn ast.Node, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != fn {
			return false
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := pass.TypeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ranges = append(ranges, rs)
				}
			}
		}
		return true
	})
	for _, rs := range ranges {
		checkOneMapRange(pass, body, rs)
	}
}

func checkOneMapRange(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	appendTargets := map[types.Object]bool{}
	writes := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if obj := appendDest(pass, rhs); obj != nil {
					appendTargets[obj] = true
				} else if isAppendCall(pass, rhs) && i < len(n.Lhs) {
					// append to something unresolvable (field, index):
					// conservatively treat as unsorted output.
					pass.Reportf(n.Pos(), "append inside range over map builds order-dependent output")
				}
			}
		case *ast.CallExpr:
			if isOutputWrite(pass, n) {
				writes = true
			}
		}
		return true
	})
	if writes {
		pass.Reportf(rs.Pos(), "range over map writes output in nondeterministic order")
	}
	for obj := range appendTargets {
		if !sortedAfter(pass, funcBody, rs, obj) {
			pass.Reportf(rs.Pos(), "range over map appends to %q without a sort before use; iteration order is nondeterministic", obj.Name())
		}
	}
}

// appendDest returns the object of the slice being appended to when rhs is
// append(x, ...) with x a plain identifier, nil otherwise.
func appendDest(pass *Pass, rhs ast.Expr) types.Object {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) == 0 {
		return nil
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		return pass.Info.Uses[id]
	}
	return nil
}

func isAppendCall(pass *Pass, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	return ok && isBuiltin(pass, call.Fun, "append")
}

func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// isOutputWrite reports whether the call emits bytes to an output stream: a
// method named Write/WriteString/WriteByte/WriteRune/Fprint* on any
// receiver, or an fmt print function.
func isOutputWrite(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn := pkgFunc(pass, sel); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return true
		}
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		// Only count it when it is a method call, not e.g. a local func.
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return true
		}
	}
	return false
}

// pkgFunc resolves a selector to a package-level function, nil otherwise.
func pkgFunc(pass *Pass, sel *ast.SelectorExpr) *types.Func {
	if _, isSel := pass.Info.Selections[sel]; isSel {
		return nil // method or field, not a package function
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	return fn
}

// sortedAfter reports whether obj is passed to a sort.*/slices.Sort* call
// positioned after the range statement within the same function body.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := pkgFunc(pass, sel)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
