package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CheckedMul flags raw `*` and `+` arithmetic on repetition-vector, rate,
// and token-count expressions inside the exact-arithmetic packages
// (internal/sdf, internal/sched, internal/num). TNSE and bufmem are products
// of per-firing rates and repetition counts; on large multirate graphs those
// products overflow int64 while every individual factor still looks small,
// and a silently wrapped product corrupts every downstream stage. Such sites
// must go through num.CheckedMul / num.CheckedAdd and surface
// num.ErrOverflow.
//
// A "rate expression" is recognized structurally: an index into a
// Repetitions vector, a call to TNSE, or a Prod/Cons/Delay/Words field read
// on an Edge. Copying a rate into a plain local first is an explicit
// acknowledgement that the surrounding arithmetic is range-checked by other
// means, and is how saturating hot paths (e.g. the loop-aware simulator's
// closed forms) opt out.
var CheckedMul = &Analyzer{
	Name:     "checkedmul",
	Doc:      "rate and token-count arithmetic must use num.CheckedMul/CheckedAdd",
	Packages: []string{"internal/sdf", "internal/sched", "internal/num"},
	Run:      runCheckedMul,
}

func runCheckedMul(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.MUL && n.Op != token.ADD {
					return true
				}
				if isRateExpr(pass, n.X) || isRateExpr(pass, n.Y) {
					reportChecked(pass, n.OpPos, n.Op)
				}
			case *ast.AssignStmt:
				if n.Tok != token.MUL_ASSIGN && n.Tok != token.ADD_ASSIGN {
					return true
				}
				for _, rhs := range n.Rhs {
					if isRateExpr(pass, rhs) {
						op := token.MUL
						if n.Tok == token.ADD_ASSIGN {
							op = token.ADD
						}
						reportChecked(pass, n.TokPos, op)
					}
				}
			}
			return true
		})
	}
}

func reportChecked(pass *Pass, pos token.Pos, op token.Token) {
	helper := "num.CheckedMul"
	if op == token.ADD {
		helper = "num.CheckedAdd"
	}
	pass.Reportf(pos, "unchecked %q on a rate/token-count expression can overflow int64; use %s", op, helper)
}

// isRateExpr reports whether e directly denotes a rate or token-count
// quantity (see the analyzer doc for the recognized shapes).
func isRateExpr(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		return isNamed(pass.TypeOf(e.X), "Repetitions")
	case *ast.CallExpr:
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			return fun.Name == "TNSE"
		case *ast.SelectorExpr:
			return fun.Sel.Name == "TNSE"
		}
	case *ast.SelectorExpr:
		s, ok := pass.Info.Selections[e]
		if !ok || s.Kind() != types.FieldVal {
			return false
		}
		switch e.Sel.Name {
		case "Prod", "Cons", "Delay", "Words":
			return isNamed(s.Recv(), "Edge")
		}
	}
	return false
}

// isNamed reports whether t (or its pointee) is a defined type with the
// given name. Matching by name rather than by canonical package keeps the
// analyzer testable against self-contained fixtures while still matching
// sdf.Repetitions and sdf.Edge in the real tree.
func isNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == name
}
