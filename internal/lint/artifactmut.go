package lint

// ArtifactMut enforces the core contract of the incremental-compilation
// story: once a pass artifact is published (into the plan DAG, the in-memory
// cache, or the persistent node store), nothing downstream may write through
// it. A cache hit hands out the same object to every consumer; one aliased
// write poisons every later hit.
//
// The analyzer computes, for every function in the module, a summary of the
// parameters it may write *through* (a write that crosses a pointer, slice,
// or map — a plain field write on a by-value parameter mutates only the
// callee's copy and is fine). Summaries propagate up the callgraph: a
// function that passes its own parameter into a writing parameter of a callee
// writes through that parameter too. Then every function reachable from the
// artifact-publishing roots (pass.Plan.Run, RunGrid/RunGridOutcomes, and the
// nodestore decode functions) is checked: a write through a value whose
// access path passes through an artifact type — received as a parameter,
// receiver, or call result — is reported at the mutation site, with the call
// path that reaches it named in the message.
//
// Construction is exempt by design: writes whose access path roots at a
// composite literal or make() in the same function build a fresh artifact
// that nobody shares yet.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

var ArtifactMut = &Analyzer{
	Name: "artifactmut",
	Doc:  "no function reachable from plan execution or store decode may mutate a published artifact",
	Packages: []string{
		"internal/pass", "internal/nodestore", "internal/service",
	},
	RunModule: runArtifactMut,
}

// artifactTypeSpecs names the artifact types by (package-path suffix, type
// name); resolution against the loaded module keeps the analyzer independent
// of the module's import-path prefix, so fixtures exercise the same matching.
var artifactTypeSpecs = []struct{ pkg, name string }{
	{"internal/pass", "Repetitions"},
	{"internal/pass", "Order"},
	{"internal/pass", "LoopedSchedule"},
	{"internal/pass", "Lifetimes"},
	{"internal/pass", "Allocation"},
	{"internal/service", "Artifact"},
}

// artifactRootSpecs names the functions artifacts flow out of: the plan
// executor (its node outputs are shared by every grid point and the service
// cache) and the store decoders (their results are handed to every warm hit).
var artifactRootSpecs = []struct{ pkg, recv, name string }{
	{"internal/pass", "Plan", "Run"},
	{"internal/pass", "", "RunGrid"},
	{"internal/pass", "", "RunGridOutcomes"},
	{"internal/pass", "", "decodeRep"},
	{"internal/pass", "", "decodeOrder"},
	{"internal/pass", "", "decodeSched"},
	{"internal/pass", "", "decodeLife"},
	{"internal/pass", "", "decodeAlloc"},
}

const (
	amRecvParam = -1 // receiver, as a parameter index
	amNoParam   = -2 // inbound but not parameter-rooted (artifact call result)
)

// amTaint records where a local binding's value came from.
type amTaint struct {
	param    int        // amRecvParam, a parameter index, or amNoParam
	inbound  bool       // derived from a parameter, receiver, or artifact-typed call result
	artifact types.Type // artifact type on the access path, if any
}

// amWrite is one assignment through a selector/index chain.
type amWrite struct {
	pos     token.Pos
	expr    string // rendered write target, for diagnostics
	taint   amTaint
	crossed bool // the access path crosses a pointer, slice, or map
}

// amArg is one call argument whose value is worth tracking.
type amArg struct {
	param    int // caller parameter the argument roots at, or amNoParam
	inbound  bool
	artifact types.Type
}

// amCall is one statically resolved call with tracked arguments, keyed by the
// callee's parameter index (amRecvParam for the receiver).
type amCall struct {
	pos    token.Pos
	callee *types.Func
	args   map[int]amArg
}

// amFacts is the per-function analysis result.
type amFacts struct {
	fn     *types.Func
	writes []amWrite
	calls  []amCall
}

// amSite is where a (possibly transitive) write through a parameter lands.
type amSite struct {
	pos   token.Pos
	expr  string
	chain []*types.Func // functions from the summarized one down to the writer
}

type amAnalysis struct {
	pass      *ModulePass
	artifacts map[*types.Named]bool
	facts     map[*types.Func]*amFacts
	// summary[fn][i] is a representative mutation site for "fn writes
	// through parameter i" (i == amRecvParam for the receiver).
	summary map[*types.Func]map[int]amSite
}

func runArtifactMut(pass *ModulePass) {
	a := &amAnalysis{
		pass:      pass,
		artifacts: make(map[*types.Named]bool),
		facts:     make(map[*types.Func]*amFacts),
		summary:   make(map[*types.Func]map[int]amSite),
	}
	for _, spec := range artifactTypeSpecs {
		for _, pkg := range pass.Module.Packages {
			if !pathHasSuffix(pkg.Path, spec.pkg) {
				continue
			}
			if obj, ok := pkg.Types.Scope().Lookup(spec.name).(*types.TypeName); ok {
				if n, ok := obj.Type().(*types.Named); ok {
					a.artifacts[n] = true
				}
			}
		}
	}
	var roots []*types.Func
	for _, spec := range artifactRootSpecs {
		if fn := pass.Module.LookupFunc(spec.pkg, spec.recv, spec.name); fn != nil {
			roots = append(roots, fn)
		}
	}
	if len(a.artifacts) == 0 || len(roots) == 0 {
		return
	}

	for _, fn := range pass.Module.Functions() {
		a.facts[fn] = a.analyzeFunc(fn)
	}
	a.buildSummaries()
	a.report(pass.Module.Reachable(roots))
}

// artifactOf returns the artifact named type behind t (through one pointer),
// or nil.
func (a *amAnalysis) artifactOf(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && a.artifacts[n] {
		return n
	}
	return nil
}

// analyzeFunc walks one declared function (nested literals included — their
// effects belong to the enclosing function) and collects its writes and
// statically resolved calls.
func (a *amAnalysis) analyzeFunc(fn *types.Func) *amFacts {
	fd := a.pass.Module.Decl(fn)
	facts := &amFacts{fn: fn}
	pkg := fd.Pkg
	taint := make(map[types.Object]amTaint)
	sig := fn.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		taint[r] = amTaint{param: amRecvParam, inbound: true, artifact: a.artifactOf(r.Type())}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		taint[p] = amTaint{param: i, inbound: true, artifact: a.artifactOf(p.Type())}
	}

	// Two passes over the bindings so a taint introduced late still reaches
	// an alias bound earlier in an inner scope; writes are collected on the
	// second pass only.
	for round := 0; round < 2; round++ {
		collect := round == 1
		ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				a.bindAssign(pkg, taint, n)
				if collect {
					for _, lhs := range n.Lhs {
						if w, ok := a.writeTarget(pkg, taint, lhs); ok {
							facts.writes = append(facts.writes, w)
						}
					}
				}
			case *ast.IncDecStmt:
				if collect {
					if w, ok := a.writeTarget(pkg, taint, n.X); ok {
						facts.writes = append(facts.writes, w)
					}
				}
			case *ast.RangeStmt:
				a.bindRange(pkg, taint, n)
			case *ast.CallExpr:
				if collect {
					a.collectCall(pkg, taint, facts, n)
				}
			}
			return true
		})
	}
	sort.Slice(facts.writes, func(i, j int) bool { return facts.writes[i].pos < facts.writes[j].pos })
	sort.Slice(facts.calls, func(i, j int) bool { return facts.calls[i].pos < facts.calls[j].pos })
	return facts
}

// bindAssign propagates taint through := and = bindings of plain identifiers.
func (a *amAnalysis) bindAssign(pkg *Package, taint map[types.Object]amTaint, as *ast.AssignStmt) {
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pkg.Info.Defs[id]
			if obj == nil {
				obj = pkg.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if t, ok := a.exprTaint(pkg, taint, as.Rhs[i]); ok {
				taint[obj] = t
			}
		}
		return
	}
	// Multi-value form: x, err := f(...). Taint each binding whose
	// corresponding result type is an artifact.
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return
	}
	tup, ok := tv.Type.(*types.Tuple)
	if !ok || tup.Len() != len(as.Lhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		art := a.artifactOf(tup.At(i).Type())
		if obj != nil && art != nil {
			taint[obj] = amTaint{param: amNoParam, inbound: true, artifact: art}
		}
	}
}

// bindRange taints the value (and key) bindings of a range over a tainted
// collection: their elements alias the collection's backing store.
func (a *amAnalysis) bindRange(pkg *Package, taint map[types.Object]amTaint, rs *ast.RangeStmt) {
	t, ok := a.exprTaint(pkg, taint, rs.X)
	if !ok || !t.inbound {
		return
	}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pkg.Info.Defs[id]; obj != nil {
				taint[obj] = t
			}
		}
	}
}

// exprTaint evaluates the taint of an expression used as a value: a
// selector/index/deref/& chain over a tainted root, or an artifact-typed
// call result.
func (a *amAnalysis) exprTaint(pkg *Package, taint map[types.Object]amTaint, e ast.Expr) (amTaint, bool) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if art := a.artifactOf(pkg.Info.TypeOf(call)); art != nil {
			return amTaint{param: amNoParam, inbound: true, artifact: art}, true
		}
		return amTaint{}, false
	}
	root, art, ok := a.chainRoot(pkg, e)
	if !ok || root == nil {
		return amTaint{}, false
	}
	rt, ok := taint[root]
	if !ok || !rt.inbound {
		return amTaint{}, false
	}
	if rt.artifact != nil {
		art = rt.artifact
	}
	return amTaint{param: rt.param, inbound: true, artifact: art}, true
}

// chainRoot resolves a selector/index/deref/& chain to its root identifier's
// object and reports any artifact type found along the path (the types of
// every sub-expression, the full expression included).
func (a *amAnalysis) chainRoot(pkg *Package, e ast.Expr) (types.Object, types.Type, bool) {
	e = ast.Unparen(e)
	art := a.artifactOf(pkg.Info.TypeOf(e))
	switch e := e.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		return obj, art, obj != nil
	case *ast.SelectorExpr:
		// Skip qualified identifiers (pkg.Var) and method values.
		if sel, ok := pkg.Info.Selections[e]; !ok || sel.Kind() != types.FieldVal {
			return nil, nil, false
		}
		root, sub, ok := a.chainRoot(pkg, e.X)
		if sub != nil {
			art = sub
		}
		return root, art, ok
	case *ast.IndexExpr:
		root, sub, ok := a.chainRoot(pkg, e.X)
		if sub != nil {
			art = sub
		}
		return root, art, ok
	case *ast.StarExpr:
		root, sub, ok := a.chainRoot(pkg, e.X)
		if sub != nil {
			art = sub
		}
		return root, art, ok
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return nil, nil, false
		}
		return a.chainRoot(pkg, e.X)
	}
	return nil, nil, false
}

// crosses reports whether accessing one step below a value of type t reaches
// shared memory: through a pointer, slice, or map (array values and plain
// struct fields stay inside the local copy).
func crosses(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// writeTarget classifies one assignment target. A plain identifier rebinds a
// variable and is never a write-through; everything else is a chain whose
// final step determines whether the write lands in shared memory.
func (a *amAnalysis) writeTarget(pkg *Package, taint map[types.Object]amTaint, lhs ast.Expr) (amWrite, bool) {
	lhs = ast.Unparen(lhs)
	var base ast.Expr
	crossed := false
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[l]; !ok || sel.Kind() != types.FieldVal {
			return amWrite{}, false
		}
		base = l.X
		crossed = crosses(pkg.Info.TypeOf(l.X))
	case *ast.IndexExpr:
		base = l.X
		crossed = crosses(pkg.Info.TypeOf(l.X))
	case *ast.StarExpr:
		base = l.X
		crossed = true
	default:
		return amWrite{}, false
	}
	t, ok := a.exprTaint(pkg, taint, base)
	if !ok {
		// Untainted root (fresh local, package var): still record the write
		// when the chain itself crosses — the inner chain may carry taint
		// through a deeper selector; exprTaint already covers that, so an
		// untainted root is simply not a finding.
		return amWrite{}, false
	}
	if !crossed {
		// The final step stays inside a local copy; but a deeper step of the
		// base chain may itself cross (e.g. p.ptr.field = x has base p.ptr,
		// whose type is a pointer — caught above). Walk the base chain for
		// crossings.
		crossed = a.chainCrosses(pkg, base)
	}
	return amWrite{pos: lhs.Pos(), expr: types.ExprString(lhs), taint: t, crossed: crossed}, true
}

// chainCrosses reports whether any step inside the chain dereferences a
// pointer, slice, or map.
func (a *amAnalysis) chainCrosses(pkg *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return crosses(pkg.Info.TypeOf(e.X)) || a.chainCrosses(pkg, e.X)
	case *ast.IndexExpr:
		return crosses(pkg.Info.TypeOf(e.X)) || a.chainCrosses(pkg, e.X)
	case *ast.StarExpr:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.AND && a.chainCrosses(pkg, e.X)
	}
	return false
}

// collectCall records one statically resolved call with the taint of each
// argument, keyed by callee parameter index. The builtins delete and copy
// mutate their first argument and are recorded as direct writes instead.
func (a *amAnalysis) collectCall(pkg *Package, taint map[types.Object]amTaint, facts *amFacts, call *ast.CallExpr) {
	var callee *types.Func
	var recvExpr ast.Expr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok {
			if (b.Name() == "delete" || b.Name() == "copy") && len(call.Args) > 0 {
				if t, ok := a.exprTaint(pkg, taint, call.Args[0]); ok {
					facts.writes = append(facts.writes, amWrite{
						pos: call.Pos(), expr: types.ExprString(call.Args[0]), taint: t, crossed: true,
					})
				}
			}
			return
		}
		callee, _ = pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				callee = fn
				recvExpr = fun.X
			}
		} else if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			callee = fn // qualified package function
		}
	}
	if callee == nil || a.pass.Module.Decl(callee) == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	args := make(map[int]amArg)
	record := func(idx int, e ast.Expr) {
		t, ok := a.exprTaint(pkg, taint, e)
		if !ok {
			return
		}
		if _, exists := args[idx]; !exists && (t.inbound || t.artifact != nil) {
			args[idx] = amArg{param: t.param, inbound: t.inbound, artifact: t.artifact}
		}
	}
	if recvExpr != nil && sig.Recv() != nil {
		record(amRecvParam, recvExpr)
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		idx := i
		if sig.Variadic() && idx >= np-1 {
			idx = np - 1
		}
		if idx >= np {
			break
		}
		record(idx, arg)
	}
	if len(args) > 0 {
		facts.calls = append(facts.calls, amCall{pos: call.Pos(), callee: callee, args: args})
	}
}

// buildSummaries computes the writes-through-parameter fixpoint: direct
// crossing writes seed the summaries, then call sites propagate them up until
// nothing changes. Each summary keeps one representative mutation site with
// the function chain that reaches it.
func (a *amAnalysis) buildSummaries() {
	fns := a.pass.Module.Functions()
	for _, fn := range fns {
		for _, w := range a.facts[fn].writes {
			if !w.crossed || w.taint.param == amNoParam {
				continue
			}
			m := a.summary[fn]
			if m == nil {
				m = make(map[int]amSite)
				a.summary[fn] = m
			}
			if _, ok := m[w.taint.param]; !ok {
				m[w.taint.param] = amSite{pos: w.pos, expr: w.expr, chain: []*types.Func{fn}}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			for _, call := range a.facts[fn].calls {
				calleeSum := a.summary[call.callee]
				if len(calleeSum) == 0 {
					continue
				}
				for _, idx := range sortedParams(calleeSum) {
					arg, ok := call.args[idx]
					if !ok || arg.param == amNoParam || !arg.inbound {
						continue
					}
					m := a.summary[fn]
					if m == nil {
						m = make(map[int]amSite)
						a.summary[fn] = m
					}
					if _, ok := m[arg.param]; ok {
						continue
					}
					site := calleeSum[idx]
					m[arg.param] = amSite{
						pos:   site.pos,
						expr:  site.expr,
						chain: append([]*types.Func{fn}, site.chain...),
					}
					changed = true
				}
			}
		}
	}
}

func sortedParams(m map[int]amSite) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// report walks every reachable function and flags (a) direct crossing writes
// through an artifact access path and (b) calls that pass an artifact (or
// artifact interior) into a parameter the callee writes through. Each
// mutation site is reported once, under the first call path that reaches it.
func (a *amAnalysis) report(reach *Reachability) {
	seen := make(map[token.Pos]bool)
	for _, fn := range a.pass.Module.Functions() {
		if !reach.Contains(fn) {
			continue
		}
		facts := a.facts[fn]
		for _, w := range facts.writes {
			if !w.crossed || !w.taint.inbound || w.taint.artifact == nil || seen[w.pos] {
				continue
			}
			seen[w.pos] = true
			a.pass.Reportf(w.pos,
				"%s writes through published artifact %s via %s (reached by %s); artifacts are immutable after publication — build a fresh value instead",
				FuncDisplayName(fn), typeShortName(w.taint.artifact), w.expr, reach.Path(fn))
		}
		for _, call := range facts.calls {
			calleeSum := a.summary[call.callee]
			if len(calleeSum) == 0 {
				continue
			}
			for _, idx := range sortedParams(calleeSum) {
				arg, ok := call.args[idx]
				if !ok || !arg.inbound || arg.artifact == nil {
					continue
				}
				site := calleeSum[idx]
				if seen[site.pos] {
					continue
				}
				seen[site.pos] = true
				a.pass.Reportf(site.pos,
					"%s writes through published artifact %s via %s (reached by %s); artifacts are immutable after publication — build a fresh value instead",
					FuncDisplayName(site.chain[len(site.chain)-1]), typeShortName(arg.artifact), site.expr,
					joinPath(reach.Path(fn), site.chain))
			}
		}
	}
}

// joinPath appends the summary chain (callee first, writer last) to the root
// path reaching the call site's enclosing function.
func joinPath(rootPath string, chain []*types.Func) string {
	out := rootPath
	for _, fn := range chain {
		out += " -> " + FuncDisplayName(fn)
	}
	return out
}

// typeShortName renders a named type as pkg.Name.
func typeShortName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		pkg := ""
		if n.Obj().Pkg() != nil {
			pkg = n.Obj().Pkg().Name() + "."
		}
		return pkg + n.Obj().Name()
	}
	return t.String()
}
