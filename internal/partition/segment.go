package partition

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/lifetime"
	"repro/internal/num"
	"repro/internal/sdf"
)

// SharedWorker marks the cross-worker segment in Segment.Worker.
const SharedWorker = -1

// Segment is one region of the combined memory image: a private region for
// one worker's intra-partition edges, or the single shared region holding
// every cross-worker edge. Segments are laid out back to back — workers
// 0..P-1 first, the shared segment last.
type Segment struct {
	// Worker owns the segment, or SharedWorker for the cross-worker one.
	Worker int
	// Base is the segment's start offset in the combined image.
	Base int64
	// Cells is the segment's packed extent (first-fit total).
	Cells int64
}

// SegAlloc is the per-segment storage allocation of a phased schedule:
// every edge buffer gets a lifetime interval on the phase axis, intervals
// are grouped by segment (the owning worker for intra-worker edges, the
// shared segment for cross-worker ones), and each group is packed
// independently by first-fit. Cross-segment sharing is deliberately
// impossible — a worker's private segment is never touched by another
// goroutine, which is what makes the phased executors race-free.
type SegAlloc struct {
	// Intervals holds the phase-axis lifetime per edge (indexed by edge ID).
	Intervals []*lifetime.Interval
	// EdgeSeg maps each edge to its index in Segments.
	EdgeSeg []int
	// Offsets is each edge buffer's absolute offset in the combined image
	// (segment base + first-fit placement).
	Offsets []int64
	// Sizes is each edge buffer's extent in cells: (delay + TNSE) * words,
	// enough for the worst case of a producer's whole period completing
	// before the consumer starts.
	Sizes []int64
	// Segments lists worker segments 0..P-1 followed by the shared segment.
	Segments []Segment
	// Total is the combined image extent (sum of segment cells).
	Total int64
}

// Offset returns the absolute offset of an edge's buffer.
func (sa *SegAlloc) Offset(e sdf.EdgeID) int64 { return sa.Offsets[e] }

// Size returns an edge buffer's extent in cells.
func (sa *SegAlloc) Size(e sdf.EdgeID) int64 { return sa.Sizes[e] }

// SharedIndex returns the shared segment's index in Segments.
func (sa *SegAlloc) SharedIndex() int { return len(sa.Segments) - 1 }

// EdgeIntervals derives every edge's phase-axis lifetime interval and
// buffer size for a partitioning. Pure arithmetic over (graph, q, phases) —
// the store decode path calls it instead of persisting intervals.
//
// The lifetime model: a delayless edge (always a precedence edge) is written
// during its producer's phase and drained during its consumer's strictly
// later phase, so it is live on [phase(src), phase(dst)]. An edge with
// initial tokens is live from time zero (the tokens exist before the first
// firing) and, conservatively, for the whole period — delay-broken edges
// never return to empty mid-period and delayed precedence edges keep their
// delay tokens across the period boundary.
func EdgeIntervals(g *sdf.Graph, q sdf.Repetitions, part *Partitioned) ([]*lifetime.Interval, []int64, error) {
	ivs := make([]*lifetime.Interval, g.NumEdges())
	sizes := make([]int64, g.NumEdges())
	for _, e := range g.Edges() {
		tnse, err := sdf.TNSE(g, q, e.ID)
		if err != nil {
			return nil, nil, fmt.Errorf("partition: edge %d: %w", e.ID, err)
		}
		tokens, err := num.CheckedAdd(e.Delay, tnse)
		if err != nil {
			return nil, nil, fmt.Errorf("partition: edge %d size: %w", e.ID, err)
		}
		words := e.Words
		if words < 1 {
			words = 1
		}
		size, err := num.CheckedMul(tokens, words)
		if err != nil {
			return nil, nil, fmt.Errorf("partition: edge %d size: %w", e.ID, err)
		}
		name := g.Actor(e.Src).Name + "->" + g.Actor(e.Dst).Name
		iv := &lifetime.Interval{Name: name, Size: size}
		if e.Delay == 0 {
			iv.Start = int64(part.PhaseOf[e.Src])
			iv.Dur = int64(part.PhaseOf[e.Dst]-part.PhaseOf[e.Src]) + 1
		} else {
			iv.Start = 0
			iv.Dur = int64(part.NumPhases)
		}
		if err := iv.Validate(); err != nil {
			return nil, nil, fmt.Errorf("partition: edge %d: %w", e.ID, err)
		}
		ivs[e.ID] = iv
		sizes[e.ID] = size
	}
	return ivs, sizes, nil
}

// Allocate packs every edge buffer into its segment by first-fit over the
// phase-axis intervals. Intra-worker edges (both endpoints on one worker)
// go to that worker's private segment; everything else goes to the shared
// segment. Buffers sharing cells within a segment never overlap in phase
// time, so with barrier-separated phases the packing is race-free.
func Allocate(g *sdf.Graph, q sdf.Repetitions, part *Partitioned) (*SegAlloc, error) {
	ivs, sizes, err := EdgeIntervals(g, q, part)
	if err != nil {
		return nil, err
	}
	numSegs := part.P + 1
	shared := numSegs - 1
	edgeSeg := make([]int, g.NumEdges())
	groups := make([][]*lifetime.Interval, numSegs)
	for _, e := range g.Edges() {
		si := shared
		if part.Assign[e.Src] == part.Assign[e.Dst] {
			si = part.Assign[e.Src]
		}
		edgeSeg[e.ID] = si
		groups[si] = append(groups[si], ivs[e.ID])
	}

	segments := make([]Segment, numSegs)
	offsets := make([]int64, g.NumEdges())
	var base int64
	for si := range segments {
		worker := si
		if si == shared {
			worker = SharedWorker
		}
		segments[si] = Segment{Worker: worker, Base: base}
		if len(groups[si]) == 0 {
			continue
		}
		a := alloc.Allocate(groups[si], alloc.FirstFitDuration)
		segments[si].Cells = a.Total
		for _, e := range g.Edges() {
			if edgeSeg[e.ID] != si {
				continue
			}
			off, ok := a.OffsetOf(ivs[e.ID])
			if !ok {
				return nil, fmt.Errorf("partition: edge %d missing from segment %d allocation", e.ID, si)
			}
			offsets[e.ID] = base + off
		}
		if base, err = num.CheckedAdd(base, a.Total); err != nil {
			return nil, fmt.Errorf("partition: segment layout: %w", err)
		}
	}

	return &SegAlloc{
		Intervals: ivs,
		EdgeSeg:   edgeSeg,
		Offsets:   offsets,
		Sizes:     sizes,
		Segments:  segments,
		Total:     base,
	}, nil
}

// RebuildSeg reconstructs a SegAlloc from its persisted projection (the
// store codec's decode path): the per-edge segment routing and absolute
// offsets plus the per-segment extents, with intervals and sizes re-derived
// arithmetically. It validates routing against the partitioning and bounds
// every buffer inside its segment, but does not re-run first-fit — the
// stored offsets are authoritative.
func RebuildSeg(g *sdf.Graph, q sdf.Repetitions, part *Partitioned, edgeSeg []int, offsets []int64, segments []Segment, total int64) (*SegAlloc, error) {
	ivs, sizes, err := EdgeIntervals(g, q, part)
	if err != nil {
		return nil, err
	}
	if len(edgeSeg) != g.NumEdges() || len(offsets) != g.NumEdges() {
		return nil, fmt.Errorf("partition: segalloc rebuild length mismatch (%d edges)", g.NumEdges())
	}
	if len(segments) != part.P+1 {
		return nil, fmt.Errorf("partition: %d segments for %d workers", len(segments), part.P)
	}
	shared := part.P
	var sum int64
	for si, s := range segments {
		wantWorker := si
		if si == shared {
			wantWorker = SharedWorker
		}
		if s.Worker != wantWorker {
			return nil, fmt.Errorf("partition: segment %d owned by worker %d, want %d", si, s.Worker, wantWorker)
		}
		if s.Base != sum || s.Cells < 0 {
			return nil, fmt.Errorf("partition: segment %d layout (base %d, cells %d, expected base %d)",
				si, s.Base, s.Cells, sum)
		}
		if sum, err = num.CheckedAdd(sum, s.Cells); err != nil {
			return nil, fmt.Errorf("partition: segment layout: %w", err)
		}
	}
	if sum != total {
		return nil, fmt.Errorf("partition: segment cells sum to %d, total says %d", sum, total)
	}
	for _, e := range g.Edges() {
		si := shared
		if part.Assign[e.Src] == part.Assign[e.Dst] {
			si = part.Assign[e.Src]
		}
		if edgeSeg[e.ID] != si {
			return nil, fmt.Errorf("partition: edge %d routed to segment %d, want %d", e.ID, edgeSeg[e.ID], si)
		}
		s := segments[si]
		if offsets[e.ID] < s.Base || offsets[e.ID]+sizes[e.ID] > s.Base+s.Cells {
			return nil, fmt.Errorf("partition: edge %d buffer [%d,%d) outside segment %d [%d,%d)",
				e.ID, offsets[e.ID], offsets[e.ID]+sizes[e.ID], si, s.Base, s.Base+s.Cells)
		}
	}
	return &SegAlloc{
		Intervals: ivs,
		EdgeSeg:   edgeSeg,
		Offsets:   offsets,
		Sizes:     sizes,
		Segments:  segments,
		Total:     total,
	}, nil
}
