package partition_test

import (
	"reflect"
	"testing"

	"repro/internal/partition"
	"repro/internal/sdf"
	"repro/internal/systems"
)

// prep compiles the scheduling prefix a partitioning needs: repetitions and
// a topological order.
func prep(t *testing.T, g *sdf.Graph) (sdf.Repetitions, []sdf.ActorID) {
	t.Helper()
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopologicalSort(q)
	if err != nil {
		t.Fatal(err)
	}
	return q, order
}

// checkInvariants asserts the structural partition invariants directly:
// every actor fires exactly q(a) times in exactly one (phase, worker) slot,
// precedence edges cross phases forward, and same-phase edges stay on one
// worker.
func checkInvariants(t *testing.T, g *sdf.Graph, q sdf.Repetitions, p *partition.Partitioned, label string) {
	t.Helper()
	seen := make([]int, g.NumActors())
	for ph, phase := range p.Phases {
		if len(phase.Workers) != p.P {
			t.Fatalf("%s: phase %d has %d worker lists, want %d", label, ph, len(phase.Workers), p.P)
		}
		for w, blocks := range phase.Workers {
			for _, blk := range blocks {
				seen[blk.Actor]++
				if blk.Count != q.Q(blk.Actor) {
					t.Errorf("%s: actor %d fires %d times, q says %d", label, blk.Actor, blk.Count, q.Q(blk.Actor))
				}
				if p.PhaseOf[blk.Actor] != ph || p.Assign[blk.Actor] != w {
					t.Errorf("%s: actor %d scheduled at (%d,%d), maps say (%d,%d)",
						label, blk.Actor, ph, w, p.PhaseOf[blk.Actor], p.Assign[blk.Actor])
				}
			}
		}
	}
	for a, n := range seen {
		if n != 1 {
			t.Errorf("%s: actor %d appears in %d blocks, want exactly 1", label, a, n)
		}
	}
	for _, e := range g.Edges() {
		if sdf.PrecedenceEdge(g, q, e.ID) && p.PhaseOf[e.Dst] <= p.PhaseOf[e.Src] {
			t.Errorf("%s: precedence edge %d does not cross phases (%d -> %d)",
				label, e.ID, p.PhaseOf[e.Src], p.PhaseOf[e.Dst])
		}
		if p.PhaseOf[e.Src] == p.PhaseOf[e.Dst] && p.Assign[e.Src] != p.Assign[e.Dst] {
			t.Errorf("%s: same-phase edge %d spans workers %d and %d",
				label, e.ID, p.Assign[e.Src], p.Assign[e.Dst])
		}
	}
}

func TestRunSingleWorker(t *testing.T) {
	g := systems.CDDAT()
	q, order := prep(t, g)
	p, err := partition.Run(g, q, order, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 1 {
		t.Fatalf("P = %d, want 1", p.P)
	}
	for a, w := range p.Assign {
		if w != 0 {
			t.Errorf("actor %d on worker %d with a single worker", a, w)
		}
	}
	checkInvariants(t, g, q, p, "cddat/p1")
}

func TestRunTable1Invariants(t *testing.T) {
	for _, g := range systems.Table1Systems() {
		q, order := prep(t, g)
		for _, workers := range []int{2, 4} {
			p, err := partition.Run(g, q, order, workers)
			if err != nil {
				t.Fatalf("%s/p%d: %v", g.Name, workers, err)
			}
			checkInvariants(t, g, q, p, g.Name)
			var total int64
			for _, l := range p.Load {
				if l < 0 {
					t.Errorf("%s/p%d: negative worker load %d", g.Name, workers, l)
				}
				total += l
			}
			if total == 0 {
				t.Errorf("%s/p%d: zero total load", g.Name, workers)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	g := systems.SatelliteReceiver()
	q, order := prep(t, g)
	a, err := partition.Run(g, q, order, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := partition.Run(g, q, order, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical Run calls produced different partitionings")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	g := systems.CDDAT()
	q, order := prep(t, g)
	if _, err := partition.Run(g, q, order, 0); err == nil {
		t.Error("worker count 0 accepted")
	}
	if _, err := partition.Run(g, q, order[:1], 2); err == nil {
		t.Error("truncated order accepted")
	}
	bad := append([]sdf.ActorID(nil), order...)
	bad[0] = bad[1] // duplicate: not a permutation
	if _, err := partition.Run(g, q, bad, 2); err == nil {
		t.Error("non-permutation order accepted")
	}
}

func TestRebuildRoundTrip(t *testing.T) {
	for _, g := range systems.Table1Systems() {
		q, order := prep(t, g)
		p, err := partition.Run(g, q, order, 4)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		r, err := partition.Rebuild(g, q, order, p.P, p.Assign, p.PhaseOf)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", g.Name, err)
		}
		if !reflect.DeepEqual(p, r) {
			t.Errorf("%s: rebuild differs from the original partitioning", g.Name)
		}
	}
}

func TestRebuildRejectsCorruption(t *testing.T) {
	g := systems.SatelliteReceiver()
	q, order := prep(t, g)
	p, err := partition.Run(g, q, order, 2)
	if err != nil {
		t.Fatal(err)
	}

	badAssign := append([]int(nil), p.Assign...)
	badAssign[0] = 7 // out of [0, P)
	if _, err := partition.Rebuild(g, q, order, p.P, badAssign, p.PhaseOf); err == nil {
		t.Error("out-of-range worker assignment accepted")
	}

	// Collapse every phase to 0: precedence edges no longer cross phases.
	flat := make([]int, len(p.PhaseOf))
	if _, err := partition.Rebuild(g, q, order, p.P, p.Assign, flat); err == nil {
		t.Error("phase map violating precedence accepted")
	}
}

func TestAllocateSegmentLayout(t *testing.T) {
	for _, g := range systems.Table1Systems() {
		q, order := prep(t, g)
		p, err := partition.Run(g, q, order, 3)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		seg, err := partition.Allocate(g, q, p)
		if err != nil {
			t.Fatalf("%s: allocate: %v", g.Name, err)
		}
		if len(seg.Segments) != p.P+1 {
			t.Fatalf("%s: %d segments for %d workers", g.Name, len(seg.Segments), p.P)
		}
		var sum int64
		for si, s := range seg.Segments {
			wantWorker := si
			if si == seg.SharedIndex() {
				wantWorker = partition.SharedWorker
			}
			if s.Worker != wantWorker {
				t.Errorf("%s: segment %d owned by %d, want %d", g.Name, si, s.Worker, wantWorker)
			}
			if s.Base != sum {
				t.Errorf("%s: segment %d base %d, want %d (segments must be back to back)",
					g.Name, si, s.Base, sum)
			}
			sum += s.Cells
		}
		if sum != seg.Total {
			t.Errorf("%s: segment cells sum to %d, Total says %d", g.Name, sum, seg.Total)
		}
		for _, e := range g.Edges() {
			si := seg.EdgeSeg[e.ID]
			wantSeg := seg.SharedIndex()
			if p.Assign[e.Src] == p.Assign[e.Dst] {
				wantSeg = p.Assign[e.Src]
			}
			if si != wantSeg {
				t.Errorf("%s: edge %d routed to segment %d, want %d", g.Name, e.ID, si, wantSeg)
			}
			s := seg.Segments[si]
			if seg.Offset(e.ID) < s.Base || seg.Offset(e.ID)+seg.Size(e.ID) > s.Base+s.Cells {
				t.Errorf("%s: edge %d buffer [%d,%d) outside its segment [%d,%d)",
					g.Name, e.ID, seg.Offset(e.ID), seg.Offset(e.ID)+seg.Size(e.ID), s.Base, s.Base+s.Cells)
			}
		}
	}
}

func TestEdgeIntervalsPhaseAxis(t *testing.T) {
	g := systems.CDDAT()
	q, order := prep(t, g)
	p, err := partition.Run(g, q, order, 2)
	if err != nil {
		t.Fatal(err)
	}
	ivs, sizes, err := partition.EdgeIntervals(g, q, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		iv := ivs[e.ID]
		tnse, err := sdf.TNSE(g, q, e.ID)
		if err != nil {
			t.Fatal(err)
		}
		words := e.Words
		if words < 1 {
			words = 1
		}
		if want := (e.Delay + tnse) * words; sizes[e.ID] != want || iv.Size != want {
			t.Errorf("edge %d size %d/%d, want %d", e.ID, sizes[e.ID], iv.Size, want)
		}
		if e.Delay == 0 {
			if iv.Start != int64(p.PhaseOf[e.Src]) || iv.Start+iv.Dur-1 != int64(p.PhaseOf[e.Dst]) {
				t.Errorf("edge %d live [%d,%d), want [phase(src)=%d, phase(dst)=%d]",
					e.ID, iv.Start, iv.Start+iv.Dur, p.PhaseOf[e.Src], p.PhaseOf[e.Dst])
			}
		} else if iv.Start != 0 || iv.Dur != int64(p.NumPhases) {
			t.Errorf("delayed edge %d live [%d,%d), want the whole period [0,%d)",
				e.ID, iv.Start, iv.Start+iv.Dur, p.NumPhases)
		}
	}
}

func TestRebuildSegRoundTrip(t *testing.T) {
	g := systems.SatelliteReceiver()
	q, order := prep(t, g)
	p, err := partition.Run(g, q, order, 2)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := partition.Allocate(g, q, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := partition.RebuildSeg(g, q, p, seg.EdgeSeg, seg.Offsets, seg.Segments, seg.Total)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seg, r) {
		t.Error("rebuilt segmented allocation differs from the original")
	}

	badOff := append([]int64(nil), seg.Offsets...)
	badOff[0] = seg.Total + 100 // escapes every segment
	if _, err := partition.RebuildSeg(g, q, p, seg.EdgeSeg, badOff, seg.Segments, seg.Total); err == nil {
		t.Error("out-of-segment buffer offset accepted")
	}
	badSegs := append([]partition.Segment(nil), seg.Segments...)
	badSegs[0].Cells++ // breaks the back-to-back layout
	if _, err := partition.RebuildSeg(g, q, p, seg.EdgeSeg, seg.Offsets, badSegs, seg.Total); err == nil {
		t.Error("inconsistent segment layout accepted")
	}
}
