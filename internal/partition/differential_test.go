package partition_test

// Differential property tests for the partitioned parallel pipeline: over a
// population of random SDF graphs (delay-carrying edges included) and
// P in {1, 2, 4},
//
//   - compiling with Partitions <= 1 yields service artifact bytes identical
//     to the pre-partitioning pipeline's,
//   - compiling with Partitions >= 2 passes both the sequential and the
//     phased token-level verifiers (Verify: true runs both), and
//   - the phased float64 engine's observable behaviour is bit-identical to
//     the sequential engine's, period by period.
//
// The whole file is race-clean by construction and is part of the
// `make parallel` -race sweep.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/num"
	"repro/internal/randsdf"
	"repro/internal/runtime"
	"repro/internal/sdf"
	"repro/internal/service"
)

// diffFires builds per-engine actor behaviours with per-actor state: output
// token i of firing n carries the input sum plus i plus a per-actor stamp.
// Each engine gets its own closure set (the counters are engine-local), and
// a PhasedEngine invokes one actor's Fire from a single worker goroutine, so
// the closures satisfy its sharing contract.
func diffFires(g *sdf.Graph) map[sdf.ActorID]runtime.Fire {
	fires := map[sdf.ActorID]runtime.Fire{}
	for _, a := range g.Actors() {
		id := a.ID
		firing := 0
		fires[id] = func(inputs [][]float64) [][]float64 {
			var acc float64
			for _, in := range inputs {
				for _, v := range in {
					acc += v
				}
			}
			firing++
			outs := make([][]float64, len(g.Out(id)))
			for oi, eid := range g.Out(id) {
				vals := make([]float64, g.Edge(eid).Prod)
				for i := range vals {
					vals[i] = acc + float64(i) + float64(id+1)*0.5 + float64(firing)*0.25
				}
				outs[oi] = vals
			}
			return outs
		}
	}
	return fires
}

// TestPhasedDifferential is the pinned acceptance property: >= 200 random
// graphs, each compiled sequentially and at P in {2, 4} with full
// verification, plus the runtime trace comparison and the P=1 byte-identity
// check.
func TestPhasedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	trials := 200
	if testing.Short() {
		trials = 40
	}
	compiled := 0
	for i := 0; i < trials; i++ {
		g := randsdf.Graph(rng, randsdf.Config{
			Actors:    3 + rng.Intn(14),
			DelayProb: 0.4,
		})
		label := fmt.Sprintf("rand%d(%s)", i, g.Name)

		seq, err := core.Compile(g, core.Options{})
		if err != nil {
			// Random rate products can overflow the checked arithmetic;
			// those graphs are out of scope for every pipeline equally.
			if errors.Is(err, num.ErrOverflow) {
				continue
			}
			t.Fatalf("%s: sequential compile: %v", label, err)
		}

		// Partitions <= 1 must not perturb the artifact bytes.
		for _, p01 := range []int{0, 1} {
			res, err := core.Compile(g, core.Options{Partitions: p01})
			if err != nil {
				t.Fatalf("%s: compile with Partitions=%d: %v", label, p01, err)
			}
			if res.Partition != nil || res.Segmented != nil {
				t.Fatalf("%s: Partitions=%d materialized a partition artifact", label, p01)
			}
			a, err := service.ArtifactBytes(seq, service.CompileOptions{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := service.ArtifactBytes(res, service.CompileOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Fatalf("%s: Partitions=%d artifact differs from the sequential pipeline's", label, p01)
			}
		}

		for _, workers := range []int{2, 4} {
			plabel := fmt.Sprintf("%s/p%d", label, workers)
			// Verify: true runs the sequential simulator AND the phased
			// simulator on P goroutines against the segmented image.
			res, err := core.Compile(g, core.Options{Partitions: workers, Verify: true})
			if err != nil {
				if errors.Is(err, num.ErrOverflow) {
					continue
				}
				t.Fatalf("%s: partitioned compile: %v", plabel, err)
			}
			if res.Partition == nil || res.Segmented == nil {
				t.Fatalf("%s: no partition artifact", plabel)
			}
			if res.Partition.P != workers {
				t.Fatalf("%s: partitioned into %d workers", plabel, res.Partition.P)
			}
			q := res.Repetitions
			checkInvariants(t, g, q, res.Partition, plabel)
			if res.Metrics.ParallelTotal != res.Segmented.Total {
				t.Errorf("%s: ParallelTotal %d != segmented total %d",
					plabel, res.Metrics.ParallelTotal, res.Segmented.Total)
			}

			comparePhasedTrace(t, res, plabel)
			compiled++
		}
	}
	if compiled < trials/2 {
		t.Fatalf("only %d partitioned compilations in %d trials; population too thin", compiled, trials)
	}
}

// comparePhasedTrace runs the sequential and the phased float64 engines on
// one partitioned result and requires bit-identical queue contents on every
// edge after every period.
func comparePhasedTrace(t *testing.T, res *core.Result, label string) {
	t.Helper()
	g := res.Graph
	seqEng, err := runtime.New(res, diffFires(g))
	if err != nil {
		t.Fatalf("%s: sequential engine: %v", label, err)
	}
	parEng, err := runtime.NewPhased(res, diffFires(g))
	if err != nil {
		t.Fatalf("%s: phased engine: %v", label, err)
	}
	const periods = 3
	for p := 0; p < periods; p++ {
		if err := seqEng.RunPeriod(); err != nil {
			t.Fatalf("%s: sequential period %d: %v", label, p, err)
		}
		if err := parEng.RunPeriod(); err != nil {
			t.Fatalf("%s: phased period %d: %v", label, p, err)
		}
		for _, e := range g.Edges() {
			sq := seqEng.TokensOn(e.ID)
			pq := parEng.TokensOn(e.ID)
			if len(sq) != len(pq) {
				t.Fatalf("%s: period %d edge %d: %d tokens sequentially, %d phased",
					label, p, e.ID, len(sq), len(pq))
			}
			for k := range sq {
				if sq[k] != pq[k] {
					t.Fatalf("%s: period %d edge %d token %d: sequential %v, phased %v",
						label, p, e.ID, k, sq[k], pq[k])
				}
			}
		}
	}
}

// TestPhasedEngineErrors pins the constructor contract.
func TestPhasedEngineErrors(t *testing.T) {
	g := sdf.New("pair")
	a := g.AddActor("a")
	b := g.AddActor("b")
	g.AddEdge(a, b, 1, 1, 0)
	res, err := core.Compile(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.NewPhased(res, nil); err == nil {
		t.Error("NewPhased accepted an unpartitioned result")
	}
}
