// Package partition turns a compiled uniprocessor schedule into a
// deterministic P-way phased schedule for the barrier-synchronized parallel
// runtime: actors are leveled over the precedence graph (longest path), each
// level becomes one barrier-delimited phase, and a list heuristic with a
// load-balance cost model assigns actors to workers. Within one phase a
// worker fires each of its actors for its full repetitions count; between
// phases every worker passes a barrier, so a cross-worker edge is always
// written in one phase and read in a strictly later one — the
// write-then-barrier-then-read discipline the per-segment allocation
// (segment.go) and the phased executors (internal/sim, internal/runtime)
// rely on.
//
// Two structural invariants hold by construction and are re-checked by
// internal/check:
//
//   - Every precedence edge strictly crosses phases (level(dst) > level(src)),
//     so a consumer's phase starts only after its producers' phase's barrier.
//   - Actors joined by a same-level edge are clustered onto one worker
//     (union-find), so every same-phase edge is intra-worker and its FIFO
//     bookkeeping is touched by exactly one goroutine per phase.
//
// Delay-broken edges (delay >= total consumed per period) never impose
// precedence: their consumer can fire a whole period on initial tokens, so
// they may stay inside a level or even point "backward" across levels; either
// way their endpoint firings are barrier- or worker-ordered.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/num"
	"repro/internal/sdf"
)

// Block is one contiguous run of firings inside a phase: Count consecutive
// firings of Actor. The phased schedule fires each actor's entire period
// (Count = q(Actor)) inside its single phase.
type Block struct {
	Actor sdf.ActorID
	Count int64
}

// Phase is one barrier-delimited step: Workers[w] holds worker w's firing
// blocks, executed in order. All workers run their lists concurrently; the
// phase ends when every worker reaches the barrier.
type Phase struct {
	Workers [][]Block
}

// Partitioned is the P-way phased schedule. Assign and PhaseOf are the
// canonical encoding (Phases and Load are derived deterministically from
// them plus the graph, see Rebuild).
type Partitioned struct {
	// P is the worker count (>= 1).
	P int
	// NumPhases is the number of barrier-delimited phases.
	NumPhases int
	// Assign maps each actor to its worker in [0, P).
	Assign []int
	// PhaseOf maps each actor to its phase (its precedence level).
	PhaseOf []int
	// Phases holds the per-phase, per-worker firing blocks.
	Phases []Phase
	// Load is the summed firing cost per worker (the list heuristic's
	// balance objective).
	Load []int64
}

// String summarizes the partitioning for diagnostics: worker count, phase
// count, and the load spread.
func (p *Partitioned) String() string {
	var lo, hi int64
	for i, l := range p.Load {
		if i == 0 || l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	return fmt.Sprintf("P=%d phases=%d load=[%d..%d]", p.P, p.NumPhases, lo, hi)
}

// Run partitions a compiled schedule across p workers. order must be a
// topological order of the precedence graph (the Order pass artifact); q the
// repetitions vector. p >= 1; p = 1 yields a single worker that fires the
// whole period phase by phase.
//
// The heuristic: longest-path levels over precedence edges give the phases;
// same-level actors connected by an edge are merged into clusters
// (union-find); clusters are assigned in (level asc, cost desc, min-actor-ID
// asc) order to the currently least-loaded worker, cost(a) = q(a) * (1 +
// sum of input consume rates + sum of output produce rates). All arithmetic
// is overflow-checked (errors wrap num.ErrOverflow).
func Run(g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID, p int) (*Partitioned, error) {
	if p < 1 {
		return nil, fmt.Errorf("partition: worker count must be >= 1, got %d", p)
	}
	n := g.NumActors()
	if len(order) != n || len(q) != n {
		return nil, fmt.Errorf("partition: order/repetitions length mismatch (%d actors, %d order, %d q)",
			n, len(order), len(q))
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, a := range order {
		if a < 0 || int(a) >= n || pos[a] != -1 {
			return nil, fmt.Errorf("partition: order is not a permutation of the actors")
		}
		pos[a] = i
	}

	// Longest-path levels over precedence edges. order topologically sorts
	// the precedence graph, so one pass in order sequence sees every
	// precedence predecessor before its successor.
	level := make([]int, n)
	for _, a := range order {
		lv := 0
		for _, eid := range g.In(a) {
			if !sdf.PrecedenceEdge(g, q, eid) {
				continue
			}
			src := g.Edge(eid).Src
			if pos[src] >= pos[a] {
				return nil, fmt.Errorf("partition: order violates precedence edge %d (%d before %d)",
					eid, a, src)
			}
			if l := level[src] + 1; l > lv {
				lv = l
			}
		}
		level[a] = lv
	}

	// Cluster same-level neighbours so every same-phase edge stays on one
	// worker. Precedence edges always cross levels, so only delay-broken
	// edges ever union; a cluster lies entirely within one level.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges() {
		if level[e.Src] == level[e.Dst] {
			ra, rb := find(int(e.Src)), find(int(e.Dst))
			if ra != rb {
				if ra > rb { // deterministic: smaller actor ID becomes the root
					ra, rb = rb, ra
				}
				parent[rb] = ra
			}
		}
	}

	cost, err := actorCosts(g, q)
	if err != nil {
		return nil, err
	}

	byRoot := make(map[int]*cluster)
	var clusters []*cluster
	for _, a := range g.Actors() {
		r := find(int(a.ID))
		cl := byRoot[r]
		if cl == nil {
			cl = &cluster{level: level[a.ID], minID: int(a.ID)}
			byRoot[r] = cl
			clusters = append(clusters, cl)
		}
		if int(a.ID) < cl.minID {
			cl.minID = int(a.ID)
		}
		if cl.cost, err = num.CheckedAdd(cl.cost, cost[a.ID]); err != nil {
			return nil, fmt.Errorf("partition: cluster cost: %w", err)
		}
	}
	// Deterministic list order: level ascending, cost descending, min actor
	// ID ascending. clusters was built by iterating actors in ID order, so
	// the pre-sort order is already deterministic.
	sortClusters(clusters)

	// Greedy list assignment to the least-loaded worker (ties: lowest
	// worker index).
	assign := make([]int, n)
	load := make([]int64, p)
	for _, cl := range clusters {
		w := 0
		for i := 1; i < p; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		if load[w], err = num.CheckedAdd(load[w], cl.cost); err != nil {
			return nil, fmt.Errorf("partition: worker load: %w", err)
		}
		root := find(cl.minID)
		for a := 0; a < n; a++ {
			if find(a) == root {
				assign[a] = w
			}
		}
	}

	return build(g, q, order, p, assign, level, cost)
}

// Rebuild reconstructs a Partitioned from its canonical encoding (the
// store codec's decode path). It validates the structural invariants —
// assignment bounds, precedence edges crossing phases forward, same-phase
// edges intra-worker — and derives Phases and Load exactly as Run does.
func Rebuild(g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID, p int, assign, phaseOf []int) (*Partitioned, error) {
	n := g.NumActors()
	if p < 1 {
		return nil, fmt.Errorf("partition: worker count must be >= 1, got %d", p)
	}
	if len(assign) != n || len(phaseOf) != n || len(order) != n || len(q) != n {
		return nil, fmt.Errorf("partition: rebuild length mismatch (%d actors)", n)
	}
	for a := 0; a < n; a++ {
		if assign[a] < 0 || assign[a] >= p {
			return nil, fmt.Errorf("partition: actor %d assigned to worker %d of %d", a, assign[a], p)
		}
		if phaseOf[a] < 0 {
			return nil, fmt.Errorf("partition: actor %d has negative phase %d", a, phaseOf[a])
		}
	}
	for _, e := range g.Edges() {
		if sdf.PrecedenceEdge(g, q, e.ID) && phaseOf[e.Dst] <= phaseOf[e.Src] {
			return nil, fmt.Errorf("partition: precedence edge %d does not cross phases (%d -> %d)",
				e.ID, phaseOf[e.Src], phaseOf[e.Dst])
		}
		if phaseOf[e.Src] == phaseOf[e.Dst] && assign[e.Src] != assign[e.Dst] {
			return nil, fmt.Errorf("partition: same-phase edge %d spans workers %d and %d",
				e.ID, assign[e.Src], assign[e.Dst])
		}
	}
	cost, err := actorCosts(g, q)
	if err != nil {
		return nil, err
	}
	return build(g, q, order, p, assign, phaseOf, cost)
}

// build derives the executable phase lists and worker loads from the
// canonical (assign, phaseOf) encoding. Actors appear in their `order`
// position sequence inside each worker's per-phase list, which fixes the
// firing order completely.
func build(g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID, p int, assign, phaseOf []int, cost []int64) (*Partitioned, error) {
	numPhases := 0
	for _, ph := range phaseOf {
		if ph+1 > numPhases {
			numPhases = ph + 1
		}
	}
	phases := make([]Phase, numPhases)
	for i := range phases {
		phases[i].Workers = make([][]Block, p)
	}
	load := make([]int64, p)
	var err error
	for _, a := range order {
		ph, w := phaseOf[a], assign[a]
		phases[ph].Workers[w] = append(phases[ph].Workers[w], Block{Actor: a, Count: q.Q(a)})
		if load[w], err = num.CheckedAdd(load[w], cost[a]); err != nil {
			return nil, fmt.Errorf("partition: worker load: %w", err)
		}
	}
	return &Partitioned{
		P:         p,
		NumPhases: numPhases,
		Assign:    assign,
		PhaseOf:   phaseOf,
		Phases:    phases,
		Load:      load,
	}, nil
}

// actorCosts computes the load model: cost(a) = q(a) * (1 + sum of input
// consume rates + sum of output produce rates) — a proxy for tokens moved
// per period plus a constant per firing.
func actorCosts(g *sdf.Graph, q sdf.Repetitions) ([]int64, error) {
	cost := make([]int64, g.NumActors())
	for _, a := range g.Actors() {
		c := int64(1)
		var err error
		for _, eid := range g.In(a.ID) {
			if c, err = num.CheckedAdd(c, g.Edge(eid).Cons); err != nil {
				return nil, fmt.Errorf("partition: actor %s cost: %w", a.Name, err)
			}
		}
		for _, eid := range g.Out(a.ID) {
			if c, err = num.CheckedAdd(c, g.Edge(eid).Prod); err != nil {
				return nil, fmt.Errorf("partition: actor %s cost: %w", a.Name, err)
			}
		}
		if cost[a.ID], err = num.CheckedMul(q.Q(a.ID), c); err != nil {
			return nil, fmt.Errorf("partition: actor %s cost: %w", a.Name, err)
		}
	}
	return cost, nil
}

// cluster is a union-find component of same-level actors, the unit of the
// greedy list assignment.
type cluster struct {
	level int
	cost  int64
	minID int
}

// sortClusters orders the greedy list: level ascending, cost descending,
// min actor ID ascending. The input order is deterministic (built in actor
// ID order) and the key is a total order, so the result is too.
func sortClusters(cs []*cluster) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.level != b.level {
			return a.level < b.level
		}
		if a.cost != b.cost {
			return a.cost > b.cost
		}
		return a.minID < b.minID
	})
}
