package rpmc

import (
	"math/rand"
	"testing"

	"repro/internal/sched"
	"repro/internal/sdf"
)

func TestOrderChain(t *testing.T) {
	g := sdf.New("chain")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 2, 1, 0)
	g.AddEdge(b, c, 1, 3, 0)
	q, _ := g.Repetitions()
	order, err := Order(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != a || order[1] != b || order[2] != c {
		t.Errorf("order = %v, want [A B C]", order)
	}
}

func TestOrderIsTopological(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		g, q := randomDAG(t, rng, 3+rng.Intn(10))
		order, err := Order(g, q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(order) != g.NumActors() {
			t.Fatalf("trial %d: order %v misses actors", trial, order)
		}
		flat := sched.FlatSAS(g, q, order)
		if err := flat.Validate(q); err != nil {
			t.Fatalf("trial %d: order %v is not a valid schedule order: %v", trial, order, err)
		}
	}
}

// TestCutPrefersCheapEdge: on a chain with one very cheap edge, the top cut
// should cross it rather than an expensive one when balance permits.
func TestCutPrefersCheapEdge(t *testing.T) {
	// A -(10,10)-> B -(1,1)-> C -(10,10)-> D: all q = 1, crossing TNSE are
	// 10, 1, 10. With balance bounds 1..3 on 4 nodes, cut at B|C (cost 1)
	// must win; the resulting lexical order is still A B C D, but the
	// recursion structure is what we verify via the cut function directly.
	g := sdf.New("cheap")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	d := g.AddActor("D")
	g.AddEdge(a, b, 10, 10, 0)
	g.AddEdge(b, c, 1, 1, 0)
	g.AddEdge(c, d, 10, 10, 0)
	q, _ := g.Repetitions()
	p, err := newPartitioner(g, q)
	if err != nil {
		t.Fatal(err)
	}
	left, right, err := p.minLegalCut([]sdf.ActorID{a, b, c, d})
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 || len(right) != 2 {
		t.Fatalf("cut = %v | %v, want 2|2", left, right)
	}
	if left[0] != a || left[1] != b {
		t.Errorf("left = %v, want [A B]", left)
	}
}

func TestCutLegality(t *testing.T) {
	// All cuts must keep precedence edges left-to-right even when a cheaper
	// illegal cut exists.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		g, q := randomDAG(t, rng, 4+rng.Intn(8))
		p, err := newPartitioner(g, q)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]sdf.ActorID, g.NumActors())
		for i := range all {
			all[i] = sdf.ActorID(i)
		}
		left, right, err := p.minLegalCut(all)
		if err != nil {
			t.Fatal(err)
		}
		inLeft := map[sdf.ActorID]bool{}
		for _, a := range left {
			inLeft[a] = true
		}
		for _, a := range right {
			if inLeft[a] {
				t.Fatalf("trial %d: actor %d on both sides", trial, a)
			}
		}
		if len(left)+len(right) != g.NumActors() {
			t.Fatalf("trial %d: cut loses actors", trial)
		}
		for _, e := range g.Edges() {
			if sdf.PrecedenceEdge(g, q, e.ID) && !inLeft[e.Src] && inLeft[e.Dst] {
				t.Fatalf("trial %d: precedence edge %d crosses right-to-left", trial, e.ID)
			}
		}
	}
}

func TestSingleAndPair(t *testing.T) {
	g := sdf.New("pair")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 3, 2, 0)
	q, _ := g.Repetitions()
	order, err := Order(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != a {
		t.Errorf("order = %v", order)
	}
}

func randomDAG(t testing.TB, rng *rand.Rand, n int) (*sdf.Graph, sdf.Repetitions) {
	t.Helper()
	g := sdf.New("rand")
	reps := make([]int64, n)
	for i := 0; i < n; i++ {
		g.AddActor(string(rune('A' + i)))
		reps[i] = []int64{1, 2, 3, 4, 6, 8}[rng.Intn(6)]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				gg := gcd64(reps[i], reps[j])
				g.AddEdge(sdf.ActorID(i), sdf.ActorID(j), reps[j]/gg, reps[i]/gg, 0)
			}
		}
	}
	q, err := g.Repetitions()
	if err != nil {
		t.Fatalf("random graph inconsistent: %v", err)
	}
	return g, q
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
