// Package rpmc implements RPMC — recursive partitioning by minimum cuts
// (Murthy, Bhattacharyya, Lee [3]; Sec. 7 of the paper): a top-down heuristic
// that recursively splits the graph with a legal cut (all precedence edges
// crossing left-to-right) of minimum buffer cost, subject to balance bounds,
// producing a lexical ordering for single appearance scheduling.
//
// The minimum legal cut is found heuristically: candidate cuts are the
// ancestor-closed prefixes of a topological order, refined by greedy legal
// moves of individual actors across the cut while the cost improves.
package rpmc

import (
	"errors"
	"fmt"

	"repro/internal/num"
	"repro/internal/sdf"
)

// ErrCyclic reports that the precedence graph restricted to a partition part
// was cyclic, which cannot happen for consistent acyclic inputs.
var ErrCyclic = errors.New("rpmc: cyclic precedence subgraph")

// Order returns the RPMC lexical ordering of the graph's actors.
func Order(g *sdf.Graph, q sdf.Repetitions) ([]sdf.ActorID, error) {
	all := make([]sdf.ActorID, g.NumActors())
	for i := range all {
		all[i] = sdf.ActorID(i)
	}
	p, err := newPartitioner(g, q)
	if err != nil {
		return nil, err
	}
	return p.recurse(all)
}

func newPartitioner(g *sdf.Graph, q sdf.Repetitions) (*partitioner, error) {
	p := &partitioner{g: g, q: q, tnse: make([]int64, g.NumEdges())}
	for _, e := range g.Edges() {
		t, err := sdf.TNSE(g, q, e.ID)
		if err != nil {
			return nil, err
		}
		p.tnse[e.ID] = t
	}
	return p, nil
}

type partitioner struct {
	g *sdf.Graph
	q sdf.Repetitions
	// tnse[e] caches TNSE(e) so the cut search never recomputes (or re-checks)
	// the product.
	tnse []int64
}

func (p *partitioner) recurse(actors []sdf.ActorID) ([]sdf.ActorID, error) {
	if len(actors) <= 1 {
		return actors, nil
	}
	left, right, err := p.minLegalCut(actors)
	if err != nil {
		return nil, err
	}
	lo, err := p.recurse(left)
	if err != nil {
		return nil, err
	}
	ro, err := p.recurse(right)
	if err != nil {
		return nil, err
	}
	return append(lo, ro...), nil
}

// minLegalCut splits actors into (left, right) such that every precedence
// edge between the parts runs left to right, minimizing the total TNSE of
// crossing edges. Balance bounds |V|/3 <= |left| <= 2|V|/3 are enforced when
// satisfiable and relaxed otherwise.
func (p *partitioner) minLegalCut(actors []sdf.ActorID) (left, right []sdf.ActorID, err error) {
	n := len(actors)
	inSet := make(map[sdf.ActorID]bool, n)
	for _, a := range actors {
		inSet[a] = true
	}
	// Candidate topological orders over precedence edges within the set:
	// plain Kahn, and an affinity order that keeps heavily-communicating
	// actors adjacent so prefix cuts cross cheap edges.
	order, err := p.localTopo(actors, inSet, false)
	if err != nil {
		return nil, nil, err
	}
	affinity, err := p.localTopo(actors, inSet, true)
	if err != nil {
		return nil, nil, err
	}
	// Edge weights for crossing cost: TNSE + delay of edges internal to the
	// set (either direction crossing the cut is charged; precedence edges
	// must run forward for legality).
	type localEdge struct {
		src, dst sdf.ActorID
		w        int64
		prec     bool
	}
	var edges []localEdge
	for _, e := range p.g.Edges() {
		if !inSet[e.Src] || !inSet[e.Dst] || e.Src == e.Dst {
			continue
		}
		w, werr := num.CheckedAdd(p.tnse[e.ID], e.Delay)
		if werr != nil {
			return nil, nil, fmt.Errorf("rpmc: cut weight of edge %d overflows: %w", e.ID, num.ErrOverflow)
		}
		edges = append(edges, localEdge{
			src: e.Src, dst: e.Dst,
			w:    w,
			prec: sdf.PrecedenceEdge(p.g, p.q, e.ID),
		})
	}
	lowBound, highBound := n/3, (2*n+2)/3
	if lowBound < 1 {
		lowBound = 1
	}
	if highBound >= n {
		highBound = n - 1
	}
	if lowBound > highBound {
		lowBound, highBound = 1, n-1
	}

	// side[a]: true if on the left.
	side := make(map[sdf.ActorID]bool, n)
	cost := func() int64 {
		var c int64
		for _, e := range edges {
			if side[e.src] != side[e.dst] {
				c += e.w
			}
		}
		return c
	}
	legal := func() bool {
		for _, e := range edges {
			if e.prec && !side[e.src] && side[e.dst] {
				return false
			}
		}
		return true
	}

	bestCost := int64(-1)
	var bestLeftSize int
	var bestSide map[sdf.ActorID]bool
	// Candidate prefixes of each topological order.
	for _, cand := range [][]sdf.ActorID{order, affinity} {
		for cut := 1; cut < n; cut++ {
			for i, a := range cand {
				side[a] = i < cut
			}
			if cut < lowBound || cut > highBound {
				continue
			}
			if c := cost(); bestCost < 0 || c < bestCost {
				bestCost, bestLeftSize = c, cut
				bestSide = copySide(side)
			}
		}
	}
	if bestSide == nil {
		// Bounds filtered everything (tiny sets): fall back to the most
		// balanced prefix.
		cut := n / 2
		if cut == 0 {
			cut = 1
		}
		for i, a := range order {
			side[a] = i < cut
		}
		bestCost, bestLeftSize = cost(), cut
		bestSide = copySide(side)
	}

	// Greedy refinement: move single actors across the cut while legality,
	// balance and cost all improve or hold.
	side = bestSide
	leftSize := bestLeftSize
	for pass := 0; pass < n; pass++ {
		improved := false
		for _, a := range order {
			side[a] = !side[a]
			newLeft := leftSize
			if side[a] {
				newLeft++
			} else {
				newLeft--
			}
			if newLeft < lowBound || newLeft > highBound || !legal() {
				side[a] = !side[a]
				continue
			}
			if c := cost(); c < bestCost {
				bestCost = c
				leftSize = newLeft
				improved = true
			} else {
				side[a] = !side[a]
			}
		}
		if !improved {
			break
		}
	}

	for _, a := range order {
		if side[a] {
			left = append(left, a)
		} else {
			right = append(right, a)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		// Cannot happen with the bounds above, but guard anyway.
		mid := n / 2
		return order[:mid], order[mid:], nil
	}
	return left, right, nil
}

func copySide(m map[sdf.ActorID]bool) map[sdf.ActorID]bool {
	c := make(map[sdf.ActorID]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// localTopo topologically sorts the actors of the set over precedence edges
// internal to the set. With affinity false ties break by smallest ID; with
// affinity true the ready actor with the largest token traffic to already
// placed actors is chosen, keeping heavy edges away from prefix cuts.
func (p *partitioner) localTopo(actors []sdf.ActorID, inSet map[sdf.ActorID]bool, affinity bool) ([]sdf.ActorID, error) {
	indeg := make(map[sdf.ActorID]int, len(actors))
	for _, a := range actors {
		indeg[a] = 0
	}
	for _, e := range p.g.Edges() {
		if inSet[e.Src] && inSet[e.Dst] && e.Src != e.Dst && sdf.PrecedenceEdge(p.g, p.q, e.ID) {
			indeg[e.Dst]++
		}
	}
	placed := make(map[sdf.ActorID]bool, len(actors))
	traffic := func(a sdf.ActorID) int64 {
		var t int64
		for _, eid := range p.g.In(a) {
			e := p.g.Edge(eid)
			if placed[e.Src] {
				t += p.tnse[eid]
			}
		}
		for _, eid := range p.g.Out(a) {
			e := p.g.Edge(eid)
			if placed[e.Dst] {
				t += p.tnse[eid]
			}
		}
		return t
	}
	var ready []sdf.ActorID
	for _, a := range actors {
		if indeg[a] == 0 {
			ready = append(ready, a)
		}
	}
	var order []sdf.ActorID
	for len(ready) > 0 {
		mi := 0
		if affinity {
			bt := traffic(ready[0])
			for i := 1; i < len(ready); i++ {
				if t := traffic(ready[i]); t > bt || (t == bt && ready[i] < ready[mi]) {
					mi, bt = i, t
				}
			}
		} else {
			for i, v := range ready {
				if v < ready[mi] {
					mi = i
				}
			}
		}
		a := ready[mi]
		placed[a] = true
		ready[mi] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, a)
		for _, eid := range p.g.Out(a) {
			e := p.g.Edge(eid)
			if inSet[e.Dst] && e.Dst != a && sdf.PrecedenceEdge(p.g, p.q, eid) {
				indeg[e.Dst]--
				if indeg[e.Dst] == 0 {
					ready = append(ready, e.Dst)
				}
			}
		}
	}
	if len(order) != len(actors) {
		return nil, ErrCyclic
	}
	return order, nil
}
