package par

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 16)
	var n atomic.Int64
	for i := 0; i < 16; i++ {
		for {
			if err := p.TrySubmit(func() { n.Add(1) }); err == nil {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	p.Close()
	if got := n.Load(); got != 16 {
		t.Fatalf("ran %d tasks, want 16", got)
	}
}

func TestPoolSheds(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.TrySubmit(func() { close(started); <-block }); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-started // worker is now busy
	if err := p.TrySubmit(func() {}); err != nil {
		t.Fatalf("queue slot submit: %v", err)
	}
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("saturated submit: got %v, want ErrPoolFull", err)
	}
	if got := p.Queued(); got != 1 {
		t.Fatalf("Queued = %d, want 1", got)
	}
	close(block)
	p.Close()
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after close: got %v, want ErrPoolClosed", err)
	}
}

func TestPoolConcurrentSubmit(t *testing.T) {
	p := NewPool(4, 64)
	var ran atomic.Int64
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if p.TrySubmit(func() { ran.Add(1) }) == nil {
					accepted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	p.Close()
	if ran.Load() != accepted.Load() {
		t.Fatalf("ran %d of %d accepted tasks", ran.Load(), accepted.Load())
	}
}
