package par

import (
	"errors"
	"sync"
)

// Pool admission errors. Both are returned by TrySubmit; a server maps them
// to load-shedding responses (429 for a full queue, 503 for shutdown).
var (
	// ErrPoolFull means the submission queue is at capacity.
	ErrPoolFull = errors.New("par: pool queue full")
	// ErrPoolClosed means Close has been called.
	ErrPoolClosed = errors.New("par: pool closed")
)

// Pool is a long-lived bounded worker pool for serving workloads, the
// service-shaped counterpart of the batch helpers (ForEach, Map): a fixed
// number of workers drain a bounded submission queue, and submissions beyond
// the queue's capacity are rejected immediately instead of blocking — the
// admission-control primitive behind sdfd's 429/503 load shedding.
//
// Unlike the batch helpers, Pool makes no ordering or determinism promises:
// tasks run as workers free up. Determinism of the work itself is the
// task's concern (the compile pipeline is a pure function of its inputs, so
// execution order cannot change any artifact).
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts workers goroutines draining a queue of capacity queue.
// workers < 1 is clamped to 1; queue < 0 is clamped to 0 (hand-off only:
// a submission is accepted only while a worker is ready to take it).
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan func(), queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for task := range p.tasks {
		task()
	}
}

// TrySubmit enqueues task without blocking. It returns ErrPoolFull when the
// queue is at capacity and ErrPoolClosed after Close; nil means a worker
// will run the task.
func (p *Pool) TrySubmit(task func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- task:
		return nil
	default:
		return ErrPoolFull
	}
}

// Queued reports how many accepted tasks are waiting for a worker.
func (p *Pool) Queued() int { return len(p.tasks) }

// Close rejects further submissions, waits for every accepted task to
// finish, and returns. It is safe to call once; subsequent calls panic
// (close of closed channel) — callers own the pool's lifecycle.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
