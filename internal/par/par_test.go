package par

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrderPreserved(t *testing.T) {
	out, err := Map(1000, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	for trial := 0; trial < 20; trial++ {
		err := ForEach(64, func(i int) error {
			switch i {
			case 7:
				return errA
			case 40:
				return errors.New("b")
			}
			return nil
		})
		if err != errA {
			t.Fatalf("got %v, want error from item 7", err)
		}
	}
}

func TestForEachBoundedConcurrency(t *testing.T) {
	limit := int64(runtime.GOMAXPROCS(0))
	var cur, peak atomic.Int64
	err := ForEach(200, func(i int) error {
		c := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > limit {
		t.Errorf("observed %d concurrent items, cap %d", peak.Load(), limit)
	}
}

func TestForEachPanicsPropagate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic did not propagate")
		}
	}()
	_ = ForEach(16, func(i int) error {
		if i == 5 {
			panic("boom")
		}
		return nil
	})
}

func TestMapDeterministicWithDerivedSeeds(t *testing.T) {
	run := func() []int64 {
		out, err := Map(100, func(i int) (int64, error) {
			rng := rand.New(rand.NewSource(1000 + int64(i)))
			return rng.Int63(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d", i)
		}
	}
}

func TestMapSlice(t *testing.T) {
	items := []string{"x", "y", "z"}
	out, err := MapSlice(items, func(i int, s string) (string, error) {
		return fmt.Sprintf("%d:%s", i, s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0:x", "1:y", "2:z"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestZeroAndNegativeN(t *testing.T) {
	if err := ForEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Error(err)
	}
	out, err := Map(-3, func(int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Errorf("Map(-3) = %v, %v", out, err)
	}
}
