package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBarrierSinglePartyNeverBlocks(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 1000; i++ {
		b.Await() // would deadlock the test if a 1-party barrier waited
	}
	if b.Parties() != 1 {
		t.Fatalf("Parties() = %d, want 1", b.Parties())
	}
}

func TestBarrierPanicsOnZeroParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

// TestBarrierPhaseOrdering drives P workers through many phases and checks
// the defining invariant: no worker enters phase k+1 before every worker has
// finished phase k. Each worker increments a per-phase arrival counter
// before Await and asserts the counter is full after.
func TestBarrierPhaseOrdering(t *testing.T) {
	const parties, phases = 8, 200
	b := NewBarrier(parties)
	arrived := make([]atomic.Int64, phases)
	var wg sync.WaitGroup
	errs := make([]string, parties)
	for w := 0; w < parties; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ph := 0; ph < phases; ph++ {
				arrived[ph].Add(1)
				b.Await()
				if got := arrived[ph].Load(); got != parties {
					errs[w] = "worker saw incomplete phase"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, e := range errs {
		if e != "" {
			t.Fatalf("worker %d: %s", w, e)
		}
	}
}

// TestBarrierCyclicReuse checks the generation logic across cycles with
// parties arriving in shifting orders: a stale waiter from cycle k must not
// be released by cycle k+1's trip, and the barrier must reset cleanly.
func TestBarrierCyclicReuse(t *testing.T) {
	const parties, cycles = 3, 500
	b := NewBarrier(parties)
	var sum atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parties; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; c < cycles; c++ {
				sum.Add(int64(w + 1))
				b.Await()
			}
		}(w)
	}
	wg.Wait()
	// 1+2+3 per cycle.
	if got, want := sum.Load(), int64(6*cycles); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}
