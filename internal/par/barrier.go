package par

import "sync"

// Barrier is a reusable (cyclic) synchronization barrier for a fixed party
// count: every party calls Await, nobody proceeds until all parties have
// arrived, and the barrier then resets for the next cycle. It is the
// synchronization primitive of the barrier-phased parallel executors
// (internal/sim phased memory simulation, internal/runtime phased engine):
// one Await per worker per phase gives the write-then-barrier-then-read
// ordering the per-segment allocation relies on.
//
// The implementation is clock-free (bannedcall-clean) and allocation-free
// per cycle: a mutex + condition variable with a generation counter, the
// textbook cyclic-barrier shape. A Barrier must not be copied after first
// use.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     uint64
}

// NewBarrier returns a barrier for the given number of parties. It panics
// when parties < 1: a zero-party barrier has no well-defined trip point.
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic("par: NewBarrier requires at least one party")
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Parties reports the fixed party count the barrier was built for.
func (b *Barrier) Parties() int { return b.parties }

// Await blocks until all parties have called Await in the current cycle,
// then releases every waiter and resets the barrier for the next cycle.
// Everything a party did before its Await happens-before everything any
// party does after the corresponding release (the mutex carries the
// ordering), which is exactly the cross-worker visibility guarantee the
// phased executors need between a producing and a consuming phase.
func (b *Barrier) Await() {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
