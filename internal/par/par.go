// Package par provides bounded, deterministic-ordering parallelism for the
// experiment drivers. Work items are distributed to at most GOMAXPROCS
// workers, results land in index order, and the reported error is always the
// one from the lowest-indexed failing item — so a parallel run is
// byte-identical to the sequential one regardless of OS scheduling.
//
// Determinism contract for callers: the per-item function must not share
// mutable state across items (derive per-item rand sources from the item
// index, never from a shared *rand.Rand).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0..n-1) with bounded concurrency and waits for all items.
// It returns the error of the lowest-indexed item that failed, or nil. A
// panic in any item is re-raised in the caller after all workers drain.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := min(n, runtime.GOMAXPROCS(0))
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return firstError(errs)
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &panicValue{r})
						}
					}()
					errs[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(pv.(*panicValue).v)
	}
	return firstError(errs)
}

// Map runs fn over 0..n-1 with bounded concurrency and returns the results
// in index order. On error the partial results are returned alongside the
// lowest-indexed error.
func Map[R any](n int, fn func(i int) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]R, n)
	err := ForEach(n, func(i int) error {
		r, err := fn(i)
		out[i] = r
		return err
	})
	return out, err
}

// MapSlice is Map over an explicit item slice.
func MapSlice[T, R any](items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return Map(len(items), func(i int) (R, error) { return fn(i, items[i]) })
}

type panicValue struct{ v any }

func firstError(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
