package schedtree

import (
	"fmt"

	"repro/internal/lifetime"
	"repro/internal/sdf"
)

// Lifetimes extracts the buffer lifetime interval of every edge of the graph
// under the coarse-grained shared buffer model of Sec. 5:
//
//   - A delayless edge (u,v) with u lexically before v holds TNSE(e) cells,
//     becomes live at the first invocation of u's firing block and dies at
//     the earliest instant all of the period's tokens have been consumed
//     (Fig. 16), repeating periodically with the loops enclosing the least
//     common ancestor of the two firing blocks (Sec. 8.4).
//   - An edge with initial tokens is live from time zero; unless its token
//     count provably returns to zero within the period we keep it live for
//     the whole period, holding TNSE(e) + del(e) cells.
//
// The returned intervals are indexed by edge ID.
func (t *Tree) Lifetimes(q sdf.Repetitions) ([]*lifetime.Interval, error) {
	g := t.Graph
	out := make([]*lifetime.Interval, g.NumEdges())
	for _, e := range g.Edges() {
		iv, err := t.edgeLifetime(q, e)
		if err != nil {
			return nil, err
		}
		out[e.ID] = iv
	}
	return out, nil
}

func (t *Tree) edgeLifetime(q sdf.Repetitions, e sdf.Edge) (*lifetime.Interval, error) {
	g := t.Graph
	name := g.Actor(e.Src).Name + "->" + g.Actor(e.Dst).Name

	leafU := t.LeafOf[e.Src]
	leafV := t.LeafOf[e.Dst]
	if leafU == nil || leafV == nil {
		return nil, fmt.Errorf("schedtree: edge %s has an actor missing from the schedule", name)
	}
	if e.Src == e.Dst {
		// Self loop: live the whole period, sized at its exact simulated
		// peak (the token count never exceeds del because consumption
		// precedes production within a firing).
		return &lifetime.Interval{
			Name: name, Size: t.edgePeak(e.ID) * e.Words, Start: 0, Dur: t.TotalDur,
		}, nil
	}
	lca := LCA(leafU, leafV)

	// Initial tokens: live at time zero. The token count returns to del(e)
	// at period end, never to zero when del > 0 with the consumer following
	// the producer; treat conservatively as live for the entire period,
	// sized at the exact simulated peak.
	if e.Delay > 0 {
		return &lifetime.Interval{
			Name: name, Size: t.edgePeak(e.ID) * e.Words, Start: 0, Dur: t.TotalDur,
		}, nil
	}
	// Under the coarse-grained model the buffer's array holds the tokens of
	// one occurrence: everything the producer writes within a single
	// iteration of the least common ancestor's body. Vector tokens scale by
	// their per-token footprint.
	size := e.Prod * occurrenceFirings(leafU, lca) * e.Words

	wholePeriod := &lifetime.Interval{
		Name: name, Size: size, Start: 0, Dur: t.TotalDur,
	}
	if lca.Right == nil {
		return nil, fmt.Errorf("schedtree: degenerate LCA for edge %s", name)
	}
	uInLeft := contains(lca.Left, leafU)
	vInRight := contains(lca.Right, leafV)
	if !uInLeft || !vInRight {
		// Consumer before producer without delay: invalid for a delayless
		// edge, but may legitimately arise for edges removed from precedence
		// by delays elsewhere. Be conservative.
		return wholePeriod, nil
	}

	start := leafU.Start
	stop := lca.Right.Stop
	for tmp := leafV; tmp != lca.Right; tmp = tmp.Parent {
		p := tmp.Parent
		if p == nil {
			return nil, fmt.Errorf("schedtree: leaf %s not under LCA right child", g.Actor(e.Dst).Name)
		}
		if p.Left == tmp && p.Right != nil {
			stop -= p.Right.Dur
		}
	}
	if stop <= start {
		return nil, fmt.Errorf("schedtree: edge %s computed stop %d <= start %d", name, stop, start)
	}

	// Periodicity: every ancestor of the LCA (inclusive) with a loop factor
	// greater than one repeats the lifetime with shift dur(left)+dur(right).
	var periods []lifetime.Period
	for n := lca; n != nil; n = n.Parent {
		if n.Loop > 1 && !n.IsLeaf() {
			periods = append(periods, lifetime.Period{A: n.Dur / n.Loop, Count: n.Loop})
		}
	}
	iv := &lifetime.Interval{
		Name: name, Size: size, Start: start, Dur: stop - start, Periods: periods,
	}
	if err := iv.Validate(); err != nil {
		return nil, err
	}
	return iv, nil
}

func contains(root, leaf *Node) bool {
	for n := leaf; n != nil; n = n.Parent {
		if n == root {
			return true
		}
	}
	return false
}

// edgePeak returns the maximum token count edge e reaches during one period,
// computed once for all edges by a block-level walk of the tree (within one
// firing block an input count only falls and an output count only rises, so
// block endpoints bound the peak; self loops never exceed their delay).
func (t *Tree) edgePeak(e sdf.EdgeID) int64 {
	if t.peaks == nil {
		g := t.Graph
		tokens := make([]int64, g.NumEdges())
		peaks := make([]int64, g.NumEdges())
		for _, ed := range g.Edges() {
			tokens[ed.ID] = ed.Delay
			peaks[ed.ID] = ed.Delay
		}
		var walk func(n *Node)
		walk = func(n *Node) {
			for it := int64(0); it < n.Loop; it++ {
				if !n.IsLeaf() {
					walk(n.Left)
					if n.Right != nil {
						walk(n.Right)
					}
					continue
				}
				for _, eid := range g.In(n.Actor) {
					tokens[eid] -= g.Edge(eid).Cons * n.Reps
				}
				for _, eid := range g.Out(n.Actor) {
					tokens[eid] += g.Edge(eid).Prod * n.Reps
					if tokens[eid] > peaks[eid] {
						peaks[eid] = tokens[eid]
					}
				}
			}
		}
		walk(t.Root)
		t.peaks = peaks
	}
	return t.peaks[e]
}

// occurrenceFirings returns how many times the leaf's firing block executes
// within a single iteration of the LCA's body: the leaf's residual count
// times the loop factors of every node strictly between the leaf and the
// LCA. (The LCA's own loop factor and those of its ancestors appear as
// periodicity, not as buffer growth.)
func occurrenceFirings(leaf, lca *Node) int64 {
	f := leaf.Reps
	for n := leaf.Parent; n != nil && n != lca; n = n.Parent {
		f *= n.Loop
	}
	return f
}
