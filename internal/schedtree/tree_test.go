package schedtree

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sdf"
)

func TestDurationPaperExample(t *testing.T) {
	// "the looped schedule 2(A 3B) would be considered to take 4 time steps"
	g := sdf.New("dur")
	g.AddActor("A")
	g.AddActor("B")
	s := sched.MustParse(g, "(2(A(3B)))")
	tr, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalDur != 4 {
		t.Errorf("TotalDur = %d, want 4", tr.TotalDur)
	}
	a := tr.LeafOf[g.MustActor("A")]
	b := tr.LeafOf[g.MustActor("B")]
	if a.Start != 0 || a.Stop != 1 {
		t.Errorf("A leaf [%d,%d), want [0,1)", a.Start, a.Stop)
	}
	// First invocation of 3B begins at time 1 and ends at 2 (the paper's
	// "last invocation ... begins at time 3 and ends at time 4" refers to
	// the second loop iteration; Start/Stop hold the first).
	if b.Start != 1 || b.Stop != 2 {
		t.Errorf("B leaf [%d,%d), want [1,2)", b.Start, b.Stop)
	}
}

func TestDurStartStopNesting(t *testing.T) {
	g := sdf.New("nest")
	for _, n := range []string{"A", "B", "C"} {
		g.AddActor(n)
	}
	// (3A(2B))(2C): root children [(3 A (2B)) , (2C)].
	s := sched.MustParse(g, "(3A(2B))(2C)")
	tr, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	// Left loop: 3 iterations of (A (2B)) -> dur 6; right leaf (2C) dur 1.
	if tr.TotalDur != 7 {
		t.Errorf("TotalDur = %d, want 7", tr.TotalDur)
	}
	c := tr.LeafOf[g.MustActor("C")]
	if c.Start != 6 || c.Stop != 7 {
		t.Errorf("C leaf [%d,%d), want [6,7)", c.Start, c.Stop)
	}
	b := tr.LeafOf[g.MustActor("B")]
	if b.Start != 1 || b.Stop != 2 {
		t.Errorf("B leaf [%d,%d), want [1,2)", b.Start, b.Stop)
	}
}

func TestRejectNonSAS(t *testing.T) {
	g := sdf.New("multi")
	g.AddActor("A")
	s := sched.MustParse(g, "AA")
	if _, err := FromSchedule(s); err == nil {
		t.Error("expected error for non-SAS schedule")
	}
}

func TestLCA(t *testing.T) {
	g := sdf.New("lca")
	for _, n := range []string{"A", "B", "C", "D"} {
		g.AddActor(n)
	}
	s := sched.MustParse(g, "((AB)(CD))")
	tr, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	a := tr.LeafOf[g.MustActor("A")]
	b := tr.LeafOf[g.MustActor("B")]
	d := tr.LeafOf[g.MustActor("D")]
	if got := LCA(a, b); got != tr.Root.Left {
		t.Error("LCA(A,B) should be the (AB) node")
	}
	if got := LCA(a, d); got != tr.Root {
		t.Error("LCA(A,D) should be the root")
	}
	if got := LCA(a, a); got != a {
		t.Error("LCA(A,A) should be the leaf itself")
	}
}

func TestStringRendering(t *testing.T) {
	g := sdf.New("render")
	for _, n := range []string{"A", "B", "C"} {
		g.AddActor(n)
	}
	s := sched.MustParse(g, "(3A(2B))(2C)")
	tr, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	// The exact parenthesization differs after binarization, but the firing
	// semantics must survive a parse round trip.
	s2, err := sched.Parse(g, tr.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", tr.String(), err)
	}
	f1, f2 := s.Firings(), s2.Firings()
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Errorf("firings differ after round trip: %v vs %v", f1, f2)
		}
	}
}
