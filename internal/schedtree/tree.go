// Package schedtree implements the binary schedule-tree representation of
// R-schedules (Sec. 8 of the paper) and the polynomial-time lifetime
// extraction algorithms that run on it: duration, start and stop times of
// every loop nest (Figs. 13–15), the earliest stop time of a buffer interval
// (Fig. 16), and the periodicity parameters of buffer lifetimes (Sec. 8.4).
//
// Time is abstract: one invocation of a leaf node (a firing block such as
// "3B") is one schedule step, so the looped schedule 2(A 3B) takes 4 steps.
package schedtree

import (
	"fmt"
	"strings"

	"repro/internal/sched"
	"repro/internal/sdf"
)

// Node is a schedule-tree node. Internal nodes carry the loop factor of the
// subschedule rooted there; leaves carry an actor with its residual loop
// factor. Right may be nil for internal nodes wrapping a single subtree
// (loop factors of 1 create such nodes when binarizing).
type Node struct {
	Loop  int64 // loop iterator value; >= 1; leaves always 1
	Actor sdf.ActorID
	Reps  int64 // residual firing count for leaves; 0 for internal nodes
	Left  *Node
	Right *Node

	Parent *Node
	// Dur is the duration of the subtree in schedule steps, including this
	// node's own loop factor. Start and Stop delimit the node's first
	// invocation: Stop = Start + Dur.
	Dur, Start, Stop int64
}

// IsLeaf reports whether n is a firing block.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a fully annotated schedule tree for a single appearance schedule.
type Tree struct {
	Graph *sdf.Graph
	Root  *Node
	// LeafOf[a] is the unique leaf firing actor a (nil if the actor does not
	// appear, which cannot happen for SAS over the whole graph).
	LeafOf []*Node
	// TotalDur is Root.Dur: the length of one schedule period in steps.
	TotalDur int64

	peaks []int64 // lazily computed per-edge peak token counts
}

// FromSchedule converts a looped schedule into a schedule tree, binarizing
// loop bodies left-to-right, and computes Dur/Start/Stop for every node. The
// schedule must be a single appearance schedule.
func FromSchedule(s *sched.Schedule) (*Tree, error) {
	if !s.IsSingleAppearance() {
		return nil, fmt.Errorf("schedtree: schedule %q is not single appearance", s.String())
	}
	root := binarize(s.Body, 1)
	t := &Tree{Graph: s.Graph, Root: root, LeafOf: make([]*Node, s.Graph.NumActors())}
	annotateDur(root)
	annotateStartStop(root, nil, 0)
	collectLeaves(t, root)
	t.TotalDur = root.Dur
	return t, nil
}

// binarize turns a list of schedule terms into a binary tree node with the
// given loop count.
func binarize(body []*sched.Node, count int64) *Node {
	if len(body) == 1 {
		return convert(body[0], count)
	}
	mid := len(body) / 2
	return &Node{
		Loop:  count,
		Left:  binarize(body[:mid], 1),
		Right: binarize(body[mid:], 1),
	}
}

// convert maps a sched.Node into a tree node, folding an extra outer count.
func convert(n *sched.Node, outer int64) *Node {
	if n.IsLeaf() {
		if outer != 1 {
			// A counted leaf inside an extra loop: keep the loop explicit so
			// time steps match the paper's model (the outer loop re-invokes
			// the leaf block).
			return &Node{Loop: outer, Left: &Node{Loop: 1, Actor: n.Actor, Reps: n.Count}}
		}
		return &Node{Loop: 1, Actor: n.Actor, Reps: n.Count}
	}
	if len(n.Children) == 1 {
		return convert(n.Children[0], outer*n.Count)
	}
	return binarize(n.Children, outer*n.Count)
}

func annotateDur(n *Node) {
	if n.IsLeaf() {
		n.Dur = 1
		return
	}
	var body int64
	annotateDur(n.Left)
	body = n.Left.Dur
	if n.Right != nil {
		annotateDur(n.Right)
		body += n.Right.Dur
	}
	n.Dur = n.Loop * body
}

func annotateStartStop(n *Node, parent *Node, start int64) {
	n.Parent = parent
	n.Start = start
	n.Stop = start + n.Dur
	if n.IsLeaf() {
		return
	}
	annotateStartStop(n.Left, n, start)
	if n.Right != nil {
		annotateStartStop(n.Right, n, start+n.Left.Dur)
	}
}

func collectLeaves(t *Tree, n *Node) {
	if n.IsLeaf() {
		t.LeafOf[n.Actor] = n
		return
	}
	collectLeaves(t, n.Left)
	if n.Right != nil {
		collectLeaves(t, n.Right)
	}
}

// LCA returns the lowest common ancestor ("least parent", Definition 2) of
// two nodes.
func LCA(a, b *Node) *Node {
	depth := func(n *Node) int {
		d := 0
		for p := n; p != nil; p = p.Parent {
			d++
		}
		return d
	}
	da, db := depth(a), depth(b)
	for da > db {
		a = a.Parent
		da--
	}
	for db > da {
		b = b.Parent
		db--
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

// String renders the tree in schedule notation for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			if n.Reps == 1 {
				b.WriteString(t.Graph.Actor(n.Actor).Name)
			} else {
				fmt.Fprintf(&b, "(%d%s)", n.Reps, t.Graph.Actor(n.Actor).Name)
			}
			return
		}
		b.WriteByte('(')
		if n.Loop != 1 {
			fmt.Fprintf(&b, "%d", n.Loop)
		}
		walk(n.Left)
		if n.Right != nil {
			walk(n.Right)
		}
		b.WriteByte(')')
	}
	walk(t.Root)
	return b.String()
}
