package schedtree

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sdf"
)

// TestCountedLeafInsideLoop: a counted firing block nested in an extra loop
// keeps the paper's time model — each invocation of the BLOCK is one step.
func TestCountedLeafInsideLoop(t *testing.T) {
	g := sdf.New("cl")
	g.AddActor("A")
	// 3(2A): three invocations of the block (2A) -> 3 steps, 6 firings.
	s := sched.MustParse(g, "(3(2A))")
	tr, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalDur != 3 {
		t.Errorf("TotalDur = %d, want 3", tr.TotalDur)
	}
	if f := s.Firings(); f[0] != 6 {
		t.Errorf("fires %d, want 6", f[0])
	}
}

// TestSingleActorTree: degenerate trees still annotate cleanly.
func TestSingleActorTree(t *testing.T) {
	g := sdf.New("one")
	a := g.AddActor("A")
	s := sched.MustParse(g, "(5A)")
	tr, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalDur != 1 {
		t.Errorf("TotalDur = %d, want 1 (one firing block)", tr.TotalDur)
	}
	leaf := tr.LeafOf[a]
	if leaf == nil || leaf.Reps != 5 {
		t.Fatalf("leaf = %+v", leaf)
	}
	q := sdf.Repetitions{5}
	ivs, err := tr.Lifetimes(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 0 {
		t.Errorf("no edges -> no intervals, got %d", len(ivs))
	}
}

// TestVectorEdgeLifetimeSize: interval sizes scale by token words.
func TestVectorEdgeLifetimeSize(t *testing.T) {
	g := sdf.New("v")
	a := g.AddActor("A")
	b := g.AddActor("B")
	e := g.AddEdge(a, b, 2, 3, 0)
	g.SetWords(e, 5)
	q, _ := g.Repetitions() // (3, 2)
	s := sched.MustParse(g, "(3A)(2B)")
	tr, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := tr.Lifetimes(q)
	if err != nil {
		t.Fatal(err)
	}
	if ivs[0].Size != 30 { // TNSE 6 tokens * 5 words
		t.Errorf("size = %d, want 30", ivs[0].Size)
	}
}

// TestLifetimeMissingActor: schedules that omit an edge endpoint error out
// rather than produce bogus intervals.
func TestLifetimeMissingActor(t *testing.T) {
	g := sdf.New("m")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 0)
	// A schedule that omits an actor is not single appearance over the
	// graph, so tree construction refuses it up front.
	s := &sched.Schedule{Graph: g, Body: []*sched.Node{sched.Leaf(1, a)}}
	if _, err := FromSchedule(s); err == nil {
		t.Error("schedule omitting an actor accepted")
	}
}
