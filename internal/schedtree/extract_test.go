package schedtree

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sdf"
)

// TestPeriodicLifetimePaperShape reproduces the Fig. 17 shape: an edge (A,B)
// whose firing blocks sit in the innermost position of two nested loops of
// factor 2 has lifetime start 0, dur 2, shifts (4, 9) and counts (2, 2),
// giving live intervals [0,2], [4,6], [9,11], [13,15].
func TestPeriodicLifetimePaperShape(t *testing.T) {
	g := sdf.New("fig17")
	a := g.AddActor("A")
	b := g.AddActor("B")
	for _, n := range []string{"c", "d", "e"} {
		g.AddActor(n)
	}
	g.AddEdge(a, b, 1, 1, 0)
	// 2(2(ABcd)e): binarization gives ((AB)(cd)) under the inner loop.
	s := sched.MustParse(g, "(2(2(ABcd))e)")
	_ = s
	// Build the exact tree shape via schedule text whose binarization yields
	// (2 ((2 ((A B)(c d))) e)).
	s = sched.MustParse(g, "(2(2(ABcd))e)")
	tr, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalDur != 18 {
		t.Fatalf("TotalDur = %d, want 18", tr.TotalDur)
	}
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := tr.Lifetimes(q)
	if err != nil {
		t.Fatal(err)
	}
	iv := ivs[0]
	if iv.Start != 0 || iv.Dur != 2 {
		t.Errorf("interval start/dur = %d/%d, want 0/2", iv.Start, iv.Dur)
	}
	if len(iv.Periods) != 2 || iv.Periods[0].A != 4 || iv.Periods[1].A != 9 ||
		iv.Periods[0].Count != 2 || iv.Periods[1].Count != 2 {
		t.Errorf("periods = %v, want [{4 2} {9 2}]", iv.Periods)
	}
	wantLive := map[int64]bool{}
	for _, s := range []int64{0, 4, 9, 13} {
		wantLive[s] = true
		wantLive[s+1] = true
	}
	for tm := int64(0); tm < tr.TotalDur; tm++ {
		if got := iv.LiveAt(tm); got != wantLive[tm] {
			t.Errorf("LiveAt(%d) = %v, want %v", tm, got, wantLive[tm])
		}
	}
}

// referenceLiveness computes, by direct step-by-step execution of the
// schedule under the coarse-grained model, whether each edge's buffer is
// live at every schedule step. It is the oracle for Lifetimes.
func referenceLiveness(t *testing.T, tr *Tree, s *sched.Schedule) [][]bool {
	t.Helper()
	g := s.Graph
	nE := g.NumEdges()
	live := make([][]bool, nE)
	for i := range live {
		live[i] = make([]bool, tr.TotalDur)
	}
	tokens := make([]int64, nE)
	arrayLive := make([]bool, nE)
	for _, e := range g.Edges() {
		tokens[e.ID] = e.Delay
		arrayLive[e.ID] = e.Delay > 0
	}
	step := int64(0)
	var walk func(n *Node)
	walk = func(n *Node) {
		for it := int64(0); it < n.Loop; it++ {
			if n.IsLeaf() {
				// One schedule step: Reps firings of the actor.
				for _, e := range g.Edges() {
					if e.Dst == n.Actor {
						tokens[e.ID] -= e.Cons * n.Reps
					}
					if e.Src == n.Actor {
						tokens[e.ID] += e.Prod * n.Reps
						arrayLive[e.ID] = true
					}
				}
				for eid := 0; eid < nE; eid++ {
					if arrayLive[eid] {
						live[eid][step] = true
					}
					if tokens[eid] <= 0 {
						if tokens[eid] < 0 {
							t.Fatalf("negative tokens on edge %d at step %d", eid, step)
						}
						arrayLive[eid] = false
					}
				}
				step++
				continue
			}
			walk(n.Left)
			if n.Right != nil {
				walk(n.Right)
			}
		}
	}
	walk(tr.Root)
	if step != tr.TotalDur {
		t.Fatalf("reference executed %d steps, tree says %d", step, tr.TotalDur)
	}
	return live
}

// checkAgainstReference asserts that extracted lifetimes exactly match the
// reference for delayless edges and cover it for edges with delays.
func checkAgainstReference(t *testing.T, g *sdf.Graph, text string) {
	t.Helper()
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	s := sched.MustParse(g, text)
	if err := s.Validate(q); err != nil {
		t.Fatalf("schedule %q invalid: %v", text, err)
	}
	tr, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := tr.Lifetimes(q)
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceLiveness(t, tr, s)
	for _, e := range g.Edges() {
		iv := ivs[e.ID]
		for tm := int64(0); tm < tr.TotalDur; tm++ {
			got := iv.LiveAt(tm)
			want := ref[e.ID][tm]
			if e.Delay > 0 {
				if want && !got {
					t.Errorf("%s: edge %s (delay) live at %d in reference but not in interval",
						text, iv.Name, tm)
				}
				continue
			}
			if got != want {
				t.Errorf("%s: edge %s LiveAt(%d) = %v, reference %v",
					text, iv.Name, tm, got, want)
			}
		}
	}
}

func TestLifetimesMatchReferenceChain(t *testing.T) {
	g := sdf.New("chain")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 2, 1, 0)
	g.AddEdge(b, c, 1, 3, 0)
	for _, text := range []string{
		"(3A)(6B)(2C)",
		"(3A(2B))(2C)",
		"(3(A(2B)))(2C)",
	} {
		checkAgainstReference(t, g, text)
	}
}

func TestLifetimesMatchReferenceMultirate(t *testing.T) {
	g := sdf.New("mr")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	d := g.AddActor("D")
	g.AddEdge(a, b, 3, 2, 0)
	g.AddEdge(b, c, 2, 3, 0)
	g.AddEdge(a, d, 1, 1, 0)
	// q = (2, 3, 2, 2)
	for _, text := range []string{
		"(2A)(3B)(2C)(2D)",
		"(2A(1D))(3B)(2C)",
		"((2A)(2D))((3B)(2C))",
	} {
		checkAgainstReference(t, g, text)
	}
}

func TestLifetimesWithDelay(t *testing.T) {
	g := sdf.New("delay")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 2)
	checkAgainstReference(t, g, "AB")
	// Delay edge: whole period, size TNSE+delay = 3.
	q, _ := g.Repetitions()
	s := sched.MustParse(g, "AB")
	tr, _ := FromSchedule(s)
	ivs, _ := tr.Lifetimes(q)
	if ivs[0].Size != 3 {
		t.Errorf("size = %d, want 3", ivs[0].Size)
	}
	if ivs[0].Start != 0 || ivs[0].Dur != tr.TotalDur {
		t.Errorf("delay edge not live whole period: %v", ivs[0])
	}
}

func TestLifetimeSizes(t *testing.T) {
	g := sdf.New("sz")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 2, 3, 0)
	q, _ := g.Repetitions()
	s := sched.MustParse(g, "(3A)(2B)")
	tr, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := tr.Lifetimes(q)
	if err != nil {
		t.Fatal(err)
	}
	if ivs[0].Size != 6 { // TNSE = 2*3
		t.Errorf("size = %d, want 6", ivs[0].Size)
	}
}

func TestAllIntervalsValidate(t *testing.T) {
	g := sdf.New("v")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 4, 1, 0)
	g.AddEdge(a, c, 2, 1, 0)
	g.AddEdge(b, c, 1, 2, 0)
	q, _ := g.Repetitions()
	s := sched.MustParse(g, "(A(2(2B)C))")
	if err := s.Validate(q); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	tr, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := tr.Lifetimes(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range ivs {
		if err := iv.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", iv, err)
		}
	}
	checkAgainstReference(t, g, "(A(2(2B)C))")
}
