package schedtree

import (
	"math/rand"
	"testing"

	"repro/internal/randsdf"
	"repro/internal/sched"
	"repro/internal/sdf"
)

// randomSAS builds a random fully-factored R-schedule over a random
// topological order: the recursion picks arbitrary split points and applies
// the gcd loop factor at every level, so the lifetime machinery sees deep,
// irregular loop nests.
func randomSAS(rng *rand.Rand, g *sdf.Graph, q sdf.Repetitions) (*sched.Schedule, error) {
	order, err := g.RandomTopologicalSort(q, rng)
	if err != nil {
		return nil, err
	}
	gcdTab := func(i, j int) int64 {
		var v int64
		for k := i; k <= j; k++ {
			v = gcd(v, q[order[k]])
		}
		return v
	}
	var build func(i, j int, outer int64) *sched.Node
	build = func(i, j int, outer int64) *sched.Node {
		if i == j {
			return sched.Leaf(q[order[i]]/outer, order[i])
		}
		f := gcdTab(i, j) / outer
		k := i + rng.Intn(j-i)
		return sched.Loop(f, build(i, k, outer*f), build(k+1, j, outer*f))
	}
	root := build(0, g.NumActors()-1, 1)
	return &sched.Schedule{Graph: g, Body: []*sched.Node{root}}, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// TestRandomSchedulesMatchReference is the central property test of the
// lifetime machinery: for random consistent graphs under random nested
// schedules, the extracted periodic intervals must agree exactly (step by
// step) with direct execution under the coarse-grained model.
func TestRandomSchedulesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		g := randsdf.Graph(rng, randsdf.Config{Actors: 2 + rng.Intn(12)})
		q, err := g.Repetitions()
		if err != nil {
			t.Fatal(err)
		}
		s, err := randomSAS(rng, g, q)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(q); err != nil {
			t.Fatalf("trial %d: random SAS %s invalid: %v", trial, s, err)
		}
		tr, err := FromSchedule(s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ivs, err := tr.Lifetimes(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ref := referenceLiveness(t, tr, s)
		for _, e := range g.Edges() {
			iv := ivs[e.ID]
			if err := iv.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for tm := int64(0); tm < tr.TotalDur; tm++ {
				got, want := iv.LiveAt(tm), ref[e.ID][tm]
				if e.Delay > 0 {
					if want && !got {
						t.Fatalf("trial %d schedule %s: delay edge %s live at %d in reference only",
							trial, s, iv.Name, tm)
					}
					continue
				}
				if got != want {
					t.Fatalf("trial %d schedule %s: edge %s LiveAt(%d)=%v, reference %v",
						trial, s, iv.Name, tm, got, want)
				}
			}
		}
	}
}

// TestRandomSchedulesSizeMatchesPeak: the interval size must equal the peak
// token count of the edge (coarse model: per-occurrence production + delay).
func TestRandomSchedulesSizeMatchesPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		g := randsdf.Graph(rng, randsdf.Config{Actors: 2 + rng.Intn(10)})
		q, err := g.Repetitions()
		if err != nil {
			t.Fatal(err)
		}
		s, err := randomSAS(rng, g, q)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := FromSchedule(s)
		if err != nil {
			t.Fatal(err)
		}
		ivs, err := tr.Lifetimes(q)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := s.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Edges() {
			// The coarse-model array can be no smaller than the true peak.
			if ivs[e.ID].Size < sim.MaxTokens[e.ID] {
				t.Errorf("trial %d schedule %s: edge %d interval size %d below real peak %d",
					trial, s, e.ID, ivs[e.ID].Size, sim.MaxTokens[e.ID])
			}
		}
	}
}
