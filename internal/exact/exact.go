// Package exact computes optimal single appearance schedules for small
// graphs by exhausting the lexical-order space. The paper proves that
// constructing buffer-optimal SASs is NP-complete under both buffer models
// (Sec. 7), which is why APGAN and RPMC exist; this package provides the
// exact baseline those heuristics are measured against: every topological
// sort is enumerated (up to a cap) and the order-optimal dynamic program is
// run on each.
package exact

import (
	"repro/internal/alloc"
	"repro/internal/looping"
	"repro/internal/schedtree"
	"repro/internal/sdf"
)

// Result is the outcome of an exhaustive search.
type Result struct {
	// Best is the minimum objective over all enumerated orders.
	Best int64
	// Orders is the number of topological sorts evaluated.
	Orders int
	// Exhausted is true when every topological sort was enumerated (the
	// optimum is exact); false when the cap stopped the search early.
	Exhausted bool
}

// BestNonShared exhausts lexical orders and runs GDPPO on each: the exact
// minimum of EQ 1 over all single appearance schedules (for delayless
// graphs), up to maxOrders enumerated sorts (0 means unlimited).
func BestNonShared(g *sdf.Graph, q sdf.Repetitions, maxOrders int) (Result, error) {
	return search(g, q, maxOrders, func(order []sdf.ActorID) (int64, error) {
		r, err := looping.DPPO(g, q, order)
		if err != nil {
			return 0, err
		}
		return r.Schedule.BufMem()
	})
}

// BestShared exhausts lexical orders and, for each, runs SDPPO, extracts
// lifetimes and takes the better first-fit allocation — the strongest
// shared-memory result this framework can produce per order.
func BestShared(g *sdf.Graph, q sdf.Repetitions, maxOrders int) (Result, error) {
	return search(g, q, maxOrders, func(order []sdf.ActorID) (int64, error) {
		r, err := looping.SDPPO(g, q, order)
		if err != nil {
			return 0, err
		}
		s := r.Schedule
		tree, err := schedtree.FromSchedule(s)
		if err != nil {
			return 0, err
		}
		ivs, err := tree.Lifetimes(q)
		if err != nil {
			return 0, err
		}
		best := int64(-1)
		for _, strat := range []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart} {
			a := alloc.Allocate(ivs, strat)
			if err := a.Verify(); err != nil {
				return 0, err
			}
			if best < 0 || a.Total < best {
				best = a.Total
			}
		}
		return best, nil
	})
}

func search(g *sdf.Graph, q sdf.Repetitions, maxOrders int,
	objective func([]sdf.ActorID) (int64, error)) (Result, error) {
	res := Result{Best: -1, Exhausted: true}

	n := g.NumActors()
	indeg := make([]int, n)
	for _, e := range g.Edges() {
		if e.Src != e.Dst && sdf.PrecedenceEdge(g, q, e.ID) {
			indeg[e.Dst]++
		}
	}
	used := make([]bool, n)
	cur := make([]sdf.ActorID, 0, n)
	var walkErr error
	var rec func() bool // returns false to abort (cap or error)
	rec = func() bool {
		if len(cur) == n {
			v, err := objective(cur)
			if err != nil {
				walkErr = err
				return false
			}
			if res.Best < 0 || v < res.Best {
				res.Best = v
			}
			res.Orders++
			if maxOrders > 0 && res.Orders >= maxOrders {
				res.Exhausted = false
				return false
			}
			return true
		}
		for a := 0; a < n; a++ {
			if used[a] || indeg[a] != 0 {
				continue
			}
			used[a] = true
			cur = append(cur, sdf.ActorID(a))
			for _, eid := range g.Out(sdf.ActorID(a)) {
				e := g.Edge(eid)
				if e.Src != e.Dst && sdf.PrecedenceEdge(g, q, eid) {
					indeg[e.Dst]--
				}
			}
			ok := rec()
			for _, eid := range g.Out(sdf.ActorID(a)) {
				e := g.Edge(eid)
				if e.Src != e.Dst && sdf.PrecedenceEdge(g, q, eid) {
					indeg[e.Dst]++
				}
			}
			cur = cur[:len(cur)-1]
			used[a] = false
			if !ok {
				return false
			}
		}
		return true
	}
	rec()
	if walkErr != nil {
		return res, walkErr
	}
	return res, nil
}
