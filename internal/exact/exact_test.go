package exact

import (
	"math/rand"
	"testing"

	"repro/internal/apgan"
	"repro/internal/looping"
	"repro/internal/randsdf"
	"repro/internal/rpmc"
	"repro/internal/sdf"
	"repro/internal/systems"
)

func TestChainHasSingleOrder(t *testing.T) {
	g := systems.CDDAT()
	q, _ := g.Repetitions()
	res, err := BestNonShared(g, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Orders != 1 || !res.Exhausted {
		t.Fatalf("chain enumerated %d orders (exhausted=%v), want exactly 1", res.Orders, res.Exhausted)
	}
	// With a single order, exact == DPPO on that order.
	order, _ := g.TopologicalSort(q)
	bm, _ := mustDPPO(t, g, q, order).Schedule.BufMem()
	if res.Best != bm {
		t.Errorf("exact %d != DPPO %d", res.Best, bm)
	}
}

func mustDPPO(t *testing.T, g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID) *looping.Result {
	t.Helper()
	r, err := looping.DPPO(g, q, order)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCapStopsEarly(t *testing.T) {
	// Parallel chains: many topological sorts.
	g := systems.Homogeneous(3, 3)
	q, _ := g.Repetitions()
	res, err := BestNonShared(g, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Orders != 5 || res.Exhausted {
		t.Errorf("cap ignored: %d orders, exhausted=%v", res.Orders, res.Exhausted)
	}
}

// TestHeuristicsNeverBeatExact: on exhaustively-searched graphs, the exact
// optimum lower-bounds both heuristics' non-shared results.
func TestHeuristicsNeverBeatExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		g := randsdf.Graph(rng, randsdf.Config{Actors: 5 + rng.Intn(3)})
		q, err := g.Repetitions()
		if err != nil {
			t.Fatal(err)
		}
		ex, err := BestNonShared(g, q, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Exhausted {
			continue // unlucky dense order space; skip comparison
		}
		ar, err := apgan.Run(g, q)
		if err != nil {
			t.Fatal(err)
		}
		abm, _ := mustDPPO(t, g, q, ar.Order).Schedule.BufMem()
		rOrder, err := rpmc.Order(g, q)
		if err != nil {
			t.Fatal(err)
		}
		rbm, _ := mustDPPO(t, g, q, rOrder).Schedule.BufMem()
		if abm < ex.Best || rbm < ex.Best {
			t.Errorf("trial %d: heuristic (%d/%d) beat the exact optimum %d",
				trial, abm, rbm, ex.Best)
		}
		t.Logf("trial %d: exact %d over %d orders; APGAN %d, RPMC %d",
			trial, ex.Best, ex.Orders, abm, rbm)
	}
}

// TestSharedExactFeasible: the shared objective runs and lower-bounds
// nothing in particular (first-fit is order-sensitive), but must produce a
// positive verified total.
func TestSharedExactFeasible(t *testing.T) {
	g := systems.OverAddFFT()
	q, _ := g.Repetitions()
	res, err := BestShared(g, q, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best <= 0 || res.Orders < 1 {
		t.Fatalf("degenerate result %+v", res)
	}
}

// TestExactRespectsPrecedence: enumerated orders are all valid (spot check
// via a diamond whose sink must come last: 2 orders only).
func TestExactRespectsPrecedence(t *testing.T) {
	g := sdf.New("diamond")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	d := g.AddActor("D")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(a, c, 1, 1, 0)
	g.AddEdge(b, d, 1, 1, 0)
	g.AddEdge(c, d, 1, 1, 0)
	q, _ := g.Repetitions()
	res, err := BestNonShared(g, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Orders != 2 {
		t.Errorf("diamond has %d orders, want 2 (ABCD, ACBD)", res.Orders)
	}
}
