package merge

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sdf"
)

// TestMultiPortActor: an actor with two inputs and two outputs yields four
// candidates, one per (in, out) pair.
func TestMultiPortActor(t *testing.T) {
	g := sdf.New("multi")
	x := g.AddActor("X")
	y := g.AddActor("Y")
	f := g.AddActor("F")
	p := g.AddActor("P")
	q := g.AddActor("Q")
	g.AddEdge(x, f, 1, 1, 0)
	g.AddEdge(y, f, 1, 1, 0)
	g.AddEdge(f, p, 1, 1, 0)
	g.AddEdge(f, q, 1, 1, 0)
	reps := sdf.Repetitions{2, 2, 2, 2, 2}
	order, err := g.TopologicalSort(reps)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.FlatSAS(g, reps, order)
	cands := Candidates(s, nil)
	count := 0
	for _, c := range cands {
		if c.Actor == f {
			count++
		}
	}
	if count != 4 {
		t.Errorf("F yields %d candidates, want 4", count)
	}
	// Plan must not reuse any edge.
	plan := Plan(cands)
	seen := map[sdf.EdgeID]bool{}
	for _, c := range plan {
		if seen[c.In] || seen[c.Out] {
			t.Fatalf("plan reuses an edge: %+v", plan)
		}
		seen[c.In] = true
		seen[c.Out] = true
	}
}

// TestPerActorPolicy: Overlap on one actor suppresses only its candidates.
func TestPerActorPolicy(t *testing.T) {
	g := sdf.New("pol")
	a := g.AddActor("A")
	f := g.AddActor("F")
	h := g.AddActor("G")
	b := g.AddActor("B")
	g.AddEdge(a, f, 1, 1, 0)
	g.AddEdge(f, h, 1, 1, 0)
	g.AddEdge(h, b, 1, 1, 0)
	reps := sdf.Repetitions{3, 3, 3, 3}
	order, _ := g.TopologicalSort(reps)
	s := sched.FlatSAS(g, reps, order)
	cands := Candidates(s, func(id sdf.ActorID) Policy {
		if id == f {
			return Overlap
		}
		return ReadFirst
	})
	for _, c := range cands {
		if c.Actor == f {
			t.Errorf("Overlap actor F produced candidate %+v", c)
		}
	}
	if len(cands) == 0 {
		t.Error("ReadFirst actor G should still produce candidates")
	}
}

// TestVectorEdgeWeighting: candidates on vector edges measure gains in
// words, not tokens.
func TestVectorEdgeWeighting(t *testing.T) {
	g := sdf.New("vw")
	a := g.AddActor("A")
	f := g.AddActor("F")
	b := g.AddActor("B")
	in := g.AddEdge(a, f, 1, 1, 0)
	out := g.AddEdge(f, b, 1, 1, 0)
	g.SetWords(in, 10)
	reps := sdf.Repetitions{4, 4, 4}
	order, _ := g.TopologicalSort(reps)
	s := sched.FlatSAS(g, reps, order)
	c := evaluate(s, f, in, out)
	if c.MaxIn != 40 { // 4 tokens * 10 words
		t.Errorf("MaxIn = %d, want 40", c.MaxIn)
	}
	if c.MaxOut != 4 {
		t.Errorf("MaxOut = %d, want 4", c.MaxOut)
	}
	if c.MaxJoint > c.MaxIn+c.MaxOut {
		t.Errorf("joint %d exceeds sum", c.MaxJoint)
	}
}
