package merge

import (
	"testing"

	"repro/internal/lifetime"
	"repro/internal/sched"
	"repro/internal/sdf"
)

// gainChain builds A -> F -> B with unit rates and q = (n, n, n): a
// sample-by-sample pipeline where merging across F should leave the joint
// requirement at max(in) + ... specifically with the flat schedule
// (nA)(nF)(nB): in fills to n, drains as F fires while out fills — joint max
// = n + 1? Let's compute in the tests against hand-derived values.
func gainChain(t *testing.T, n int64) (*sdf.Graph, *sched.Schedule) {
	t.Helper()
	g := sdf.New("gain")
	a := g.AddActor("A")
	f := g.AddActor("F")
	b := g.AddActor("B")
	g.AddEdge(a, f, 1, 1, 0)
	g.AddEdge(f, b, 1, 1, 0)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	order, _ := g.TopologicalSort(q)
	qn := make(sdf.Repetitions, len(q))
	for i := range q {
		qn[i] = q[i] * n
	}
	return g, sched.FlatSAS(g, qn, order)
}

func TestEvaluateFlatPipeline(t *testing.T) {
	// Flat schedule (4A)(4F)(4B): the input buffer peaks at 4 just before F
	// starts; each F firing consumes one input THEN produces one output, so
	// the joint count stays at 4 throughout F's burst; B then drains.
	// Separate buffers: 4 + 4 = 8. Merged: 4. Gain 4.
	g, s := gainChain(t, 4)
	f := g.MustActor("F")
	c := evaluate(s, f, 0, 1)
	if c.MaxIn != 4 || c.MaxOut != 4 {
		t.Errorf("separate maxima = %d/%d, want 4/4", c.MaxIn, c.MaxOut)
	}
	if c.MaxJoint != 4 {
		t.Errorf("joint max = %d, want 4", c.MaxJoint)
	}
	if c.Gain != 4 {
		t.Errorf("gain = %d, want 4", c.Gain)
	}
}

func TestCandidatesOrderingAndPolicy(t *testing.T) {
	g, s := gainChain(t, 3)
	f := g.MustActor("F")
	cands := Candidates(s, nil)
	if len(cands) != 1 {
		t.Fatalf("%d candidates, want 1", len(cands))
	}
	if cands[0].Actor != f {
		t.Errorf("candidate actor = %v", cands[0].Actor)
	}
	// Overlap policy suppresses the candidate.
	none := Candidates(s, func(a sdf.ActorID) Policy {
		if a == f {
			return Overlap
		}
		return ReadFirst
	})
	if len(none) != 0 {
		t.Errorf("Overlap actor still produced %d candidates", len(none))
	}
}

func TestJointNeverExceedsSum(t *testing.T) {
	// Property: MaxJoint <= MaxIn + MaxOut always, so Gain >= 0.
	for _, n := range []int64{1, 2, 5, 9} {
		_, s := gainChain(t, n)
		for _, c := range Candidates(s, nil) {
			if c.MaxJoint > c.MaxIn+c.MaxOut {
				t.Errorf("n=%d: joint %d > %d+%d", n, c.MaxJoint, c.MaxIn, c.MaxOut)
			}
			if c.Gain < 0 {
				t.Errorf("n=%d: negative gain", n)
			}
		}
	}
}

func TestMultirateMerge(t *testing.T) {
	// A -(2,3)-> F -(1,1)-> B: q = (3,2,2). Flat schedule (3A)(2F)(2B).
	// in peaks at 6; each F firing: consume 3, produce 1.
	// After F1: in 3, out 1 (joint 4); after F2: in 0, out 2. Initial joint
	// peak is 6 (before F fires). Joint max = 6; separate = 6 + 2 = 8.
	g := sdf.New("mr")
	a := g.AddActor("A")
	f := g.AddActor("F")
	b := g.AddActor("B")
	g.AddEdge(a, f, 2, 3, 0)
	g.AddEdge(f, b, 1, 1, 0)
	q, _ := g.Repetitions()
	order, _ := g.TopologicalSort(q)
	s := sched.FlatSAS(g, q, order)
	c := evaluate(s, f, 0, 1)
	if c.MaxIn != 6 || c.MaxOut != 2 || c.MaxJoint != 6 {
		t.Errorf("got in/out/joint = %d/%d/%d, want 6/2/6", c.MaxIn, c.MaxOut, c.MaxJoint)
	}
	if c.Gain != 2 {
		t.Errorf("gain = %d, want 2", c.Gain)
	}
}

func TestPlanDisjointEdges(t *testing.T) {
	// Chain A->F->G->B: candidates (A->F, F->G) across F and (F->G, G->B)
	// across G share edge F->G; the plan must keep only one.
	g := sdf.New("chain4")
	a := g.AddActor("A")
	f := g.AddActor("F")
	h := g.AddActor("G")
	b := g.AddActor("B")
	g.AddEdge(a, f, 1, 1, 0)
	g.AddEdge(f, h, 1, 1, 0)
	g.AddEdge(h, b, 1, 1, 0)
	q := sdf.Repetitions{4, 4, 4, 4}
	order, _ := g.TopologicalSort(q)
	s := sched.FlatSAS(g, q, order)
	cands := Candidates(s, nil)
	if len(cands) != 2 {
		t.Fatalf("%d candidates, want 2", len(cands))
	}
	plan := Plan(cands)
	if len(plan) != 1 {
		t.Errorf("plan kept %d merges, want 1 (edge conflict)", len(plan))
	}
}

func TestApplyFoldsIntervals(t *testing.T) {
	ivIn := &lifetime.Interval{Name: "A->F", Size: 4, Start: 0, Dur: 8}
	ivOut := &lifetime.Interval{Name: "F->B", Size: 4, Start: 4, Dur: 8}
	other := &lifetime.Interval{Name: "X->Y", Size: 2, Start: 0, Dur: 2}
	plan := []Candidate{{In: 0, Out: 1, MaxJoint: 5, Gain: 3}}
	out := Apply([]*lifetime.Interval{ivIn, ivOut, other}, plan)
	if len(out) != 2 {
		t.Fatalf("%d intervals, want 2", len(out))
	}
	m := out[0]
	if m.Size != 5 || m.Start != 0 || m.Dur != 12 {
		t.Errorf("merged interval = %v, want size 5 span [0,12)", m)
	}
	if m.Name != "A->F+F->B" {
		t.Errorf("name = %q", m.Name)
	}
	if out[1] != other {
		t.Error("unmerged interval lost")
	}
}

func TestSelfLoopExcluded(t *testing.T) {
	g := sdf.New("self")
	a := g.AddActor("A")
	f := g.AddActor("F")
	g.AddEdge(a, f, 1, 1, 0)
	g.AddEdge(f, f, 1, 1, 1)
	q := sdf.Repetitions{2, 2}
	order := []sdf.ActorID{a, f}
	s := sched.FlatSAS(g, q, order)
	for _, c := range Candidates(s, nil) {
		if c.In == c.Out {
			t.Error("self-pair candidate emitted")
		}
		if g.Edge(c.In).Src == f && g.Edge(c.In).Dst == f {
			t.Error("self loop used as merge input")
		}
	}
}
