// Package merge implements buffer merging, the technique announced in
// Sec. 12 of the paper as the dual of lifetime analysis: an actor that is
// guaranteed to consume its inputs before producing its outputs (formalized
// through the consume-before-produce, CBP, parameter) lets the output buffer
// occupy the very cells its inputs just vacated. Lifetime analysis shares
// buffers whose lives are disjoint in time; buffer merging overlaps an
// input/output pair across a single actor even while both are live.
//
// The model here: each actor has a CBP policy. ReadFirst actors (sample-by-
// sample operators such as gains, adders, FIR taps) finish consuming before
// the first output token is written, so during their firing the input tokens
// of that firing are already dead. Overlap actors (block transforms like an
// in-place-unsafe FFT) keep inputs live until the firing completes.
//
// For a candidate (input edge, actor, output edge) triple the merged buffer
// requirement is the maximum, over a schedule period, of the combined live
// token count with the firing-granularity accounting above — never more than
// the sum of the two separate buffers, and often much less.
package merge

import (
	"sort"

	"repro/internal/lifetime"
	"repro/internal/sched"
	"repro/internal/sdf"
)

// Policy is an actor's consume-before-produce behaviour.
type Policy int

const (
	// ReadFirst: every input token of a firing is consumed before any
	// output token is produced (CBP = cons).
	ReadFirst Policy = iota
	// Overlap: outputs are produced while the firing's inputs are still
	// live (CBP = 0); merging across this actor saves nothing.
	Overlap
)

// Candidate is one potential merge of an input/output buffer pair across an
// actor.
type Candidate struct {
	Actor   sdf.ActorID
	In, Out sdf.EdgeID
	// MaxIn/MaxOut are the separate per-edge maxima over the period;
	// MaxJoint is the maximum of the combined live count under the CBP
	// accounting. Gain = MaxIn + MaxOut - MaxJoint >= 0.
	MaxIn, MaxOut, MaxJoint int64
	Gain                    int64
}

// Candidates evaluates every (in, actor, out) triple of the graph under the
// given schedule. policy(a) defaults to ReadFirst when nil.
func Candidates(s *sched.Schedule, policy func(sdf.ActorID) Policy) []Candidate {
	g := s.Graph
	var out []Candidate
	for _, actor := range g.Actors() {
		if policy != nil && policy(actor.ID) == Overlap {
			continue
		}
		for _, in := range g.In(actor.ID) {
			for _, o := range g.Out(actor.ID) {
				if g.Edge(in).Src == actor.ID || g.Edge(o).Dst == actor.ID {
					continue // self loops cannot merge across themselves
				}
				c := evaluate(s, actor.ID, in, o)
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gain != out[j].Gain {
			return out[i].Gain > out[j].Gain
		}
		if out[i].In != out[j].In {
			return out[i].In < out[j].In
		}
		return out[i].Out < out[j].Out
	})
	return out
}

// evaluate simulates one period at firing granularity, tracking only the two
// edges of interest. Consumption is applied before production within each
// firing — the ReadFirst semantics for the merge actor itself, and the same
// assumption for any third actor that happens to touch both edges.
func evaluate(s *sched.Schedule, actor sdf.ActorID, in, out sdf.EdgeID) Candidate {
	g := s.Graph
	ein, eout := g.Edge(in), g.Edge(out)
	wIn, wOut := ein.Words, eout.Words
	if wIn < 1 {
		wIn = 1
	}
	if wOut < 1 {
		wOut = 1
	}
	tin, tout := ein.Delay, eout.Delay
	c := Candidate{Actor: actor, In: in, Out: out,
		MaxIn: tin * wIn, MaxOut: tout * wOut, MaxJoint: tin*wIn + tout*wOut}
	observe := func() {
		if tin*wIn > c.MaxIn {
			c.MaxIn = tin * wIn
		}
		if tout*wOut > c.MaxOut {
			c.MaxOut = tout * wOut
		}
		if j := tin*wIn + tout*wOut; j > c.MaxJoint {
			c.MaxJoint = j
		}
	}
	s.ForEachFiring(func(a sdf.ActorID) bool {
		// Consume first (for everyone: consumption frees space).
		if ein.Dst == a {
			tin -= ein.Cons
		}
		if eout.Dst == a {
			tout -= eout.Cons
		}
		if ein.Src == a {
			tin += ein.Prod
		}
		if eout.Src == a {
			tout += eout.Prod
		}
		observe()
		return true
	})
	c.Gain = c.MaxIn + c.MaxOut - c.MaxJoint
	if c.Gain < 0 {
		c.Gain = 0
	}
	return c
}

// Plan greedily selects a set of merges with positive gain such that every
// edge participates in at most one merge.
func Plan(candidates []Candidate) []Candidate {
	used := map[sdf.EdgeID]bool{}
	var plan []Candidate
	for _, c := range candidates {
		if c.Gain <= 0 || used[c.In] || used[c.Out] {
			continue
		}
		used[c.In] = true
		used[c.Out] = true
		plan = append(plan, c)
	}
	return plan
}

// Apply folds a merge plan into a set of per-edge lifetime intervals
// (indexed by edge ID): each merged pair becomes a single conservative
// interval — live over the union envelope of the two originals, sized at the
// joint maximum — and the originals are removed. The returned slice is a
// fresh enumeration (no longer indexed by edge ID).
func Apply(intervals []*lifetime.Interval, plan []Candidate) []*lifetime.Interval {
	merged := make(map[sdf.EdgeID]bool)
	var out []*lifetime.Interval
	for _, p := range plan {
		a, b := intervals[p.In], intervals[p.Out]
		start := a.Start
		if b.Start < start {
			start = b.Start
		}
		end := a.End()
		if b.End() > end {
			end = b.End()
		}
		out = append(out, &lifetime.Interval{
			Name:  a.Name + "+" + b.Name,
			Size:  p.MaxJoint,
			Start: start,
			Dur:   end - start,
		})
		merged[p.In] = true
		merged[p.Out] = true
	}
	for id, iv := range intervals {
		if !merged[sdf.EdgeID(id)] {
			out = append(out, iv)
		}
	}
	return out
}
