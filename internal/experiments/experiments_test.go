package experiments

import (
	"strings"
	"testing"

	"repro/internal/sdf"
	"repro/internal/systems"
)

// smallSet is a cheap subset of the Table 1 systems for unit testing; the
// full set runs in the benchmark harness.
func smallSet() []*sdf.Graph {
	return []*sdf.Graph{
		systems.TwoSidedFilterbank(2, systems.Ratio23),
		systems.SatelliteReceiver(),
		systems.Modem16QAM(),
		systems.OverAddFFT(),
	}
}

func TestTable1SmallSystems(t *testing.T) {
	rows, err := Table1(smallSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BestShared() <= 0 || r.BestNonShared() <= 0 {
			t.Errorf("%s: degenerate results %+v", r.System, r)
		}
		// The shared implementation can never need more memory than the
		// non-shared one built from the same class of schedules.
		if r.BestShared() > r.BestNonShared() {
			t.Errorf("%s: shared %d > non-shared %d", r.System, r.BestShared(), r.BestNonShared())
		}
		// The non-shared cost respects the BMLB lower bound.
		if r.BestNonShared() < r.BMLB {
			t.Errorf("%s: non-shared %d below BMLB %d", r.System, r.BestNonShared(), r.BMLB)
		}
		if r.ImprovePct < 0 || r.ImprovePct >= 100 {
			t.Errorf("%s: improvement %.1f%% out of range", r.System, r.ImprovePct)
		}
		// mco <= achieved allocation (per strategy).
		if r.McoR > r.FfdurR && r.McoR > r.FfstartR {
			t.Errorf("%s: mcoR %d above both allocations %d/%d", r.System, r.McoR, r.FfdurR, r.FfstartR)
		}
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "satrec") || !strings.Contains(text, "impr%") {
		t.Error("FormatTable1 output incomplete")
	}
	bars := FormatFig25(rows)
	if !strings.Contains(bars, "%") {
		t.Error("FormatFig25 output incomplete")
	}
	if vals := Fig25(rows); len(vals) != len(rows) {
		t.Error("Fig25 series length mismatch")
	}
}

func TestFig27SmallPopulation(t *testing.T) {
	pts, err := Fig27(Fig27Config{Sizes: []int{12, 20}, PerSize: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Graphs != 6 {
			t.Errorf("size %d: %d graphs", p.Size, p.Graphs)
		}
		if p.SharedImprovePct < 0 || p.SharedImprovePct > 100 {
			t.Errorf("size %d: improvement %.1f%%", p.Size, p.SharedImprovePct)
		}
		if p.RPMCWinPct < 0 || p.RPMCWinPct > 100 {
			t.Errorf("size %d: win rate %.1f%%", p.Size, p.RPMCWinPct)
		}
		// The allocation is never below the optimistic clique bound (the
		// pessimistic bound can fall on either side of the allocation for
		// individual graphs; only its average tends to sit above).
		if p.AllocVsMcoPct < 0 {
			t.Errorf("size %d: allocation below mco on average: %+v", p.Size, p)
		}
	}
	if out := FormatFig27(pts); !strings.Contains(out, "(a)shr%") {
		t.Error("FormatFig27 output incomplete")
	}
}

func TestRandomSortStudy(t *testing.T) {
	g := systems.SatelliteReceiver()
	res, err := RandomSort(g, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Heuristic <= 0 || res.BestRandom <= 0 {
		t.Fatalf("degenerate: %+v", res)
	}
	if res.TrialsToBeat != 0 && res.BestRandom >= res.Heuristic {
		t.Errorf("inconsistent: beat at trial %d but best %d >= heuristic %d",
			res.TrialsToBeat, res.BestRandom, res.Heuristic)
	}
	if out := FormatRandomSort([]RandomSortResult{res}); !strings.Contains(out, "satrec") {
		t.Error("FormatRandomSort output incomplete")
	}
}

func TestHomogeneousStudy(t *testing.T) {
	rows, err := Homogeneous([]int{2, 3}, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Shared > r.Expected {
			t.Errorf("M=%d N=%d: shared %d exceeds the paper's M+1=%d",
				r.M, r.N, r.Shared, r.Expected)
		}
		if r.Shared >= r.NonShared {
			t.Errorf("M=%d N=%d: no improvement over non-shared", r.M, r.N)
		}
	}
	if out := FormatHomogeneous(rows); !strings.Contains(out, "non-shared") {
		t.Error("FormatHomogeneous output incomplete")
	}
}

func TestSdppoVsDppoStudy(t *testing.T) {
	rows, err := SdppoVsDppo(smallSet()[:2])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AllocSdppo <= 0 || r.AllocDppo <= 0 {
			t.Errorf("%s: degenerate %+v", r.System, r)
		}
	}
	if out := FormatSdppoVsDppo(rows); !strings.Contains(out, "alloc(sdppo)") {
		t.Error("FormatSdppoVsDppo output incomplete")
	}
}

func TestSatrecStudy(t *testing.T) {
	cmp, err := Satrec()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Shared >= cmp.NonShared {
		t.Errorf("shared %d >= non-shared %d", cmp.Shared, cmp.NonShared)
	}
	if cmp.PaperShared != 991 || cmp.PaperNonShared != 1542 {
		t.Error("paper reference constants changed")
	}
	if out := FormatSatrec(cmp); !strings.Contains(out, "Ritz") {
		t.Error("FormatSatrec output incomplete")
	}
}

func TestCDDATStudy(t *testing.T) {
	rows, err := CDDAT()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	flat, nested := rows[0], rows[1]
	// The paper's point: the nested buffer-optimal SAS needs far less input
	// buffering than the flat SAS (11 vs 65 on the authors' timing model).
	if nested.InputBuffer >= flat.InputBuffer {
		t.Errorf("nested input buffer %d not below flat %d",
			nested.InputBuffer, flat.InputBuffer)
	}
	if nested.BufMem >= flat.BufMem {
		t.Errorf("nested bufmem %d not below flat %d", nested.BufMem, flat.BufMem)
	}
	if out := FormatCDDAT(rows); !strings.Contains(out, "147") {
		t.Error("FormatCDDAT output incomplete")
	}
}

func TestInputBufferingBounds(t *testing.T) {
	g := systems.CDDAT()
	q, _ := g.Repetitions()
	src, _ := g.ActorByName("cd")
	for _, r := range mustCDDATRows(t) {
		if r.InputBuffer < 1 || r.InputBuffer > q[src.ID] {
			t.Errorf("input buffer %d outside [1, %d]", r.InputBuffer, q[src.ID])
		}
	}
}

func mustCDDATRows(t *testing.T) []CDDATRow {
	t.Helper()
	rows, err := CDDAT()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestTradeoffFrontier(t *testing.T) {
	rows, err := Tradeoff(smallSet())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The SAS classes keep the same (minimal) appearance count; the
		// greedy schedule's code explodes.
		if r.GreedyCode < r.NestedCode {
			t.Errorf("%s: greedy code %d below nested %d", r.System, r.GreedyCode, r.NestedCode)
		}
		// Buffers shrink monotonically along the frontier: flat >= nested >=
		// shared, and greedy is the per-edge floor among them.
		if r.NestedBuf > r.FlatBuf {
			t.Errorf("%s: nested %d above flat %d", r.System, r.NestedBuf, r.FlatBuf)
		}
		if r.SharedBuf > r.NestedBuf {
			t.Errorf("%s: shared %d above nested %d", r.System, r.SharedBuf, r.NestedBuf)
		}
		if r.GreedyBuf > r.FlatBuf {
			t.Errorf("%s: greedy %d above flat %d", r.System, r.GreedyBuf, r.FlatBuf)
		}
	}
	if out := FormatTradeoff(rows); !strings.Contains(out, "greedy.buf") {
		t.Error("FormatTradeoff output incomplete")
	}
}

func TestExactStudy(t *testing.T) {
	rows, err := ExactStudy([]*sdf.Graph{systems.OverAddFFT()}, 4, 10_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no exhaustible graphs in the study")
	}
	for _, r := range rows {
		if r.APGANNS < r.ExactNS || r.RPMCNS < r.ExactNS {
			t.Errorf("%s: heuristic beat the exact optimum", r.System)
		}
		if r.ExactSh <= 0 || r.BestHeurSh <= 0 {
			t.Errorf("%s: degenerate shared results %+v", r.System, r)
		}
	}
	if out := FormatExact(rows); !strings.Contains(out, "exactNS") {
		t.Error("FormatExact output incomplete")
	}
}
