package experiments

import (
	"testing"
	"time"

	"repro/internal/systems"
)

func TestParallelMemoryShape(t *testing.T) {
	rows, err := ParallelMemory(smallSet(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(smallSet()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(smallSet()))
	}
	for _, r := range rows {
		if r.SharedTotal <= 0 {
			t.Errorf("%s: sequential shared total %d", r.System, r.SharedTotal)
		}
		if len(r.Points) != 2 {
			t.Fatalf("%s: got %d points, want 2 (P=1 is the baseline, not a point)", r.System, len(r.Points))
		}
		for i, want := range []int{2, 4} {
			pt := r.Points[i]
			if pt.Workers != want {
				t.Errorf("%s: point %d has %d workers, want %d", r.System, i, pt.Workers, want)
			}
			if pt.SegmentedTotal < r.SharedTotal {
				t.Errorf("%s p%d: segmented total %d below sequential %d — segments cannot pack tighter than the unconstrained allocator",
					r.System, pt.Workers, pt.SegmentedTotal, r.SharedTotal)
			}
			if pt.MemoryRatio < 1 {
				t.Errorf("%s p%d: memory ratio %.3f < 1", r.System, pt.Workers, pt.MemoryRatio)
			}
			if pt.Imbalance < 1 {
				t.Errorf("%s p%d: imbalance %.3f < 1 (max load cannot be below mean)", r.System, pt.Workers, pt.Imbalance)
			}
			if pt.Phases <= 0 {
				t.Errorf("%s p%d: %d phases", r.System, pt.Workers, pt.Phases)
			}
		}
	}
}

func TestParallelSpeedupMeasures(t *testing.T) {
	row, err := ParallelSpeedup(systems.SatelliteReceiver(), []int{2}, 32, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if row.SeqNS <= 0 {
		t.Fatalf("sequential period measured at %d ns", row.SeqNS)
	}
	if len(row.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(row.Points))
	}
	pt := row.Points[0]
	if pt.WallNS <= 0 || pt.Speedup <= 0 {
		t.Fatalf("phased period %d ns, speedup %.3f", pt.WallNS, pt.Speedup)
	}
	if pt.Workers != 2 || pt.Firings <= 0 {
		t.Fatalf("point metadata: %+v", pt)
	}
}
