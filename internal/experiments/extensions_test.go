package experiments

import (
	"strings"
	"testing"

	"repro/internal/sdf"
	"repro/internal/systems"
)

func TestDynamicVsStaticStudy(t *testing.T) {
	rows, err := DynamicVsStatic(smallSet())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The greedy data-driven scheduler never beats the theoretical
		// all-schedules bound and never loses to the best SAS (paper: a
		// non-SAS can always do at least as well on buffering).
		if r.GreedyBufMem < r.AllSchedulesBound {
			t.Errorf("%s: greedy %d below bound %d", r.System, r.GreedyBufMem, r.AllSchedulesBound)
		}
		// The paper's claim that a non-SAS always undercuts the best SAS
		// holds for chains; our demand-driven scheduler tracks the SAS
		// closely everywhere (within 20%) and undercuts it on multirate
		// systems with large rate mismatches.
		if float64(r.GreedyBufMem) > 1.2*float64(r.SASNonShared) {
			t.Errorf("%s: greedy %d far above best SAS %d", r.System, r.GreedyBufMem, r.SASNonShared)
		}
		// ...but its schedule is much longer than the SAS.
		if r.GreedyLength <= r.SASLength {
			t.Errorf("%s: greedy length %d not above SAS length %d",
				r.System, r.GreedyLength, r.SASLength)
		}
	}
	if out := FormatDynamic(rows); !strings.Contains(out, "greedy") {
		t.Error("FormatDynamic output incomplete")
	}
}

func TestMergingStudy(t *testing.T) {
	rows, err := Merging(smallSet())
	if err != nil {
		t.Fatal(err)
	}
	anyMerge := false
	for _, r := range rows {
		if r.SharedMerged <= 0 || r.SharedBase <= 0 {
			t.Errorf("%s: degenerate %+v", r.System, r)
		}
		if r.Merges > 0 {
			anyMerge = true
		}
	}
	if !anyMerge {
		t.Error("no system produced any merge candidates")
	}
	if out := FormatMerging(rows); !strings.Contains(out, "sh+merged") {
		t.Error("FormatMerging output incomplete")
	}
}

func TestDynamicSatrecShape(t *testing.T) {
	// Sec. 11.1.3: on satrec the EDF scheduler's non-shared requirement
	// (1599) exceeded the best SAS (1542), while our greedy data-driven
	// scheduler is a tighter dynamic baseline and lands below it.
	rows, err := DynamicVsStatic([]*sdf.Graph{systems.SatelliteReceiver()})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("satrec: greedy %d (len %d) vs SAS %d/%d, bound %d",
		r.GreedyBufMem, r.GreedyLength, r.SASNonShared, r.SASShared, r.AllSchedulesBound)
	if r.GreedyBufMem > r.SASNonShared {
		t.Errorf("greedy dynamic %d should not exceed SAS non-shared %d",
			r.GreedyBufMem, r.SASNonShared)
	}
}
