package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/randsdf"
	"repro/internal/sdf"
)

// Fig27Config controls the random-graph study of Sec. 10.3 / Fig. 27.
type Fig27Config struct {
	Sizes   []int // node counts; paper: 20, 50, 100, 150
	PerSize int   // graphs per size; paper: 100
	Seed    int64
	// OnSizeTimed, if non-nil, receives the wall time of each population
	// after it completes (the benchmark trajectory hook). It does not affect
	// results.
	OnSizeTimed func(size, graphs int, elapsed time.Duration)
}

// DefaultFig27Config reproduces the paper's populations.
func DefaultFig27Config() Fig27Config {
	return Fig27Config{Sizes: []int{20, 50, 100, 150}, PerSize: 100, Seed: 2000}
}

// Fig27Point aggregates the six charts of Fig. 27 for one graph size.
type Fig27Point struct {
	Size   int
	Graphs int
	// (a) mean % by which the best shared implementation improves on the
	// best non-shared implementation.
	SharedImprovePct float64
	// (b) mean % by which the achieved allocation exceeds the optimistic
	// clique estimate; (c) mean % by which the pessimistic estimate exceeds
	// the allocation.
	AllocVsMcoPct, McpVsAllocPct float64
	// (d) mean % difference between the best allocation and the best sdppo
	// estimate.
	AllocVsSdppoPct float64
	// (e) mean % by which the RPMC-based allocation beats the APGAN-based
	// one; (f) fraction (in %) of graphs where RPMC strictly wins.
	RPMCvsAPGANPct, RPMCWinPct float64
}

// graphOutcome holds one random graph's full pipeline results.
type graphOutcome struct {
	sharedBest, nonSharedBest int64
	mco, mcp                  int64
	sdppoBest                 int64
	rpmcAlloc, apganAlloc     int64
}

// Fig27 runs the random-graph study. Graphs are generated and compiled in
// parallel (bounded by GOMAXPROCS); each worker derives its own rand source
// from the graph's index so results are deterministic regardless of
// scheduling and no *rand.Rand is ever shared across goroutines.
func Fig27(cfg Fig27Config) ([]Fig27Point, error) {
	var out []Fig27Point
	for si, size := range cfg.Sizes {
		sizeStart := time.Now()
		outcomes, err := par.Map(cfg.PerSize, func(i int) (graphOutcome, error) {
			seed := cfg.Seed + int64(si)*1_000_003 + int64(i)
			g := randsdf.Graph(rand.New(rand.NewSource(seed)), randsdf.Config{Actors: size})
			oc, err := runOne(g)
			if err != nil {
				return oc, fmt.Errorf("graph %d: %w", i, err)
			}
			return oc, nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig27 size %d: %w", size, err)
		}
		if cfg.OnSizeTimed != nil {
			cfg.OnSizeTimed(size, cfg.PerSize, time.Since(sizeStart))
		}
		var p Fig27Point
		p.Size = size
		var sumA, sumB, sumC, sumD, sumE float64
		wins := 0
		for _, oc := range outcomes {
			p.Graphs++
			sumA += pct(oc.nonSharedBest-oc.sharedBest, oc.nonSharedBest)
			sumB += pct(oc.sharedBest-oc.mco, oc.sharedBest)
			sumC += pct(oc.mcp-oc.sharedBest, oc.sharedBest)
			d := oc.sharedBest - oc.sdppoBest
			if d < 0 {
				d = -d
			}
			sumD += pct(d, oc.sharedBest)
			sumE += pct(oc.apganAlloc-oc.rpmcAlloc, oc.apganAlloc)
			if oc.rpmcAlloc < oc.apganAlloc {
				wins++
			}
		}
		n := float64(p.Graphs)
		p.SharedImprovePct = sumA / n
		p.AllocVsMcoPct = sumB / n
		p.McpVsAllocPct = sumC / n
		p.AllocVsSdppoPct = sumD / n
		p.RPMCvsAPGANPct = sumE / n
		p.RPMCWinPct = 100 * float64(wins) / n
		out = append(out, p)
	}
	return out, nil
}

// runOne compiles one graph under both order strategies and gathers the
// Fig. 27 measurements.
func runOne(g *sdf.Graph) (graphOutcome, error) {
	var oc graphOutcome
	oc.sharedBest, oc.nonSharedBest, oc.sdppoBest = -1, -1, -1
	for _, strat := range []core.OrderStrategy{core.RPMC, core.APGAN} {
		ns, err := core.Compile(g, core.Options{Strategy: strat, Looping: core.DPPOLoops})
		if err != nil {
			return oc, err
		}
		sh, err := core.Compile(g, core.Options{
			Strategy:   strat,
			Looping:    core.SDPPOLoops,
			Allocators: []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart},
		})
		if err != nil {
			return oc, err
		}
		if oc.nonSharedBest < 0 || ns.Metrics.NonSharedBufMem < oc.nonSharedBest {
			oc.nonSharedBest = ns.Metrics.NonSharedBufMem
		}
		if oc.sdppoBest < 0 || sh.Metrics.DPCost < oc.sdppoBest {
			oc.sdppoBest = sh.Metrics.DPCost
		}
		if strat == core.RPMC {
			oc.rpmcAlloc = sh.Best.Total
		} else {
			oc.apganAlloc = sh.Best.Total
		}
		if oc.sharedBest < 0 || sh.Best.Total < oc.sharedBest {
			oc.sharedBest = sh.Best.Total
			oc.mco = sh.Metrics.MCO
			oc.mcp = sh.Metrics.MCP
		}
	}
	return oc, nil
}

func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// FormatFig27 renders the six chart series as a table.
func FormatFig27(points []Fig27Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %6s | %9s %9s %9s %9s %9s %9s\n",
		"nodes", "graphs", "(a)shr%", "(b)v.mco", "(c)v.mcp", "(d)v.sdp", "(e)R>A%", "(f)Rwin%")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6d %6d | %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.1f%%\n",
			p.Size, p.Graphs, p.SharedImprovePct, p.AllocVsMcoPct, p.McpVsAllocPct,
			p.AllocVsSdppoPct, p.RPMCvsAPGANPct, p.RPMCWinPct)
	}
	return b.String()
}
