package experiments

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sdf"
)

// TestInputBufferingUniformSource: a source spread perfectly through the
// schedule needs only ~1 token of input buffering.
func TestInputBufferingUniformSource(t *testing.T) {
	g := sdf.New("uni")
	src := g.AddActor("S")
	b := g.AddActor("B")
	g.AddEdge(src, b, 1, 1, 0)
	q := sdf.Repetitions{4, 4}
	// Interleaved: S B S B S B S B — source fires every other slot.
	s := sched.MustParse(g, "(4SB)")
	got := InputBuffering(s, q, src)
	if got != 1 {
		t.Errorf("uniform source needs %d, want 1", got)
	}
}

// TestInputBufferingBurstSource: all source firings at once leave the rest
// of the period uncovered: the wrap gap spans nearly the whole period.
func TestInputBufferingBurstSource(t *testing.T) {
	g := sdf.New("burst")
	src := g.AddActor("S")
	b := g.AddActor("B")
	g.AddEdge(src, b, 1, 1, 0)
	q := sdf.Repetitions{4, 4}
	s := sched.MustParse(g, "(4S)(4B)")
	got := InputBuffering(s, q, src)
	// Gap from last S (slot 0 of the S block... the S block is ONE leaf
	// invocation = 1 slot here; blocks: (4S) slot 0, (4B) slot 1. Source
	// covered half the 2-slot period: 4 arrivals over 2 slots -> gap 2 slots
	// -> 4 tokens... the block model makes this coarse; the key property is
	// burst >= uniform.
	uniform := InputBuffering(sched.MustParse(g, "(4SB)"), q, src)
	if got < uniform {
		t.Errorf("burst schedule (%d) should need at least the uniform one (%d)", got, uniform)
	}
}

// TestInputBufferingAbsentSource: an actor that never appears in the firing
// sequence reports zero input buffering.
func TestInputBufferingAbsentSource(t *testing.T) {
	g := sdf.New("iso")
	x := g.AddActor("X")
	y := g.AddActor("Y")
	_ = x
	s := &sched.Schedule{Graph: g, Body: []*sched.Node{sched.Leaf(1, x)}}
	if got := InputBuffering(s, sdf.Repetitions{1, 0}, y); got != 0 {
		t.Errorf("absent actor input buffering = %d, want 0", got)
	}
}
