package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/pass"
	"repro/internal/sched"
	"repro/internal/sdf"
	"repro/internal/systems"
)

// HomogeneousRow is one (M, N) point of the Sec. 10.2 study on the Fig. 26
// graph class.
type HomogeneousRow struct {
	M, N int
	// Shared is the best achieved shared allocation; the paper proves M+1 is
	// attainable for every M, N.
	Shared int64
	// Expected is M+1; NonShared is the separate-buffer cost M(N-1)+2M.
	Expected, NonShared int64
}

// Homogeneous runs the study over the given (M, N) grid, one grid cell per
// worker, results in grid order. Within one cell the two ordering strategies
// compile as a planned grid, sharing the repetitions pass.
func Homogeneous(ms, ns []int) ([]HomogeneousRow, error) {
	return par.Map(len(ms)*len(ns), func(i int) (HomogeneousRow, error) {
		m, n := ms[i/len(ns)], ns[i%len(ns)]
		g := systems.Homogeneous(m, n)
		results, err := pass.RunGrid(context.Background(), g, []pass.Options{
			{Strategy: core.RPMC, Verify: true},
			{Strategy: core.APGAN, Verify: true},
		}, pass.PlanConfig{})
		if err != nil {
			return HomogeneousRow{}, fmt.Errorf("experiments: homogeneous %dx%d: %w", m, n, err)
		}
		best := int64(-1)
		for _, c := range results {
			if best < 0 || c.Best.Total < best {
				best = c.Best.Total
			}
		}
		return HomogeneousRow{
			M: m, N: n, Shared: best,
			Expected:  int64(m + 1),
			NonShared: int64(m*(n-1) + 2*m),
		}, nil
	})
}

// FormatHomogeneous renders the study.
func FormatHomogeneous(rows []HomogeneousRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %4s | %7s %9s %10s\n", "M", "N", "shared", "paper M+1", "non-shared")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d %4d | %7d %9d %10d\n", r.M, r.N, r.Shared, r.Expected, r.NonShared)
	}
	return b.String()
}

// SdppoVsDppoRow compares allocating the sdppo-optimized schedule against
// allocating the dppo-optimized schedule (Sec. 10.1: "the maximum improvement
// observed ... was about 8%").
type SdppoVsDppoRow struct {
	System                string
	AllocSdppo, AllocDppo int64
	ImprovePct            float64
}

// SdppoVsDppo runs the ablation over the given systems with both order
// strategies, keeping the better result of each looping algorithm. One
// system per worker, results in input order; within a system the four
// (strategy, looping) points compile as one planned grid, sharing the
// repetitions vector and each strategy's lexical order.
func SdppoVsDppo(graphs []*sdf.Graph) ([]SdppoVsDppoRow, error) {
	return par.MapSlice(graphs, func(_ int, g *sdf.Graph) (SdppoVsDppoRow, error) {
		row := SdppoVsDppoRow{System: g.Name, AllocSdppo: -1, AllocDppo: -1}
		var points []pass.Options
		for _, strat := range []core.OrderStrategy{core.RPMC, core.APGAN} {
			for _, la := range []core.LoopAlg{core.SDPPOLoops, core.DPPOLoops} {
				points = append(points, pass.Options{
					Strategy: strat, Looping: la,
					Allocators: []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart},
				})
			}
		}
		results, err := pass.RunGrid(context.Background(), g, points, pass.PlanConfig{})
		if err != nil {
			return row, fmt.Errorf("experiments: sdppo-vs-dppo %s: %w", g.Name, err)
		}
		for i, c := range results {
			if points[i].Looping == core.SDPPOLoops {
				if row.AllocSdppo < 0 || c.Best.Total < row.AllocSdppo {
					row.AllocSdppo = c.Best.Total
				}
			} else {
				if row.AllocDppo < 0 || c.Best.Total < row.AllocDppo {
					row.AllocDppo = c.Best.Total
				}
			}
		}
		if row.AllocDppo > 0 {
			row.ImprovePct = 100 * float64(row.AllocDppo-row.AllocSdppo) / float64(row.AllocDppo)
		}
		return row, nil
	})
}

// FormatSdppoVsDppo renders the ablation.
func FormatSdppoVsDppo(rows []SdppoVsDppoRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %8s\n", "system", "alloc(sdppo)", "alloc(dppo)", "impr%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12d %12d %7.1f%%\n", r.System, r.AllocSdppo, r.AllocDppo, r.ImprovePct)
	}
	return b.String()
}

// SatrecComparison reproduces the Sec. 11 comparison table on the satellite
// receiver: our framework's numbers next to the figures the paper quotes for
// Ritz et al.'s flat-SAS ILP approach and Goddard & Jeffay's EDF dynamic
// scheduler.
type SatrecComparison struct {
	// Ours.
	NonShared, Shared int64
	// FlatShared is our measured shared allocation when the schedule is kept
	// flat (Ritz et al. operate only on flat SASs, Sec. 11.1.2); the nested
	// Shared result shows what their restriction costs.
	FlatShared int64
	// Paper-quoted reference points (on the authors' satrec instance).
	PaperNonShared, PaperShared       int64
	PaperRitz                         int64
	PaperEDFNonShared, PaperEDFShared int64
}

// Satrec runs the comparison.
func Satrec() (SatrecComparison, error) {
	cmp := SatrecComparison{
		PaperNonShared: 1542, PaperShared: 991,
		PaperRitz:         2000, // "more than 2000 units"
		PaperEDFNonShared: 1599, PaperEDFShared: 1101,
	}
	g := systems.SatelliteReceiver()
	cmp.NonShared, cmp.Shared, cmp.FlatShared = -1, -1, -1
	// Six grid points — both strategies times the three schedule classes —
	// planned together: each strategy's lexical order is computed once and
	// shared by its three loopings.
	var points []pass.Options
	for _, strat := range []core.OrderStrategy{core.RPMC, core.APGAN} {
		points = append(points,
			pass.Options{Strategy: strat, Looping: core.DPPOLoops},
			pass.Options{Strategy: strat, Looping: core.SDPPOLoops, Verify: true},
			pass.Options{Strategy: strat, Looping: core.FlatLoops, Verify: true},
		)
	}
	results, err := pass.RunGrid(context.Background(), g, points, pass.PlanConfig{})
	if err != nil {
		return cmp, err
	}
	for i := 0; i < len(results); i += 3 {
		ns, sh, fl := results[i], results[i+1], results[i+2]
		if cmp.NonShared < 0 || ns.Metrics.NonSharedBufMem < cmp.NonShared {
			cmp.NonShared = ns.Metrics.NonSharedBufMem
		}
		if cmp.Shared < 0 || sh.Best.Total < cmp.Shared {
			cmp.Shared = sh.Best.Total
		}
		if cmp.FlatShared < 0 || fl.Best.Total < cmp.FlatShared {
			cmp.FlatShared = fl.Best.Total
		}
	}
	return cmp, nil
}

// FormatSatrec renders the comparison.
func FormatSatrec(c SatrecComparison) string {
	var b strings.Builder
	b.WriteString("satellite receiver (Sec. 11 comparisons)\n")
	fmt.Fprintf(&b, "  this framework:   non-shared %d, shared %d (%.0f%% reduction)\n",
		c.NonShared, c.Shared, 100*float64(c.NonShared-c.Shared)/float64(c.NonShared))
	fmt.Fprintf(&b, "  flat SAS, shared (Ritz-class schedules): %d\n", c.FlatShared)
	fmt.Fprintf(&b, "  paper (authors'): non-shared %d, shared %d\n", c.PaperNonShared, c.PaperShared)
	fmt.Fprintf(&b, "  Ritz et al. flat-SAS ILP: > %d\n", c.PaperRitz)
	fmt.Fprintf(&b, "  Goddard/Jeffay EDF: non-shared %d, shared approx %d\n",
		c.PaperEDFNonShared, c.PaperEDFShared)
	return b.String()
}

// InputBuffering estimates the graph-input buffering a real-time deployment
// of the schedule needs (Sec. 11.1.3): with unit-time firings, input samples
// arrive uniformly at q(src) per period while the source only drains them
// when it fires. The buffer must absorb the arrivals of the longest cyclic
// gap between consecutive source firings — a flat SAS fires the source in
// one burst and then starves it for the rest of the period, while a nested
// SAS spreads the firings out (the paper's 65-vs-11 CD-DAT observation).
func InputBuffering(s *sched.Schedule, q sdf.Repetitions, src sdf.ActorID) int64 {
	total := q.TotalFirings()
	need := q[src]
	var slots []int64
	var t int64
	s.ForEachFiring(func(a sdf.ActorID) bool {
		if a == src {
			slots = append(slots, t)
		}
		t++
		return true
	})
	if len(slots) == 0 || total == 0 {
		return 0
	}
	var maxGap int64
	for i := 1; i < len(slots); i++ {
		if g := slots[i] - slots[i-1]; g > maxGap {
			maxGap = g
		}
	}
	// Wrap-around gap into the next period.
	if g := slots[0] + total - slots[len(slots)-1]; g > maxGap {
		maxGap = g
	}
	// Arrivals during the worst gap, at need/total samples per slot.
	buf := (maxGap*need + total - 1) / total
	if buf < 1 {
		buf = 1
	}
	return buf
}

// CDDATRow compares input buffering of the flat SAS against the nested
// buffer-optimal SAS on the CD-to-DAT converter.
type CDDATRow struct {
	Schedule    string
	InputBuffer int64
	BufMem      int64
}

// CDDAT runs the comparison of Sec. 11.1.3 (paper: nested needs ~11 input
// tokens, flat needs ~65, against a 147-sample period).
func CDDAT() ([]CDDATRow, error) {
	g := systems.CDDAT()
	q, err := g.Repetitions()
	if err != nil {
		return nil, err
	}
	src, _ := g.ActorByName("cd")
	loopings := []core.LoopAlg{core.FlatLoops, core.DPPOLoops}
	points := make([]pass.Options, len(loopings))
	for i, la := range loopings {
		points[i] = pass.Options{Strategy: core.APGAN, Looping: la}
	}
	results, err := pass.RunGrid(context.Background(), g, points, pass.PlanConfig{})
	if err != nil {
		return nil, err
	}
	var rows []CDDATRow
	for i, c := range results {
		rows = append(rows, CDDATRow{
			Schedule:    fmt.Sprintf("%s: %s", loopings[i], c.Schedule),
			InputBuffer: InputBuffering(c.Schedule, q, src.ID),
			BufMem:      c.Metrics.NonSharedBufMem,
		})
	}
	return rows, nil
}

// FormatCDDAT renders the comparison.
func FormatCDDAT(rows []CDDATRow) string {
	var b strings.Builder
	b.WriteString("CD-to-DAT input buffering (period = 147 input samples)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  inputBuf=%4d bufmem=%4d  %s\n", r.InputBuffer, r.BufMem, r.Schedule)
	}
	return b.String()
}
