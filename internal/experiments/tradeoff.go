package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dynsched"
	"repro/internal/pass"
	"repro/internal/sdf"
)

// TradeoffRow quantifies the paper's central premise — code size is
// prioritized over buffer memory (Sec. 4), and every schedule class buys one
// at the expense of the other — for a single system:
//
//	flat SAS     : minimal loop nesting, worst buffers
//	nested SAS   : same minimal appearance count, buffer-optimized nesting
//	shared SAS   : nested + lifetime-shared memory (this paper)
//	data-driven  : minimal buffers, schedule as long as the firing count
type TradeoffRow struct {
	System string
	// Code sizes under the Sec. 3 metric (appearances + loops).
	FlatCode, NestedCode, GreedyCode int64
	// Buffer words: per-edge for flat/nested/greedy, shared for this paper.
	FlatBuf, NestedBuf, SharedBuf, GreedyBuf int64
}

// Tradeoff computes the code-size/memory frontier for the given systems
// (best of RPMC/APGAN per schedule class, loop overhead 1).
func Tradeoff(graphs []*sdf.Graph) ([]TradeoffRow, error) {
	var rows []TradeoffRow
	for _, g := range graphs {
		row := TradeoffRow{System: g.Name,
			FlatBuf: -1, NestedBuf: -1, SharedBuf: -1}
		q, err := g.Repetitions()
		if err != nil {
			return nil, err
		}
		// Six points per system (2 strategies × 3 schedule classes), planned
		// together so the loopings share each strategy's lexical order.
		var points []pass.Options
		for _, strat := range []core.OrderStrategy{core.RPMC, core.APGAN} {
			points = append(points,
				pass.Options{Strategy: strat, Looping: core.FlatLoops},
				pass.Options{Strategy: strat, Looping: core.DPPOLoops},
				pass.Options{Strategy: strat, Looping: core.SDPPOLoops},
			)
		}
		results, err := pass.RunGrid(context.Background(), g, points, pass.PlanConfig{})
		if err != nil {
			return nil, fmt.Errorf("experiments: tradeoff %s: %w", g.Name, err)
		}
		for i := 0; i < len(results); i += 3 {
			flat, nested, shared := results[i], results[i+1], results[i+2]
			if row.FlatBuf < 0 || flat.Metrics.NonSharedBufMem < row.FlatBuf {
				row.FlatBuf = flat.Metrics.NonSharedBufMem
				row.FlatCode = flat.Schedule.CodeSize(1)
			}
			if row.NestedBuf < 0 || nested.Metrics.NonSharedBufMem < row.NestedBuf {
				row.NestedBuf = nested.Metrics.NonSharedBufMem
				row.NestedCode = nested.Schedule.CodeSize(1)
			}
			if row.SharedBuf < 0 || shared.Metrics.SharedTotal < row.SharedBuf {
				row.SharedBuf = shared.Metrics.SharedTotal
			}
		}
		greedy, err := dynsched.Schedule(g, q)
		if err != nil {
			return nil, err
		}
		row.GreedyBuf = greedy.BufMem
		row.GreedyCode = greedy.AsSchedule(g).CodeSize(1)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTradeoff renders the frontier.
func FormatTradeoff(rows []TradeoffRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %9s %9s | %9s %9s | %9s | %10s %10s\n",
		"system", "flat.code", "flat.buf", "nest.code", "nest.buf",
		"shared", "greedy.code", "greedy.buf")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s | %9d %9d | %9d %9d | %9d | %10d %10d\n",
			r.System, r.FlatCode, r.FlatBuf, r.NestedCode, r.NestedBuf,
			r.SharedBuf, r.GreedyCode, r.GreedyBuf)
	}
	return b.String()
}
