package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/apgan"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/looping"
	"repro/internal/par"
	"repro/internal/randsdf"
	"repro/internal/rpmc"
	"repro/internal/sdf"
)

// ExactRow compares the heuristics against the exhaustively-computed optimum
// on one graph. The SAS-construction problem is NP-complete (Sec. 7), so
// this is only feasible for small order spaces; it quantifies directly how
// much the polynomial heuristics give up.
type ExactRow struct {
	System string
	Actors int
	Orders int
	// Non-shared bufmem (EQ 1): exact optimum over all SASs vs heuristics.
	ExactNS, APGANNS, RPMCNS int64
	// Shared first-fit allocation: best over all orders vs heuristics.
	ExactSh, BestHeurSh int64
}

// ExactStudy runs the comparison on small random graphs plus any supplied
// systems with tractable order spaces (orders capped at maxOrders; rows
// whose space exceeds the cap are skipped). Graph generation stays
// sequential — the random graphs are drawn from one seeded stream — while
// the exhaustive per-graph searches run in parallel, with rows collected in
// generation order.
func ExactStudy(graphs []*sdf.Graph, randomN, maxOrders int, seed int64) ([]ExactRow, error) {
	rng := rand.New(rand.NewSource(seed))
	all := append([]*sdf.Graph{}, graphs...)
	for i := 0; i < randomN; i++ {
		all = append(all, randsdf.Graph(rng, randsdf.Config{Actors: 5 + rng.Intn(4)}))
	}
	type outcome struct {
		row ExactRow
		ok  bool
	}
	outcomes, err := par.MapSlice(all, func(i int, g *sdf.Graph) (outcome, error) {
		row, ok, err := exactRow(g, i, maxOrders)
		return outcome{row: row, ok: ok}, err
	})
	if err != nil {
		return nil, err
	}
	var rows []ExactRow
	for _, oc := range outcomes {
		if oc.ok {
			rows = append(rows, oc.row)
		}
	}
	return rows, nil
}

// exactRow runs the exhaustive search and both heuristics on one graph; ok is
// false when the graph's order space exceeds maxOrders.
func exactRow(g *sdf.Graph, i, maxOrders int) (ExactRow, bool, error) {
	var row ExactRow
	q, err := g.Repetitions()
	if err != nil {
		return row, false, err
	}
	exNS, err := exact.BestNonShared(g, q, maxOrders)
	if err != nil {
		return row, false, fmt.Errorf("experiments: exact %s: %w", g.Name, err)
	}
	if !exNS.Exhausted {
		return row, false, nil
	}
	exSh, err := exact.BestShared(g, q, maxOrders)
	if err != nil {
		return row, false, err
	}
	row = ExactRow{System: fmt.Sprintf("%s#%d", g.Name, i), Actors: g.NumActors(),
		Orders: exNS.Orders, ExactNS: exNS.Best, ExactSh: exSh.Best}
	ar, err := apgan.Run(g, q)
	if err != nil {
		return row, false, err
	}
	ad, err := looping.DPPO(g, q, ar.Order)
	if err != nil {
		return row, false, err
	}
	row.APGANNS, err = ad.Schedule.BufMem()
	if err != nil {
		return row, false, err
	}
	rOrder, err := rpmc.Order(g, q)
	if err != nil {
		return row, false, err
	}
	rd, err := looping.DPPO(g, q, rOrder)
	if err != nil {
		return row, false, err
	}
	row.RPMCNS, err = rd.Schedule.BufMem()
	if err != nil {
		return row, false, err
	}
	row.BestHeurSh = -1
	for _, strat := range []core.OrderStrategy{core.RPMC, core.APGAN} {
		c, err := core.Compile(g, core.Options{Strategy: strat, Looping: core.SDPPOLoops})
		if err != nil {
			return row, false, err
		}
		if row.BestHeurSh < 0 || c.Metrics.SharedTotal < row.BestHeurSh {
			row.BestHeurSh = c.Metrics.SharedTotal
		}
	}
	return row, true, nil
}

// FormatExact renders the comparison.
func FormatExact(rows []ExactRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %6s %7s | %8s %8s %8s | %8s %8s\n",
		"graph", "actors", "orders", "exactNS", "apganNS", "rpmcNS", "exactSh", "heurSh")
	optimal := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %6d %7d | %8d %8d %8d | %8d %8d\n",
			r.System, r.Actors, r.Orders, r.ExactNS, r.APGANNS, r.RPMCNS, r.ExactSh, r.BestHeurSh)
		if r.APGANNS == r.ExactNS || r.RPMCNS == r.ExactNS {
			optimal++
		}
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "a heuristic hit the exact non-shared optimum on %d/%d graphs\n",
			optimal, len(rows))
	}
	return b.String()
}
