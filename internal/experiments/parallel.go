package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/sdf"
)

// ParallelPoint is one (system, worker count) cell of the parallel study: the
// phased schedule's shape and the memory price of segmenting the shared
// buffer image so P workers can fire concurrently.
type ParallelPoint struct {
	Workers int `json:"workers"`
	Phases  int `json:"phases"`
	// SegmentedTotal is the partitioned image extent; MemoryRatio divides it
	// by the sequential shared total (1.0 = parallelism for free, larger =
	// cells paid for concurrency).
	SegmentedTotal int64   `json:"segmented_total"`
	MemoryRatio    float64 `json:"memory_ratio"`
	// Imbalance is the heaviest worker's cost load over the mean load
	// (1.0 = perfectly balanced).
	Imbalance float64 `json:"imbalance"`
}

// ParallelRow is the memory-vs-P study for one system.
type ParallelRow struct {
	System      string          `json:"system"`
	SharedTotal int64           `json:"shared_total"`
	Points      []ParallelPoint `json:"points"`
}

// ParallelMemory compiles every system sequentially and at each worker count
// and reports how the segmented parallel image grows with P. Worker counts
// below 2 are skipped (they are the sequential baseline by definition).
func ParallelMemory(graphs []*sdf.Graph, workers []int) ([]ParallelRow, error) {
	var rows []ParallelRow
	for _, g := range graphs {
		seq, err := core.Compile(g, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: parallel %s: %w", g.Name, err)
		}
		row := ParallelRow{System: g.Name, SharedTotal: seq.Metrics.SharedTotal}
		for _, p := range workers {
			if p < 2 {
				continue
			}
			res, err := core.Compile(g, core.Options{Partitions: p})
			if err != nil {
				return nil, fmt.Errorf("experiments: parallel %s/p%d: %w", g.Name, p, err)
			}
			if res.Partition == nil || res.Segmented == nil {
				continue // cyclic graphs compile with partitioning disabled
			}
			pt := ParallelPoint{
				Workers:        res.Partition.P,
				Phases:         res.Partition.NumPhases,
				SegmentedTotal: res.Segmented.Total,
			}
			if row.SharedTotal > 0 {
				pt.MemoryRatio = float64(pt.SegmentedTotal) / float64(row.SharedTotal)
			}
			var sum, max int64
			for _, l := range res.Partition.Load {
				sum += l
				if l > max {
					max = l
				}
			}
			if sum > 0 {
				pt.Imbalance = float64(max) * float64(res.Partition.P) / float64(sum)
			}
			row.Points = append(row.Points, pt)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatParallel renders the memory-vs-P table.
func FormatParallel(rows []ParallelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %8s |", "system", "shared")
	if len(rows) > 0 {
		for _, pt := range rows[0].Points {
			fmt.Fprintf(&b, " %8s %6s %6s |", fmt.Sprintf("p%d.cells", pt.Workers), "ratio", "imbal")
		}
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s | %8d |", r.System, r.SharedTotal)
		for _, pt := range r.Points {
			fmt.Fprintf(&b, " %8d %6.2f %6.2f |", pt.SegmentedTotal, pt.MemoryRatio, pt.Imbalance)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SpeedupPoint is one timed worker count: wall time per period of the phased
// engine against the sequential engine on the same compilation.
type SpeedupPoint struct {
	Workers  int     `json:"workers"`
	WallNS   int64   `json:"wall_ns"`
	Speedup  float64 `json:"speedup"`
	Phases   int     `json:"phases"`
	Firings  int64   `json:"firings"`
	WorkIter int     `json:"work_iters_per_firing"`
}

// SpeedupRow is the speedup-vs-P study for one system.
type SpeedupRow struct {
	System string         `json:"system"`
	SeqNS  int64          `json:"seq_ns"`
	Points []SpeedupPoint `json:"points"`
}

// workFire builds actor behaviours that burn `work` iterations of floating
// point arithmetic per firing on top of the usual fold — a stand-in for real
// actor bodies, so the barrier overhead is weighed against computation the
// way a deployment would see it. Outputs stay a deterministic function of
// inputs; every engine gets its own closure set.
func workFire(g *sdf.Graph, work int) map[sdf.ActorID]runtime.Fire {
	fires := make(map[sdf.ActorID]runtime.Fire, g.NumActors())
	for _, a := range g.Actors() {
		id := a.ID
		fires[id] = func(inputs [][]float64) [][]float64 {
			var acc float64
			for _, in := range inputs {
				for _, v := range in {
					acc += v
				}
			}
			x := acc + 1
			for k := 0; k < work; k++ {
				x = x*1.0000001 + 0.5
			}
			outs := make([][]float64, len(g.Out(id)))
			for oi, eid := range g.Out(id) {
				vals := make([]float64, g.Edge(eid).Prod)
				for i := range vals {
					vals[i] = x + float64(i)
				}
				outs[oi] = vals
			}
			return outs
		}
	}
	return fires
}

// ParallelSpeedup times period execution of the sequential engine and of the
// phased engine at every worker count, with `work` arithmetic iterations per
// firing, re-running periods until each measurement spans the budget.
func ParallelSpeedup(g *sdf.Graph, workers []int, work int, budget time.Duration) (*SpeedupRow, error) {
	seq, err := core.Compile(g, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: speedup %s: %w", g.Name, err)
	}
	var firings int64
	for _, a := range g.Actors() {
		firings += seq.Repetitions.Q(a.ID)
	}
	seqEng, err := runtime.New(seq, workFire(g, work))
	if err != nil {
		return nil, err
	}
	row := &SpeedupRow{System: g.Name}
	row.SeqNS = timePeriods(budget, func() error { return seqEng.RunPeriod() })
	for _, p := range workers {
		if p < 2 {
			continue
		}
		res, err := core.Compile(g, core.Options{Partitions: p})
		if err != nil {
			return nil, fmt.Errorf("experiments: speedup %s/p%d: %w", g.Name, p, err)
		}
		if res.Partition == nil {
			continue // cyclic graphs compile with partitioning disabled
		}
		parEng, err := runtime.NewPhased(res, workFire(g, work))
		if err != nil {
			return nil, err
		}
		pt := SpeedupPoint{
			Workers:  res.Partition.P,
			Phases:   res.Partition.NumPhases,
			Firings:  firings,
			WorkIter: work,
		}
		pt.WallNS = timePeriods(budget, func() error { return parEng.RunPeriod() })
		if pt.WallNS > 0 {
			pt.Speedup = float64(row.SeqNS) / float64(pt.WallNS)
		}
		row.Points = append(row.Points, pt)
	}
	return row, nil
}

// timePeriods measures runPeriod's per-call wall time, doubling the period
// count until the measurement spans the budget. Engines carry state across
// periods, so calls are never discarded — warm-up is one period.
func timePeriods(budget time.Duration, runPeriod func() error) int64 {
	if err := runPeriod(); err != nil {
		panic(err)
	}
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := runPeriod(); err != nil {
				panic(err)
			}
		}
		elapsed := time.Since(start)
		if elapsed >= budget || n >= 1<<20 {
			return elapsed.Nanoseconds() / int64(n)
		}
		n *= 2
	}
}

// FormatSpeedup renders one system's speedup-vs-P measurements.
func FormatSpeedup(rows []*SpeedupRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %12s |", "system", "seq ns/per")
	if len(rows) > 0 {
		for _, pt := range rows[0].Points {
			fmt.Fprintf(&b, " %12s %7s |", fmt.Sprintf("p%d ns/per", pt.Workers), "speedup")
		}
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s | %12d |", r.System, r.SeqNS)
		for _, pt := range r.Points {
			fmt.Fprintf(&b, " %12d %7.2f |", pt.WallNS, pt.Speedup)
		}
		b.WriteString("\n")
	}
	return b.String()
}
