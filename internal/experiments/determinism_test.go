package experiments

import (
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/systems"
)

// TestPipelineOutputDeterministic runs a representative slice of the pipeline
// twice in the same process — experiment tables (parallel compilation) and C
// code generation — and asserts the rendered output is byte-identical. Go
// randomizes map iteration per range statement, so any map-ordered loop on
// the output path flips this test even within one run.
func TestPipelineOutputDeterministic(t *testing.T) {
	render := func() string {
		var b strings.Builder
		rows, err := Table1(smallSet())
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(FormatTable1(rows))
		dyn, err := DynamicVsStatic(smallSet())
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(FormatDynamic(dyn))
		par, err := ParallelMemory(smallSet(), []int{2, 4})
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(FormatParallel(par))
		res, err := core.Compile(systems.SatelliteReceiver(), core.Options{
			Strategy:   core.APGAN,
			Looping:    core.SDPPOLoops,
			Allocators: []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart},
		})
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(codegen.GenerateC(res))
		return b.String()
	}
	first := render()
	for run := 1; run <= 2; run++ {
		if got := render(); got != first {
			t.Fatalf("run %d produced different output than run 0:\nfirst:\n%s\n\ngot:\n%s", run, first, got)
		}
	}
}
