// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 10) plus the comparisons of Sec. 11: Table 1 and the
// Fig. 25 improvement bars on the practical systems, the random-topological-
// sort search study, the homogeneous-graph study of Fig. 26, the random-graph
// charts of Fig. 27, the sdppo-vs-dppo ablation, and the CD-DAT input
// buffering analysis.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/pass"
	"repro/internal/sdf"
	"repro/internal/systems"
)

// Table1Row reproduces one row of Table 1: all metrics for one practical
// system under both RPMC- and APGAN-generated lexical orders.
type Table1Row struct {
	System string
	Actors int
	// RPMC columns.
	DppoR, SdppoR, McoR, McpR, FfdurR, FfstartR int64
	// Lower bound (non-shared, over all SASs).
	BMLB int64
	// APGAN columns.
	DppoA, SdppoA, McoA, McpA, FfdurA, FfstartA int64
	// ImprovePct is the paper's last column:
	// (min(dppo) - min(ff*)) / min(dppo) * 100.
	ImprovePct float64
}

// BestShared returns the smallest achieved shared allocation of the row.
func (r Table1Row) BestShared() int64 {
	return min(r.FfdurR, r.FfstartR, r.FfdurA, r.FfstartA)
}

// BestNonShared returns the better of the two DPPO results.
func (r Table1Row) BestNonShared() int64 { return min(r.DppoR, r.DppoA) }

// Table1 computes the full table for the given systems (use
// systems.Table1Systems() for the paper's set). Systems are compiled in
// parallel; rows come back in input order.
func Table1(graphs []*sdf.Graph) ([]Table1Row, error) {
	return par.MapSlice(graphs, func(_ int, g *sdf.Graph) (Table1Row, error) {
		row, err := table1Row(g)
		if err != nil {
			return row, fmt.Errorf("experiments: %s: %w", g.Name, err)
		}
		return row, nil
	})
}

func table1Row(g *sdf.Graph) (Table1Row, error) {
	bmlb, err := g.BMLB()
	if err != nil {
		return Table1Row{System: g.Name}, err
	}
	row := Table1Row{System: g.Name, Actors: g.NumActors(), BMLB: bmlb}
	// All four compilations — per strategy, the non-shared DPPO reference
	// and the verified SDPPO shared implementation — as one planned grid:
	// the repetitions vector and each strategy's lexical order are shared.
	strats := []core.OrderStrategy{core.RPMC, core.APGAN}
	var points []pass.Options
	for _, strat := range strats {
		points = append(points,
			pass.Options{Strategy: strat, Looping: core.DPPOLoops},
			pass.Options{
				Strategy:   strat,
				Looping:    core.SDPPOLoops,
				Allocators: []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart},
				Verify:     true,
			},
		)
	}
	results, err := pass.RunGrid(context.Background(), g, points, pass.PlanConfig{})
	if err != nil {
		return row, err
	}
	for si, strat := range strats {
		ns, sh := results[2*si], results[2*si+1]
		dppo := ns.Metrics.NonSharedBufMem
		sdppo := sh.Metrics.DPCost
		ffdur := sh.Metrics.AllocTotals[alloc.FirstFitDuration.String()]
		ffstart := sh.Metrics.AllocTotals[alloc.FirstFitStart.String()]
		if strat == core.RPMC {
			row.DppoR, row.SdppoR = dppo, sdppo
			row.McoR, row.McpR = sh.Metrics.MCO, sh.Metrics.MCP
			row.FfdurR, row.FfstartR = ffdur, ffstart
		} else {
			row.DppoA, row.SdppoA = dppo, sdppo
			row.McoA, row.McpA = sh.Metrics.MCO, sh.Metrics.MCP
			row.FfdurA, row.FfstartA = ffdur, ffstart
		}
	}
	if ns := row.BestNonShared(); ns > 0 {
		row.ImprovePct = 100 * float64(ns-row.BestShared()) / float64(ns)
	}
	return row, nil
}

// FormatTable1 renders the rows in the paper's column layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %5s | %6s %6s %5s %5s %6s %7s | %6s | %6s %6s %5s %5s %6s %7s | %6s\n",
		"system", "n", "dppoR", "sdppoR", "mcoR", "mcpR", "ffdurR", "ffstrtR",
		"bmlb", "dppoA", "sdppoA", "mcoA", "mcpA", "ffdurA", "ffstrtA", "impr%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %5d | %6d %6d %5d %5d %6d %7d | %6d | %6d %6d %5d %5d %6d %7d | %5.1f%%\n",
			r.System, r.Actors, r.DppoR, r.SdppoR, r.McoR, r.McpR, r.FfdurR, r.FfstartR,
			r.BMLB, r.DppoA, r.SdppoA, r.McoA, r.McpA, r.FfdurA, r.FfstartA, r.ImprovePct)
	}
	return b.String()
}

// Fig25 returns the improvement-percentage series of the bar graph in
// Fig. 25 (one value per practical system, same order as Table 1).
func Fig25(rows []Table1Row) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r.ImprovePct
	}
	return out
}

// FormatFig25 renders the bar chart as ASCII (one bar per system).
func FormatFig25(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Percentage improvement of shared over non-shared implementation\n")
	for _, r := range rows {
		n := int(r.ImprovePct / 2)
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-12s %5.1f%% %s\n", r.System, r.ImprovePct, strings.Repeat("#", n))
	}
	return b.String()
}

// DefaultTable1 computes Table 1 on the paper's benchmark set.
func DefaultTable1() ([]Table1Row, error) {
	return Table1(systems.Table1Systems())
}
