package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dynsched"
	"repro/internal/sdf"
)

// DynamicRow reproduces the static-vs-dynamic comparison of Sec. 11.1.3 for
// one system: the greedy data-driven scheduler reaches lower per-edge buffer
// totals than any single appearance schedule, at the cost of a schedule as
// long as the total firing count.
type DynamicRow struct {
	System string
	// GreedyBufMem is the non-shared buffer total of the data-driven
	// schedule; GreedyLength its firing count (dispatch/code cost).
	GreedyBufMem, GreedyLength int64
	// SASNonShared and SASShared are the best static SAS results.
	SASNonShared, SASShared int64
	// SASLength is the number of firing blocks in the nested SAS (its code
	// cost under inline generation).
	SASLength int64
	// AllSchedulesBound is the theoretical per-edge minimum over all valid
	// schedules (Sec. 11.1.3 closed form).
	AllSchedulesBound int64
}

// DynamicVsStatic runs the comparison over the given systems.
func DynamicVsStatic(graphs []*sdf.Graph) ([]DynamicRow, error) {
	var rows []DynamicRow
	for _, g := range graphs {
		q, err := g.Repetitions()
		if err != nil {
			return nil, err
		}
		greedy, err := dynsched.Schedule(g, q)
		if err != nil {
			return nil, fmt.Errorf("experiments: dynamic %s: %w", g.Name, err)
		}
		bound, err := g.MinBufferAllSchedules()
		if err != nil {
			return nil, fmt.Errorf("experiments: dynamic %s: %w", g.Name, err)
		}
		row := DynamicRow{
			System:            g.Name,
			GreedyBufMem:      greedy.BufMem,
			GreedyLength:      greedy.Length,
			AllSchedulesBound: bound,
			SASNonShared:      -1,
			SASShared:         -1,
		}
		for _, strat := range []core.OrderStrategy{core.RPMC, core.APGAN} {
			ns, err := core.Compile(g, core.Options{Strategy: strat, Looping: core.DPPOLoops})
			if err != nil {
				return nil, err
			}
			sh, err := core.Compile(g, core.Options{Strategy: strat, Looping: core.SDPPOLoops})
			if err != nil {
				return nil, err
			}
			if row.SASNonShared < 0 || ns.Metrics.NonSharedBufMem < row.SASNonShared {
				row.SASNonShared = ns.Metrics.NonSharedBufMem
			}
			if row.SASShared < 0 || sh.Metrics.SharedTotal < row.SASShared {
				row.SASShared = sh.Metrics.SharedTotal
			}
		}
		row.SASLength = int64(g.NumActors())
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatDynamic renders the comparison.
func FormatDynamic(rows []DynamicRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %8s %8s | %8s %8s %6s | %8s\n",
		"system", "greedy", "length", "sas-ns", "sas-sh", "saslen", "bound")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s | %8d %8d | %8d %8d %6d | %8d\n",
			r.System, r.GreedyBufMem, r.GreedyLength,
			r.SASNonShared, r.SASShared, r.SASLength, r.AllSchedulesBound)
	}
	return b.String()
}

// MergeRow reports the additional effect of buffer merging (Sec. 12) on top
// of lifetime-based sharing for one system.
type MergeRow struct {
	System string
	// SharedBase is the best first-fit allocation without merging;
	// SharedMerged the same with the greedy merge plan applied first.
	SharedBase, SharedMerged int64
	// Merges is the number of input/output pairs merged; PlanGain the total
	// size reduction the plan predicts before allocation.
	Merges   int
	PlanGain int64
}

// Merging runs the buffer-merging ablation: all actors are assumed
// ReadFirst (sample-operator semantics), the strongest legal setting. The
// plan is allocation-aware (core.Options.Merging), so merging never
// regresses.
func Merging(graphs []*sdf.Graph) ([]MergeRow, error) {
	var rows []MergeRow
	for _, g := range graphs {
		row := MergeRow{System: g.Name, SharedBase: -1, SharedMerged: -1}
		for _, strat := range []core.OrderStrategy{core.RPMC, core.APGAN} {
			res, err := core.Compile(g, core.Options{
				Strategy: strat, Looping: core.SDPPOLoops, Merging: true,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: merging %s: %w", g.Name, err)
			}
			if row.SharedBase < 0 || res.Metrics.SharedTotal < row.SharedBase {
				row.SharedBase = res.Metrics.SharedTotal
			}
			if row.SharedMerged < 0 || res.Metrics.MergedTotal < row.SharedMerged {
				row.SharedMerged = res.Metrics.MergedTotal
				row.Merges = res.Metrics.Merges
				row.PlanGain = res.Metrics.SharedTotal - res.Metrics.MergedTotal
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatMerging renders the ablation.
func FormatMerging(rows []MergeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %9s %11s %7s %9s %7s\n",
		"system", "shared", "sh+merged", "merges", "plangain", "extra%")
	for _, r := range rows {
		extra := 0.0
		if r.SharedBase > 0 {
			extra = 100 * float64(r.SharedBase-r.SharedMerged) / float64(r.SharedBase)
		}
		fmt.Fprintf(&b, "%-12s | %9d %11d %7d %9d %6.1f%%\n",
			r.System, r.SharedBase, r.SharedMerged, r.Merges, r.PlanGain, extra)
	}
	return b.String()
}
