package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/sdf"
)

// RandomSortResult reproduces the Sec. 10.1 random-search study for one
// system: how random topological sorts compare against the better of the
// RPMC- and APGAN-based shared allocations.
type RandomSortResult struct {
	System     string
	Trials     int
	Heuristic  int64 // best of RPMC/APGAN shared allocation
	BestRandom int64 // best shared allocation over all random sorts
	// TrialsToBeat is the first trial index (1-based) whose allocation beat
	// the heuristic result, or 0 if never.
	TrialsToBeat int
}

// RandomSort runs the study on one graph with the given number of random
// topological sorts.
func RandomSort(g *sdf.Graph, trials int, seed int64) (RandomSortResult, error) {
	res := RandomSortResult{System: g.Name, Trials: trials}
	q, err := g.Repetitions()
	if err != nil {
		return res, err
	}
	res.Heuristic = -1
	for _, strat := range []core.OrderStrategy{core.RPMC, core.APGAN} {
		c, err := core.Compile(g, core.Options{Strategy: strat, Looping: core.SDPPOLoops})
		if err != nil {
			return res, err
		}
		if res.Heuristic < 0 || c.Best.Total < res.Heuristic {
			res.Heuristic = c.Best.Total
		}
	}
	rng := rand.New(rand.NewSource(seed))
	res.BestRandom = -1
	for i := 1; i <= trials; i++ {
		order, err := g.RandomTopologicalSort(q, rng)
		if err != nil {
			return res, err
		}
		c, err := core.Compile(g, core.Options{
			Strategy: core.CustomOrder, Order: order, Looping: core.SDPPOLoops,
			Allocators: []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart},
		})
		if err != nil {
			return res, err
		}
		if res.BestRandom < 0 || c.Best.Total < res.BestRandom {
			res.BestRandom = c.Best.Total
		}
		if res.TrialsToBeat == 0 && c.Best.Total < res.Heuristic {
			res.TrialsToBeat = i
		}
	}
	return res, nil
}

// FormatRandomSort renders the study results.
func FormatRandomSort(results []RandomSortResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %7s %10s %11s %13s\n",
		"system", "trials", "heuristic", "bestRandom", "trialsToBeat")
	for _, r := range results {
		beat := "never"
		if r.TrialsToBeat > 0 {
			beat = fmt.Sprintf("%d", r.TrialsToBeat)
		}
		fmt.Fprintf(&b, "%-12s %7d %10d %11d %13s\n",
			r.System, r.Trials, r.Heuristic, r.BestRandom, beat)
	}
	return b.String()
}
