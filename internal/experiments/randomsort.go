package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/pass"
	"repro/internal/sdf"
)

// RandomSortResult reproduces the Sec. 10.1 random-search study for one
// system: how random topological sorts compare against the better of the
// RPMC- and APGAN-based shared allocations.
type RandomSortResult struct {
	System     string
	Trials     int
	Heuristic  int64 // best of RPMC/APGAN shared allocation
	BestRandom int64 // best shared allocation over all random sorts
	// TrialsToBeat is the first trial index (1-based) whose allocation beat
	// the heuristic result, or 0 if never.
	TrialsToBeat int
}

// RandomSort runs the study on one graph with the given number of random
// topological sorts.
func RandomSort(g *sdf.Graph, trials int, seed int64) (RandomSortResult, error) {
	res := RandomSortResult{System: g.Name, Trials: trials}
	q, err := g.Repetitions()
	if err != nil {
		return res, err
	}
	// The random orders are drawn first, in the exact rng sequence the
	// trial loop used, and then the whole study — both heuristics plus every
	// random sort — compiles as one planned grid. Coinciding random orders
	// deduplicate onto a single schedule node.
	rng := rand.New(rand.NewSource(seed))
	points := []pass.Options{
		{Strategy: core.RPMC, Looping: core.SDPPOLoops},
		{Strategy: core.APGAN, Looping: core.SDPPOLoops},
	}
	for i := 0; i < trials; i++ {
		order, err := g.RandomTopologicalSort(q, rng)
		if err != nil {
			return res, err
		}
		points = append(points, pass.Options{
			Strategy: core.CustomOrder, Order: order, Looping: core.SDPPOLoops,
			Allocators: []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart},
		})
	}
	results, err := pass.RunGrid(context.Background(), g, points, pass.PlanConfig{})
	if err != nil {
		return res, err
	}
	res.Heuristic = -1
	for _, c := range results[:2] {
		if res.Heuristic < 0 || c.Best.Total < res.Heuristic {
			res.Heuristic = c.Best.Total
		}
	}
	res.BestRandom = -1
	for i, c := range results[2:] {
		if res.BestRandom < 0 || c.Best.Total < res.BestRandom {
			res.BestRandom = c.Best.Total
		}
		if res.TrialsToBeat == 0 && c.Best.Total < res.Heuristic {
			res.TrialsToBeat = i + 1
		}
	}
	return res, nil
}

// FormatRandomSort renders the study results.
func FormatRandomSort(results []RandomSortResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %7s %10s %11s %13s\n",
		"system", "trials", "heuristic", "bestRandom", "trialsToBeat")
	for _, r := range results {
		beat := "never"
		if r.TrialsToBeat > 0 {
			beat = fmt.Sprintf("%d", r.TrialsToBeat)
		}
		fmt.Fprintf(&b, "%-12s %7d %10d %11d %13s\n",
			r.System, r.Trials, r.Heuristic, r.BestRandom, beat)
	}
	return b.String()
}
