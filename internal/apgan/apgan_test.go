package apgan

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/num"
	"repro/internal/sched"
	"repro/internal/sdf"
	"repro/internal/systems"
)

func chainGraph(t testing.TB, rates [][2]int64) (*sdf.Graph, sdf.Repetitions) {
	t.Helper()
	g := sdf.New("chain")
	n := len(rates) + 1
	ids := make([]sdf.ActorID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddActor(string(rune('A' + i)))
	}
	for i, r := range rates {
		g.AddEdge(ids[i], ids[i+1], r[0], r[1], 0)
	}
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	return g, q
}

func TestRunChainValidSchedule(t *testing.T) {
	g, q := chainGraph(t, [][2]int64{{2, 1}, {1, 3}})
	res, err := Run(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(q); err != nil {
		t.Fatalf("schedule %s invalid: %v", res.Schedule, err)
	}
	if !res.Schedule.IsSingleAppearance() {
		t.Error("APGAN schedule is not SAS")
	}
	if len(res.Order) != 3 {
		t.Fatalf("order = %v", res.Order)
	}
	// Order must be a topological sort.
	order, err := g.TopologicalSort(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if res.Order[i] != order[i] {
			t.Errorf("order = %v, want topological %v", res.Order, order)
			break
		}
	}
}

// TestMaxGCDFirst verifies the clustering priority: adjacent pair with
// highest repetition gcd is merged first, nesting it innermost.
func TestMaxGCDFirst(t *testing.T) {
	// A -(1,2)-> B -(6,1)-> C: q = (2, 1, 6). gcd(A,B) = 1, gcd(B,C) = 1...
	// Use q designed so one pair has clearly larger gcd:
	// A -(4,1)-> B -(1,2)-> C gives q = (1, 4, 2): gcd(A,B) = 1, gcd(B,C)=2.
	g := sdf.New("gcd")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 4, 1, 0)
	g.AddEdge(b, c, 1, 2, 0)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	if q[a] != 1 || q[b] != 4 || q[c] != 2 {
		t.Fatalf("q = %v", q)
	}
	res, err := Run(g, q)
	if err != nil {
		t.Fatal(err)
	}
	// (B,C) with gcd 2 merges first, so the root pairs A with (BC).
	if res.Root.IsLeaf() || !res.Root.Left.IsLeaf() || res.Root.Left.Actor != a {
		t.Errorf("hierarchy root should be (A, (B C)); schedule %s", res.Schedule)
	}
	inner := res.Root.Right
	if inner.IsLeaf() || inner.Left.Actor != b || inner.Right.Actor != c {
		t.Errorf("inner cluster should be (B C); schedule %s", res.Schedule)
	}
	if inner.Rep != 2 {
		t.Errorf("inner rep = %d, want 2", inner.Rep)
	}
	// Schedule: A (2 (2B) C).
	if got := res.Schedule.String(); got != "(A(2(2B)C))" {
		t.Errorf("schedule = %q, want (A(2(2B)C))", got)
	}
}

// TestCycleAvoidance: clustering B with C first would put a path through D
// into a cycle; APGAN must detect and avoid it.
func TestCycleAvoidance(t *testing.T) {
	// Diamond: A -> B -> D, A -> C -> D, all rates chosen so B,D have a big
	// gcd but B-D clustering via edge B->D is tested against path B->?->D.
	// Use: A->B(1,1), B->D(1,1), A->C(1,1), C->D(1,1): q all 1. Any merge is
	// gcd 1; ensure result is still a valid SAS (cycle checks must fire for
	// some candidate orders).
	g := sdf.New("diamond")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	d := g.AddActor("D")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, d, 1, 1, 0)
	g.AddEdge(a, c, 1, 1, 0)
	g.AddEdge(c, d, 1, 1, 0)
	q, _ := g.Repetitions()
	res, err := Run(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(q); err != nil {
		t.Fatalf("schedule %s invalid: %v", res.Schedule, err)
	}
}

func TestDisconnectedComponents(t *testing.T) {
	g := sdf.New("two")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	d := g.AddActor("D")
	g.AddEdge(a, b, 2, 3, 0)
	g.AddEdge(c, d, 1, 1, 0)
	q, _ := g.Repetitions()
	res, err := Run(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(q); err != nil {
		t.Fatalf("schedule %s invalid: %v", res.Schedule, err)
	}
	if len(res.Order) != 4 {
		t.Errorf("order = %v", res.Order)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	g := sdf.New("empty")
	q := sdf.Repetitions{}
	if _, err := Run(g, q); err != nil {
		t.Errorf("empty graph: %v", err)
	}
	g2 := sdf.New("one")
	g2.AddActor("A")
	q2, _ := g2.Repetitions()
	res, err := Run(g2, q2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.String() != "A" {
		t.Errorf("schedule = %q", res.Schedule)
	}
}

func TestRandomGraphsAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		g, q := randomDAG(t, rng, 8)
		res, err := Run(g, q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Schedule.Validate(q); err != nil {
			t.Fatalf("trial %d: schedule %s invalid: %v", trial, res.Schedule, err)
		}
		flat := sched.FlatSAS(g, q, res.Order)
		if err := flat.Validate(q); err != nil {
			t.Fatalf("trial %d: lexical order %v not a valid topological order: %v",
				trial, res.Order, err)
		}
	}
}

// randomDAG builds a consistent random acyclic graph by choosing a target
// repetitions vector first.
func randomDAG(t testing.TB, rng *rand.Rand, n int) (*sdf.Graph, sdf.Repetitions) {
	t.Helper()
	g := sdf.New("rand")
	reps := make([]int64, n)
	for i := 0; i < n; i++ {
		g.AddActor(string(rune('A' + i)))
		reps[i] = []int64{1, 2, 3, 4, 6, 8}[rng.Intn(6)]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				gg := num.GCD(reps[i], reps[j])
				g.AddEdge(sdf.ActorID(i), sdf.ActorID(j), reps[j]/gg, reps[i]/gg, 0)
			}
		}
	}
	q, err := g.Repetitions()
	if err != nil {
		t.Fatalf("random graph inconsistent: %v", err)
	}
	return g, q
}

func TestDelayEdgeReversedDoesNotBreakOrder(t *testing.T) {
	// B -> A carries enough delay to be non-precedence; A -> B is the real
	// direction. APGAN must schedule A before B.
	g := sdf.New("back")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, a, 1, 1, 1) // del = TNSE = 1: not a precedence edge
	q, _ := g.Repetitions()
	res, err := Run(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Order[0] != a || res.Order[1] != b {
		t.Errorf("order = %v, want [A B]", res.Order)
	}
	if err := res.Schedule.Validate(q); err != nil {
		t.Errorf("schedule %s invalid: %v", res.Schedule, err)
	}
}

// TestSatrecScheduleStructure checks that APGAN on the satellite receiver
// produces the loop structure the paper quotes in Sec. 11.1.3:
// (24(11(4A)B)CGHI(11(4D)E)FKLM 10(NSJTUP))(QRV 240W) — in particular the
// nested (11(4A)B) and (11(4D)E) front-end loops, the 10(...) matched
// filter loop and the (240W) back end.
func TestSatrecScheduleStructure(t *testing.T) {
	g := systems.SatelliteReceiver()
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(q); err != nil {
		t.Fatalf("schedule %s invalid: %v", res.Schedule, err)
	}
	text := res.Schedule.String()
	for _, want := range []string{"(11(4A)B)", "(11(4D)E)", "(240W)"} {
		if !strings.Contains(text, want) {
			t.Errorf("APGAN schedule %q missing the paper's %q structure", text, want)
		}
	}
	if !strings.Contains(text, "(24") {
		t.Errorf("APGAN schedule %q missing the 24x front-end loop", text)
	}
}

// TestAPGANOptimalOnUniformFilterbanks tests the provable-optimality claim
// quoted in Sec. 7: "for a broad subclass of SDF systems, APGAN has been
// shown to construct SAS that provably minimize the non-shared buffer memory
// metric over all SAS". The 1/2-1/2 filterbanks fall in that subclass; the
// APGAN schedule post-optimized with DPPO must hit the BMLB exactly.
func TestAPGANOptimalOnUniformFilterbanks(t *testing.T) {
	for depth := 1; depth <= 4; depth++ {
		g := systems.TwoSidedFilterbank(depth, systems.Ratio12)
		q, err := g.Repetitions()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(g, q)
		if err != nil {
			t.Fatal(err)
		}
		bm, err := res.Schedule.BufMem()
		if err != nil {
			t.Fatal(err)
		}
		bmlb, err := g.BMLB()
		if err != nil {
			t.Fatal(err)
		}
		if bm != bmlb {
			t.Errorf("qmf12_%dd: APGAN bufmem %d != BMLB %d", depth, bm, bmlb)
		}
	}
}
