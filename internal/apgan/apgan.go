// Package apgan implements APGAN — acyclic pairwise grouping of adjacent
// nodes (Bhattacharyya, Murthy, Lee [3]; Sec. 7 of the paper): a bottom-up
// clustering heuristic that repeatedly merges the adjacent cluster pair with
// the largest gcd of repetition counts, subject to not introducing a cycle in
// the clustered graph. The resulting binary cluster hierarchy yields both a
// lexical ordering (for DPPO/SDPPO post-optimization) and a nested single
// appearance schedule.
package apgan

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/num"
	"repro/internal/sched"
	"repro/internal/sdf"
)

// Hierarchy is a node of the binary cluster hierarchy. Leaves are actors;
// internal nodes are ordered pairs (Left before Right in the schedule).
type Hierarchy struct {
	Actor       sdf.ActorID // leaves only
	Left, Right *Hierarchy
	// Rep is the repetition count of the cluster: q(a) for leaves, the gcd
	// of the children's reps for pairs.
	Rep int64
}

// IsLeaf reports whether h is a single actor.
func (h *Hierarchy) IsLeaf() bool { return h.Left == nil }

// Result carries everything APGAN produces.
type Result struct {
	// Order is the lexical ordering induced by the hierarchy (in-order
	// traversal), a topological sort of the precedence graph.
	Order []sdf.ActorID
	// Schedule is the nested single appearance schedule implied by the
	// cluster hierarchy, with fully factored loop counts.
	Schedule *sched.Schedule
	// Root of the cluster hierarchy (nil only for empty graphs).
	Root *Hierarchy
}

// ErrNotClusterable reports that clustering got stuck, which only happens on
// graphs whose precedence relation is cyclic.
var ErrNotClusterable = errors.New("apgan: graph not clusterable (cyclic precedence?)")

// Run executes APGAN over the whole graph. Disconnected components are
// clustered pairwise at rep gcd like everything else (the candidate scan
// falls back to non-adjacent merges only between components, which cannot
// create cycles).
func Run(g *sdf.Graph, q sdf.Repetitions) (*Result, error) {
	n := g.NumActors()
	if n == 0 {
		return &Result{Schedule: &sched.Schedule{Graph: g}}, nil
	}
	// clusterOf[a] = current cluster index of actor a; clusters[i] == nil
	// once merged away.
	clusterOf := make([]int, n)
	clusters := make([]*Hierarchy, n)
	for a := 0; a < n; a++ {
		clusterOf[a] = a
		clusters[a] = &Hierarchy{Actor: sdf.ActorID(a), Rep: q[a]}
	}
	alive := n

	for alive > 1 {
		pair, ok, err := pickPair(g, q, clusterOf, clusters)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, ErrNotClusterable
		}
		l, r := clusters[pair.src], clusters[pair.dst]
		merged := &Hierarchy{Left: l, Right: r, Rep: num.GCD(l.Rep, r.Rep)}
		clusters[pair.src] = merged
		clusters[pair.dst] = nil
		for a := range clusterOf {
			if clusterOf[a] == pair.dst {
				clusterOf[a] = pair.src
			}
		}
		alive--
	}
	var root *Hierarchy
	for _, c := range clusters {
		if c != nil {
			root = c
			break
		}
	}
	res := &Result{Root: root}
	res.Order = appendOrder(nil, root)
	res.Schedule = &sched.Schedule{Graph: g, Body: []*sched.Node{buildNode(root, q, 1)}}
	return res, nil
}

type candidate struct {
	src, dst int // cluster indices; src scheduled before dst
	gcd      int64
	tnse     int64
	hasPrec  bool // some precedence edge runs src->dst
}

// pickPair selects the best legal merge: maximum gcd of reps, ties broken by
// total tokens exchanged (descending) then cluster ids. Adjacent pairs are
// preferred; if none is legal, a pair of clusters from different weakly
// connected components (if any) is merged; failing that, the guaranteed-legal
// edge whose sink is the earliest actor with any incoming precedence edge.
func pickPair(g *sdf.Graph, q sdf.Repetitions, clusterOf []int, clusters []*Hierarchy) (candidate, bool, error) {
	// Gather adjacent cluster pairs with aggregate stats.
	type key struct{ a, b int }
	agg := make(map[key]*candidate)
	for _, e := range g.Edges() {
		cs, cd := clusterOf[e.Src], clusterOf[e.Dst]
		if cs == cd {
			continue
		}
		prec := sdf.PrecedenceEdge(g, q, e.ID)
		// One candidate per unordered pair; orientation follows precedence
		// edges (delay-saturated edges may run backwards without forcing an
		// order).
		k := key{cs, cd}
		if cd < cs {
			k = key{cd, cs}
		}
		c := agg[k]
		if c == nil {
			c = &candidate{src: cs, dst: cd, gcd: num.GCD(clusters[cs].Rep, clusters[cd].Rep)}
			agg[k] = c
		}
		if prec {
			if !c.hasPrec {
				c.src, c.dst = cs, cd
				c.hasPrec = true
			}
		}
		t, err := sdf.TNSE(g, q, e.ID)
		if err != nil {
			return candidate{}, false, err
		}
		if c.tnse, err = num.CheckedAdd(c.tnse, t); err != nil {
			return candidate{}, false, fmt.Errorf("apgan: aggregate traffic of pair (%d,%d) overflows: %w",
				c.src, c.dst, num.ErrOverflow)
		}
	}
	cands := make([]*candidate, 0, len(agg))
	for _, c := range agg {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.gcd != b.gcd {
			return a.gcd > b.gcd
		}
		if a.tnse != b.tnse {
			return a.tnse > b.tnse
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.dst < b.dst
	})
	adj := clusterAdjacency(g, q, clusterOf)
	for _, c := range cands {
		if !introducesCycle(adj, c.src, c.dst) {
			return *c, true, nil
		}
	}
	// No adjacent pair is legal. Merge across components if possible
	// (cannot create a cycle).
	comp := components(adj, clusterOf, clusters)
	if len(comp) > 1 {
		return candidate{src: comp[0], dst: comp[1]}, true, nil
	}
	return candidate{}, false, nil
}

// clusterAdjacency builds the precedence digraph between live clusters.
func clusterAdjacency(g *sdf.Graph, q sdf.Repetitions, clusterOf []int) map[int]map[int]bool {
	adj := make(map[int]map[int]bool)
	for _, e := range g.Edges() {
		if !sdf.PrecedenceEdge(g, q, e.ID) {
			continue
		}
		cs, cd := clusterOf[e.Src], clusterOf[e.Dst]
		if cs == cd {
			continue
		}
		if adj[cs] == nil {
			adj[cs] = make(map[int]bool)
		}
		adj[cs][cd] = true
	}
	return adj
}

// introducesCycle reports whether merging clusters a and b creates a cycle:
// i.e. whether some path of length >= 2 connects them in either direction.
func introducesCycle(adj map[int]map[int]bool, a, b int) bool {
	return pathAvoidingDirect(adj, a, b) || pathAvoidingDirect(adj, b, a)
}

// pathAvoidingDirect reports whether dst is reachable from src without using
// the direct src->dst edge.
func pathAvoidingDirect(adj map[int]map[int]bool, src, dst int) bool {
	seen := map[int]bool{src: true}
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		//lint:ignore maporder DFS visit order cannot change the boolean reachability answer
		for v := range adj[u] {
			if u == src && v == dst {
				continue // skip the direct edge (src is visited exactly once)
			}
			if v == dst {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// components returns one representative live cluster per weakly connected
// component, in ascending id order.
func components(adj map[int]map[int]bool, clusterOf []int, clusters []*Hierarchy) []int {
	// The adjacency lists below are built in map order, but they are only
	// ever traversed with a seen-set (order-independent reachability); the
	// representative order comes from the sorted clusters slice scan below.
	und := make(map[int][]int)
	for u, m := range adj {
		for v := range m {
			//lint:ignore maporder und is only traversed with a seen-set; element order never escapes
			und[u] = append(und[u], v)
			//lint:ignore maporder und is only traversed with a seen-set; element order never escapes
			und[v] = append(und[v], u)
		}
	}
	seen := make(map[int]bool)
	var reps []int
	for id, c := range clusters {
		if c == nil || seen[id] {
			continue
		}
		reps = append(reps, id)
		stack := []int{id}
		seen[id] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range und[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	_ = clusterOf
	return reps
}

func appendOrder(out []sdf.ActorID, h *Hierarchy) []sdf.ActorID {
	if h == nil {
		return out
	}
	if h.IsLeaf() {
		return append(out, h.Actor)
	}
	out = appendOrder(out, h.Left)
	return appendOrder(out, h.Right)
}

// buildNode turns the hierarchy into a nested schedule: a cluster with rep r
// inside a context already iterating outer times becomes a loop of r/outer.
func buildNode(h *Hierarchy, q sdf.Repetitions, outer int64) *sched.Node {
	if h.IsLeaf() {
		return sched.Leaf(q[h.Actor]/outer, h.Actor)
	}
	f := h.Rep / outer
	return sched.Loop(f, buildNode(h.Left, q, h.Rep), buildNode(h.Right, q, h.Rep))
}
