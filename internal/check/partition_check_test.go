package check

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/sdf"
	"repro/internal/systems"
)

// compilePartitioned compiles the quickstart converter with a 2-way phased
// schedule for the corruption tests.
func compilePartitioned(t *testing.T) *core.Result {
	t.Helper()
	return compileQuickstart(t, core.Options{Partitions: 2})
}

// delayedPairGraph builds the smallest graph with both edge species the
// partition oracles distinguish: e0 is a plain precedence edge A->B, e1 is a
// parallel A->B edge carrying enough delay that B's whole period runs on old
// tokens (a non-precedence edge, live across the period boundary), and e2
// drains B into C through one unit of delay so corrupted values stay
// observable in the end-of-period queue state.
func delayedPairGraph() *sdf.Graph {
	g := sdf.New("delayedpair")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 2, 1, 0) // e0: precedence
	g.AddEdge(a, b, 2, 1, 2) // e1: fully delayed, non-precedence
	g.AddEdge(b, c, 1, 1, 1) // e2: carries B's outputs across the boundary
	return g
}

func TestPipelineCleanPartitioned(t *testing.T) {
	for _, g := range systems.Table1Systems() {
		for _, p := range []int{2, 4} {
			res, err := core.Compile(g, core.Options{Partitions: p})
			if err != nil {
				t.Fatalf("%s/p%d: compile: %v", g.Name, p, err)
			}
			if err := Pipeline(res, Options{}); err != nil {
				t.Errorf("%s/p%d: oracle violation: %v", g.Name, p, err)
			}
		}
	}
}

func TestPartitionedConfigsInGrid(t *testing.T) {
	var partitioned int
	for _, cfg := range PipelineConfigs() {
		if cfg.Partitions < 2 {
			continue
		}
		partitioned++
		if got, want := cfg.String(), "+p"; !containsSubstring(got, want) {
			t.Errorf("config %q does not name its worker count", got)
		}
		if err := cfg.Run(systems.CDDAT(), Options{}); err != nil {
			t.Errorf("config %v: %v", cfg, err)
		}
	}
	if partitioned < 9 {
		t.Errorf("grid has %d partitioned configurations, want at least 9", partitioned)
	}
}

func containsSubstring(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// movePartitionBlock consistently relocates one actor's firing block to
// (phase, worker): block lists and both maps stay in agreement, so only the
// edge-level rules can object to the result.
func movePartitionBlock(p *partition.Partitioned, a sdf.ActorID, phase, worker int) {
	oldPh, oldW := p.PhaseOf[a], p.Assign[a]
	list := p.Phases[oldPh].Workers[oldW]
	for i, blk := range list {
		if blk.Actor != a {
			continue
		}
		p.Phases[oldPh].Workers[oldW] = append(list[:i:i], list[i+1:]...)
		p.Phases[phase].Workers[worker] = append(p.Phases[phase].Workers[worker], blk)
		break
	}
	p.PhaseOf[a] = phase
	p.Assign[a] = worker
}

// TestCorruptedPartitionDuplicateCaught: duplicating an actor's firing block
// on another worker must trip assigned-once.
func TestCorruptedPartitionDuplicateCaught(t *testing.T) {
	res := compilePartitioned(t)
	p := res.Partition
	blk := p.Phases[p.PhaseOf[0]].Workers[p.Assign[0]][0]
	other := (p.Assign[blk.Actor] + 1) % p.P
	p.Phases[p.PhaseOf[0]].Workers[other] = append(p.Phases[p.PhaseOf[0]].Workers[other], blk)
	err := Pipeline(res, Options{})
	if stage, _ := StageOf(err); stage != StagePartition {
		t.Fatalf("got %v, want a %s violation", err, StagePartition)
	}
	if !violatesRule(err, "assigned-once") {
		t.Errorf("error %v does not name the assigned-once rule", err)
	}
}

// TestCorruptedPartitionPhaseCaught: consistently moving a consumer into its
// producer's phase (block and maps together, so assigned-once still holds)
// must trip phase-precedence.
func TestCorruptedPartitionPhaseCaught(t *testing.T) {
	res := compilePartitioned(t)
	g := res.Graph
	p := res.Partition
	var e sdf.Edge
	found := false
	for _, cand := range g.Edges() {
		if sdf.PrecedenceEdge(g, res.Repetitions, cand.ID) {
			e, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no precedence edge in the quickstart graph")
	}
	movePartitionBlock(p, e.Dst, p.PhaseOf[e.Src], p.Assign[e.Dst])
	err := Pipeline(res, Options{})
	if stage, _ := StageOf(err); stage != StagePartition {
		t.Fatalf("got %v, want a %s violation", err, StagePartition)
	}
	if !violatesRule(err, "phase-precedence") {
		t.Errorf("error %v does not name the phase-precedence rule", err)
	}
}

// TestCorruptedPartitionBarrierReadCaught: a fully delayed edge is not a
// precedence edge, so its endpoints legally share a phase — but pushing the
// consumer onto another worker while keeping the phase puts unsynchronized
// FIFO traffic inside one phase, which barrier-read must reject.
func TestCorruptedPartitionBarrierReadCaught(t *testing.T) {
	g := sdf.New("delayring")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 1) // fully delayed: A and B share phase 0
	res, err := core.Compile(g, core.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Pipeline(res, Options{}); err != nil {
		t.Fatalf("clean compile rejected: %v", err)
	}
	p := res.Partition
	if p.PhaseOf[a] != p.PhaseOf[b] || p.Assign[a] != p.Assign[b] {
		t.Fatalf("expected A and B co-located, got phases (%d,%d) workers (%d,%d)",
			p.PhaseOf[a], p.PhaseOf[b], p.Assign[a], p.Assign[b])
	}
	movePartitionBlock(p, b, p.PhaseOf[b], (p.Assign[b]+1)%p.P)
	verr := Partition(g, res.Repetitions, p)
	if stage, _ := StageOf(verr); stage != StagePartition {
		t.Fatalf("got %v, want a %s violation", verr, StagePartition)
	}
	if !violatesRule(verr, "barrier-read") {
		t.Errorf("error %v does not name the barrier-read rule", verr)
	}
}

func TestCorruptedSegmentsCaught(t *testing.T) {
	t.Run("layout", func(t *testing.T) {
		res := compilePartitioned(t)
		res.Segmented.Segments[0].Cells++
		assertSegViolation(t, res, "layout")
	})
	t.Run("routing", func(t *testing.T) {
		res := compilePartitioned(t)
		e := res.Graph.Edges()[0]
		res.Segmented.EdgeSeg[e.ID] = (res.Segmented.EdgeSeg[e.ID] + 1) % (res.Partition.P + 1)
		assertSegViolation(t, res, "routing")
	})
	t.Run("size", func(t *testing.T) {
		res := compilePartitioned(t)
		var corrupted bool
		for _, e := range res.Graph.Edges() {
			if res.Segmented.Sizes[e.ID] > 1 {
				res.Segmented.Sizes[e.ID] = 1
				corrupted = true
				break
			}
		}
		if !corrupted {
			t.Fatal("no multi-cell buffer to shrink")
		}
		assertSegViolation(t, res, "size")
	})
	t.Run("metrics", func(t *testing.T) {
		res := compilePartitioned(t)
		res.Metrics.ParallelTotal++
		assertSegViolation(t, res, "metrics")
	})
	t.Run("disjoint", func(t *testing.T) {
		res := overlapDelayedBuffers(t)
		assertSegViolation(t, res, "disjoint")
	})
}

func assertSegViolation(t *testing.T, res *core.Result, rule string) {
	t.Helper()
	err := Pipeline(res, Options{})
	if stage, _ := StageOf(err); stage != StageSegments {
		t.Fatalf("got %v, want a %s violation", err, StageSegments)
	}
	if !violatesRule(err, rule) {
		t.Errorf("error %v does not name the %s rule", err, rule)
	}
}

// overlapDelayedBuffers compiles delayedPairGraph at P=2 and slides e0's
// buffer onto e1's: e1 is the larger, fully delayed buffer in the same
// segment (both edges join the same actor pair), so the corrupted placement
// stays inside segment bounds while A's phase-0 writes land exactly on the
// cells holding e1's seeded delay tokens.
func overlapDelayedBuffers(t *testing.T) *core.Result {
	t.Helper()
	res, err := core.Compile(delayedPairGraph(), core.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	seg := res.Segmented
	if seg.EdgeSeg[0] != seg.EdgeSeg[1] {
		t.Fatalf("parallel edges routed to different segments (%d, %d)", seg.EdgeSeg[0], seg.EdgeSeg[1])
	}
	if seg.Sizes[0] > seg.Sizes[1] {
		t.Fatalf("expected e1 (size %d) to dominate e0 (size %d)", seg.Sizes[1], seg.Sizes[0])
	}
	seg.Offsets[0] = seg.Offsets[1]
	return res
}

// TestPhasedMemoryCatchesClobberDirectly: the phased token-level simulator
// must catch the overlapping placement on its own (A's writes corrupt e1's
// seeded tokens before B reads them), independent of the static rules.
func TestPhasedMemoryCatchesClobberDirectly(t *testing.T) {
	res := overlapDelayedBuffers(t)
	err := PhasedMemory(res, Options{})
	if stage, _ := StageOf(err); stage != StageSegments {
		t.Fatalf("phased simulator missed the clobber: %v", err)
	}
	if !violatesRule(err, "token-level") {
		t.Errorf("error %v does not name the token-level rule", err)
	}
}

// TestPhasedRuntimeCatchesClobberDirectly: the float64 engine comparison
// must also see the overlap — B folds the clobbered values into what it
// sends down the delayed B->C edge, so the end-of-period queue state
// diverges from the sequential engine's.
func TestPhasedRuntimeCatchesClobberDirectly(t *testing.T) {
	res := overlapDelayedBuffers(t)
	err := PhasedRuntime(res, Options{})
	if stage, _ := StageOf(err); stage != StageRuntime {
		t.Fatalf("phased engine comparison missed the clobber: %v", err)
	}
}

// TestThreadedCodegenRejectsUnpartitioned: the threaded codegen oracle has
// nothing to render for a sequential result and must say so.
func TestThreadedCodegenRejectsUnpartitioned(t *testing.T) {
	res := compileQuickstart(t, core.Options{})
	err := ThreadedCodegen(res)
	if stage, _ := StageOf(err); stage != StageCodegen {
		t.Fatalf("got %v, want a %s violation", err, StageCodegen)
	}
}

func violatesRule(err error, rule string) bool {
	var v *Violation
	if !errors.As(err, &v) {
		return false
	}
	return v.Rule == rule
}
