package check

import (
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/sdf"
	"repro/internal/sim"
)

// Partition verifies a P-way phased partitioning against the graph and
// repetitions vector it was computed from, recomputing every invariant from
// first principles:
//
//   - assigned-once: every actor appears in exactly one (phase, worker) block,
//     firing exactly q(a) times, and the Assign/PhaseOf maps agree with the
//     block placement;
//   - phase-precedence: every precedence edge crosses phases forward, so a
//     consumer's phase begins only after the barrier that ends its producer's;
//   - barrier-read: every edge whose endpoints share a phase stays on one
//     worker — cross-worker buffer traffic must always be separated by a
//     barrier, delays notwithstanding, because the FIFO cursors themselves
//     are unsynchronized.
func Partition(g *sdf.Graph, q sdf.Repetitions, p *partition.Partitioned) error {
	if p == nil {
		return violationf(StagePartition, "missing", "no partitioning")
	}
	if p.P < 1 {
		return violationf(StagePartition, "shape", "worker count %d", p.P)
	}
	if len(p.Phases) != p.NumPhases {
		return violationf(StagePartition, "shape",
			"%d phases materialized but NumPhases says %d", len(p.Phases), p.NumPhases)
	}
	if len(p.Assign) != g.NumActors() || len(p.PhaseOf) != g.NumActors() {
		return violationf(StagePartition, "shape",
			"maps cover %d/%d actors, graph has %d", len(p.Assign), len(p.PhaseOf), g.NumActors())
	}
	seen := make([]int, g.NumActors())
	for ph, phase := range p.Phases {
		if len(phase.Workers) != p.P {
			return violationf(StagePartition, "shape",
				"phase %d has %d worker lists for %d workers", ph, len(phase.Workers), p.P)
		}
		for w, blocks := range phase.Workers {
			for _, blk := range blocks {
				if blk.Actor < 0 || int(blk.Actor) >= g.NumActors() {
					return violationf(StagePartition, "assigned-once", "block names actor %d", blk.Actor)
				}
				seen[blk.Actor]++
				if seen[blk.Actor] > 1 {
					return violationf(StagePartition, "assigned-once",
						"actor %s appears in more than one block", g.Actor(blk.Actor).Name)
				}
				if blk.Count != q.Q(blk.Actor) {
					return violationf(StagePartition, "assigned-once",
						"actor %s fires %d times, repetitions say %d",
						g.Actor(blk.Actor).Name, blk.Count, q.Q(blk.Actor))
				}
				if p.PhaseOf[blk.Actor] != ph || p.Assign[blk.Actor] != w {
					return violationf(StagePartition, "assigned-once",
						"actor %s scheduled at phase %d worker %d but the maps say (%d,%d)",
						g.Actor(blk.Actor).Name, ph, w, p.PhaseOf[blk.Actor], p.Assign[blk.Actor])
				}
			}
		}
	}
	for a, n := range seen {
		if n != 1 {
			return violationf(StagePartition, "assigned-once",
				"actor %s appears in %d blocks", g.Actor(sdf.ActorID(a)).Name, n)
		}
	}
	for _, e := range g.Edges() {
		if sdf.PrecedenceEdge(g, q, e.ID) && p.PhaseOf[e.Dst] <= p.PhaseOf[e.Src] {
			return violationf(StagePartition, "phase-precedence",
				"precedence edge %s->%s runs phase %d to phase %d without a barrier between",
				g.Actor(e.Src).Name, g.Actor(e.Dst).Name, p.PhaseOf[e.Src], p.PhaseOf[e.Dst])
		}
		if p.PhaseOf[e.Src] == p.PhaseOf[e.Dst] && p.Assign[e.Src] != p.Assign[e.Dst] {
			return violationf(StagePartition, "barrier-read",
				"edge %s->%s spans workers %d and %d inside phase %d",
				g.Actor(e.Src).Name, g.Actor(e.Dst).Name,
				p.Assign[e.Src], p.Assign[e.Dst], p.PhaseOf[e.Src])
		}
	}
	return nil
}

// phaseWindow is an edge buffer's liveness on the phase axis, recomputed from
// the partitioning alone: a delayless buffer is live from its producing phase
// through its consuming phase; a delay-carrying buffer holds tokens across
// the period boundary and is live everywhere.
func phaseWindow(e sdf.Edge, p *partition.Partitioned) (lo, hi int) {
	if e.Delay > 0 {
		return 0, p.NumPhases - 1
	}
	return p.PhaseOf[e.Src], p.PhaseOf[e.Dst]
}

// Segments verifies a segmented allocation against the partitioning it was
// packed for: the per-worker-plus-shared segment layout tiles the image back
// to back, every edge buffer is routed to its owning worker's segment (or to
// the shared segment when its endpoints sit on different workers), sized for
// the edge's worst-case token population, placed inside its segment, and —
// segment-disjointness — no two buffers live during the same phase share
// memory cells.
func Segments(g *sdf.Graph, q sdf.Repetitions, p *partition.Partitioned, seg *partition.SegAlloc) error {
	if seg == nil {
		return violationf(StageSegments, "missing", "no segmented allocation")
	}
	if len(seg.Segments) != p.P+1 {
		return violationf(StageSegments, "layout",
			"%d segments for %d workers, want %d (one per worker plus shared)",
			len(seg.Segments), p.P, p.P+1)
	}
	var base int64
	for si, s := range seg.Segments {
		wantWorker := si
		if si == seg.SharedIndex() {
			wantWorker = partition.SharedWorker
		}
		if s.Worker != wantWorker {
			return violationf(StageSegments, "layout",
				"segment %d owned by worker %d, want %d", si, s.Worker, wantWorker)
		}
		if s.Cells < 0 || s.Base != base {
			return violationf(StageSegments, "layout",
				"segment %d spans [%d,%d), want base %d (segments tile back to back)",
				si, s.Base, s.Base+s.Cells, base)
		}
		base += s.Cells
	}
	if base != seg.Total {
		return violationf(StageSegments, "layout",
			"segment cells sum to %d but Total says %d", base, seg.Total)
	}
	if len(seg.Offsets) != g.NumEdges() || len(seg.Sizes) != g.NumEdges() || len(seg.EdgeSeg) != g.NumEdges() {
		return violationf(StageSegments, "layout",
			"allocation covers %d/%d/%d edges, graph has %d",
			len(seg.Offsets), len(seg.Sizes), len(seg.EdgeSeg), g.NumEdges())
	}
	for _, e := range g.Edges() {
		wantSeg := seg.SharedIndex()
		if p.Assign[e.Src] == p.Assign[e.Dst] {
			wantSeg = p.Assign[e.Src]
		}
		si := seg.EdgeSeg[e.ID]
		if si != wantSeg {
			return violationf(StageSegments, "routing",
				"edge %s->%s routed to segment %d, want %d",
				g.Actor(e.Src).Name, g.Actor(e.Dst).Name, si, wantSeg)
		}
		tnse, err := sdf.TNSE(g, q, e.ID)
		if err != nil {
			return fmt.Errorf("check: recomputing TNSE for edge %d: %w", e.ID, err)
		}
		words := e.Words
		if words < 1 {
			words = 1
		}
		if want := (e.Delay + tnse) * words; seg.Size(e.ID) < want {
			return violationf(StageSegments, "size",
				"edge %s->%s buffer holds %d cells but needs %d ((delay %d + TNSE %d) x %d words)",
				g.Actor(e.Src).Name, g.Actor(e.Dst).Name, seg.Size(e.ID), want, e.Delay, tnse, words)
		}
		s := seg.Segments[si]
		if seg.Offset(e.ID) < s.Base || seg.Offset(e.ID)+seg.Size(e.ID) > s.Base+s.Cells {
			return violationf(StageSegments, "bounds",
				"edge %s->%s buffer [%d,%d) escapes segment %d [%d,%d)",
				g.Actor(e.Src).Name, g.Actor(e.Dst).Name,
				seg.Offset(e.ID), seg.Offset(e.ID)+seg.Size(e.ID), si, s.Base, s.Base+s.Cells)
		}
	}
	edges := g.Edges()
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			ei, ej := edges[i], edges[j]
			loI, hiI := phaseWindow(ei, p)
			loJ, hiJ := phaseWindow(ej, p)
			if hiI < loJ || hiJ < loI {
				continue // never live in the same phase
			}
			oi, oj := seg.Offset(ei.ID), seg.Offset(ej.ID)
			if oi < oj+seg.Size(ej.ID) && oj < oi+seg.Size(ei.ID) {
				return violationf(StageSegments, "disjoint",
					"buffers %s->%s at [%d,%d) and %s->%s at [%d,%d) are live together but share cells",
					g.Actor(ei.Src).Name, g.Actor(ei.Dst).Name, oi, oi+seg.Size(ei.ID),
					g.Actor(ej.Src).Name, g.Actor(ej.Dst).Name, oj, oj+seg.Size(ej.ID))
			}
		}
	}
	return nil
}

// PhasedMemory runs the token-level phased simulator — P goroutines, a
// barrier after every phase — against the segmented image for several
// periods: token corruption or count drift here means the partitioning or
// the segmented packing is wrong in a way the static rules missed.
func PhasedMemory(res *core.Result, opt Options) error {
	if err := sim.RunPhased(res.Graph, res.Repetitions, res.Partition, res.Segmented, opt.simPeriods()); err != nil {
		return violationf(StageSegments, "token-level", "%v", err)
	}
	return nil
}

// PhasedRuntime differentially tests the phased float64 engine against the
// sequential engine: both run the same deterministic synthetic actors for
// several periods, and the queue contents on every edge must match exactly
// at every period boundary (SDF determinism makes the interleaving
// invisible). Systems with vector tokens are outside the scalar engines'
// domain and are skipped.
func PhasedRuntime(res *core.Result, opt Options) error {
	g := res.Graph
	for _, e := range g.Edges() {
		if e.Words > 1 {
			return nil
		}
	}
	mkFires := func() map[sdf.ActorID]runtime.Fire {
		fires := make(map[sdf.ActorID]runtime.Fire, g.NumActors())
		firings := make([]int64, g.NumActors())
		for _, actor := range g.Actors() {
			id := actor.ID
			fires[id] = func(inputs [][]float64) [][]float64 {
				outputs := synthFire(g, id, firings[id], inputs)
				firings[id]++
				return outputs
			}
		}
		return fires
	}
	seqEng, err := runtime.New(res, mkFires())
	if err != nil {
		return violationf(StageRuntime, "phased-engine", "sequential engine: %v", err)
	}
	parEng, err := runtime.NewPhased(res, mkFires())
	if err != nil {
		return violationf(StageRuntime, "phased-engine", "%v", err)
	}
	for p := 0; p < opt.simPeriods(); p++ {
		if err := seqEng.RunPeriod(); err != nil {
			return violationf(StageRuntime, "phased-engine", "sequential period %d: %v", p, err)
		}
		if err := parEng.RunPeriod(); err != nil {
			return violationf(StageRuntime, "phased-engine", "phased period %d: %v", p, err)
		}
		for _, e := range g.Edges() {
			sq, pq := seqEng.TokensOn(e.ID), parEng.TokensOn(e.ID)
			if !equalFloats(sq, pq) {
				return violationf(StageRuntime, "phased-trace",
					"period %d edge %s->%s: sequential engine leaves tokens %v, phased engine %v",
					p, g.Actor(e.Src).Name, g.Actor(e.Dst).Name, sq, pq)
			}
		}
	}
	return nil
}

// ThreadedCodegen cross-checks the generated pthread C against the
// partitioned result it was rendered from: generation is deterministic, the
// worker count and memory extent match the partitioning, and every edge's
// offset macro points into the segmented image where the allocator placed it.
func ThreadedCodegen(res *core.Result) error {
	src := codegen.GenerateThreadedC(res)
	if src == "" {
		return violationf(StageCodegen, "threaded", "partitioned result generated no threaded C")
	}
	if again := codegen.GenerateThreadedC(res); again != src {
		return violationf(StageCodegen, "deterministic", "two threaded generations of %q differ", res.Graph.Name)
	}
	if want := fmt.Sprintf("#define WORKERS %d\n", res.Partition.P); !strings.Contains(src, want) {
		return violationf(StageCodegen, "threaded", "threaded C lacks %q", strings.TrimSpace(want))
	}
	memSize := res.Segmented.Total
	if memSize < 1 {
		memSize = 1
	}
	if want := fmt.Sprintf("#define MEM_SIZE %dL\n", memSize); !strings.Contains(src, want) {
		return violationf(StageCodegen, "threaded", "threaded C lacks %q", strings.TrimSpace(want))
	}
	for _, e := range res.Graph.Edges() {
		want := fmt.Sprintf("#define E%d_OFF %dL", e.ID, res.Segmented.Offset(e.ID))
		if !strings.Contains(src, want) {
			return violationf(StageCodegen, "threaded",
				"threaded C lacks %q for edge %d", want, e.ID)
		}
	}
	return nil
}

// partitionPipeline runs every partition-stage oracle over a partitioned
// compilation result, mirroring Pipeline's stage order for the parallel half
// of the pipeline. Pipeline calls it when a partitioning is present.
func partitionPipeline(res *core.Result, opt Options) error {
	g := res.Graph
	if err := Partition(g, res.Repetitions, res.Partition); err != nil {
		return err
	}
	if err := Segments(g, res.Repetitions, res.Partition, res.Segmented); err != nil {
		return err
	}
	if res.Metrics.ParallelTotal != res.Segmented.Total {
		return violationf(StageSegments, "metrics",
			"Metrics.ParallelTotal %d != segmented image total %d",
			res.Metrics.ParallelTotal, res.Segmented.Total)
	}
	if err := PhasedMemory(res, opt); err != nil {
		return err
	}
	if err := ThreadedCodegen(res); err != nil {
		return err
	}
	return PhasedRuntime(res, opt)
}
