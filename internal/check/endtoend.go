package check

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/alloc"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/sdf"
	"repro/internal/sim"
)

// Memory runs the token-level shared-memory simulator for several periods:
// every produced token must be consumed intact (no buffer clobbers another
// live buffer's cells) and every edge must return to its initial state at
// each period boundary. Scheduling, lifetime extraction and allocation must
// all be right for this to pass.
func Memory(res *core.Result, opt Options) error {
	if err := sim.Run(res.Schedule, res.Repetitions, res.Intervals, res.Best, opt.simPeriods()); err != nil {
		return violationf(StageMemory, "token-level", "%v", err)
	}
	return nil
}

// Codegen cross-checks the generated C against the compilation result it was
// rendered from: generation is deterministic, the shared array is sized to
// the best allocation, and every edge's offset/size/footprint macros match
// the allocator's placements.
func Codegen(res *core.Result) error {
	src := codegen.GenerateC(res)
	if again := codegen.GenerateC(res); again != src {
		return violationf(StageCodegen, "deterministic", "two generations of %q differ", res.Graph.Name)
	}
	memSize := res.Best.Total
	if memSize < 1 {
		memSize = 1
	}
	if want := fmt.Sprintf("#define MEM_SIZE %dL\n", memSize); !strings.Contains(src, want) {
		return violationf(StageCodegen, "mem-size", "generated C lacks %q", strings.TrimSpace(want))
	}
	if want := fmt.Sprintf(" * Schedule: %s\n", res.Schedule); !strings.Contains(src, want) {
		return violationf(StageCodegen, "schedule", "generated C header does not quote schedule %s", res.Schedule)
	}
	for _, e := range res.Graph.Edges() {
		iv := res.Intervals[e.ID]
		off, ok := res.Best.OffsetOf(iv)
		if !ok {
			return violationf(StageCodegen, "offset", "edge %d interval %s has no placement", e.ID, iv.Name)
		}
		for _, want := range []string{
			fmt.Sprintf("#define E%d_OFF %dL", e.ID, off),
			fmt.Sprintf("#define E%d_SIZE %dL", e.ID, iv.Size),
			fmt.Sprintf("#define E%d_W %dL", e.ID, e.Words),
		} {
			if !strings.Contains(src, want) {
				return violationf(StageCodegen, "offset", "generated C lacks %q for edge %s", want, iv.Name)
			}
		}
	}
	return nil
}

// firingRec is one firing of the execution trace: the actor plus its
// flattened consumed and produced token values.
type firingRec struct {
	actor   sdf.ActorID
	in, out []float64
}

// synthFire is the deterministic synthetic actor behaviour both execution
// paths share: every output token folds the consumed values together with
// the actor identity, firing index and token position, so any token that is
// lost, duplicated or clobbered in shared memory changes the trace.
func synthFire(g *sdf.Graph, a sdf.ActorID, firing int64, inputs [][]float64) [][]float64 {
	var sum float64
	for _, vals := range inputs {
		for _, v := range vals {
			sum += v
		}
	}
	// Keep values exactly representable: fold the running sum into [0, 2^20)
	// so chains of high-rate actors cannot drift past float64's integer range.
	sum = math.Mod(sum, 1<<20)
	outs := g.Out(a)
	outputs := make([][]float64, len(outs))
	for i, eid := range outs {
		vals := make([]float64, g.Edge(eid).Prod)
		for k := range vals {
			vals[k] = sum + float64(a+1)*17 + float64(firing)*3 + float64(i)*5 + float64(k)*0.5
		}
		outputs[i] = vals
	}
	return outputs
}

// Runtime differentially tests the float64 shared-memory engine against a
// direct actor-level reference interpreter (plain per-edge FIFOs, no shared
// memory, no modulo addressing). Both execute one period of the generated
// schedule with the same synthetic actor behaviour; the firing-by-firing
// traces and the end-of-period queue contents must match exactly. Systems
// with vector (multi-word) tokens are outside the scalar engine's domain and
// are skipped.
func Runtime(res *core.Result) error {
	g := res.Graph
	for _, e := range g.Edges() {
		if e.Words > 1 {
			return nil
		}
	}
	var engineTrace []firingRec
	fires := make(map[sdf.ActorID]runtime.Fire, g.NumActors())
	engineFirings := make([]int64, g.NumActors())
	for _, actor := range g.Actors() {
		id := actor.ID
		fires[id] = func(inputs [][]float64) [][]float64 {
			outputs := synthFire(g, id, engineFirings[id], inputs)
			engineFirings[id]++
			engineTrace = append(engineTrace, firingRec{actor: id, in: flatten(inputs), out: flatten(outputs)})
			return outputs
		}
	}
	eng, err := runtime.New(res, fires)
	if err != nil {
		return violationf(StageRuntime, "engine", "%v", err)
	}
	if err := eng.RunPeriod(); err != nil {
		return violationf(StageRuntime, "engine", "%v", err)
	}

	// Reference interpreter: slice FIFOs seeded with the same zero-valued
	// initial tokens the engine starts from.
	fifos := make([][]float64, g.NumEdges())
	for _, e := range g.Edges() {
		fifos[e.ID] = make([]float64, e.Delay)
	}
	refFirings := make([]int64, g.NumActors())
	var refTrace []firingRec
	var failure error
	res.Schedule.ForEachFiring(func(a sdf.ActorID) bool {
		inputs := make([][]float64, len(g.In(a)))
		for i, eid := range g.In(a) {
			cons := g.Edge(eid).Cons
			if int64(len(fifos[eid])) < cons {
				failure = violationf(StageRuntime, "reference",
					"firing %s underflows edge %d in the reference interpreter", g.Actor(a).Name, eid)
				return false
			}
			inputs[i] = fifos[eid][:cons:cons]
			fifos[eid] = fifos[eid][cons:]
		}
		outputs := synthFire(g, a, refFirings[a], inputs)
		refFirings[a]++
		for i, eid := range g.Out(a) {
			fifos[eid] = append(fifos[eid], outputs[i]...)
		}
		refTrace = append(refTrace, firingRec{actor: a, in: flatten(inputs), out: flatten(outputs)})
		return true
	})
	if failure != nil {
		return failure
	}

	if len(engineTrace) != len(refTrace) {
		return violationf(StageRuntime, "trace", "engine executed %d firings, reference %d",
			len(engineTrace), len(refTrace))
	}
	for i := range engineTrace {
		er, rr := engineTrace[i], refTrace[i]
		if er.actor != rr.actor {
			return violationf(StageRuntime, "trace", "firing %d: engine fired %s, reference %s",
				i, g.Actor(er.actor).Name, g.Actor(rr.actor).Name)
		}
		if !equalFloats(er.in, rr.in) {
			return violationf(StageRuntime, "trace",
				"firing %d (%s): engine consumed %v from shared memory, reference %v",
				i, g.Actor(er.actor).Name, er.in, rr.in)
		}
		if !equalFloats(er.out, rr.out) {
			return violationf(StageRuntime, "trace", "firing %d (%s): engine produced %v, reference %v",
				i, g.Actor(er.actor).Name, er.out, rr.out)
		}
	}
	for _, e := range g.Edges() {
		if got, want := eng.TokensOn(e.ID), fifos[e.ID]; !equalFloats(got, want) {
			return violationf(StageRuntime, "final-state",
				"edge %s->%s ends the period with tokens %v in shared memory, reference %v",
				g.Actor(e.Src).Name, g.Actor(e.Dst).Name, got, want)
		}
	}
	return nil
}

func flatten(vals [][]float64) []float64 {
	var out []float64
	for _, v := range vals {
		out = append(out, v...)
	}
	return out
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Pipeline runs every stage oracle over a complete compilation result in
// pipeline order and returns the first stage-attributed violation, or nil
// when the whole (graph, schedule, lifetimes, allocation, code) tuple is
// consistent.
func Pipeline(res *core.Result, opt Options) error {
	if res == nil {
		return violationf(StageGraph, "nil", "no compilation result")
	}
	g := res.Graph
	if err := Graph(g); err != nil {
		return err
	}
	if err := Repetitions(g, res.Repetitions); err != nil {
		return err
	}
	if err := Order(g, res.Repetitions, res.Order); err != nil {
		return err
	}
	if res.Schedule == nil || !res.Schedule.IsSingleAppearance() {
		return violationf(StageSchedule, "single-appearance",
			"pipeline schedule %v is not a single appearance schedule", res.Schedule)
	}
	if err := Schedule(g, res.Repetitions, res.Schedule, opt); err != nil {
		return err
	}
	if res.Tree == nil {
		return violationf(StageLifetimes, "missing", "no schedule tree")
	}
	if err := Lifetimes(res.Tree, res.Intervals, opt); err != nil {
		return err
	}
	if res.Best == nil {
		return violationf(StageAllocation, "missing", "no best allocation selected")
	}
	strategies := make([]alloc.Strategy, 0, len(res.Allocations))
	for strat := range res.Allocations {
		strategies = append(strategies, strat)
	}
	sort.Slice(strategies, func(i, j int) bool { return strategies[i] < strategies[j] })
	bestSeen := false
	for _, strat := range strategies {
		a := res.Allocations[strat]
		if err := Allocation(res.Intervals, a); err != nil {
			v := err.(*Violation)
			v.Msg = fmt.Sprintf("%s: %s", strat, v.Msg)
			return v
		}
		if a == res.Best {
			bestSeen = true
		}
		if a.Total < res.Best.Total {
			return violationf(StageAllocation, "best",
				"%s packs into %d cells but Best holds %d", strat, a.Total, res.Best.Total)
		}
	}
	if !bestSeen {
		if err := Allocation(res.Intervals, res.Best); err != nil {
			return err
		}
	}
	if res.Metrics.SharedTotal != res.Best.Total {
		return violationf(StageAllocation, "metrics",
			"Metrics.SharedTotal %d != best allocation total %d", res.Metrics.SharedTotal, res.Best.Total)
	}
	if res.Metrics.MergedTotal > res.Metrics.SharedTotal {
		return violationf(StageAllocation, "metrics",
			"merging grew the allocation: merged %d > shared %d", res.Metrics.MergedTotal, res.Metrics.SharedTotal)
	}
	want, err := g.BMLB()
	if err != nil {
		return fmt.Errorf("check: recomputing BMLB: %w", err)
	}
	if res.Metrics.BMLB != want {
		return violationf(StageSchedule, "metrics", "Metrics.BMLB %d != recomputed %d", res.Metrics.BMLB, want)
	}
	if bm, err := res.Schedule.BufMem(); err == nil && res.Metrics.NonSharedBufMem != bm {
		return violationf(StageSchedule, "metrics",
			"Metrics.NonSharedBufMem %d != recomputed bufmem %d", res.Metrics.NonSharedBufMem, bm)
	}
	if err := Memory(res, opt); err != nil {
		return err
	}
	if err := Codegen(res); err != nil {
		return err
	}
	if err := Runtime(res); err != nil {
		return err
	}
	if res.Partition != nil {
		return partitionPipeline(res, opt)
	}
	return nil
}
