package check

import (
	"repro/internal/alloc"
	"repro/internal/lifetime"
	"repro/internal/schedtree"
)

// stepTrace is an independent reconstruction of every edge's token history at
// schedule-step granularity (one leaf-block invocation = one step, the time
// base of the schedule tree): whether the edge holds tokens at any instant
// during each step, and the peak token count it ever reaches. It is computed
// by walking the tree directly rather than reusing the lifetime extraction
// under test.
type stepTrace struct {
	held  [][]bool // held[e][t]: edge e owns live tokens during step t
	peak  []int64  // maximum token count per edge
	steps int64    // steps actually walked; must equal tree.TotalDur
}

// traceTree executes the schedule tree step by step. It returns nil when the
// trace would exceed maxCells booleans (edges x steps), in which case the
// bracketing checks are skipped.
func traceTree(t *schedtree.Tree, maxCells int64) *stepTrace {
	g := t.Graph
	nE := int64(g.NumEdges())
	if nE == 0 || t.TotalDur <= 0 || t.TotalDur > maxCells/nE {
		return nil
	}
	tr := &stepTrace{
		held: make([][]bool, nE),
		peak: make([]int64, nE),
	}
	tokens := make([]int64, nE)
	for _, e := range g.Edges() {
		tokens[e.ID] = e.Delay
		tr.peak[e.ID] = e.Delay
		tr.held[e.ID] = make([]bool, t.TotalDur)
	}
	var walk func(n *schedtree.Node) bool
	walk = func(n *schedtree.Node) bool {
		for it := int64(0); it < n.Loop; it++ {
			if !n.IsLeaf() {
				if !walk(n.Left) {
					return false
				}
				if n.Right != nil && !walk(n.Right) {
					return false
				}
				continue
			}
			if tr.steps >= t.TotalDur {
				return false // tree duration annotation is wrong; caught by caller
			}
			// Within one invocation of a firing block an input count only
			// falls and an output count only rises, so the step's endpoints
			// bound both the peak and the "holds tokens" predicate. Consume
			// first, then produce, mirroring atomic firing semantics.
			for _, eid := range g.In(n.Actor) {
				if tokens[eid] > 0 {
					tr.held[eid][tr.steps] = true
				}
				tokens[eid] -= g.Edge(eid).Cons * n.Reps
			}
			for _, eid := range g.Out(n.Actor) {
				tokens[eid] += g.Edge(eid).Prod * n.Reps
				if tokens[eid] > tr.peak[eid] {
					tr.peak[eid] = tokens[eid]
				}
			}
			for e := int64(0); e < nE; e++ {
				if tokens[e] > 0 {
					tr.held[e][tr.steps] = true
				}
			}
			tr.steps++
			continue
		}
		return true
	}
	walk(t.Root)
	return tr
}

// Lifetimes verifies the extracted buffer lifetime intervals against the
// schedule tree: one structurally valid interval per edge, named after its
// edge, contained in the schedule period, sized to hold the edge's simulated
// peak token population, and — the bracketing property — live at every
// schedule step at which the reconstructed token trace shows the edge holding
// tokens. Start/stop/periodicity errors in the extraction all surface as
// bracketing failures.
func Lifetimes(t *schedtree.Tree, intervals []*lifetime.Interval, opt Options) error {
	g := t.Graph
	if len(intervals) != g.NumEdges() {
		return violationf(StageLifetimes, "length", "%d intervals for %d edges", len(intervals), g.NumEdges())
	}
	if t.TotalDur <= 0 {
		return violationf(StageLifetimes, "period", "schedule tree has duration %d", t.TotalDur)
	}
	for _, e := range g.Edges() {
		iv := intervals[e.ID]
		if iv == nil {
			return violationf(StageLifetimes, "missing", "edge %d has no lifetime interval", e.ID)
		}
		if want := g.Actor(e.Src).Name + "->" + g.Actor(e.Dst).Name; iv.Name != want {
			return violationf(StageLifetimes, "name", "edge %d interval named %q, want %q", e.ID, iv.Name, want)
		}
		if err := iv.Validate(); err != nil {
			return violationf(StageLifetimes, "structure", "%v", err)
		}
		if iv.Start < 0 || iv.End() > t.TotalDur {
			return violationf(StageLifetimes, "period",
				"interval %s spans [%d,%d) outside the period [0,%d)", iv.Name, iv.Start, iv.End(), t.TotalDur)
		}
	}
	tr := traceTree(t, opt.maxTraceCells())
	if tr == nil {
		return nil // system too large for the step trace; structural checks only
	}
	if tr.steps != t.TotalDur {
		return violationf(StageLifetimes, "period",
			"schedule tree walks %d steps but annotates TotalDur %d", tr.steps, t.TotalDur)
	}
	for _, e := range g.Edges() {
		iv := intervals[e.ID]
		if iv.Size < tr.peak[e.ID]*e.Words {
			return violationf(StageLifetimes, "size",
				"interval %s holds %d cells but the edge peaks at %d tokens x %d words",
				iv.Name, iv.Size, tr.peak[e.ID], e.Words)
		}
		for step := int64(0); step < tr.steps; step++ {
			if tr.held[e.ID][step] && !iv.LiveAt(step) {
				return violationf(StageLifetimes, "bracketing",
					"edge %s holds tokens at step %d but its interval %v is not live there",
					iv.Name, step, iv)
			}
		}
	}
	return nil
}

// Allocation verifies a storage allocation against the lifetime intervals it
// packs: every interval placed exactly once at a non-negative offset inside
// the declared total, no two time-intersecting intervals overlapping in
// memory, and the total within the trivial bounds (at least the largest
// buffer, at most the sum of all buffers).
func Allocation(intervals []*lifetime.Interval, a *alloc.Allocation) error {
	if a == nil {
		return violationf(StageAllocation, "missing", "no allocation")
	}
	placed := make(map[*lifetime.Interval]int64, len(a.Placements))
	for _, p := range a.Placements {
		if p.Interval == nil {
			return violationf(StageAllocation, "placement", "placement with nil interval")
		}
		if _, dup := placed[p.Interval]; dup {
			return violationf(StageAllocation, "placement", "interval %s placed twice", p.Interval.Name)
		}
		placed[p.Interval] = p.Offset
		if p.Offset < 0 || p.Offset+p.Interval.Size > a.Total {
			return violationf(StageAllocation, "bounds",
				"interval %s at [%d,%d) exceeds total %d",
				p.Interval.Name, p.Offset, p.Offset+p.Interval.Size, a.Total)
		}
	}
	var sum, largest int64
	for _, iv := range intervals {
		if _, ok := placed[iv]; !ok {
			return violationf(StageAllocation, "placement", "interval %s has no placement", iv.Name)
		}
		sum += iv.Size
		if iv.Size > largest {
			largest = iv.Size
		}
	}
	if len(intervals) > 0 && (a.Total < largest || a.Total > sum) {
		return violationf(StageAllocation, "total",
			"total %d outside [largest buffer %d, sum of buffers %d]", a.Total, largest, sum)
	}
	for i := 0; i < len(intervals); i++ {
		for j := i + 1; j < len(intervals); j++ {
			vi, vj := intervals[i], intervals[j]
			if !lifetime.Intersects(vi, vj) {
				continue
			}
			oi, oj := placed[vi], placed[vj]
			if oi < oj+vj.Size && oj < oi+vi.Size {
				return violationf(StageAllocation, "overlap",
					"%s at [%d,%d) and %s at [%d,%d) are live together but share memory",
					vi.Name, oi, oi+vi.Size, vj.Name, oj, oj+vj.Size)
			}
		}
	}
	return nil
}
