package check

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/sdf"
)

// PipelineConfig is one point of the (topological sort x post-optimization x
// allocator) grid that the differential fuzzers sweep. All allocators are
// compiled in one pass — Pipeline verifies each of the resulting allocations
// individually — so the grid costs one compilation per (order, looping) pair.
type PipelineConfig struct {
	Strategy   core.OrderStrategy
	Looping    core.LoopAlg
	Allocators []alloc.Strategy
	// Partitions >= 2 compiles a P-way phased parallel schedule alongside the
	// sequential one; Pipeline then also runs the partition-stage oracles.
	Partitions int
}

// String names the configuration the way crash reports reference it.
func (c PipelineConfig) String() string {
	if c.Partitions >= 2 {
		return fmt.Sprintf("%v+%v+p%d", c.Strategy, c.Looping, c.Partitions)
	}
	return fmt.Sprintf("%v+%v", c.Strategy, c.Looping)
}

// Options converts the configuration into compiler options. Verification is
// left off: the oracle re-runs the token-level simulators itself.
func (c PipelineConfig) Options() core.Options {
	return core.Options{
		Strategy:   c.Strategy,
		Looping:    c.Looping,
		Allocators: c.Allocators,
		Partitions: c.Partitions,
	}
}

// Run compiles the graph under this configuration and runs the full Pipeline
// oracle on the result. A returned *Violation is an oracle failure; any other
// non-nil error is a compilation failure (which, for a consistent acyclic
// graph, is itself suspect unless it wraps num.ErrOverflow).
func (c PipelineConfig) Run(g *sdf.Graph, opt Options) error {
	res, err := core.Compile(g, c.Options())
	if err != nil {
		return err
	}
	return Pipeline(res, opt)
}

// PipelineConfigs enumerates the full grid: both ordering heuristics times
// all four loop-hierarchy algorithms, each carrying all three allocators,
// plus the partitioned points — both heuristics at P in {2, 4} for two loop
// algorithms, and one three-way point to keep an odd worker count in play.
func PipelineConfigs() []PipelineConfig {
	allocators := []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart, alloc.BestFitDuration}
	var out []PipelineConfig
	for _, strat := range []core.OrderStrategy{core.APGAN, core.RPMC} {
		for _, la := range []core.LoopAlg{core.SDPPOLoops, core.DPPOLoops, core.ChainPreciseLoops, core.FlatLoops} {
			out = append(out, PipelineConfig{Strategy: strat, Looping: la, Allocators: allocators})
		}
	}
	for _, strat := range []core.OrderStrategy{core.APGAN, core.RPMC} {
		for _, la := range []core.LoopAlg{core.SDPPOLoops, core.FlatLoops} {
			for _, p := range []int{2, 4} {
				out = append(out, PipelineConfig{Strategy: strat, Looping: la, Allocators: allocators, Partitions: p})
			}
		}
	}
	out = append(out, PipelineConfig{Strategy: core.APGAN, Looping: core.SDPPOLoops, Allocators: allocators, Partitions: 3})
	return out
}
