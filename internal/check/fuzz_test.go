package check

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/num"
	"repro/internal/randsdf"
	"repro/internal/sdf"
)

// fuzzGraph deterministically materializes the fuzz input into a consistent
// acyclic SDF graph: the generator guarantees consistency by construction,
// so every pipeline configuration must compile it and pass the full oracle.
func fuzzGraph(seed int64, nactors, window, delayPct byte) *sdf.Graph {
	actors := 1 + int(nactors)%12
	win := 1 + int(window)%actors
	rng := rand.New(rand.NewSource(seed))
	g := randsdf.Graph(rng, randsdf.Config{
		Actors:    actors,
		Window:    win,
		DelayProb: float64(delayPct%4) * 0.25,
	})
	// Occasionally give one edge a multi-word (vector) token footprint, which
	// scales lifetime sizes and allocation but keeps the graph consistent.
	if delayPct%5 == 0 && g.NumEdges() > 0 {
		g.SetWords(sdf.EdgeID(rng.Intn(g.NumEdges())), 1+int64(rng.Intn(3)))
	}
	return g
}

// FuzzPipeline drives randomized consistent graphs through one point of the
// (topo-sort x post-opt x allocator) grid and requires the stage-by-stage
// invariant oracle to hold. Any t.Fatal here is a real pipeline bug.
func FuzzPipeline(f *testing.F) {
	f.Add(int64(1), byte(3), byte(2), byte(0), byte(0))
	f.Add(int64(2), byte(7), byte(3), byte(1), byte(3))
	f.Add(int64(3), byte(11), byte(11), byte(2), byte(5))
	f.Add(int64(4), byte(5), byte(1), byte(3), byte(7))
	f.Add(int64(42), byte(9), byte(4), byte(5), byte(2))
	f.Add(int64(-1), byte(0), byte(0), byte(0), byte(6))
	cfgs := PipelineConfigs()
	f.Fuzz(func(t *testing.T, seed int64, nactors, window, delayPct, cfgIdx byte) {
		g := fuzzGraph(seed, nactors, window, delayPct)
		cfg := cfgs[int(cfgIdx)%len(cfgs)]
		err := cfg.Run(g, Options{})
		if err == nil {
			return
		}
		if errors.Is(err, num.ErrOverflow) {
			t.Skip("exact arithmetic overflows int64")
		}
		t.Fatalf("config %v on %d-actor graph (seed %d): %v", cfg, g.NumActors(), seed, err)
	})
}
