package check

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/lifetime"
	"repro/internal/randsdf"
	"repro/internal/sdf"
	"repro/internal/systems"
)

// compileQuickstart compiles the three-actor sample-rate converter used
// throughout the corruption tests: small enough to reason about, multirate
// enough that buffers genuinely overlap in time.
func compileQuickstart(t *testing.T, opts core.Options) *core.Result {
	t.Helper()
	g := sdf.New("quickstart")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 2, 1, 0)
	g.AddEdge(b, c, 1, 3, 0)
	res, err := core.Compile(g, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res
}

func TestPipelineCleanOnPracticalSystems(t *testing.T) {
	for _, g := range systems.Table1Systems() {
		for _, strat := range []core.OrderStrategy{core.APGAN, core.RPMC} {
			res, err := core.Compile(g, core.Options{Strategy: strat, Looping: core.SDPPOLoops})
			if err != nil {
				t.Fatalf("%s/%v: compile: %v", g.Name, strat, err)
			}
			if err := Pipeline(res, Options{}); err != nil {
				t.Errorf("%s/%v: oracle violation: %v", g.Name, strat, err)
			}
		}
	}
}

func TestPipelineCleanAcrossConfigurations(t *testing.T) {
	g := systems.CDDAT()
	for _, strat := range []core.OrderStrategy{core.APGAN, core.RPMC} {
		for _, la := range []core.LoopAlg{core.SDPPOLoops, core.DPPOLoops, core.ChainPreciseLoops, core.FlatLoops} {
			res, err := core.Compile(g, core.Options{
				Strategy: strat,
				Looping:  la,
				Allocators: []alloc.Strategy{
					alloc.FirstFitDuration, alloc.FirstFitStart, alloc.BestFitDuration,
				},
			})
			if err != nil {
				t.Fatalf("%v/%v: compile: %v", strat, la, err)
			}
			if err := Pipeline(res, Options{}); err != nil {
				t.Errorf("%v/%v: oracle violation: %v", strat, la, err)
			}
		}
	}
}

func TestPipelineCleanOnRandomGraphsWithDelays(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		g := randsdf.Graph(rng, randsdf.Config{Actors: 2 + rng.Intn(8), DelayProb: 0.4})
		res, err := core.Compile(g, core.Options{Strategy: core.APGAN})
		if err != nil {
			t.Fatalf("graph %d: compile: %v", i, err)
		}
		if err := Pipeline(res, Options{}); err != nil {
			t.Errorf("graph %d: oracle violation: %v", i, err)
		}
	}
}

// intersectingPair returns the indices of two placements whose intervals are
// live at the same time, which every multirate chain is guaranteed to have.
func intersectingPair(t *testing.T, a *alloc.Allocation) (int, int) {
	t.Helper()
	for i := 0; i < len(a.Placements); i++ {
		for j := i + 1; j < len(a.Placements); j++ {
			if lifetime.Intersects(a.Placements[i].Interval, a.Placements[j].Interval) {
				return i, j
			}
		}
	}
	t.Fatal("no pair of time-intersecting intervals in the allocation")
	return 0, 0
}

// TestCorruptedAllocationOffsetCaught is the acceptance property for the
// oracle: deliberately moving one allocator offset onto a concurrently live
// buffer must be caught by Pipeline with an allocation-stage attribution.
func TestCorruptedAllocationOffsetCaught(t *testing.T) {
	res := compileQuickstart(t, core.Options{})
	i, j := intersectingPair(t, res.Best)
	res.Best.Placements[j].Offset = res.Best.Placements[i].Offset
	err := Pipeline(res, Options{})
	if err == nil {
		t.Fatal("oracle accepted an allocation with overlapping live buffers")
	}
	stage, ok := StageOf(err)
	if !ok {
		t.Fatalf("oracle error %v is not stage-attributed", err)
	}
	if stage != StageAllocation {
		t.Fatalf("violation attributed to stage %q, want %q (error: %v)", stage, StageAllocation, err)
	}
	if !strings.Contains(err.Error(), "overlap") {
		t.Errorf("error %v does not name the overlap rule", err)
	}
}

func TestCorruptedScheduleCaught(t *testing.T) {
	res := compileQuickstart(t, core.Options{})
	res.Schedule.Body[0].Count++
	err := Pipeline(res, Options{})
	if stage, _ := StageOf(err); stage != StageSchedule {
		t.Fatalf("got %v, want a %s violation", err, StageSchedule)
	}
}

func TestCorruptedRepetitionsCaught(t *testing.T) {
	res := compileQuickstart(t, core.Options{})
	doubled := make(sdf.Repetitions, len(res.Repetitions))
	for i, v := range res.Repetitions {
		doubled[i] = 2 * v
	}
	// A uniformly scaled vector still balances; only minimality rejects it.
	if err := Repetitions(res.Graph, doubled); err == nil {
		t.Error("oracle accepted a non-minimal repetitions vector")
	}
	res.Repetitions[0]++
	err := Pipeline(res, Options{})
	if stage, _ := StageOf(err); stage != StageRepetitions {
		t.Fatalf("got %v, want a %s violation", err, StageRepetitions)
	}
}

func TestCorruptedOrderCaught(t *testing.T) {
	res := compileQuickstart(t, core.Options{})
	res.Order[0], res.Order[1] = res.Order[1], res.Order[0]
	err := Pipeline(res, Options{})
	if stage, _ := StageOf(err); stage != StageOrder {
		t.Fatalf("got %v, want a %s violation", err, StageOrder)
	}
}

func TestCorruptedLifetimeCaught(t *testing.T) {
	// Shrinking a buffer below the edge's simulated peak must trip the size
	// rule; truncating its live window must trip bracketing.
	for _, corrupt := range []struct {
		name string
		mut  func(iv *lifetime.Interval)
	}{
		{"size", func(iv *lifetime.Interval) { iv.Size = 1 }},
		{"bracketing", func(iv *lifetime.Interval) { iv.Dur = 1; iv.Periods = nil }},
	} {
		r := compileQuickstart(t, core.Options{})
		var target *lifetime.Interval
		for _, iv := range r.Intervals {
			if iv.Size > 1 && iv.Dur > 1 {
				target = iv
				break
			}
		}
		if target == nil {
			t.Fatalf("%s: no interval large enough to corrupt", corrupt.name)
		}
		corrupt.mut(target)
		err := Pipeline(r, Options{})
		if stage, _ := StageOf(err); stage != StageLifetimes {
			t.Fatalf("%s: got %v, want a %s violation", corrupt.name, err, StageLifetimes)
		}
	}
}

func TestMemoryStageCatchesClobberDirectly(t *testing.T) {
	res := compileQuickstart(t, core.Options{})
	i, j := intersectingPair(t, res.Best)
	res.Best.Placements[j].Offset = res.Best.Placements[i].Offset
	err := Memory(res, Options{})
	if stage, _ := StageOf(err); stage != StageMemory {
		t.Fatalf("token-level simulator missed the clobber: %v", err)
	}
}

func TestViolationFormatting(t *testing.T) {
	v := violationf(StageAllocation, "overlap", "a and b collide at %d", 7)
	if got := v.Error(); got != "check: allocation/overlap: a and b collide at 7" {
		t.Fatalf("Error() = %q", got)
	}
	if stage, ok := StageOf(v); !ok || stage != StageAllocation {
		t.Fatalf("StageOf = %v, %v", stage, ok)
	}
	if _, ok := StageOf(nil); ok {
		t.Fatal("StageOf(nil) reported a stage")
	}
}

func TestScheduleOracleRejectsWrongGraphBinding(t *testing.T) {
	res := compileQuickstart(t, core.Options{})
	other := sdf.New("other")
	other.AddActor("X")
	err := Schedule(other, sdf.Repetitions{1}, res.Schedule, Options{})
	if stage, _ := StageOf(err); stage != StageSchedule {
		t.Fatalf("got %v, want a %s violation", err, StageSchedule)
	}
}
