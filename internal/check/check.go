// Package check is the pipeline-wide invariant oracle for the shared-memory
// SDF synthesis flow. Every stage of the Fig. 21 pipeline — repetitions
// vector, lexical order, looped schedule, buffer lifetimes, storage
// allocation, generated code and the float64 runtime — is verified against
// stage-independent properties (balance equations, SAS validity, the BMLB
// lower bound of Sec. 11.1.3, lifetime/trace bracketing, memory disjointness,
// trace equivalence), so a bug introduced anywhere in the flow is caught and
// attributed to the stage whose contract it breaks.
//
// The oracle is deliberately redundant with the algorithms it checks: every
// property is recomputed from first principles (firing expansion, pairwise
// interval intersection, a reference token interpreter) rather than by
// calling the optimized code paths under test. Pipeline is the single entry
// point used by cmd/sdffuzz, the FuzzPipeline native fuzz target, and any
// future perf or refactor PR that needs a standing correctness gate.
package check

import (
	"errors"
	"fmt"

	"repro/internal/num"
	"repro/internal/sched"
	"repro/internal/sdf"
)

// Stage identifies the pipeline stage whose contract a violation breaks.
type Stage string

const (
	StageGraph       Stage = "graph"
	StageRepetitions Stage = "repetitions"
	StageOrder       Stage = "order"
	StageSchedule    Stage = "schedule"
	StageLifetimes   Stage = "lifetimes"
	StageAllocation  Stage = "allocation"
	StageMemory      Stage = "memory"
	StageCodegen     Stage = "codegen"
	StageRuntime     Stage = "runtime"
	StagePartition   Stage = "partition"
	StageSegments    Stage = "segments"
)

// Violation is a stage-attributed oracle failure. Rule names the invariant
// that broke, in a stable kebab-case vocabulary suitable for triage and for
// the fuzzer's crash bucketing.
type Violation struct {
	Stage Stage
	Rule  string
	Msg   string
}

// Error implements the error interface.
func (v *Violation) Error() string {
	return fmt.Sprintf("check: %s/%s: %s", v.Stage, v.Rule, v.Msg)
}

// violationf builds a Violation with a formatted message.
func violationf(stage Stage, rule, format string, args ...interface{}) *Violation {
	return &Violation{Stage: stage, Rule: rule, Msg: fmt.Sprintf(format, args...)}
}

// StageOf extracts the stage attribution from an oracle error; ok is false
// when err does not wrap a Violation.
func StageOf(err error) (Stage, bool) {
	var v *Violation
	if errors.As(err, &v) {
		return v.Stage, true
	}
	return "", false
}

// Options tunes the oracle's cost/coverage trade-offs. The zero value is the
// recommended configuration.
type Options struct {
	// MaxExpansionFirings caps the firing-expansion differential: when one
	// period exceeds this many firings the O(total firings) reference
	// simulation is skipped and only the loop-aware path is checked.
	// 0 means 1<<20.
	MaxExpansionFirings int64
	// MaxTraceCells caps the lifetime step-trace (edges x schedule steps
	// booleans); larger systems skip the bracketing check. 0 means 1<<23.
	MaxTraceCells int64
	// SimPeriods is how many periods the token-level shared-memory simulator
	// runs in the memory stage. 0 means 2.
	SimPeriods int
}

func (o Options) maxExpansion() int64 {
	if o.MaxExpansionFirings <= 0 {
		return 1 << 20
	}
	return o.MaxExpansionFirings
}

func (o Options) maxTraceCells() int64 {
	if o.MaxTraceCells <= 0 {
		return 1 << 23
	}
	return o.MaxTraceCells
}

func (o Options) simPeriods() int {
	if o.SimPeriods <= 0 {
		return 2
	}
	return o.SimPeriods
}

// Graph verifies structural sanity of the SDF graph itself: at least one
// actor, unique non-empty names, endpoints in range, positive rates,
// non-negative delays and positive token footprints.
func Graph(g *sdf.Graph) error {
	if g == nil {
		return violationf(StageGraph, "nil", "no graph")
	}
	if g.NumActors() == 0 {
		return violationf(StageGraph, "empty", "graph %q has no actors", g.Name)
	}
	names := make(map[string]bool, g.NumActors())
	for _, a := range g.Actors() {
		if a.Name == "" {
			return violationf(StageGraph, "actor-name", "actor %d has an empty name", a.ID)
		}
		if names[a.Name] {
			return violationf(StageGraph, "actor-name", "duplicate actor name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, e := range g.Edges() {
		if e.Src < 0 || int(e.Src) >= g.NumActors() || e.Dst < 0 || int(e.Dst) >= g.NumActors() {
			return violationf(StageGraph, "edge-endpoints", "edge %d references unknown actor (%d->%d)", e.ID, e.Src, e.Dst)
		}
		if e.Prod < 1 || e.Cons < 1 {
			return violationf(StageGraph, "edge-rates", "edge %d has rates prod=%d cons=%d", e.ID, e.Prod, e.Cons)
		}
		if e.Delay < 0 {
			return violationf(StageGraph, "edge-delay", "edge %d has delay %d", e.ID, e.Delay)
		}
		if e.Words < 1 {
			return violationf(StageGraph, "edge-words", "edge %d has token footprint %d words", e.ID, e.Words)
		}
	}
	return nil
}

// Repetitions verifies that q is the repetitions vector of g: positive,
// satisfying every balance equation prd(e)*q(src) = cns(e)*q(dst), and
// minimal (component-wise gcd 1), which pins it down uniquely.
func Repetitions(g *sdf.Graph, q sdf.Repetitions) error {
	if len(q) != g.NumActors() {
		return violationf(StageRepetitions, "length", "q has %d entries for %d actors", len(q), g.NumActors())
	}
	for a, v := range q {
		if v < 1 {
			return violationf(StageRepetitions, "positive", "q(%s) = %d", g.Actor(sdf.ActorID(a)).Name, v)
		}
	}
	for _, e := range g.Edges() {
		if e.Prod*q[e.Src] != e.Cons*q[e.Dst] {
			return violationf(StageRepetitions, "balance",
				"edge %s->%s: prd*q(src) = %d*%d != %d*%d = cns*q(dst)",
				g.Actor(e.Src).Name, g.Actor(e.Dst).Name, e.Prod, q[e.Src], e.Cons, q[e.Dst])
		}
	}
	// Minimality per weakly connected component (union-find over edges).
	parent := make([]int, g.NumActors())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges() {
		parent[find(int(e.Src))] = find(int(e.Dst))
	}
	gcd := make(map[int]int64)
	for a := range q {
		r := find(a)
		gcd[r] = num.GCD(gcd[r], q[a])
	}
	for r, v := range gcd {
		if v > 1 {
			return violationf(StageRepetitions, "minimal",
				"component of %s has gcd %d > 1 (q not minimal)", g.Actor(sdf.ActorID(r)).Name, v)
		}
	}
	return nil
}

// Order verifies that the lexical ordering is a permutation of the actors
// respecting every precedence edge (delays that cover one period's
// consumption remove the precedence, per Bhattacharyya et al.).
func Order(g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID) error {
	if len(order) != g.NumActors() {
		return violationf(StageOrder, "length", "order has %d actors, graph has %d", len(order), g.NumActors())
	}
	pos := make([]int, g.NumActors())
	for i := range pos {
		pos[i] = -1
	}
	for i, a := range order {
		if a < 0 || int(a) >= g.NumActors() {
			return violationf(StageOrder, "range", "order[%d] = %d out of range", i, a)
		}
		if pos[a] >= 0 {
			return violationf(StageOrder, "permutation", "actor %s appears twice in the order", g.Actor(a).Name)
		}
		pos[a] = i
	}
	for _, e := range g.Edges() {
		if sdf.PrecedenceEdge(g, q, e.ID) && pos[e.Src] > pos[e.Dst] {
			return violationf(StageOrder, "precedence",
				"precedence edge %s->%s inverted in lexical order (positions %d > %d)",
				g.Actor(e.Src).Name, g.Actor(e.Dst).Name, pos[e.Src], pos[e.Dst])
		}
	}
	return nil
}

// Schedule verifies the looped schedule against the graph and repetitions
// vector: well-formed loop structure, executability (token counts never go
// negative), exactly q(v) firings per actor, zero net token change, agreement
// between the loop-aware simulation and the firing-expansion reference, and
// — for single appearance schedules — the per-edge and total BMLB lower
// bounds of Sec. 11.1.3.
func Schedule(g *sdf.Graph, q sdf.Repetitions, s *sched.Schedule, opt Options) error {
	if s == nil || len(s.Body) == 0 {
		return violationf(StageSchedule, "empty", "no schedule")
	}
	if s.Graph != g {
		return violationf(StageSchedule, "graph", "schedule is bound to a different graph")
	}
	if err := scheduleShape(g, s.Body); err != nil {
		return err
	}
	res, err := s.Simulate()
	if err != nil {
		return violationf(StageSchedule, "executable", "%v", err)
	}
	for a := 0; a < g.NumActors(); a++ {
		if res.Firings[a] != q[a] {
			return violationf(StageSchedule, "firings",
				"actor %s fires %d times per period, want q = %d",
				g.Actor(sdf.ActorID(a)).Name, res.Firings[a], q[a])
		}
	}
	for _, e := range g.Edges() {
		if res.FinalTokens[e.ID] != e.Delay {
			return violationf(StageSchedule, "periodic",
				"edge %s->%s ends the period with %d tokens, want delay %d",
				g.Actor(e.Src).Name, g.Actor(e.Dst).Name, res.FinalTokens[e.ID], e.Delay)
		}
		if res.MaxTokens[e.ID] < e.Delay {
			return violationf(StageSchedule, "max-tokens",
				"edge %s->%s reports max_tokens %d below its delay %d",
				g.Actor(e.Src).Name, g.Actor(e.Dst).Name, res.MaxTokens[e.ID], e.Delay)
		}
	}
	if q.TotalFirings() <= opt.maxExpansion() {
		ref, err := s.SimulateByExpansion()
		if err != nil {
			return violationf(StageSchedule, "differential",
				"loop-aware simulation succeeds but firing expansion fails: %v", err)
		}
		for _, e := range g.Edges() {
			if res.MaxTokens[e.ID] != ref.MaxTokens[e.ID] {
				return violationf(StageSchedule, "differential",
					"edge %s->%s: loop-aware max_tokens %d != expansion %d",
					g.Actor(e.Src).Name, g.Actor(e.Dst).Name, res.MaxTokens[e.ID], ref.MaxTokens[e.ID])
			}
			if res.FinalTokens[e.ID] != ref.FinalTokens[e.ID] {
				return violationf(StageSchedule, "differential",
					"edge %s->%s: loop-aware final tokens %d != expansion %d",
					g.Actor(e.Src).Name, g.Actor(e.Dst).Name, res.FinalTokens[e.ID], ref.FinalTokens[e.ID])
			}
		}
		for a := range res.Firings {
			if res.Firings[a] != ref.Firings[a] {
				return violationf(StageSchedule, "differential",
					"actor %s: loop-aware firings %d != expansion %d",
					g.Actor(sdf.ActorID(a)).Name, res.Firings[a], ref.Firings[a])
			}
		}
	}
	if s.IsSingleAppearance() {
		var bufmem int64
		for _, e := range g.Edges() {
			words := res.MaxTokens[e.ID] * e.Words
			bufmem += words
			lb, err := sdf.BMLBEdge(e)
			if err != nil {
				return fmt.Errorf("check: per-edge BMLB: %w", err)
			}
			if words < lb {
				return violationf(StageSchedule, "bmlb",
					"edge %s->%s: max_tokens %d words below the per-edge BMLB %d",
					g.Actor(e.Src).Name, g.Actor(e.Dst).Name, words, lb)
			}
		}
		bmlb, err := g.BMLB()
		if err != nil {
			return fmt.Errorf("check: graph BMLB: %w", err)
		}
		if bufmem < bmlb {
			return violationf(StageSchedule, "bmlb",
				"bufmem(S) = %d below the graph BMLB %d", bufmem, bmlb)
		}
	}
	return nil
}

// scheduleShape walks the schedule term recursively checking structural
// invariants: positive counts, non-empty loop bodies, leaf actors in range.
func scheduleShape(g *sdf.Graph, body []*sched.Node) error {
	var walk func(n *sched.Node) error
	walk = func(n *sched.Node) error {
		if n == nil {
			return violationf(StageSchedule, "shape", "nil schedule term")
		}
		if n.Count < 1 {
			return violationf(StageSchedule, "shape", "loop count %d < 1", n.Count)
		}
		if n.IsLeaf() {
			if n.Actor < 0 || int(n.Actor) >= g.NumActors() {
				return violationf(StageSchedule, "shape", "leaf fires unknown actor %d", n.Actor)
			}
			return nil
		}
		if len(n.Children) == 0 {
			return violationf(StageSchedule, "shape", "empty loop body")
		}
		for _, ch := range n.Children {
			if err := walk(ch); err != nil {
				return err
			}
		}
		return nil
	}
	for _, n := range body {
		if err := walk(n); err != nil {
			return err
		}
	}
	return nil
}
