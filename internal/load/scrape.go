package load

import (
	"strconv"
	"strings"
)

// ParsePrometheus parses the Prometheus text exposition format into a map
// from family name to the sum of that family's sample values (labels
// collapsed). Summing is the right reduction for every family sdfload
// reads: unlabeled counters and gauges are singletons, and labeled
// counters (nodestore loads by kind, shed by reason) are wanted as totals.
// Malformed lines are skipped — a scrape is telemetry, not a contract.
func ParsePrometheus(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// name[{labels}] value [timestamp] — label values never contain
		// spaces in this repository's registry (kind/reason/route/code/le).
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		series, rest := line[:sp], strings.Fields(line[sp+1:])
		if len(rest) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(rest[0], 64)
		if err != nil {
			continue
		}
		name := series
		if br := strings.IndexByte(series, '{'); br >= 0 {
			name = series[:br]
		}
		out[name] += v
	}
	return out
}

// MetricsSnapshot is the subset of the sdfd /metrics families the ramp
// controller tracks between steps. All fields are cumulative counters
// except QueueDepth, which is a point-in-time gauge.
type MetricsSnapshot struct {
	CacheHits      float64
	CacheMisses    float64
	PipelineRuns   float64
	GridRuns       float64
	NodestoreLoads float64
	LoadShed       float64
	QueueDepth     float64
}

// SnapshotFromFamilies extracts the tracked families from a parsed scrape.
func SnapshotFromFamilies(fams map[string]float64) MetricsSnapshot {
	return MetricsSnapshot{
		CacheHits:      fams["sdfd_cache_hits_total"],
		CacheMisses:    fams["sdfd_cache_misses_total"],
		PipelineRuns:   fams["sdfd_pipeline_runs_total"],
		GridRuns:       fams["sdfd_grid_runs_total"],
		NodestoreLoads: fams["sdfd_nodestore_loads_total"],
		LoadShed:       fams["sdfd_load_shed_total"],
		QueueDepth:     fams["sdfd_queue_depth"],
	}
}

// MetricsDelta is the server-side view of one ramp step: counter deltas
// across the step plus the queue depth observed at its end.
type MetricsDelta struct {
	CacheHits      float64 `json:"cache_hits"`
	CacheMisses    float64 `json:"cache_misses"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	PipelineRuns   float64 `json:"pipeline_runs"`
	GridRuns       float64 `json:"grid_runs"`
	NodestoreLoads float64 `json:"nodestore_loads"`
	LoadShed       float64 `json:"load_shed"`
	QueueDepth     float64 `json:"queue_depth"`
}

// deltaSnapshot subtracts the step-start snapshot from the step-end one.
func deltaSnapshot(before, after MetricsSnapshot) *MetricsDelta {
	d := &MetricsDelta{
		CacheHits:      after.CacheHits - before.CacheHits,
		CacheMisses:    after.CacheMisses - before.CacheMisses,
		PipelineRuns:   after.PipelineRuns - before.PipelineRuns,
		GridRuns:       after.GridRuns - before.GridRuns,
		NodestoreLoads: after.NodestoreLoads - before.NodestoreLoads,
		LoadShed:       after.LoadShed - before.LoadShed,
		QueueDepth:     after.QueueDepth,
	}
	if lookups := d.CacheHits + d.CacheMisses; lookups > 0 {
		d.CacheHitRatio = d.CacheHits / lookups
	}
	return d
}
