package load

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// fakeClock advances only when the pacer waits on After: deterministic
// pacing with no real sleeping. Safe for concurrent use.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.now = c.now.Add(d)
	t := c.now
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- t
	return ch
}

// scriptedSender classifies request k by a script function; metrics are a
// fixed snapshot sequence.
type scriptedSender struct {
	classify func(k int64) Class
	count    atomic.Int64
	scrapes  atomic.Int64
}

func (s *scriptedSender) Do(op Op) Class {
	k := s.count.Add(1)
	return s.classify(k)
}

func (s *scriptedSender) Metrics() (MetricsSnapshot, error) {
	n := float64(s.scrapes.Add(1))
	return MetricsSnapshot{PipelineRuns: 10 * n, CacheHits: 5 * n, CacheMisses: 5 * n, QueueDepth: 2}, nil
}

func testWorkload(t *testing.T, seed int64) *Workload {
	t.Helper()
	wl, err := NewWorkload(seed, Mix{Cold: 1, Warm: 6, Edit: 2, Grid: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

func TestWorkloadDeterministic(t *testing.T) {
	a := testWorkload(t, 7)
	b := testWorkload(t, 7)
	for i := int64(0); i < 200; i++ {
		oa, ob := a.Op(i), b.Op(i)
		if oa.Kind != ob.Kind || oa.Path != ob.Path || !bytes.Equal(oa.Body, ob.Body) {
			t.Fatalf("op %d differs across identically seeded workloads", i)
		}
	}
	// Exact mix proportions over one full pattern cycle.
	counts := map[OpKind]int{}
	total := a.Mix().total()
	for i := 0; i < total; i++ {
		counts[a.Op(int64(i)).Kind]++
	}
	if counts[OpCold] != 1 || counts[OpWarm] != 6 || counts[OpEdit] != 2 || counts[OpGrid] != 1 {
		t.Errorf("one cycle's kind counts %v do not match mix 1/6/2/1", counts)
	}
}

func TestWorkloadBodies(t *testing.T) {
	wl := testWorkload(t, 3)
	seenGrid := false
	coldBodies := map[string]bool{}
	for i := int64(0); i < 50; i++ {
		op := wl.Op(i)
		switch op.Kind {
		case OpGrid:
			seenGrid = true
			if op.Path != "/v1/grid" {
				t.Errorf("grid op path %q", op.Path)
			}
			var req service.GridRequest
			if err := json.Unmarshal(op.Body, &req); err != nil || req.Graph == "" || len(req.Entries) != 4 {
				t.Errorf("grid body invalid (err=%v, %d entries)", err, len(req.Entries))
			}
		default:
			if op.Path != "/v1/compile" {
				t.Errorf("%v op path %q", op.Kind, op.Path)
			}
			var req service.CompileRequest
			if err := json.Unmarshal(op.Body, &req); err != nil || req.Graph == "" {
				t.Errorf("%v body invalid: %v", op.Kind, err)
			}
			if op.Kind == OpCold {
				coldBodies[string(op.Body)] = true
			}
		}
	}
	if !seenGrid {
		t.Error("no grid op in 50 requests with grid weight 1/10")
	}
	if len(coldBodies) < 2 {
		t.Errorf("cold ops repeat bodies: %d distinct", len(coldBodies))
	}
}

func TestClassifyStatus(t *testing.T) {
	cases := []struct {
		status int
		want   Class
	}{
		{200, ClassOK}, {201, ClassOK},
		{429, ClassShed}, {503, ClassShed},
		{400, ClassError}, {408, ClassError}, {422, ClassError}, {500, ClassError},
	}
	for _, c := range cases {
		if got := ClassifyStatus(c.status); got != c.want {
			t.Errorf("ClassifyStatus(%d) = %v, want %v", c.status, got, c.want)
		}
	}
}

func TestParsePrometheus(t *testing.T) {
	text := `# HELP sdfd_cache_hits_total compile cache hits
# TYPE sdfd_cache_hits_total counter
sdfd_cache_hits_total 42
sdfd_nodestore_loads_total{kind="order"} 3
sdfd_nodestore_loads_total{kind="schedule"} 4
sdfd_queue_depth 7
sdfd_request_seconds_bucket{route="compile",le="0.001"} 5

malformed line without value
sdfd_bad_value notanumber
`
	fams := ParsePrometheus(text)
	if fams["sdfd_cache_hits_total"] != 42 {
		t.Errorf("cache hits = %v", fams["sdfd_cache_hits_total"])
	}
	if fams["sdfd_nodestore_loads_total"] != 7 {
		t.Errorf("labeled family not summed: %v", fams["sdfd_nodestore_loads_total"])
	}
	if fams["sdfd_queue_depth"] != 7 {
		t.Errorf("gauge = %v", fams["sdfd_queue_depth"])
	}
	snap := SnapshotFromFamilies(fams)
	if snap.CacheHits != 42 || snap.NodestoreLoads != 7 || snap.QueueDepth != 7 {
		t.Errorf("snapshot %+v", snap)
	}
}

func TestRampStopsAtKnee(t *testing.T) {
	// Step 1 sends 10 requests (10 rps x 1s), all fine. Step 2 sends 20,
	// all failing: the ramp must record the violation, stop before step 3,
	// and place the knee at step 1's target.
	sender := &scriptedSender{classify: func(k int64) Class {
		if k <= 10 {
			return ClassOK
		}
		return ClassError
	}}
	wl := testWorkload(t, 1)
	rep, err := Run(Config{
		Label: "knee", Seed: 1, Clock: &fakeClock{}, Sender: sender, Workload: wl, Workers: 4,
	}, Steps(10, 10, 3, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 2 {
		t.Fatalf("ramp ran %d steps, want 2 (stop at first violation)", len(rep.Steps))
	}
	if rep.Steps[0].Errors != 0 || rep.Steps[0].OK != 10 || len(rep.Steps[0].Violations) != 0 {
		t.Errorf("clean step miscounted: %+v", rep.Steps[0])
	}
	if rep.Steps[1].Errors != 20 || len(rep.Steps[1].Violations) == 0 {
		t.Errorf("violating step miscounted: %+v", rep.Steps[1])
	}
	if !rep.Knee.Saturated || rep.Knee.RPS != 10 {
		t.Errorf("knee = %+v, want saturated at 10 rps", rep.Knee)
	}
	if rep.Steps[0].Metrics == nil || rep.Steps[0].Metrics.PipelineRuns != 10 {
		t.Errorf("step metrics delta = %+v, want pipeline_runs 10", rep.Steps[0].Metrics)
	}
	if errs := rep.SelfCheck(); len(errs) != 0 {
		t.Errorf("selfcheck on a correct run: %v", errs)
	}
}

func TestRampCompletesAllSteps(t *testing.T) {
	sender := &scriptedSender{classify: func(int64) Class { return ClassOK }}
	wl := testWorkload(t, 2)
	rep, err := Run(Config{
		Label: "clean", Seed: 2, Clock: &fakeClock{}, Sender: sender, Workload: wl, Workers: 8,
	}, Steps(5, 5, 3, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 3 {
		t.Fatalf("ran %d steps, want 3", len(rep.Steps))
	}
	var sent int64
	for _, st := range rep.Steps {
		sent += st.Sent
	}
	if got := sender.count.Load(); got != sent {
		t.Errorf("sender saw %d requests, report says %d", got, sent)
	}
	if rep.Knee.Saturated || rep.Knee.RPS != 15 {
		t.Errorf("knee = %+v, want unsaturated at 15 rps", rep.Knee)
	}
	if errs := rep.SelfCheck(); len(errs) != 0 {
		t.Errorf("selfcheck: %v", errs)
	}
	// The report round-trips through its JSON schema.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != ReportVersion || len(back.Steps) != 3 || back.Knee.RPS != 15 {
		t.Errorf("round-tripped report differs: %+v", back)
	}
}

func TestShedIsNotError(t *testing.T) {
	// A server that sheds half its traffic below the knee stays SLO-clean:
	// sheds are completed requests, not errors.
	sender := &scriptedSender{classify: func(k int64) Class {
		if k%2 == 0 {
			return ClassShed
		}
		return ClassOK
	}}
	wl := testWorkload(t, 4)
	rep, err := Run(Config{
		Label: "shed", Seed: 4, Clock: &fakeClock{}, Sender: sender, Workload: wl, Workers: 2,
	}, Steps(10, 0, 2, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 2 {
		t.Fatalf("shedding stopped the ramp: %d steps", len(rep.Steps))
	}
	for i, st := range rep.Steps {
		if st.Errors != 0 || st.Shed == 0 || len(st.Violations) != 0 {
			t.Errorf("step %d: ok=%d shed=%d errors=%d violations=%v",
				i, st.OK, st.Shed, st.Errors, st.Violations)
		}
	}
	if errs := rep.SelfCheck(); len(errs) != 0 {
		t.Errorf("selfcheck: %v", errs)
	}
}

func TestEvaluateSLO(t *testing.T) {
	slo := SLO{MaxP99: 100 * time.Millisecond, MinAchievedFrac: 0.9}
	clean := StepResult{TargetRPS: 100, AchievedRPS: 99, Sent: 100, OK: 100}
	clean.Latency.P99 = int64(50 * time.Millisecond)
	if v := evaluateSLO(slo, clean); len(v) != 0 {
		t.Errorf("clean step flagged: %v", v)
	}
	slow := clean
	slow.Latency.P99 = int64(200 * time.Millisecond)
	if v := evaluateSLO(slo, slow); len(v) != 1 {
		t.Errorf("p99 violation not flagged: %v", v)
	}
	lagging := clean
	lagging.AchievedRPS = 50
	if v := evaluateSLO(slo, lagging); len(v) != 1 {
		t.Errorf("achieved-RPS violation not flagged: %v", v)
	}
	failing := clean
	failing.Errors, failing.OK = 3, 97
	if v := evaluateSLO(slo, failing); len(v) != 1 {
		t.Errorf("error violation not flagged: %v", v)
	}
}

func TestSelfCheckCatchesCorruption(t *testing.T) {
	sender := &scriptedSender{classify: func(int64) Class { return ClassOK }}
	wl := testWorkload(t, 5)
	rep, err := Run(Config{
		Label: "c", Seed: 5, Clock: &fakeClock{}, Sender: sender, Workload: wl, Workers: 2,
	}, Steps(10, 0, 1, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func(r *Report)) {
		data, _ := json.Marshal(rep)
		var r Report
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatal(err)
		}
		mutate(&r)
		if errs := r.SelfCheck(); len(errs) == 0 {
			t.Errorf("%s: corruption not caught", name)
		}
	}
	corrupt("non-monotone percentiles", func(r *Report) {
		r.Steps[0].Latency.P50, r.Steps[0].Latency.P999 = r.Steps[0].Latency.P999+10, r.Steps[0].Latency.P50
		r.Steps[0].Latency.Max = 0
	})
	corrupt("count mismatch", func(r *Report) { r.Steps[0].OK++ })
	corrupt("histogram count mismatch", func(r *Report) { r.Steps[0].Latency.Count-- })
	corrupt("errors below the knee", func(r *Report) {
		r.Steps[0].Errors, r.Steps[0].OK = 1, r.Steps[0].OK-1
	})
	corrupt("violations on a non-final step", func(r *Report) {
		r.Steps = append(r.Steps, r.Steps[0])
		r.Steps[0].Violations = []string{"fake"}
	})
	corrupt("wrong version", func(r *Report) { r.Version = "load/v0" })
}
