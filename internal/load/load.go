// Package load is an open-loop saturation load harness for a live sdfd: it
// drives a deterministic workload mix (cold compiles, warm cache hits,
// single-actor edits, /v1/grid bursts) through staged RPS ramps, records
// coordinated-omission-safe latency histograms (internal/hdr), scrapes the
// daemon's /metrics between steps, and declares the saturation knee when a
// step violates its SLOs.
//
// Open-loop means fixed-schedule: request i of a step is due at
// start + i/targetRPS regardless of how previous requests fared. Workers
// that fall behind drain the backlog late, and each request's latency is
// measured from its *scheduled* time — a saturated server therefore shows
// up as exploding tail latency (and falling achieved RPS), not as a
// politely self-throttling client. Closed-loop harnesses hide exactly this.
//
// The package lives inside the repository's deterministic lint set
// (bannedcall): it never reads the wall clock directly — all timing flows
// through the injected Clock — and all randomness is explicitly seeded, so
// a report is a pure function of (config, server behavior, clock).
// cmd/sdfload injects the real clock and HTTP sender.
package load

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/hdr"
)

// Clock abstracts time for the pacing loop. cmd/sdfload injects the real
// clock; tests inject deterministic fakes. (The bannedcall analyzer keeps
// this package from calling time.Now itself.)
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// Class is the harness's response taxonomy. Shed responses (429/503 with
// Retry-After) are the admission layer doing its job and are NOT errors:
// below the knee the error count must be zero even when load shedding is
// active.
type Class int

const (
	ClassOK    Class = iota // 2xx
	ClassShed               // 429 queue_full / 503 shutting_down
	ClassError              // transport failure or any other status
)

// Sender executes one prepared request and scrapes the target's metrics.
// Implementations own HTTP specifics; the engine owns timing and counting.
type Sender interface {
	Do(op Op) Class
	Metrics() (MetricsSnapshot, error)
}

// StepSpec is one ramp step: hold TargetRPS for Hold.
type StepSpec struct {
	TargetRPS float64
	Hold      time.Duration
}

// Steps builds a linear ramp: count steps starting at start RPS, adding
// step RPS each time, each held for hold.
func Steps(start, step float64, count int, hold time.Duration) []StepSpec {
	out := make([]StepSpec, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, StepSpec{TargetRPS: start + float64(i)*step, Hold: hold})
	}
	return out
}

// Config wires one ramp run.
type Config struct {
	Label    string
	Seed     int64
	Clock    Clock
	Sender   Sender
	Workload *Workload
	// Workers bounds concurrent in-flight requests (default 64). The bound
	// exists to protect the *client* from descriptor exhaustion; keep it
	// far above target RPS x typical latency or the harness itself becomes
	// the bottleneck and the report measures the wrong system.
	Workers int
	SLO     SLO
	// OnStep, when set, observes each completed step (CLI progress).
	OnStep func(StepResult)
}

// Run executes the staged ramp and returns the report. The ramp stops
// after the first step that violates an SLO; that step is included in the
// report with its violations and the knee records the last clean target.
// Run fails only on misconfiguration — server misbehavior is data, not an
// error.
func Run(cfg Config, steps []StepSpec) (*Report, error) {
	if cfg.Clock == nil || cfg.Sender == nil || cfg.Workload == nil {
		return nil, fmt.Errorf("load: Config needs Clock, Sender, and Workload")
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("load: need at least one ramp step")
	}
	for _, st := range steps {
		if st.TargetRPS <= 0 || st.Hold <= 0 {
			return nil, fmt.Errorf("load: step %+v needs positive TargetRPS and Hold", st)
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 64
	}
	slo := cfg.SLO.withDefaults()
	rep := &Report{
		Version: ReportVersion,
		Label:   cfg.Label,
		Seed:    cfg.Seed,
		Workers: workers,
		Mix:     cfg.Workload.Mix(),
		SLO:     slo,
	}

	var opIndex int64
	before, scrapeErr := cfg.Sender.Metrics()
	for i, st := range steps {
		res := runStep(cfg.Clock, cfg.Sender, cfg.Workload, workers, st, &opIndex)
		if after, err := cfg.Sender.Metrics(); err == nil {
			if scrapeErr == nil {
				res.Metrics = deltaSnapshot(before, after)
			}
			before, scrapeErr = after, nil
		}
		res.Violations = evaluateSLO(slo, res)
		rep.Steps = append(rep.Steps, res)
		if cfg.OnStep != nil {
			cfg.OnStep(res)
		}
		if len(res.Violations) > 0 {
			knee := Knee{Saturated: true}
			if i > 0 {
				knee.RPS = steps[i-1].TargetRPS
			}
			knee.Reason = fmt.Sprintf("step at %.4g rps violated SLOs: %s",
				st.TargetRPS, strings.Join(res.Violations, "; "))
			rep.Knee = knee
			return rep, nil
		}
	}
	rep.Knee = Knee{
		RPS:       steps[len(steps)-1].TargetRPS,
		Saturated: false,
		Reason:    "completed every ramp step within SLOs",
	}
	return rep, nil
}

// job is one scheduled request of a step.
type job struct {
	idx   int64     // global op index into the workload sequence
	sched time.Time // open-loop scheduled send time
}

// workerAcc accumulates one worker's outcomes; workers never share state
// during a step, results merge afterwards (hdr.Histogram.Merge).
type workerAcc struct {
	hist             *hdr.Histogram
	ok, shed, errors int64
	byKind           map[string]int64
}

// runStep drives one fixed-schedule step: a pacer goroutine releases jobs
// at their scheduled times into a buffer deep enough to never block (the
// open-loop guarantee), workers drain it, and every latency is recorded
// against the scheduled time.
func runStep(clock Clock, sender Sender, wl *Workload, workers int, st StepSpec, opIndex *int64) StepResult {
	n := int64(st.TargetRPS*st.Hold.Seconds() + 0.5)
	if n < 1 {
		n = 1
	}
	interval := time.Duration(float64(time.Second) / st.TargetRPS)
	base := *opIndex
	*opIndex += n

	jobs := make(chan job, n) // full-depth buffer: the pacer never blocks on workers
	start := clock.Now()
	// The pacer terminates unconditionally: it sends exactly n jobs into a
	// buffer of depth n (never blocking — the open-loop guarantee) and exits.
	//lint:ignore ctxleak pacer sends n jobs into an n-deep buffer and exits; it cannot block or outlive the step
	go func() {
		for i := int64(0); i < n; i++ {
			sched := start.Add(time.Duration(i) * interval)
			if d := sched.Sub(clock.Now()); d > 0 {
				<-clock.After(d)
			}
			jobs <- job{idx: base + i, sched: sched}
		}
		close(jobs)
	}()

	accs := make([]*workerAcc, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		acc := &workerAcc{hist: hdr.New(), byKind: map[string]int64{}}
		accs[w] = acc
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				op := wl.Op(j.idx)
				class := sender.Do(op)
				acc.hist.Record(int64(clock.Now().Sub(j.sched)))
				acc.byKind[op.Kind.String()]++
				switch class {
				case ClassOK:
					acc.ok++
				case ClassShed:
					acc.shed++
				case ClassError:
					acc.errors++
				default:
					acc.errors++ // unknown classes count against the SLO
				}
			}
		}()
	}
	wg.Wait()
	elapsed := clock.Now().Sub(start)

	res := StepResult{
		TargetRPS: st.TargetRPS,
		HoldNS:    int64(st.Hold),
		ElapsedNS: int64(elapsed),
		Sent:      n,
		ByKind:    map[string]int64{},
	}
	merged := hdr.New()
	for _, acc := range accs {
		merged.Merge(acc.hist)
		res.OK += acc.ok
		res.Shed += acc.shed
		res.Errors += acc.errors
		for k, v := range acc.byKind {
			res.ByKind[k] += v
		}
	}
	res.Latency = merged.Snapshot()
	if elapsed > 0 {
		res.AchievedRPS = float64(n) / elapsed.Seconds()
	} else {
		// A non-advancing (test) clock: the step took no measurable time,
		// so offered equals achieved by definition.
		res.AchievedRPS = st.TargetRPS
	}
	return res
}
