package load

import (
	"fmt"
	"math/rand"
	"sync"
)

// TargetReport is one cluster peer's slice of a multi-target run: the op
// classes it served, keyed by the target's base URL. Reports carry these so a
// cluster ramp shows *which* node shed or failed, not just that someone did.
type TargetReport struct {
	Target string `json:"target"`
	Sent   int64  `json:"sent"`
	OK     int64  `json:"ok"`
	Shed   int64  `json:"shed"`
	Errors int64  `json:"errors"`
}

// MultiHTTPSender spreads the deterministic workload over several sdfd
// cluster peers. Assignment is a pure function of (seed, op index): a
// seed-shuffled permutation of the targets cycled by op.Index, so the same
// (workload seed, target list, sender seed) triple replays the identical
// traffic split on every run — reports stay comparable across machines.
//
// Do and Metrics are safe for concurrent use; the per-target tallies are the
// only mutable state and sit behind a mutex.
type MultiHTTPSender struct {
	senders []*HTTPSender
	order   []int // seed-shuffled target permutation, indexed by op.Index % n

	mu     sync.Mutex
	counts []TargetReport // parallel to senders
}

// NewMultiHTTPSender builds a sender over the given base URLs (e.g.
// "http://127.0.0.1:18431"). The client is shared across targets — one pool,
// like a real fleet fronting a cluster.
func NewMultiHTTPSender(baseURLs []string, seed int64, mk func(baseURL string) *HTTPSender) (*MultiHTTPSender, error) {
	if len(baseURLs) == 0 {
		return nil, fmt.Errorf("load: multi-target sender needs at least one base URL")
	}
	m := &MultiHTTPSender{
		order:  rand.New(rand.NewSource(seed)).Perm(len(baseURLs)),
		counts: make([]TargetReport, len(baseURLs)),
	}
	for i, u := range baseURLs {
		m.senders = append(m.senders, mk(u))
		m.counts[i].Target = u
	}
	return m, nil
}

// target resolves the op's deterministic peer assignment.
func (m *MultiHTTPSender) target(op Op) int {
	i := op.Index % int64(len(m.order))
	if i < 0 {
		i += int64(len(m.order))
	}
	return m.order[i]
}

// Do routes the op to its assigned peer and tallies the outcome against it.
func (m *MultiHTTPSender) Do(op Op) Class {
	t := m.target(op)
	class := m.senders[t].Do(op)
	m.mu.Lock()
	c := &m.counts[t]
	c.Sent++
	switch class {
	case ClassOK:
		c.OK++
	case ClassShed:
		c.Shed++
	case ClassError:
		c.Errors++
	default:
		panic("load: unknown class")
	}
	m.mu.Unlock()
	return class
}

// Metrics scrapes every target and sums the snapshots: the ramp controller's
// per-step deltas then describe the cluster as one logical server. Counters
// sum exactly; QueueDepth sums too (total queued work across the fleet). A
// single unscrapeable peer fails the whole scrape — mid-run that is recorded
// as a nil step delta, not an op error.
func (m *MultiHTTPSender) Metrics() (MetricsSnapshot, error) {
	var sum MetricsSnapshot
	for _, s := range m.senders {
		snap, err := s.Metrics()
		if err != nil {
			return MetricsSnapshot{}, fmt.Errorf("target %s: %w", s.BaseURL, err)
		}
		sum.CacheHits += snap.CacheHits
		sum.CacheMisses += snap.CacheMisses
		sum.PipelineRuns += snap.PipelineRuns
		sum.GridRuns += snap.GridRuns
		sum.NodestoreLoads += snap.NodestoreLoads
		sum.LoadShed += snap.LoadShed
		sum.QueueDepth += snap.QueueDepth
	}
	return sum, nil
}

// Targets snapshots the per-target tallies, in base-URL argument order.
func (m *MultiHTTPSender) Targets() []TargetReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TargetReport, len(m.counts))
	copy(out, m.counts)
	return out
}
