package load

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// HTTPSender executes ops against a live sdfd over HTTP. The injected
// client owns transport concerns (timeouts, connection pooling); the
// harness deliberately reuses connections like a real multi-tenant client
// fleet would after warmup.
type HTTPSender struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// Client must be non-nil; give it a Timeout comfortably above the SLO
	// p99 so the transport never classifies for us.
	Client *http.Client
}

// Do posts one op and classifies the response. The body is always drained
// so connections return to the pool.
func (s *HTTPSender) Do(op Op) Class {
	resp, err := s.Client.Post(s.BaseURL+op.Path, "application/json", bytes.NewReader(op.Body))
	if err != nil {
		return ClassError
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return ClassifyStatus(resp.StatusCode)
}

// ClassifyStatus maps an HTTP status onto the harness taxonomy: 2xx ok;
// 429 (queue_full) and 503 (shutting_down) are admission-control sheds —
// the server protecting itself is expected behavior under a saturation
// probe, not an error; everything else is an error the SLO gate counts.
func ClassifyStatus(status int) Class {
	switch {
	case status >= 200 && status < 300:
		return ClassOK
	case status == http.StatusTooManyRequests, status == http.StatusServiceUnavailable:
		return ClassShed
	default:
		return ClassError
	}
}

// Metrics scrapes BaseURL/metrics into a snapshot.
func (s *HTTPSender) Metrics() (MetricsSnapshot, error) {
	resp, err := s.Client.Get(s.BaseURL + "/metrics")
	if err != nil {
		return MetricsSnapshot{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return MetricsSnapshot{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return MetricsSnapshot{}, fmt.Errorf("load: scraping /metrics: status %d", resp.StatusCode)
	}
	return SnapshotFromFamilies(ParsePrometheus(string(body))), nil
}
