package load

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

// realClock lives in a test file on purpose: the load package itself is in
// the bannedcall lint set and may not touch the wall clock; tests and
// cmd/sdfload inject it.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// TestLiveRamp drives a real in-process sdfd through a short two-step ramp
// over HTTP and checks the harness invariants end to end: the report passes
// SelfCheck, the scraped metrics deltas move, and a healthy unsaturated
// server produces zero unclassified errors.
func TestLiveRamp(t *testing.T) {
	if testing.Short() {
		t.Skip("live ramp paces against the real clock")
	}
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	wl, err := NewWorkload(11, Mix{Cold: 1, Warm: 6, Edit: 2, Grid: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	sender := &HTTPSender{BaseURL: ts.URL, Client: &http.Client{Timeout: 30 * time.Second}}
	var observed int
	rep, err := Run(Config{
		Label:    "live-test",
		Seed:     11,
		Clock:    realClock{},
		Sender:   sender,
		Workload: wl,
		Workers:  32,
		// Loose SLOs: this test verifies harness correctness, not this
		// machine's speed. 30 rps of mostly warm traffic is far below any
		// plausible knee, but CI boxes stall unpredictably.
		SLO:    SLO{MinAchievedFrac: 0.5},
		OnStep: func(StepResult) { observed++ },
	}, Steps(30, 10, 2, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if errs := rep.SelfCheck(); len(errs) != 0 {
		t.Fatalf("selfcheck against a live server: %v", errs)
	}
	if observed != len(rep.Steps) {
		t.Errorf("OnStep fired %d times for %d steps", observed, len(rep.Steps))
	}
	if len(rep.Steps) == 0 {
		t.Fatal("no steps recorded")
	}
	first := rep.Steps[0]
	if first.Errors != 0 {
		t.Errorf("unclassified errors against a healthy server: %+v", first)
	}
	if first.Metrics == nil {
		t.Fatal("no metrics delta for the first step")
	}
	if first.Metrics.PipelineRuns == 0 {
		t.Error("pipeline_runs delta is zero across a step that compiled graphs")
	}
	// Warm ops outnumber the six warm systems within one step, so the
	// compile cache must have been hit.
	if first.ByKind["warm"] > 6 && first.Metrics.CacheHits == 0 {
		t.Errorf("%d warm requests over 6 systems produced zero cache hits", first.ByKind["warm"])
	}
	if first.Latency.Max <= 0 {
		t.Error("latency histogram recorded nothing")
	}
}
