package load

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/randsdf"
	"repro/internal/regularity"
	"repro/internal/sdf"
	"repro/internal/sdfio"
	"repro/internal/service"
	"repro/internal/systems"
)

// OpKind classifies one request of the workload mix.
type OpKind int

const (
	// OpCold compiles a never-before-seen random graph: a guaranteed cache
	// miss that runs the full pipeline.
	OpCold OpKind = iota
	// OpWarm re-compiles one of the six example systems: after the first
	// round these are cache hits.
	OpWarm
	// OpEdit compiles a single-actor-rename edit of a fixed base graph,
	// cycling through a small set of variants: against a daemon with a
	// pass-node store these load every unaffected stage instead of
	// executing it, and without a store they exercise the pipeline the way
	// interactive editing does.
	OpEdit
	// OpGrid posts a /v1/grid burst: one graph across many option sets in
	// one planned run.
	OpGrid
)

// String returns the report spelling of the kind.
func (k OpKind) String() string {
	switch k {
	case OpCold:
		return "cold"
	case OpWarm:
		return "warm"
	case OpEdit:
		return "edit"
	case OpGrid:
		return "grid"
	default:
		return fmt.Sprintf("kind%d", int(k))
	}
}

// Op is one fully prepared request: the workload model builds bodies ahead
// of the send so request construction never contaminates the latency path
// more than necessary (warm/edit/grid bodies are prebuilt; cold bodies are
// generated per index, deterministically).
type Op struct {
	Kind OpKind
	// Index is the op's position in the deterministic sequence. Multi-target
	// senders key their peer assignment off it so the same workload hits the
	// same peers on every run.
	Index int64
	Path  string // URL path, e.g. "/v1/compile"
	Body  []byte // JSON request body
}

// Mix weights the four operation kinds. Zero-valued kinds never occur; at
// least one weight must be positive.
type Mix struct {
	Cold int `json:"cold"`
	Warm int `json:"warm"`
	Edit int `json:"edit"`
	Grid int `json:"grid"`
}

func (m Mix) total() int { return m.Cold + m.Warm + m.Edit + m.Grid }

// Workload is a deterministic request generator: the same (seed, mix,
// gridEntries) triple yields the identical op sequence on every run and
// every machine, so two load reports with the same label and config are
// comparing the same traffic. Safe for concurrent Op calls.
type Workload struct {
	seed    int64
	mix     Mix
	pattern []OpKind // weighted, seed-shuffled kind cycle
	warm    [][]byte
	edits   [][]byte
	grid    []byte
}

// editVariants is how many distinct single-actor-rename edits the edit op
// cycles through. Small enough that a store-backed daemon converges to warm
// loads quickly, large enough to keep the store path honest.
const editVariants = 24

// NewWorkload builds the deterministic workload model. gridEntries bounds
// the option sets per /v1/grid burst (<=0 selects 6).
func NewWorkload(seed int64, mix Mix, gridEntries int) (*Workload, error) {
	if mix.Cold < 0 || mix.Warm < 0 || mix.Edit < 0 || mix.Grid < 0 || mix.total() == 0 {
		return nil, fmt.Errorf("load: mix needs non-negative weights with a positive total, got %+v", mix)
	}
	if gridEntries <= 0 {
		gridEntries = 6
	}
	w := &Workload{seed: seed, mix: mix}

	// The kind cycle: exact weight proportions, seed-shuffled interleaving.
	for _, kw := range []struct {
		kind OpKind
		n    int
	}{{OpCold, mix.Cold}, {OpWarm, mix.Warm}, {OpEdit, mix.Edit}, {OpGrid, mix.Grid}} {
		for i := 0; i < kw.n; i++ {
			w.pattern = append(w.pattern, kw.kind)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(w.pattern), func(i, j int) {
		w.pattern[i], w.pattern[j] = w.pattern[j], w.pattern[i]
	})

	// Warm pool: the six example systems, mirroring the repository's
	// example programs (and sdfbench's grid section).
	for _, g := range warmSystems() {
		body, err := compileBody(g)
		if err != nil {
			return nil, fmt.Errorf("load: warm corpus: %w", err)
		}
		w.warm = append(w.warm, body)
	}

	// Edit pool: one 60-actor base graph, each variant renaming one actor.
	// Rates, delays, and topology stay fixed, which is exactly the shape
	// the pass-node store reuses across requests.
	base := randsdf.Graph(rand.New(rand.NewSource(seed+1)), randsdf.Config{Actors: 60})
	for v := 0; v < editVariants; v++ {
		body, err := compileBody(renameActor(base, v%len(base.Actors()), fmt.Sprintf("edit%d", v)))
		if err != nil {
			return nil, fmt.Errorf("load: edit corpus: %w", err)
		}
		w.edits = append(w.edits, body)
	}

	// Grid burst: the satellite receiver across the (strategy x looping)
	// grid, one allocator per entry, capped at gridEntries.
	gridGraph, err := sdfio.CanonicalString(systems.SatelliteReceiver())
	if err != nil {
		return nil, fmt.Errorf("load: grid corpus: %w", err)
	}
	var entries []service.CompileOptions
	for _, strat := range []string{"rpmc", "apgan"} {
		for _, la := range []string{"sdppo", "dppo", "chain", "flat"} {
			entries = append(entries, service.CompileOptions{
				Strategy: strat, Looping: la, Allocators: []string{"ffdur"},
			})
		}
	}
	if len(entries) > gridEntries {
		entries = entries[:gridEntries]
	}
	w.grid, err = json.Marshal(service.GridRequest{Graph: gridGraph, Entries: entries})
	if err != nil {
		return nil, err
	}
	return w, nil
}

// Mix returns the configured mix weights.
func (w *Workload) Mix() Mix { return w.mix }

// Op returns the i-th request of the deterministic sequence. Concurrent
// calls are safe: all shared state is immutable after NewWorkload.
func (w *Workload) Op(i int64) Op {
	kind := w.pattern[int(i%int64(len(w.pattern)))]
	switch kind {
	case OpWarm:
		return Op{Kind: OpWarm, Index: i, Path: "/v1/compile", Body: w.warm[int(i%int64(len(w.warm)))]}
	case OpEdit:
		return Op{Kind: OpEdit, Index: i, Path: "/v1/compile", Body: w.edits[int(i%int64(len(w.edits)))]}
	case OpGrid:
		return Op{Kind: OpGrid, Index: i, Path: "/v1/grid", Body: w.grid}
	case OpCold:
		return Op{Kind: OpCold, Index: i, Path: "/v1/compile", Body: w.coldBody(i)}
	default:
		panic(fmt.Sprintf("load: unknown op kind %d in pattern", int(kind)))
	}
}

// coldBody generates the i-th cold graph: a fresh consistent random graph
// whose seed is a function of (workload seed, i) only.
func (w *Workload) coldBody(i int64) []byte {
	const golden = int64(-0x61C8864680B583EB) // 2^64 / phi, as a signed constant
	rng := rand.New(rand.NewSource(w.seed ^ (golden * (i + 1))))
	g := randsdf.Graph(rng, randsdf.Config{Actors: 16 + int(i%17)})
	body, err := compileBody(g)
	if err != nil {
		// randsdf graphs are consistent by construction and canonicalize
		// by construction; fail loudly rather than send garbage.
		panic(fmt.Sprintf("load: cold graph %d: %v", i, err))
	}
	return body
}

// compileBody renders a graph as a /v1/compile request body with default
// options.
func compileBody(g *sdf.Graph) ([]byte, error) {
	text, err := sdfio.CanonicalString(g)
	if err != nil {
		return nil, err
	}
	return json.Marshal(service.CompileRequest{Graph: text})
}

// renameActor clones g with actor index idx renamed to prefix_oldname.
func renameActor(g *sdf.Graph, idx int, prefix string) *sdf.Graph {
	out := sdf.New(g.Name)
	for i, a := range g.Actors() {
		name := a.Name
		if i == idx {
			name = prefix + "_" + name
		}
		out.AddActor(name)
	}
	for _, e := range g.Edges() {
		id := out.AddEdge(e.Src, e.Dst, e.Prod, e.Cons, e.Delay)
		out.SetWords(id, e.Words)
	}
	return out
}

// warmSystems mirrors the repository's six example programs.
func warmSystems() []*sdf.Graph {
	quick := sdf.New("quickstart")
	a := quick.AddActor("A")
	b := quick.AddActor("B")
	c := quick.AddActor("C")
	quick.AddEdge(a, b, 3, 2, 0)
	quick.AddEdge(b, c, 5, 7, 0)
	return []*sdf.Graph{
		quick,
		regularity.FIR(8),
		systems.OneSidedFilterbank(4, systems.Ratio23),
		systems.SatelliteReceiver(),
		systems.Homogeneous(4, 4),
		systems.CDDAT(),
	}
}
