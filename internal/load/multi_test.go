package load

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/hdr"
)

// stubTarget is one fake sdfd peer: a fixed op status plus a /metrics body.
func stubTarget(t *testing.T, status int, cacheHits int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			fmt.Fprintf(w, "sdfd_cache_hits_total %d\n", cacheHits)
			return
		}
		w.WriteHeader(status)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func newMulti(t *testing.T, seed int64, urls ...string) *MultiHTTPSender {
	t.Helper()
	m, err := NewMultiHTTPSender(urls, seed, func(u string) *HTTPSender {
		return &HTTPSender{BaseURL: u, Client: &http.Client{Timeout: 5 * time.Second}}
	})
	if err != nil {
		t.Fatalf("NewMultiHTTPSender: %v", err)
	}
	return m
}

// Target assignment must be a pure function of (seed, op index): two senders
// with the same seed agree on every op, and a different seed is allowed to
// (and for this pair does) produce a different permutation.
func TestMultiSenderDeterministicAssignment(t *testing.T) {
	urls := []string{"http://a", "http://b", "http://c"}
	m1 := newMulti(t, 7, urls...)
	m2 := newMulti(t, 7, urls...)
	counts := make([]int, len(urls))
	for i := int64(0); i < 99; i++ {
		op := Op{Index: i}
		a, b := m1.target(op), m2.target(op)
		if a != b {
			t.Fatalf("op %d: same seed assigned targets %d and %d", i, a, b)
		}
		counts[a]++
	}
	for i, n := range counts {
		if n != 33 {
			t.Errorf("target %d served %d of 99 ops, want exactly 33 (cycled permutation)", i, n)
		}
	}
}

// Do must tally each op against its assigned peer, and Metrics must sum the
// per-peer scrapes into one cluster-wide snapshot.
func TestMultiSenderTalliesAndMetrics(t *testing.T) {
	ok := stubTarget(t, http.StatusOK, 2)
	shed := stubTarget(t, http.StatusTooManyRequests, 3)
	m := newMulti(t, 1, ok.URL, shed.URL)

	for i := int64(0); i < 10; i++ {
		m.Do(Op{Index: i, Path: "/v1/compile", Body: []byte("{}")})
	}
	var gotOK, gotShed TargetReport
	for _, tr := range m.Targets() {
		switch tr.Target {
		case ok.URL:
			gotOK = tr
		case shed.URL:
			gotShed = tr
		default:
			t.Fatalf("unexpected target %q", tr.Target)
		}
	}
	if gotOK.Sent != 5 || gotOK.OK != 5 || gotOK.Shed != 0 || gotOK.Errors != 0 {
		t.Errorf("ok peer tallies = %+v, want 5 sent all ok", gotOK)
	}
	if gotShed.Sent != 5 || gotShed.Shed != 5 || gotShed.OK != 0 || gotShed.Errors != 0 {
		t.Errorf("shed peer tallies = %+v, want 5 sent all shed", gotShed)
	}

	snap, err := m.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if snap.CacheHits != 5 {
		t.Errorf("summed cache hits = %v, want 2+3=5", snap.CacheHits)
	}
}

// A dead peer fails the whole scrape, naming the peer.
func TestMultiSenderMetricsDeadPeer(t *testing.T) {
	ok := stubTarget(t, http.StatusOK, 1)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	m := newMulti(t, 1, ok.URL, dead.URL)
	if _, err := m.Metrics(); err == nil {
		t.Fatal("Metrics succeeded with a dead peer")
	} else if !strings.Contains(err.Error(), dead.URL) {
		t.Errorf("error %q does not name the dead peer %s", err, dead.URL)
	}
}

// SelfCheck must cross-check the per-target tallies against the step totals.
func TestReportTargetsSelfCheck(t *testing.T) {
	rep := func(targets []TargetReport) *Report {
		return &Report{
			Version: ReportVersion,
			Steps: []StepResult{{
				TargetRPS: 10, AchievedRPS: 10, Sent: 6, OK: 6,
				Latency: hdr.Snapshot{Count: 6},
				ByKind:  map[string]int64{"warm": 6},
			}},
			Targets: targets,
		}
	}
	good := rep([]TargetReport{
		{Target: "http://a", Sent: 4, OK: 3, Shed: 1},
		{Target: "http://b", Sent: 2, OK: 2},
	})
	if errs := good.SelfCheck(); len(errs) != 0 {
		t.Fatalf("consistent targets flagged: %v", errs)
	}
	short := rep([]TargetReport{{Target: "http://a", Sent: 4, OK: 4}})
	if errs := short.SelfCheck(); len(errs) == 0 {
		t.Error("targets summing to 4 of 6 sent passed SelfCheck")
	}
	unbalanced := rep([]TargetReport{
		{Target: "http://a", Sent: 4, OK: 2, Shed: 1}, // 2+1 != 4
		{Target: "http://b", Sent: 2, OK: 2},
	})
	if errs := unbalanced.SelfCheck(); len(errs) == 0 {
		t.Error("target with ok+shed+errors != sent passed SelfCheck")
	}
}
