package load

import (
	"fmt"
	"time"

	"repro/internal/hdr"
)

// ReportVersion identifies the LOAD_*.json schema. sdfbench -compare sniffs
// this field to tell load reports from bench trajectory files; bump it on
// incompatible schema changes so old baselines fail loudly instead of
// comparing garbage.
const ReportVersion = "load/v1"

// Report is the versioned result of one staged ramp: the LOAD_<label>.json
// schema (documented in EXPERIMENTS.md).
type Report struct {
	Version string `json:"version"`
	Label   string `json:"label"`
	// Date is stamped by the caller (cmd/sdfload) — the engine itself only
	// sees the injected clock and leaves provenance to the binary.
	Date    string       `json:"date,omitempty"`
	Seed    int64        `json:"seed"`
	Workers int          `json:"workers"`
	Mix     Mix          `json:"mix"`
	SLO     SLO          `json:"slo"`
	Steps   []StepResult `json:"steps"`
	Knee    Knee         `json:"knee"`
	// Targets carries per-peer tallies when the run was spread over a cluster
	// (sdfload -addrs); empty for single-target runs. The caller stamps it
	// from MultiHTTPSender.Targets after the ramp.
	Targets []TargetReport `json:"targets,omitempty"`
}

// StepResult is one held RPS step of the ramp.
type StepResult struct {
	TargetRPS float64 `json:"target_rps"`
	HoldNS    int64   `json:"hold_ns"`
	// ElapsedNS is the measured wall time of the step; AchievedRPS is
	// completed requests over it.
	ElapsedNS   int64   `json:"elapsed_ns"`
	Sent        int64   `json:"sent"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Errors      int64   `json:"errors"`
	AchievedRPS float64 `json:"achieved_rps"`
	// Latency holds open-loop latency percentiles in nanoseconds, measured
	// from each request's *scheduled* send time so queueing delay under
	// saturation is charged to the server, not silently absorbed
	// (coordinated-omission safe).
	Latency hdr.Snapshot     `json:"latency_ns"`
	ByKind  map[string]int64 `json:"requests_by_kind"`
	// Metrics carries /metrics counter deltas across the step (nil when the
	// scrape failed).
	Metrics *MetricsDelta `json:"metrics,omitempty"`
	// Violations lists the SLOs this step broke; the ramp stops after the
	// first violating step.
	Violations []string `json:"violations,omitempty"`
}

// Knee is the saturation verdict: the highest target RPS the server
// sustained within SLOs.
type Knee struct {
	RPS       float64 `json:"rps"`
	Saturated bool    `json:"saturated"`
	Reason    string  `json:"reason"`
}

// SLO configures the saturation criteria evaluated after every step.
type SLO struct {
	// MaxP99 fails a step whose open-loop p99 exceeds it (0 disables).
	MaxP99 time.Duration `json:"max_p99_ns"`
	// MinAchievedFrac fails a step whose achieved RPS falls below this
	// fraction of the offered (target) RPS. Default 0.9.
	MinAchievedFrac float64 `json:"min_achieved_frac"`
	// MaxErrorFrac bounds the tolerated fraction of unclassified errors
	// per step. Default 0: any error below the knee is a finding.
	MaxErrorFrac float64 `json:"max_error_frac"`
}

func (s SLO) withDefaults() SLO {
	if s.MinAchievedFrac <= 0 {
		s.MinAchievedFrac = 0.9
	}
	return s
}

// evaluateSLO returns the violations of one completed step. Pure: the ramp
// controller's saturation decision is a function of the step result alone.
func evaluateSLO(slo SLO, res StepResult) []string {
	var v []string
	if res.Sent > 0 && float64(res.Errors)/float64(res.Sent) > slo.MaxErrorFrac {
		v = append(v, fmt.Sprintf("%d of %d requests failed outside the shed/ok classes", res.Errors, res.Sent))
	}
	if slo.MaxP99 > 0 && res.Latency.P99 > int64(slo.MaxP99) {
		v = append(v, fmt.Sprintf("p99 %v exceeds the %v SLO",
			time.Duration(res.Latency.P99), slo.MaxP99))
	}
	if min := slo.MinAchievedFrac * res.TargetRPS; res.AchievedRPS < min {
		v = append(v, fmt.Sprintf("achieved %.1f rps below %.1f (%.0f%% of offered %.1f)",
			res.AchievedRPS, min, slo.MinAchievedFrac*100, res.TargetRPS))
	}
	return v
}

// SelfCheck verifies the harness's own invariants over a finished report —
// properties that hold for ANY correct open-loop run, regardless of server
// speed. make load-short gates CI on them:
//
//   - percentiles within each step are monotone non-decreasing
//     (p50 <= p90 <= p99 <= p999 <= max),
//   - every sent request is accounted for exactly once
//     (sent == ok + shed + errors == histogram count == per-kind sum),
//   - below the knee (no violations) there are zero unclassified errors
//     and achieved RPS tracks offered RPS within the SLO fraction,
//   - only the final step may carry violations (the ramp stops at the knee),
//   - when per-target tallies are present, each target's classes sum to its
//     sent count and the targets together account for every sent request.
func (r *Report) SelfCheck() []error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if r.Version != ReportVersion {
		fail("report version %q, want %q", r.Version, ReportVersion)
	}
	slo := r.SLO.withDefaults()
	for i, st := range r.Steps {
		label := fmt.Sprintf("step %d (%.4g rps)", i, st.TargetRPS)
		l := st.Latency
		if l.Count > 0 && !(l.P50 <= l.P90 && l.P90 <= l.P99 && l.P99 <= l.P999 && l.P999 <= l.Max) {
			fail("%s: percentiles not monotone: p50=%d p90=%d p99=%d p999=%d max=%d",
				label, l.P50, l.P90, l.P99, l.P999, l.Max)
		}
		if st.Sent != st.OK+st.Shed+st.Errors {
			fail("%s: sent %d != ok %d + shed %d + errors %d", label, st.Sent, st.OK, st.Shed, st.Errors)
		}
		if l.Count != st.Sent {
			fail("%s: histogram count %d != sent %d", label, l.Count, st.Sent)
		}
		var byKind int64
		for _, n := range st.ByKind {
			byKind += n
		}
		if byKind != st.Sent {
			fail("%s: per-kind counts sum to %d, sent %d", label, byKind, st.Sent)
		}
		if len(st.Violations) == 0 {
			if st.Errors > 0 {
				fail("%s: %d unclassified errors below the knee", label, st.Errors)
			}
			if min := slo.MinAchievedFrac * st.TargetRPS; st.AchievedRPS < min {
				fail("%s: achieved %.1f rps below %.1f with no recorded violation",
					label, st.AchievedRPS, min)
			}
		} else if i != len(r.Steps)-1 {
			fail("%s: violations recorded on a non-final step (the ramp must stop at the knee)", label)
		}
	}
	if len(r.Targets) > 0 {
		var totalSent, byTarget int64
		for _, st := range r.Steps {
			totalSent += st.Sent
		}
		for _, t := range r.Targets {
			if t.Sent != t.OK+t.Shed+t.Errors {
				fail("target %s: sent %d != ok %d + shed %d + errors %d",
					t.Target, t.Sent, t.OK, t.Shed, t.Errors)
			}
			byTarget += t.Sent
		}
		if byTarget != totalSent {
			fail("per-target counts sum to %d, steps sent %d", byTarget, totalSent)
		}
	}
	return errs
}
