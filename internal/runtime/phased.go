package runtime

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/sdf"
)

// PhasedEngine executes a partitioned compilation result on P goroutines:
// each period runs the phased schedule with every worker firing its blocks
// concurrently and a cyclic barrier between phases. Buffers live in the
// segmented memory image (per-worker private segments plus one shared
// segment), so all cross-worker traffic is write-then-barrier-then-read and
// the run is race-free without any per-buffer locking.
//
// Because SDF semantics are deterministic, a PhasedEngine's observable
// behaviour — every firing's consumed and produced token values, and the
// queue contents reported by TokensOn — is bit-identical to the sequential
// Engine on the same graph, provided each supplied Fire is a pure function
// of its inputs. Fires are invoked from worker goroutines (one worker per
// actor, fixed for the whole run), so a Fire closure may keep per-actor
// state but must not share mutable state across actors.
type PhasedEngine struct {
	res   *core.Result
	fires map[sdf.ActorID]Fire
	mem   []float64
	edges []edgeState
	bar   *par.Barrier
}

// NewPhased builds a phased engine for a compilation result that carries a
// partitioned schedule and segmented allocation (compiled with
// Options.Partitions >= 2). Like New it supports scalar tokens only.
func NewPhased(res *core.Result, fires map[sdf.ActorID]Fire) (*PhasedEngine, error) {
	if res.Partition == nil || res.Segmented == nil {
		return nil, fmt.Errorf("runtime: result has no partitioned schedule (compile with Partitions >= 2)")
	}
	g := res.Graph
	e := &PhasedEngine{
		res:   res,
		fires: fires,
		mem:   make([]float64, res.Segmented.Total),
		edges: make([]edgeState, g.NumEdges()),
		bar:   par.NewBarrier(res.Partition.P),
	}
	for _, ed := range g.Edges() {
		if ed.Words > 1 {
			return nil, fmt.Errorf("runtime: edge %d uses %d-word tokens; the float64 engine supports scalar tokens only",
				ed.ID, ed.Words)
		}
		st := &e.edges[ed.ID]
		st.offset = res.Segmented.Offset(ed.ID)
		st.size = res.Segmented.Size(ed.ID)
		st.count = ed.Delay
		// Initial tokens are zeros, occupying the first del cells.
		st.wr = ed.Delay
	}
	return e, nil
}

// Mem exposes the segmented memory image (for inspection; do not resize).
func (e *PhasedEngine) Mem() []float64 { return e.mem }

// TokensOn returns the tokens currently queued on an edge, oldest first.
// Call it only between periods (RunPeriod joins its workers before
// returning, so the image is quiescent then).
func (e *PhasedEngine) TokensOn(edge sdf.EdgeID) []float64 {
	st := &e.edges[edge]
	out := make([]float64, st.count)
	for i := int64(0); i < st.count; i++ {
		out[i] = e.mem[st.offset+(st.rd+i)%st.size]
	}
	return out
}

// Push appends tokens to an edge's queue (useful to seed non-zero initial
// token values before the first period).
func (e *PhasedEngine) Push(edge sdf.EdgeID, values ...float64) error {
	st := &e.edges[edge]
	if st.count+int64(len(values)) > st.size {
		return fmt.Errorf("runtime: pushing %d tokens overflows edge %d (count %d, size %d)",
			len(values), edge, st.count, st.size)
	}
	for _, v := range values {
		e.mem[st.offset+st.wr%st.size] = v
		st.wr++
		st.count++
	}
	return nil
}

// RunPeriod executes one complete schedule period on P worker goroutines.
// Workers are spawned and joined per period; a worker that fails stops
// firing but keeps arriving at every barrier so the others complete
// deterministically, and the lowest-indexed worker's error is returned.
func (e *PhasedEngine) RunPeriod() error {
	part := e.res.Partition
	g := e.res.Graph
	errs := make([]error, part.P)
	var wg sync.WaitGroup
	for w := 0; w < part.P; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ph := 0; ph < part.NumPhases; ph++ {
				if errs[w] == nil {
					errs[w] = e.runPhase(g, ph, w)
				}
				e.bar.Await()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (e *PhasedEngine) runPhase(g *sdf.Graph, ph, w int) error {
	for _, blk := range e.res.Partition.Phases[ph].Workers[w] {
		for k := int64(0); k < blk.Count; k++ {
			if err := fireActor(g, e.mem, e.edges, e.fires, blk.Actor); err != nil {
				return fmt.Errorf("runtime: phase %d worker %d firing %s: %w",
					ph, w, g.Actor(blk.Actor).Name, err)
			}
		}
	}
	return nil
}
