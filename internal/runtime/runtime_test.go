package runtime

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/regularity"
	"repro/internal/sdf"
)

func compile(t *testing.T, g *sdf.Graph) *core.Result {
	t.Helper()
	res, err := core.CompileGeneral(g, core.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChainArithmetic drives a 1->2->(3:1) chain with explicit functions and
// checks every produced value.
func TestChainArithmetic(t *testing.T) {
	g := sdf.New("arith")
	src := g.AddActor("src")
	dbl := g.AddActor("dbl")
	sum := g.AddActor("sum")
	e0 := g.AddEdge(src, dbl, 2, 1, 0) // src emits 2 per firing
	e1 := g.AddEdge(dbl, sum, 1, 3, 0) // sum folds 3
	res := compile(t, g)
	q := res.Repetitions
	if q[src] != 3 || q[dbl] != 6 || q[sum] != 2 {
		t.Fatalf("q = %v", q)
	}
	n := 0.0
	eng, err := New(res, map[sdf.ActorID]Fire{
		src: func([][]float64) [][]float64 {
			n += 2
			return [][]float64{{n - 1, n}} // 1,2 then 3,4 then 5,6
		},
		dbl: func(in [][]float64) [][]float64 {
			return [][]float64{{2 * in[0][0]}}
		},
		sum: func(in [][]float64) [][]float64 {
			return nil // sink: no outputs
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Track what sum consumes by wrapping: easier to inspect edge e1 before
	// the sink drains... instead make sum record.
	var seen []float64
	eng.fires[sum] = func(in [][]float64) [][]float64 {
		seen = append(seen, in[0]...)
		return nil
	}
	if err := eng.RunPeriod(); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6, 8, 10, 12}
	if len(seen) != len(want) {
		t.Fatalf("sink saw %v", seen)
	}
	for i, w := range want {
		if seen[i] != w {
			t.Errorf("token %d = %v, want %v", i, seen[i], w)
		}
	}
	_ = e0
	_ = e1
}

// TestFIRWeightedSum executes the fine-grained Fig. 28 FIR on real samples:
// with no tap delays the structure computes y[n] = x[n] * sum(h).
func TestFIRWeightedSum(t *testing.T) {
	const taps = 5
	h := []float64{0.5, -1, 2, 0.25, 3}
	g := regularity.FIR(taps)
	res := compile(t, g)

	sample := 0.0
	fires := map[sdf.ActorID]Fire{}
	x := g.MustActor("x")
	fires[x] = func([][]float64) [][]float64 {
		sample++
		out := make([][]float64, len(g.Out(x)))
		for i := range out {
			out[i] = []float64{sample}
		}
		return out
	}
	for i := 0; i < taps; i++ {
		hi := h[i]
		gi := g.MustActor(gName(i))
		fires[gi] = func(in [][]float64) [][]float64 {
			out := make([][]float64, len(g.Out(gi)))
			for k := range out {
				out[k] = []float64{hi * in[0][0]}
			}
			return out
		}
	}
	var got []float64
	y := g.MustActor("y")
	fires[y] = func(in [][]float64) [][]float64 {
		got = append(got, in[0][0])
		return nil
	}
	eng, err := New(res, fires)
	if err != nil {
		t.Fatal(err)
	}
	var hsum float64
	for _, v := range h {
		hsum += v
	}
	for p := 0; p < 4; p++ {
		if err := eng.RunPeriod(); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 4 {
		t.Fatalf("y saw %d samples, want 4", len(got))
	}
	for i, v := range got {
		want := float64(i+1) * hsum
		if math.Abs(v-want) > 1e-9 {
			t.Errorf("y[%d] = %v, want %v", i, v, want)
		}
	}
}

func gName(i int) string {
	return string(rune('G')) + itoa(i)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestAccumulatorFeedback runs an IIR accumulator y[n] = x[n] + y[n-1] built
// from a feedback loop, seeding the delay token with Push.
func TestAccumulatorFeedback(t *testing.T) {
	g := sdf.New("acc")
	src := g.AddActor("src")
	add := g.AddActor("add")
	tap := g.AddActor("tap")
	g.AddEdge(src, add, 1, 1, 0)
	fb := g.AddEdge(tap, add, 1, 1, 1) // y[n-1], one initial token
	g.AddEdge(add, tap, 1, 1, 0)
	res := compile(t, g)

	n := 0.0
	var ys []float64
	eng, err := New(res, map[sdf.ActorID]Fire{
		src: func([][]float64) [][]float64 {
			n++
			return [][]float64{{n}}
		},
		add: func(in [][]float64) [][]float64 {
			y := in[0][0] + in[1][0]
			return [][]float64{{y}}
		},
		tap: func(in [][]float64) [][]float64 {
			ys = append(ys, in[0][0])
			return [][]float64{{in[0][0]}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the feedback token with 10 (overrides the zero initial value).
	st := &eng.edges[fb]
	eng.mem[st.offset] = 10
	for p := 0; p < 5; p++ {
		if err := eng.RunPeriod(); err != nil {
			t.Fatal(err)
		}
	}
	// y[n] = 10 + 1 + 2 + ... + n
	want := 10.0
	for i, y := range ys {
		want += float64(i + 1)
		if y != want {
			t.Errorf("y[%d] = %v, want %v", i, y, want)
		}
	}
}

// TestArityChecks: wrong output shapes are rejected.
func TestArityChecks(t *testing.T) {
	g := sdf.New("bad")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 2, 1, 0)
	res := compile(t, g)
	eng, err := New(res, map[sdf.ActorID]Fire{
		a: func([][]float64) [][]float64 {
			return [][]float64{{1}} // should be 2 tokens
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunPeriod(); err == nil {
		t.Error("short production accepted")
	}

	eng2, _ := New(res, map[sdf.ActorID]Fire{
		a: func([][]float64) [][]float64 {
			return nil // wrong vector count
		},
	})
	if err := eng2.RunPeriod(); err == nil {
		t.Error("missing output vector accepted")
	}
}

// TestDefaultFireSums: with no functions, outputs carry the input sum.
func TestDefaultFireSums(t *testing.T) {
	g := sdf.New("dflt")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 1, 1, 0)
	e := g.AddEdge(b, c, 1, 2, 0)
	res := compile(t, g)
	eng, err := New(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunPeriod(); err != nil {
		t.Fatal(err)
	}
	_ = e
	// Everything is zeros (source emits 0); the run completing with all
	// counts back at initial state is the assertion.
	for i, st := range eng.edges {
		want := res.Graph.Edge(sdf.EdgeID(i)).Delay
		if st.count != want {
			t.Errorf("edge %d ends with %d tokens, want %d", i, st.count, want)
		}
	}
}

// TestPushOverflow: seeding beyond capacity is rejected.
func TestPushOverflow(t *testing.T) {
	g := sdf.New("push")
	a := g.AddActor("A")
	b := g.AddActor("B")
	e := g.AddEdge(a, b, 1, 1, 1)
	res := compile(t, g)
	eng, err := New(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	cap := res.Intervals[e].Size
	extra := make([]float64, cap) // already 1 delay token inside
	if err := eng.Push(e, extra...); err == nil {
		t.Error("overflowing Push accepted")
	}
	if got := eng.TokensOn(e); len(got) != 1 {
		t.Errorf("TokensOn = %v", got)
	}
}
