// Package runtime executes a compiled SDF system on real data: actor
// behaviour is supplied as Go functions, tokens are float64 samples, and all
// buffering happens inside the single shared memory image produced by the
// allocator — the software analogue of running the generated C on a DSP.
//
// Each edge buffer lives at its allocated offset with modulo addressing
// (cursor arithmetic identical to the generated C), so executing a system
// here exercises exactly the memory behaviour the paper's synthesis flow
// commits to.
package runtime

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sdf"
)

// Fire is one actor's behaviour for a single firing: inputs holds the
// consumed tokens per input edge (in g.In order, cns(e) values each); the
// returned slice must hold prd(e) tokens per output edge (in g.Out order).
type Fire func(inputs [][]float64) [][]float64

// Engine executes a compiled result period by period.
type Engine struct {
	res   *core.Result
	fires map[sdf.ActorID]Fire
	mem   []float64
	edges []edgeState
}

type edgeState struct {
	offset, size int64
	rd, wr       int64
	count        int64
}

// New builds an engine for a verified compilation result. Actors without an
// entry in fires get the default behaviour: every output token is the sum of
// all consumed tokens (sources emit 0).
func New(res *core.Result, fires map[sdf.ActorID]Fire) (*Engine, error) {
	g := res.Graph
	e := &Engine{
		res:   res,
		fires: fires,
		mem:   make([]float64, res.Best.Total),
		edges: make([]edgeState, g.NumEdges()),
	}
	for _, ed := range g.Edges() {
		if ed.Words > 1 {
			return nil, fmt.Errorf("runtime: edge %d uses %d-word tokens; the float64 engine supports scalar tokens only",
				ed.ID, ed.Words)
		}
		iv := res.Intervals[ed.ID]
		off, ok := res.Best.OffsetOf(iv)
		if !ok {
			return nil, fmt.Errorf("runtime: edge %d has no placement", ed.ID)
		}
		st := &e.edges[ed.ID]
		st.offset, st.size = off, iv.Size
		st.count = ed.Delay
		// Initial tokens are zeros, occupying the first del cells.
		st.wr = ed.Delay
	}
	return e, nil
}

// Mem exposes the shared memory image (for inspection; do not resize).
func (e *Engine) Mem() []float64 { return e.mem }

// TokensOn returns the tokens currently queued on an edge, oldest first.
func (e *Engine) TokensOn(edge sdf.EdgeID) []float64 {
	st := &e.edges[edge]
	out := make([]float64, st.count)
	for i := int64(0); i < st.count; i++ {
		out[i] = e.mem[st.offset+(st.rd+i)%st.size]
	}
	return out
}

// Push appends tokens to an edge's queue (useful to seed non-zero initial
// token values before the first period).
func (e *Engine) Push(edge sdf.EdgeID, values ...float64) error {
	st := &e.edges[edge]
	if st.count+int64(len(values)) > st.size {
		return fmt.Errorf("runtime: pushing %d tokens overflows edge %d (count %d, size %d)",
			len(values), edge, st.count, st.size)
	}
	for _, v := range values {
		e.mem[st.offset+st.wr%st.size] = v
		st.wr++
		st.count++
	}
	return nil
}

// RunPeriod executes one complete schedule period.
func (e *Engine) RunPeriod() error {
	g := e.res.Graph
	var failure error
	ok := e.res.Schedule.ForEachFiring(func(a sdf.ActorID) bool {
		if err := e.fire(a); err != nil {
			failure = fmt.Errorf("runtime: firing %s: %w", g.Actor(a).Name, err)
			return false
		}
		return true
	})
	if !ok {
		return failure
	}
	return nil
}

func (e *Engine) fire(a sdf.ActorID) error {
	return fireActor(e.res.Graph, e.mem, e.edges, e.fires, a)
}

// fireActor executes one firing against any memory image + edge cursor set:
// the sequential engine and the phased engine share it, so both commit to
// exactly the same consume/compute/produce arithmetic (and therefore
// bit-identical float64 results for identical firing sequences).
func fireActor(g *sdf.Graph, mem []float64, edges []edgeState, fires map[sdf.ActorID]Fire, a sdf.ActorID) error {
	ins := g.In(a)
	outs := g.Out(a)
	inputs := make([][]float64, len(ins))
	for i, eid := range ins {
		ed := g.Edge(eid)
		st := &edges[eid]
		if st.count < ed.Cons {
			return fmt.Errorf("edge %d underflow: have %d, need %d", eid, st.count, ed.Cons)
		}
		vals := make([]float64, ed.Cons)
		for k := int64(0); k < ed.Cons; k++ {
			vals[k] = mem[st.offset+st.rd%st.size]
			st.rd++
		}
		st.count -= ed.Cons
		inputs[i] = vals
	}
	var outputs [][]float64
	if f := fires[a]; f != nil {
		outputs = f(inputs)
		if len(outputs) != len(outs) {
			return fmt.Errorf("actor returned %d output vectors, want %d", len(outputs), len(outs))
		}
	} else {
		var sum float64
		for _, vals := range inputs {
			for _, v := range vals {
				sum += v
			}
		}
		outputs = make([][]float64, len(outs))
		for i, eid := range outs {
			vals := make([]float64, g.Edge(eid).Prod)
			for k := range vals {
				vals[k] = sum
			}
			outputs[i] = vals
		}
	}
	for i, eid := range outs {
		ed := g.Edge(eid)
		st := &edges[eid]
		if int64(len(outputs[i])) != ed.Prod {
			return fmt.Errorf("actor produced %d tokens on edge %d, want %d",
				len(outputs[i]), eid, ed.Prod)
		}
		if st.count+ed.Prod > st.size {
			return fmt.Errorf("edge %d overflow: count %d + %d > capacity %d",
				eid, st.count, ed.Prod, st.size)
		}
		for _, v := range outputs[i] {
			mem[st.offset+st.wr%st.size] = v
			st.wr++
		}
		st.count += ed.Prod
	}
	return nil
}
