package hdr

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// quantiles under test: the report set plus awkward interior points.
var testQs = []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0}

// exactQuantile is the oracle: the ceil(q*n)-th smallest value.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// streams generates value distributions that stress different bucket
// regimes: unit-range, mid-range, heavy-tailed, and mixed-magnitude.
func streams(rng *rand.Rand) [][]int64 {
	var out [][]int64
	sizes := []int{1, 2, 3, 17, 100, 1000, 5000}
	for _, n := range sizes {
		uniformSmall := make([]int64, n)
		uniformWide := make([]int64, n)
		heavyTail := make([]int64, n)
		for i := range uniformSmall {
			uniformSmall[i] = int64(rng.Intn(64))
			uniformWide[i] = rng.Int63n(10_000_000_000) // up to 10s in ns
			// Log-uniform magnitudes: every octave equally likely.
			heavyTail[i] = int64(math.Exp(rng.Float64()*20)) + rng.Int63n(1000)
		}
		out = append(out, uniformSmall, uniformWide, heavyTail)
	}
	return out
}

func TestQuantileWithinBucketError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for si, stream := range streams(rng) {
		h := New()
		for _, v := range stream {
			h.Record(v)
		}
		if h.Count() != int64(len(stream)) {
			t.Fatalf("stream %d: count %d, want %d", si, h.Count(), len(stream))
		}
		sorted := append([]int64(nil), stream...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum int64
		for _, v := range sorted {
			sum += v
		}
		if h.Sum() != sum {
			t.Fatalf("stream %d: sum %d, want %d", si, h.Sum(), sum)
		}
		if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
			t.Fatalf("stream %d: min/max %d/%d, want %d/%d",
				si, h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
		}
		for _, q := range testQs {
			got := h.Quantile(q)
			want := exactQuantile(sorted, q)
			if got < want {
				t.Errorf("stream %d q=%v: reported %d below exact %d", si, q, got, want)
			}
			if tol := float64(want)/float64(half) + 1; float64(got-want) > tol {
				t.Errorf("stream %d q=%v: reported %d exceeds exact %d by more than one bucket (%g)",
					si, q, got, want, tol)
			}
		}
	}
}

func TestMergeEquivalentToConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		na, nb := rng.Intn(2000), rng.Intn(2000)
		a := make([]int64, na)
		b := make([]int64, nb)
		for i := range a {
			a[i] = int64(math.Exp(rng.Float64() * 22))
		}
		for i := range b {
			b[i] = rng.Int63n(1 << 40)
		}
		ha, hb, hcat := New(), New(), New()
		for _, v := range a {
			ha.Record(v)
			hcat.Record(v)
		}
		for _, v := range b {
			hb.Record(v)
			hcat.Record(v)
		}
		merged := New()
		merged.Merge(ha)
		merged.Merge(hb)
		if merged.counts != hcat.counts {
			t.Fatalf("trial %d: merged bucket counts differ from concatenated recording", trial)
		}
		if merged.Count() != hcat.Count() || merged.Sum() != hcat.Sum() ||
			merged.Min() != hcat.Min() || merged.Max() != hcat.Max() {
			t.Fatalf("trial %d: merged summary (%d,%d,%d,%d) != concat (%d,%d,%d,%d)", trial,
				merged.Count(), merged.Sum(), merged.Min(), merged.Max(),
				hcat.Count(), hcat.Sum(), hcat.Min(), hcat.Max())
		}
		for q := 0.01; q <= 1.0; q += 0.01 {
			if merged.Quantile(q) != hcat.Quantile(q) {
				t.Fatalf("trial %d q=%v: merged quantile %d != concat %d",
					trial, q, merged.Quantile(q), hcat.Quantile(q))
			}
		}
	}
}

func TestBucketGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	check := func(v int64) {
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("value %d: bucket %d out of range", v, idx)
		}
		if up := bucketUpper(idx); up < v {
			t.Fatalf("value %d: above its bucket upper bound %d", v, up)
		}
		if idx > 0 && bucketUpper(idx-1) >= v {
			t.Fatalf("value %d: previous bucket upper %d overlaps", v, bucketUpper(idx-1))
		}
	}
	for v := int64(0); v < 5000; v++ {
		check(v)
	}
	for i := 0; i < 100_000; i++ {
		check(rng.Int63())
	}
	check(math.MaxInt64)
	// Bucket upper bounds are strictly increasing — the quantile walk's
	// monotonicity rests on it.
	for i := 1; i < numBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucket %d upper %d not above bucket %d upper %d",
				i, bucketUpper(i), i-1, bucketUpper(i-1))
		}
	}
}

func TestEmptyAndEdgeCases(t *testing.T) {
	h := New()
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Record(-5) // clamps to 0
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("negative clamp: count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	h2 := New()
	h2.Record(math.MaxInt64)
	if h2.Quantile(0.5) != math.MaxInt64 {
		t.Errorf("single max-value observation: p50 = %d", h2.Quantile(0.5))
	}
	h2.Merge(New()) // merging an empty histogram is a no-op
	if h2.Count() != 1 {
		t.Error("merging empty histogram changed count")
	}
	// Quantiles are monotone in q.
	rng := rand.New(rand.NewSource(3))
	h3 := New()
	for i := 0; i < 1000; i++ {
		h3.Record(rng.Int63n(1 << 30))
	}
	prev := int64(-1)
	for q := 0.001; q <= 1.0; q += 0.001 {
		v := h3.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%v gives %d after %d", q, v, prev)
		}
		prev = v
	}
}
