// Package hdr is a log-bucketed ("HDR-style") histogram for latency-like
// non-negative int64 values. Buckets are laid out log-linearly: 64 unit
// buckets for values below 64, then 32 sub-buckets per power of two above
// it, so every recorded value lands in a bucket whose width is at most
// 1/32 (~3.1%) of its lower bound. Quantile queries therefore carry a
// bounded *relative* error regardless of the value range — sub-millisecond
// cache hits and multi-second saturation stalls coexist in one histogram
// without tuning bucket bounds per workload.
//
// Histograms are plain value-recording state with no clocks, no
// allocation after construction, and a Merge operation that is exactly
// equivalent to having recorded both input streams into one histogram.
// That makes them safe to keep per-worker during a load run and fold
// together afterwards, and keeps the package inside the repository's
// deterministic bannedcall lint set: callers time operations with their
// own (injected) clock and record plain integers here.
//
// The zero value is NOT ready to use; construct with New.
package hdr

import "math/bits"

const (
	// subBits fixes the resolution: 2^subBits sub-buckets per power of two
	// above the unit range, giving a relative bucket width of 2^-(subBits-1).
	subBits = 6
	full    = 1 << subBits // unit buckets covering [0, full)
	half    = full / 2     // sub-buckets per octave above the unit range
	// maxExp is the largest shift an int64 value can need: values have at
	// most 63 significant bits, so bits.Len64 - subBits <= 63 - subBits.
	maxExp     = 63 - subBits
	numBuckets = full + maxExp*half
)

// Histogram counts non-negative int64 observations in log-linear buckets.
// It is not goroutine-safe: give each worker its own and Merge.
type Histogram struct {
	counts [numBuckets]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// bucketIndex maps a value onto its bucket. Values below full map to unit
// buckets; above, the top subBits bits select a sub-bucket within the
// value's octave.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < full {
		return int(u)
	}
	e := bits.Len64(u) - subBits // >= 1
	return full + (e-1)*half + int(u>>uint(e)) - half
}

// bucketUpper is the largest value mapping into bucket idx.
func bucketUpper(idx int) int64 {
	if idx < full {
		return int64(idx)
	}
	b := idx - full
	e := b/half + 1
	sub := int64(b%half + half)
	return (sub+1)<<uint(e) - 1
}

// Record adds one observation. Negative values are clamped to zero (a
// latency below the clock's resolution, not an error).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper estimate of the q-quantile (0 < q <= 1): the
// upper bound of the bucket holding the ceil(q*count)-th smallest
// observation, capped at the recorded maximum. The estimate is never below
// the exact order statistic and exceeds it by at most one bucket width
// (<= 1/32 of the value). Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(q*float64(h.count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max // unreachable: cum reaches count
}

// Merge folds o into h. The result is exactly what h would hold had it
// recorded o's observation stream too; o is left untouched.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Snapshot is a fixed set of report-friendly percentiles.
type Snapshot struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
	P999  int64 `json:"p999"`
	Max   int64 `json:"max"`
}

// Snapshot extracts the standard percentile set.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.count,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.max,
	}
}
