// Package codegen emits a C implementation of a compiled SDF system using
// the threading model described in Sec. 1 of the paper: one code block per
// actor, stitched together by the loop structure of the single appearance
// schedule, with every edge buffer placed at its allocated offset inside a
// single shared memory array.
//
// The generated code is self-contained, standard C99, and deterministic for
// a given compilation result. Actor bodies are synthetic (each output token
// is the running sum of consumed inputs), standing in for the hand-optimized
// library blocks a production synthesis flow would substitute.
package codegen

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sdf"
)

// GenerateC renders the compiled system as a C translation unit.
func GenerateC(res *core.Result) string {
	g := res.Graph
	var b strings.Builder
	fmt.Fprintf(&b, "/* Generated shared-memory implementation of SDF graph %q.\n", g.Name)
	fmt.Fprintf(&b, " * Schedule: %s\n", res.Schedule)
	fmt.Fprintf(&b, " * Shared buffer memory: %d cells (non-shared would need %d).\n",
		res.Best.Total, res.Metrics.NonSharedBufMem)
	fmt.Fprintf(&b, " */\n\n#include <stdio.h>\n\ntypedef double token_t;\n\n")
	total := res.Best.Total
	if total < 1 {
		total = 1
	}
	fmt.Fprintf(&b, "#define MEM_SIZE %dL\nstatic token_t mem[MEM_SIZE];\n\n", total)

	// Buffer map.
	b.WriteString("/* Edge buffers: offset and size inside the shared array. */\n")
	for _, e := range g.Edges() {
		iv := res.Intervals[e.ID]
		off, ok := res.Best.OffsetOf(iv)
		if !ok {
			off = 0
		}
		fmt.Fprintf(&b, "#define E%d_OFF %dL /* %s */\n#define E%d_SIZE %dL\n#define E%d_W %dL\n",
			e.ID, off, iv.Name, e.ID, iv.Size, e.ID, e.Words)
		fmt.Fprintf(&b, "static long w%d, r%d;\n", e.ID, e.ID)
	}
	b.WriteString("\n")

	// Actor firing functions.
	for _, a := range g.Actors() {
		fmt.Fprintf(&b, "static void fire_%s(void) {\n", sanitize(a.Name))
		fmt.Fprintf(&b, "    token_t acc = 0;\n")
		for _, eid := range g.In(a.ID) {
			e := g.Edge(eid)
			fmt.Fprintf(&b, "    for (long i = 0; i < %d; i++) { /* consume %s */\n",
				e.Cons, res.Intervals[eid].Name)
			fmt.Fprintf(&b, "        acc += mem[E%d_OFF + ((r%d++) * E%d_W) %% E%d_SIZE];\n", eid, eid, eid, eid)
			fmt.Fprintf(&b, "    }\n")
		}
		for _, eid := range g.Out(a.ID) {
			e := g.Edge(eid)
			fmt.Fprintf(&b, "    for (long i = 0; i < %d; i++) { /* produce %s */\n",
				e.Prod, res.Intervals[eid].Name)
			fmt.Fprintf(&b, "        mem[E%d_OFF + ((w%d++) * E%d_W) %% E%d_SIZE] = acc + (token_t)i;\n",
				eid, eid, eid, eid)
			fmt.Fprintf(&b, "    }\n")
		}
		if len(g.In(a.ID)) == 0 && len(g.Out(a.ID)) == 0 {
			b.WriteString("    (void)acc;\n")
		}
		b.WriteString("}\n\n")
	}

	// Period body from the schedule's loop structure.
	b.WriteString("static void run_period(void) {\n")
	depth := 0
	for _, n := range res.Schedule.Body {
		writeLoop(&b, g, n, 1, &depth)
	}
	b.WriteString("}\n\n")

	// Main: seed initial tokens, run periods.
	b.WriteString("int main(void) {\n")
	for _, e := range g.Edges() {
		if e.Delay > 0 {
			fmt.Fprintf(&b, "    for (long i = 0; i < %d; i++) mem[E%d_OFF + ((w%d++) * E%d_W) %% E%d_SIZE] = 0; /* delays */\n",
				e.Delay, e.ID, e.ID, e.ID, e.ID)
		}
	}
	b.WriteString("    for (int period = 0; period < 4; period++) run_period();\n")
	b.WriteString("    printf(\"mem[0] = %g\\n\", (double)mem[0]);\n")
	b.WriteString("    return 0;\n}\n")
	return b.String()
}

func writeLoop(b *strings.Builder, g *sdf.Graph, n *sched.Node, indent int, depth *int) {
	pad := strings.Repeat("    ", indent)
	if n.IsLeaf() {
		name := sanitize(g.Actor(n.Actor).Name)
		if n.Count == 1 {
			fmt.Fprintf(b, "%sfire_%s();\n", pad, name)
			return
		}
		v := fmt.Sprintf("i%d", *depth)
		*depth++
		fmt.Fprintf(b, "%sfor (long %s = 0; %s < %d; %s++) fire_%s();\n",
			pad, v, v, n.Count, v, name)
		return
	}
	if n.Count == 1 {
		for _, ch := range n.Children {
			writeLoop(b, g, ch, indent, depth)
		}
		return
	}
	v := fmt.Sprintf("i%d", *depth)
	*depth++
	fmt.Fprintf(b, "%sfor (long %s = 0; %s < %d; %s++) {\n", pad, v, v, n.Count, v)
	for _, ch := range n.Children {
		writeLoop(b, g, ch, indent+1, depth)
	}
	fmt.Fprintf(b, "%s}\n", pad)
}

// sanitize maps an actor name to a valid C identifier fragment.
func sanitize(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('n')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
