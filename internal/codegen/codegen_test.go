package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/systems"
)

func compile(t *testing.T, name string) *core.Result {
	t.Helper()
	var res *core.Result
	var err error
	switch name {
	case "cddat":
		res, err = core.Compile(systems.CDDAT(), core.Options{Verify: true})
	case "satrec":
		res, err = core.Compile(systems.SatelliteReceiver(), core.Options{Verify: true})
	default:
		t.Fatalf("unknown system %s", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGenerateCStructure(t *testing.T) {
	res := compile(t, "cddat")
	src := GenerateC(res)
	for _, want := range []string{
		"#define MEM_SIZE",
		"static token_t mem[MEM_SIZE];",
		"static void fire_cd(void)",
		"static void fire_dat(void)",
		"static void run_period(void)",
		"int main(void)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated C missing %q", want)
		}
	}
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces in generated C")
	}
	// Every edge gets offset/size macros and cursors.
	for i := 0; i < res.Graph.NumEdges(); i++ {
		for _, frag := range []string{"_OFF", "_SIZE"} {
			if !strings.Contains(src, "E0"+frag) {
				t.Errorf("missing macro E0%s", frag)
			}
		}
		_ = i
	}
}

func TestGenerateCDeterministic(t *testing.T) {
	a := GenerateC(compile(t, "cddat"))
	b := GenerateC(compile(t, "cddat"))
	if a != b {
		t.Error("code generation is not deterministic")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"src":   "src",
		"t_add": "t_add",
		"16qam": "n16qam",
		"a-b.c": "a_b_c",
		"A":     "A",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestGeneratedCCompilesAndRuns builds and executes the generated C when a C
// compiler is available, as an end-to-end smoke check of the emitted code.
func TestGeneratedCCompilesAndRuns(t *testing.T) {
	cc, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler in PATH")
	}
	for _, name := range []string{"cddat", "satrec"} {
		res := compile(t, name)
		src := GenerateC(res)
		dir := t.TempDir()
		cfile := filepath.Join(dir, name+".c")
		bin := filepath.Join(dir, name)
		if err := os.WriteFile(cfile, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := exec.Command(cc, "-std=c99", "-Wall", "-Werror", "-o", bin, cfile).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: cc failed: %v\n%s", name, err, out)
		}
		out, err = exec.Command(bin).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: generated binary failed: %v\n%s", name, err, out)
		}
		if !strings.Contains(string(out), "mem[0]") {
			t.Errorf("%s: unexpected output %q", name, out)
		}
	}
}

func TestGenerateVHDLStructure(t *testing.T) {
	res := compile(t, "satrec")
	src := GenerateVHDL(res)
	for _, want := range []string{
		"entity satrec is",
		"architecture behavioral of satrec is",
		"constant MEM_SIZE : integer :=",
		"type mem_t is array (0 to MEM_SIZE - 1) of integer;",
		"procedure fire_A is",
		"procedure fire_W is",
		"end architecture behavioral;",
		"tick <= '1';",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated VHDL missing %q", want)
		}
	}
	// Every "for ... loop" has a matching "end loop".
	opens := strings.Count(src, "for ")
	closes := strings.Count(src, "end loop;")
	if opens != closes {
		t.Errorf("unbalanced loops: %d opens, %d closes", opens, closes)
	}
	// Every procedure is closed.
	procs := strings.Count(src, "procedure fire_")
	if procs != 2*res.Graph.NumActors() { // declaration + end line
		t.Errorf("procedure count %d, want %d", procs, 2*res.Graph.NumActors())
	}
}

func TestGenerateVHDLDeterministic(t *testing.T) {
	a := GenerateVHDL(compile(t, "cddat"))
	b := GenerateVHDL(compile(t, "cddat"))
	if a != b {
		t.Error("VHDL generation is not deterministic")
	}
}

// TestGeneratedVHDLAnalyzes elaborates the VHDL when a simulator is on PATH.
func TestGeneratedVHDLAnalyzes(t *testing.T) {
	sim, err := exec.LookPath("ghdl")
	if err != nil {
		if sim, err = exec.LookPath("nvc"); err != nil {
			t.Skip("no VHDL analyzer in PATH")
		}
	}
	res := compile(t, "cddat")
	src := GenerateVHDL(res)
	dir := t.TempDir()
	file := filepath.Join(dir, "cddat.vhd")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var cmd *exec.Cmd
	if strings.Contains(sim, "ghdl") {
		cmd = exec.Command(sim, "-a", "--std=08", file)
	} else {
		cmd = exec.Command(sim, "-a", file)
	}
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("VHDL analysis failed: %v\n%s", err, out)
	}
}
