package codegen

import (
	"fmt"
	"strings"

	"repro/internal/sched"
	"repro/internal/sdf"

	"repro/internal/core"
)

// GenerateVHDL renders the compiled system as a behavioral VHDL architecture,
// the hardware synthesis path the paper describes in Sec. 1: the schedule's
// loop structure becomes nested for-loops inside a single process, and every
// edge buffer is a slice of one shared memory array with modulo cursors —
// the description a behavioral compiler would map to RTL.
func GenerateVHDL(res *core.Result) string {
	g := res.Graph
	name := sanitize(g.Name)
	var b strings.Builder
	fmt.Fprintf(&b, "-- Generated shared-memory implementation of SDF graph %q.\n", g.Name)
	fmt.Fprintf(&b, "-- Schedule: %s\n", res.Schedule)
	fmt.Fprintf(&b, "-- Shared buffer memory: %d cells (non-shared would need %d).\n",
		res.Best.Total, res.Metrics.NonSharedBufMem)
	b.WriteString("library ieee;\nuse ieee.std_logic_1164.all;\n\n")
	fmt.Fprintf(&b, "entity %s is\n  port (\n    clk  : in  std_logic;\n    rst  : in  std_logic;\n    tick : out std_logic  -- pulses once per schedule period\n  );\nend entity %s;\n\n", name, name)
	fmt.Fprintf(&b, "architecture behavioral of %s is\n", name)
	total := res.Best.Total
	if total < 1 {
		total = 1
	}
	fmt.Fprintf(&b, "  constant MEM_SIZE : integer := %d;\n", total)
	b.WriteString("  type mem_t is array (0 to MEM_SIZE - 1) of integer;\n")
	for _, e := range g.Edges() {
		iv := res.Intervals[e.ID]
		off, ok := res.Best.OffsetOf(iv)
		if !ok {
			off = 0
		}
		fmt.Fprintf(&b, "  constant E%d_OFF  : integer := %d;  -- %s\n", e.ID, off, iv.Name)
		fmt.Fprintf(&b, "  constant E%d_SIZE : integer := %d;\n", e.ID, iv.Size)
		fmt.Fprintf(&b, "  constant E%d_W    : integer := %d;\n", e.ID, e.Words)
	}
	b.WriteString("begin\n\n  schedule : process (clk)\n")
	b.WriteString("    variable mem : mem_t := (others => 0);\n")
	b.WriteString("    variable acc : integer;\n")
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "    variable w%d, r%d : integer := 0;\n", e.ID, e.ID)
	}

	// One procedure per actor, declared in the process declarative part.
	for _, a := range g.Actors() {
		writeVHDLActor(&b, g, res, a)
	}

	b.WriteString("  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n")
	b.WriteString("        mem := (others => 0);\n")
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "        w%d := %d; r%d := 0;\n", e.ID, e.Delay, e.ID)
	}
	b.WriteString("        tick <= '0';\n      else\n")
	depth := 0
	for _, n := range res.Schedule.Body {
		writeVHDLLoop(&b, g, n, 4, &depth)
	}
	b.WriteString("        tick <= '1';\n      end if;\n    end if;\n  end process schedule;\n\nend architecture behavioral;\n")
	return b.String()
}

// writeVHDLActor emits one firing procedure.
func writeVHDLActor(b *strings.Builder, g *sdf.Graph, res *core.Result, a sdf.Actor) {
	fmt.Fprintf(b, "\n    -- actor %s\n    procedure fire_%s is\n    begin\n", a.Name, sanitize(a.Name))
	wrote := false
	b.WriteString("      acc := 0;\n")
	for _, eid := range g.In(a.ID) {
		e := g.Edge(eid)
		fmt.Fprintf(b, "      for k in 0 to %d loop  -- consume %s\n", e.Cons-1, res.Intervals[eid].Name)
		fmt.Fprintf(b, "        acc := acc + mem(E%d_OFF + ((r%d * E%d_W) mod E%d_SIZE));\n", eid, eid, eid, eid)
		fmt.Fprintf(b, "        r%d := r%d + 1;\n      end loop;\n", eid, eid)
		wrote = true
	}
	for _, eid := range g.Out(a.ID) {
		e := g.Edge(eid)
		fmt.Fprintf(b, "      for k in 0 to %d loop  -- produce %s\n", e.Prod-1, res.Intervals[eid].Name)
		fmt.Fprintf(b, "        mem(E%d_OFF + ((w%d * E%d_W) mod E%d_SIZE)) := acc;\n", eid, eid, eid, eid)
		fmt.Fprintf(b, "        w%d := w%d + 1;\n      end loop;\n", eid, eid)
		wrote = true
	}
	if !wrote {
		b.WriteString("      null;\n")
	}
	fmt.Fprintf(b, "    end procedure fire_%s;\n", sanitize(a.Name))
}

// writeVHDLLoop renders the schedule's loop nest.
func writeVHDLLoop(b *strings.Builder, g *sdf.Graph, n *sched.Node, indent int, depth *int) {
	pad := strings.Repeat("  ", indent)
	if n.IsLeaf() {
		name := sanitize(g.Actor(n.Actor).Name)
		if n.Count == 1 {
			fmt.Fprintf(b, "%sfire_%s;\n", pad, name)
			return
		}
		v := fmt.Sprintf("i%d", *depth)
		*depth++
		fmt.Fprintf(b, "%sfor %s in 0 to %d loop\n%s  fire_%s;\n%send loop;\n",
			pad, v, n.Count-1, pad, name, pad)
		return
	}
	if n.Count == 1 {
		for _, ch := range n.Children {
			writeVHDLLoop(b, g, ch, indent, depth)
		}
		return
	}
	v := fmt.Sprintf("i%d", *depth)
	*depth++
	fmt.Fprintf(b, "%sfor %s in 0 to %d loop\n", pad, v, n.Count-1)
	for _, ch := range n.Children {
		writeVHDLLoop(b, g, ch, indent+1, depth)
	}
	fmt.Fprintf(b, "%send loop;\n", pad)
}
