package codegen

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/sdf"
	"repro/internal/systems"
)

// compileP compiles one of the multirate reference systems with a P-way
// partitioned schedule (verification on, so the phased simulator has already
// blessed the partitioning before codegen sees it).
func compileP(t *testing.T, name string, p int) *core.Result {
	t.Helper()
	var g *sdf.Graph
	switch name {
	case "cddat":
		g = systems.CDDAT()
	case "satrec":
		g = systems.SatelliteReceiver()
	default:
		t.Fatalf("unknown system %s", name)
	}
	res, err := core.Compile(g, core.Options{Verify: true, Partitions: p})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// refChecksums runs the sequential reference interpreter with the generated
// code's actor semantics — output token i carries the firing's input sum
// plus i — and returns each actor's accumulated input sum after the given
// number of periods. SDF determinism makes this the exact value the threaded
// C program prints, whatever its worker interleaving.
func refChecksums(t *testing.T, res *core.Result, periods int) []float64 {
	t.Helper()
	g := res.Graph
	checks := make([]float64, g.NumActors())
	fires := map[sdf.ActorID]runtime.Fire{}
	for _, a := range g.Actors() {
		id := a.ID
		fires[id] = func(inputs [][]float64) [][]float64 {
			var acc float64
			for _, in := range inputs {
				for _, v := range in {
					acc += v
				}
			}
			checks[id] += acc
			outs := make([][]float64, len(g.Out(id)))
			for oi, eid := range g.Out(id) {
				vals := make([]float64, g.Edge(eid).Prod)
				for i := range vals {
					vals[i] = acc + float64(i)
				}
				outs[oi] = vals
			}
			return outs
		}
	}
	eng, err := runtime.New(res, fires)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < periods; p++ {
		if err := eng.RunPeriod(); err != nil {
			t.Fatal(err)
		}
	}
	return checks
}

func TestGenerateThreadedCStructure(t *testing.T) {
	res := compileP(t, "cddat", 2)
	src := GenerateThreadedC(res)
	for _, want := range []string{
		"#include <pthread.h>",
		"#define WORKERS 2",
		"static void barrier_await(void)",
		"static void *worker_0(void *arg)",
		"static void *worker_1(void *arg)",
		"pthread_create(&tid[1], 0, worker_1, 0);",
		"check_cd",
		"int main(void)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated threaded C missing %q", want)
		}
	}
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces in generated threaded C")
	}
	// Exactly one barrier call per phase per worker (the definition spells
	// its parameter list "(void)" and so doesn't match).
	wantBarriers := res.Partition.NumPhases * res.Partition.P
	if got := strings.Count(src, "barrier_await()"); got != wantBarriers {
		t.Errorf("barrier_await appears %d times, want %d", got, wantBarriers)
	}
}

func TestGenerateThreadedCWithoutPartition(t *testing.T) {
	res, err := core.Compile(systems.CDDAT(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if src := GenerateThreadedC(res); src != "" {
		t.Errorf("unpartitioned result generated %d bytes of threaded C, want none", len(src))
	}
}

func TestGenerateThreadedCDeterministic(t *testing.T) {
	a := GenerateThreadedC(compileP(t, "satrec", 3))
	b := GenerateThreadedC(compileP(t, "satrec", 3))
	if a != b {
		t.Error("threaded code generation is not deterministic")
	}
}

// TestThreadedCMatchesReference builds and runs the threaded C for two
// multirate systems and compares every per-actor checksum bit-for-bit
// against the sequential reference interpreter (%.17g round-trips float64
// exactly, and the C program's additions happen in the same per-actor order
// as the reference's, so equality is exact).
func TestThreadedCMatchesReference(t *testing.T) {
	cc, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler in PATH")
	}
	for _, tc := range []struct {
		name string
		p    int
	}{
		{"cddat", 2},
		{"satrec", 2},
		{"satrec", 3},
	} {
		label := fmt.Sprintf("%s/p%d", tc.name, tc.p)
		res := compileP(t, tc.name, tc.p)
		want := refChecksums(t, res, 4) // the generated main runs 4 periods
		src := GenerateThreadedC(res)
		dir := t.TempDir()
		cfile := filepath.Join(dir, tc.name+".c")
		bin := filepath.Join(dir, tc.name)
		if err := os.WriteFile(cfile, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := exec.Command(cc, "-std=c99", "-Wall", "-Werror", "-pthread", "-o", bin, cfile).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: cc failed: %v\n%s", label, err, out)
		}
		out, err = exec.Command(bin).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: threaded binary failed: %v\n%s", label, err, out)
		}
		got := map[string]float64{}
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			name, val, ok := strings.Cut(line, " = ")
			if !ok || !strings.HasPrefix(name, "check_") {
				t.Fatalf("%s: unexpected output line %q", label, line)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("%s: bad checksum in %q: %v", label, line, err)
			}
			got[strings.TrimPrefix(name, "check_")] = f
		}
		g := res.Graph
		if len(got) != g.NumActors() {
			t.Fatalf("%s: %d checksum lines for %d actors", label, len(got), g.NumActors())
		}
		for _, a := range g.Actors() {
			v, ok := got[sanitize(a.Name)]
			if !ok {
				t.Errorf("%s: no checksum printed for actor %s", label, a.Name)
				continue
			}
			if v != want[a.ID] {
				t.Errorf("%s: check_%s = %v, reference %v", label, a.Name, v, want[a.ID])
			}
		}
	}
}
