package codegen

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/partition"
)

// GenerateThreadedC renders a partitioned compilation result (Partitions >= 2)
// as a self-contained pthread C program implementing the barrier-phased
// parallel runtime: one function per worker, each firing its per-phase blocks
// and passing a cyclic barrier after every phase, with edge buffers placed at
// their absolute offsets inside the segmented memory image. The barrier is
// hand-rolled over a mutex and condition variable — pthread_barrier_t is an
// optional POSIX feature and the mutex version is portable everywhere
// pthreads exist.
//
// Actor bodies match GenerateC (output token i carries the firing's input sum
// plus i), and every firing folds its input sum into a per-actor check_
// accumulator printed at exit, so the program's output is a deterministic
// function of the graph alone — the reference interpreter reproduces it
// exactly, independent of worker interleaving. Returns "" when res carries no
// partitioned schedule.
func GenerateThreadedC(res *core.Result) string {
	if res.Partition == nil || res.Segmented == nil {
		return ""
	}
	g := res.Graph
	part := res.Partition
	seg := res.Segmented
	var b strings.Builder
	fmt.Fprintf(&b, "/* Generated threaded shared-memory implementation of SDF graph %q.\n", g.Name)
	fmt.Fprintf(&b, " * Workers: %d, phases per period: %d (barrier after every phase).\n",
		part.P, part.NumPhases)
	fmt.Fprintf(&b, " * Segmented buffer memory: %d cells (sequential SAS needs %d).\n",
		seg.Total, res.Best.Total)
	b.WriteString(" */\n\n#include <pthread.h>\n#include <stdio.h>\n\ntypedef double token_t;\n\n")
	fmt.Fprintf(&b, "#define WORKERS %d\n", part.P)
	total := seg.Total
	if total < 1 {
		total = 1
	}
	fmt.Fprintf(&b, "#define MEM_SIZE %dL\nstatic token_t mem[MEM_SIZE];\n\n", total)

	// Segment map (informational) and edge buffers at absolute offsets.
	b.WriteString("/* Segments: private per worker, one shared region for cross-worker edges. */\n")
	for _, s := range seg.Segments {
		owner := fmt.Sprintf("worker %d", s.Worker)
		if s.Worker == partition.SharedWorker {
			owner = "shared"
		}
		fmt.Fprintf(&b, "/*   [%d, %d) %s */\n", s.Base, s.Base+s.Cells, owner)
	}
	b.WriteString("\n/* Edge buffers: absolute offset and size inside the segmented image. */\n")
	for _, e := range g.Edges() {
		words := e.Words
		if words < 1 {
			words = 1
		}
		fmt.Fprintf(&b, "#define E%d_OFF %dL /* %s */\n#define E%d_SIZE %dL\n#define E%d_W %dL\n",
			e.ID, seg.Offset(e.ID), seg.Intervals[e.ID].Name, e.ID, seg.Size(e.ID), e.ID, words)
		fmt.Fprintf(&b, "static long w%d, r%d;\n", e.ID, e.ID)
	}
	b.WriteString("\n/* Per-actor checksums: each firing folds its input sum in. */\n")
	for _, a := range g.Actors() {
		fmt.Fprintf(&b, "static token_t check_%s;\n", sanitize(a.Name))
	}

	// Cyclic barrier over mutex + condvar (generation counter handles reuse).
	b.WriteString(`
static pthread_mutex_t bar_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t bar_cv = PTHREAD_COND_INITIALIZER;
static int bar_waiting;
static unsigned long bar_gen;

static void barrier_await(void) {
    pthread_mutex_lock(&bar_mu);
    unsigned long gen = bar_gen;
    if (++bar_waiting == WORKERS) {
        bar_waiting = 0;
        bar_gen++;
        pthread_cond_broadcast(&bar_cv);
    } else {
        while (bar_gen == gen)
            pthread_cond_wait(&bar_cv, &bar_mu);
    }
    pthread_mutex_unlock(&bar_mu);
}

`)

	// Actor firing functions: GenerateC bodies plus the checksum fold. Each
	// edge's cursors are touched by exactly one worker (same-phase edges are
	// intra-worker; cross-phase access is barrier-ordered), so no locking.
	for _, a := range g.Actors() {
		fmt.Fprintf(&b, "static void fire_%s(void) {\n", sanitize(a.Name))
		fmt.Fprintf(&b, "    token_t acc = 0;\n")
		for _, eid := range g.In(a.ID) {
			e := g.Edge(eid)
			fmt.Fprintf(&b, "    for (long i = 0; i < %d; i++) { /* consume %s */\n",
				e.Cons, seg.Intervals[eid].Name)
			fmt.Fprintf(&b, "        acc += mem[E%d_OFF + ((r%d++) * E%d_W) %% E%d_SIZE];\n", eid, eid, eid, eid)
			fmt.Fprintf(&b, "    }\n")
		}
		for _, eid := range g.Out(a.ID) {
			e := g.Edge(eid)
			fmt.Fprintf(&b, "    for (long i = 0; i < %d; i++) { /* produce %s */\n",
				e.Prod, seg.Intervals[eid].Name)
			fmt.Fprintf(&b, "        mem[E%d_OFF + ((w%d++) * E%d_W) %% E%d_SIZE] = acc + (token_t)i;\n",
				eid, eid, eid, eid)
			fmt.Fprintf(&b, "    }\n")
		}
		fmt.Fprintf(&b, "    check_%s += acc;\n", sanitize(a.Name))
		b.WriteString("}\n\n")
	}

	// One function per worker: its per-phase firing blocks, a barrier after
	// every phase, all periods inside (the last phase's barrier separates
	// consecutive periods).
	for w := 0; w < part.P; w++ {
		fmt.Fprintf(&b, "static void *worker_%d(void *arg) {\n    (void)arg;\n", w)
		b.WriteString("    for (int period = 0; period < 4; period++) {\n")
		for ph := 0; ph < part.NumPhases; ph++ {
			fmt.Fprintf(&b, "        /* phase %d */\n", ph)
			for bi, blk := range part.Phases[ph].Workers[w] {
				name := sanitize(g.Actor(blk.Actor).Name)
				if blk.Count == 1 {
					fmt.Fprintf(&b, "        fire_%s();\n", name)
					continue
				}
				fmt.Fprintf(&b, "        for (long b%d = 0; b%d < %d; b%d++) fire_%s();\n",
					bi, bi, blk.Count, bi, name)
			}
			b.WriteString("        barrier_await();\n")
		}
		b.WriteString("    }\n    return 0;\n}\n\n")
	}

	// Main: seed initial tokens, run the workers, print the checksums in
	// actor order.
	b.WriteString("int main(void) {\n")
	for _, e := range g.Edges() {
		if e.Delay > 0 {
			fmt.Fprintf(&b, "    for (long i = 0; i < %d; i++) mem[E%d_OFF + ((w%d++) * E%d_W) %% E%d_SIZE] = 0; /* delays */\n",
				e.Delay, e.ID, e.ID, e.ID, e.ID)
		}
	}
	b.WriteString("    pthread_t tid[WORKERS];\n")
	for w := 0; w < part.P; w++ {
		fmt.Fprintf(&b, "    pthread_create(&tid[%d], 0, worker_%d, 0);\n", w, w)
	}
	b.WriteString("    for (int w = 0; w < WORKERS; w++) pthread_join(tid[w], 0);\n")
	for _, a := range g.Actors() {
		name := sanitize(a.Name)
		fmt.Fprintf(&b, "    printf(\"check_%s = %%.17g\\n\", (double)check_%s);\n", name, name)
	}
	b.WriteString("    return 0;\n}\n")
	return b.String()
}
