package num

import (
	"errors"
	"math"
	"testing"
)

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{0, 7, 7},
		{7, 0, 7},
		{12, 18, 6},
		{18, 12, 6},
		{-12, 18, 6},
		{12, -18, 6},
		{-12, -18, 6},
		{1, 1, 1},
		{13, 17, 1},
		{240, 612, 12},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCheckedMul(t *testing.T) {
	const maxI = int64(math.MaxInt64)
	const minI = int64(math.MinInt64)
	ok := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{0, maxI, 0},
		{minI, 0, 0},
		{1, maxI, maxI},
		{maxI, 1, maxI},
		{-1, maxI, -maxI},
		{1, minI, minI},
		{minI, 1, minI},
		{3, 7, 21},
		{-3, 7, -21},
		{3, -7, -21},
		{-3, -7, 21},
		{1 << 31, 1 << 31, 1 << 62},
	}
	for _, c := range ok {
		got, err := CheckedMul(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("CheckedMul(%d, %d) = %d, %v; want %d, nil", c.a, c.b, got, err, c.want)
		}
	}
	bad := []struct{ a, b int64 }{
		{maxI, 2},
		{2, maxI},
		{minI, 2},
		{minI, -1},
		{-1, minI},
		{1 << 32, 1 << 31},
		{maxI, maxI},
		{minI, minI},
		{maxI/2 + 1, 2},
	}
	for _, c := range bad {
		if got, err := CheckedMul(c.a, c.b); err == nil {
			t.Errorf("CheckedMul(%d, %d) = %d, nil; want ErrOverflow", c.a, c.b, got)
		} else if !errors.Is(err, ErrOverflow) {
			t.Errorf("CheckedMul(%d, %d) error %v is not ErrOverflow", c.a, c.b, err)
		}
	}
}

func TestCheckedAdd(t *testing.T) {
	const maxI = int64(math.MaxInt64)
	const minI = int64(math.MinInt64)
	ok := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{1, 2, 3},
		{maxI, 0, maxI},
		{maxI - 1, 1, maxI},
		{minI, 0, minI},
		{minI + 1, -1, minI},
		{maxI, minI, -1},
		{-5, 3, -2},
	}
	for _, c := range ok {
		got, err := CheckedAdd(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("CheckedAdd(%d, %d) = %d, %v; want %d, nil", c.a, c.b, got, err, c.want)
		}
	}
	bad := []struct{ a, b int64 }{
		{maxI, 1},
		{1, maxI},
		{minI, -1},
		{-1, minI},
		{maxI, maxI},
		{minI, minI},
	}
	for _, c := range bad {
		if got, err := CheckedAdd(c.a, c.b); err == nil {
			t.Errorf("CheckedAdd(%d, %d) = %d, nil; want ErrOverflow", c.a, c.b, got)
		} else if !errors.Is(err, ErrOverflow) {
			t.Errorf("CheckedAdd(%d, %d) error %v is not ErrOverflow", c.a, c.b, err)
		}
	}
}
