package num

import "testing"

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{0, 7, 7},
		{7, 0, 7},
		{12, 18, 6},
		{18, 12, 6},
		{-12, 18, 6},
		{12, -18, 6},
		{-12, -18, 6},
		{1, 1, 1},
		{13, 17, 1},
		{240, 612, 12},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
