// Package num holds the small integer helpers shared across the framework.
// Before it existed every package carried its own gcd64/min64/max64 copy;
// min/max are Go builtins since 1.21, so only the non-builtin helpers live
// here.
package num

// GCD returns the greatest common divisor of a and b, treating negatives by
// absolute value. GCD(0, 0) is 0.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
