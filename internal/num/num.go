// Package num holds the small integer helpers shared across the framework.
// Before it existed every package carried its own gcd64/min64/max64 copy;
// min/max are Go builtins since 1.21, so only the non-builtin helpers live
// here.
//
// CheckedMul and CheckedAdd are the overflow-guarded arithmetic the rest of
// the pipeline is required to use on repetition-vector, rate, and
// token-count quantities: TNSE and bufmem are products of per-firing rates
// and repetition counts, and on large multirate graphs those products exceed
// int64 long before the individual factors look suspicious. The sdflint
// checkedmul analyzer enforces the convention at the source level.
package num

import "errors"

// ErrOverflow is the typed error every checked arithmetic helper returns
// when a computation exceeds the int64 range. Callers wrap it with %w so
// errors.Is(err, num.ErrOverflow) identifies the class across package
// boundaries.
var ErrOverflow = errors.New("num: int64 overflow")

// CheckedMul returns a*b, or ErrOverflow if the product does not fit in an
// int64. It is exact for all operand signs, including math.MinInt64 edge
// cases.
func CheckedMul(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	r := a * b
	// A quotient round-trip catches every overflow except the one case where
	// the division itself is undefined: MinInt64 / -1.
	if (a == -1 && b == minInt64) || (b == -1 && a == minInt64) || r/b != a {
		return 0, ErrOverflow
	}
	return r, nil
}

// CheckedAdd returns a+b, or ErrOverflow if the sum does not fit in an
// int64.
func CheckedAdd(a, b int64) (int64, error) {
	r := a + b
	if (b > 0 && r < a) || (b < 0 && r > a) {
		return 0, ErrOverflow
	}
	return r, nil
}

const minInt64 = -1 << 63

// GCD returns the greatest common divisor of a and b, treating negatives by
// absolute value. GCD(0, 0) is 0.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
