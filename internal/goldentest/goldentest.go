// Package goldentest captures a program's stdout and compares it against a
// checked-in golden file. The examples/ smoke tests use it to pin the exact
// output of each demo program; run any of them with -update to regenerate
// the golden files after an intentional output change:
//
//	go test ./examples/... -run Golden -update
package goldentest

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// CaptureStdout runs f with os.Stdout redirected into a pipe and returns
// everything f wrote. Writes to os.Stderr (log output) pass through
// untouched. A panic inside f still restores os.Stdout.
func CaptureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("goldentest: pipe: %v", err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()

	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		r.Close()
		done <- string(b)
	}()

	f()

	os.Stdout = old
	w.Close()
	return <-done
}

// Compare checks got against the golden file, rewriting it under -update.
// On mismatch it reports the first differing line with context, which is
// usually enough to tell an intentional change from a regression.
func Compare(t *testing.T, goldenPath, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatalf("goldentest: %v", err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("goldentest: %v", err)
		}
		t.Logf("goldentest: wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("goldentest: %v (run with -update to create it)", err)
	}
	if got == string(want) {
		return
	}
	t.Errorf("output differs from %s (re-run with -update if intentional):\n%s",
		goldenPath, firstDiff(string(want), got))
}

// firstDiff renders the first line where want and got diverge.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  golden: %q\n  got   : %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("golden has %d lines, got %d", len(wl), len(gl))
}
