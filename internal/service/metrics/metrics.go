// Package metrics is a minimal, stdlib-only instrumentation registry that
// renders in the Prometheus text exposition format. It exists so sdfd can
// expose counters, gauges, and latency histograms on /metrics without
// pulling the Prometheus client library into a repository that is otherwise
// dependency-free.
//
// Supported shapes are exactly what the service needs: monotone counters
// (optionally split by one or more label keys), gauges computed at scrape
// time from a callback, cumulative histograms with fixed upper bounds, and
// quantile summaries backed by the internal/hdr log-bucketed histogram —
// the same structure the sdfload saturation harness records with, so the
// server-side and client-side views of a latency distribution are directly
// comparable.
// Rendering is deterministic: families print in registration order and
// labeled children print sorted by label values, so two scrapes of the same
// state are byte-identical.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/hdr"
)

// Registry holds a set of metric families and renders them on demand.
type Registry struct {
	mu   sync.Mutex
	fams []*family // guarded by mu
}

type family struct {
	name, help, typ string
	labels          []string // label keys for vec families, nil otherwise

	mu       sync.Mutex
	children map[string]renderer // guarded by mu; canonical label string -> child
	solo     renderer            // immutable after registration; unlabeled families
	gauge    func() float64      // immutable after registration; gauge families
}

type renderer interface {
	render(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range r.fams {
		if g.name == f.name {
			panic(fmt.Sprintf("metrics: duplicate family %q", f.name))
		}
	}
	r.fams = append(r.fams, f)
	return f
}

// Counter is a monotonically increasing value.
type Counter struct {
	mu  sync.Mutex
	val float64 // guarded by mu
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative.
func (c *Counter) Add(v float64) {
	c.mu.Lock()
	c.val += v
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val
}

func (c *Counter) render(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(c.Value()))
}

// Counter registers an unlabeled counter family and returns its counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, typ: "counter", solo: c})
	return c
}

// CounterVec is a counter family split by a fixed set of label keys.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	if len(labelKeys) == 0 {
		panic("metrics: CounterVec needs at least one label key")
	}
	f := &family{name: name, help: help, typ: "counter",
		labels: labelKeys, children: map[string]renderer{}}
	r.add(f)
	return &CounterVec{f: f}
}

// With returns the counter for the given label values (one per key, in
// registration order), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	child := v.f.child(labelValues, func() renderer { return &Counter{} })
	return child.(*Counter)
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, typ: "gauge", gauge: fn})
}

// Histogram is a cumulative histogram with fixed upper bounds.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // immutable after construction; sorted upper bounds, excluding +Inf
	buckets []uint64  // guarded by mu; observation counts per bound (non-cumulative)
	count   uint64    // guarded by mu
	sum     float64   // guarded by mu
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i]++
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

func (h *Histogram) render(w io.Writer, name, labels string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.buckets[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", formatFloat(b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", "+Inf"), h.count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count)
}

// DefLatencyBuckets are upper bounds (seconds) tuned for compile latencies:
// sub-millisecond cache hits through multi-second pipeline runs.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]uint64, len(b))}
}

// Histogram registers an unlabeled histogram family.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.add(&family{name: name, help: help, typ: "histogram", solo: h})
	return h
}

// HistogramVec is a histogram family split by a fixed set of label keys.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelKeys ...string) *HistogramVec {
	if len(labelKeys) == 0 {
		panic("metrics: HistogramVec needs at least one label key")
	}
	f := &family{name: name, help: help, typ: "histogram",
		labels: labelKeys, children: map[string]renderer{}}
	r.add(f)
	return &HistogramVec{f: f, bounds: bounds}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	child := v.f.child(labelValues, func() renderer { return newHistogram(v.bounds) })
	return child.(*Histogram)
}

// Summary is a quantile summary over observations in seconds, backed by an
// internal/hdr log-bucketed histogram of nanoseconds: mergeable, bounded
// memory, every quantile within 1/32 relative error. It renders in the
// Prometheus summary format (quantile-labeled samples plus _sum/_count);
// quantile="1" is the exact observed maximum.
type Summary struct {
	mu   sync.Mutex
	hist *hdr.Histogram // guarded by mu
	sum  float64        // guarded by mu
}

func newSummary() *Summary { return &Summary{hist: hdr.New()} }

// Observe records one observation in seconds.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.hist.Record(int64(v * 1e9))
	s.sum += v
	s.mu.Unlock()
}

// Count returns the number of observations.
func (s *Summary) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hist.Count()
}

// Quantile returns the q-quantile in seconds.
func (s *Summary) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return float64(s.hist.Quantile(q)) / 1e9
}

// summaryQuantiles are the rendered quantile labels.
var summaryQuantiles = []float64{0.5, 0.9, 0.99, 0.999, 1}

func (s *Summary) render(w io.Writer, name, labels string) {
	s.mu.Lock()
	snap := *s.hist
	sum := s.sum
	s.mu.Unlock()
	for _, q := range summaryQuantiles {
		fmt.Fprintf(w, "%s%s %s\n", name,
			mergeLabels(labels, "quantile", formatFloat(q)),
			formatFloat(float64(snap.Quantile(q))/1e9))
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, snap.Count())
}

// Summary registers an unlabeled summary family.
func (r *Registry) Summary(name, help string) *Summary {
	s := newSummary()
	r.add(&family{name: name, help: help, typ: "summary", solo: s})
	return s
}

// SummaryVec is a summary family split by a fixed set of label keys.
type SummaryVec struct{ f *family }

// SummaryVec registers a labeled summary family.
func (r *Registry) SummaryVec(name, help string, labelKeys ...string) *SummaryVec {
	if len(labelKeys) == 0 {
		panic("metrics: SummaryVec needs at least one label key")
	}
	f := &family{name: name, help: help, typ: "summary",
		labels: labelKeys, children: map[string]renderer{}}
	r.add(f)
	return &SummaryVec{f: f}
}

// With returns the summary for the given label values, creating it on first
// use.
func (v *SummaryVec) With(labelValues ...string) *Summary {
	child := v.f.child(labelValues, func() renderer { return newSummary() })
	return child.(*Summary)
}

func (f *family) child(labelValues []string, make func() renderer) renderer {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: family %q wants %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := labelString(f.labels, labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	f.children[key] = c
	return c
}

// WritePrometheus renders every family in the Prometheus text format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		switch {
		case f.gauge != nil:
			fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.gauge()))
		case f.solo != nil:
			f.solo.render(w, f.name, "")
		default:
			f.mu.Lock()
			keys := make([]string, 0, len(f.children))
			for k := range f.children {
				keys = append(keys, k)
			}
			children := make([]renderer, 0, len(keys))
			sort.Strings(keys)
			for _, k := range keys {
				children = append(children, f.children[k])
			}
			f.mu.Unlock()
			for i, k := range keys {
				children[i].render(w, f.name, k)
			}
		}
	}
}

// labelString renders {k1="v1",k2="v2"} with values escaped.
func labelString(keys, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels inserts one extra pair into an existing rendered label string.
func mergeLabels(labels, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatFloat renders values the way Prometheus expects: integers without a
// decimal point, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
