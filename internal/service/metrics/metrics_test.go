package metrics

import (
	"strings"
	"sync"
	"testing"
)

func scrape(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "total requests")
	c.Inc()
	c.Add(2)
	r.GaugeFunc("queue_depth", "queued tasks", func() float64 { return 7 })
	out := scrape(r)
	for _, want := range []string{
		"# HELP reqs_total total requests",
		"# TYPE reqs_total counter",
		"reqs_total 3",
		"# TYPE queue_depth gauge",
		"queue_depth 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "by route and code", "route", "code")
	v.With("compile", "200").Add(5)
	v.With("artifact", "404").Inc()
	v.With("compile", "429").Inc()
	out := scrape(r)
	a := strings.Index(out, `http_requests_total{route="artifact",code="404"} 1`)
	b := strings.Index(out, `http_requests_total{route="compile",code="200"} 5`)
	c := strings.Index(out, `http_requests_total{route="compile",code="429"} 1`)
	if a < 0 || b < 0 || c < 0 || !(a < b && b < c) {
		t.Fatalf("children missing or out of sorted order (%d %d %d):\n%s", a, b, c, out)
	}
	if scrape(r) != out {
		t.Fatal("two scrapes of identical state differ")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("stage_seconds", "per-stage latency", []float64{0.01, 0.1, 1}, "stage")
	h.With("alloc").Observe(0.005)
	h.With("alloc").Observe(0.05)
	h.With("alloc").Observe(5)
	out := scrape(r)
	for _, want := range []string{
		`stage_seconds_bucket{stage="alloc",le="0.01"} 1`,
		`stage_seconds_bucket{stage="alloc",le="0.1"} 2`,
		`stage_seconds_bucket{stage="alloc",le="1"} 2`,
		`stage_seconds_bucket{stage="alloc",le="+Inf"} 3`,
		`stage_seconds_sum{stage="alloc"} 5.055`,
		`stage_seconds_count{stage="alloc"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	if h.With("alloc").Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.With("alloc").Count())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	v := r.CounterVec("v_total", "v", "k")
	h := r.Histogram("h_seconds", "h", DefLatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Inc()
				v.With([]string{"a", "b"}[g%2]).Inc()
				h.Observe(float64(i) / 100)
				if i%50 == 0 {
					scrape(r)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Value() != 1600 {
		t.Fatalf("counter = %v, want 1600", c.Value())
	}
	if h.Count() != 1600 {
		t.Fatalf("histogram count = %d, want 1600", h.Count())
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total", "x")
	r.Counter("x_total", "again")
}
