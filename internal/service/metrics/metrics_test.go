package metrics

import (
	"strings"
	"sync"
	"testing"
)

func scrape(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "total requests")
	c.Inc()
	c.Add(2)
	r.GaugeFunc("queue_depth", "queued tasks", func() float64 { return 7 })
	out := scrape(r)
	for _, want := range []string{
		"# HELP reqs_total total requests",
		"# TYPE reqs_total counter",
		"reqs_total 3",
		"# TYPE queue_depth gauge",
		"queue_depth 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "by route and code", "route", "code")
	v.With("compile", "200").Add(5)
	v.With("artifact", "404").Inc()
	v.With("compile", "429").Inc()
	out := scrape(r)
	a := strings.Index(out, `http_requests_total{route="artifact",code="404"} 1`)
	b := strings.Index(out, `http_requests_total{route="compile",code="200"} 5`)
	c := strings.Index(out, `http_requests_total{route="compile",code="429"} 1`)
	if a < 0 || b < 0 || c < 0 || !(a < b && b < c) {
		t.Fatalf("children missing or out of sorted order (%d %d %d):\n%s", a, b, c, out)
	}
	if scrape(r) != out {
		t.Fatal("two scrapes of identical state differ")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("stage_seconds", "per-stage latency", []float64{0.01, 0.1, 1}, "stage")
	h.With("alloc").Observe(0.005)
	h.With("alloc").Observe(0.05)
	h.With("alloc").Observe(5)
	out := scrape(r)
	for _, want := range []string{
		`stage_seconds_bucket{stage="alloc",le="0.01"} 1`,
		`stage_seconds_bucket{stage="alloc",le="0.1"} 2`,
		`stage_seconds_bucket{stage="alloc",le="1"} 2`,
		`stage_seconds_bucket{stage="alloc",le="+Inf"} 3`,
		`stage_seconds_sum{stage="alloc"} 5.055`,
		`stage_seconds_count{stage="alloc"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	if h.With("alloc").Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.With("alloc").Count())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	v := r.CounterVec("v_total", "v", "k")
	h := r.Histogram("h_seconds", "h", DefLatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Inc()
				v.With([]string{"a", "b"}[g%2]).Inc()
				h.Observe(float64(i) / 100)
				if i%50 == 0 {
					scrape(r)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Value() != 1600 {
		t.Fatalf("counter = %v, want 1600", c.Value())
	}
	if h.Count() != 1600 {
		t.Fatalf("histogram count = %d, want 1600", h.Count())
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total", "x")
	r.Counter("x_total", "again")
}

func TestSummary(t *testing.T) {
	r := NewRegistry()
	s := r.SummaryVec("request_latency_seconds", "request latency quantiles", "route")
	// 100 observations 1ms..100ms: p50 ~ 50ms, p99 ~ 99ms, max exactly 100ms.
	for i := 1; i <= 100; i++ {
		s.With("compile").Observe(float64(i) / 1000)
	}
	out := scrape(r)
	for _, want := range []string{
		"# TYPE request_latency_seconds summary",
		`request_latency_seconds{route="compile",quantile="0.5"}`,
		`request_latency_seconds{route="compile",quantile="0.99"}`,
		`request_latency_seconds{route="compile",quantile="1"} 0.1`,
		`request_latency_seconds_count{route="compile"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	// Quantiles within one hdr bucket (1/32 relative) above the exact value.
	for _, c := range []struct {
		q, exact float64
	}{{0.5, 0.050}, {0.9, 0.090}, {0.99, 0.099}, {1, 0.100}} {
		got := s.With("compile").Quantile(c.q)
		if got < c.exact || got > c.exact*(1+1.0/32)+1e-9 {
			t.Errorf("q%.3g = %v, want within one bucket above %v", c.q, got, c.exact)
		}
	}
	if got := s.With("compile").Count(); got != 100 {
		t.Errorf("Count = %d, want 100", got)
	}
	// _sum is the exact float sum (100*101/2 ms = 5.05 s).
	if !strings.Contains(out, `request_latency_seconds_sum{route="compile"} 5.05`) {
		t.Errorf("summary _sum wrong:\n%s", out)
	}
}

func TestSummaryEmptyAndUnlabeled(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("idle_seconds", "never observed")
	out := scrape(r)
	for _, want := range []string{
		`idle_seconds{quantile="0.5"} 0`,
		`idle_seconds_sum 0`,
		`idle_seconds_count 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty summary scrape missing %q:\n%s", want, out)
		}
	}
	s.Observe(0.25)
	if got := s.Quantile(1); got != 0.25 {
		t.Errorf("max after one observation = %v, want 0.25", got)
	}
}

func TestSummaryConcurrent(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("lat_seconds", "latency")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Observe(0.001)
				_ = scrape(r)
			}
		}()
	}
	wg.Wait()
	if got := s.Count(); got != 8000 {
		t.Errorf("Count = %d, want 8000", got)
	}
}
