package service

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/systems"
)

// TestDrainRefusesNewWork pins the drain wire contract: every work-accepting
// route answers the exact shutting_down envelope with a Retry-After hint,
// /healthz flips to 503 draining (rotating the node out of peers' rings),
// and read-only routes — artifact fetch, peer artifact, job polling — keep
// serving so peers and pollers can finish what is already in flight.
func TestDrainRefusesNewWork(t *testing.T) {
	ts := newTestServer(t, Config{})
	text := graphText(t, systems.CDDAT())

	// Populate the cache and a finished job before the drain begins.
	resp, err := ts.cl.Compile(CompileRequest{Graph: text}, false)
	if err != nil {
		t.Fatal(err)
	}
	job, err := ts.cl.SubmitGridJob(GridRequest{Graph: text, Entries: []CompileOptions{{}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.cl.AwaitJob(job.ID, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	ts.srv.BeginDrain()

	for _, route := range []struct {
		path string
		body any
	}{
		{"/v1/compile", CompileRequest{Graph: text}},
		{"/v1/grid", GridRequest{Graph: text, Entries: []CompileOptions{{}}}},
		{"/v1/jobs/grid", GridRequest{Graph: text, Entries: []CompileOptions{{}}}},
	} {
		r := postJSON(t, ts.http.URL+route.path, route.body)
		var envelope struct {
			Error *APIError `json:"error"`
		}
		if err := json.NewDecoder(r.Body).Decode(&envelope); err != nil {
			t.Fatalf("%s: decoding drain refusal: %v", route.path, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s: status %d, want 503", route.path, r.StatusCode)
		}
		if r.Header.Get("Retry-After") == "" {
			t.Errorf("%s: drain refusal carries no Retry-After", route.path)
		}
		e := envelope.Error
		if e == nil || e.Status != http.StatusServiceUnavailable || e.Reason != "shutting_down" ||
			e.Message != "server is shutting down" || e.RetryAfterSeconds < 1 {
			t.Errorf("%s: drain envelope %+v, want pinned shutting_down shape", route.path, e)
		}
	}

	hz, err := http.Get(ts.http.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Errorf("healthz while draining: status %d %q, want 503 draining", hz.StatusCode, health.Status)
	}

	// Reads stay up: the cached artifact, the peer artifact API, and the
	// finished job resource all still serve.
	if _, err := ts.cl.Artifact(resp.Digest); err != nil {
		t.Errorf("artifact fetch while draining: %v", err)
	}
	pa, err := http.Get(ts.http.URL + "/v1/peer/artifact/" + resp.Digest)
	if err != nil {
		t.Fatal(err)
	}
	pa.Body.Close()
	if pa.StatusCode != http.StatusOK {
		t.Errorf("peer artifact while draining: status %d, want 200", pa.StatusCode)
	}
	if _, err := ts.cl.Job(job.ID, 0, 0, 0); err != nil {
		t.Errorf("job poll while draining: %v", err)
	}
}

// TestDrainLetsInFlightJobFinish is the graceful-shutdown half: a job
// running when the drain begins keeps running, pollers watch it finish, and
// AwaitJobs blocks until the runner is done (or its context expires).
func TestDrainLetsInFlightJobFinish(t *testing.T) {
	ts := newTestServer(t, Config{})
	release := make(chan struct{})
	ts.srv.testHookCompileStart = func() { <-release }
	text := graphText(t, systems.CDDAT())

	job, err := ts.cl.SubmitGridJob(GridRequest{Graph: text, Entries: []CompileOptions{{}, {Strategy: "apgan"}}})
	if err != nil {
		t.Fatal(err)
	}
	ts.srv.BeginDrain()

	// With the runner gated, the drain cannot complete within its grace
	// period — AwaitJobs surfaces the deadline instead of returning early.
	shortCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	err = ts.srv.AwaitJobs(shortCtx)
	cancel()
	if err == nil {
		t.Fatal("AwaitJobs returned nil while the job runner was still blocked")
	}

	// Polling survives the drain; the job is still running.
	snap, err := ts.cl.Job(job.ID, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != JobStateRunning {
		t.Fatalf("job state %q while gated, want running", snap.State)
	}

	close(release)
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ts.srv.AwaitJobs(waitCtx); err != nil {
		t.Fatalf("AwaitJobs after release: %v", err)
	}
	fin, err := ts.cl.Job(job.ID, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobStateDone || fin.Completed != 2 || fin.Failed != 0 {
		t.Fatalf("drained job %+v, want done with both entries ok", fin)
	}
}
