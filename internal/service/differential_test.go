package service

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/pass"
	"repro/internal/randsdf"
)

// TestPlannerDifferential is the planner's property test: across hundreds of
// random consistent acyclic graphs and the full configuration grid, the
// prefix-sharing plan executor must produce byte-identical service artifacts
// to point-at-a-time core.Compile, and the invariant oracle must reach the
// same verdict on both results. Run under -race (make grid) this also
// exercises the concurrent sharing of Lifetimes artifacts across allocator
// leaves.
func TestPlannerDifferential(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 30
	}
	configs := check.PipelineConfigs()
	points := make([]pass.Options, len(configs))
	wire := make([]CompileOptions, len(configs))
	for i, cfg := range configs {
		points[i] = cfg.Options()
		sname, err := StrategyName(cfg.Strategy)
		if err != nil {
			t.Fatal(err)
		}
		lname, err := LoopingName(cfg.Looping)
		if err != nil {
			t.Fatal(err)
		}
		var allocs []string
		for _, a := range cfg.Allocators {
			name, err := AllocatorName(a)
			if err != nil {
				t.Fatal(err)
			}
			allocs = append(allocs, name)
		}
		norm, err := normalize(CompileOptions{Strategy: sname, Looping: lname, Allocators: allocs})
		if err != nil {
			t.Fatal(err)
		}
		wire[i] = norm
	}

	for trial := 0; trial < n; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		g := randsdf.Graph(rng, randsdf.Config{
			Actors:   3 + rng.Intn(8),
			EdgeProb: 0.3,
			Window:   4,
		})
		g.Name = fmt.Sprintf("diff%d", trial)

		outs, err := pass.RunGridOutcomes(context.Background(), g, points, pass.PlanConfig{})
		if err != nil {
			t.Fatalf("trial %d: plan: %v", trial, err)
		}
		for pi, o := range outs {
			direct, derr := core.Compile(g, points[pi])
			if (derr == nil) != (o.Err == nil) {
				t.Fatalf("trial %d %v: direct err %v, planned err %v", trial, configs[pi], derr, o.Err)
			}
			if derr != nil {
				if derr.Error() != o.Err.Error() {
					t.Fatalf("trial %d %v: error text diverged: %q vs %q",
						trial, configs[pi], derr, o.Err)
				}
				continue
			}
			wantBytes, err := ArtifactBytes(direct, wire[pi])
			if err != nil {
				t.Fatal(err)
			}
			gotBytes, err := ArtifactBytes(o.Result, wire[pi])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantBytes, gotBytes) {
				t.Fatalf("trial %d %v: planned artifact differs from direct compile",
					trial, configs[pi])
			}
			// The oracle is expensive; spot-check a rotating subset instead
			// of every (graph, point) pair.
			if (trial+pi)%4 == 0 {
				dv := check.Pipeline(direct, check.Options{})
				pv := check.Pipeline(o.Result, check.Options{})
				if (dv == nil) != (pv == nil) {
					t.Fatalf("trial %d %v: oracle verdicts diverge: direct %v, planned %v",
						trial, configs[pi], dv, pv)
				}
				if dv != nil {
					t.Fatalf("trial %d %v: oracle violation on random graph: %v",
						trial, configs[pi], dv)
				}
			}
		}
	}
}
