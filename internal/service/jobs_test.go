package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/sdfio"
	"repro/internal/systems"
)

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	payload, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestJobLifecycle(t *testing.T) {
	ts := newTestServer(t, Config{})
	text := graphText(t, systems.CDDAT())
	entries := []CompileOptions{
		{},                   // 0: default point
		{Strategy: "apgan"},  // 1: distinct digest
		{},                   // 2: duplicate of 0, shares its digest
		{Strategy: "nosuch"}, // 3: invalid enum, fails in normalization
	}

	// Submission answers 202 with a Location and a running (or, if the
	// runner already won the race, done) resource; no artifact work happens
	// on the request path.
	resp := postJSON(t, ts.http.URL+"/v1/jobs/grid", GridRequest{Graph: text, Entries: entries})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	var job JobResource
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Total != len(entries) {
		t.Fatalf("job resource %+v lacks id/total", job)
	}
	if want := "/v1/jobs/" + job.ID; resp.Header.Get("Location") != want {
		t.Errorf("Location %q, want %q", resp.Header.Get("Location"), want)
	}

	fin, err := ts.cl.AwaitJob(job.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobStateDone || fin.Completed != 4 || fin.Failed != 1 {
		t.Fatalf("finished job %+v, want done with 4 completed / 1 failed", fin)
	}
	byIndex := map[int]JobEntryResult{}
	for _, r := range fin.Results {
		if _, dup := byIndex[r.Index]; dup {
			t.Fatalf("entry %d reported twice", r.Index)
		}
		byIndex[r.Index] = r
	}
	if len(byIndex) != 4 {
		t.Fatalf("%d entries reported, want 4", len(byIndex))
	}
	if byIndex[0].Digest == "" || byIndex[0].Digest != byIndex[2].Digest {
		t.Errorf("duplicate entries got digests %q / %q, want identical", byIndex[0].Digest, byIndex[2].Digest)
	}
	if byIndex[1].Digest == "" || byIndex[1].Digest == byIndex[0].Digest {
		t.Errorf("distinct option sets share digest %q", byIndex[1].Digest)
	}
	if e := byIndex[3].Error; e == nil || e.Reason != "bad_request" {
		t.Errorf("invalid entry error = %+v, want bad_request", byIndex[3].Error)
	}

	// Job results carry no artifact bytes; the digests resolve through the
	// node's content-addressed cache, byte-identical to the in-process
	// pipeline.
	parsed, err := sdfio.Parse(strings.NewReader(graphText(t, systems.CDDAT())))
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 1} {
		want, _, err := CompileArtifact(parsed, entries[idx])
		if err != nil {
			t.Fatal(err)
		}
		got, err := ts.cl.Artifact(byIndex[idx].Digest)
		if err != nil {
			t.Fatalf("artifact for entry %d: %v", idx, err)
		}
		if string(got) != string(want) {
			t.Errorf("entry %d artifact differs from in-process pipeline", idx)
		}
	}

	ts.mustMetric(t, `sdfd_job_entries_total{state="ok"}`, "3")
	ts.mustMetric(t, `sdfd_job_entries_total{state="error"}`, "1")

	// A second identical job is warm: the successes resolve as cache hits.
	job2, err := ts.cl.SubmitGridJob(GridRequest{Graph: text, Entries: entries[:3]})
	if err != nil {
		t.Fatal(err)
	}
	fin2, err := ts.cl.AwaitJob(job2.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fin2.Results {
		if !r.Cached {
			t.Errorf("rerun entry %d not served from cache", r.Index)
		}
	}
}

func TestJobLongPollAndPaging(t *testing.T) {
	ts := newTestServer(t, Config{})
	release := make(chan struct{})
	ts.srv.testHookCompileStart = func() { <-release }

	text := graphText(t, systems.CDDAT())
	entries := []CompileOptions{{}, {Strategy: "apgan"}, {Looping: "flat"}}
	job, err := ts.cl.SubmitGridJob(GridRequest{Graph: text, Entries: entries})
	if err != nil {
		t.Fatal(err)
	}

	// With the compile gated, an immediate poll sees a running job with no
	// terminal entries.
	snap, err := ts.cl.Job(job.ID, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != JobStateRunning || snap.Completed != 0 || len(snap.Results) != 0 {
		t.Fatalf("gated job snapshot %+v, want running with nothing terminal", snap)
	}

	// A long poll parks until the runner makes progress, then returns as
	// soon as any entry completes — well before the wait elapses.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	start := time.Now()
	polled, err := ts.cl.Job(job.ID, 10*time.Second, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if polled.Completed == 0 {
		t.Error("long poll returned with no progress")
	}
	if waited := time.Since(start); waited > 8*time.Second {
		t.Errorf("long poll blocked %v despite progress", waited)
	}

	fin, err := ts.cl.AwaitJob(job.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Failed != 0 || fin.Completed != len(entries) {
		t.Fatalf("job finished %+v, want all %d ok", fin, len(entries))
	}

	// Paging by entry index: offset skips below, limit caps the page, and
	// the offset is echoed for cursoring.
	page, err := ts.cl.Job(job.ID, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Offset != 1 || len(page.Results) != 1 || page.Results[0].Index != 1 {
		t.Fatalf("page offset=1 limit=1 = %+v, want exactly entry 1", page)
	}
	if tail, err := ts.cl.Job(job.ID, 0, len(entries), 0); err != nil {
		t.Fatal(err)
	} else if len(tail.Results) != 0 {
		t.Errorf("page past the end returned %d results", len(tail.Results))
	}
}

func TestJobValidation(t *testing.T) {
	ts := newTestServer(t, Config{JobMaxEntries: 2})
	text := graphText(t, systems.CDDAT())

	get := func(path string) int {
		resp, err := http.Get(ts.http.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/v1/jobs/nope"); got != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", got)
	}

	job, err := ts.cl.SubmitGridJob(GridRequest{Graph: text, Entries: []CompileOptions{{}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"?wait=-5s", "?wait=bogus", "?offset=-1", "?offset=x", "?limit=-2"} {
		if got := get("/v1/jobs/" + job.ID + q); got != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", q, got)
		}
	}

	for name, req := range map[string]GridRequest{
		"no entries":   {Graph: text},
		"over the cap": {Graph: text, Entries: []CompileOptions{{}, {Strategy: "apgan"}, {Looping: "flat"}}},
		"bad graph":    {Graph: "not sdf", Entries: []CompileOptions{{}}},
	} {
		resp := postJSON(t, ts.http.URL+"/v1/jobs/grid", req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestJobAdmissionCap(t *testing.T) {
	ts := newTestServer(t, Config{MaxJobs: 1})
	release := make(chan struct{})
	ts.srv.testHookCompileStart = func() { <-release }
	text := graphText(t, systems.CDDAT())

	job, err := ts.cl.SubmitGridJob(GridRequest{Graph: text, Entries: []CompileOptions{{}}})
	if err != nil {
		t.Fatal(err)
	}

	// The second submission is shed with the queue_full envelope while the
	// first is still running.
	resp := postJSON(t, ts.http.URL+"/v1/jobs/grid", GridRequest{Graph: text, Entries: []CompileOptions{{Strategy: "apgan"}}})
	var envelope struct {
		Error *APIError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || envelope.Error == nil || envelope.Error.Reason != "queue_full" {
		t.Fatalf("second submit: status %d error %+v, want 429 queue_full", resp.StatusCode, envelope.Error)
	}
	ts.mustMetric(t, `sdfd_load_shed_total{reason="jobs_full"}`, "1")

	close(release)
	if _, err := ts.cl.AwaitJob(job.ID, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	// Capacity freed: submission admits again.
	if _, err := ts.cl.SubmitGridJob(GridRequest{Graph: text, Entries: []CompileOptions{{Looping: "flat"}}}); err != nil {
		t.Fatalf("submit after the first job finished: %v", err)
	}
}
