package service

import "sync"

// flightGroup collapses concurrent identical compilations: the first
// request for a digest becomes the leader and actually runs the pipeline;
// every request that arrives while that flight is open just waits for the
// leader's bytes. Combined with the determinism-linted pipeline this gives
// the cache its headline property — N concurrent identical requests cost
// one compilation and all N observers receive byte-identical artifacts.
//
// Unlike x/sync/singleflight, the waiting side is channel-based so each
// waiter can give up independently when its own request deadline expires
// while the flight (and its eventual cache insert) continues for everyone
// else.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight // guarded by mu
}

// flight is one in-progress compilation. done is closed exactly once, after
// data/err are set.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// join returns the open flight for key, creating it if absent. leader is
// true for the caller that must run the work and then call finish.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.flights[key] = f
	return f, true
}

// finish publishes the leader's outcome and closes the flight. The entry is
// removed from the map first, so requests arriving after finish start a
// fresh flight (or, on success, hit the cache the leader populated).
func (g *flightGroup) finish(key string, f *flight, data []byte, err error) {
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	f.data, f.err = data, err
	close(f.done)
}
