package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a minimal sdfd API client, shared by `sdfc -server` and the
// `sdffuzz -daemon` replay mode. Non-2xx responses surface as *APIError so
// callers can distinguish load shedding (429/503) from compile failures.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8347". A bare
	// host:port is accepted and treated as http.
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) base() string {
	u := strings.TrimRight(c.BaseURL, "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// decodeError turns a non-2xx response into an *APIError, synthesizing one
// when the body is not the structured error envelope.
func decodeError(status int, body []byte) error {
	var envelope struct {
		Error *APIError `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err == nil && envelope.Error != nil {
		return envelope.Error
	}
	return &APIError{Status: status, Reason: "unexpected", Message: strings.TrimSpace(string(body))}
}

func (c *Client) do(req *http.Request) ([]byte, error) {
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp.StatusCode, body)
	}
	return body, nil
}

// Compile POSTs one compile request. verify=true adds ?verify=1, asking the
// server to run the invariant oracle on the compilation.
func (c *Client) Compile(req CompileRequest, verify bool) (*CompileResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	url := c.base() + "/v1/compile"
	if verify {
		url += "?verify=1"
	}
	httpReq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	body, err := c.do(httpReq)
	if err != nil {
		return nil, err
	}
	var out CompileResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("sdfd: decoding compile response: %w", err)
	}
	return &out, nil
}

// Artifact fetches the raw cached artifact bytes for a digest.
func (c *Client) Artifact(digest string) ([]byte, error) {
	httpReq, err := http.NewRequest(http.MethodGet, c.base()+"/v1/artifact/"+digest, nil)
	if err != nil {
		return nil, err
	}
	return c.do(httpReq)
}

// Healthz probes the server, returning nil when it reports healthy.
func (c *Client) Healthz() error {
	httpReq, err := http.NewRequest(http.MethodGet, c.base()+"/healthz", nil)
	if err != nil {
		return err
	}
	_, err = c.do(httpReq)
	return err
}
