package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"repro/internal/systems"
)

func gridEntries() []CompileOptions {
	var entries []CompileOptions
	for _, strat := range []string{"apgan", "rpmc"} {
		for _, la := range []string{"sdppo", "dppo", "chain", "flat"} {
			entries = append(entries, CompileOptions{Strategy: strat, Looping: la})
		}
	}
	return entries
}

func TestGridEndToEnd(t *testing.T) {
	ts := newTestServer(t, Config{})
	graph := graphText(t, systems.SatelliteReceiver())
	entries := gridEntries()
	resp, err := ts.cl.Grid(GridRequest{Graph: graph, Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(entries) {
		t.Fatalf("%d results for %d entries", len(resp.Results), len(entries))
	}
	if resp.PlannedNodes <= 0 || resp.PlannedNodes >= resp.NaiveNodes {
		t.Errorf("expected prefix sharing: planned %d, naive %d", resp.PlannedNodes, resp.NaiveNodes)
	}

	// Every entry's artifact must be byte-identical to a direct /v1/compile
	// of that entry — same digest, same bytes, and the grid run must have
	// warmed the single-compile cache.
	for i, res := range resp.Results {
		if res.Error != nil {
			t.Fatalf("entry %d failed: %v", i, res.Error)
		}
		single, err := ts.cl.Compile(CompileRequest{Graph: graph, Options: entries[i]}, false)
		if err != nil {
			t.Fatalf("entry %d direct compile: %v", i, err)
		}
		if single.Digest != res.Digest {
			t.Errorf("entry %d: grid digest %s != compile digest %s", i, res.Digest, single.Digest)
		}
		if !single.Cached {
			t.Errorf("entry %d: grid did not warm the compile cache", i)
		}
		if !bytes.Equal(single.Artifact, res.Artifact) {
			t.Errorf("entry %d: grid artifact differs from direct compile", i)
		}
	}

	// Grid metrics: one planned run, node savings recorded.
	if got := ts.metricValue(t, "sdfd_grid_runs_total"); got != "1" {
		t.Errorf("sdfd_grid_runs_total = %q, want 1", got)
	}
	if got := ts.metricValue(t, "sdfd_grid_shared_nodes_total"); got == "" || got == "0" {
		t.Errorf("sdfd_grid_shared_nodes_total = %q, want > 0", got)
	}
	if got := ts.metricValue(t, `sdfd_grid_pass_nodes_total{kind="repetitions"}`); got != "1" {
		t.Errorf("repetitions pass nodes = %q, want 1", got)
	}
}

func TestGridCacheHitsAndDuplicates(t *testing.T) {
	ts := newTestServer(t, Config{})
	graph := graphText(t, systems.CDDAT())
	warm := CompileOptions{Strategy: "apgan"}
	if _, err := ts.cl.Compile(CompileRequest{Graph: graph, Options: warm}, false); err != nil {
		t.Fatal(err)
	}
	// Entry 0 is cached; entries 1 and 2 are duplicates of each other and
	// must share one compilation and identical bytes.
	resp, err := ts.cl.Grid(GridRequest{Graph: graph, Entries: []CompileOptions{
		warm,
		{Strategy: "rpmc", Looping: "dppo"},
		{Strategy: "rpmc", Looping: "dppo"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Results[0].Cached {
		t.Error("warmed entry not served from cache")
	}
	if resp.Results[1].Cached || resp.Results[2].Cached {
		t.Error("cold entries reported cached")
	}
	if resp.Results[1].Digest != resp.Results[2].Digest ||
		!bytes.Equal(resp.Results[1].Artifact, resp.Results[2].Artifact) {
		t.Error("duplicate entries disagree")
	}
	// One distinct missed point: the assemble stats see exactly one node.
	if resp.PlannedNodes == 0 || resp.NaiveNodes == 0 {
		t.Errorf("stats missing: planned %d naive %d", resp.PlannedNodes, resp.NaiveNodes)
	}
}

func TestGridPerEntryErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	graph := graphText(t, systems.CDDAT())
	resp, err := ts.cl.Grid(GridRequest{Graph: graph, Entries: []CompileOptions{
		{Allocators: []string{"nope"}}, // bad options: per-entry 400
		{Strategy: "apgan"},            // fine
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error == nil || resp.Results[0].Error.Reason != "bad_request" {
		t.Errorf("bad entry error = %+v, want bad_request", resp.Results[0].Error)
	}
	if resp.Results[1].Error != nil || len(resp.Results[1].Artifact) == 0 {
		t.Errorf("healthy entry poisoned: %+v", resp.Results[1])
	}
}

func TestGridRequestLevelErrors(t *testing.T) {
	ts := newTestServer(t, Config{GridMaxEntries: 2})
	graph := graphText(t, systems.CDDAT())

	_, err := ts.cl.Grid(GridRequest{Graph: graph})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Errorf("empty entries: %v, want 400", err)
	}

	_, err = ts.cl.Grid(GridRequest{Graph: graph, Entries: make([]CompileOptions, 3)})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest ||
		!strings.Contains(apiErr.Message, "limit is 2") {
		t.Errorf("too many entries: %v, want 400 with limit message", err)
	}

	_, err = ts.cl.Grid(GridRequest{Graph: "not an sdf graph", Entries: []CompileOptions{{}}})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Errorf("bad graph: %v, want 400", err)
	}
}

func TestGridCompileFailureIsPerEntry(t *testing.T) {
	ts := newTestServer(t, Config{})
	// Inconsistent graph: compiles fail, but the grid request itself is 200
	// with a structured error on each entry.
	graph := "graph bad\nactor A\nactor B\nedge A B 2 3 0\nedge A B 1 1 0\n"
	resp, err := ts.cl.Grid(GridRequest{Graph: graph, Entries: gridEntries()[:2]})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range resp.Results {
		if res.Error == nil || res.Error.Reason != "compile_failed" {
			t.Errorf("entry %d: %+v, want compile_failed", i, res.Error)
		}
	}
}

func TestGridArtifactRoundTrip(t *testing.T) {
	ts := newTestServer(t, Config{})
	graph := graphText(t, systems.CDDAT())
	resp, err := ts.cl.Grid(GridRequest{Graph: graph, Entries: []CompileOptions{
		{Strategy: "apgan", Looping: "flat", EmitC: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Results[0]
	if res.Error != nil {
		t.Fatal(res.Error)
	}
	var art Artifact
	if err := json.Unmarshal(res.Artifact, &art); err != nil {
		t.Fatal(err)
	}
	if art.Graph != "cddat" || art.Schedule == "" || art.C == "" {
		t.Errorf("artifact incomplete: %+v", art.Metrics)
	}
	// The digest is fetchable via the shared artifact endpoint.
	fetched, err := ts.cl.Artifact(res.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fetched, res.Artifact) {
		t.Error("GET /v1/artifact bytes differ from grid response")
	}
}
