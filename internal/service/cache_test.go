package service

import (
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newArtifactCache(30)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("d%d", i), make([]byte, 10))
	}
	entries, bytes := c.stats()
	if entries != 3 || bytes != 30 {
		t.Fatalf("stats = (%d, %d), want (3, 30)", entries, bytes)
	}
	// Touch d0 so d1 is the least recently used, then push it out.
	if _, ok := c.get("d0"); !ok {
		t.Fatal("d0 missing")
	}
	c.put("d3", make([]byte, 10))
	if _, ok := c.get("d1"); ok {
		t.Error("d1 survived eviction despite being LRU")
	}
	for _, d := range []string{"d0", "d2", "d3"} {
		if _, ok := c.get(d); !ok {
			t.Errorf("%s evicted unexpectedly", d)
		}
	}
	if entries, bytes = c.stats(); entries != 3 || bytes != 30 {
		t.Errorf("post-eviction stats = (%d, %d), want (3, 30)", entries, bytes)
	}
}

func TestCacheOversizedArtifactSkipped(t *testing.T) {
	c := newArtifactCache(10)
	c.put("small", make([]byte, 8))
	c.put("big", make([]byte, 11))
	if _, ok := c.get("big"); ok {
		t.Error("over-budget artifact was cached")
	}
	if _, ok := c.get("small"); !ok {
		t.Error("inserting an over-budget artifact evicted existing entries")
	}
}

func TestCacheDuplicatePutRefreshesRecency(t *testing.T) {
	c := newArtifactCache(20)
	c.put("a", make([]byte, 10))
	c.put("b", make([]byte, 10))
	c.put("a", make([]byte, 10)) // refresh, not double-count
	if _, bytes := c.stats(); bytes != 20 {
		t.Fatalf("duplicate put double-counted bytes: %d", bytes)
	}
	c.put("c", make([]byte, 10)) // evicts b, the true LRU
	if _, ok := c.get("b"); ok {
		t.Error("b survived; duplicate put did not refresh a's recency")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite refreshed recency")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newArtifactCache(-1)
	c.put("d", []byte("x"))
	if _, ok := c.get("d"); ok {
		t.Error("disabled cache stored an entry")
	}
	if entries, bytes := c.stats(); entries != 0 || bytes != 0 {
		t.Errorf("disabled cache stats = (%d, %d)", entries, bytes)
	}
}
