package service

import (
	"container/list"
	"sync"
)

// artifactCache is the content-addressed compile cache: digest -> artifact
// bytes, LRU-evicted against a byte budget. Entries are immutable (the
// digest covers everything that determines the bytes) and only complete,
// successfully compiled artifacts are ever inserted — a failed or abandoned
// compilation leaves no trace, so there is no such thing as a partial or
// poisoned entry to invalidate.
type artifactCache struct {
	mu     sync.Mutex
	budget int64                    // immutable after construction
	bytes  int64                    // guarded by mu
	lru    *list.List               // guarded by mu; front = most recently used
	index  map[string]*list.Element // guarded by mu; digest -> element holding *cacheEntry
}

type cacheEntry struct {
	digest string
	data   []byte
}

// newArtifactCache builds a cache holding at most budget bytes of artifact
// data. budget <= 0 disables caching entirely (every Get misses, every Put
// is dropped) — useful for benchmarking the cold path.
func newArtifactCache(budget int64) *artifactCache {
	return &artifactCache{
		budget: budget,
		lru:    list.New(),
		index:  make(map[string]*list.Element),
	}
}

// get returns the artifact bytes for digest, refreshing its recency. The
// returned slice is the cached backing array; callers must not mutate it.
func (c *artifactCache) get(digest string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[digest]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// put inserts a complete artifact, evicting least-recently-used entries
// until the budget holds. Artifacts larger than the whole budget are not
// cached (inserting one would just evict everything and then itself).
// Re-inserting an existing digest only refreshes recency: bytes for one
// digest are immutable by construction.
func (c *artifactCache) put(digest string, data []byte) {
	size := int64(len(data))
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[digest]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.index[digest] = c.lru.PushFront(&cacheEntry{digest: digest, data: data})
	c.bytes += size
	for c.bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.index, e.digest)
		c.bytes -= int64(len(e.data))
	}
}

// stats returns the current entry count and byte footprint.
func (c *artifactCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len(), c.bytes
}
