package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sdfio"
	"repro/internal/systems"
)

// switchHandler lets an httptest frontend exist before its Server does:
// cluster nodes need every member's resolved address at construction time,
// so the listeners come up first and the handlers are wired in afterwards.
// Requests arriving in the gap answer 503, which is also what a booting
// daemon's peers would see.
type switchHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (sw *switchHandler) set(h http.Handler) {
	sw.mu.Lock()
	sw.h = h
	sw.mu.Unlock()
}

func (sw *switchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw.mu.Lock()
	h := sw.h
	sw.mu.Unlock()
	if h == nil {
		http.Error(w, "booting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// clusterTestNode is one member of an in-process test cluster.
type clusterTestNode struct {
	addr string // ring identity (host:port)
	srv  *Server
	http *httptest.Server
	cl   *Client
}

// newTestCluster boots n coupled in-process nodes and waits until every
// node's health monitor sees all its peers alive. The cluster config uses a
// long steady-state probe interval: once converged, liveness is effectively
// under test control via Monitor.SetAlive, so fault injection is
// deterministic instead of racing the prober.
func newTestCluster(t *testing.T, n int, mut func(i int, cfg *Config)) []*clusterTestNode {
	t.Helper()
	handlers := make([]*switchHandler, n)
	nodes := make([]*clusterTestNode, n)
	addrs := make([]string, n)
	for i := range handlers {
		handlers[i] = &switchHandler{}
		ts := httptest.NewServer(handlers[i])
		t.Cleanup(ts.Close)
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
		nodes[i] = &clusterTestNode{addr: addrs[i], http: ts, cl: &Client{BaseURL: ts.URL}}
	}
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		cfg := Config{Cluster: &ClusterConfig{
			Self:  addrs[i],
			Peers: peers,
			// While a peer reads dead, re-probes retry on a tight backoff so
			// convergence is fast; once alive, the next probe is an hour out
			// and the test owns the liveness state.
			ProbeInterval: time.Hour,
			RetryMin:      2 * time.Millisecond,
			RetryMax:      10 * time.Millisecond,
		}}
		if mut != nil {
			mut(i, &cfg)
		}
		srv := New(cfg)
		t.Cleanup(srv.Close)
		handlers[i].set(srv.Handler())
		nodes[i].srv = srv
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		converged := true
		for _, node := range nodes {
			if node.srv.cluster.mon.AliveCount() != n-1 {
				converged = false
			}
		}
		if converged {
			return nodes
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster never converged: not every node sees its peers alive")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// peerOutcomeTotal sums sdfd_peer_requests_total across peers for one
// outcome label on one node.
func peerOutcomeTotal(t *testing.T, node *clusterTestNode, outcome string) float64 {
	t.Helper()
	resp, err := http.Get(node.http.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := fmt.Fprint(&buf, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "sdfd_peer_requests_total{") ||
			!strings.Contains(line, `outcome="`+outcome+`"`) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v); err == nil {
			total += v
		}
	}
	return total
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestClusterDifferentialThreeNodes is the acceptance differential: the same
// compile served through any of three peers yields byte-identical artifacts,
// identical to the in-process pipeline, with real proxying and peer fetching
// happening underneath (every digest is posted to all three nodes, so at
// least two of the three posts per digest land on non-owners).
func TestClusterDifferentialThreeNodes(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	opts := []CompileOptions{{}, {Strategy: "apgan", Looping: "dppo"}}

	type artifactCase struct {
		digest string
		want   string
	}
	var cases []artifactCase
	for _, g := range exampleSystems() {
		text := graphText(t, g)
		parsed, err := sdfio.Parse(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range opts {
			want, _, err := CompileArtifact(parsed, o)
			if err != nil {
				t.Fatalf("%s: in-process compile: %v", g.Name, err)
			}
			digest := ""
			for ni, node := range nodes {
				resp, err := node.cl.Compile(CompileRequest{Graph: text, Options: o}, false)
				if err != nil {
					t.Fatalf("%s via node %d: %v", g.Name, ni, err)
				}
				if string(resp.Artifact) != string(want) {
					t.Errorf("%s via node %d: artifact bytes differ from in-process pipeline", g.Name, ni)
				}
				if digest == "" {
					digest = resp.Digest
				} else if resp.Digest != digest {
					t.Errorf("%s via node %d: digest %s, other nodes said %s", g.Name, ni, resp.Digest, digest)
				}
			}
			cases = append(cases, artifactCase{digest: digest, want: string(want)})
		}
	}

	// Routing actually crossed node boundaries: proxied compiles and peer
	// fetches both count as ok peer requests somewhere in the cluster.
	okTotal := 0.0
	for _, node := range nodes {
		okTotal += peerOutcomeTotal(t, node, "ok")
	}
	if okTotal == 0 {
		t.Error("no successful peer requests recorded across the cluster; routing never left the local node")
	}

	// Artifact fetch through every node: non-owners must peer-fetch, and the
	// fetched bytes must be the same sequence (content addressing admits one
	// answer). The served-by header marks the fetch path.
	peerFetches := 0
	for _, c := range cases {
		for ni, node := range nodes {
			resp, err := http.Get(node.http.URL + "/v1/artifact/" + c.digest)
			if err != nil {
				t.Fatal(err)
			}
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("artifact %s via node %d: status %d", c.digest, ni, resp.StatusCode)
			}
			if body != c.want {
				t.Errorf("artifact %s via node %d: bytes differ", c.digest, ni)
			}
			if resp.Header.Get(servedByHeader) != "" {
				peerFetches++
			}
		}
	}
	if peerFetches == 0 {
		t.Error("no artifact request was satisfied by a peer fetch")
	}
}

// TestClusterDegradesWhenOwnerUnreachable covers the two failure layers of
// synchronous routing: an owner that accepts no connections (proxy fails,
// the serving node compiles locally) and an owner marked dead (the ring
// rehashes ownership onto the survivor, no proxy attempted).
func TestClusterDegradesWhenOwnerUnreachable(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)

	// Find a graph whose digest is remote-owned from one node's view; with
	// two members, one side of any digest is a non-owner.
	text := graphText(t, systems.CDDAT())
	canonical, err := sdfio.Canonicalize(text)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := normalize(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	digest := Digest(canonical, norm)
	serving := nodes[0]
	owner := nodes[1]
	if serving.srv.cluster.ownerOf(digest) == serving.addr {
		serving, owner = owner, serving
	}

	// Owner still "alive" but refusing connections: the proxy attempt fails
	// and the serving node degrades to compiling locally.
	owner.http.Close()
	resp, err := serving.cl.Compile(CompileRequest{Graph: text}, false)
	if err != nil {
		t.Fatalf("compile with unreachable owner: %v", err)
	}
	if resp.Digest != digest || resp.Cached {
		t.Errorf("local fallback: digest %s cached=%v, want %s cached=false", resp.Digest, resp.Cached, digest)
	}
	if got := peerOutcomeTotal(t, serving, "error"); got == 0 {
		t.Error("no error peer request recorded for the failed proxy attempt")
	}

	// Owner marked dead: ownership rehashes to the survivor and a fresh
	// digest compiles locally with no peer involved.
	serving.srv.cluster.mon.SetAlive(owner.addr, false)
	if got := serving.srv.cluster.ownerOf(digest); got != serving.addr {
		t.Fatalf("with owner dead, ownerOf = %s, want self %s", got, serving.addr)
	}
	resp2, err := serving.cl.Compile(CompileRequest{Graph: text, Options: CompileOptions{Strategy: "apgan"}}, false)
	if err != nil {
		t.Fatalf("compile with owner dead: %v", err)
	}
	if resp2.Cached {
		t.Error("fresh digest reported cached")
	}
}

// TestClusterJobSurvivesPeerDeath is the acceptance fault test: a peer is
// killed in the middle of an async grid job it is serving entries for. The
// job must still complete, every entry exactly once, through rehash plus
// local fallback, with the degradation visible in metrics and in the owned
// keyspace fraction.
func TestClusterJobSurvivesPeerDeath(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	submit := nodes[0]

	text := graphText(t, systems.SatelliteReceiver())
	canonical, err := sdfio.Canonicalize(text)
	if err != nil {
		t.Fatal(err)
	}
	var entries []CompileOptions
	for _, strat := range []string{"rpmc", "apgan"} {
		for _, la := range []string{"sdppo", "dppo", "chain", "flat"} {
			entries = append(entries, CompileOptions{Strategy: strat, Looping: la})
			entries = append(entries, CompileOptions{Strategy: strat, Looping: la, Allocators: []string{"ffdur"}})
		}
	}

	// Pick the victim: the peer owning the most of this job's digests, so the
	// kill is guaranteed to land mid-dispatch.
	owned := map[string]int{}
	for _, e := range entries {
		norm, err := normalize(e)
		if err != nil {
			t.Fatal(err)
		}
		owned[submit.srv.cluster.ownerOf(Digest(canonical, norm))]++
	}
	var victim *clusterTestNode
	for _, node := range nodes[1:] {
		if victim == nil || owned[node.addr] > owned[victim.addr] {
			victim = node
		}
	}
	if owned[victim.addr] == 0 {
		t.Fatalf("degenerate ring: no digest of %d owned by any peer (%v)", len(entries), owned)
	}

	healthyFraction := submit.srv.cluster.ownedFraction()

	// The kill: the first entry the victim starts compiling severs every
	// client connection (failing in-flight dispatches) and marks the victim
	// dead on the survivors, exactly as their probes would shortly discover.
	var once sync.Once
	victim.srv.testHookCompileStart = func() {
		once.Do(func() {
			victim.http.CloseClientConnections()
			for _, node := range nodes {
				if node != victim {
					node.srv.cluster.mon.SetAlive(victim.addr, false)
				}
			}
		})
	}

	job, err := submit.cl.SubmitGridJob(GridRequest{Graph: text, Entries: entries})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if job.Total != len(entries) {
		t.Fatalf("job total %d, want %d", job.Total, len(entries))
	}
	fin, err := submit.cl.AwaitJob(job.ID, 120*time.Second)
	if err != nil {
		t.Fatalf("await: %v", err)
	}
	if fin.State != JobStateDone || fin.Completed != len(entries) || fin.Failed != 0 {
		t.Fatalf("job finished state=%s completed=%d failed=%d, want done/%d/0",
			fin.State, fin.Completed, fin.Failed, len(entries))
	}

	// Every entry exactly once, and every digest byte-identical to the
	// in-process pipeline, served from the submitting node.
	seen := map[int]bool{}
	parsed, err := sdfio.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range fin.Results {
		if seen[res.Index] {
			t.Fatalf("entry %d completed more than once", res.Index)
		}
		seen[res.Index] = true
		if res.Error != nil {
			t.Errorf("entry %d failed: %v", res.Index, res.Error)
			continue
		}
		want, _, err := CompileArtifact(parsed, entries[res.Index])
		if err != nil {
			t.Fatalf("entry %d in-process compile: %v", res.Index, err)
		}
		got, err := submit.cl.Artifact(res.Digest)
		if err != nil {
			t.Errorf("entry %d: artifact %s not served by submitting node: %v", res.Index, res.Digest, err)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("entry %d: artifact bytes differ from in-process pipeline", res.Index)
		}
	}
	if len(seen) != len(entries) {
		t.Errorf("%d of %d entries reported results", len(seen), len(entries))
	}

	// Degradation is observable: failed dispatches against the victim, and
	// the submitting node's effective keyspace grew when the victim died.
	if got := peerOutcomeTotal(t, submit, "error"); got == 0 {
		t.Error("no error peer requests recorded despite a peer dying mid-job")
	}
	if degraded := submit.srv.cluster.ownedFraction(); degraded <= healthyFraction {
		t.Errorf("owned fraction %v did not rise above healthy %v after peer death", degraded, healthyFraction)
	}
}
