package service

import (
	"reflect"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
)

func TestNormalizeDefaults(t *testing.T) {
	got, err := normalize(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := CompileOptions{
		Strategy:   "rpmc",
		Looping:    "sdppo",
		Allocators: []string{"ffdur", "ffstart"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("normalize zero = %+v, want %+v", got, want)
	}
}

func TestDigestStableAcrossSpellings(t *testing.T) {
	const graph = "graph g\nedge A B 3 2 0\n"
	base, err := normalize(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Spelled-out defaults, including duplicated allocators, digest the
	// same as the zero value.
	explicit, err := normalize(CompileOptions{
		Strategy:   "rpmc",
		Looping:    "sdppo",
		Allocators: []string{"ffdur", "ffstart", "ffdur"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if Digest(graph, base) != Digest(graph, explicit) {
		t.Error("explicit defaults digest differently from zero options")
	}
	// Every knob must move the digest.
	variants := []CompileOptions{
		{Strategy: "apgan"},
		{Looping: "flat"},
		{Allocators: []string{"bfdur"}},
		{Allocators: []string{"ffstart", "ffdur"}}, // order is priority, so it matters
		{Verify: true},
		{Verify: true, VerifyPeriods: 5},
		{Merging: true},
		{EmitC: true},
		{EmitVHDL: true},
	}
	seen := map[string]int{Digest(graph, base): -1}
	for i, v := range variants {
		n, err := normalize(v)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		d := Digest(graph, n)
		if prev, dup := seen[d]; dup {
			t.Errorf("variant %d digests identically to variant %d", i, prev)
		}
		seen[d] = i
	}
	if Digest(graph, base) == Digest(graph+" ", base) {
		t.Error("graph text does not move the digest")
	}
}

func TestNormalizeVerifyPeriods(t *testing.T) {
	got, err := normalize(CompileOptions{Verify: true})
	if err != nil || got.VerifyPeriods != 2 {
		t.Errorf("verify default periods = %d, err %v; want 2", got.VerifyPeriods, err)
	}
	// VerifyPeriods without Verify is dropped so it cannot split the cache.
	got, err = normalize(CompileOptions{VerifyPeriods: 7})
	if err != nil || got.VerifyPeriods != 0 {
		t.Errorf("periods without verify = %d, err %v; want 0", got.VerifyPeriods, err)
	}
	if _, err := normalize(CompileOptions{VerifyPeriods: -1}); err == nil {
		t.Error("negative verify_periods accepted")
	}
}

func TestNormalizeRejectsUnknownEnums(t *testing.T) {
	for _, o := range []CompileOptions{
		{Strategy: "zigzag"},
		{Looping: "unrolled"},
		{Allocators: []string{"stack"}},
	} {
		if _, err := normalize(o); err == nil {
			t.Errorf("normalize(%+v) accepted an unknown enum", o)
		}
	}
}

func TestWireNamesRoundTrip(t *testing.T) {
	for _, s := range []core.OrderStrategy{core.RPMC, core.APGAN} {
		name, err := StrategyName(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := parseStrategy(name)
		if err != nil || back != s {
			t.Errorf("strategy %v -> %q -> %v (%v)", s, name, back, err)
		}
	}
	if _, err := StrategyName(core.CustomOrder); err == nil {
		t.Error("custom order has a wire name; it must not be servable")
	}
	for _, l := range []core.LoopAlg{core.SDPPOLoops, core.DPPOLoops, core.ChainPreciseLoops, core.FlatLoops} {
		name, err := LoopingName(l)
		if err != nil {
			t.Fatal(err)
		}
		back, err := parseLooping(name)
		if err != nil || back != l {
			t.Errorf("looping %v -> %q -> %v (%v)", l, name, back, err)
		}
	}
	for _, a := range []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart, alloc.BestFitDuration} {
		name, err := AllocatorName(a)
		if err != nil {
			t.Fatal(err)
		}
		back, err := parseAllocator(name)
		if err != nil || back != a {
			t.Errorf("allocator %v -> %q -> %v (%v)", a, name, back, err)
		}
	}
}
