package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/service/metrics"
)

// forwardedHeader marks a request as already routed by a peer: the receiving
// node must serve it locally, never re-proxy. It carries the forwarding
// node's identity for observability.
const forwardedHeader = "X-Sdfd-Forwarded"

// servedByHeader names the peer that actually produced a proxied or
// peer-fetched response.
const servedByHeader = "X-Sdfd-Served-By"

// realClock injects the wall clock into the cluster primitives. The service
// package is outside the bannedcall deterministic set (a server needs real
// time); internal/cluster is inside it and must receive time from here.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// ClusterConfig turns a Server into one member of a sharded sdfd cluster.
// All members must agree on the member list (ring construction sorts it, so
// order is free) and on RingVersion; cmd/sdfd builds this from -peers.
type ClusterConfig struct {
	// Self is this node's advertised identity (host:port) — how peers spell
	// it in their own -peers lists. Required.
	Self string
	// Peers are the cluster members. Self is implied and may be included or
	// omitted; the ring is built over the union.
	Peers []string
	// ProbeInterval is the steady-state healthz probe period. Default 2s.
	ProbeInterval time.Duration
	// RetryMin/RetryMax bound the capped exponential backoff used both for
	// re-probing dead peers and between retries of failed peer calls.
	// Defaults 50ms/2s.
	RetryMin, RetryMax time.Duration
	// PeerAttempts bounds attempts per peer operation (fetch, job
	// dispatch). Default 3.
	PeerAttempts int
	// FetchPeers is how many ranked peers a cache miss probes for the
	// artifact before recompiling. Default 2.
	FetchPeers int
	// PeerTimeout bounds one peer artifact-fetch or healthz round trip.
	// Default 5s. (Proxied compiles use the server's RequestTimeout — they
	// wait on real pipeline work.)
	PeerTimeout time.Duration
	// Seed feeds the backoff jitter generators. Default 1.
	Seed int64
	// HTTPClient is used for all peer calls. Default http.DefaultClient.
	HTTPClient *http.Client
	// Clock paces probes and retries; tests inject fakes. Default wall
	// clock.
	Clock cluster.Clock
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.PeerAttempts <= 0 {
		c.PeerAttempts = 3
	}
	if c.FetchPeers <= 0 {
		c.FetchPeers = 2
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	return c
}

// clusterNode is the server's view of its cluster: the ring that assigns
// digests to members, the health monitor that gates membership, and the
// peer clients. Routing policy: a digest's effective owner is the first
// member of the ring's ranked order that is alive (self is always "alive"),
// so a dead peer's keyspace rehashes onto the surviving fallbacks without
// any coordination — every healthy member computes the same answer.
type clusterNode struct {
	cfg   ClusterConfig
	ring  *cluster.Ring
	mon   *cluster.Monitor
	fetch *cluster.FetchClient
	clock cluster.Clock

	peerReqs *metrics.CounterVec
}

func newClusterNode(cfg ClusterConfig, reg *metrics.Registry) *clusterNode {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		panic("service: ClusterConfig.Self is required")
	}
	ring, err := cluster.NewRing(append([]string{cfg.Self}, cfg.Peers...))
	if err != nil {
		panic("service: " + err.Error()) // unreachable: Self guarantees one member
	}
	cn := &clusterNode{
		cfg:   cfg,
		ring:  ring,
		fetch: &cluster.FetchClient{HTTP: cfg.HTTPClient},
		clock: cfg.Clock,
	}
	var others []string
	for _, m := range ring.Members() {
		if m != cfg.Self {
			others = append(others, m)
		}
	}
	cn.mon = cluster.NewMonitor(cluster.MonitorConfig{
		Peers:      others,
		Clock:      cfg.Clock,
		Interval:   cfg.ProbeInterval,
		BackoffMin: cfg.RetryMin,
		BackoffMax: cfg.RetryMax,
		Seed:       cfg.Seed,
		Probe: func(ctx context.Context, peer string) error {
			pctx, cancel := context.WithTimeout(ctx, cfg.PeerTimeout)
			defer cancel()
			return cn.fetch.Healthz(pctx, peer)
		},
	})
	cn.peerReqs = reg.CounterVec("sdfd_peer_requests_total",
		"outbound peer calls (artifact fetch, proxied compile, job dispatch) by peer and outcome (ok, miss, error)",
		"peer", "outcome")
	return cn
}

// ownerOf returns the effective owner of digest: the highest-ranked ring
// member that is self or currently alive. With every peer dead it returns
// self — full degradation to single-node operation.
func (cn *clusterNode) ownerOf(digest string) string {
	for _, m := range cn.ring.Ranked(digest) {
		if m == cn.cfg.Self || cn.mon.IsAlive(m) {
			return m
		}
	}
	return cn.cfg.Self
}

// ownedFraction backs the sdfd_ring_owned_fraction gauge: the fraction of a
// deterministic probe keyspace this node effectively owns, alive-gated. In
// a healthy N-node cluster it hovers near 1/N; it rises when peers die (the
// survivors absorb the dead keyspace) — a direct degraded-mode signal.
func (cn *clusterNode) ownedFraction() float64 {
	const probes = 512
	owned := 0
	for i := 0; i < probes; i++ {
		if cn.ownerOf(fmt.Sprintf("probe-%d", i)) == cn.cfg.Self {
			owned++
		}
	}
	return float64(owned) / probes
}

// fetchArtifact probes up to FetchPeers ranked alive peers for a cached
// artifact before the caller recompiles. Transport errors retry with
// backoff against the same peer; a miss (404) moves on immediately — a miss
// is an answer. Returns the artifact bytes and the serving peer.
func (cn *clusterNode) fetchArtifact(ctx context.Context, digest string) ([]byte, string, bool) {
	probed := 0
	for _, peer := range cn.ring.Ranked(digest) {
		if peer == cn.cfg.Self || !cn.mon.IsAlive(peer) {
			continue
		}
		if probed++; probed > cn.cfg.FetchPeers {
			break
		}
		bo := cluster.NewBackoff(cn.cfg.RetryMin, cn.cfg.RetryMax, cn.cfg.Seed)
		for attempt := 0; attempt < cn.cfg.PeerAttempts; attempt++ {
			pctx, cancel := context.WithTimeout(ctx, cn.cfg.PeerTimeout)
			data, err := cn.fetch.Artifact(pctx, peer, digest)
			cancel()
			if err == nil {
				cn.peerReqs.With(peer, "ok").Inc()
				return data, peer, true
			}
			if errors.Is(err, cluster.ErrNotFound) {
				cn.peerReqs.With(peer, "miss").Inc()
				break
			}
			cn.peerReqs.With(peer, "error").Inc()
			if attempt+1 < cn.cfg.PeerAttempts {
				select {
				case <-ctx.Done():
					return nil, "", false
				case <-cn.clock.After(bo.Next()):
				}
			}
		}
	}
	return nil, "", false
}

// postCompile sends one already-canonicalized compile request to a peer
// with the forwarded marker set, returning the peer's decoded response or
// its structured error.
func (cn *clusterNode) postCompile(ctx context.Context, peer, canonical string, norm CompileOptions) (*CompileResponse, error) {
	payload, err := json.Marshal(CompileRequest{Graph: canonical, Options: norm})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		cluster.BaseURL(peer)+"/v1/compile", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, cn.cfg.Self)
	resp, err := cn.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp.StatusCode, body)
	}
	var out CompileResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("sdfd: decoding peer compile response: %w", err)
	}
	return &out, nil
}

// compileRemote drives one job entry's remote dispatch: re-evaluate the
// effective owner each attempt (so a peer dying mid-job rehashes the entry,
// possibly back to self), post the compile, and back off between failures.
// ok=false means the caller must compile locally — either the entry
// rehashed home or every attempt failed (graceful degradation).
func (cn *clusterNode) compileRemote(ctx context.Context, canonical string, norm CompileOptions, digest string) (data []byte, peer string, ok bool) {
	bo := cluster.NewBackoff(cn.cfg.RetryMin, cn.cfg.RetryMax, cn.cfg.Seed)
	for attempt := 0; attempt < cn.cfg.PeerAttempts; attempt++ {
		owner := cn.ownerOf(digest)
		if owner == cn.cfg.Self {
			return nil, "", false
		}
		resp, err := cn.postCompile(ctx, owner, canonical, norm)
		if err == nil {
			cn.peerReqs.With(owner, "ok").Inc()
			return resp.Artifact, owner, true
		}
		cn.peerReqs.With(owner, "error").Inc()
		// Definitive peer-side verdicts (bad options, infeasible point)
		// would recur identically on retry AND on local fallback — the
		// pipeline is deterministic — so recompute locally without retries
		// to produce the same classified error.
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status < 500 &&
			apiErr.Status != http.StatusTooManyRequests && apiErr.Status != http.StatusRequestTimeout {
			return nil, "", false
		}
		if attempt+1 < cn.cfg.PeerAttempts {
			select {
			case <-ctx.Done():
				return nil, "", false
			case <-cn.clock.After(bo.Next()):
			}
		}
	}
	return nil, "", false
}

// proxyCompile relays a synchronous compile request to its owning peer,
// writing the peer's response through verbatim (the artifact envelope is
// content-addressed, so relaying bytes preserves the digest contract).
// Returns false — response unwritten — when the peer's answer is not
// definitive (transport failure, peer shedding or shutting down): the
// caller then degrades to local compilation.
func (cn *clusterNode) proxyCompile(w http.ResponseWriter, r *http.Request, owner, canonical string, norm CompileOptions, timeout time.Duration) bool {
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	payload, err := json.Marshal(CompileRequest{Graph: canonical, Options: norm})
	if err != nil {
		return false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		cluster.BaseURL(owner)+"/v1/compile", bytes.NewReader(payload))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, cn.cfg.Self)
	resp, err := cn.http().Do(req)
	if err != nil {
		cn.peerReqs.With(owner, "error").Inc()
		return false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		cn.peerReqs.With(owner, "error").Inc()
		return false
	}
	definitive := resp.StatusCode/100 == 2 ||
		(resp.StatusCode/100 == 4 &&
			resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusRequestTimeout)
	if !definitive {
		cn.peerReqs.With(owner, "error").Inc()
		return false
	}
	cn.peerReqs.With(owner, "ok").Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(servedByHeader, owner)
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
	return true
}

func (cn *clusterNode) http() *http.Client {
	if cn.cfg.HTTPClient != nil {
		return cn.cfg.HTTPClient
	}
	return http.DefaultClient
}

// handlePeerArtifact serves GET /v1/peer/artifact/{digest}: the internal
// peer API. It answers strictly from the local cache — no recursion into
// peer fetch or recompilation, so a fetch storm cannot amplify — and stays
// available while draining (peers may still need this node's cache during
// its shutdown grace period). Integrity headers let the fetcher re-verify
// the bytes (cluster.FetchClient).
func (s *Server) handlePeerArtifact(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	data, ok := s.cache.get(digest)
	if !ok {
		s.writeError(w, &APIError{
			Status: http.StatusNotFound, Reason: "not_found",
			Message: fmt.Sprintf("no cached artifact for digest %s", digest),
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cluster.DigestHeader, digest)
	w.Header().Set(cluster.SumHeader, cluster.Sum(data))
	_, _ = w.Write(data)
}
