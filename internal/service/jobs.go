package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/pass"
	"repro/internal/sdf"
)

// Job states. A job is created running and moves to done exactly once, when
// every entry has reached a terminal state. There is no failed job state:
// failures are per-entry, mirroring /v1/grid.
const (
	JobStateRunning = "running"
	JobStateDone    = "done"
)

// JobEntryResult is one grid entry's terminal state inside a job. Artifact
// bytes are not inlined — the runner caches every produced artifact
// locally, so GET /v1/artifact/{digest} on the submitting node serves them.
type JobEntryResult struct {
	// Index is the entry's position in the submitted Entries array.
	Index int `json:"index"`
	// Digest is the artifact's content address (set on success).
	Digest string `json:"digest,omitempty"`
	// Cached is true when the entry was satisfied straight from the cache.
	Cached bool `json:"cached,omitempty"`
	// ServedBy names the peer that compiled the entry; empty means this
	// node did.
	ServedBy string `json:"served_by,omitempty"`
	// Error is the entry's structured failure, nil on success.
	Error *APIError `json:"error,omitempty"`
}

// JobResource is the wire representation of an async grid job
// (POST /v1/jobs/grid, GET /v1/jobs/{id}).
type JobResource struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Total/Completed/Failed count entries: Completed is entries in a
	// terminal state (successes and failures both), Failed the errored
	// subset. State is done exactly when Completed == Total.
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Offset echoes the requested page start. Results holds the terminal
	// entries with Index >= Offset, ascending, at most the requested limit;
	// entries still in flight are simply absent, so pollers page with
	// offset = last result's Index + 1.
	Offset  int              `json:"offset"`
	Results []JobEntryResult `json:"results,omitempty"`
}

// job is the in-memory job record. results is indexed by entry; a nil slot
// is an entry still in flight. changed is closed and replaced on every
// completion, broadcasting to long-pollers.
type job struct {
	id    string
	total int

	mu        sync.Mutex
	results   []*JobEntryResult
	completed int
	failed    int
	changed   chan struct{}
}

func (j *job) complete(res JobEntryResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if res.Index < 0 || res.Index >= j.total || j.results[res.Index] != nil {
		return // exactly-once: late duplicates (e.g. a raced fallback) are dropped
	}
	j.results[res.Index] = &res
	j.completed++
	if res.Error != nil {
		j.failed++
	}
	close(j.changed)
	j.changed = make(chan struct{})
}

func (j *job) isDone() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed == j.total
}

// resource snapshots the job as its wire representation, paging results by
// entry index.
func (j *job) resource(offset, limit int) *JobResource {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := &JobResource{
		ID: j.id, State: JobStateRunning,
		Total: j.total, Completed: j.completed, Failed: j.failed,
		Offset: offset,
	}
	if j.completed == j.total {
		r.State = JobStateDone
	}
	if limit <= 0 || limit > j.total {
		limit = j.total
	}
	for i := offset; i >= 0 && i < j.total && len(r.Results) < limit; i++ {
		if j.results[i] != nil {
			r.Results = append(r.Results, *j.results[i])
		}
	}
	return r
}

// awaitChange blocks until the job completes, its completed count advances
// past since, the wait elapses, or the client disconnects — the long-poll
// core of GET /v1/jobs/{id}?wait=.
func (j *job) awaitChange(ctx context.Context, wait time.Duration, since int) {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		j.mu.Lock()
		completed, ch := j.completed, j.changed
		j.mu.Unlock()
		if completed == j.total || completed > since {
			return
		}
		select {
		case <-ch:
		case <-timer.C:
			return
		case <-ctx.Done():
			return
		}
	}
}

// jobStore holds the server's jobs: monotonic ids, bounded retention of
// finished jobs (oldest finished are evicted past the cap so a long-lived
// daemon's job map cannot grow without bound).
type jobStore struct {
	mu    sync.Mutex
	seq   int
	jobs  map[string]*job
	order []string
}

const jobRetention = 256

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*job)}
}

func (st *jobStore) create(total int) *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	j := &job{
		id:      "j" + strconv.Itoa(st.seq),
		total:   total,
		results: make([]*JobEntryResult, total),
		changed: make(chan struct{}),
	}
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	for len(st.order) > jobRetention {
		old := st.jobs[st.order[0]]
		if old != nil && !old.isDone() {
			break // never evict a running job
		}
		delete(st.jobs, st.order[0])
		st.order = st.order[1:]
	}
	return j
}

func (st *jobStore) get(id string) *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.jobs[id]
}

func (st *jobStore) inflight() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, j := range st.jobs {
		if !j.isDone() {
			n++
		}
	}
	return n
}

// handleJobSubmit accepts POST /v1/jobs/grid: validate the grid-shaped body,
// create the job, start the runner, and answer 202 immediately with the job
// resource. Per-entry work — normalization, cache probes, planning, peer
// dispatch — all happens in the runner; a submission only pays for parsing.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.shed.With("shutting_down").Inc()
		s.writeError(w, &APIError{
			Status: http.StatusServiceUnavailable, Reason: "shutting_down",
			Message:           "server is shutting down",
			RetryAfterSeconds: s.retryAfterSeconds(),
		})
		return
	}
	req, canonical, g, apiErr := s.parseGridRequest(w, r, s.cfg.JobMaxEntries)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	if s.jobs.inflight() >= s.cfg.MaxJobs {
		s.shed.With("jobs_full").Inc()
		s.writeError(w, &APIError{
			Status: http.StatusTooManyRequests, Reason: "queue_full",
			Message:           fmt.Sprintf("too many jobs in flight (limit %d); retry shortly", s.cfg.MaxJobs),
			RetryAfterSeconds: s.retryAfterSeconds(),
		})
		return
	}
	j := s.jobs.create(len(req.Entries))
	s.jobsWG.Add(1)
	go s.runJob(j, g, canonical, req.Entries)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	s.writeJSON(w, http.StatusAccepted, j.resource(0, 0))
}

// handleJobGet serves GET /v1/jobs/{id}[?wait=5s&offset=0&limit=100]: a
// snapshot of the job, optionally long-polling until progress. Not gated on
// draining — watching an in-flight job finish is exactly what a drain is
// for.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		s.writeError(w, &APIError{
			Status: http.StatusNotFound, Reason: "not_found",
			Message: fmt.Sprintf("no job %q (it may have been evicted after finishing)", r.PathValue("id")),
		})
		return
	}
	q := r.URL.Query()
	offset, limit := 0, 0
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, &APIError{Status: http.StatusBadRequest, Reason: "bad_request",
				Message: fmt.Sprintf("offset %q must be a non-negative integer", v)})
			return
		}
		offset = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, &APIError{Status: http.StatusBadRequest, Reason: "bad_request",
				Message: fmt.Sprintf("limit %q must be a non-negative integer", v)})
			return
		}
		limit = n
	}
	if v := q.Get("wait"); v != "" {
		wait, err := time.ParseDuration(v)
		if err != nil || wait < 0 {
			s.writeError(w, &APIError{Status: http.StatusBadRequest, Reason: "bad_request",
				Message: fmt.Sprintf("wait %q must be a non-negative Go duration (e.g. 5s)", v)})
			return
		}
		if s.cfg.RequestTimeout > 0 && wait > s.cfg.RequestTimeout {
			wait = s.cfg.RequestTimeout
		}
		j.awaitChange(r.Context(), wait, j.resource(0, 0).Completed)
	}
	s.writeJSON(w, http.StatusOK, j.resource(offset, limit))
}

// jobMiss is one deduplicated digest a job must produce, and the entry
// indices waiting on it.
type jobMiss struct {
	norm    CompileOptions
	digest  string
	entries []int
}

// recordMiss marks every entry behind one miss terminal, with shared
// outcome metrics.
func (s *Server) recordMiss(j *job, m *jobMiss, servedBy string, apiErr *APIError) {
	for _, idx := range m.entries {
		res := JobEntryResult{Index: idx, ServedBy: servedBy, Error: apiErr}
		if apiErr == nil {
			res.Digest = m.digest
		}
		j.complete(res)
		if apiErr == nil {
			s.jobEntries.With("ok").Inc()
		} else {
			s.jobEntries.With("error").Inc()
		}
	}
}

// runJob is the job runner goroutine: resolve entries against the cache,
// partition the misses by effective ring owner, execute the local batch as
// one prefix-shared plan (streaming per-entry completions as pass leaves
// finish), dispatch remote entries to their owners, and fall back to local
// compilation for any remote dispatch that fails. Runs on the server's base
// context so a graceful drain lets it finish; a hard Close cancels it and
// the remaining entries complete with shutdown errors — every entry reaches
// a terminal state exactly once either way.
func (s *Server) runJob(j *job, g *sdf.Graph, canonical string, entries []CompileOptions) {
	defer s.jobsWG.Done()
	ctx := s.baseCtx

	var (
		misses  []*jobMiss
		missFor = map[string]*jobMiss{}
	)
	for i, entry := range entries {
		norm, err := normalize(entry)
		if err != nil {
			j.complete(JobEntryResult{Index: i, Error: &APIError{
				Status: http.StatusBadRequest, Reason: "bad_request",
				Message: fmt.Sprintf("options: %v", err),
			}})
			s.jobEntries.With("error").Inc()
			continue
		}
		digest := Digest(canonical, norm)
		if _, ok := s.cache.get(digest); ok {
			s.cacheHits.Inc()
			j.complete(JobEntryResult{Index: i, Digest: digest, Cached: true})
			s.jobEntries.With("ok").Inc()
			continue
		}
		s.cacheMisses.Inc()
		m := missFor[digest]
		if m == nil {
			m = &jobMiss{norm: norm, digest: digest}
			missFor[digest] = m
			misses = append(misses, m)
		}
		m.entries = append(m.entries, i)
	}
	if len(misses) == 0 {
		return
	}

	local := misses
	var remote []*jobMiss
	if cn := s.cluster; cn != nil {
		local = local[:0:0]
		for _, m := range misses {
			if cn.ownerOf(m.digest) != cn.cfg.Self {
				remote = append(remote, m)
			} else {
				local = append(local, m)
			}
		}
	}

	// Remote dispatch overlaps the local batch: peers compile their shards
	// while this node runs its own plan.
	var wg sync.WaitGroup
	if len(remote) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.runJobRemote(ctx, j, g, canonical, remote)
		}()
	}
	s.runJobLocal(ctx, j, g, canonical, local)
	wg.Wait()
}

// runJobLocal executes this node's share of a job as one prefix-shared
// plan, inline on the runner goroutine (not through the admission pool: an
// accepted job must finish even under synchronous load, and the plan's own
// executor already bounds parallelism). OnOutcome streams each entry into
// the job the moment its pass leaf finishes.
func (s *Server) runJobLocal(ctx context.Context, j *job, g *sdf.Graph, canonical string, misses []*jobMiss) {
	if len(misses) == 0 {
		return
	}
	if s.testHookCompileStart != nil {
		s.testHookCompileStart()
	}
	points := make([]core.Options, len(misses))
	for i, m := range misses {
		copts, err := coreOptions(m.norm)
		if err != nil {
			// normalize vetted every enum spelling; fail the whole local
			// batch loudly rather than compile the wrong configuration.
			apiErr := &APIError{Status: http.StatusInternalServerError, Reason: "bad_request",
				Message: fmt.Sprintf("normalized options failed to convert: %v", err)}
			for _, mm := range misses {
				s.recordMiss(j, mm, "", apiErr)
			}
			return
		}
		points[i] = copts
	}
	cctx, cancel := context.WithTimeout(ctx, s.cfg.CompileTimeout)
	defer cancel()
	s.gridRuns.Inc()
	plan, err := pass.NewPlan(g, points, pass.PlanConfig{
		GraphKey: Digest(canonical, CompileOptions{}),
		Store:    s.planStore(),
		OnEvent: func(e pass.Event) {
			if e.Enter {
				s.gridNodes.With(e.Kind.String()).Inc()
			}
		},
		OnOutcome: func(pt int, o pass.Outcome) {
			m := misses[pt]
			if o.Err != nil {
				s.recordMiss(j, m, "", s.classifyCompileError(o.Err))
				return
			}
			data, err := ArtifactBytes(o.Result, m.norm)
			if err != nil {
				s.recordMiss(j, m, "", s.classifyCompileError(err))
				return
			}
			s.cache.put(m.digest, data)
			s.recordMiss(j, m, "", nil)
		},
	})
	if err != nil {
		apiErr := s.classifyCompileError(err)
		for _, m := range misses {
			s.recordMiss(j, m, "", apiErr)
		}
		return
	}
	_ = plan.Run(cctx)
	s.countLoads(plan.Stats())
}

// jobRemoteConcurrency bounds concurrent peer dispatches per job.
const jobRemoteConcurrency = 4

// runJobRemote dispatches each remote-owned miss to its effective owner and
// locally compiles any entry whose dispatch failed — the rehash+fallback
// half of fault tolerance. Fetched artifacts are cached locally so the
// submitting node can serve every digest the job reports.
func (s *Server) runJobRemote(ctx context.Context, j *job, g *sdf.Graph, canonical string, misses []*jobMiss) {
	cn := s.cluster
	sem := make(chan struct{}, jobRemoteConcurrency)
	var (
		wg       sync.WaitGroup
		fellBack []*jobMiss
		mu       sync.Mutex
	)
	for _, m := range misses {
		wg.Add(1)
		go func(m *jobMiss) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				mu.Lock()
				fellBack = append(fellBack, m)
				mu.Unlock()
				return
			}
			defer func() { <-sem }()
			dctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
			data, peer, ok := cn.compileRemote(dctx, canonical, m.norm, m.digest)
			cancel()
			if ok {
				s.cache.put(m.digest, data)
				s.recordMiss(j, m, peer, nil)
				return
			}
			mu.Lock()
			fellBack = append(fellBack, m)
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	if len(fellBack) > 0 {
		// Deterministic order for the fallback batch (dispatch goroutines
		// finish in any order).
		ordered := make([]*jobMiss, 0, len(fellBack))
		for _, m := range misses {
			for _, fb := range fellBack {
				if fb == m {
					ordered = append(ordered, m)
					break
				}
			}
		}
		s.runJobLocal(ctx, j, g, canonical, ordered)
	}
}

// SubmitGridJob POSTs one async grid job, returning the freshly created job
// resource (state running).
func (c *Client) SubmitGridJob(req GridRequest) (*JobResource, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequest(http.MethodPost, c.base()+"/v1/jobs/grid", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	body, err := c.do(httpReq)
	if err != nil {
		return nil, err
	}
	var out JobResource
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("sdfd: decoding job resource: %w", err)
	}
	return &out, nil
}

// Job fetches a job resource. wait > 0 long-polls until progress or the
// wait elapses; offset/limit page the results by entry index (limit 0 means
// no limit).
func (c *Client) Job(id string, wait time.Duration, offset, limit int) (*JobResource, error) {
	url := fmt.Sprintf("%s/v1/jobs/%s?offset=%d&limit=%d", c.base(), id, offset, limit)
	if wait > 0 {
		url += "&wait=" + wait.String()
	}
	httpReq, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(httpReq)
	if err != nil {
		return nil, err
	}
	var out JobResource
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("sdfd: decoding job resource: %w", err)
	}
	return &out, nil
}

// AwaitJob long-polls a job until it is done or the deadline passes,
// returning the final resource with all results loaded.
func (c *Client) AwaitJob(id string, deadline time.Duration) (*JobResource, error) {
	start := time.Now()
	for {
		j, err := c.Job(id, 2*time.Second, 0, 0)
		if err != nil {
			return nil, err
		}
		if j.State == JobStateDone {
			return j, nil
		}
		if time.Since(start) > deadline {
			return j, fmt.Errorf("sdfd: job %s still %s after %v (%d/%d entries)", id, j.State, deadline, j.Completed, j.Total)
		}
	}
}
