package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/core"
)

// CompileOptions is the wire form of the pipeline configuration accepted by
// POST /v1/compile. Every field participates in the content-addressed cache
// key — see cacheKey below, whose struct-conversion guard makes forgetting
// a new field a compile error rather than a silent cache-poisoning bug.
//
// Zero values select the paper's recommended configuration: RPMC ordering,
// SDPPO looping, first-fit-by-duration + first-fit-by-start allocation.
type CompileOptions struct {
	// Strategy is the lexical ordering heuristic: "rpmc" (default) or
	// "apgan". Custom orders are a library-only feature; the service
	// rejects them.
	Strategy string `json:"strategy,omitempty"`
	// Looping is the loop-hierarchy post-optimization: "sdppo" (default),
	// "dppo", "chain", or "flat".
	Looping string `json:"looping,omitempty"`
	// Allocators lists storage allocators to try ("ffdur", "ffstart",
	// "bfdur"); the smallest feasible result wins. Default: ffdur,ffstart.
	Allocators []string `json:"allocators,omitempty"`
	// Verify runs the token-level shared-memory simulator for
	// VerifyPeriods periods (default 2) during compilation.
	Verify        bool `json:"verify,omitempty"`
	VerifyPeriods int  `json:"verify_periods,omitempty"`
	// Merging applies the Sec. 12 buffer-merging extension.
	Merging bool `json:"merging,omitempty"`
	// EmitC / EmitVHDL include generated code in the artifact.
	EmitC    bool `json:"emit_c,omitempty"`
	EmitVHDL bool `json:"emit_vhdl,omitempty"`
	// Partitions, when >= 2, additionally compiles a P-way phased parallel
	// schedule with a per-segment storage allocation; the artifact gains a
	// partition section (and threaded C when emit_c is set). 0 and 1 both
	// normalize to 0 — the sequential pipeline (a 1-way partitioning is the
	// sequential schedule). Capped at 64 workers.
	Partitions int `json:"partitions,omitempty"`
}

// cacheKey is the serialized form of CompileOptions inside the cache
// digest. Field-list completeness is enforced twice over: sdflint's
// keycomplete analyzer checks the mirror covers every CompileOptions field
// (and names the missing one when it doesn't), and the JSON encoding of
// cacheKey marshals every exported field, so a field present in both
// structs cannot be dropped from the digest. The conversion in
// digestOptions additionally keeps the field order aligned.
//
// On top of that, the enum spellings stored here flow through the
// exhaustive-checked switches below (StrategyName, LoopingName,
// AllocatorName), so adding a pipeline knob *value* without deciding its
// cache-key spelling fails sdflint's exhaustive analyzer.
//
//lint:keymap CompileOptions
type cacheKey struct {
	Strategy      string   // digest JSON, normalized via StrategyName
	Looping       string   // digest JSON, normalized via LoopingName
	Allocators    []string // digest JSON, deduplicated via AllocatorName
	Verify        bool     // digest JSON; changes the artifact (verification report)
	VerifyPeriods int      // digest JSON; 0 unless Verify is set (see normalize)
	Merging       bool     // digest JSON; changes the artifact (merged allocation)
	EmitC         bool     // digest JSON; changes the artifact (embedded C source)
	EmitVHDL      bool     // digest JSON; changes the artifact (embedded VHDL source)
	Partitions    int      // digest JSON; changes the artifact (partition section, threaded C)
}

// digestOptions serializes normalized options for the cache digest.
func digestOptions(o CompileOptions) []byte {
	data, err := json.Marshal(cacheKey(o))
	if err != nil {
		// cacheKey contains only strings, bools, ints and string slices;
		// Marshal cannot fail on it.
		panic(fmt.Sprintf("service: marshal cache key: %v", err))
	}
	return data
}

// SchemaVersion is the artifact schema version: the digest frame prefix and
// the artifact's schema field. v2 added the partition section, the schema
// field itself, and the parallel_total metric.
const SchemaVersion = "sdfd/v2"

// Digest computes the content address of one (canonical graph text,
// normalized options) pair: hex SHA-256 over a versioned frame. Change
// SchemaVersion whenever the artifact schema changes incompatibly so stale
// cache entries (and external stores keyed on the digest) cannot alias.
func Digest(canonicalGraph string, normalized CompileOptions) string {
	h := sha256.New()
	h.Write([]byte(SchemaVersion + "\n"))
	h.Write([]byte(canonicalGraph))
	h.Write([]byte{0})
	h.Write(digestOptions(normalized))
	return hex.EncodeToString(h.Sum(nil))
}

// StrategyName is the canonical wire spelling of an ordering strategy. The
// switch is exhaustive-checked by sdflint: adding a core.OrderStrategy
// constant without deciding its service spelling fails the lint gate.
func StrategyName(s core.OrderStrategy) (string, error) {
	switch s {
	case core.RPMC:
		return "rpmc", nil
	case core.APGAN:
		return "apgan", nil
	case core.CustomOrder:
		return "", fmt.Errorf("service: custom lexical orders are not servable")
	default:
		panic(fmt.Sprintf("service: unknown order strategy %v", s))
	}
}

// LoopingName is the canonical wire spelling of a looping algorithm
// (exhaustive-checked, see StrategyName).
func LoopingName(l core.LoopAlg) (string, error) {
	switch l {
	case core.SDPPOLoops:
		return "sdppo", nil
	case core.DPPOLoops:
		return "dppo", nil
	case core.ChainPreciseLoops:
		return "chain", nil
	case core.FlatLoops:
		return "flat", nil
	default:
		panic(fmt.Sprintf("service: unknown looping algorithm %v", l))
	}
}

// AllocatorName is the canonical wire spelling of an allocation strategy
// (exhaustive-checked, see StrategyName).
func AllocatorName(s alloc.Strategy) (string, error) {
	switch s {
	case alloc.FirstFitDuration:
		return "ffdur", nil
	case alloc.FirstFitStart:
		return "ffstart", nil
	case alloc.BestFitDuration:
		return "bfdur", nil
	default:
		panic(fmt.Sprintf("service: unknown allocator %v", s))
	}
}

func parseStrategy(s string) (core.OrderStrategy, error) {
	switch s {
	case "", "rpmc":
		return core.RPMC, nil
	case "apgan":
		return core.APGAN, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want rpmc or apgan)", s)
	}
}

func parseLooping(s string) (core.LoopAlg, error) {
	switch s {
	case "", "sdppo":
		return core.SDPPOLoops, nil
	case "dppo":
		return core.DPPOLoops, nil
	case "chain":
		return core.ChainPreciseLoops, nil
	case "flat":
		return core.FlatLoops, nil
	default:
		return 0, fmt.Errorf("unknown looping %q (want sdppo, dppo, chain, or flat)", s)
	}
}

func parseAllocator(s string) (alloc.Strategy, error) {
	switch s {
	case "ffdur":
		return alloc.FirstFitDuration, nil
	case "ffstart":
		return alloc.FirstFitStart, nil
	case "bfdur":
		return alloc.BestFitDuration, nil
	default:
		return 0, fmt.Errorf("unknown allocator %q (want ffdur, ffstart, or bfdur)", s)
	}
}

// normalize validates o and rewrites it to canonical form: every enum
// spelling round-tripped through its typed constant (so aliases and
// defaults collapse onto one spelling), allocators deduplicated preserving
// first occurrence (order no longer affects results — equal totals are
// tie-broken by allocator name in the core), and defaulted numeric fields
// made explicit. Two requests normalize equal iff they configure the
// identical pipeline, which is what makes the digest a true content address.
func normalize(o CompileOptions) (CompileOptions, error) {
	strat, err := parseStrategy(o.Strategy)
	if err != nil {
		return CompileOptions{}, err
	}
	if o.Strategy, err = StrategyName(strat); err != nil {
		return CompileOptions{}, err
	}
	looping, err := parseLooping(o.Looping)
	if err != nil {
		return CompileOptions{}, err
	}
	if o.Looping, err = LoopingName(looping); err != nil {
		return CompileOptions{}, err
	}
	in := o.Allocators
	if len(in) == 0 {
		in = []string{"ffdur", "ffstart"}
	}
	seen := map[alloc.Strategy]bool{}
	canon := make([]string, 0, len(in))
	for _, a := range in {
		strat, err := parseAllocator(a)
		if err != nil {
			return CompileOptions{}, err
		}
		if seen[strat] {
			continue
		}
		seen[strat] = true
		name, err := AllocatorName(strat)
		if err != nil {
			return CompileOptions{}, err
		}
		canon = append(canon, name)
	}
	o.Allocators = canon
	if o.VerifyPeriods < 0 {
		return CompileOptions{}, fmt.Errorf("verify_periods must be >= 0, got %d", o.VerifyPeriods)
	}
	if o.Verify && o.VerifyPeriods == 0 {
		o.VerifyPeriods = 2
	}
	if !o.Verify {
		o.VerifyPeriods = 0
	}
	if o.Partitions < 0 || o.Partitions > 64 {
		return CompileOptions{}, fmt.Errorf("partitions must be in [0, 64], got %d", o.Partitions)
	}
	if o.Partitions == 1 {
		// A 1-way partitioning is the sequential schedule; collapse onto the
		// sequential spelling so both digest identically.
		o.Partitions = 0
	}
	return o, nil
}

// coreOptions converts normalized options into the library configuration.
func coreOptions(o CompileOptions) (core.Options, error) {
	strat, err := parseStrategy(o.Strategy)
	if err != nil {
		return core.Options{}, err
	}
	looping, err := parseLooping(o.Looping)
	if err != nil {
		return core.Options{}, err
	}
	opts := core.Options{
		Strategy:      strat,
		Looping:       looping,
		Verify:        o.Verify,
		VerifyPeriods: o.VerifyPeriods,
		Merging:       o.Merging,
		Partitions:    o.Partitions,
	}
	for _, a := range o.Allocators {
		s, err := parseAllocator(a)
		if err != nil {
			return core.Options{}, err
		}
		opts.Allocators = append(opts.Allocators, s)
	}
	return opts, nil
}
