package service

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"repro/internal/nodestore"
	"repro/internal/systems"
)

// TestNodeStoreRestartReuse is the durability pin for store-assisted
// compilation: artifacts compiled by one daemon process are byte-identical
// to the same requests served by a fresh process over the same store
// directory, and the fresh process loads pipeline stages from disk instead
// of executing them (its in-memory artifact cache starts cold, so any reuse
// is the node store's).
func TestNodeStoreRestartReuse(t *testing.T) {
	dir := t.TempDir()
	graph := graphText(t, systems.SatelliteReceiver())
	reqs := []CompileRequest{
		{Graph: graph},
		{Graph: graph, Options: CompileOptions{Strategy: "apgan", Looping: "flat", Allocators: []string{"bfdur"}}},
	}

	st1, err := nodestore.Open(dir, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{NodeStore: st1})
	h1 := httptest.NewServer(srv1.Handler())
	cl1 := &Client{BaseURL: h1.URL}
	first := make([][]byte, len(reqs))
	for i, req := range reqs {
		resp, err := cl1.Compile(req, false)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = []byte(resp.Artifact)
	}
	if st1.Stats().Puts == 0 {
		t.Fatal("first server published nothing to the node store")
	}
	h1.Close()
	srv1.Close()

	// "Restart": a new store handle over the same directory, a new server.
	st2, err := nodestore.Open(dir, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Stats().Entries == 0 {
		t.Fatal("reopened store found no frames on disk")
	}
	ts2 := newTestServer(t, Config{NodeStore: st2})
	for i, req := range reqs {
		resp, err := ts2.cl.Compile(req, false)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cached {
			t.Fatalf("req %d: fresh server reported an artifact-cache hit", i)
		}
		if !bytes.Equal([]byte(resp.Artifact), first[i]) {
			t.Fatalf("req %d: artifact differs across a daemon restart", i)
		}
	}
	if st2.Stats().Hits == 0 {
		t.Fatal("restarted server never hit the node store")
	}
	if got := ts2.metricValue(t, `sdfd_nodestore_loads_total{kind="order"}`); got == "" || got == "0" {
		t.Errorf("sdfd_nodestore_loads_total{kind=order} = %q, want > 0", got)
	}
	if got := ts2.metricValue(t, "sdfd_nodestore_hits_total"); got == "" || got == "0" {
		t.Errorf("sdfd_nodestore_hits_total = %q, want > 0", got)
	}
}

// TestNodeStoreGridAndCompileShare checks the two endpoints share one
// store: a grid request warms every stage a later single compile needs.
func TestNodeStoreGridAndCompileShare(t *testing.T) {
	st, err := nodestore.Open(t.TempDir(), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Disable the artifact cache so the compile below must reach the
	// pipeline — any reuse it sees comes from the node store.
	ts := newTestServer(t, Config{NodeStore: st, CacheBudget: -1})
	graph := graphText(t, systems.CDDAT())

	gridResp, err := ts.cl.Grid(GridRequest{Graph: graph, Entries: []CompileOptions{
		{}, {Strategy: "apgan"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range gridResp.Results {
		if r.Error != nil {
			t.Fatalf("grid entry %d: %v", i, r.Error)
		}
	}
	hitsBefore := st.Stats().Hits

	resp, err := ts.cl.Compile(CompileRequest{Graph: graph, Options: CompileOptions{Strategy: "apgan"}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("compile was served by the disabled artifact cache")
	}
	if st.Stats().Hits <= hitsBefore {
		t.Error("single compile did not reuse stages the grid request stored")
	}
	want := gridResp.Results[1].Artifact
	if !bytes.Equal([]byte(resp.Artifact), []byte(want)) {
		t.Fatal("store-assisted compile bytes differ from the grid's artifact for the same options")
	}
}
