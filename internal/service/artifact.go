package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/sdf"
)

// Artifact is the JSON compilation product stored in the cache and served
// by GET /v1/artifact/{digest}. Its encoding is deterministic — slices in
// fixed orders, never maps — because the digest contract promises that
// every observer of one digest sees byte-identical bytes (the pipeline
// itself is determinism-linted, so one compile per digest is enough).
type Artifact struct {
	// Schema is the artifact schema version (the digest frame prefix).
	// Consumers comparing artifacts across builds (sdfbench -compare) check
	// it first so a schema skew reads as an explicit mismatch, not as a
	// spurious metric regression.
	Schema  string         `json:"schema"`
	Graph   string         `json:"graph"`
	Actors  int            `json:"actors"`
	Edges   int            `json:"edges"`
	Options CompileOptions `json:"options"`
	// Schedule is the looped single appearance schedule in the paper's
	// textual form; Order is the lexical actor order behind it (empty for
	// cyclic graphs, whose schedule comes from the SCC condensation).
	Schedule string   `json:"schedule"`
	Order    []string `json:"order,omitempty"`
	// Repetitions is q(a) per actor, in actor order.
	Repetitions []ActorRepetition `json:"repetitions"`
	Metrics     ArtifactMetrics   `json:"metrics"`
	// Allocations reports every attempted allocator; Best names the one
	// whose placements follow.
	Allocations []AllocatorTotal `json:"allocations"`
	Best        string           `json:"best"`
	Placements  []Placement      `json:"placements"`
	// Partition describes the P-way phased parallel schedule when the
	// compilation requested partitions >= 2.
	Partition *ArtifactPartition `json:"partition,omitempty"`
	C         string             `json:"c,omitempty"`
	// ThreadedC is the barrier-phased parallel C program (emit_c with
	// partitions >= 2).
	ThreadedC string `json:"threaded_c,omitempty"`
	VHDL      string `json:"vhdl,omitempty"`
}

// ArtifactPartition is the wire form of the phased parallel schedule: the
// worker and phase counts, the segmented memory layout, and the memory
// tradeoff against the sequential single-address-space image.
type ArtifactPartition struct {
	Workers int `json:"workers"`
	Phases  int `json:"phases"`
	// SASTotal is the sequential best allocation total (the P=1 baseline);
	// ParallelTotal is the segmented image extent. Their ratio is the
	// memory price paid for parallelism.
	SASTotal      int64             `json:"sas_total"`
	ParallelTotal int64             `json:"parallel_total"`
	Segments      []ArtifactSegment `json:"segments"`
}

// ArtifactSegment is one region of the segmented parallel image.
type ArtifactSegment struct {
	// Worker owns the segment; -1 marks the shared cross-worker segment.
	Worker int   `json:"worker"`
	Base   int64 `json:"base"`
	Cells  int64 `json:"cells"`
}

// ActorRepetition is one entry of the repetitions vector.
type ActorRepetition struct {
	Actor string `json:"actor"`
	Q     int64  `json:"q"`
}

// ArtifactMetrics mirrors core.Metrics in wire-stable form: the buffer
// memory bounds and totals the paper's tables report.
type ArtifactMetrics struct {
	BMLB            int64 `json:"bmlb"`
	NonSharedBufMem int64 `json:"non_shared_bufmem"`
	DPCost          int64 `json:"dp_cost"`
	MCO             int64 `json:"mco"`
	MCP             int64 `json:"mcp"`
	SharedTotal     int64 `json:"shared_total"`
	MergedTotal     int64 `json:"merged_total"`
	Merges          int   `json:"merges"`
	ParallelTotal   int64 `json:"parallel_total,omitempty"`
}

// AllocatorTotal is one allocator's achieved total.
type AllocatorTotal struct {
	Allocator string `json:"allocator"`
	Total     int64  `json:"total"`
}

// Placement is one buffer's position in the best shared memory image.
type Placement struct {
	Buffer string `json:"buffer"`
	Offset int64  `json:"offset"`
	Size   int64  `json:"size"`
}

// buildArtifact renders a compilation result as the wire artifact.
func buildArtifact(res *core.Result, o CompileOptions) *Artifact {
	g := res.Graph
	art := &Artifact{
		Schema:   SchemaVersion,
		Graph:    g.Name,
		Actors:   g.NumActors(),
		Edges:    g.NumEdges(),
		Options:  o,
		Schedule: res.Schedule.String(),
		Best:     res.BestBy.String(),
		Metrics: ArtifactMetrics{
			BMLB:            res.Metrics.BMLB,
			NonSharedBufMem: res.Metrics.NonSharedBufMem,
			DPCost:          res.Metrics.DPCost,
			MCO:             res.Metrics.MCO,
			MCP:             res.Metrics.MCP,
			SharedTotal:     res.Metrics.SharedTotal,
			MergedTotal:     res.Metrics.MergedTotal,
			Merges:          res.Metrics.Merges,
			ParallelTotal:   res.Metrics.ParallelTotal,
		},
	}
	for _, a := range res.Order {
		art.Order = append(art.Order, g.Actor(a).Name)
	}
	for _, a := range g.Actors() {
		art.Repetitions = append(art.Repetitions, ActorRepetition{
			Actor: a.Name, Q: res.Repetitions.Q(a.ID),
		})
	}
	totals := make([]AllocatorTotal, 0, len(res.Metrics.AllocTotals))
	for name, total := range res.Metrics.AllocTotals {
		totals = append(totals, AllocatorTotal{Allocator: name, Total: total})
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i].Allocator < totals[j].Allocator })
	art.Allocations = totals
	for _, p := range res.Best.Placements {
		art.Placements = append(art.Placements, Placement{
			Buffer: p.Interval.Name, Offset: p.Offset, Size: p.Interval.Size,
		})
	}
	if res.Partition != nil {
		ap := &ArtifactPartition{
			Workers:       res.Partition.P,
			Phases:        res.Partition.NumPhases,
			SASTotal:      res.Metrics.SharedTotal,
			ParallelTotal: res.Segmented.Total,
		}
		for _, s := range res.Segmented.Segments {
			ap.Segments = append(ap.Segments, ArtifactSegment{
				Worker: s.Worker, Base: s.Base, Cells: s.Cells,
			})
		}
		art.Partition = ap
	}
	if o.EmitC {
		art.C = codegen.GenerateC(res)
		if res.Partition != nil {
			art.ThreadedC = codegen.GenerateThreadedC(res)
		}
	}
	if o.EmitVHDL {
		art.VHDL = codegen.GenerateVHDL(res)
	}
	return art
}

// ArtifactBytes marshals an already-computed compilation result as the wire
// artifact for normalized options opts. It is the same rendering
// CompileArtifact performs after compiling, split out so the grid planner —
// which produces many Results from one shared pass graph — can cache each
// entry under the identical bytes a direct /v1/compile of that entry would
// produce.
func ArtifactBytes(res *core.Result, opts CompileOptions) ([]byte, error) {
	data, err := json.Marshal(buildArtifact(res, opts))
	if err != nil {
		return nil, fmt.Errorf("service: marshal artifact: %w", err)
	}
	return data, nil
}

// CompileArtifact runs the in-process pipeline on g under opts and returns
// the marshaled artifact bytes plus the compilation result. It is the
// single code path shared by the daemon's worker jobs and by offline
// clients that need a reference artifact to compare server responses
// against (sdffuzz -daemon): both sides producing bytes through this one
// function is what makes "server response == in-process output" a
// byte-equality assertion.
func CompileArtifact(g *sdf.Graph, opts CompileOptions) ([]byte, *core.Result, error) {
	return compileArtifactContext(context.Background(), g, opts, nil)
}

// compileArtifactContext is CompileArtifact with cancellation and an
// optional per-stage hook.
func compileArtifactContext(ctx context.Context, g *sdf.Graph, opts CompileOptions, onStage func(string)) ([]byte, *core.Result, error) {
	norm, err := normalize(opts)
	if err != nil {
		return nil, nil, err
	}
	copts, err := coreOptions(norm)
	if err != nil {
		return nil, nil, err
	}
	copts.OnStage = onStage
	res, err := core.CompileGeneralContext(ctx, g, copts)
	if err != nil {
		return nil, nil, err
	}
	data, err := json.Marshal(buildArtifact(res, norm))
	if err != nil {
		return nil, nil, fmt.Errorf("service: marshal artifact: %w", err)
	}
	return data, res, nil
}
