package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/pass"
	"repro/internal/sdf"
	"repro/internal/sdfio"
)

// GridRequest is the body of POST /v1/grid: one graph compiled across many
// option sets in a single planned run. The planner dedups the entries into a
// prefix-sharing pass graph (repetitions once, each lexical order once per
// strategy, each schedule once per strategy×looping, ...), so a full
// configuration sweep costs O(distinct pass nodes) instead of O(entries ×
// pipeline length).
type GridRequest struct {
	// Graph is the SDF graph in .sdf text form, shared by every entry.
	Graph string `json:"graph"`
	// Entries are the option sets to compile the graph under; at most
	// Config.GridMaxEntries per request. Duplicate entries are legal and
	// share everything.
	Entries []CompileOptions `json:"entries"`
}

// GridEntryResult is one entry's outcome inside a GridResponse: either an
// artifact (with its content digest, fetchable via GET /v1/artifact) or a
// structured error. Failures are per-entry — one infeasible configuration
// does not fail its siblings.
type GridEntryResult struct {
	Digest   string          `json:"digest,omitempty"`
	Cached   bool            `json:"cached,omitempty"`
	Artifact json.RawMessage `json:"artifact,omitempty"`
	Error    *APIError       `json:"error,omitempty"`
}

// GridResponse is the success body of POST /v1/grid. Results align with the
// request's Entries by index. PlannedNodes and NaiveNodes report the prefix
// sharing achieved for the entries that actually compiled (cache hits run no
// plan and count for neither).
type GridResponse struct {
	Results      []GridEntryResult `json:"results"`
	PlannedNodes int               `json:"planned_nodes"`
	NaiveNodes   int               `json:"naive_nodes"`
}

// parseGridRequest decodes and validates a grid-shaped body — shared by
// POST /v1/grid and POST /v1/jobs/grid, which differ only in their entry
// cap — returning the request, the canonical graph text, and the parsed
// graph.
func (s *Server) parseGridRequest(w http.ResponseWriter, r *http.Request, maxEntries int) (*GridRequest, string, *sdf.Graph, *APIError) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var req GridRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, "", nil, &APIError{
				Status: http.StatusRequestEntityTooLarge, Reason: "too_large",
				Message: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxRequestBytes),
			}
		}
		return nil, "", nil, &APIError{
			Status: http.StatusBadRequest, Reason: "bad_request",
			Message: fmt.Sprintf("decoding request: %v", err),
		}
	}
	if len(req.Entries) == 0 {
		return nil, "", nil, &APIError{
			Status: http.StatusBadRequest, Reason: "bad_request",
			Message: "grid request needs at least one entry",
		}
	}
	if len(req.Entries) > maxEntries {
		return nil, "", nil, &APIError{
			Status: http.StatusBadRequest, Reason: "bad_request",
			Message: fmt.Sprintf("grid request has %d entries, limit is %d", len(req.Entries), maxEntries),
		}
	}
	canonical, err := sdfio.Canonicalize(req.Graph)
	if err != nil {
		return nil, "", nil, &APIError{
			Status: http.StatusBadRequest, Reason: "bad_request",
			Message: fmt.Sprintf("parsing graph: %v", err),
		}
	}
	g, err := sdfio.Parse(strings.NewReader(canonical))
	if err != nil {
		return nil, "", nil, &APIError{
			Status: http.StatusInternalServerError, Reason: "bad_request",
			Message: fmt.Sprintf("re-parsing canonical graph: %v", err),
		}
	}
	return &req, canonical, g, nil
}

// handleGrid compiles one graph across every entry's option set. Request-
// level failures (unparseable graph, too many entries, admission shedding,
// request deadline) produce a non-2xx envelope; per-entry compile failures
// land inside the 200 response. Artifacts are cached under the same digests
// POST /v1/compile uses, so a grid request warms the single-compile cache
// and vice versa.
func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.shed.With("shutting_down").Inc()
		s.writeError(w, &APIError{
			Status: http.StatusServiceUnavailable, Reason: "shutting_down",
			Message:           "server is shutting down",
			RetryAfterSeconds: s.retryAfterSeconds(),
		})
		return
	}
	reqp, canonical, g, apiErr := s.parseGridRequest(w, r, s.cfg.GridMaxEntries)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	req := *reqp

	// Per-entry normalization and cache probing. Misses dedup by digest:
	// identical entries compile once and share bytes.
	results := make([]GridEntryResult, len(req.Entries))
	type miss struct {
		norm    CompileOptions
		digest  string
		entries []int // request indices sharing this digest
	}
	var (
		misses  []*miss
		missFor = map[string]*miss{}
	)
	for i, entry := range req.Entries {
		norm, err := normalize(entry)
		if err != nil {
			results[i] = GridEntryResult{Error: &APIError{
				Status: http.StatusBadRequest, Reason: "bad_request",
				Message: fmt.Sprintf("options: %v", err),
			}}
			continue
		}
		digest := Digest(canonical, norm)
		if data, ok := s.cache.get(digest); ok {
			s.cacheHits.Inc()
			results[i] = GridEntryResult{Digest: digest, Cached: true, Artifact: data}
			continue
		}
		s.cacheMisses.Inc()
		m := missFor[digest]
		if m == nil {
			m = &miss{norm: norm, digest: digest}
			missFor[digest] = m
			misses = append(misses, m)
		}
		m.entries = append(m.entries, i)
	}

	plannedNodes, naiveNodes := 0, 0
	if len(misses) > 0 {
		points := make([]pass.Options, len(misses))
		for i, m := range misses {
			copts, err := coreOptions(m.norm)
			if err != nil {
				// normalize already vetted every enum spelling.
				s.writeError(w, &APIError{
					Status: http.StatusInternalServerError, Reason: "bad_request",
					Message: fmt.Sprintf("normalized options failed to convert: %v", err),
				})
				return
			}
			points[i] = copts
		}

		type gridRun struct {
			outs  []pass.Outcome
			stats []pass.KindCount
			err   error
		}
		done := make(chan gridRun, 1)
		job := func() {
			if s.testHookCompileStart != nil {
				s.testHookCompileStart()
			}
			ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.CompileTimeout)
			defer cancel()
			s.gridRuns.Inc()
			// With a node store, loaded nodes emit no events, so
			// sdfd_grid_pass_nodes_total keeps counting only pass work that
			// actually executed; store reuse shows up in
			// sdfd_nodestore_loads_total instead.
			plan, err := pass.NewPlan(g, points, pass.PlanConfig{
				GraphKey: Digest(canonical, CompileOptions{}),
				Store:    s.planStore(),
				OnEvent: func(e pass.Event) {
					if e.Enter {
						s.gridNodes.With(e.Kind.String()).Inc()
					}
				},
			})
			if err != nil {
				done <- gridRun{err: err}
				return
			}
			outs := plan.Run(ctx)
			s.countLoads(plan.Stats())
			done <- gridRun{outs: outs, stats: plan.Stats()}
		}
		if err := s.pool.TrySubmit(job); err != nil {
			s.writeError(w, s.classifyCompileError(err))
			return
		}

		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		var run gridRun
		select {
		case run = <-done:
		case <-ctx.Done():
			s.shed.With("deadline").Inc()
			s.writeError(w, &APIError{
				Status: http.StatusRequestTimeout, Reason: "deadline",
				Message: fmt.Sprintf("request deadline expired after %v while waiting for the grid compilation", s.cfg.RequestTimeout),
			})
			return
		}

		switch {
		case run.err != nil:
			// Plan-time failure (e.g. an inconsistent graph) affects every
			// pending entry identically, exactly as a per-entry compile would.
			apiErr := s.classifyCompileError(run.err)
			for _, m := range misses {
				for _, i := range m.entries {
					results[i] = GridEntryResult{Error: apiErr}
				}
			}
		default:
			for _, kc := range run.stats {
				plannedNodes += kc.Nodes
				naiveNodes += kc.Naive
			}
			if saved := naiveNodes - plannedNodes; saved > 0 {
				s.gridSaved.Add(float64(saved))
			}
			for mi, m := range misses {
				o := run.outs[mi]
				if o.Err != nil {
					apiErr := s.classifyCompileError(o.Err)
					for _, i := range m.entries {
						results[i] = GridEntryResult{Error: apiErr}
					}
					continue
				}
				data, err := ArtifactBytes(o.Result, m.norm)
				if err != nil {
					apiErr := s.classifyCompileError(err)
					for _, i := range m.entries {
						results[i] = GridEntryResult{Error: apiErr}
					}
					continue
				}
				s.cache.put(m.digest, data)
				for _, i := range m.entries {
					results[i] = GridEntryResult{Digest: m.digest, Artifact: data}
				}
			}
		}
	}

	s.writeJSON(w, http.StatusOK, &GridResponse{
		Results:      results,
		PlannedNodes: plannedNodes,
		NaiveNodes:   naiveNodes,
	})
}

// Grid POSTs one grid request: one graph compiled across many option sets
// in a single planned, prefix-shared run.
func (c *Client) Grid(req GridRequest) (*GridResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequest(http.MethodPost, c.base()+"/v1/grid", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	body, err := c.do(httpReq)
	if err != nil {
		return nil, err
	}
	var out GridResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("sdfd: decoding grid response: %w", err)
	}
	return &out, nil
}
