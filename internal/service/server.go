// Package service turns the shared-memory SDF synthesis pipeline into a
// long-running compilation service: a net/http API over the Fig. 21 flow
// (graph -> APGAN/RPMC -> loop DP -> lifetimes -> allocation -> C/VHDL)
// with a content-addressed compile cache, request coalescing, admission
// control, and Prometheus-format metrics. cmd/sdfd is the daemon wrapper;
// docs/SERVICE.md documents the HTTP API and the operational knobs.
//
// Determinism note: the service deliberately lives *outside* the
// bannedcall deterministic-core package list — a server needs wall clocks
// for latency metrics and deadlines. All compilation work still happens in
// the linted core, which is what makes artifacts for one digest
// byte-identical no matter which worker, flight, or process produced them.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/nodestore"
	"repro/internal/par"
	"repro/internal/pass"
	"repro/internal/sdf"
	"repro/internal/sdfio"
	"repro/internal/service/metrics"
)

// Config holds the operational knobs of a compile server. The zero value of
// every field selects a production-reasonable default (see each field).
type Config struct {
	// Workers is the size of the compile worker pool. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many admitted compilations may wait for a
	// worker; submissions beyond it are shed with 429. Default 2×Workers.
	QueueDepth int
	// CacheBudget is the artifact cache size in bytes. Negative disables
	// caching; 0 means the 64 MiB default.
	CacheBudget int64
	// RequestTimeout bounds how long one HTTP request waits for its
	// artifact (queue time included) before 408. Default 30s.
	RequestTimeout time.Duration
	// CompileTimeout bounds one pipeline run, enforced via
	// core.CompileGeneralContext stage deadlines. Default 60s.
	CompileTimeout time.Duration
	// MaxRequestBytes bounds the request body. Default 1 MiB.
	MaxRequestBytes int64
	// RetryAfter is the Retry-After hint on 429/503 responses. Default 1s.
	RetryAfter time.Duration
	// GridMaxEntries bounds how many option sets one POST /v1/grid request
	// may carry. Default 64.
	GridMaxEntries int
	// MaxJobs bounds concurrently running async grid jobs; submissions
	// beyond it are shed with 429. Default 8.
	MaxJobs int
	// JobMaxEntries bounds how many option sets one POST /v1/jobs/grid
	// request may carry. Async jobs exist precisely for sweeps too large to
	// hold a /v1/grid connection open, so the default is much higher: 4096.
	JobMaxEntries int
	// Cluster, when non-nil, makes this server one member of a sharded sdfd
	// cluster: compile requests route to their digest's ring owner, cache
	// misses attempt peer fetch before recompiling, and async jobs dispatch
	// their entries across the membership (docs/SERVICE.md, "Cluster
	// mode"). Nil runs the classic single-node daemon.
	Cluster *ClusterConfig
	// NodeStore is an already-opened persistent pass-node store
	// (internal/nodestore). When non-nil, /v1/compile and /v1/grid consult
	// it before executing each pass node and publish freshly computed
	// artifacts into it, so recompilations after small edits reuse every
	// unaffected stage across requests AND daemon restarts. Nil disables
	// store-assisted compilation. The caller owns the store's lifetime;
	// cmd/sdfd opens it from -store / -store-mb.
	NodeStore *nodestore.Store
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.CacheBudget == 0 {
		c.CacheBudget = 64 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.CompileTimeout <= 0 {
		c.CompileTimeout = 60 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 1 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.GridMaxEntries <= 0 {
		c.GridMaxEntries = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 8
	}
	if c.JobMaxEntries <= 0 {
		c.JobMaxEntries = 4096
	}
	return c
}

// CompileRequest is the body of POST /v1/compile.
type CompileRequest struct {
	// Graph is the SDF graph in .sdf text form (docs/SERVICE.md).
	Graph string `json:"graph"`
	// Options selects the pipeline configuration; zero values are the
	// paper's recommended defaults.
	Options CompileOptions `json:"options"`
}

// CompileResponse is the success body of POST /v1/compile.
type CompileResponse struct {
	// Digest is the content address of Artifact; GET /v1/artifact/{digest}
	// returns exactly these bytes for as long as the entry stays cached.
	Digest string `json:"digest"`
	// Cached is true when the artifact came straight from the cache;
	// Coalesced when this request piggy-backed on another request's
	// in-flight compilation.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Verified is true when ?verify=1 ran the stage-by-stage invariant
	// oracle over this compilation.
	Verified bool            `json:"verified,omitempty"`
	Artifact json.RawMessage `json:"artifact"`
}

// APIError is the structured error body every non-2xx response carries
// (wrapped as {"error": {...}}).
type APIError struct {
	// Status is the HTTP status code.
	Status int `json:"status"`
	// Reason is a stable machine-readable cause: bad_request, not_found,
	// too_large, compile_failed, verify_failed, deadline, queue_full,
	// shutting_down.
	Reason  string `json:"reason"`
	Message string `json:"message"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// Error implements the error interface (the client returns *APIError).
func (e *APIError) Error() string {
	return fmt.Sprintf("sdfd: %d %s: %s", e.Status, e.Reason, e.Message)
}

// Server is a compile service instance. Create with New, expose via
// Handler, stop with Close.
type Server struct {
	cfg     Config
	pool    *par.Pool
	cache   *artifactCache
	flights *flightGroup
	start   time.Time

	baseCtx context.Context
	stop    context.CancelFunc

	// cluster is nil on a single-node server. clusterWG tracks the health
	// monitor goroutine.
	cluster   *clusterNode
	clusterWG sync.WaitGroup

	// jobs holds async grid jobs; jobsWG tracks their runner goroutines so
	// a graceful drain can wait for in-flight jobs (AwaitJobs). draining
	// gates new work while those jobs finish.
	jobs     *jobStore
	jobsWG   sync.WaitGroup
	draining atomic.Bool

	reg          *metrics.Registry
	reqs         *metrics.CounterVec
	reqSeconds   *metrics.HistogramVec
	reqLatency   *metrics.SummaryVec
	stageSeconds *metrics.HistogramVec
	cacheHits    *metrics.Counter
	cacheMisses  *metrics.Counter
	pipelineRuns *metrics.Counter
	shed         *metrics.CounterVec
	gridRuns     *metrics.Counter
	gridNodes    *metrics.CounterVec
	gridSaved    *metrics.Counter
	storeLoads   *metrics.CounterVec
	jobEntries   *metrics.CounterVec

	// testHookCompileStart, when set, runs at the start of every pipeline
	// job (inside the worker). Tests use it to hold workers busy so the
	// load-shedding and deadline paths become deterministic.
	testHookCompileStart func()
}

// New builds a Server from cfg (zero value fine).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		pool:    par.NewPool(cfg.Workers, cfg.QueueDepth),
		cache:   newArtifactCache(cfg.CacheBudget),
		flights: newFlightGroup(),
		start:   time.Now(),
		baseCtx: ctx,
		stop:    cancel,
		jobs:    newJobStore(),
		reg:     metrics.NewRegistry(),
	}
	s.reqs = s.reg.CounterVec("sdfd_http_requests_total",
		"HTTP requests by route and status code", "route", "code")
	s.reqSeconds = s.reg.HistogramVec("sdfd_request_seconds",
		"end-to-end request latency by route", metrics.DefLatencyBuckets, "route")
	s.reqLatency = s.reg.SummaryVec("sdfd_request_latency_seconds",
		"end-to-end request latency quantiles by route (hdr-backed; directly comparable to sdfload's client-side percentiles)",
		"route")
	s.stageSeconds = s.reg.HistogramVec("sdfd_stage_seconds",
		"pipeline stage latency (schedule, loopdp, lifetime, alloc, verify, merge, codegen)",
		metrics.DefLatencyBuckets, "stage")
	s.cacheHits = s.reg.Counter("sdfd_cache_hits_total", "compile cache hits")
	s.cacheMisses = s.reg.Counter("sdfd_cache_misses_total", "compile cache misses")
	s.pipelineRuns = s.reg.Counter("sdfd_pipeline_runs_total",
		"actual pipeline executions (misses that were not coalesced)")
	s.shed = s.reg.CounterVec("sdfd_load_shed_total",
		"requests shed by the admission layer, by reason", "reason")
	s.gridRuns = s.reg.Counter("sdfd_grid_runs_total",
		"planned grid executions (POST /v1/grid requests that ran a plan)")
	s.gridNodes = s.reg.CounterVec("sdfd_grid_pass_nodes_total",
		"pass nodes executed by grid plans, by pass kind", "kind")
	s.gridSaved = s.reg.Counter("sdfd_grid_shared_nodes_total",
		"pass executions avoided by grid prefix sharing (naive minus planned)")
	s.jobEntries = s.reg.CounterVec("sdfd_job_entries_total",
		"async grid job entries reaching a terminal state, by state (ok, error)", "state")
	s.reg.GaugeFunc("sdfd_jobs_inflight", "async grid jobs currently running",
		func() float64 { return float64(s.jobs.inflight()) })
	s.reg.GaugeFunc("sdfd_queue_depth", "admitted compilations waiting for a worker",
		func() float64 { return float64(s.pool.Queued()) })
	s.reg.GaugeFunc("sdfd_cache_entries", "artifacts currently cached",
		func() float64 { n, _ := s.cache.stats(); return float64(n) })
	s.reg.GaugeFunc("sdfd_cache_bytes", "artifact cache footprint in bytes",
		func() float64 { _, b := s.cache.stats(); return float64(b) })
	if ns := cfg.NodeStore; ns != nil {
		s.storeLoads = s.reg.CounterVec("sdfd_nodestore_loads_total",
			"pass nodes loaded from the persistent store instead of executed, by pass kind", "kind")
		s.reg.GaugeFunc("sdfd_nodestore_hits_total", "persistent pass-node store hits",
			func() float64 { return float64(ns.Stats().Hits) })
		s.reg.GaugeFunc("sdfd_nodestore_misses_total", "persistent pass-node store misses",
			func() float64 { return float64(ns.Stats().Misses) })
		s.reg.GaugeFunc("sdfd_nodestore_evictions_total", "persistent pass-node store frames evicted for budget",
			func() float64 { return float64(ns.Stats().Evictions) })
		s.reg.GaugeFunc("sdfd_nodestore_corrupt_total", "persistent pass-node store frames dropped as corrupt",
			func() float64 { return float64(ns.Stats().Corrupt) })
		s.reg.GaugeFunc("sdfd_nodestore_entries", "persistent pass-node store frames on disk",
			func() float64 { return float64(ns.Stats().Entries) })
		s.reg.GaugeFunc("sdfd_nodestore_bytes", "persistent pass-node store footprint in bytes",
			func() float64 { return float64(ns.Stats().Bytes) })
	}
	if cfg.Cluster != nil {
		cn := newClusterNode(*cfg.Cluster, s.reg)
		s.cluster = cn
		s.reg.GaugeFunc("sdfd_ring_owned_fraction",
			"fraction of the digest keyspace this node effectively owns (alive-gated; rises when peers die)",
			cn.ownedFraction)
		s.reg.GaugeFunc("sdfd_cluster_peers_alive", "peers whose last healthz probe succeeded",
			func() float64 { return float64(cn.mon.AliveCount()) })
		s.clusterWG.Add(1)
		go func() {
			defer s.clusterWG.Done()
			cn.mon.Run(s.baseCtx)
		}()
	}
	return s
}

// planStore returns the node store as the pass.Store interface, or a nil
// interface when the store is disabled (a typed-nil *nodestore.Store inside
// a non-nil interface would defeat the planner's nil check).
func (s *Server) planStore() pass.Store {
	if s.cfg.NodeStore == nil {
		return nil
	}
	return s.cfg.NodeStore
}

// stageEvents adapts plan node events into the stage latency histogram for
// the store-assisted single-compile path: each executed node's enter/leave
// pair is timed under its stage name. Loaded nodes emit no events and so
// cost no observations — the histogram keeps meaning "the pipeline actually
// did this work".
func (s *Server) stageEvents() func(pass.Event) {
	var mu sync.Mutex
	starts := map[string]time.Time{}
	return func(e pass.Event) {
		key := e.Kind.String() + "\x00" + string(e.Key)
		if e.Enter {
			mu.Lock()
			starts[key] = time.Now()
			mu.Unlock()
			return
		}
		mu.Lock()
		t0, ok := starts[key]
		delete(starts, key)
		mu.Unlock()
		if ok {
			s.stageSeconds.With(stageOfKind(e.Kind)).Observe(time.Since(t0).Seconds())
		}
	}
}

// countLoads feeds post-run plan stats into the store-load counter.
func (s *Server) countLoads(stats []pass.KindCount) {
	if s.storeLoads == nil {
		return
	}
	for _, kc := range stats {
		if kc.Loaded > 0 {
			s.storeLoads.With(kc.Kind.String()).Add(float64(kc.Loaded))
		}
	}
}

// stageOfKind maps plan node kinds onto the OnStage latency vocabulary so
// store-assisted compilations land in the same sdfd_stage_seconds series as
// direct ones (repetitions+order together form the schedule stage; the
// assemble node covers selection, verify, and merge).
func stageOfKind(k pass.Kind) string {
	switch k {
	case pass.KindRepetitions, pass.KindOrder:
		return core.StageSchedule
	case pass.KindSchedule:
		return core.StageLoopDP
	case pass.KindLifetimes:
		return core.StageLifetime
	case pass.KindAlloc:
		return core.StageAlloc
	case pass.KindPartition:
		return core.StagePartition
	case pass.KindSegalloc:
		return core.StageSegments
	case pass.KindAssemble:
		return "assemble"
	default:
		return "unknown"
	}
}

// BeginDrain puts the server into draining mode: new compile, grid, and
// job submissions are refused with the 503 shutting_down envelope, and
// /healthz reports 503 so peers' health probes rotate this node out of the
// ring. Already-running async jobs keep executing — pair with AwaitJobs to
// give them a grace period, then Close. Idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
}

// AwaitJobs blocks until every in-flight async job runner has finished or
// ctx expires (returning ctx's error in that case). The drain sequence in
// cmd/sdfd is BeginDrain -> AwaitJobs(deadline) -> Close.
func (s *Server) AwaitJobs(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting work, cancels in-flight compilations' contexts (job
// runners see the cancellation and complete their remaining entries with
// shutdown errors), and waits for the worker pool, job runners, and the
// cluster health monitor to stop.
func (s *Server) Close() {
	s.stop()
	s.pool.Close()
	s.jobsWG.Wait()
	s.clusterWG.Wait()
}

// Registry exposes the server's metrics registry (also served on /metrics).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the HTTP API:
//
//	POST /v1/compile                   compile (or fetch from cache) a graph
//	POST /v1/grid                      compile one graph across many option sets
//	POST /v1/jobs/grid                 submit an async grid job (202 + job resource)
//	GET  /v1/jobs/{id}                 poll / long-poll a job (?wait=, ?offset=, ?limit=)
//	GET  /v1/artifact/{digest}         re-fetch a cached artifact by digest
//	GET  /v1/peer/artifact/{digest}    internal peer cache API (integrity headers)
//	GET  /healthz                      liveness probe (503 while draining)
//	GET  /metrics                      Prometheus text metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.instrument("compile", s.handleCompile))
	mux.HandleFunc("POST /v1/grid", s.instrument("grid", s.handleGrid))
	mux.HandleFunc("POST /v1/jobs/grid", s.instrument("jobs_submit", s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs_get", s.handleJobGet))
	mux.HandleFunc("GET /v1/artifact/{digest}", s.instrument("artifact", s.handleArtifact))
	mux.HandleFunc("GET /v1/peer/artifact/{digest}", s.instrument("peer_artifact", s.handlePeerArtifact))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// statusWriter records the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start).Seconds()
		s.reqSeconds.With(route).Observe(elapsed)
		s.reqLatency.With(route).Observe(elapsed)
		s.reqs.With(route, strconv.Itoa(sw.code)).Inc()
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, apiErr *APIError) {
	if apiErr.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(apiErr.RetryAfterSeconds))
	}
	s.writeJSON(w, apiErr.Status, map[string]*APIError{"error": apiErr})
}

func (s *Server) retryAfterSeconds() int {
	sec := int(s.cfg.RetryAfter / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// 503 rotates this node out of peers' rings (healthz-gated
		// membership) while the drain grace period runs down.
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":         "draining",
			"uptime_seconds": int64(time.Since(s.start).Seconds()),
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	data, ok := s.cache.get(digest)
	if !ok && s.cluster != nil {
		// Cluster cache miss: the digest's shard very likely lives on a
		// peer. Peer fetch re-verifies integrity against the wire checksum
		// before the bytes enter this node's cache.
		if fetched, peer, hit := s.cluster.fetchArtifact(r.Context(), digest); hit {
			s.cache.put(digest, fetched)
			w.Header().Set(servedByHeader, peer)
			data, ok = fetched, true
		}
	}
	if !ok {
		s.writeError(w, &APIError{
			Status: http.StatusNotFound, Reason: "not_found",
			Message: fmt.Sprintf("no cached artifact for digest %s (it may have been evicted; re-POST /v1/compile)", digest),
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sdfd-Digest", digest)
	_, _ = w.Write(data)
}

// parseCompileRequest decodes and validates the request, returning the
// parsed graph, its canonical text, normalized options, and the content
// digest.
func (s *Server) parseCompileRequest(w http.ResponseWriter, r *http.Request) (*sdf.Graph, string, CompileOptions, string, *APIError) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var req CompileRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, "", CompileOptions{}, "", &APIError{
				Status: http.StatusRequestEntityTooLarge, Reason: "too_large",
				Message: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxRequestBytes),
			}
		}
		return nil, "", CompileOptions{}, "", &APIError{
			Status: http.StatusBadRequest, Reason: "bad_request",
			Message: fmt.Sprintf("decoding request: %v", err),
		}
	}
	canonical, err := sdfio.Canonicalize(req.Graph)
	if err != nil {
		return nil, "", CompileOptions{}, "", &APIError{
			Status: http.StatusBadRequest, Reason: "bad_request",
			Message: fmt.Sprintf("parsing graph: %v", err),
		}
	}
	g, err := sdfio.Parse(strings.NewReader(canonical))
	if err != nil {
		// Canonical text always re-parses; this is unreachable short of a
		// serializer bug, but fail loudly rather than compile garbage.
		return nil, "", CompileOptions{}, "", &APIError{
			Status: http.StatusInternalServerError, Reason: "bad_request",
			Message: fmt.Sprintf("re-parsing canonical graph: %v", err),
		}
	}
	norm, err := normalize(req.Options)
	if err != nil {
		return nil, "", CompileOptions{}, "", &APIError{
			Status: http.StatusBadRequest, Reason: "bad_request",
			Message: fmt.Sprintf("options: %v", err),
		}
	}
	return g, canonical, norm, Digest(canonical, norm), nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.shed.With("shutting_down").Inc()
		s.writeError(w, &APIError{
			Status: http.StatusServiceUnavailable, Reason: "shutting_down",
			Message:           "server is shutting down",
			RetryAfterSeconds: s.retryAfterSeconds(),
		})
		return
	}
	g, canonical, norm, digest, apiErr := s.parseCompileRequest(w, r)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	verify := r.URL.Query().Get("verify") == "1"

	// Warm path: cache hit, no pipeline, no queueing. Content addressing
	// makes serving from the local cache correct on any cluster member —
	// one digest is one byte sequence no matter who compiled it.
	// Verification always recompiles (the oracle needs the in-memory
	// result), so it skips this.
	if !verify {
		if data, ok := s.cache.get(digest); ok {
			s.cacheHits.Inc()
			s.writeJSON(w, http.StatusOK, &CompileResponse{
				Digest: digest, Cached: true, Artifact: data,
			})
			return
		}
		s.cacheMisses.Inc()
	}

	// Cluster routing, for cold plain compiles only (verify stays local —
	// the oracle wants this node's own pipeline). Requests a peer already
	// routed carry the forwarded marker and must be served here.
	if cn := s.cluster; cn != nil && !verify && r.Header.Get(forwardedHeader) == "" {
		if owner := cn.ownerOf(digest); owner != cn.cfg.Self {
			// Wrong peer: proxy to the owner so its shard of the cache does
			// the work. A non-definitive answer (owner died, is shedding,
			// or is draining) degrades to compiling locally below.
			if cn.proxyCompile(w, r, owner, canonical, norm, s.cfg.RequestTimeout) {
				return
			}
		} else if data, peer, ok := cn.fetchArtifact(r.Context(), digest); ok {
			// This node owns the digest but is cold (restart, membership
			// change): a ranked fallback may still hold the artifact.
			// Integrity was re-verified against the wire checksum.
			s.cache.put(digest, data)
			w.Header().Set(servedByHeader, peer)
			s.writeJSON(w, http.StatusOK, &CompileResponse{
				Digest: digest, Cached: true, Artifact: data,
			})
			return
		}
	}

	// Cold path: join (or open) the flight for this digest. Verifying
	// flights are keyed separately so a plain request never waits on the
	// slower compile+oracle run of a concurrent verify request.
	key := digest
	if verify {
		key = "verify:" + digest
	}
	f, leader := s.flights.join(key)
	if leader {
		job := func() { s.runCompileJob(key, f, g, norm, digest, verify) }
		if err := s.pool.TrySubmit(job); err != nil {
			// The flight never started: fail it so concurrent joiners see
			// the same shed instead of waiting forever.
			s.flights.finish(key, f, nil, err)
		}
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	select {
	case <-f.done:
	case <-ctx.Done():
		s.shed.With("deadline").Inc()
		s.writeError(w, &APIError{
			Status: http.StatusRequestTimeout, Reason: "deadline",
			Message: fmt.Sprintf("request deadline expired after %v while waiting for compilation (the compile itself may still complete and populate the cache)", s.cfg.RequestTimeout),
		})
		return
	}
	if f.err != nil {
		s.writeError(w, s.classifyCompileError(f.err))
		return
	}
	s.writeJSON(w, http.StatusOK, &CompileResponse{
		Digest: digest, Cached: false, Coalesced: !leader, Verified: verify,
		Artifact: f.data,
	})
}

// runCompileJob executes one pipeline run inside a worker: compile with the
// server-side deadline, optionally run the invariant oracle, insert the
// complete artifact into the cache, and publish the outcome to every
// request waiting on the flight. Cache insertion happens only on full
// success — a deadline, compile error, or oracle violation leaves no entry.
func (s *Server) runCompileJob(key string, f *flight, g *sdf.Graph, norm CompileOptions, digest string, verify bool) {
	if s.testHookCompileStart != nil {
		s.testHookCompileStart()
	}
	data, err := func() (data []byte, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("service: pipeline panic: %v", r)
			}
		}()
		// A request that missed the cache can become leader of a fresh
		// flight just after the previous leader finished and cached; the
		// re-check here keeps "one pipeline run per digest" exact instead
		// of merely likely.
		if !verify {
			if cached, ok := s.cache.get(digest); ok {
				return cached, nil
			}
		}
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.CompileTimeout)
		defer cancel()
		s.pipelineRuns.Inc()
		data, res, err := s.compileArtifact(ctx, g, norm)
		if err != nil {
			return nil, err
		}
		if verify {
			if verr := check.Pipeline(res, check.Options{}); verr != nil {
				return nil, fmt.Errorf("%w: %w", errVerifyFailed, verr)
			}
			// The digest contract says one digest -> one byte sequence. If
			// a cached artifact exists it must match the fresh compile;
			// anything else is cache poisoning or lost determinism.
			if cached, ok := s.cache.get(digest); ok && !bytes.Equal(cached, data) {
				return nil, fmt.Errorf("%w: cached artifact for digest %s differs from recompilation", errVerifyFailed, digest)
			}
		}
		s.cache.put(digest, data)
		return data, nil
	}()
	s.flights.finish(key, f, data, err)
}

// compileArtifact runs one normalized compilation through whichever path
// the configuration selects: with a node store, a single-point planned run
// that probes the store before each pass and publishes after (warm stages
// are loaded, not executed); without one, the direct pipeline. Both paths
// render through the identical artifact encoder, so the bytes for a digest
// do not depend on which path — or which process lifetime — produced them.
func (s *Server) compileArtifact(ctx context.Context, g *sdf.Graph, norm CompileOptions) ([]byte, *core.Result, error) {
	if s.cfg.NodeStore == nil {
		return compileArtifactContext(ctx, g, norm, s.stageTimer())
	}
	copts, err := coreOptions(norm)
	if err != nil {
		return nil, nil, err
	}
	p, err := pass.NewPlan(g, []core.Options{copts}, pass.PlanConfig{
		Store:   s.planStore(),
		OnEvent: s.stageEvents(),
	})
	if err != nil {
		return nil, nil, err
	}
	outs := p.Run(ctx)
	s.countLoads(p.Stats())
	if outs[0].Err != nil {
		return nil, nil, outs[0].Err
	}
	data, err := ArtifactBytes(outs[0].Result, norm)
	if err != nil {
		return nil, nil, err
	}
	return data, outs[0].Result, nil
}

// stageTimer adapts core's OnStage hook into the per-stage latency
// histogram: each hook call closes the previous stage's interval.
func (s *Server) stageTimer() func(string) {
	var (
		last      string
		lastStart time.Time
	)
	return func(stage string) {
		now := time.Now()
		if last != "" {
			s.stageSeconds.With(last).Observe(now.Sub(lastStart).Seconds())
		}
		last, lastStart = stage, now
		if stage == core.StageDone {
			last = ""
		}
	}
}

var errVerifyFailed = errors.New("verification failed")

// classifyCompileError maps a flight failure onto the structured error
// vocabulary: admission shedding (429/503), deadlines (408), oracle
// violations (500), and everything else — inconsistent graphs, deadlocks,
// overflow, infeasible allocations — as 422 compile_failed.
func (s *Server) classifyCompileError(err error) *APIError {
	switch {
	case errors.Is(err, par.ErrPoolFull):
		s.shed.With("queue_full").Inc()
		return &APIError{
			Status: http.StatusTooManyRequests, Reason: "queue_full",
			Message:           fmt.Sprintf("compile queue is full (%d queued, %d workers); retry shortly", s.cfg.QueueDepth, s.cfg.Workers),
			RetryAfterSeconds: s.retryAfterSeconds(),
		}
	case errors.Is(err, par.ErrPoolClosed) || errors.Is(err, context.Canceled):
		s.shed.With("shutting_down").Inc()
		return &APIError{
			Status: http.StatusServiceUnavailable, Reason: "shutting_down",
			Message:           "server is shutting down",
			RetryAfterSeconds: s.retryAfterSeconds(),
		}
	case errors.Is(err, context.DeadlineExceeded):
		s.shed.With("deadline").Inc()
		return &APIError{
			Status: http.StatusRequestTimeout, Reason: "deadline",
			Message: fmt.Sprintf("compilation exceeded the server's %v compile deadline: %v", s.cfg.CompileTimeout, err),
		}
	case errors.Is(err, errVerifyFailed):
		return &APIError{
			Status: http.StatusInternalServerError, Reason: "verify_failed",
			Message: err.Error(),
		}
	default:
		return &APIError{
			Status: http.StatusUnprocessableEntity, Reason: "compile_failed",
			Message: err.Error(),
		}
	}
}
