package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/regularity"
	"repro/internal/sdf"
	"repro/internal/sdfio"
	"repro/internal/systems"
)

// exampleSystems mirrors the repository's six example programs: quickstart,
// fir, filterbank, satellite, homogeneous, and cddat.
func exampleSystems() []*sdf.Graph {
	quick := sdf.New("quickstart")
	a := quick.AddActor("A")
	b := quick.AddActor("B")
	c := quick.AddActor("C")
	quick.AddEdge(a, b, 3, 2, 0)
	quick.AddEdge(b, c, 5, 7, 0)
	return []*sdf.Graph{
		quick,
		regularity.FIR(8),
		systems.OneSidedFilterbank(4, systems.Ratio23),
		systems.SatelliteReceiver(),
		systems.Homogeneous(4, 4),
		systems.CDDAT(),
	}
}

func graphText(t *testing.T, g *sdf.Graph) string {
	t.Helper()
	s, err := sdfio.CanonicalString(g)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testServer couples a Server with an httptest frontend and a client.
type testServer struct {
	srv  *Server
	http *httptest.Server
	cl   *Client
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &testServer{srv: srv, http: ts, cl: &Client{BaseURL: ts.URL}}
}

// metricValue scrapes /metrics and returns the value line for an exact
// series name (labels included), or "" when absent.
func (ts *testServer) metricValue(t *testing.T, series string) string {
	t.Helper()
	resp, err := http.Get(ts.http.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			return rest
		}
	}
	return ""
}

func (ts *testServer) mustMetric(t *testing.T, series, want string) {
	t.Helper()
	if got := ts.metricValue(t, series); got != want {
		t.Errorf("metric %s = %q, want %q", series, got, want)
	}
}

func TestCompileArtifactEndToEnd(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := CompileRequest{
		Graph:   graphText(t, systems.CDDAT()),
		Options: CompileOptions{Strategy: "apgan", EmitC: true, EmitVHDL: true},
	}
	resp, err := ts.cl.Compile(req, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached || resp.Digest == "" {
		t.Fatalf("first compile: cached=%v digest=%q", resp.Cached, resp.Digest)
	}
	var art Artifact
	if err := json.Unmarshal(resp.Artifact, &art); err != nil {
		t.Fatal(err)
	}
	if art.Graph != "cddat" || art.Schedule == "" || art.C == "" || art.VHDL == "" {
		t.Fatalf("artifact incomplete: graph=%q schedule=%q len(C)=%d len(VHDL)=%d",
			art.Graph, art.Schedule, len(art.C), len(art.VHDL))
	}
	if art.Metrics.SharedTotal <= 0 || art.Metrics.SharedTotal > art.Metrics.NonSharedBufMem {
		t.Fatalf("implausible totals: shared=%d non-shared=%d",
			art.Metrics.SharedTotal, art.Metrics.NonSharedBufMem)
	}

	// Artifact fetch must be byte-identical to the inline artifact, and
	// byte-identical across fetches.
	fetch1, err := ts.cl.Artifact(resp.Digest)
	if err != nil {
		t.Fatal(err)
	}
	fetch2, err := ts.cl.Artifact(resp.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fetch1, []byte(resp.Artifact)) || !bytes.Equal(fetch1, fetch2) {
		t.Fatal("artifact bytes differ between inline response and fetches")
	}

	// A second identical POST is a cache hit carrying the same bytes, and
	// the pipeline-invocation counter proves nothing re-ran.
	resp2, err := ts.cl.Compile(req, false)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached || !bytes.Equal(resp2.Artifact, resp.Artifact) || resp2.Digest != resp.Digest {
		t.Fatalf("warm hit: cached=%v identical=%v", resp2.Cached, bytes.Equal(resp2.Artifact, resp.Artifact))
	}
	ts.mustMetric(t, "sdfd_pipeline_runs_total", "1")
	ts.mustMetric(t, "sdfd_cache_hits_total", "1")
	ts.mustMetric(t, "sdfd_cache_entries", "1")
}

func TestConcurrent64AcrossExampleSystems(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	graphs := exampleSystems()
	texts := make([]string, len(graphs))
	for i, g := range graphs {
		texts[i] = graphText(t, g)
	}
	const n = 64
	type result struct {
		idx  int
		resp *CompileResponse
		err  error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.cl.Compile(CompileRequest{Graph: texts[i%len(texts)]}, false)
			results[i] = result{idx: i % len(texts), resp: resp, err: err}
		}(i)
	}
	wg.Wait()
	byDigest := map[int]string{}
	artifacts := map[int][]byte{}
	for _, r := range results {
		if r.err != nil {
			t.Fatalf("system %d: %v", r.idx, r.err)
		}
		if prev, ok := byDigest[r.idx]; ok && prev != r.resp.Digest {
			t.Fatalf("system %d produced two digests", r.idx)
		}
		byDigest[r.idx] = r.resp.Digest
		if prev, ok := artifacts[r.idx]; ok && !bytes.Equal(prev, r.resp.Artifact) {
			t.Fatalf("system %d produced non-identical artifacts", r.idx)
		}
		artifacts[r.idx] = r.resp.Artifact
	}
	// 64 requests over 6 systems ran the pipeline exactly 6 times: every
	// duplicate either hit the cache or coalesced onto an open flight.
	ts.mustMetric(t, "sdfd_pipeline_runs_total", fmt.Sprint(len(graphs)))
}

func TestSingleflightCollapsesDuplicates(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	ts.srv.testHookCompileStart = func() {
		started <- struct{}{}
		<-release
	}
	text := graphText(t, systems.SatelliteReceiver())

	const dup = 8
	responses := make([]*CompileResponse, dup)
	errs := make([]error, dup)
	var wg sync.WaitGroup
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			responses[i], errs[i] = ts.cl.Compile(CompileRequest{Graph: text}, false)
		}()
	}
	launch(0)
	<-started // leader's pipeline job is now running (and blocked)
	for i := 1; i < dup; i++ {
		launch(i)
	}
	// Give the followers time to reach the flight join; none of them may
	// start a second pipeline job.
	select {
	case <-started:
		t.Fatal("duplicate in-flight request started a second pipeline run")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	wg.Wait()

	coalesced := 0
	for i := 0; i < dup; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(responses[i].Artifact, responses[0].Artifact) {
			t.Fatalf("request %d artifact differs", i)
		}
		if responses[i].Coalesced {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Error("no request reported coalescing onto the open flight")
	}
	ts.mustMetric(t, "sdfd_pipeline_runs_total", "1")
}

func TestLoadShedding(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	ts.srv.testHookCompileStart = func() {
		started <- struct{}{}
		<-release
	}
	graphs := exampleSystems()

	var wg sync.WaitGroup
	compileAsync := func(g *sdf.Graph) {
		text := graphText(t, g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ts.cl.Compile(CompileRequest{Graph: text}, false); err != nil {
				t.Errorf("%s: %v", g.Name, err)
			}
		}()
	}
	compileAsync(graphs[0])
	<-started // worker busy
	compileAsync(graphs[1])
	// Wait until the second job occupies the single queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for ts.srv.pool.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second compile never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Pool saturated: worker busy + queue full. The third distinct compile
	// must shed with 429, a Retry-After hint, and a structured body.
	resp, err := http.Post(ts.http.URL+"/v1/compile", "application/json",
		strings.NewReader(fmt.Sprintf(`{"graph":%q}`, graphText(t, graphs[2]))))
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated compile: status %d, body %s", resp.StatusCode, body[:n])
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", resp.Header.Get("Retry-After"))
	}
	var envelope struct {
		Error *APIError `json:"error"`
	}
	if err := json.Unmarshal(body[:n], &envelope); err != nil || envelope.Error == nil {
		t.Fatalf("unstructured shed body: %s", body[:n])
	}
	if envelope.Error.Reason != "queue_full" || envelope.Error.RetryAfterSeconds != 2 {
		t.Errorf("shed error = %+v", envelope.Error)
	}

	// A shed compile must leave no cache entry behind.
	shedDigest := mustDigest(t, graphs[2])
	if _, err := ts.cl.Artifact(shedDigest); !isStatus(err, http.StatusNotFound) {
		t.Errorf("shed request left a cache entry (artifact err = %v)", err)
	}

	close(release)
	wg.Wait()
	if got := ts.metricValue(t, `sdfd_load_shed_total{reason="queue_full"}`); got != "1" {
		t.Errorf("queue_full shed count = %q, want 1", got)
	}
}

// TestGridLoadShedding pins the /v1/grid admission contract the sdfload
// harness depends on: under queue exhaustion a grid request is rejected
// with a structured 429, reason queue_full, and a Retry-After hint — the
// exact shape load.ClassifyStatus files as a shed (not an error), so below
// the knee a saturated queue never counts against the zero-error SLO.
// (The 429 -> shed mapping itself is pinned in internal/load's tests; this
// side pins that grid emits the shape.)
func TestGridLoadShedding(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	ts.srv.testHookCompileStart = func() {
		started <- struct{}{}
		<-release
	}
	graphs := exampleSystems()

	// LIFO: release the held workers first, then wait for them to drain.
	var wg sync.WaitGroup
	defer wg.Wait()
	defer func() { close(release) }()
	compileAsync := func(g *sdf.Graph) {
		text := graphText(t, g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ts.cl.Compile(CompileRequest{Graph: text}, false); err != nil {
				t.Errorf("%s: %v", g.Name, err)
			}
		}()
	}
	compileAsync(graphs[0])
	<-started // worker busy
	compileAsync(graphs[1])
	deadline := time.Now().Add(2 * time.Second)
	for ts.srv.pool.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second compile never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Worker busy + queue full: the grid request must shed, not wait.
	gridBody, err := json.Marshal(GridRequest{
		Graph: graphText(t, graphs[3]),
		Entries: []CompileOptions{
			{Strategy: "rpmc", Looping: "sdppo"},
			{Strategy: "apgan", Looping: "dppo"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.http.URL+"/v1/grid", "application/json", bytes.NewReader(gridBody))
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated grid: status %d, body %s", resp.StatusCode, body[:n])
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", resp.Header.Get("Retry-After"))
	}
	var envelope struct {
		Error *APIError `json:"error"`
	}
	if err := json.Unmarshal(body[:n], &envelope); err != nil || envelope.Error == nil {
		t.Fatalf("unstructured grid shed body: %s", body[:n])
	}
	if envelope.Error.Reason != "queue_full" || envelope.Error.RetryAfterSeconds != 2 {
		t.Errorf("grid shed error = %+v", envelope.Error)
	}
	if envelope.Error.Status != http.StatusTooManyRequests {
		t.Errorf("grid shed body status = %d, want 429", envelope.Error.Status)
	}
}

func TestRequestDeadline(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, RequestTimeout: 50 * time.Millisecond})
	release := make(chan struct{})
	ts.srv.testHookCompileStart = func() { <-release }
	g := systems.CDDAT()
	digest := mustDigest(t, g)

	_, err := ts.cl.Compile(CompileRequest{Graph: graphText(t, g)}, false)
	if !isStatus(err, http.StatusRequestTimeout) {
		t.Fatalf("blocked compile returned %v, want 408", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Reason != "deadline" {
		t.Fatalf("deadline error = %v", err)
	}
	// The timed-out request left no partial cache entry...
	if _, err := ts.cl.Artifact(digest); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("partial cache entry after deadline (artifact err = %v)", err)
	}
	// ...but the abandoned flight still completes and caches, so the next
	// request becomes a warm hit.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := ts.cl.Artifact(digest); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned flight never populated the cache")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := ts.cl.Compile(CompileRequest{Graph: graphText(t, g)}, false)
	if err != nil || !resp.Cached {
		t.Fatalf("post-deadline compile: cached=%v err=%v", resp != nil && resp.Cached, err)
	}
}

func TestVerifyQueryRunsOracle(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := CompileRequest{Graph: graphText(t, systems.CDDAT())}
	resp, err := ts.cl.Compile(req, true)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Verified {
		t.Fatal("verify=1 response not marked verified")
	}
	// The verified compile populated the cache; a plain request hits it.
	resp2, err := ts.cl.Compile(req, false)
	if err != nil || !resp2.Cached {
		t.Fatalf("after verify: cached=%v err=%v", resp2 != nil && resp2.Cached, err)
	}
	if !bytes.Equal(resp.Artifact, resp2.Artifact) {
		t.Fatal("verified and cached artifacts differ")
	}
}

func TestStructuredRequestErrors(t *testing.T) {
	ts := newTestServer(t, Config{MaxRequestBytes: 512})
	post := func(body string, verify bool) (int, *APIError) {
		t.Helper()
		url := ts.http.URL + "/v1/compile"
		if verify {
			url += "?verify=1"
		}
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var envelope struct {
			Error *APIError `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&envelope)
		return resp.StatusCode, envelope.Error
	}

	if code, e := post("{not json", false); code != http.StatusBadRequest || e == nil || e.Reason != "bad_request" {
		t.Errorf("malformed JSON: %d %+v", code, e)
	}
	if code, _ := post(`{"graph":"graph g\nbogus\n"}`, false); code != http.StatusBadRequest {
		t.Errorf("bad graph text: %d", code)
	}
	if code, _ := post(`{"graph":"graph g\nedge A B 1 1 0\n","options":{"strategy":"zigzag"}}`, false); code != http.StatusBadRequest {
		t.Errorf("bad strategy: %d", code)
	}
	big := strings.Repeat("x", 600)
	if code, e := post(fmt.Sprintf(`{"graph":%q}`, big), false); code != http.StatusRequestEntityTooLarge || e == nil || e.Reason != "too_large" {
		t.Errorf("oversized body: %d %+v", code, e)
	}
	// An inconsistent (unbalanceable) graph compiles to a structured 422.
	if code, e := post(`{"graph":"graph g\nedge A B 2 3 0\nedge A B 3 2 0\n"}`, false); code != http.StatusUnprocessableEntity || e == nil || e.Reason != "compile_failed" {
		t.Errorf("inconsistent graph: %d %+v", code, e)
	}

	resp, err := http.Get(ts.http.URL + "/v1/artifact/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown artifact: %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	if err := ts.cl.Healthz(); err != nil {
		t.Fatal(err)
	}
}

func mustDigest(t *testing.T, g *sdf.Graph) string {
	t.Helper()
	canonical, err := sdfio.CanonicalString(g)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := normalize(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return Digest(canonical, norm)
}

func isStatus(err error, status int) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == status
}
