package nodestore

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func hexKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return fmt.Sprintf("%x", sum)
}

func mustOpen(t *testing.T, dir string, budget int64) *Store {
	t.Helper()
	s, err := Open(dir, budget)
	if err != nil {
		t.Fatalf("Open(%q, %d): %v", dir, budget, err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 1<<20)
	key, payload := hexKey(1), []byte("artifact bytes")
	if _, ok := s.Get(key); ok {
		t.Fatal("Get before Put should miss")
	}
	s.Put(key, payload)
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after Put = %q, %v; want %q, true", got, ok, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 put, 1 entry", st)
	}
	if st.Bytes != frameSize(key, payload) {
		t.Fatalf("bytes = %d; want frame size %d", st.Bytes, frameSize(key, payload))
	}
}

func TestPutIsIdempotent(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 1<<20)
	key := hexKey(1)
	s.Put(key, []byte("bytes"))
	s.Put(key, []byte("bytes"))
	st := s.Stats()
	if st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats after duplicate Put = %+v; want 1 put, 1 entry", st)
	}
}

// TestCorruptedFrameEvictedNotServed flips one payload byte on disk and
// checks the entry is detected by the checksum, reported as a miss, and
// removed — corruption must never be served and must not wedge the slot.
func TestCorruptedFrameEvictedNotServed(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1<<20)
	key := hexKey(1)
	s.Put(key, []byte("precious artifact"))

	path := filepath.Join(dir, fileName(key))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-sha256.Size-2] ^= 0x40 // flip a payload bit
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(key); ok {
		t.Fatal("corrupted frame was served")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after corruption = %+v; want 1 corrupt, 0 entries, 0 bytes", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupted frame still on disk (stat err %v)", err)
	}
	// The slot recovers: a fresh Put serves again.
	s.Put(key, []byte("precious artifact"))
	if _, ok := s.Get(key); !ok {
		t.Fatal("re-published entry should be served")
	}
}

// TestTruncatedFrameEvictedNotServed covers truncation at several cut
// points: inside the checksum, inside the payload, and inside the header.
func TestTruncatedFrameEvictedNotServed(t *testing.T) {
	for _, cut := range []int{1, 10, 40} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, 1<<20)
			key := hexKey(1)
			s.Put(key, []byte("payload payload payload"))
			path := filepath.Join(dir, fileName(key))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(key); ok {
				t.Fatal("truncated frame was served")
			}
			if st := s.Stats(); st.Corrupt != 1 || st.Entries != 0 {
				t.Fatalf("stats = %+v; want 1 corrupt, 0 entries", st)
			}
		})
	}
}

// TestWrongKeyFrameRejected writes a valid frame under the wrong file name
// (as if files were shuffled on disk) and checks the key embedded in the
// frame protects the lookup.
func TestWrongKeyFrameRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1<<20)
	k1, k2 := hexKey(1), hexKey(2)
	s.Put(k1, []byte("one"))
	s.Put(k2, []byte("two"))
	// Overwrite k2's file with k1's frame.
	data, err := os.ReadFile(filepath.Join(dir, fileName(k1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fileName(k2)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(k2); ok {
		t.Fatalf("cross-linked frame served as %q", got)
	}
}

// TestReopenReusesStore closes nothing (the store has no open handles) and
// simply reopens the directory: entries published by the first instance must
// be served by the second, simulating a daemon restart.
func TestReopenReusesStore(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 1<<20)
	var keys []string
	for i := 0; i < 5; i++ {
		k := hexKey(i)
		keys = append(keys, k)
		s1.Put(k, []byte(fmt.Sprintf("artifact %d", i)))
	}

	s2 := mustOpen(t, dir, 1<<20)
	if st := s2.Stats(); st.Entries != 5 {
		t.Fatalf("reopened store has %d entries; want 5", st.Entries)
	}
	for i, k := range keys {
		got, ok := s2.Get(k)
		if !ok || string(got) != fmt.Sprintf("artifact %d", i) {
			t.Fatalf("reopened Get(%d) = %q, %v", i, got, ok)
		}
	}
}

// TestReopenDropsGarbage seeds the directory with a leftover temp file and a
// foreign file; reopening must discard both without touching valid frames.
func TestReopenDropsGarbage(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 1<<20)
	s1.Put(hexKey(1), []byte("good"))
	if err := os.WriteFile(filepath.Join(dir, ".tmp-12345"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a frame"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 1<<20)
	if st := s2.Stats(); st.Entries != 1 {
		t.Fatalf("reopened store has %d entries; want 1", st.Entries)
	}
	if _, ok := s2.Get(hexKey(1)); !ok {
		t.Fatal("valid frame lost during garbage collection")
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("directory holds %d files after reopen; want 1", len(files))
	}
}

// TestEvictionRespectsBudget fills the store past its budget and checks LRU
// entries (not recently-touched ones) are removed, on disk as well as in the
// index.
func TestEvictionRespectsBudget(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100)
	one := frameSize(hexKey(0), payload)
	s := mustOpen(t, dir, 3*one)

	for i := 0; i < 3; i++ {
		s.Put(hexKey(i), payload)
	}
	// Touch key 0 so key 1 is the LRU victim.
	if _, ok := s.Get(hexKey(0)); !ok {
		t.Fatal("key 0 should be resident")
	}
	s.Put(hexKey(3), payload)

	if _, ok := s.Get(hexKey(1)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := s.Get(hexKey(i)); !ok {
			t.Fatalf("key %d evicted; want resident", i)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Bytes > 3*one {
		t.Fatalf("stats = %+v; want 1 eviction within budget %d", st, 3*one)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("directory holds %d files; want 3", len(files))
	}
}

// TestReopenEnforcesBudget reopens a full store under a smaller budget and
// checks the footprint is trimmed immediately.
func TestReopenEnforcesBudget(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("y"), 200)
	one := frameSize(hexKey(0), payload)
	s1 := mustOpen(t, dir, 10*one)
	for i := 0; i < 10; i++ {
		s1.Put(hexKey(i), payload)
	}

	s2 := mustOpen(t, dir, 4*one)
	st := s2.Stats()
	if st.Bytes > 4*one || st.Entries != 4 {
		t.Fatalf("reopened stats = %+v; want <= %d bytes in 4 entries", st, 4*one)
	}
}

// TestOversizedPayloadDropped checks a frame larger than the whole budget is
// never written (it would only evict everything and then itself).
func TestOversizedPayloadDropped(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 64)
	s.Put(hexKey(1), bytes.Repeat([]byte("z"), 1024))
	if st := s.Stats(); st.Entries != 0 || st.Puts != 0 {
		t.Fatalf("oversized payload was stored: %+v", st)
	}
}

// TestDisabledStore checks budget <= 0 turns every operation into a no-op.
func TestDisabledStore(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	s.Put(hexKey(1), []byte("bytes"))
	if _, ok := s.Get(hexKey(1)); ok {
		t.Fatal("disabled store served an entry")
	}
}

// TestConcurrentWritersRespectBudget hammers one store from many goroutines
// — concurrent publishers, duplicate publishers, and readers — and checks
// the byte budget holds at every observation point and afterwards, with the
// index and disk in agreement. Run under -race this also pins the locking.
func TestConcurrentWritersRespectBudget(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("w"), 64)
	one := frameSize(hexKey(0), payload)
	budget := 8 * one
	s := mustOpen(t, dir, budget)

	const writers = 8
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Overlapping key ranges: plenty of duplicate publishes.
				s.Put(hexKey((w*perWriter+i)%40), payload)
				s.Get(hexKey(i % 40))
				if st := s.Stats(); st.Bytes > budget {
					t.Errorf("budget exceeded mid-run: %d > %d", st.Bytes, budget)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := s.Stats()
	if st.Bytes > budget {
		t.Fatalf("final bytes %d exceed budget %d", st.Bytes, budget)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != st.Entries {
		t.Fatalf("disk holds %d files, index holds %d entries", len(files), st.Entries)
	}
	var disk int64
	for _, f := range files {
		info, err := f.Info()
		if err != nil {
			t.Fatal(err)
		}
		disk += info.Size()
	}
	if disk != st.Bytes {
		t.Fatalf("disk footprint %d != accounted bytes %d", disk, st.Bytes)
	}
}

// TestUnsafeKeyFlattened checks non-hex keys still round-trip (flattened
// onto a digest file name) so the store never writes an unsafe path.
func TestUnsafeKeyFlattened(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1<<20)
	key := "weird/../key with spaces"
	s.Put(key, []byte("v"))
	got, ok := s.Get(key)
	if !ok || string(got) != "v" {
		t.Fatalf("Get = %q, %v; want v, true", got, ok)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Name() == fileName("safe") {
		t.Fatalf("unexpected directory contents: %v", files)
	}
	// And it survives a reopen via the embedded key.
	s2 := mustOpen(t, dir, 1<<20)
	if got, ok := s2.Get(key); !ok || string(got) != "v" {
		t.Fatalf("reopened Get = %q, %v; want v, true", got, ok)
	}
}
