// Package nodestore is a disk-backed, versioned, size-bounded
// content-addressed store for pass-node artifacts: the persistent layer
// behind incremental recompilation (docs/PIPELINE.md, "Incremental
// recompilation").
//
// Keys are opaque content addresses computed by internal/pass (hex SHA-256
// over a versioned frame covering exactly the inputs each pass reads), so an
// entry is immutable by construction: two writers of one key always carry
// identical payload bytes, and a key whose inputs change is a different key.
// That immutability is what keeps the store's concurrency story simple —
// publishing is idempotent, duplicate publishes collapse onto one file, and
// there is no such thing as a stale entry to invalidate, only an unused one
// to evict.
//
// On disk each entry is a single file written via temp-file + atomic rename,
// so a crash mid-write never leaves a partial frame under a final name. Each
// frame carries a magic string, the key, the payload, and a SHA-256 checksum
// over both; Get verifies the checksum on every read and evicts (rather than
// serves) anything corrupted or truncated out-of-band. An LRU byte budget
// bounds the footprint; reopening a directory rebuilds the index (recency
// approximated by file modification time) and re-enforces the budget.
package nodestore

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// magic identifies a node-store frame. Bump the trailing digit whenever the
// frame layout changes incompatibly: old files then read as corrupt and are
// evicted instead of misdecoded.
const magic = "sdfnode1"

// maxKeyLen bounds the key length accepted by Put and trusted during frame
// parsing; pass-node keys are 64-character hex digests, so the bound is
// generous while still rejecting absurd length fields in corrupted frames.
const maxKeyLen = 256

// Stats is a point-in-time snapshot of the store's counters and footprint.
type Stats struct {
	// Hits and Misses count Get outcomes; Puts counts entries actually
	// written (re-publishing an existing key only refreshes recency).
	Hits, Misses, Puts int64
	// Evictions counts entries removed to satisfy the byte budget; Corrupt
	// counts frames dropped because they failed validation (bad magic,
	// truncation, checksum or key mismatch, or an unreadable file).
	Evictions, Corrupt int64
	// Entries and Bytes are the current index size and on-disk footprint
	// (frame bytes, not just payload bytes).
	Entries int
	Bytes   int64
}

// Store is a content-addressed artifact store rooted at one directory. All
// methods are safe for concurrent use; the zero value is not usable — build
// with Open.
type Store struct {
	dir    string
	budget int64

	mu    sync.Mutex
	lru   *list.List               // guarded by mu; front = most recently used
	index map[string]*list.Element // guarded by mu; key -> element holding *entry
	bytes int64                    // guarded by mu

	hits, misses, puts, evictions, corrupt int64 // guarded by mu
}

// entry is the in-memory index record for one on-disk frame.
type entry struct {
	key  string
	size int64 // frame size on disk
}

// Open creates (or reopens) a store rooted at dir holding at most budget
// bytes of frames. An existing directory is rescanned: every plausible frame
// is indexed with recency approximated by file modification time, anything
// unreadable is deleted, and the budget is re-enforced immediately. budget
// <= 0 disables the store (every Get misses, every Put is dropped) without
// touching existing files.
func Open(dir string, budget int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("nodestore: %w", err)
	}
	s := &Store{
		dir:    dir,
		budget: budget,
		lru:    list.New(),
		index:  make(map[string]*list.Element),
	}
	if budget <= 0 {
		return s, nil
	}
	// Open has not returned yet, so s is unreachable from any other
	// goroutine and rescan can fill the index without holding s.mu.
	//lint:ignore lockcheck store is not yet published to any other goroutine
	if err := s.rescan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// rescan rebuilds the index from the directory contents. Only the frame
// header (magic + key) is read per file — checksum validation is deferred to
// Get, which is where a corrupted payload would otherwise escape. Files that
// fail even header validation are removed on the spot.
func (s *Store) rescan() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("nodestore: %w", err)
	}
	type found struct {
		e     entry
		mtime int64
	}
	var frames []found
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		path := filepath.Join(s.dir, de.Name())
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent removal
		}
		key, ok := readFrameKey(path)
		if !ok || fileName(key) != de.Name() {
			// Leftover temp file, foreign file, or a frame whose name no
			// longer matches its key: never servable, so reclaim it.
			_ = os.Remove(path)
			s.corrupt++
			continue
		}
		frames = append(frames, found{
			e:     entry{key: key, size: info.Size()},
			mtime: info.ModTime().UnixNano(),
		})
	}
	// Oldest first: pushing in ascending mtime order leaves the most
	// recently written frames at the LRU front.
	sort.Slice(frames, func(i, j int) bool {
		if frames[i].mtime != frames[j].mtime {
			return frames[i].mtime < frames[j].mtime
		}
		return frames[i].e.key < frames[j].e.key
	})
	for _, f := range frames {
		e := f.e
		s.index[e.key] = s.lru.PushFront(&entry{key: e.key, size: e.size})
		s.bytes += e.size
	}
	return nil
}

// Get returns the payload stored under key, refreshing its recency. The
// frame checksum is verified on every read; a frame that fails validation is
// evicted and reported as a miss, never served.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[key]
	if !ok {
		s.misses++
		return nil, false
	}
	payload, err := readFrame(filepath.Join(s.dir, fileName(key)), key)
	if err != nil {
		s.dropLocked(el)
		s.corrupt++
		s.misses++
		return nil, false
	}
	s.lru.MoveToFront(el)
	s.hits++
	return payload, true
}

// Put publishes payload under key. Publishing is idempotent — an existing
// key only has its recency refreshed (bytes for one key are immutable by
// construction) — and atomic: the frame is written to a temp file and
// renamed into place, so no reader or rescanning reopener ever observes a
// partial frame. Frames larger than the whole budget are dropped rather
// than evicting everything else. Errors writing the frame are swallowed:
// the store is a cache, and a failed publish only costs a future recompute.
func (s *Store) Put(key string, payload []byte) {
	if key == "" || len(key) > maxKeyLen {
		return
	}
	size := frameSize(key, payload)
	if size > s.budget {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[key]; ok {
		s.lru.MoveToFront(el)
		return
	}
	if err := writeFrame(s.dir, fileName(key), key, payload); err != nil {
		return
	}
	s.index[key] = s.lru.PushFront(&entry{key: key, size: size})
	s.bytes += size
	s.puts++
	s.evictLocked()
}

// evictLocked removes least-recently-used frames until the byte budget
// holds. Callers hold s.mu.
func (s *Store) evictLocked() {
	for s.bytes > s.budget {
		back := s.lru.Back()
		if back == nil {
			return
		}
		s.dropLocked(back)
		s.evictions++
	}
}

// dropLocked removes one entry from the index and from disk.
func (s *Store) dropLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.lru.Remove(el)
	delete(s.index, e.key)
	s.bytes -= e.size
	_ = os.Remove(filepath.Join(s.dir, fileName(e.key)))
}

// Stats returns a snapshot of the store's counters and footprint.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits: s.hits, Misses: s.misses, Puts: s.puts,
		Evictions: s.evictions, Corrupt: s.corrupt,
		Entries: s.lru.Len(), Bytes: s.bytes,
	}
}

// fileName maps a key onto its on-disk file name. Pass-node keys are hex
// digests and usable verbatim; anything else (foreign callers, tests) is
// flattened onto a hex digest so the name is always filesystem-safe.
func fileName(key string) string {
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			sum := sha256.Sum256([]byte(key))
			return fmt.Sprintf("%x.node", sum)
		}
	}
	return key + ".node"
}

// Frame layout:
//
//	magic (8 bytes) | keyLen (u32 BE) | key | payloadLen (u32 BE) | payload |
//	sha256(key || payload) (32 bytes)
//
// The key inside the frame makes a renamed or cross-linked file detectable,
// and the trailing checksum makes any truncation or bit rot detectable: a
// truncated frame either fails a length check or fails the checksum.

func frameSize(key string, payload []byte) int64 {
	return int64(len(magic) + 4 + len(key) + 4 + len(payload) + sha256.Size)
}

func writeFrame(dir, name, key string, payload []byte) error {
	buf := make([]byte, 0, frameSize(key, payload))
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	h := sha256.New()
	h.Write([]byte(key))
	h.Write(payload)
	buf = h.Sum(buf)

	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

// readFrame reads and fully validates the frame at path, returning its
// payload. wantKey must match the embedded key.
func readFrame(path, wantKey string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	key, payload, err := parseFrame(data)
	if err != nil {
		return nil, err
	}
	if key != wantKey {
		return nil, fmt.Errorf("nodestore: frame holds key %q, want %q", key, wantKey)
	}
	return payload, nil
}

// readFrameKey reads just enough of the frame at path to recover its key;
// used by rescan so reopening a large store stays cheap.
func readFrameKey(path string) (string, bool) {
	f, err := os.Open(path)
	if err != nil {
		return "", false
	}
	defer f.Close()
	head := make([]byte, len(magic)+4+maxKeyLen)
	n, _ := f.Read(head)
	head = head[:n]
	if len(head) < len(magic)+4 || string(head[:len(magic)]) != magic {
		return "", false
	}
	keyLen := binary.BigEndian.Uint32(head[len(magic):])
	if keyLen == 0 || keyLen > maxKeyLen || len(head) < len(magic)+4+int(keyLen) {
		return "", false
	}
	return string(head[len(magic)+4 : len(magic)+4+int(keyLen)]), true
}

// parseFrame validates everything except the key match: magic, length
// fields, and the trailing checksum.
func parseFrame(data []byte) (key string, payload []byte, err error) {
	rest := data
	if len(rest) < len(magic) || string(rest[:len(magic)]) != magic {
		return "", nil, fmt.Errorf("nodestore: bad magic")
	}
	rest = rest[len(magic):]
	if len(rest) < 4 {
		return "", nil, fmt.Errorf("nodestore: truncated key length")
	}
	keyLen := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if keyLen == 0 || keyLen > maxKeyLen || uint32(len(rest)) < keyLen {
		return "", nil, fmt.Errorf("nodestore: bad key length %d", keyLen)
	}
	key = string(rest[:keyLen])
	rest = rest[keyLen:]
	if len(rest) < 4 {
		return "", nil, fmt.Errorf("nodestore: truncated payload length")
	}
	payloadLen := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(len(rest)) != uint64(payloadLen)+sha256.Size {
		return "", nil, fmt.Errorf("nodestore: frame length mismatch")
	}
	payload = rest[:payloadLen]
	h := sha256.New()
	h.Write([]byte(key))
	h.Write(payload)
	if !bytes.Equal(h.Sum(nil), rest[payloadLen:]) {
		return "", nil, fmt.Errorf("nodestore: checksum mismatch")
	}
	return key, payload, nil
}
