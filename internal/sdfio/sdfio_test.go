package sdfio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/systems"
)

func TestParseBasic(t *testing.T) {
	in := `
# A little chain
graph demo
actor A
actor B
edge A B 2 3
edge B C 1 1 4   # C implicitly declared, delay 4
`
	g, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "demo" || g.NumActors() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %s: %d actors %d edges", g.Name, g.NumActors(), g.NumEdges())
	}
	e := g.Edge(1)
	if e.Delay != 4 {
		t.Errorf("delay = %d, want 4", e.Delay)
	}
	if _, err := g.Repetitions(); err != nil {
		t.Errorf("Repetitions: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                 // empty
		"graph",            // missing name
		"actor",            // missing name
		"actor A\nactor A", // duplicate
		"edge A B",         // missing rates
		"edge A B x y",     // bad numbers
		"edge A B 0 1",     // zero rate
		"edge A B 1 1 -2",  // negative delay
		"bogus directive",  // unknown
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	graphs := systems.Table1Systems()
	graphs = append(graphs, systems.CDDAT(), systems.Homogeneous(2, 2))
	for _, g := range graphs {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: Write: %v", g.Name, err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: reparse: %v", g.Name, err)
		}
		if back.Name != g.Name || back.NumActors() != g.NumActors() || back.NumEdges() != g.NumEdges() {
			t.Errorf("%s: round trip changed shape", g.Name)
		}
		for i := 0; i < g.NumEdges(); i++ {
			a, b := g.Edges()[i], back.Edges()[i]
			if a.Prod != b.Prod || a.Cons != b.Cons || a.Delay != b.Delay {
				t.Errorf("%s: edge %d changed: %+v vs %+v", g.Name, i, a, b)
			}
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := systems.CDDAT()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`digraph "cddat"`,
		`"cd" -> "up23" [label="1/1"]`,
		`"up23" -> "up87" [label="2/3"]`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDelayMarker(t *testing.T) {
	g, err := Parse(strings.NewReader("edge A B 1 1 3"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1/1 3D") {
		t.Errorf("delay marker missing:\n%s", buf.String())
	}
}

func TestParseWordsField(t *testing.T) {
	g, err := Parse(strings.NewReader("edge A B 2 3 0 16"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Edge(0).Words != 16 {
		t.Errorf("words = %d, want 16", g.Edge(0).Words)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "edge A B 2 3 0 16") {
		t.Errorf("Write dropped words: %s", buf.String())
	}
	if _, err := Parse(strings.NewReader("edge A B 1 1 0 0")); err == nil {
		t.Error("words=0 accepted")
	}
}
