package sdfio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the .sdf reader; it must never panic,
// and successful parses must survive a Write/Parse round trip unchanged.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"graph g\nactor A\nactor B\nedge A B 1 1\n",
		"edge A B 2 3 4\n",
		"# only a comment\n",
		"actor 名\nedge 名 名 1 1 9\n",
		"graph\n",
		"edge A A 1 1 1\n",
		"edge A B 0 0\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		g, err := Parse(strings.NewReader(text))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write failed on parsed graph: %v", err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, buf.String())
		}
		if back.NumActors() != g.NumActors() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				g.NumActors(), g.NumEdges(), back.NumActors(), back.NumEdges())
		}
	})
}
