package sdfio

import (
	"strings"

	"repro/internal/sdf"
)

// CanonicalString renders g in the canonical textual .sdf form used for
// content-addressed cache keys: exactly the bytes Write produces — a graph
// line, every actor declared explicitly in ID order, every edge in ID order
// with the delay always spelled out and the word width present only when
// it is > 1. The form is a pure function of the graph, so two semantically
// identical inputs canonicalize to identical bytes regardless of comments,
// whitespace, implicit actor declarations, or omitted optional fields in
// their source text.
func CanonicalString(g *sdf.Graph) (string, error) {
	var b strings.Builder
	if err := Write(&b, g); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Canonicalize parses .sdf text and re-renders it canonically. It is the
// first step of sdfd's cache-key derivation: the SHA-256 digest is taken
// over the canonical form, so requests that differ only in formatting or
// comments deduplicate onto one cache entry.
func Canonicalize(text string) (string, error) {
	g, err := Parse(strings.NewReader(text))
	if err != nil {
		return "", err
	}
	return CanonicalString(g)
}
