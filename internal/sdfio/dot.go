package sdfio

import (
	"fmt"
	"io"

	"repro/internal/sdf"
)

// WriteDOT serializes the graph in Graphviz DOT form, annotating each edge
// with "prod/cons" rates and a "kD" delay marker, in the style of the
// paper's figures.
func WriteDOT(w io.Writer, g *sdf.Graph) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", g.Name); err != nil {
		return err
	}
	for _, a := range g.Actors() {
		if _, err := fmt.Fprintf(w, "  %q;\n", a.Name); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		label := fmt.Sprintf("%d/%d", e.Prod, e.Cons)
		if e.Delay > 0 {
			label += fmt.Sprintf(" %dD", e.Delay)
		}
		if _, err := fmt.Fprintf(w, "  %q -> %q [label=%q];\n",
			g.Actor(e.Src).Name, g.Actor(e.Dst).Name, label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
