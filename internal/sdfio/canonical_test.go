package sdfio

import (
	"strings"
	"testing"
)

func TestCanonicalizeNormalizes(t *testing.T) {
	// Three spellings of the same graph: explicit actors, implicit actors
	// with comments and ragged whitespace, and omitted optional delay.
	variants := []string{
		"graph g\nactor A\nactor B\nedge A B 2 3 0\n",
		"# header comment\n graph   g\n\nedge A B 2 3 0  # trailing\n",
		"graph g\nedge A B 2 3\n",
	}
	first, err := Canonicalize(variants[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants[1:] {
		got, err := Canonicalize(v)
		if err != nil {
			t.Fatalf("Canonicalize(%q): %v", v, err)
		}
		if got != first {
			t.Errorf("Canonicalize(%q) = %q, want %q", v, got, first)
		}
	}
	if want := "graph g\nactor A\nactor B\nedge A B 2 3 0\n"; first != want {
		t.Errorf("canonical form = %q, want %q", first, want)
	}
}

func TestCanonicalizeIsFixpoint(t *testing.T) {
	text := "graph fix\nedge X Y 4 6 2 3\nedge Y Z 1 1 0\n"
	once, err := Canonicalize(text)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Canonicalize(once)
	if err != nil {
		t.Fatal(err)
	}
	if once != twice {
		t.Errorf("canonicalization is not idempotent:\nonce:  %q\ntwice: %q", once, twice)
	}
	if !strings.Contains(once, "edge X Y 4 6 2 3\n") {
		t.Errorf("word width lost in canonical form: %q", once)
	}
}

func TestCanonicalizeRejectsBadInput(t *testing.T) {
	if _, err := Canonicalize("bogus directive\n"); err == nil {
		t.Fatal("bad input canonicalized without error")
	}
	if _, err := Canonicalize(""); err == nil {
		t.Fatal("empty input canonicalized without error")
	}
}
